// Package sim implements the deterministic event-driven simulator that
// replays a device fleet trace against a set of collaborative-learning jobs
// under a pluggable resource-manager (scheduler). It reproduces the paper's
// evaluation testbed: devices check in and out following their availability
// trace, the scheduler matches each checked-in device to at most one job,
// assigned devices compute for a log-normal duration scaled by their speed
// (and may fail), and synchronous rounds complete when 80% of the target
// participants report before the deadline.
package sim

import (
	"container/heap"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
)

// eventKind enumerates simulator events.
type eventKind int

const (
	evDeviceOnline eventKind = iota
	evDeviceOffline
	evJobArrival
	evResponse
	evDeadline
)

// event is one entry of the simulation event queue. Ties on time are broken
// by sequence number so runs are fully deterministic.
type event struct {
	at   simtime.Time
	seq  uint64
	kind eventKind

	dev *device.Device
	job *job.Job

	// attempt is the per-job attempt sequence an evResponse/evDeadline
	// belongs to; stale events (attempt moved on) are dropped.
	attempt uint64
	// ok marks an evResponse as a successful report (false = failure).
	ok bool
	// intervalEnd carries the availability-interval end for evDeviceOnline.
	intervalEnd simtime.Time
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// calendar wraps the heap with sequence numbering.
type calendar struct {
	q   eventQueue
	seq uint64
}

func newCalendar() *calendar {
	c := &calendar{}
	heap.Init(&c.q)
	return c
}

func (c *calendar) push(ev *event) {
	ev.seq = c.seq
	c.seq++
	heap.Push(&c.q, ev)
}

func (c *calendar) pop() *event {
	if len(c.q) == 0 {
		return nil
	}
	return heap.Pop(&c.q).(*event)
}

func (c *calendar) empty() bool { return len(c.q) == 0 }
