package client

import (
	"venn/internal/server"
	"venn/internal/transport"
)

// Forwarded-request variants of the serving calls, used by the federation
// layer (internal/cluster) when relaying a request to the daemon that owns
// its device. They are identical to their plain counterparts except that the
// request opcode carries transport.HopFlag, which tells the receiving daemon
// to serve the request itself and never forward it again (the hop guard
// against routing loops between daemons with disagreeing rings). The same
// multiplexing connection pool carries forwarded and first-hand traffic.

// CheckInForward relays a check-in to its owning daemon.
func (s *StreamClient) CheckInForward(ci server.CheckIn) (server.Assignment, error) {
	return s.checkInOp(transport.OpCheckIn|transport.HopFlag, ci)
}

// CheckInBatchForward relays an owner-split check-in batch to its owning
// daemon. Results[i] answers cis[i].
func (s *StreamClient) CheckInBatchForward(cis []server.CheckIn) ([]server.CheckInResult, error) {
	return s.checkInBatchOp(transport.OpCheckInBatch|transport.HopFlag, cis)
}

// ReportForward relays a task report to its owning daemon.
func (s *StreamClient) ReportForward(r server.Report) error {
	return s.reportOp(transport.OpReport|transport.HopFlag, r)
}

// ReportBatchForward relays an owner-split report batch to its owning
// daemon. Results[i] answers rs[i].
func (s *StreamClient) ReportBatchForward(rs []server.Report) ([]server.ReportResult, error) {
	return s.reportBatchOp(transport.OpReportBatch|transport.HopFlag, rs)
}
