// Per-core listener sharding. One accept loop plus one read goroutine per
// connection already parallelizes across connections, but on many-core
// hosts the single kernel accept queue and its wakeup herd become the
// bottleneck long before the service layer does. ListenSharded opens N
// listeners on the same address via SO_REUSEPORT (Linux; elsewhere it
// degrades to one listener), letting the kernel hash incoming connections
// across N independent accept queues — one per core — so the stream path
// scales with GOMAXPROCS.
package transport

import (
	"context"
	"errors"
	"net"
)

// ListenSharded opens n TCP listeners bound to the same addr. On platforms
// with SO_REUSEPORT the listeners share the port and the kernel spreads
// connections across them; elsewhere (or for n<=1) it returns a single
// listener. addr may be ":0" — the port picked by the first listener is
// reused for the rest. If the reuse-port socket option is unavailable at
// runtime, it falls back to one plain listener rather than failing.
func ListenSharded(addr string, n int) ([]net.Listener, error) {
	if n <= 1 || !reusePortSupported {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", addr)
		if err != nil {
			if i == 0 {
				// Kernel without SO_REUSEPORT (or a denied setsockopt):
				// sharding is an optimization, not a requirement.
				ln, err = net.Listen("tcp", addr)
				if err != nil {
					return nil, err
				}
				return []net.Listener{ln}, nil
			}
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns = append(lns, ln)
		if i == 0 {
			addr = ln.Addr().String() // resolve ":0" once, rebind the rest
		}
	}
	return lns, nil
}

// ServeListeners serves on every listener concurrently and blocks until all
// accept loops exit. After Shutdown/Close it returns ErrServerClosed; an
// accept failure on any shard returns that error immediately (the healthy
// shards keep serving until the server is shut down, mirroring how a
// single-listener daemon treats Serve errors as fatal).
func (s *Server) ServeListeners(lns []net.Listener) error {
	if len(lns) == 1 {
		return s.Serve(lns[0])
	}
	errc := make(chan error, len(lns))
	for _, ln := range lns {
		go func(ln net.Listener) { errc <- s.Serve(ln) }(ln)
	}
	for range lns {
		if err := <-errc; !errors.Is(err, ErrServerClosed) {
			return err
		}
	}
	return ErrServerClosed
}

// ListenAndServeSharded listens on addr with `shards` per-core accept
// loops (see ListenSharded) and serves until shutdown.
func (s *Server) ListenAndServeSharded(addr string, shards int) error {
	lns, err := ListenSharded(addr, shards)
	if err != nil {
		return err
	}
	return s.ServeListeners(lns)
}
