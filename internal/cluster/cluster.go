package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/client"
	"venn/internal/obs"
	"venn/internal/server"
)

// Defaults for Config.
const (
	DefaultHealthInterval = time.Second
	DefaultFailAfter      = 3
	DefaultTimeout        = 5 * time.Second
)

// PeerClient is the slice of the stream-client surface forwarding needs.
// *client.StreamClient implements it; tests inject fakes through
// Config.Dial.
//
// The Raw variants carry a pre-encoded v2 batch: items is the concatenation
// of n already-encoded batch items (exactly the bytes that followed the
// count prefix on the frames they arrived in), relayed verbatim into the hop
// frame. They return client.ErrRawUnsupported when the peer connection
// negotiated a pre-v2 protocol, in which case the caller falls back to the
// typed forward.
//
// trace is the originating request's sampled span ID (0 when unsampled): a
// nonzero trace rides in the hop frame's trace context so the owner records
// the hop under the same trace ID (see internal/obs).
type PeerClient interface {
	Ping() error
	CheckInForward(ci server.CheckIn, trace uint64) (server.Assignment, error)
	CheckInBatchForward(cis []server.CheckIn, trace uint64) ([]server.CheckInResult, error)
	CheckInBatchForwardRaw(items []byte, n int, trace uint64) ([]server.CheckInResult, error)
	ReportForward(r server.Report, trace uint64) error
	ReportBatchForward(rs []server.Report, trace uint64) ([]server.ReportResult, error)
	ReportBatchForwardRaw(items []byte, n int, trace uint64) ([]server.ReportResult, error)
	Close() error
}

// Config parameterizes a federation member.
type Config struct {
	// SelfID is this daemon's member ID — the stream address its peers dial,
	// exactly as it appears in every member's Peers list.
	SelfID string
	// Peers lists the stream addresses of every cluster member — the full
	// membership, SelfID's own entry included (order is irrelevant; an
	// empty list runs a single-member cluster). New rejects a non-empty
	// list that lacks SelfID: a self-ID spelled differently from its peers
	// entry (":8081" vs "10.0.0.1:8081") would silently put a phantom
	// member on the ring, splitting ownership of its arcs across every
	// node. Every member must be configured with the same set or their
	// rings will disagree — the hop guard keeps that mistake from looping
	// requests, but ownership locality suffers.
	Peers []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// HealthInterval is the peer-ping period (default 1s).
	HealthInterval time.Duration
	// FailAfter marks a peer down after this many consecutive failed pings
	// (default 3). A down peer's requests are applied locally until it
	// answers a ping again.
	FailAfter int
	// Timeout bounds one forwarded request round trip, dial included
	// (default 5s).
	Timeout time.Duration
	// StreamConns is the connection-pool size per peer (default
	// client.DefaultStreamConns).
	StreamConns int
	// MaxWireVersion caps the stream protocol version negotiated with
	// peers (default: the client's maximum, currently 2). Peers negotiate
	// independently per connection, so a federation can mix v1-only and v2
	// daemons — forwarding to an old peer simply downgrades that hop to
	// JSON payloads.
	MaxWireVersion int
	// DisableRelay turns off the zero-copy coalescing forward relay and
	// falls back to the legacy decode→re-encode forward path (one frame per
	// misrouted batch per owner). An escape hatch and a benchmark pivot
	// (BenchmarkForwardPath compares the two); leave it off in production.
	DisableRelay bool
	// Dial overrides peer-client construction (tests). nil dials a real
	// client.StreamClient with Timeout, StreamConns, and MaxWireVersion
	// applied.
	Dial func(addr string) PeerClient
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.FailAfter <= 0 {
		c.FailAfter = DefaultFailAfter
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.StreamConns <= 0 {
		c.StreamConns = client.DefaultStreamConns
	}
}

// peer is one remote member: its ID (dial address), its pooled stream
// client, and its health state. fails is touched only by the health loop;
// down is atomic so telemetry can read it anywhere.
type peer struct {
	id    string
	c     PeerClient
	fails int
	down  atomic.Bool
	// Per-peer forward coalescers for the zero-copy relay (see relay.go).
	ciRelay  *relay[server.CheckInResult]
	repRelay *relay[server.ReportResult]
}

// snapshot is the immutable routing view the serving hot path reads: the
// (static) ownership ring plus the currently-alive peers. The health loop
// republishes it on every up/down transition; readers load it once per
// request and never take a lock — the PlanSnapshot pattern applied to
// membership.
type snapshot struct {
	ring  *Ring
	alive map[string]*peer // remote members currently considered up
}

// Cluster shards device ownership across the member daemons and forwards
// misrouted requests to their owners. It implements server.Router (attach
// via server.Manager.SetRouter) and server.ClusterTelemetrySource. All
// methods are safe for concurrent use.
type Cluster struct {
	cfg   Config
	m     *server.Manager
	ring  *Ring
	peers []*peer // remote members, sorted by ID

	snap atomic.Pointer[snapshot]

	// fwdMu gates new forwards against drain: forwards take the read side,
	// BeginDrain flips draining under the write side, and inflight counts
	// forwards between acquire and completion so Close can wait them out.
	fwdMu    sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	forwardsIn          atomic.Int64
	forwardsOut         atomic.Int64
	forwardErrs         atomic.Int64
	localFallbacks      atomic.Int64
	directRoutedBatches atomic.Int64
	forwardBytesIn      atomic.Int64
	forwardBytesOut     atomic.Int64
	topologyPushes      atomic.Int64

	// epoch advances whenever the live membership changes; topo holds the
	// payload ring-aware clients fetch (published by publish, which only
	// runs on New's goroutine and then the health loop's).
	epoch atomic.Uint64
	topo  atomic.Pointer[server.TopologyInfo]

	stop      chan struct{}
	healthWG  sync.WaitGroup
	closeOnce sync.Once
}

// New builds the federation layer over m and attaches it: the manager's
// Service entry points route through the cluster from here on, and
// /v1/metrics carries the federation counters. Call Close (after draining
// the transports) to detach and tear down the peer pools.
//
// Peer connections dial lazily on first use, so New succeeds even while
// peers are still starting; the health loop governs up/down from then on.
func New(m *server.Manager, cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	if cfg.SelfID == "" {
		return nil, errors.New("cluster: SelfID required (the stream address peers dial)")
	}
	if len(cfg.Peers) > 0 {
		found := false
		for _, p := range cfg.Peers {
			if p == cfg.SelfID {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self ID %q is not in the peers list %v — every member's ID must match its entry in the shared member list exactly (set -node-id to this node's address as the peers know it)", cfg.SelfID, cfg.Peers)
		}
	}
	members := append([]string{cfg.SelfID}, cfg.Peers...)
	ring := NewRing(members, cfg.VNodes)
	c := &Cluster{
		cfg:  cfg,
		m:    m,
		ring: ring,
		stop: make(chan struct{}),
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) PeerClient {
			opts := []client.Option{
				client.WithStreamConns(cfg.StreamConns),
				client.WithTimeout(cfg.Timeout),
			}
			if cfg.MaxWireVersion > 0 {
				opts = append(opts, client.WithMaxWireVersion(cfg.MaxWireVersion))
			}
			return client.NewStream(addr, opts...)
		}
	}
	for _, id := range ring.Members() {
		if id == cfg.SelfID {
			continue
		}
		p := &peer{id: id, c: dial(id)}
		newPeerRelays(c, p)
		c.peers = append(c.peers, p)
	}
	c.publish()
	c.healthWG.Add(1)
	go c.healthLoop()
	m.SetRouter(c)
	m.SetClusterTelemetrySource(c)
	m.SetTopologySource(c)
	return c, nil
}

// Ring exposes the (static) ownership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// publish installs a fresh routing snapshot from the peers' current health
// state, and — when the live membership actually changed — advances the
// topology epoch and pushes the new topology at subscribed client
// connections. Called at construction and by the health loop on transitions
// (never concurrently: both run on one goroutine at a time).
func (c *Cluster) publish() {
	alive := make(map[string]*peer, len(c.peers))
	for _, p := range c.peers {
		if !p.down.Load() {
			alive[p.id] = p
		}
	}
	c.snap.Store(&snapshot{ring: c.ring, alive: alive})

	members := make([]string, 0, len(alive)+1)
	members = append(members, c.cfg.SelfID)
	for id := range alive {
		members = append(members, id)
	}
	sort.Strings(members)
	if prev := c.topo.Load(); prev != nil && slices.Equal(prev.Members, members) {
		return
	}
	info := server.TopologyInfo{
		Epoch:   c.epoch.Add(1),
		VNodes:  c.ring.VNodes(),
		Members: members,
	}
	c.topo.Store(&info)
	if pushed := c.m.NotifyTopologyChanged(info); pushed > 0 {
		c.topologyPushes.Add(int64(pushed))
	}
}

// Topology implements server.TopologySource: the topology served to (and
// pushed at) ring-aware clients. Members lists the *live* members — self
// plus peers currently passing health probes — so clients stop routing at a
// daemon this node considers dead.
func (c *Cluster) Topology() server.TopologyInfo {
	return *c.topo.Load()
}

// healthLoop pings every peer each HealthInterval and republishes the
// routing snapshot when any peer changes state. It is the only goroutine
// that mutates health state, so transitions need no lock.
func (c *Cluster) healthLoop() {
	defer c.healthWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probePeers()
		}
	}
}

// probePeers runs one health round. Probes run concurrently so one dead
// peer's dial timeout doesn't delay the others' verdicts.
func (c *Cluster) probePeers() {
	errs := make([]error, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			errs[i] = p.c.Ping()
		}(i, p)
	}
	wg.Wait()
	changed := false
	for i, p := range c.peers {
		if errs[i] != nil {
			p.fails++
			if p.fails >= c.cfg.FailAfter && !p.down.Load() {
				p.down.Store(true)
				changed = true
			}
			continue
		}
		p.fails = 0
		if p.down.Load() {
			p.down.Store(false)
			changed = true
		}
	}
	if changed {
		c.publish()
	}
}

// acquireForward registers a new outbound forward unless the cluster is
// draining. Every true return must be paired with c.inflight.Done().
func (c *Cluster) acquireForward() bool {
	c.fwdMu.RLock()
	ok := !c.draining
	if ok {
		c.inflight.Add(1)
	}
	c.fwdMu.RUnlock()
	return ok
}

// BeginDrain stops originating new forwards: from now on every request is
// applied locally, so shutdown never races fresh work onto peer
// connections that are about to close. In-flight forwards are unaffected;
// Close waits for them.
func (c *Cluster) BeginDrain() {
	c.fwdMu.Lock()
	c.draining = true
	c.fwdMu.Unlock()
}

// Close tears the federation layer down in drain order: stop new forwards,
// stop the health loop, wait for in-flight forwarded frames to be answered,
// detach from the manager, then close the peer stream clients. Safe to call
// more than once.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.BeginDrain()
		close(c.stop)
		c.healthWG.Wait()
		c.inflight.Wait()
		c.m.ClearRouter(c)
		c.m.ClearClusterTelemetrySource(c)
		c.m.ClearTopologySource(c)
		for _, p := range c.peers {
			_ = p.c.Close()
		}
	})
	return nil
}

// remoteErr converts a typed remote rejection (the owner answered, saying
// no) into the service layer's error type; transport failures return
// ok=false.
func remoteErr(err error) (error, bool) {
	var se *client.StreamError
	if errors.As(err, &se) {
		return &server.Error{Code: se.Code, Err: errors.New(se.Msg)}, true
	}
	return err, false
}

// forwardFailed classifies a failed forward. fallbackLocal is true only
// when the request provably never reached the owner (dial or write
// failure), in which case applying it locally cannot double-apply — that
// outcome is invisible to the caller, so it counts as a local fallback, not
// a forward error. An authoritative rejection from the owner passes through
// typed; an ambiguous failure (timeout, connection lost mid-flight — the
// owner may have applied the request) counts as a forward error and becomes
// a typed CodeUnavailable so the caller retries instead of this node
// guessing and diverging device state.
func (c *Cluster) forwardFailed(err error) (fallbackLocal bool, typed error) {
	if typedErr, ok := remoteErr(err); ok {
		return false, typedErr
	}
	var ns *client.NotSentError
	if errors.As(err, &ns) {
		c.localFallbacks.Add(1)
		return true, nil
	}
	c.forwardErrs.Add(1)
	return false, &server.Error{Code: server.CodeUnavailable, Err: fmt.Errorf("cluster: forward to owner failed: %w", err)}
}

// route resolves the owner of deviceID under the current snapshot. It
// returns nil when the request should be applied locally — because this
// node owns it, the ID is unroutable, or the owner is down (counted as a
// fallback) — and the owning live peer otherwise.
func (c *Cluster) route(deviceID string) *peer {
	if deviceID == "" {
		return nil
	}
	snap := c.snap.Load()
	owner := snap.ring.Owner(deviceID)
	if owner == c.cfg.SelfID {
		return nil
	}
	p, up := snap.alive[owner]
	if !up {
		c.localFallbacks.Add(1)
		return nil
	}
	return p
}

// ForwardedIn implements server.Router: the transport layer reports each
// hop-flagged frame it serves, with its payload size (forward_bytes_in
// counts every hop frame received, whatever its version).
func (c *Cluster) ForwardedIn(bytes int) {
	c.forwardsIn.Add(1)
	c.forwardBytesIn.Add(int64(bytes))
}

// forwardOne serves one request on the owner of deviceID: forwarded when
// the owner is a live peer, applied locally (via local) when this node owns
// it, the owner is down, the cluster is draining, or the forward provably
// never left this node. A typed rejection from the owner (busy, invalid,
// not-found) is authoritative and returned as-is; an ambiguous transport
// failure surfaces as CodeUnavailable (see forwardFailed). A sampled span
// gets the forward round trip attributed to its hop stage (clock reads
// span-gated).
func forwardOne[Res any](c *Cluster, deviceID string, sp *obs.Span,
	forward func(PeerClient) (Res, error), local func() (Res, error)) (Res, error) {
	p := c.route(deviceID)
	if p == nil {
		return local()
	}
	if !c.acquireForward() {
		c.localFallbacks.Add(1)
		return local()
	}
	defer c.inflight.Done()
	c.forwardsOut.Add(1)
	sp.SetForwarded()
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	res, err := forward(p.c)
	if sp != nil {
		sp.Mark(obs.StageHop, time.Since(t0))
	}
	if err == nil {
		return res, nil
	}
	if fallback, typed := c.forwardFailed(err); !fallback {
		var zero Res
		return zero, typed
	}
	return local()
}

// CheckIn implements server.Router.
func (c *Cluster) CheckIn(ci server.CheckIn, sp *obs.Span) (server.Assignment, error) {
	return forwardOne(c, ci.DeviceID, sp,
		func(pc PeerClient) (server.Assignment, error) { return pc.CheckInForward(ci, sp.TraceID()) },
		func() (server.Assignment, error) { return c.m.DeviceCheckInSpan(ci, sp) })
}

// Report implements server.Router.
func (c *Cluster) Report(r server.Report, sp *obs.Span) error {
	_, err := forwardOne(c, r.DeviceID, sp,
		func(pc PeerClient) (struct{}, error) { return struct{}{}, pc.ReportForward(r, sp.TraceID()) },
		func() (struct{}, error) { return struct{}{}, c.m.DeviceReportSpan(r, sp) })
	return err
}

// batchPlan partitions batch indices by serving node: local items (owned
// here, unroutable, or owned by a down peer) and one index group per live
// remote owner.
type batchPlan struct {
	local  []int
	remote map[*peer][]int
}

// planBatch splits items by owner under one snapshot load. ids yields the
// device ID of item i. Down owners are counted as one fallback per batch
// (frame granularity, matching forwardsOut).
func (c *Cluster) planBatch(n int, ids func(i int) string) batchPlan {
	snap := c.snap.Load()
	var plan batchPlan // remote map allocated on first remote item — direct
	// routing makes the all-local batch the steady state
	var downSeen map[string]struct{}
	for i := 0; i < n; i++ {
		id := ids(i)
		if id == "" {
			plan.local = append(plan.local, i)
			continue
		}
		owner := snap.ring.Owner(id)
		if owner == c.cfg.SelfID {
			plan.local = append(plan.local, i)
			continue
		}
		p, up := snap.alive[owner]
		if !up {
			if downSeen == nil {
				downSeen = make(map[string]struct{})
			}
			if _, dup := downSeen[owner]; !dup {
				downSeen[owner] = struct{}{}
				c.localFallbacks.Add(1)
			}
			plan.local = append(plan.local, i)
			continue
		}
		if plan.remote == nil {
			plan.remote = make(map[*peer][]int)
		}
		plan.remote[p] = append(plan.remote[p], i)
	}
	return plan
}

// forwardBatch is the shared engine behind the legacy (decode→re-encode)
// batch entry points: split by owner (planBatch), forward each remote group
// in one frame concurrently, apply the local group inline, and merge
// everything back into request order with per-item errors preserved. A
// remote group whose forward provably never left this node is applied
// locally (degraded mode); a group the owner rejected, or whose outcome is
// unknown, reports the failure on each of its items via errItem — items are
// never dropped, and never guess-applied on the wrong node. One in-flight
// permit covers the whole batch's forwards. The returned bool reports
// whether any item was planned onto a peer (the forwarded flag a ring-aware
// client reads as "your topology is stale"). A sampled span has each remote
// group's round trip accumulated into its hop stage (the groups overlap, so
// the mark is wall time spent forwarding, not a disjoint sum).
func forwardBatch[Req, Res any](c *Cluster, items []Req, sp *obs.Span, deviceID func(Req) string,
	forward func(PeerClient, []Req, uint64) ([]Res, error), local func([]Req) []Res,
	errItem func(msg string) Res) ([]Res, bool) {
	plan := c.planBatch(len(items), func(i int) string { return deviceID(items[i]) })
	if len(plan.remote) == 0 {
		// Every item is local, in request order: serve the batch as-is, no
		// gather copy, no merge. This is the steady state under ring-aware
		// clients.
		c.directRoutedBatches.Add(1)
		return local(items), false
	}
	out := make([]Res, len(items))

	canForward := c.acquireForward()
	forwarded := canForward
	if !canForward {
		// Draining: apply every remote group locally.
		for _, idxs := range plan.remote {
			c.localFallbacks.Add(1)
			plan.local = append(plan.local, idxs...)
		}
		plan.remote = nil
	}
	gather := func(idxs []int) []Req {
		sub := make([]Req, len(idxs))
		for j, i := range idxs {
			sub[j] = items[i]
		}
		return sub
	}
	if len(plan.remote) > 0 {
		sp.SetForwarded()
	}
	var wg sync.WaitGroup
	for p, idxs := range plan.remote {
		wg.Add(1)
		go func(p *peer, idxs []int) {
			defer wg.Done()
			sub := gather(idxs)
			c.forwardsOut.Add(1)
			var t0 time.Time
			if sp != nil {
				t0 = time.Now()
			}
			res, err := forward(p.c, sub, sp.TraceID())
			if sp != nil {
				sp.Mark(obs.StageHop, time.Since(t0))
			}
			if err != nil {
				if fallback, typed := c.forwardFailed(err); fallback {
					res = local(sub)
				} else {
					fill := errItem(typed.Error())
					res = make([]Res, len(sub))
					for j := range res {
						res[j] = fill
					}
				}
			}
			for j, i := range idxs {
				out[i] = res[j]
			}
		}(p, idxs)
	}
	if len(plan.local) > 0 {
		res := local(gather(plan.local))
		for j, i := range plan.local {
			out[i] = res[j]
		}
	}
	wg.Wait()
	if canForward {
		c.inflight.Done()
	}
	return out, forwarded
}

// CheckInBatch implements server.Router (see forwardBatch for the split,
// fan-out, and merge contract).
func (c *Cluster) CheckInBatch(cis []server.CheckIn, sp *obs.Span) ([]server.CheckInResult, bool) {
	return forwardBatch(c, cis, sp,
		func(ci server.CheckIn) string { return ci.DeviceID },
		PeerClient.CheckInBatchForward,
		func(sub []server.CheckIn) []server.CheckInResult { return c.m.CheckInBatchSpan(sub, sp) },
		func(msg string) server.CheckInResult { return server.CheckInResult{Error: msg} })
}

// ReportBatch implements server.Router (see forwardBatch for the split,
// fan-out, and merge contract).
func (c *Cluster) ReportBatch(rs []server.Report, sp *obs.Span) ([]server.ReportResult, bool) {
	return forwardBatch(c, rs, sp,
		func(r server.Report) string { return r.DeviceID },
		PeerClient.ReportBatchForward,
		func(sub []server.Report) []server.ReportResult { return c.m.ReportBatchSpan(sub, sp) },
		func(msg string) server.ReportResult { return server.ReportResult{Error: msg} })
}

// ClusterTelemetry implements server.ClusterTelemetrySource. It reads only
// atomics and the immutable snapshot, per that interface's contract (the
// manager polls it under its own mutex).
func (c *Cluster) ClusterTelemetry() server.ClusterTelemetry {
	snap := c.snap.Load()
	states := make(map[string]string, len(c.peers))
	for _, p := range c.peers {
		if _, up := snap.alive[p.id]; up {
			states[p.id] = "up"
		} else {
			states[p.id] = "down"
		}
	}
	return server.ClusterTelemetry{
		NodeID:              c.cfg.SelfID,
		RingSize:            c.ring.Size(),
		VNodes:              c.ring.VNodes(),
		PeerStates:          states,
		ForwardsIn:          c.forwardsIn.Load(),
		ForwardsOut:         c.forwardsOut.Load(),
		ForwardErrors:       c.forwardErrs.Load(),
		LocalFallbacks:      c.localFallbacks.Load(),
		DirectRoutedBatches: c.directRoutedBatches.Load(),
		TopologyEpoch:       c.epoch.Load(),
		TopologyPushes:      c.topologyPushes.Load(),
		ForwardBytesIn:      c.forwardBytesIn.Load(),
		ForwardBytesOut:     c.forwardBytesOut.Load(),
	}
}

// Counters returns the raw federation counters (tests, harnesses).
func (c *Cluster) Counters() (forwardsIn, forwardsOut, forwardErrs, localFallbacks int64) {
	return c.forwardsIn.Load(), c.forwardsOut.Load(), c.forwardErrs.Load(), c.localFallbacks.Load()
}

var _ server.Router = (*Cluster)(nil)
var _ server.ClusterTelemetrySource = (*Cluster)(nil)
var _ server.TopologySource = (*Cluster)(nil)

// String identifies the member for logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster node %s (%d members, %d vnodes)", c.cfg.SelfID, c.ring.Size(), c.ring.VNodes())
}
