package obs

import (
	"strings"
	"testing"
)

func TestPromHistExposition(t *testing.T) {
	var h Hist
	h.Observe(1000)
	h.Observe(2000)
	h.Observe(1 << 30)
	var b strings.Builder
	PromFamily(&b, "venn_test_seconds", "test histogram.", "histogram")
	PromHist(&b, "venn_test_seconds", `op="checkin"`, h.Snapshot())
	text := b.String()
	fams, samples, err := ValidateExposition(text)
	if err != nil {
		t.Fatalf("our own exposition failed validation: %v\n%s", err, text)
	}
	if fams != 1 || samples != NumBuckets+2 {
		t.Fatalf("families=%d samples=%d, want 1 and %d", fams, samples, NumBuckets+2)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatal("histogram missing +Inf bucket")
	}
	if !strings.Contains(text, "venn_test_seconds_count{op=\"checkin\"} 3") {
		t.Fatalf("missing count sample:\n%s", text)
	}
}

func TestPromCountersAndGauges(t *testing.T) {
	var b strings.Builder
	PromFamily(&b, "venn_checkins_total", "served check-ins.", "counter")
	PromSample(&b, "venn_checkins_total", "", 12345)
	PromFamily(&b, "venn_peers_up", "live peers.", "gauge")
	PromSample(&b, "venn_peers_up", `node="a:1"`, 2)
	if _, _, err := ValidateExposition(b.String()); err != nil {
		t.Fatalf("counter/gauge exposition invalid: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":     "# TYPE 9bad counter\n9bad 1\n",
		"unknown type":        "# TYPE x flooble\nx 1\n",
		"unquoted label":      "# TYPE x counter\nx{a=b} 1\n",
		"bad value":           "# TYPE x counter\nx pancake\n",
		"type after samples":  "x 1\n# TYPE x counter\n",
		"duplicate type":      "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"no inf bucket":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"count mismatch":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 7\nh_sum 1\n",
		"unterminated labels": "# TYPE x counter\nx{a=\"b\" 1\n",
	}
	for name, text := range cases {
		if _, _, err := ValidateExposition(text); err == nil {
			t.Errorf("%s: validator accepted malformed exposition %q", name, text)
		}
	}
}

func TestValidateExpositionAcceptsEscapes(t *testing.T) {
	text := "# HELP x a help line\n# TYPE x gauge\nx{msg=\"a \\\"b\\\" \\n c\\\\\"} 1.5e3 1700000000\n"
	if _, _, err := ValidateExposition(text); err != nil {
		t.Fatalf("escaped label value rejected: %v", err)
	}
}
