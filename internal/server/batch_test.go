package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCheckInBatchBasic(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	st, err := m.RegisterJob(JobSpec{Name: "kbd", Category: "General", DemandPerRound: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	res := m.CheckInBatch([]CheckIn{
		{DeviceID: "d0", CPU: 0.6, Mem: 0.6},
		{DeviceID: "d1", CPU: 0.7, Mem: 0.7},
		{DeviceID: "", CPU: 0.5, Mem: 0.5},   // missing id: per-item error
		{DeviceID: "d2", CPU: 0.5, Mem: 0.5}, // demand filled: no assignment
	})
	if len(res) != 4 {
		t.Fatalf("results: %d", len(res))
	}
	for i := 0; i < 2; i++ {
		if res[i].Error != "" || !res[i].Assigned || res[i].JobID != st.ID {
			t.Fatalf("result %d: %+v", i, res[i])
		}
	}
	if res[2].Error == "" || res[2].Assigned {
		t.Fatalf("missing device_id must error: %+v", res[2])
	}
	if res[3].Error != "" || res[3].Assigned {
		t.Fatalf("over-demand check-in must be refused without error: %+v", res[3])
	}

	// The whole batch ran under one admission pass: both workers report
	// and the round completes.
	rr := m.ReportBatch([]Report{
		{DeviceID: "d0", JobID: st.ID, OK: true, DurationSeconds: 20},
		{DeviceID: "d1", JobID: st.ID, OK: true, DurationSeconds: 25},
		{DeviceID: "ghost", JobID: st.ID, OK: true, DurationSeconds: 5},
	})
	if rr[0].Error != "" || rr[1].Error != "" {
		t.Fatalf("valid reports errored: %+v", rr)
	}
	if rr[2].Error == "" {
		t.Fatalf("unknown device must error: %+v", rr[2])
	}
	got, err := m.JobStatusByID(st.ID)
	if err != nil || got.State != "done" {
		t.Fatalf("job after batch reports: %+v %v", got, err)
	}
}

func TestCheckInBatchDuplicateDevice(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 5, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	// The same device twice in one batch: the reservation taken by the
	// first occurrence must reject the second as busy.
	res := m.CheckInBatch([]CheckIn{
		{DeviceID: "dup", CPU: 0.6, Mem: 0.6},
		{DeviceID: "dup", CPU: 0.6, Mem: 0.6},
	})
	if !res[0].Assigned {
		t.Fatalf("first occurrence: %+v", res[0])
	}
	if res[1].Assigned || res[1].Error == "" {
		t.Fatalf("duplicate occurrence must be rejected busy: %+v", res[1])
	}
}

func TestCheckInBatchDailyBudget(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 10, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	res := m.CheckInBatch([]CheckIn{{DeviceID: "d0", CPU: 0.6, Mem: 0.6}})
	if !res[0].Assigned {
		t.Fatalf("first: %+v", res[0])
	}
	if rr := m.ReportBatch([]Report{{DeviceID: "d0", JobID: res[0].JobID, OK: true, DurationSeconds: 9}}); rr[0].Error != "" {
		t.Fatal(rr[0].Error)
	}
	// Same day: refused, no error.
	res = m.CheckInBatch([]CheckIn{{DeviceID: "d0", CPU: 0.6, Mem: 0.6}})
	if res[0].Assigned || res[0].Error != "" {
		t.Fatalf("same-day: %+v", res[0])
	}
	// Next day: assignable again.
	clk.advance(25 * time.Hour)
	res = m.CheckInBatch([]CheckIn{{DeviceID: "d0", CPU: 0.6, Mem: 0.6}})
	if !res[0].Assigned {
		t.Fatalf("next-day: %+v", res[0])
	}
}

func TestBatchMatchesSingleSemantics(t *testing.T) {
	// The same sequence of check-ins must yield identical assignments
	// through the batch and the single entry points.
	run := func(batched bool) []Assignment {
		clk := newFakeClock()
		m := newTestManager(clk)
		if _, err := m.RegisterJob(JobSpec{Category: "High-Perf", DemandPerRound: 2, Rounds: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 3, Rounds: 1}); err != nil {
			t.Fatal(err)
		}
		cis := []CheckIn{
			{DeviceID: "strong-a", CPU: 0.9, Mem: 0.9},
			{DeviceID: "weak-a", CPU: 0.2, Mem: 0.2},
			{DeviceID: "strong-b", CPU: 0.8, Mem: 0.8},
			{DeviceID: "weak-b", CPU: 0.3, Mem: 0.1},
		}
		out := make([]Assignment, len(cis))
		if batched {
			for i, r := range m.CheckInBatch(cis) {
				if r.Error != "" {
					t.Fatalf("batch item %d: %s", i, r.Error)
				}
				out[i] = r.Assignment
			}
			return out
		}
		for i, ci := range cis {
			asg, err := m.DeviceCheckIn(ci)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = asg
		}
		return out
	}
	single, batch := run(false), run(true)
	for i := range single {
		if single[i] != batch[i] {
			t.Errorf("item %d: single=%+v batch=%+v", i, single[i], batch[i])
		}
	}
}

func TestHTTPBatchEndpoints(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/jobs", JobSpec{Name: "kbd", Category: "General", DemandPerRound: 2, Rounds: 1})
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp = postJSON(t, srv, "/v1/checkin/batch", CheckInBatchRequest{CheckIns: []CheckIn{
		{DeviceID: "b0", CPU: 0.6, Mem: 0.6},
		{DeviceID: "b1", CPU: 0.7, Mem: 0.7},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkin batch status %d", resp.StatusCode)
	}
	var cbr CheckInBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&cbr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cbr.Results) != 2 || !cbr.Results[0].Assigned || !cbr.Results[1].Assigned {
		t.Fatalf("batch results: %+v", cbr.Results)
	}

	resp = postJSON(t, srv, "/v1/report/batch", ReportBatchRequest{Reports: []Report{
		{DeviceID: "b0", JobID: st.ID, OK: true, DurationSeconds: 30},
		{DeviceID: "b1", JobID: st.ID, OK: true, DurationSeconds: 31},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report batch status %d", resp.StatusCode)
	}
	var rbr ReportBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&rbr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rbr.Results) != 2 || rbr.Results[0].Error != "" || rbr.Results[1].Error != "" {
		t.Fatalf("report results: %+v", rbr.Results)
	}

	got, err := m.JobStatusByID(st.ID)
	if err != nil || got.State != "done" {
		t.Fatalf("job after HTTP batches: %+v %v", got, err)
	}

	// Oversized batches are rejected up front.
	huge := CheckInBatchRequest{CheckIns: make([]CheckIn, MaxBatch+1)}
	for i := range huge.CheckIns {
		huge.CheckIns[i] = CheckIn{DeviceID: fmt.Sprintf("x%d", i)}
	}
	resp = postJSON(t, srv, "/v1/checkin/batch", huge)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status %d", resp.StatusCode)
	}

	// Wrong method.
	r2, err := http.Get(srv.URL + "/v1/checkin/batch")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET checkin/batch status %d", r2.StatusCode)
	}

	// Malformed JSON.
	r3, err := http.Post(srv.URL+"/v1/report/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON batch status %d", r3.StatusCode)
	}
}
