package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"venn/internal/device"
	"venn/internal/simtime"
	"venn/internal/stats"
)

// Fleet bundles a device population with its availability trace over a
// simulation horizon. It is the complete "resources" input of one experiment.
type Fleet struct {
	Devices   []*device.Device `json:"devices"`
	Intervals [][]Interval     `json:"intervals"` // Intervals[i] belongs to Devices[i]
	Horizon   simtime.Duration `json:"horizon"`
}

// FleetConfig controls fleet synthesis.
type FleetConfig struct {
	NumDevices   int
	Horizon      simtime.Duration
	Capacity     *CapacityModel
	Availability *AvailabilityModel
	Seed         int64
}

// DefaultFleetConfig returns a mid-size fleet over a 4-day horizon.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		NumDevices:   5000,
		Horizon:      4 * simtime.Day,
		Capacity:     DefaultCapacityModel(),
		Availability: DefaultAvailabilityModel(),
		Seed:         1,
	}
}

// GenerateFleet synthesizes a fleet from the config.
func GenerateFleet(cfg FleetConfig) *Fleet {
	if cfg.Capacity == nil {
		cfg.Capacity = DefaultCapacityModel()
	}
	if cfg.Availability == nil {
		cfg.Availability = DefaultAvailabilityModel()
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * simtime.Day
	}
	rng := stats.NewRNG(cfg.Seed)
	capRNG := rng.Fork()
	availRNG := rng.Fork()
	f := &Fleet{
		Devices:   cfg.Capacity.GenerateDevices(cfg.NumDevices, capRNG),
		Intervals: make([][]Interval, cfg.NumDevices),
		Horizon:   cfg.Horizon,
	}
	for i := range f.Devices {
		f.Intervals[i] = cfg.Availability.Generate(availRNG, cfg.Horizon)
	}
	return f
}

// Reset clears per-run mutable device state (task-per-day bookkeeping) so
// the same fleet can be replayed under another scheduler.
func (f *Fleet) Reset() {
	for _, d := range f.Devices {
		d.LastTaskDay = -1
	}
}

// Clone returns a fleet that can be simulated concurrently with the
// original: devices are copied (the engine mutates their task-per-day
// state), while the availability intervals — read-only during a run — are
// shared.
func (f *Fleet) Clone() *Fleet {
	devs := make([]*device.Device, len(f.Devices))
	for i, d := range f.Devices {
		cp := *d
		devs[i] = &cp
	}
	return &Fleet{Devices: devs, Intervals: f.Intervals, Horizon: f.Horizon}
}

// CategoryCounts returns how many devices satisfy each of the standard
// requirement strata (a device can satisfy several).
func (f *Fleet) CategoryCounts() map[string]int {
	out := make(map[string]int)
	for _, d := range f.Devices {
		for _, r := range device.Categories() {
			if r.Eligible(d) {
				out[r.Name]++
			}
		}
	}
	return out
}

// Save writes the fleet as JSON.
func (f *Fleet) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadFleet reads a fleet from JSON.
func LoadFleet(r io.Reader) (*Fleet, error) {
	var f Fleet
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("decode fleet: %w", err)
	}
	if len(f.Devices) != len(f.Intervals) {
		return nil, fmt.Errorf("fleet corrupt: %d devices but %d interval lists",
			len(f.Devices), len(f.Intervals))
	}
	return &f, nil
}

// SaveFile writes the fleet to a JSON file.
func (f *Fleet) SaveFile(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return f.Save(w)
}

// LoadFleetFile reads a fleet from a JSON file.
func LoadFleetFile(path string) (*Fleet, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return LoadFleet(r)
}
