// Package job models collaborative-learning jobs: their resource
// requirements, per-round resource requests, the synchronous-round lifecycle
// (schedule -> collect responses -> complete or abort on deadline), and the
// completion-time accounting the evaluation reports (scheduling delay,
// response-collection time, JCT).
package job

import (
	"fmt"
	"math"

	"venn/internal/device"
	"venn/internal/simtime"
)

// ID identifies a job within one simulation.
type ID int32

// State is a job's position in its lifecycle.
type State int

const (
	// StatePending: created but not yet arrived (arrival time in future).
	StatePending State = iota
	// StateScheduling: a request is open and still acquiring devices.
	StateScheduling
	// StateCollecting: all devices assigned; waiting for responses.
	StateCollecting
	// StateDone: all rounds finished.
	StateDone
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateScheduling:
		return "scheduling"
	case StateCollecting:
		return "collecting"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ReportFraction is the fraction of a round's target participants that must
// report back for the round to succeed (§5.1: 80%).
const ReportFraction = 0.8

// Deadline bounds for a round's response collection (§5.1: 5-15 minutes
// depending on round demand).
const (
	MinDeadline = 5 * simtime.Minute
	MaxDeadline = 15 * simtime.Minute
	// deadlineDemandScale is the per-round demand at which the deadline
	// saturates at MaxDeadline.
	deadlineDemandScale = 1000.0
)

// Attempt records one scheduling attempt of a round. A round may take
// several attempts if the deadline fires before enough responses arrive.
type Attempt struct {
	RequestTime simtime.Time // request (re)submission
	SchedDone   simtime.Time // the moment the last needed device was assigned
	EndTime     simtime.Time // completion or abort
	Assigned    int
	Responses   int
	Failures    int
	Aborted     bool
}

// SchedulingDelay is the time this attempt spent acquiring devices.
func (a Attempt) SchedulingDelay() simtime.Duration {
	if a.SchedDone < a.RequestTime {
		return 0
	}
	return a.SchedDone.Sub(a.RequestTime)
}

// ResponseTime is the time from full assignment to attempt end.
func (a Attempt) ResponseTime() simtime.Duration {
	if a.SchedDone == 0 && a.EndTime == 0 {
		return 0
	}
	if a.EndTime < a.SchedDone {
		return 0
	}
	return a.EndTime.Sub(a.SchedDone)
}

// RoundRecord aggregates the attempts of one training round.
type RoundRecord struct {
	Round    int // 1-based
	Start    simtime.Time
	End      simtime.Time
	Attempts []Attempt
}

// Aborts returns how many attempts of the round were aborted.
func (r RoundRecord) Aborts() int {
	n := 0
	for _, a := range r.Attempts {
		if a.Aborted {
			n++
		}
	}
	return n
}

// Job is one collaborative-learning job.
type Job struct {
	ID          ID
	Name        string
	Requirement device.Requirement
	Demand      int // participants required per round
	Rounds      int // total training rounds
	Arrival     simtime.Time

	// TaskScale scales per-device task duration relative to the reference
	// model (a heavier model trains longer). 1.0 by default.
	TaskScale float64

	// State of the in-flight request.
	state      State
	round      int // current round, 1-based; round > Rounds means done
	assigned   int
	responses  int
	failures   int
	curAttempt Attempt

	records    []RoundRecord
	completion simtime.Time

	// serviceTime accumulates the time the job actively held its full
	// per-round device allocation (response-collection phases). The
	// fairness knob (§4.4) reads this as the job's "time usage" t_i.
	serviceTime simtime.Duration
}

// New creates a job that arrives at the given time.
func New(id ID, req device.Requirement, demand, rounds int, arrival simtime.Time) *Job {
	if demand < 1 {
		demand = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	return &Job{
		ID:          id,
		Name:        fmt.Sprintf("job%d", id),
		Requirement: req,
		Demand:      demand,
		Rounds:      rounds,
		Arrival:     arrival,
		TaskScale:   1.0,
		state:       StatePending,
	}
}

// State returns the job's lifecycle state.
func (j *Job) State() State { return j.state }

// Round returns the current 1-based round number (Rounds+1 once done).
func (j *Job) Round() int { return j.round }

// CompletedRounds returns the number of successfully finished rounds.
func (j *Job) CompletedRounds() int {
	if j.state == StateDone {
		return j.Rounds
	}
	return j.round - 1
}

// Done reports whether the job has finished all rounds.
func (j *Job) Done() bool { return j.state == StateDone }

// Completion returns the completion time (valid only once Done).
func (j *Job) Completion() simtime.Time { return j.completion }

// JCT returns the job completion time (valid only once Done).
func (j *Job) JCT() simtime.Duration { return j.completion.Sub(j.Arrival) }

// RemainingDemand returns how many more devices the open request needs.
// Zero when no request is open.
func (j *Job) RemainingDemand() int {
	if j.state != StateScheduling {
		return 0
	}
	return j.Demand - j.assigned
}

// RemainingRounds returns the number of rounds left including the current.
func (j *Job) RemainingRounds() int {
	if j.state == StateDone {
		return 0
	}
	rem := j.Rounds - j.round + 1
	if j.state == StatePending {
		rem = j.Rounds
	}
	return rem
}

// RemainingService estimates total outstanding device-demand (remaining
// rounds x per-round demand), the quantity SRSF orders by.
func (j *Job) RemainingService() int { return j.RemainingRounds() * j.Demand }

// TotalDemand returns the job's lifetime device demand.
func (j *Job) TotalDemand() int { return j.Rounds * j.Demand }

// TargetResponses returns how many responses complete a round.
func (j *Job) TargetResponses() int {
	t := int(math.Ceil(ReportFraction * float64(j.Demand)))
	if t < 1 {
		t = 1
	}
	return t
}

// Deadline returns the response-collection deadline for this job's rounds,
// interpolated in [MinDeadline, MaxDeadline] by per-round demand (§5.1).
func (j *Job) Deadline() simtime.Duration {
	frac := float64(j.Demand) / deadlineDemandScale
	if frac > 1 {
		frac = 1
	}
	d := simtime.Duration(float64(MinDeadline) + frac*float64(MaxDeadline-MinDeadline))
	return simtime.Clamp(d, MinDeadline, MaxDeadline)
}

// ServiceTime returns the accumulated active-service time (see §4.4).
func (j *Job) ServiceTime() simtime.Duration { return j.serviceTime }

// Records returns the per-round records accumulated so far.
func (j *Job) Records() []RoundRecord { return j.records }

// --- lifecycle transitions, driven by the simulator ---

// Start opens the first round's request. Must be called exactly once, at the
// job's arrival time.
func (j *Job) Start(now simtime.Time) {
	if j.state != StatePending {
		panic(fmt.Sprintf("job %d: Start in state %v", j.ID, j.state))
	}
	j.round = 1
	j.beginRound(now)
}

// beginRound opens the request for the current round.
func (j *Job) beginRound(now simtime.Time) {
	j.records = append(j.records, RoundRecord{Round: j.round, Start: now})
	j.beginAttempt(now)
}

// beginAttempt opens a (re)scheduling attempt of the current round.
func (j *Job) beginAttempt(now simtime.Time) {
	j.state = StateScheduling
	j.assigned, j.responses, j.failures = 0, 0, 0
	j.curAttempt = Attempt{RequestTime: now}
}

// AddAssignment notes that one device was matched to the open request.
// It returns true when the request just became fully assigned (the moment
// the scheduling delay ends and response collection begins).
func (j *Job) AddAssignment(now simtime.Time) (fullyAssigned bool) {
	if j.state != StateScheduling {
		panic(fmt.Sprintf("job %d: AddAssignment in state %v", j.ID, j.state))
	}
	j.assigned++
	if j.assigned >= j.Demand {
		j.state = StateCollecting
		j.curAttempt.SchedDone = now
		j.curAttempt.Assigned = j.assigned
		return true
	}
	return false
}

// AddResponse notes one device response. It returns true when the round just
// completed (enough responses collected).
func (j *Job) AddResponse(now simtime.Time) (roundComplete bool) {
	if j.state != StateCollecting && j.state != StateScheduling {
		// Late responses after round completion are ignored.
		return false
	}
	j.responses++
	j.curAttempt.Responses = j.responses
	if j.state == StateCollecting && j.responses >= j.TargetResponses() {
		return true
	}
	return false
}

// AddFailure notes one device dropout.
func (j *Job) AddFailure() {
	if j.state == StateCollecting || j.state == StateScheduling {
		j.failures++
		j.curAttempt.Failures = j.failures
	}
}

// AttemptFailures returns the dropout count of the current attempt.
func (j *Job) AttemptFailures() int { return j.failures }

// AttemptResponses returns the response count of the current attempt.
func (j *Job) AttemptResponses() int { return j.responses }

// AttemptAssigned returns the assignment count of the current attempt.
func (j *Job) AttemptAssigned() int { return j.assigned }

// CanComplete reports whether enough responses have arrived to finish the
// round (only meaningful while collecting).
func (j *Job) CanComplete() bool {
	return j.state == StateCollecting && j.responses >= j.TargetResponses()
}

// CompleteRound finalizes the current round. It returns true when the whole
// job just finished. Call only when CanComplete().
func (j *Job) CompleteRound(now simtime.Time) (jobDone bool) {
	if j.state != StateCollecting {
		panic(fmt.Sprintf("job %d: CompleteRound in state %v", j.ID, j.state))
	}
	j.curAttempt.EndTime = now
	rec := &j.records[len(j.records)-1]
	rec.Attempts = append(rec.Attempts, j.curAttempt)
	rec.End = now
	j.serviceTime += j.curAttempt.ResponseTime()

	j.round++
	if j.round > j.Rounds {
		j.state = StateDone
		j.completion = now
		return true
	}
	j.beginRound(now)
	return false
}

// AbortAttempt abandons the current attempt (deadline fired with too few
// responses) and opens a fresh attempt of the same round.
func (j *Job) AbortAttempt(now simtime.Time) {
	if j.state != StateCollecting && j.state != StateScheduling {
		return
	}
	j.curAttempt.EndTime = now
	j.curAttempt.Aborted = true
	rec := &j.records[len(j.records)-1]
	rec.Attempts = append(rec.Attempts, j.curAttempt)
	// A partially collected attempt still consumed devices; count the
	// active period toward service time so fairness sees the usage.
	j.serviceTime += j.curAttempt.ResponseTime()
	j.beginAttempt(now)
}

// --- aggregate metrics over the finished job ---

// TotalSchedulingDelay sums scheduling delay over all attempts.
func (j *Job) TotalSchedulingDelay() simtime.Duration {
	var total simtime.Duration
	for _, r := range j.records {
		for _, a := range r.Attempts {
			total += a.SchedulingDelay()
		}
	}
	return total
}

// TotalResponseTime sums response-collection time over all attempts.
func (j *Job) TotalResponseTime() simtime.Duration {
	var total simtime.Duration
	for _, r := range j.records {
		for _, a := range r.Attempts {
			total += a.ResponseTime()
		}
	}
	return total
}

// TotalAborts counts aborted attempts across all rounds.
func (j *Job) TotalAborts() int {
	n := 0
	for _, r := range j.records {
		n += r.Aborts()
	}
	return n
}

// String implements fmt.Stringer.
func (j *Job) String() string {
	return fmt.Sprintf("%s[%s D=%d R=%d %v]", j.Name, j.Requirement, j.Demand, j.Rounds, j.state)
}
