package client

import (
	"encoding/binary"
	"errors"
	"fmt"

	"venn/internal/server"
	"venn/internal/transport"
)

// Forwarded-request variants of the serving calls, used by the federation
// layer (internal/cluster) when relaying a request to the daemon that owns
// its device. They are identical to their plain counterparts except that the
// request opcode carries transport.HopFlag, which tells the receiving daemon
// to serve the request itself and never forward it again (the hop guard
// against routing loops between daemons with disagreeing rings). The same
// multiplexing connection pool carries forwarded and first-hand traffic.
//
// trace is the forwarding daemon's sampled span ID (0 when the originating
// request is unsampled): a nonzero trace rides ahead of the payload under
// transport.TraceFlag, so the receiving daemon records the hop under the
// same trace ID and the two flight-recorder entries can be joined.

// CheckInForward relays a check-in to its owning daemon.
func (s *StreamClient) CheckInForward(ci server.CheckIn, trace uint64) (server.Assignment, error) {
	asg, _, err := s.checkInOp(transport.OpCheckIn|transport.HopFlag, ci, trace)
	return asg, err
}

// CheckInBatchForward relays an owner-split check-in batch to its owning
// daemon. Results[i] answers cis[i].
func (s *StreamClient) CheckInBatchForward(cis []server.CheckIn, trace uint64) ([]server.CheckInResult, error) {
	res, _, err := s.checkInBatchOp(transport.OpCheckInBatch|transport.HopFlag, cis, trace)
	return res, err
}

// ReportForward relays a task report to its owning daemon.
func (s *StreamClient) ReportForward(r server.Report, trace uint64) error {
	_, err := s.reportOp(transport.OpReport|transport.HopFlag, r, trace)
	return err
}

// ReportBatchForward relays an owner-split report batch to its owning
// daemon. Results[i] answers rs[i].
func (s *StreamClient) ReportBatchForward(rs []server.Report, trace uint64) ([]server.ReportResult, error) {
	res, _, err := s.reportBatchOp(transport.OpReportBatch|transport.HopFlag, rs, trace)
	return res, err
}

// ErrRawUnsupported reports that a raw (pre-encoded) forward cannot be sent
// because the connection negotiated a pre-v2 protocol — the raw bytes are in
// the v2 layout the peer does not speak. Callers fall back to the typed
// forward, which re-encodes per the negotiated version.
var ErrRawUnsupported = errors.New("client: raw forward requires wire protocol v2")

// rawForwardEncoder frames a pre-encoded batch: uvarint item count followed
// by the already-encoded items, exactly the canonical v2 batch-request
// layout — built into a pooled buffer, relayed without decoding.
func rawForwardEncoder(items []byte, n int) reqEncoder {
	return func(ver byte) ([]byte, byte, error) {
		if ver < transport.Version2 {
			return nil, 0, ErrRawUnsupported
		}
		payload := binary.AppendUvarint(transport.GetBuf(len(items)+binary.MaxVarintLen64), uint64(n))
		return append(payload, items...), transport.Version2, nil
	}
}

// CheckInBatchForwardRaw relays n already-encoded check-in items (the
// concatenated v2 wire bytes) to their owning daemon in one hop frame.
// Results[i] answers item i in buffer order.
func (s *StreamClient) CheckInBatchForwardRaw(items []byte, n int, trace uint64) ([]server.CheckInResult, error) {
	buf, _, _, err := s.doTrace(transport.OpCheckInBatch|transport.HopFlag, trace, rawForwardEncoder(items, n))
	if err != nil {
		return nil, err
	}
	var resp server.CheckInBatchResponse
	if err := resp.UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	if len(resp.Results) != n {
		return nil, fmt.Errorf("client: raw forward reply has %d results for %d items", len(resp.Results), n)
	}
	return resp.Results, nil
}

// ReportBatchForwardRaw relays n already-encoded report items to their
// owning daemon in one hop frame. Results[i] answers item i in buffer order.
func (s *StreamClient) ReportBatchForwardRaw(items []byte, n int, trace uint64) ([]server.ReportResult, error) {
	buf, _, _, err := s.doTrace(transport.OpReportBatch|transport.HopFlag, trace, rawForwardEncoder(items, n))
	if err != nil {
		return nil, err
	}
	var resp server.ReportBatchResponse
	if err := resp.UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	if len(resp.Results) != n {
		return nil, fmt.Errorf("client: raw forward reply has %d results for %d items", len(resp.Results), n)
	}
	return resp.Results, nil
}
