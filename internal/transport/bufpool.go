package transport

import "sync"

// Frame buffer pooling. The stream hot path used to allocate three times per
// request — the read payload in ReadFrame, the encoder scratch in
// MarshalBinary, and nothing reusable on the client side — and
// BenchmarkForwardPath showed those allocations dominating the forward
// path's profile. GetBuf/PutBuf recycle byte slices through a sync.Pool so
// the server's per-frame read/write buffers, the client's request scratch,
// and the relay's coalescing buffers all reuse steady-state memory.
//
// The pool holds *[]byte (not []byte) so Put never allocates an interface
// box for the slice header. Buffers above maxPooledBuf are left to the GC:
// one multi-megabyte metrics reply must not pin its footprint forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns a zero-length buffer with capacity at least n. The buffer
// is pool-owned: hand it back with PutBuf once nothing references it.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) >= n {
		return (*bp)[:0]
	}
	// Too small for this caller; recycle it for a smaller one and size a
	// fresh buffer generously so it keeps being reusable.
	bufPool.Put(bp)
	if n < 4096 {
		n = 4096
	}
	return make([]byte, 0, n)
}

// PutBuf returns a buffer obtained from GetBuf (or any buffer the caller
// owns outright) to the pool. The caller must not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
