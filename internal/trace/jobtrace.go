package trace

import (
	"sort"

	"venn/internal/stats"
)

// JobSpec is one entry of the CL job demand trace (Figure 8b): how many
// training rounds the job runs and how many participants each round needs.
type JobSpec struct {
	Rounds         int `json:"rounds"`
	DemandPerRound int `json:"demand_per_round"`
}

// TotalDemand returns the job's total device demand over its lifetime.
func (s JobSpec) TotalDemand() int { return s.Rounds * s.DemandPerRound }

// JobTraceModel samples JobSpecs with the heavy-tailed marginals of the
// paper's production job trace: rounds span [MinRounds, MaxRounds] and
// per-round participant demand spans [MinDemand, MaxDemand], both roughly
// log-normal (most jobs are small; a few are enormous).
type JobTraceModel struct {
	MinRounds, MaxRounds int
	MinDemand, MaxDemand int
	// Log-normal (median, p95) parameters for each marginal.
	RoundsMedian, RoundsP95 float64
	DemandMedian, DemandP95 float64
}

// DefaultJobTraceModel matches the ranges of Figure 8b: rounds up to ~4000,
// participants per round up to ~1500.
func DefaultJobTraceModel() *JobTraceModel {
	return &JobTraceModel{
		MinRounds: 10, MaxRounds: 4000,
		MinDemand: 10, MaxDemand: 1500,
		RoundsMedian: 120, RoundsP95: 2000,
		DemandMedian: 60, DemandP95: 800,
	}
}

// Sample draws one job spec.
func (m *JobTraceModel) Sample(rng *stats.RNG) JobSpec {
	r := int(rng.LogNormalMedianP95(m.RoundsMedian, m.RoundsP95))
	d := int(rng.LogNormalMedianP95(m.DemandMedian, m.DemandP95))
	return JobSpec{
		Rounds:         clampInt(r, m.MinRounds, m.MaxRounds),
		DemandPerRound: clampInt(d, m.MinDemand, m.MaxDemand),
	}
}

// Generate draws n job specs.
func (m *JobTraceModel) Generate(n int, rng *stats.RNG) []JobSpec {
	out := make([]JobSpec, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SplitByTotalDemand partitions specs into those with below-average and
// above-average total demand — the paper's Small/Large workload split.
func SplitByTotalDemand(specs []JobSpec) (small, large []JobSpec) {
	if len(specs) == 0 {
		return nil, nil
	}
	total := 0.0
	for _, s := range specs {
		total += float64(s.TotalDemand())
	}
	avg := total / float64(len(specs))
	for _, s := range specs {
		if float64(s.TotalDemand()) < avg {
			small = append(small, s)
		} else {
			large = append(large, s)
		}
	}
	return small, large
}

// SplitByRoundDemand partitions specs into those with below-average and
// above-average per-round demand — the paper's Low/High workload split.
func SplitByRoundDemand(specs []JobSpec) (low, high []JobSpec) {
	if len(specs) == 0 {
		return nil, nil
	}
	total := 0.0
	for _, s := range specs {
		total += float64(s.DemandPerRound)
	}
	avg := total / float64(len(specs))
	for _, s := range specs {
		if float64(s.DemandPerRound) < avg {
			low = append(low, s)
		} else {
			high = append(high, s)
		}
	}
	return low, high
}

// DemandPercentileThresholds returns the total-demand values at the given
// percentiles of the trace, used by Table 2's per-percentile breakdown.
func DemandPercentileThresholds(specs []JobSpec, percentiles []float64) []float64 {
	totals := make([]float64, len(specs))
	for i, s := range specs {
		totals[i] = float64(s.TotalDemand())
	}
	sort.Float64s(totals)
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		out[i] = stats.PercentileSorted(totals, p)
	}
	return out
}
