// Command venndaemon runs Venn as a live HTTP resource manager (the
// standalone service of the paper's Figure 6). CL jobs register resource
// requests, devices check in as they become available, and the daemon
// assigns each device to a job using the IRS scheduling and tier-based
// matching algorithms.
//
// Usage:
//
//	venndaemon -addr :8080 -tiers 3 -epsilon 0
//
// API:
//
//	POST /v1/jobs           {"name":"kbd","category":"General","demand_per_round":100,"rounds":50}
//	POST /v1/checkin        {"device_id":"phone-1","cpu":0.8,"mem":0.7}
//	POST /v1/checkin/batch  {"checkins":[...]}
//	POST /v1/report         {"device_id":"phone-1","job_id":0,"ok":true,"duration_seconds":42}
//	POST /v1/report/batch   {"reports":[...]}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/stats, /v1/metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"venn/internal/core"
	"venn/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		tiers   = flag.Int("tiers", 3, "device-tier granularity V")
		epsilon = flag.Float64("epsilon", 0, "fairness knob")
		shards  = flag.Int("shards", 0, "device-state lock shards (0 = default)")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Tiers = *tiers
	opts.Epsilon = *epsilon
	m := server.NewManager(server.Config{Options: opts, Shards: *shards})
	fmt.Printf("venndaemon listening on %s (tiers=%d epsilon=%.1f shards=%d)\n",
		*addr, *tiers, *epsilon, m.MetricsSnapshot().Shards)
	if err := server.Serve(*addr, m); err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon:", err)
		os.Exit(1)
	}
}
