package policy

import (
	"sort"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// FIFO hands each device to the oldest eligible open request. It is the
// promotion of the former core.Venn assignFIFO ablation into a first-class
// policy: plain FIFO order, optionally with Venn's tier-based device
// matching still in force (NewFIFOMatch) — the paper's "Venn w/o
// scheduling" configuration of Figure 11.
type FIFO struct {
	queue fifoQueue
	// match, when set, is a full Venn core the policy forwards every
	// lifecycle event to; it contributes only its tier-matching decisions
	// (profiling, tier filters), never its job order. Keeping the real core
	// behind the FIFO order — rather than re-extracting the matching
	// machinery — is what keeps the ablation byte-identical to the former
	// in-core implementation.
	match *core.Venn
	name  string
}

// NewFIFO returns the bare FIFO policy (no device matching).
func NewFIFO() *FIFO { return &FIFO{queue: newFIFOQueue(), name: "FIFO"} }

// NewFIFOMatch returns FIFO request order with Venn's tier-based matching in
// force. Options configure the inner matching core; DisableMatching reduces
// it to plain FIFO (the "Venn w/o both" ablation).
func NewFIFOMatch(opts core.Options) *FIFO {
	name := "Venn-w/o-sched"
	if opts.DisableMatching {
		name = "Venn-w/o-both"
	}
	return &FIFO{queue: newFIFOQueue(), match: core.New(opts), name: name}
}

// Name implements Policy.
func (p *FIFO) Name() string { return p.name }

// Bind implements Policy.
func (p *FIFO) Bind(env *sim.Env) {
	if p.match != nil {
		p.match.Bind(env)
	}
}

// OnJobArrival implements Policy.
func (p *FIFO) OnJobArrival(j *job.Job, now simtime.Time) {
	if p.match != nil {
		p.match.OnJobArrival(j, now)
	}
}

// OnRequest implements Policy.
func (p *FIFO) OnRequest(j *job.Job, now simtime.Time) {
	p.queue.Open(j)
	if p.match != nil {
		p.match.OnRequest(j, now)
	}
}

// OnRequestFulfilled implements Policy.
func (p *FIFO) OnRequestFulfilled(j *job.Job, now simtime.Time) {
	p.queue.Close(j.ID)
	if p.match != nil {
		p.match.OnRequestFulfilled(j, now)
	}
}

// OnJobDone implements Policy.
func (p *FIFO) OnJobDone(j *job.Job, now simtime.Time) {
	p.queue.Drop(j.ID)
	if p.match != nil {
		p.match.OnJobDone(j, now)
	}
}

// ObserveResponse implements Policy; responses feed the matching core's
// per-tier profiles.
func (p *FIFO) ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time) {
	if p.match != nil {
		p.match.ObserveResponse(j, d, dur, now)
	}
}

// Assign implements Policy: the first open request in arrival order whose
// requirement (and, with matching, tier filter) admits the device.
func (p *FIFO) Assign(d *device.Device, now simtime.Time) *job.Job {
	var out *job.Job
	p.queue.ForEachOpen(func(j *job.Job) bool {
		if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
			return true
		}
		if !j.Requirement.Eligible(d) {
			return true
		}
		if p.match != nil && !p.match.TierAccepts(j.ID, d, now) {
			return true
		}
		out = j
		return false
	})
	return out
}

// QueueLen reports the number of open requests (for tests).
func (p *FIFO) QueueLen() int { return p.queue.Len() }

// fifoQueue holds the open requests in FIFO order — ascending (Arrival, ID).
// FIFO means arrival order across the job's whole lifetime, not
// request-reopen order: a job must not lose its place between rounds.
//
// The former implementation kept a sorted slice of exactly the open jobs and
// paid an O(n) copy-shift on every request open/close, which went quadratic
// under arrival bursts. A job's FIFO key (Arrival, ID) never changes, so the
// queue instead keeps every job it has ever admitted in one arrival-ordered
// slice and tracks which of them currently have an open request in a
// membership map. Opening or closing a request is then O(1) map work: a job
// that re-opens after a round completes is already in the slice at the right
// place. New jobs arrive with nondecreasing arrival times in both the
// simulator (event order) and the live server, so the slice insert is an
// amortized O(1) append; a rare out-of-order arrival falls back to one
// binary-search insertion.
//
// Completed jobs linger in the slice as tombstones until they outnumber the
// live entries, at which point one O(n) compaction drops them (and releases
// the job pointers for the garbage collector). Iteration order over open
// jobs is identical to the former sorted slice, keeping scheduling decisions
// byte-for-byte deterministic.
type fifoQueue struct {
	jobs []*job.Job
	// open[id] is present for every job in the slice; true while the job's
	// request is open.
	open map[job.ID]bool
	// done counts tombstones: slice entries whose job has completed and can
	// never re-open.
	done int
	// openCount tracks how many entries are currently open, so Len is O(1).
	openCount int
}

func newFIFOQueue() fifoQueue {
	return fifoQueue{open: make(map[job.ID]bool)}
}

// fifoLess orders by (Arrival, ID) ascending.
func fifoLess(a, b *job.Job) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// Open marks the job's request open, admitting the job on first sight.
func (q *fifoQueue) Open(j *job.Job) {
	if isOpen, present := q.open[j.ID]; present {
		if !isOpen {
			q.open[j.ID] = true
			q.openCount++
		}
		return
	}
	q.open[j.ID] = true
	q.openCount++
	if n := len(q.jobs); n == 0 || fifoLess(q.jobs[n-1], j) {
		q.jobs = append(q.jobs, j)
		return
	}
	i := sort.Search(len(q.jobs), func(k int) bool { return fifoLess(j, q.jobs[k]) })
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// Close marks the job's request closed (fulfilled); the job stays admitted
// because a later round may re-open it.
func (q *fifoQueue) Close(id job.ID) {
	if isOpen, present := q.open[id]; present && isOpen {
		q.open[id] = false
		q.openCount--
	}
}

// Drop closes the job forever (job done) and schedules its slot for
// compaction once tombstones dominate.
func (q *fifoQueue) Drop(id job.ID) {
	isOpen, present := q.open[id]
	if !present {
		return
	}
	if isOpen {
		q.openCount--
	}
	q.open[id] = false
	q.done++
	if q.done > len(q.jobs)/2 && q.done > 16 {
		q.compact()
	}
}

// compact rewrites the slice without completed jobs.
func (q *fifoQueue) compact() {
	live := q.jobs[:0]
	for _, j := range q.jobs {
		if j.Done() {
			delete(q.open, j.ID)
			continue
		}
		live = append(live, j)
	}
	// Nil the vacated tail so dropped jobs (and their response histories)
	// are collectable.
	for i := len(live); i < len(q.jobs); i++ {
		q.jobs[i] = nil
	}
	q.jobs = live
	q.done = 0
}

// Len returns the number of open requests.
func (q *fifoQueue) Len() int { return q.openCount }

// ForEachOpen visits the open jobs in FIFO order until fn returns false.
func (q *fifoQueue) ForEachOpen(fn func(*job.Job) bool) {
	for _, j := range q.jobs {
		if !q.open[j.ID] {
			continue
		}
		if !fn(j) {
			return
		}
	}
}
