// Fairness: demonstrates the starvation-prevention knob (§4.4). A workload
// of many small jobs plus a few very large ones is run with epsilon 0
// (pure efficiency) and increasing fairness settings; the report shows the
// efficiency/fairness trade-off on the large jobs' JCTs.
package main

import (
	"fmt"
	"log"

	venn "venn"
	"venn/internal/stats"
)

func main() {
	fleet := venn.GenerateFleet(venn.FleetConfig{NumDevices: 3000, Seed: 71})

	build := func() []*venn.Job {
		var jobs []*venn.Job
		arrival := venn.Duration(0)
		id := 0
		add := func(name string, demand, rounds int) {
			j := venn.NewJob(id, venn.General, demand, rounds, arrival)
			j.Name = name
			jobs = append(jobs, j)
			id++
			arrival += 10 * venn.Minute
		}
		// Two elephants arrive first, then a stream of mice that pure
		// smallest-first scheduling would let starve them.
		add("elephant-0", 120, 20)
		add("elephant-1", 100, 18)
		for i := 0; i < 12; i++ {
			add(fmt.Sprintf("mouse-%d", i), 20, 4)
		}
		return jobs
	}

	fmt.Printf("%-8s  %-14s  %-14s  %-14s\n", "epsilon", "avg JCT (all)", "avg JCT (big)", "avg JCT (small)")
	for _, eps := range []float64{0, 1, 2, 4} {
		res, err := venn.Simulate(venn.SimConfig{
			Fleet:     fleet,
			Jobs:      build(),
			Scheduler: venn.NewVenn(venn.SchedulerOptions{Epsilon: eps}),
			Seed:      81,
		})
		if err != nil {
			log.Fatal(err)
		}
		var all, big, small []float64
		for _, j := range res.Completed {
			m := j.JCT().Minutes()
			all = append(all, m)
			if j.Demand >= 100 {
				big = append(big, m)
			} else {
				small = append(small, m)
			}
		}
		fmt.Printf("%-8.0f  %10.0f min  %10.0f min  %10.0f min\n",
			eps, stats.Mean(all), stats.Mean(big), stats.Mean(small))
	}
	fmt.Println("\n(higher epsilon trades average JCT for protecting the large jobs)")
}
