// Package eval is the experiment harness: it re-creates every table and
// figure of the paper's evaluation section (§5) on top of the simulator.
// Each experiment has one entry point (Table1, Figure11, ...) that returns a
// structured result and can render itself as text; DESIGN.md carries the
// experiment index and EXPERIMENTS.md the measured outcomes.
package eval

import (
	"fmt"
	"sort"

	"venn/internal/core"
	"venn/internal/sched"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/trace"
	"venn/internal/workload"
)

// Scale selects experiment sizing: Quick keeps unit-test and benchmark
// runtimes in check, Default is the standard evaluation size, Full
// approaches the paper's own scale (minutes of wall-clock per experiment).
type Scale int

const (
	// ScaleQuick is for tests and benchmarks (seconds).
	ScaleQuick Scale = iota
	// ScaleDefault is the standard experiment size.
	ScaleDefault
	// ScaleFull approaches paper scale.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleDefault:
		return "default"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Setup bundles everything one simulated comparison needs.
type Setup struct {
	Scale   Scale
	Seed    int64
	Fleet   trace.FleetConfig
	Jobs    workload.Config
	Horizon simtime.Duration
}

// NewSetup returns the canonical experiment setup at the given scale.
// Individual experiments override fields as needed.
func NewSetup(scale Scale, seed int64) Setup {
	s := Setup{Scale: scale, Seed: seed}
	switch scale {
	case ScaleQuick:
		s.Fleet = trace.FleetConfig{
			NumDevices: 1500,
			Horizon:    3 * simtime.Day,
			Seed:       seed,
		}
		s.Jobs = workload.Config{
			NumJobs:          16,
			MeanInterArrival: 20 * simtime.Minute,
			Seed:             seed + 1,
			MaxRounds:        8,
			MaxDemand:        80,
		}
	case ScaleFull:
		s.Fleet = trace.FleetConfig{
			NumDevices: 20000,
			Horizon:    8 * simtime.Day,
			Seed:       seed,
		}
		s.Jobs = workload.Config{
			NumJobs:          50,
			MeanInterArrival: 30 * simtime.Minute,
			Seed:             seed + 1,
			MaxRounds:        80,
			MaxDemand:        600,
		}
	default:
		s.Fleet = trace.FleetConfig{
			NumDevices: 5000,
			Horizon:    5 * simtime.Day,
			Seed:       seed,
		}
		s.Jobs = workload.Config{
			NumJobs:          50,
			MeanInterArrival: 30 * simtime.Minute,
			Seed:             seed + 1,
			MaxRounds:        25,
			MaxDemand:        200,
		}
	}
	s.Horizon = s.Fleet.Horizon
	return s
}

// SchedulerFactory builds a fresh scheduler per run (schedulers are
// stateful and single-use).
type SchedulerFactory func() sim.Scheduler

// StandardSchedulers returns the paper's scheduler lineup in report order:
// Random (the baseline every speed-up is computed against), FIFO, SRSF, and
// Venn.
func StandardSchedulers() map[string]SchedulerFactory {
	return map[string]SchedulerFactory{
		"Random": func() sim.Scheduler { return sched.NewRandom() },
		"FIFO":   func() sim.Scheduler { return sched.NewFIFO() },
		"SRSF":   func() sim.Scheduler { return sched.NewSRSF() },
		"Venn":   func() sim.Scheduler { return core.NewDefault() },
	}
}

func newRandomBaseline() sim.Scheduler { return sched.NewRandom() }
func newFIFOBaseline() sim.Scheduler   { return sched.NewFIFO() }

// RunOne simulates the workload under one scheduler. The fleet is reset and
// the workload cloned, so the same Setup can be replayed repeatedly.
func RunOne(fleet *trace.Fleet, wl *workload.Workload, factory SchedulerFactory, seed int64, observer sim.RoundObserver) (*sim.Result, error) {
	fleet.Reset()
	run := wl.Clone()
	eng, err := sim.NewEngine(sim.Config{
		Fleet:     fleet,
		Jobs:      run.Jobs,
		Scheduler: factory(),
		Seed:      seed,
		Observer:  observer,
	})
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// Comparison holds the per-scheduler results of one workload.
type Comparison struct {
	Results map[string]*sim.Result
}

// Compare runs the workload under every scheduler on the same fleet and
// returns the results keyed by scheduler name. The runs fan out across the
// experiment worker pool: every run is deterministic given its own seed and
// gets a private copy of the fleet's mutable device state, so concurrent
// execution returns exactly the sequential results.
func Compare(setup Setup, factories map[string]SchedulerFactory) (*Comparison, error) {
	fleet := trace.GenerateFleet(setup.Fleet)
	wl := workload.Generate(setup.Jobs)
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]*sim.Result, len(names))
	err := parallelEach(len(names), func(i int) error {
		res, err := RunOne(fleet.Clone(), wl, factories[names[i]], setup.Seed+100, nil)
		if err != nil {
			return fmt.Errorf("run %s: %w", names[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Results: make(map[string]*sim.Result, len(names))}
	for i, name := range names {
		cmp.Results[name] = results[i]
	}
	return cmp, nil
}

// CompareMany runs Compare over the given setups concurrently (bounded by
// Workers()), returning the comparisons in setup order. The factories
// callback builds the scheduler lineup for setup i; it must be safe to call
// from multiple goroutines.
func CompareMany(setups []Setup, factories func(i int) map[string]SchedulerFactory) ([]*Comparison, error) {
	out := make([]*Comparison, len(setups))
	err := parallelEach(len(setups), func(i int) error {
		cmp, err := Compare(setups[i], factories(i))
		if err != nil {
			return err
		}
		out[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Speedup returns scheduler's average-JCT improvement over the named
// baseline (paired over jobs completed by both).
func (c *Comparison) Speedup(scheduler, baseline string) float64 {
	s, ok1 := c.Results[scheduler]
	b, ok2 := c.Results[baseline]
	if !ok1 || !ok2 {
		return 0
	}
	return s.SpeedupOver(b)
}
