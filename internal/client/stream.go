package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/server"
	"venn/internal/transport"
)

// StreamClient talks to a venndaemon stream listener (venndaemon
// -stream-addr) over the persistent framed protocol of internal/transport.
// It exposes the same surface as the HTTP Client — CheckIn/CheckInBatch,
// Report/ReportBatch, job registration and lookup, Stats, Metrics — but
// amortizes connection setup and HTTP framing away entirely: requests from
// any number of goroutines are multiplexed over a small pool of persistent
// connections, correlated by pipelined request IDs, and a connection that
// dies is redialed transparently on the next call.
//
// All methods are safe for concurrent use.
type StreamClient struct {
	conns []*streamConn
	next  atomic.Uint64
}

// Stream defaults.
const (
	DefaultStreamConns      = 2
	DefaultStreamTimeout    = 10 * time.Second
	defaultClientMaxPayload = 64 << 20 // responses can carry full batch + metrics payloads
)

// StreamOption customizes a StreamClient.
type StreamOption func(*streamConfig)

type streamConfig struct {
	conns   int
	timeout time.Duration
}

// WithStreamConns sets the connection-pool size (default 2). More
// connections raise pipelining depth under heavy concurrent load; one is
// enough for a single agent.
func WithStreamConns(n int) StreamOption {
	return func(c *streamConfig) {
		if n > 0 {
			c.conns = n
		}
	}
}

// WithStreamTimeout bounds one request round trip, dial included (default
// 10s).
func WithStreamTimeout(d time.Duration) StreamOption {
	return func(c *streamConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// NewStream creates a stream client for the daemon's stream listener at
// addr (e.g. "localhost:8081"). Connections are dialed lazily on first use
// and redialed automatically after failures.
func NewStream(addr string, opts ...StreamOption) *StreamClient {
	cfg := streamConfig{conns: DefaultStreamConns, timeout: DefaultStreamTimeout}
	for _, opt := range opts {
		opt(&cfg)
	}
	sc := &StreamClient{conns: make([]*streamConn, cfg.conns)}
	for i := range sc.conns {
		sc.conns[i] = &streamConn{addr: addr, timeout: cfg.timeout}
	}
	return sc
}

// Close tears down every pooled connection; in-flight calls fail.
func (s *StreamClient) Close() error {
	for _, c := range s.conns {
		c.close(errors.New("client: stream client closed"))
	}
	return nil
}

// Ping round-trips an empty frame — a cheap reachability and liveness
// probe.
func (s *StreamClient) Ping() error {
	_, err := s.do(transport.OpPing, nil)
	return err
}

// CheckIn announces device availability and returns the assignment.
func (s *StreamClient) CheckIn(ci server.CheckIn) (server.Assignment, error) {
	return s.checkInOp(transport.OpCheckIn, ci)
}

func (s *StreamClient) checkInOp(op byte, ci server.CheckIn) (server.Assignment, error) {
	var asg server.Assignment
	payload, err := ci.MarshalJSON()
	if err != nil {
		return asg, err
	}
	resp, err := s.do(op, payload)
	if err != nil {
		return asg, err
	}
	err = asg.UnmarshalJSON(resp)
	return asg, err
}

// CheckInBatch announces availability for a whole batch of devices in one
// frame. Results[i] answers cis[i]; per-item rejections surface in each
// result's Error field, not as a Go error.
func (s *StreamClient) CheckInBatch(cis []server.CheckIn) ([]server.CheckInResult, error) {
	return s.checkInBatchOp(transport.OpCheckInBatch, cis)
}

func (s *StreamClient) checkInBatchOp(op byte, cis []server.CheckIn) ([]server.CheckInResult, error) {
	payload, err := server.CheckInBatchRequest{CheckIns: cis}.MarshalJSON()
	if err != nil {
		return nil, err
	}
	buf, err := s.do(op, payload)
	if err != nil {
		return nil, err
	}
	var resp server.CheckInBatchResponse
	if err := resp.UnmarshalJSON(buf); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(cis) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d check-ins", len(resp.Results), len(cis))
	}
	return resp.Results, nil
}

// Report submits a task result.
func (s *StreamClient) Report(r server.Report) error {
	return s.reportOp(transport.OpReport, r)
}

func (s *StreamClient) reportOp(op byte, r server.Report) error {
	payload, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = s.do(op, payload)
	return err
}

// ReportBatch submits a batch of task results in one frame. Results[i]
// answers rs[i].
func (s *StreamClient) ReportBatch(rs []server.Report) ([]server.ReportResult, error) {
	return s.reportBatchOp(transport.OpReportBatch, rs)
}

func (s *StreamClient) reportBatchOp(op byte, rs []server.Report) ([]server.ReportResult, error) {
	payload, err := server.ReportBatchRequest{Reports: rs}.MarshalJSON()
	if err != nil {
		return nil, err
	}
	buf, err := s.do(op, payload)
	if err != nil {
		return nil, err
	}
	var resp server.ReportBatchResponse
	if err := resp.UnmarshalJSON(buf); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(rs) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d reports", len(resp.Results), len(rs))
	}
	return resp.Results, nil
}

// RegisterJob submits a new CL job and returns its status (including ID).
func (s *StreamClient) RegisterJob(spec server.JobSpec) (server.JobStatus, error) {
	var st server.JobStatus
	err := s.doJSON(transport.OpRegisterJob, spec, &st)
	return st, err
}

// Jobs lists all jobs.
func (s *StreamClient) Jobs() ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := s.doJSON(transport.OpJobs, nil, &out)
	return out, err
}

// JobStatus fetches one job's status.
func (s *StreamClient) JobStatus(id int) (server.JobStatus, error) {
	var st server.JobStatus
	err := s.doJSON(transport.OpJobStatus, transport.JobIDRequest{ID: id}, &st)
	return st, err
}

// Stats fetches the daemon's monitoring snapshot.
func (s *StreamClient) Stats() (server.Stats, error) {
	var st server.Stats
	err := s.doJSON(transport.OpStats, nil, &st)
	return st, err
}

// Metrics fetches the daemon's serving-throughput and latency metrics.
func (s *StreamClient) Metrics() (server.Metrics, error) {
	var mt server.Metrics
	err := s.doJSON(transport.OpMetrics, nil, &mt)
	return mt, err
}

// doJSON is do for the low-volume ops: reflective encode of in (nil for an
// empty payload), reflective decode into out.
func (s *StreamClient) doJSON(op byte, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	buf, err := s.do(op, payload)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf, out)
}

// do sends one request frame over a pooled connection and waits for its
// response, returning the response payload or the decoded error frame.
func (s *StreamClient) do(op byte, payload []byte) ([]byte, error) {
	c := s.conns[s.next.Add(1)%uint64(len(s.conns))]
	return c.do(op, payload)
}

// streamConn is one pooled connection: a lazily dialed socket, a reader
// goroutine that dispatches response frames to waiters by request ID, and
// a write path serialized by mu. gen guards against a stale teardown (a
// reader from a previous dial) clobbering a fresh connection.
type streamConn struct {
	addr    string
	timeout time.Duration

	mu      sync.Mutex
	c       net.Conn
	bw      *bufio.Writer
	pending map[uint32]chan streamResp
	nextID  uint32
	gen     uint64
}

type streamResp struct {
	op      byte
	payload []byte
	err     error
}

// connect dials under mu if needed and returns the current socket and
// generation.
func (sc *streamConn) connectLocked() error {
	if sc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", sc.addr, sc.timeout)
	if err != nil {
		return &NotSentError{Err: fmt.Errorf("client: dial stream %s: %w", sc.addr, err)}
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	sc.c = c
	sc.bw = bufio.NewWriterSize(c, 64<<10)
	sc.pending = make(map[uint32]chan streamResp)
	sc.gen++
	go sc.readLoop(sc.gen, c)
	return nil
}

// readLoop dispatches response frames to their waiters until the
// connection dies, then fails every pending request so callers can retry
// (the next call redials).
func (sc *streamConn) readLoop(gen uint64, c net.Conn) {
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		fr, err := transport.ReadFrame(br, defaultClientMaxPayload)
		if err != nil {
			sc.teardown(gen, fmt.Errorf("client: stream connection lost: %w", err))
			return
		}
		sc.mu.Lock()
		var ch chan streamResp
		if gen == sc.gen {
			ch = sc.pending[fr.ID]
			delete(sc.pending, fr.ID)
		}
		sc.mu.Unlock()
		if ch != nil {
			ch <- streamResp{op: fr.Op, payload: fr.Payload}
		}
		// A response nobody waits for (timed-out request) is dropped.
	}
}

// teardown closes the socket of generation gen and fails its pending
// requests; a newer generation is left untouched.
func (sc *streamConn) teardown(gen uint64, err error) {
	sc.mu.Lock()
	if gen != sc.gen || sc.c == nil {
		sc.mu.Unlock()
		return
	}
	c := sc.c
	pending := sc.pending
	sc.c, sc.bw, sc.pending = nil, nil, nil
	sc.mu.Unlock()
	c.Close()
	for _, ch := range pending {
		ch <- streamResp{err: err}
	}
}

// close hard-closes the connection, failing pending requests with err.
func (sc *streamConn) close(err error) {
	sc.mu.Lock()
	gen := sc.gen
	sc.mu.Unlock()
	sc.teardown(gen, err)
}

func (sc *streamConn) do(op byte, payload []byte) ([]byte, error) {
	ch := make(chan streamResp, 1)

	sc.mu.Lock()
	if err := sc.connectLocked(); err != nil {
		sc.mu.Unlock()
		return nil, err
	}
	gen := sc.gen
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	// Write under mu: frames from concurrent callers interleave whole, and
	// the shared buffered writer coalesces them. The write deadline keeps a
	// wedged peer from holding the lock forever.
	_ = sc.c.SetWriteDeadline(time.Now().Add(sc.timeout))
	err := transport.WriteFrame(sc.bw, op, id, payload)
	if err == nil {
		err = sc.bw.Flush()
	}
	sc.mu.Unlock()
	if err != nil {
		sc.teardown(gen, fmt.Errorf("client: stream write: %w", err))
		// teardown already delivered the failure to ch (buffered), but be
		// defensive about ordering: prefer the write error.
		select {
		case <-ch:
		default:
		}
		return nil, &NotSentError{Err: fmt.Errorf("client: stream write: %w", err)}
	}

	timer := time.NewTimer(sc.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			return nil, resp.err
		}
		if resp.op == transport.OpError {
			var ep transport.ErrorPayload
			if json.Unmarshal(resp.payload, &ep) == nil && ep.Error != "" {
				return nil, &StreamError{Code: server.Code(ep.Code), Msg: ep.Error}
			}
			return nil, errors.New("client: malformed stream error frame")
		}
		if resp.op != op|transport.RespFlag {
			return nil, fmt.Errorf("client: stream response opcode %#x for request %#x", resp.op, op)
		}
		return resp.payload, nil
	case <-timer.C:
		sc.mu.Lock()
		if gen == sc.gen && sc.pending != nil {
			delete(sc.pending, id)
		}
		sc.mu.Unlock()
		return nil, fmt.Errorf("client: stream request timed out after %v", sc.timeout)
	}
}

// StreamError is a typed server-side rejection carried over the stream
// transport; Code mirrors the service layer's error codes.
type StreamError struct {
	Code server.Code
	Msg  string
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("client: %s (stream code %d)", e.Msg, e.Code)
}

// NotSentError wraps a transport failure that happened before the request
// frame could have been processed by the daemon: the dial failed, or the
// frame's write/flush failed (a partially written frame is unparseable, so
// the server never dispatches it). Callers with side-effecting requests —
// the federation forwarder above all — may safely retry or re-apply
// elsewhere. Failures after a complete send (timeout waiting for the
// response, connection lost mid-flight) are NOT wrapped: their outcome is
// unknown and re-applying could double-apply.
type NotSentError struct{ Err error }

func (e *NotSentError) Error() string { return e.Err.Error() }
func (e *NotSentError) Unwrap() error { return e.Err }
