package eval

import (
	"testing"

	"venn/internal/core"
	"venn/internal/sim"
	"venn/internal/trace"
	"venn/internal/workload"
)

// TestIncrementalPlanMatchesFullRebuild is the differential guard for the
// incremental replanner: the same seeded workload must produce byte-identical
// results whether every plan refresh runs the full Algorithm-1 pipeline
// (DisableIncrementalPlan) or the incremental patch path. Any divergence in
// a patched cell row, a stale planner input, or a missed invalidation shows
// up as a fingerprint mismatch.
func TestIncrementalPlanMatchesFullRebuild(t *testing.T) {
	type variant struct {
		name string
		opts core.Options
	}
	base := core.DefaultOptions()
	fair := core.DefaultOptions()
	fair.Epsilon = 2 // fairness terms force the all-group input refresh path
	variants := []variant{
		{"default", base},
		{"epsilon", fair},
	}
	for _, seed := range []int64{3, 17} {
		setup := NewSetup(ScaleQuick, seed)
		fleet := trace.GenerateFleet(setup.Fleet)
		wl := workload.Generate(setup.Jobs)
		for _, vr := range variants {
			full := vr.opts
			full.DisableIncrementalPlan = true
			fullRes, err := RunOne(fleet, wl, func() sim.Scheduler { return core.New(full) }, setup.Seed+100, nil)
			if err != nil {
				t.Fatal(err)
			}
			incRes, err := RunOne(fleet, wl, func() sim.Scheduler { return core.New(vr.opts) }, setup.Seed+100, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !equalFingerprint(fingerprintOf(fullRes), fingerprintOf(incRes)) {
				t.Errorf("seed %d %s: incremental replanning diverged from full rebuilds", seed, vr.name)
			}
		}
	}
}
