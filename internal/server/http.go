package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Handler wraps a Manager with the HTTP/JSON API:
//
//	POST /v1/jobs            {JobSpec}              -> JobStatus
//	GET  /v1/jobs            -> []JobStatus
//	GET  /v1/jobs/{id}       -> JobStatus
//	POST /v1/checkin         {CheckIn}              -> Assignment
//	POST /v1/checkin/batch   {CheckInBatchRequest}  -> CheckInBatchResponse
//	POST /v1/report          {Report}               -> {}
//	POST /v1/report/batch    {ReportBatchRequest}   -> ReportBatchResponse
//	GET  /v1/stats           -> Stats
//	GET  /v1/metrics         -> Metrics
//
// Every route is wrapped in a latency-recording middleware feeding the
// handler_latency_ms percentiles of /v1/metrics.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			h(w, r)
			m.metrics.observeLatency(route, time.Since(t0))
		})
	}
	handle("/v1/jobs", routeJobs, func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var spec JobSpec
			if !decode(w, r, &spec) {
				return
			}
			st, err := m.RegisterJob(spec)
			if err != nil {
				writeErr(w, err, http.StatusBadRequest)
				return
			}
			writeJSON(w, st, http.StatusCreated)
		case http.MethodGet:
			writeJSON(w, m.Jobs(), http.StatusOK)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	handle("/v1/jobs/", routeJobs, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			writeErr(w, errors.New("bad job id"), http.StatusBadRequest)
			return
		}
		st, err := m.JobStatusByID(id)
		if err != nil {
			writeErr(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, st, http.StatusOK)
	})
	handle("/v1/checkin", routeCheckIn, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var ci CheckIn
		if !decode(w, r, &ci) {
			return
		}
		asg, err := m.DeviceCheckIn(ci)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrDeviceBusy) {
				code = http.StatusConflict
			}
			writeErr(w, err, code)
			return
		}
		writeJSON(w, asg, http.StatusOK)
	})
	handle("/v1/checkin/batch", routeCheckInBatch, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req CheckInBatchRequest
		if !decodeBatch(w, r, &req) {
			return
		}
		if len(req.CheckIns) > MaxBatch {
			writeErr(w, fmt.Errorf("server: batch exceeds %d items", MaxBatch), http.StatusBadRequest)
			return
		}
		writeJSON(w, CheckInBatchResponse{Results: m.CheckInBatch(req.CheckIns)}, http.StatusOK)
	})
	handle("/v1/report", routeReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var rep Report
		if !decode(w, r, &rep) {
			return
		}
		if err := m.DeviceReport(rep); err != nil {
			writeErr(w, err, http.StatusBadRequest)
			return
		}
		writeJSON(w, struct{}{}, http.StatusOK)
	})
	handle("/v1/report/batch", routeReportBatch, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req ReportBatchRequest
		if !decodeBatch(w, r, &req) {
			return
		}
		if len(req.Reports) > MaxBatch {
			writeErr(w, fmt.Errorf("server: batch exceeds %d items", MaxBatch), http.StatusBadRequest)
			return
		}
		writeJSON(w, ReportBatchResponse{Results: m.ReportBatch(req.Reports)}, http.StatusOK)
	})
	handle("/v1/stats", routeOther, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, m.StatsSnapshot(), http.StatusOK)
	})
	handle("/v1/metrics", routeOther, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, m.MetricsSnapshot(), http.StatusOK)
	})
	return mux
}

// Serve runs the HTTP API plus the deadline ticker until the server fails.
func Serve(addr string, m *Manager) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick()
			case <-stop:
				return
			}
		}
	}()
	srv := &http.Server{Addr: addr, Handler: Handler(m), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// maxBatchBodyBytes bounds a batch request body BEFORE decoding, so the
// MaxBatch item cap cannot be sidestepped by a huge payload (~1KB per item
// of headroom).
const maxBatchBodyBytes = MaxBatch * 1024

// bodyPool recycles request-body read buffers across the hot endpoints.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decode parses the request body into v. Types with a hand-rolled
// UnmarshalJSON (the hot wire types, see codec.go) are fed the raw bytes
// directly — a json.Decoder would tokenize the value once just to find its
// extent and then have the custom unmarshaler parse it again. Everything
// else takes the reflective decoder with the original unknown-field
// strictness, which the custom codecs replicate.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if u, ok := v.(json.Unmarshaler); ok {
		buf := bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyPool.Put(buf)
		if _, err := buf.ReadFrom(r.Body); err != nil {
			writeErr(w, err, http.StatusBadRequest)
			return false
		}
		if err := u.UnmarshalJSON(buf.Bytes()); err != nil {
			writeErr(w, err, http.StatusBadRequest)
			return false
		}
		return true
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, err, http.StatusBadRequest)
		return false
	}
	return true
}

func decodeBatch(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	return decode(w, r, v)
}

func writeJSON(w http.ResponseWriter, v any, code int) {
	var buf []byte
	var err error
	// The hot wire types marshal themselves; calling them directly skips
	// encoding/json's re-validation pass over their output.
	if m, ok := v.(json.Marshaler); ok {
		buf, err = m.MarshalJSON()
	} else {
		buf, err = json.Marshal(v)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Explicit Content-Length keeps large batch replies out of chunked
	// framing.
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(code)
	_, _ = w.Write(buf)
}

func writeErr(w http.ResponseWriter, err error, code int) {
	writeJSON(w, map[string]string{"error": err.Error()}, code)
}
