package server

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestBinCodecRoundTrip pins value-level round trips through the v2 binary
// codec for representative shapes of every wire type, including the ones
// the manager never emits (lossless encoding is what makes the codec safe
// to extend).
func TestBinCodecRoundTrip(t *testing.T) {
	vals := []binCodec{
		&CheckIn{},
		&CheckIn{DeviceID: "dev-0042", CPU: 0.75, Mem: 0.5},
		&CheckIn{DeviceID: strings.Repeat("x", 300), CPU: math.Inf(1), Mem: -0},
		&Assignment{},
		&Assignment{Assigned: true, JobID: 12, Round: 3, JobName: "resnet", Policy: "venn"},
		&Assignment{Assigned: true}, // assigned with zero tail: flags-only
		&Assignment{JobID: -5},      // tail without assigned
		&CheckInResult{},
		&CheckInResult{Assignment: Assignment{Assigned: true, JobID: 1, JobName: "j", Policy: "fifo"}},
		&CheckInResult{Error: "device busy"},
		&Report{DeviceID: "d", JobID: -1, OK: false, DurationSeconds: 0.001},
		&Report{DeviceID: "", JobID: 1 << 40, OK: true},
		&ReportResult{},
		&ReportResult{Error: "unknown job 9"},
		&CheckInBatchRequest{},
		&CheckInBatchRequest{CheckIns: []CheckIn{{DeviceID: "a", CPU: 1}, {DeviceID: "b", Mem: 1}}},
		&CheckInBatchResponse{Results: []CheckInResult{{}, {Error: "busy"}, {Assignment: Assignment{Assigned: true, JobID: 2}}}},
		&ReportBatchRequest{Reports: []Report{{DeviceID: "d", JobID: 7, OK: true, DurationSeconds: 3.5}}},
		&ReportBatchResponse{Results: []ReportResult{{}, {Error: "x"}}},
	}
	for _, v := range vals {
		buf, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("%T marshal: %v", v, err)
		}
		got := reflect.New(reflect.TypeOf(v).Elem()).Interface().(binCodec)
		if err := got.UnmarshalBinary(buf); err != nil {
			t.Fatalf("%T unmarshal %x: %v", v, buf, err)
		}
		if !reflect.DeepEqual(v, got) {
			t.Errorf("%T round trip:\nwant %+v\ngot  %+v", v, v, got)
		}
	}
}

// TestBinCodecMatchesJSON pins cross-codec equivalence: a value carried
// over a v2 binary frame must re-marshal to exactly the JSON a v1 frame
// would have carried, which is what makes mixed-version federations
// byte-identical at the payload level.
func TestBinCodecMatchesJSON(t *testing.T) {
	resp := CheckInBatchResponse{Results: []CheckInResult{
		{},
		{Assignment: Assignment{Assigned: true, JobID: 3, Round: 1, JobName: "mobilenet", Policy: "venn"}},
		{Error: "device busy"},
	}}
	wantJSON, err := resp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := resp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded CheckInBatchResponse
	if err := decoded.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := decoded.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("binary hop changed the payload:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
}

// TestBinCodecCompactUnassigned pins the size property the layout was
// designed around: the overwhelmingly common "no work" batch reply costs
// one byte per device.
func TestBinCodecCompactUnassigned(t *testing.T) {
	resp := CheckInBatchResponse{Results: make([]CheckInResult, 1000)}
	buf, err := resp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 1000; len(buf) != want { // uvarint(1000) = 2 bytes + 1 flag byte each
		t.Fatalf("unassigned batch encoded to %d bytes, want %d", len(buf), want)
	}
	js, err := resp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)*3 >= len(js) {
		t.Fatalf("binary (%dB) should be >3x smaller than JSON (%dB)", len(buf), len(js))
	}
}

// TestBinCodecRejects pins the decoder's defenses: trailing bytes, lying
// batch counts, oversized strings, truncation, unknown flag bits, and
// non-boolean bools are all errors, never panics or huge allocations.
func TestBinCodecRejects(t *testing.T) {
	ci := CheckIn{DeviceID: "a", CPU: 1, Mem: 1}
	good, err := ci.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"truncated":       good[:len(good)-1],
		"oversized str":   {0xFF, 0xFF, 0x03, 'a'},
		"empty":           {},
		"bad count":       {0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"overflow varint": {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, data := range cases {
		var v CheckIn
		if err := v.UnmarshalBinary(data); err == nil && name != "empty" {
			t.Errorf("CheckIn accepted %s input %x", name, data)
		}
		var b CheckInBatchRequest
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("CheckInBatchRequest accepted %s input %x", name, data)
		}
	}
	// A count above MaxBatch is rejected before allocation even if the
	// payload is long enough to look plausible.
	big := make([]byte, 4+MaxBatch+10)
	big[0], big[1], big[2] = 0x81, 0xC0, 0x01 // uvarint(24577) > MaxBatch
	var b CheckInBatchRequest
	if err := b.UnmarshalBinary(big); err == nil {
		t.Error("batch count above MaxBatch accepted")
	}
	// Unknown flag bits must be rejected (forward-compatibility guard).
	var a Assignment
	if err := a.UnmarshalBinary([]byte{0x80}); err == nil {
		t.Error("Assignment accepted unknown flag bit")
	}
	var rr ReportResult
	if err := rr.UnmarshalBinary([]byte{0x02}); err == nil {
		t.Error("ReportResult accepted unknown flag bit")
	}
	// Report.OK must be exactly 0 or 1.
	rep := Report{DeviceID: "d", OK: true}
	buf, _ := rep.MarshalBinary()
	okOff := len(buf) - 9 // bool sits 9 bytes from the end (1 + 8-byte f64)
	buf[okOff] = 2
	var r2 Report
	if err := r2.UnmarshalBinary(buf); err == nil {
		t.Error("Report accepted bool byte 2")
	}
}

// TestBinCodecEmptyCheckIn: a CheckIn with all-zero fields must still parse
// (the service layer, not the codec, decides whether an empty device_id is
// acceptable — exactly like the JSON codec).
func TestBinCodecEmptyCheckIn(t *testing.T) {
	var ci CheckIn
	buf, err := ci.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got CheckIn
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got != ci {
		t.Fatalf("empty CheckIn round trip: %+v", got)
	}
}
