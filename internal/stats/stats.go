// Package stats provides the small statistics toolkit used across the Venn
// reproduction: summary statistics, percentiles, online moment accumulators,
// histograms, and the random samplers (log-normal, exponential, beta mixture,
// Dirichlet) that the trace generators and the response-time model rely on.
//
// Everything is deterministic given a seed; no global random state is used.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It copies and sorts the input.
// An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs; all values must be positive.
// Non-positive values are skipped. An empty (or all-skipped) input yields 0.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Summary holds the descriptive statistics of one sample set.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    PercentileSorted(sorted, 25),
		Median: PercentileSorted(sorted, 50),
		P75:    PercentileSorted(sorted, 75),
		P95:    PercentileSorted(sorted, 95),
		P99:    PercentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.Count, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// Online accumulates streaming mean/variance using Welford's algorithm and
// tracks min/max. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// Count returns the number of observations.
func (o *Online) Count() int { return o.n }

// Mean returns the running mean, or 0 when empty.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation, or 0 when empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Merge folds other into o, as if every observation of other had been Added.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	mean := o.mean + delta*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}
