package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightSize is the number of records the flight recorder retains: a fixed
// ring of the most recent sampled requests, dumped slowest-first.
const FlightSize = 256

// Record is one finished span's breakdown as the flight recorder retains
// it. TraceID matches the record the other end of a federation hop kept, so
// a slow hop on the origin can be joined against the remote's apply time.
type Record struct {
	TraceID       uint64
	Op            string
	Hop           bool // this daemon served the remote side of a hop
	Error         bool
	Forwarded     bool // part of the request left this daemon over a hop
	StartUnixNano int64
	TotalNs       int64
	StageNs       [NumStages]int64
}

// MarshalJSON renders the record for /v1/debug/flight: trace IDs as fixed
// hex strings (JSON numbers corrupt uint64s past 2^53) and stages as a
// name→ns object holding only the stages that saw time.
func (r Record) MarshalJSON() ([]byte, error) {
	stages := make(map[string]int64, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		if ns := r.StageNs[st]; ns > 0 {
			stages[st.String()] = ns
		}
	}
	return json.Marshal(struct {
		TraceID   string           `json:"trace_id"`
		Op        string           `json:"op"`
		Hop       bool             `json:"hop,omitempty"`
		Error     bool             `json:"error,omitempty"`
		Forwarded bool             `json:"forwarded,omitempty"`
		StartNano int64            `json:"start_unix_nano"`
		TotalNs   int64            `json:"total_ns"`
		Stages    map[string]int64 `json:"stage_ns"`
	}{
		TraceID:   fmt.Sprintf("%016x", r.TraceID),
		Op:        r.Op,
		Hop:       r.Hop,
		Error:     r.Error,
		Forwarded: r.Forwarded,
		StartNano: r.StartUnixNano,
		TotalNs:   r.TotalNs,
		Stages:    stages,
	})
}

// Flight is the fixed-size ring of finished spans. Only sampled requests
// reach it (1 in SampleEvery, plus every hop a sampled origin forwarded),
// so the mutex is uncontended relative to the serving rate.
type Flight struct {
	recorded atomic.Int64

	mu   sync.Mutex
	ring [FlightSize]Record
	n    int // filled entries
	next int
}

func (f *Flight) record(rec Record) {
	f.recorded.Add(1)
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next = (f.next + 1) % FlightSize
	if f.n < FlightSize {
		f.n++
	}
	f.mu.Unlock()
}

// Recorded is the total number of records ever taken (not just retained).
func (f *Flight) Recorded() int64 { return f.recorded.Load() }

// Snapshot copies the retained records, slowest first — the dump order of
// GET /v1/debug/flight.
func (f *Flight) Snapshot() []Record {
	f.mu.Lock()
	out := make([]Record, f.n)
	copy(out, f.ring[:f.n])
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}
