// Quickstart: generate a fleet and a workload, run them under Venn and
// under random matching, and compare average JCT — the library's core loop
// in ~40 lines.
package main

import (
	"fmt"
	"log"

	venn "venn"
)

func main() {
	// A fleet of 3000 edge devices with diurnal availability and
	// heterogeneous hardware, over a 4-day horizon.
	fleet := venn.GenerateFleet(venn.FleetConfig{NumDevices: 3000, Seed: 1})

	// 20 CL jobs sampled from the production-like demand trace, arriving
	// by a Poisson process, each mapped to one of the four device
	// eligibility categories.
	wl := venn.GenerateWorkload(venn.WorkloadConfig{NumJobs: 20, Seed: 2})

	random, err := venn.Simulate(venn.SimConfig{
		Fleet: fleet, Workload: wl, Scheduler: venn.NewRandom(), Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	vennRes, err := venn.Simulate(venn.SimConfig{
		Fleet: fleet, Workload: wl,
		Scheduler: venn.NewVenn(venn.SchedulerOptions{}), Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Random:", random)
	fmt.Println("Venn:  ", vennRes)
	fmt.Printf("\nVenn speed-up over Random: %.2fx\n", vennRes.SpeedupOver(random))
}
