package cluster_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/server"
)

// ringAware dials addr with ring-aware routing on and returns the concrete
// stream client (the topology API lives on *StreamClient).
func ringAware(t *testing.T, addr string) *client.StreamClient {
	t.Helper()
	c, ok := client.New(addr, client.WithTopology(true)).(*client.StreamClient)
	if !ok {
		t.Fatal("ring-aware client is not a StreamClient")
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func marshalResults(t *testing.T, res []server.CheckInResult) string {
	t.Helper()
	resp := server.CheckInBatchResponse{Results: res}
	buf, err := resp.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestStaleTopologyCorrection pins the staleness contract end to end over
// real transport: a client whose ring disagrees with the servers' (injected
// with a different vnode count, the worst realistic skew — every send is
// partitioned under one view, then lands on daemons running another)
// misroutes a large fraction of its items, the owners forward them
// server-side and flag the responses, and the client re-syncs from the flag.
// Correctness is asserted the strong way: the stale client's merged results
// are byte-identical to a fresh-topology client's for the same fleet, and
// after the re-sync its traffic stops producing forwards entirely.
//
// Run under -race in CI: batch sends race against the asynchronous
// markStale→fetch→install path and against server topology pushes.
func TestStaleTopologyCorrection(t *testing.T) {
	fedA := startFederation(t, 2, nil) // serves the stale client
	fedB := startFederation(t, 2, nil) // serves the fresh client

	membersA := []string{fedA[0].addr, fedA[1].addr}

	stale := ringAware(t, fedA[0].addr)
	fresh := ringAware(t, fedB[0].addr)

	// Inject a 1-vnode view at epoch 0: same members, materially different
	// ownership than the servers' 128-vnode ring, and older than any epoch
	// the servers will ever publish (they start at 1).
	stale.InjectTopologyForTest(0, 1, membersA)

	// The test is only meaningful if the rings actually disagree for this
	// fleet — verify rather than assume.
	staleRing := cluster.NewRing(membersA, 1)
	fleet := make([]server.CheckIn, 256)
	misroutes := 0
	for i := range fleet {
		id := fmt.Sprintf("stale-dev-%04d", i)
		fleet[i] = server.CheckIn{DeviceID: id, CPU: 0.5, Mem: 0.5}
		if staleRing.Owner(id) != fedA[0].clu.Ring().Owner(id) {
			misroutes++
		}
	}
	if misroutes == 0 {
		t.Fatal("1-vnode and 128-vnode rings agree on every device; stale view exercises nothing")
	}

	// No jobs are registered on either federation, so every check-in answers
	// the deterministic unassigned result — making cross-cluster comparison
	// exact instead of schedule-dependent.
	sendAll := func(c *client.StreamClient) []server.CheckInResult {
		out := make([]server.CheckInResult, len(fleet))
		var wg sync.WaitGroup
		errs := make([]error, len(fleet)/64)
		for lo := 0; lo < len(fleet); lo += 64 {
			wg.Add(1)
			go func(slot, lo int) {
				defer wg.Done()
				res, err := c.CheckInBatch(fleet[lo : lo+64])
				if err != nil {
					errs[slot] = err
					return
				}
				copy(out[lo:], res)
			}(lo/64, lo)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	// Warm the fresh client's view with one routed call: the first topology
	// fetch is single-flight, and concurrent callers that lose the race fall
	// back to plain seed routing (allowed to forward) by design.
	if _, err := fresh.CheckIn(server.CheckIn{DeviceID: "warmup", CPU: 0.1, Mem: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.TopologyEpoch(); !ok {
		t.Fatal("fresh client has no topology view after first call")
	}

	staleRes := sendAll(stale)
	freshRes := sendAll(fresh)
	if marshalResults(t, staleRes) != marshalResults(t, freshRes) {
		t.Fatal("stale-topology client results differ from fresh-topology client results")
	}

	// The forwarded flag must have triggered a re-fetch; wait for the
	// corrected view (any server-published epoch, i.e. > the injected 0).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if epoch, ok := stale.TopologyEpoch(); ok && epoch > 0 {
			break
		}
		if time.Now().After(deadline) {
			epoch, ok := stale.TopologyEpoch()
			t.Fatalf("client never re-synced: epoch=%d active=%v", epoch, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With the corrected ring the client and servers agree on every owner:
	// further traffic must produce zero new forwards.
	forwardsA := func() int64 {
		var total int64
		for _, nd := range fedA {
			_, out, _, _ := nd.clu.Counters()
			total += out
		}
		return total
	}
	before := forwardsA()
	if marshalResults(t, sendAll(stale)) != marshalResults(t, freshRes) {
		t.Fatal("post-correction results differ")
	}
	if after := forwardsA(); after != before {
		t.Fatalf("corrected client still causes forwards: %d -> %d", before, after)
	}

	// The fresh client, ring-aware from its first call, must never have
	// caused a forward at all — and its direct sub-batches are counted.
	var freshForwards, direct int64
	for _, nd := range fedB {
		_, out, _, _ := nd.clu.Counters()
		freshForwards += out
		direct += nd.clu.ClusterTelemetry().DirectRoutedBatches
	}
	if freshForwards != 0 {
		t.Fatalf("fresh-topology client caused %d forwards, want 0", freshForwards)
	}
	if direct == 0 {
		t.Fatal("no direct-routed batches counted on the fresh federation")
	}
}
