package server

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip drives arbitrary bytes through every hand-rolled codec
// in codec.go. For each wire type it demands three properties:
//
//  1. UnmarshalJSON never panics, whatever the input.
//  2. The custom decoder accepts a superset-compatible view of what the
//     stdlib accepts: if encoding/json (via the mirror struct, which
//     bypasses the custom methods) parses the input, the custom decoder
//     must parse it too — except for unknown fields, which the custom
//     decoder (like the former DisallowUnknownFields configuration)
//     rejects on purpose.
//  3. What the custom decoder accepts re-marshals and re-parses to the
//     same value (round-trip stability).
//
// CI runs this with a short -fuzztime as a smoke pass; the corpus can be
// grown locally with `go test -fuzz=FuzzCodecRoundTrip ./internal/server/`.
func FuzzCodecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"device_id":"a","cpu":0.5,"mem":0.25}`,
		`{"checkins":[{"device_id":"a","cpu":1,"mem":0}]}`,
		`{"results":[{},{"assigned":true,"job_id":3,"job_name":"j","round":2},{"error":"busy"}]}`,
		`{"device_id":"d","job_id":7,"ok":true,"duration_seconds":12.5}`,
		`{"reports":[{"device_id":"d","job_id":7,"ok":false,"duration_seconds":0}]}`,
		`{"results":[{},{"error":"x"}]}`,
		`{"assigned":true,"job_id":-1}`,
		` { "device_id" : null , "cpu" : 1e-9 , "mem" : 2E+1 } `,
		`{"device_id":"é\"\\\nπ"}`,
		`null`,
		`{}`,
		`{"checkins":null}`,
	}
	for sel := byte(0); sel < 7; sel++ {
		for _, s := range seeds {
			f.Add(sel, []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		switch sel % 7 {
		case 0:
			roundTrip[CheckIn](t, data)
		case 1:
			roundTrip[CheckInBatchRequest](t, data)
		case 2:
			roundTrip[CheckInBatchResponse](t, data)
		case 3:
			roundTrip[Assignment](t, data)
		case 4:
			roundTrip[CheckInResult](t, data)
		case 5:
			roundTrip[ReportBatchRequest](t, data)
		case 6:
			roundTrip[ReportBatchResponse](t, data)
		}
	})
}

// jsonCodec is the method pair every fuzzed wire type implements.
type jsonCodec interface {
	json.Marshaler
	json.Unmarshaler
}

func roundTrip[T any](t *testing.T, data []byte) {
	var v T
	u, ok := any(&v).(jsonCodec)
	if !ok {
		t.Fatalf("%T does not implement both codec directions", v)
	}
	if err := u.UnmarshalJSON(data); err != nil {
		return // rejected input — fine, as long as it didn't panic
	}
	buf, err := u.MarshalJSON()
	if err != nil {
		t.Fatalf("accepted %q but cannot re-marshal: %v", data, err)
	}
	var v2 T
	u2 := any(&v2).(jsonCodec)
	if err := u2.UnmarshalJSON(buf); err != nil {
		t.Fatalf("own output %q does not re-parse: %v", buf, err)
	}
	buf2, err := u2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The first decode-encode pass may normalize (invalid UTF-8 in string
	// fields becomes U+FFFD, exactly like encoding/json); from the second
	// generation on, bytes and values must be a fixed point.
	var v3 T
	u3 := any(&v3).(jsonCodec)
	if err := u3.UnmarshalJSON(buf2); err != nil {
		t.Fatalf("normalized output %q does not re-parse: %v", buf2, err)
	}
	buf3, err := u3.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf2) != string(buf3) {
		t.Fatalf("marshal not stable past normalization:\n second %s\n third  %s\n input %q", buf2, buf3, data)
	}
	if !reflect.DeepEqual(v2, v3) {
		t.Fatalf("round trip diverged:\n%+v\n%+v\ninput %q", v2, v3, data)
	}
}
