package server

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"venn/internal/stats"
)

// stdlib aliases break the custom-method dispatch so the reflective
// round trip can serve as the reference implementation.
type (
	stdCheckInBatchRequest struct {
		CheckIns []stdCheckIn `json:"checkins"`
	}
	stdCheckIn struct {
		DeviceID string  `json:"device_id"`
		CPU      float64 `json:"cpu"`
		Mem      float64 `json:"mem"`
	}
	stdReportBatchRequest struct {
		Reports []stdReport `json:"reports"`
	}
	stdReport struct {
		DeviceID        string  `json:"device_id"`
		JobID           int     `json:"job_id"`
		OK              bool    `json:"ok"`
		DurationSeconds float64 `json:"duration_seconds"`
	}
)

// trickyStrings exercise the escape fallback in both directions.
var trickyStrings = []string{
	"",
	"plain-ascii-id",
	`quote"inside`,
	`back\slash`,
	"tab\tnewline\n",
	"unicode-π-雪-🚀",
	"<html>&entities</html>",
	"control",
}

func TestCheckInBatchRequestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(5)
	var cis []CheckIn
	for i, s := range trickyStrings {
		cis = append(cis, CheckIn{DeviceID: s, CPU: rng.Float64(), Mem: float64(i)})
	}
	cis = append(cis,
		CheckIn{DeviceID: "x", CPU: 0, Mem: 1},
		CheckIn{DeviceID: "y", CPU: 1e-9, Mem: math.MaxFloat64},
		CheckIn{DeviceID: "z", CPU: 0.1234567890123456789, Mem: -3},
	)
	req := CheckInBatchRequest{CheckIns: cis}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// Our bytes must decode identically through the pure-stdlib reference.
	var ref stdCheckInBatchRequest
	if err := json.Unmarshal(buf, &ref); err != nil {
		t.Fatalf("stdlib cannot parse custom output %s: %v", buf, err)
	}
	if len(ref.CheckIns) != len(cis) {
		t.Fatalf("item count %d, want %d", len(ref.CheckIns), len(cis))
	}
	for i := range cis {
		if ref.CheckIns[i].DeviceID != cis[i].DeviceID ||
			ref.CheckIns[i].CPU != cis[i].CPU || ref.CheckIns[i].Mem != cis[i].Mem {
			t.Errorf("item %d: %+v != %+v", i, ref.CheckIns[i], cis[i])
		}
	}
	// And stdlib-produced bytes must decode identically through ours.
	refBuf, err := json.Marshal(stdCheckInBatchRequest{CheckIns: ref.CheckIns})
	if err != nil {
		t.Fatal(err)
	}
	var back CheckInBatchRequest
	if err := back.UnmarshalJSON(refBuf); err != nil {
		t.Fatalf("custom cannot parse stdlib output: %v", err)
	}
	if !reflect.DeepEqual(back.CheckIns, cis) {
		t.Errorf("custom decode of stdlib bytes diverged:\n%+v\n%+v", back.CheckIns, cis)
	}
}

func TestCheckInUnmarshalFlexibleSyntax(t *testing.T) {
	cases := []struct {
		in   string
		want CheckIn
	}{
		{`{"device_id":"a","cpu":0.5,"mem":0.25}`, CheckIn{DeviceID: "a", CPU: 0.5, Mem: 0.25}},
		{"  {\n\t\"mem\" : 1e-1 , \"device_id\" : \"b\" , \"cpu\" : 2E0 }  ", CheckIn{DeviceID: "b", CPU: 2, Mem: 0.1}},
		{`{"device_id":"c","cpu":3,"mem":-0.5}`, CheckIn{DeviceID: "c", CPU: 3, Mem: -0.5}},
		{`{"device_id":null,"cpu":null,"mem":null}`, CheckIn{}},
		{`{}`, CheckIn{}},
		{`null`, CheckIn{}},
		{`{"device_id":"dup","cpu":1,"cpu":2,"mem":0}`, CheckIn{DeviceID: "dup", CPU: 2}},
		{`{"device_id":"é\"\\\n","cpu":0,"mem":0}`, CheckIn{DeviceID: "é\"\\\n"}},
	}
	for _, c := range cases {
		var got CheckIn
		if err := json.Unmarshal([]byte(c.in), &got); err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCheckInUnmarshalRejectsGarbage(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`[]`,
		`{"device_id":}`,
		`{"device_id":"a"`,
		`{"device_id":"a",}`,
		`{"cpu":"0.5"}`,
		`{"unknown_field":1}`,
		`{"device_id":"a" "cpu":1}`,
		"{\"device_id\":\"\x01raw-control\"}",
	}
	for _, in := range bad {
		var ci CheckIn
		if err := json.Unmarshal([]byte(in), &ci); err == nil {
			t.Errorf("%q: expected error, got %+v", in, ci)
		}
	}
	// Unknown fields must be rejected batch-deep, matching the former
	// DisallowUnknownFields decoder.
	var req CheckInBatchRequest
	if err := req.UnmarshalJSON([]byte(`{"checkins":[{"device_id":"a","bogus":1}]}`)); err == nil {
		t.Error("nested unknown field must be rejected")
	}
	if err := req.UnmarshalJSON([]byte(`{"bogus":[]}`)); err == nil {
		t.Error("top-level unknown field must be rejected")
	}
}

func TestCheckInBatchResponseRoundTrip(t *testing.T) {
	resp := CheckInBatchResponse{Results: []CheckInResult{
		{},
		{Assignment: Assignment{Assigned: true, JobID: 0, JobName: "job0", Round: 1}},
		{Assignment: Assignment{Assigned: true, JobID: 42, JobName: `we"ird`, Round: 3, Policy: "Venn"}},
		{Error: ErrDeviceBusy.Error()},
		{Error: `err with "quotes" and π`},
	}}
	buf, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back CheckInBatchResponse
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("decode %s: %v", buf, err)
	}
	if !reflect.DeepEqual(back, resp) {
		t.Errorf("round trip diverged:\n%+v\n%+v", back, resp)
	}
	// The unassigned result must be the empty object.
	if !strings.HasPrefix(string(buf), `{"results":[{},`) {
		t.Errorf("unassigned result not compact: %s", buf)
	}
}

func TestReportBatchRoundTrip(t *testing.T) {
	req := ReportBatchRequest{Reports: []Report{
		{DeviceID: "d1", JobID: 7, OK: true, DurationSeconds: 12.75},
		{DeviceID: trickyStrings[4], JobID: -1, OK: false, DurationSeconds: 1e-3},
	}}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var ref stdReportBatchRequest
	if err := json.Unmarshal(buf, &ref); err != nil {
		t.Fatalf("stdlib cannot parse %s: %v", buf, err)
	}
	var back ReportBatchRequest
	refBuf, _ := json.Marshal(ref)
	if err := back.UnmarshalJSON(refBuf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, req) {
		t.Errorf("round trip diverged:\n%+v\n%+v", back, req)
	}

	resp := ReportBatchResponse{Results: []ReportResult{{}, {Error: "boom"}}}
	buf, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var rback ReportBatchResponse
	if err := json.Unmarshal(buf, &rback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rback, resp) {
		t.Errorf("response round trip diverged:\n%+v\n%+v", rback, resp)
	}
}

// TestCodecRandomizedEquivalence fuzzes batches through both codecs and
// demands field-exact agreement with the stdlib reference.
func TestCodecRandomizedEquivalence(t *testing.T) {
	rng := stats.NewRNG(123)
	alphabet := []rune("abz09_-π\"\\\n\t 雪")
	randString := func() string {
		n := rng.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		cis := make([]stdCheckIn, n)
		for i := range cis {
			cis[i] = stdCheckIn{DeviceID: randString(), CPU: rng.Float64()*2 - 1, Mem: rng.Float64()}
		}
		refBuf, err := json.Marshal(stdCheckInBatchRequest{CheckIns: cis})
		if err != nil {
			t.Fatal(err)
		}
		var custom CheckInBatchRequest
		if err := custom.UnmarshalJSON(refBuf); err != nil {
			t.Fatalf("trial %d: custom decode of %s: %v", trial, refBuf, err)
		}
		customBuf, err := json.Marshal(custom)
		if err != nil {
			t.Fatal(err)
		}
		var ref2 stdCheckInBatchRequest
		if err := json.Unmarshal(customBuf, &ref2); err != nil {
			t.Fatalf("trial %d: stdlib decode of %s: %v", trial, customBuf, err)
		}
		for i := range cis {
			if cis[i] != ref2.CheckIns[i] {
				t.Fatalf("trial %d item %d: %+v != %+v", trial, i, cis[i], ref2.CheckIns[i])
			}
		}
	}
}

func BenchmarkCheckInBatchDecode(b *testing.B) {
	cis := make([]CheckIn, 64)
	rng := stats.NewRNG(1)
	for i := range cis {
		cis[i] = CheckIn{DeviceID: fmt.Sprintf("load-%06d", i), CPU: rng.Float64(), Mem: rng.Float64()}
	}
	buf, _ := json.Marshal(CheckInBatchRequest{CheckIns: cis})
	b.Run("custom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req CheckInBatchRequest
			if err := req.UnmarshalJSON(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req stdCheckInBatchRequest
			if err := json.Unmarshal(buf, &req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCheckInBatchEncode(b *testing.B) {
	results := make([]CheckInResult, 64)
	results[0].Assignment = Assignment{Assigned: true, JobID: 3, JobName: "job3", Round: 2}
	resp := CheckInBatchResponse{Results: results}
	b.Run("custom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := resp.MarshalJSON(); err != nil {
				b.Fatal(err)
			}
		}
	})
	std := stdCheckInBatchResponse{Results: resp.Results}
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(std); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type stdCheckInBatchResponse struct {
	Results []CheckInResult `json:"results"`
}
