package transport_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/server"
	"venn/internal/transport"
)

// startShardedServer is startServer over N SO_REUSEPORT listeners.
func startShardedServer(t *testing.T, opts transport.Options, shards int) (*server.Manager, *transport.Server, string) {
	t.Helper()
	m := server.NewManager(server.Config{})
	ts := transport.NewServer(m, opts)
	lns, err := transport.ListenSharded("127.0.0.1:0", shards)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ts.ServeListeners(lns) }()
	t.Cleanup(func() { _ = ts.Close() })
	return m, ts, lns[0].Addr().String()
}

// rawHello dials addr and performs a hand-rolled hello exchange, returning
// the response frame.
func rawHello(t *testing.T, addr string, maxVersion int) transport.Frame {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payload, _ := json.Marshal(transport.HelloRequest{MaxVersion: maxVersion})
	bw := bufio.NewWriter(raw)
	if err := transport.WriteFrame(bw, transport.Version1, transport.OpHello, 9, payload); err != nil {
		t.Fatal(err)
	}
	_ = bw.Flush()
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	fr, err := transport.ReadFrame(bufio.NewReader(raw), 1<<20, transport.MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestHelloNegotiation pins the negotiation matrix at the frame level: a v2
// server grants min(client, server), and a v1-capped server answers the
// hello with OpError exactly like a pre-v2 daemon.
func TestHelloNegotiation(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{})
	for _, tc := range []struct{ ask, want int }{{2, 2}, {1, 1}, {7, 2}, {0, 1}} {
		fr := rawHello(t, addr, tc.ask)
		if fr.Op != transport.OpHello|transport.RespFlag || fr.ID != 9 {
			t.Fatalf("ask %d: got op %#x id %d", tc.ask, fr.Op, fr.ID)
		}
		var hr transport.HelloResponse
		if err := json.Unmarshal(fr.Payload, &hr); err != nil {
			t.Fatal(err)
		}
		if hr.Version != tc.want {
			t.Errorf("ask %d: granted %d, want %d", tc.ask, hr.Version, tc.want)
		}
	}

	_, _, v1addr := startServer(t, transport.Options{MaxVersion: transport.Version1})
	if fr := rawHello(t, v1addr, 2); fr.Op != transport.OpError {
		t.Errorf("v1-only server answered hello with %#x, want OpError", fr.Op)
	}
}

// TestClientFallsBackToV1 drives a full client workload against a v1-capped
// server: negotiation must downgrade transparently and every call must
// still work over JSON payloads.
func TestClientFallsBackToV1(t *testing.T) {
	m, ts, addr := startServer(t, transport.Options{MaxVersion: transport.Version1})
	c := client.NewStream(addr)
	defer c.Close()

	if _, err := c.RegisterJob(server.JobSpec{Name: "j0", Category: "General", DemandPerRound: 2, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	cis := []server.CheckIn{{DeviceID: "a", CPU: 0.9, Mem: 0.9}, {DeviceID: "b", CPU: 0.9, Mem: 0.9}}
	results, err := c.CheckInBatch(cis)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("result %d: %s", i, res.Error)
		}
	}
	// Typed errors still decode over the v1 error frame.
	if _, err := c.JobStatus(999); err == nil {
		t.Fatal("missing job did not error")
	} else if client.ErrCode(err) != server.CodeNotFound {
		t.Errorf("v1 error code = %d, want CodeNotFound", client.ErrCode(err))
	}
	// No v2 frames may have reached a v1-capped server.
	if tel := ts.StreamTelemetry(); tel.FramesInV2 != 0 {
		t.Errorf("v1-capped server counted %d v2 frames", tel.FramesInV2)
	}
	_ = m
}

// TestV2BinaryOnTheWire asserts a default client ↔ default server pair
// actually negotiates v2 and moves the serving opcodes as binary frames
// (counted by the server), while typed errors come back binary too.
func TestV2BinaryOnTheWire(t *testing.T) {
	_, ts, addr := startServer(t, transport.Options{})
	c := client.NewStream(addr)
	defer c.Close()

	if _, err := c.CheckIn(server.CheckIn{DeviceID: "dev", CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckInBatch([]server.CheckIn{{DeviceID: "dev", CPU: 1, Mem: 1}}); err != nil {
		t.Fatal(err)
	}
	if tel := ts.StreamTelemetry(); tel.FramesInV2 < 2 {
		t.Errorf("server counted %d v2 frames, want >= 2", tel.FramesInV2)
	}
	// A service rejection over a v2 frame: binary error payload with the
	// stable code, decoded into the same typed StreamError.
	if _, err := c.CheckInBatch(make([]server.CheckIn, server.MaxBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	} else if client.ErrCode(err) != server.CodeTooLarge {
		t.Errorf("v2 error code = %d, want CodeTooLarge", client.ErrCode(err))
	}
	// An explicitly v1-capped client against the same server keeps JSON.
	c1 := client.NewStream(addr, client.WithMaxWireVersion(1))
	defer c1.Close()
	before := ts.StreamTelemetry().FramesInV2
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CheckIn(server.CheckIn{DeviceID: "dev2", CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatal(err)
	}
	if after := ts.StreamTelemetry().FramesInV2; after != before {
		t.Errorf("v1-capped client produced %d v2 frames", after-before)
	}
}

// TestMixedVersionFramesOneConn pins the per-frame versioning rule directly:
// one raw connection interleaving v1-JSON and v2-binary check-ins gets each
// answered in the version it asked with.
func TestMixedVersionFramesOneConn(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	bw := bufio.NewWriter(raw)

	ci := server.CheckIn{DeviceID: "mixed", CPU: 0.5, Mem: 0.5}
	jsonBody, _ := ci.MarshalJSON()
	binBody, _ := ci.MarshalBinary()
	if err := transport.WriteFrame(bw, transport.Version1, transport.OpCheckIn, 1, jsonBody); err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteFrame(bw, transport.Version2, transport.OpCheckIn, 2, binBody); err != nil {
		t.Fatal(err)
	}
	_ = bw.Flush()
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	br := bufio.NewReader(raw)
	got := map[uint32]transport.Frame{}
	for i := 0; i < 2; i++ {
		fr, err := transport.ReadFrame(br, 1<<20, transport.MaxVersion)
		if err != nil {
			t.Fatal(err)
		}
		got[fr.ID] = fr
	}
	if fr := got[1]; fr.Ver != transport.Version1 || fr.Op != transport.OpCheckIn|transport.RespFlag {
		t.Errorf("v1 request answered ver %d op %#x", fr.Ver, fr.Op)
	} else {
		var asg server.Assignment
		if err := asg.UnmarshalJSON(fr.Payload); err != nil {
			t.Errorf("v1 response not JSON: %v", err)
		}
	}
	if fr := got[2]; fr.Ver != transport.Version2 || fr.Op != transport.OpCheckIn|transport.RespFlag {
		t.Errorf("v2 request answered ver %d op %#x", fr.Ver, fr.Op)
	} else {
		var asg server.Assignment
		if err := asg.UnmarshalBinary(fr.Payload); err != nil {
			t.Errorf("v2 response not binary: %v", err)
		}
	}
}

// TestV1ServerRejectsV2Frames: a v1-capped server treats a v2 frame as a
// protocol violation and closes the connection, exactly like a pre-v2
// daemon would.
func TestV1ServerRejectsV2Frames(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{MaxVersion: transport.Version1})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	ci := server.CheckIn{DeviceID: "x", CPU: 1, Mem: 1}
	binBody, _ := ci.MarshalBinary()
	bw := bufio.NewWriter(raw)
	if err := transport.WriteFrame(bw, transport.Version2, transport.OpCheckIn, 1, binBody); err != nil {
		t.Fatal(err)
	}
	_ = bw.Flush()
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := transport.ReadFrame(bufio.NewReader(raw), 1<<20, transport.MaxVersion); err == nil {
		t.Error("v1-capped server answered a v2 frame instead of closing")
	}
}

// TestShardedListeners serves concurrent batch traffic over per-core
// SO_REUSEPORT listeners and then exercises the multi-listener shutdown
// path. On platforms (or kernels) without SO_REUSEPORT, ListenSharded
// degrades to one listener and this still passes.
func TestShardedListeners(t *testing.T) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	m, ts, addr := startShardedServer(t, transport.Options{}, shards)
	if _, err := server.NewService(m, server.TransportStream).RegisterJob(server.JobSpec{Name: "j", Category: "General", DemandPerRound: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := client.NewStream(addr, client.WithStreamConns(1))
			defer c.Close()
			for i := 0; i < 20; i++ {
				cis := []server.CheckIn{{DeviceID: fmt.Sprintf("d-%d-%d", g, i), CPU: 0.5, Mem: 0.5}}
				if _, err := c.CheckInBatch(cis); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if tel := ts.StreamTelemetry(); tel.FramesIn < clients*20 {
		t.Errorf("frames_in = %d, want >= %d", tel.FramesIn, clients*20)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	// All listeners must actually be closed: a fresh dial fails.
	if c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		// Accept queues may hold a connection briefly; a read distinguishes.
		_ = c.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 1)
		if _, rerr := c.Read(buf); rerr == nil {
			t.Error("post-Close listener still serving")
		}
		c.Close()
	}
}
