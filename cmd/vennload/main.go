// Command vennload is the serving-path load generator: it spins up N
// thousand synthetic device agents against a live venndaemon (or a whole
// federation of them), drives registered jobs to completion, and writes
// throughput and latency percentiles to a BENCH_serve.json artifact. It is
// the repo's continuous measurement of the wall-clock serving path — CI runs
// a short smoke pass on every PR, and the -compare mode records the ladder:
// the single-lock one-request-per-check-in baseline, the batched+sharded
// HTTP path, the stream transport pinned to wire protocol v1 (JSON
// payloads), the stream transport at v2 (binary payloads), the same v2
// stream under demand-heavy traffic (stream-v2-contended: a feeder keeps a
// target fraction of check-ins winning assignments, so the run measures the
// contended core commit pipeline instead of the lock-free surplus path), a
// two-daemon federation over that stream transport — all pinned to
// GOMAXPROCS=1 so the rungs measure protocol cost, not core count — plus,
// on multi-core hosts, a stream-mc rung at full GOMAXPROCS with per-core
// SO_REUSEPORT listener shards that measures how the stream path scales
// with cores.
//
// Against a running daemon:
//
//	venndaemon -addr :8080 -stream-addr :8081 &
//	vennload -daemon http://localhost:8080 -agents 2000 -duration 10s
//	vennload -transport stream -stream-daemon localhost:8081 -agents 2000 -duration 10s
//
// Against a running federation (one lane of agents per member; agents land
// on an arbitrary member, exercising the forwarding path):
//
//	vennload -cluster-daemons 10.0.0.1:8081,10.0.0.2:8081 -agents 2000 -duration 10s
//
// Self-hosted (spins in-process daemons; no external setup):
//
//	vennload -agents 2000 -duration 10s -out BENCH_serve.json
//	vennload -cluster 2 -agents 2000 -duration 10s
//	vennload -compare -agents 2000 -duration 5s -out BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/policy"
	"venn/internal/server"
	"venn/internal/stats"
	"venn/internal/transport"
)

// apiClient is the client surface one load lane drives; both the HTTP
// client and the stream client satisfy it.
type apiClient interface {
	RegisterJob(server.JobSpec) (server.JobStatus, error)
	JobStatus(int) (server.JobStatus, error)
	CheckIn(server.CheckIn) (server.Assignment, error)
	CheckInBatch([]server.CheckIn) ([]server.CheckInResult, error)
	Report(server.Report) error
	ReportBatch([]server.Report) ([]server.ReportResult, error)
	Stats() (server.Stats, error)
	Metrics() (server.Metrics, error)
}

func main() {
	var (
		daemon      = flag.String("daemon", "", "venndaemon base URL; empty self-hosts an in-process daemon")
		streamDmn   = flag.String("stream-daemon", "", "venndaemon stream address (host:port) for -transport stream against a live daemon")
		clusterDmns = flag.String("cluster-daemons", "", "comma-separated stream addresses of live federated daemons to drive (one agent lane per member)")
		clusterN    = flag.Int("cluster", 0, "self-host a federation of N daemons (stream transport) and drive all of them")
		transp      = flag.String("transport", "http", "transport to drive: http | stream")
		agents      = flag.Int("agents", 2000, "number of synthetic device agents")
		duration    = flag.Duration("duration", 10*time.Second, "load duration per run")
		batch       = flag.Int("batch", 64, "check-ins per batch request (1 = unbatched single endpoint)")
		conns       = flag.Int("conns", 0, "concurrent load workers (0 = 4x CPUs, capped at 64)")
		streamCns   = flag.Int("stream-conns", 0, "stream connections to multiplex workers over (0 = workers/2, min 1)")
		wireVer     = flag.Int("wire-version", 0, "cap the stream wire protocol version offered by clients (0 = newest, 1 = JSON payloads)")
		streamShrds = flag.Int("stream-shards", 0, "SO_REUSEPORT accept shards for self-hosted stream listeners (0 = 1 listener)")
		topology    = flag.Bool("topology", true, "ring-aware clients in cluster modes: fetch the daemons' topology and send each batch item straight to its owner (false = seed-only clients, exercising the server-side forward path)")
		jobs        = flag.Int("jobs", 8, "CL jobs to register (per federation member in cluster mode)")
		demand      = flag.Int("demand", 0, "demand per round (0 = auto-size to the fleet)")
		demandFrac  = flag.Float64("demand-frac", 0, "demand-heavy mode: keep job arrivals flowing so roughly this fraction of check-ins wins an assignment (0 disables; self-hosted runs also lift the daily task budget so the contention is sustained)")
		rounds      = flag.Int("rounds", 1, "rounds per job")
		category    = flag.String("category", "", "pin every job to one requirement category (default: cycle the standard strata)")
		shards      = flag.Int("shards", 0, "manager lock shards for self-hosted runs (0 = server default)")
		polName     = flag.String("policy", "", "scheduling policy for self-hosted daemons (empty = server default: "+policy.Default+")")
		coreCommit  = flag.String("core-commit", "", "core commit mode for self-hosted daemons: auto (flat combining), direct (per-caller lock), combine (always queue); empty = server default")
		shadowPols  = flag.String("shadow-policies", "", "comma-separated shadow policies for self-hosted daemons (observed, never applied)")
		abFlag      = flag.String("ab", "", "policyA,policyB: sequential self-hosted A/B replay of identical seeded traffic with a JCT/throughput/fairness delta table")
		seed        = flag.Int64("seed", 1, "random seed for the synthetic fleet")
		out         = flag.String("out", "", "write a JSON benchmark report to this file")
		compare     = flag.Bool("compare", false, "self-host and record the ladder: single-lock HTTP, batched+sharded HTTP, stream at wire v1, stream at v2, 2-daemon federation (all at GOMAXPROCS=1), plus a multi-core stream rung on multi-core hosts")
		obsSample   = flag.Int("obs-sample", 0, "request-span sampling for self-hosted daemons: 1 in N requests (0 = server default 64, negative disables spans)")
		pprofSrv    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the load run(s) to this file")
		mutexProf   = flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
		blockProf   = flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit")
	)
	flag.Parse()

	if *transp != "http" && *transp != "stream" {
		fmt.Fprintf(os.Stderr, "vennload: unknown -transport %q (want http or stream)\n", *transp)
		os.Exit(2)
	}
	if *streamDmn != "" && *transp != "stream" {
		fmt.Fprintln(os.Stderr, "vennload: -stream-daemon requires -transport stream")
		os.Exit(2)
	}
	if *clusterDmns != "" && *clusterN > 0 {
		fmt.Fprintln(os.Stderr, "vennload: -cluster (self-hosted) and -cluster-daemons (live) are mutually exclusive")
		os.Exit(2)
	}
	if *polName != "" && !policy.Valid(*polName) {
		fmt.Fprintf(os.Stderr, "vennload: unknown -policy %q (have: %s)\n", *polName, strings.Join(policy.Names(), ", "))
		os.Exit(2)
	}
	if !server.CoreCommitValid(*coreCommit) {
		fmt.Fprintf(os.Stderr, "vennload: unknown -core-commit %q (want auto, direct, or combine)\n", *coreCommit)
		os.Exit(2)
	}
	if *demandFrac < 0 || *demandFrac > 1 {
		fmt.Fprintf(os.Stderr, "vennload: -demand-frac %v out of range [0,1]\n", *demandFrac)
		os.Exit(2)
	}
	var shadowList []string
	if *shadowPols != "" {
		for _, name := range strings.Split(*shadowPols, ",") {
			name = strings.TrimSpace(name)
			if !policy.Valid(name) {
				fmt.Fprintf(os.Stderr, "vennload: unknown shadow policy %q (have: %s)\n", name, strings.Join(policy.Names(), ", "))
				os.Exit(2)
			}
			shadowList = append(shadowList, name)
		}
	}
	if *conns <= 0 {
		*conns = 4 * runtime.NumCPU()
		if *conns > 64 {
			*conns = 64
		}
	}
	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vennload: pprof server:", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vennload: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(mutexProfileFraction)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(blockProfileRateNs)
		defer writeProfile("block", *blockProf)
	}

	report := benchReport{
		Schema:    "venn/bench_serve/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		UnixTime:  time.Now().Unix(),
	}

	if *wireVer < 0 || *wireVer > int(transport.MaxVersion) {
		fmt.Fprintf(os.Stderr, "vennload: -wire-version %d out of range (1..%d)\n", *wireVer, transport.MaxVersion)
		os.Exit(2)
	}

	base := loadConfig{
		Agents: *agents, Conns: *conns, StreamConns: *streamCns, Duration: *duration,
		Jobs: *jobs, Demand: *demand, DemandFrac: *demandFrac, Rounds: *rounds,
		Category: *category, Seed: *seed,
		Policy: *polName, Shadow: shadowList, CoreCommit: *coreCommit,
		WireVersion: *wireVer, StreamShards: *streamShrds, ObsSample: *obsSample,
	}
	switch {
	case *abFlag != "":
		names := strings.Split(*abFlag, ",")
		if len(names) != 2 {
			fmt.Fprintln(os.Stderr, "vennload: -ab wants exactly two policies, e.g. -ab venn,fifo")
			os.Exit(2)
		}
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
			if !policy.Valid(names[i]) {
				fmt.Fprintf(os.Stderr, "vennload: unknown -ab policy %q (have: %s)\n", names[i], strings.Join(policy.Names(), ", "))
				os.Exit(2)
			}
		}
		// Both arms replay the same seeded fleet against the same scripted
		// job set: demands descend steeply across the registration order, so
		// an arrival-ordered policy head-of-line blocks the small jobs that a
		// demand-aware one retires first; supply trickles in (each device
		// checks in once, paced across the duration) so that blocking costs
		// wall-clock JCT. Only the policy differs between the arms.
		for _, name := range names {
			cfg := base
			cfg.Mode, cfg.Transport, cfg.Shards, cfg.Batch = "ab:"+name, *transp, *shards, 1
			cfg.Policy, cfg.DemandSpread, cfg.Trickle = name, true, true
			if cfg.Category == "" {
				cfg.Category = "General"
			}
			report.Runs = append(report.Runs, runSelfHosted(cfg))
		}
		printABDelta(report.Runs[len(report.Runs)-2], report.Runs[len(report.Runs)-1])
	case *compare:
		if *daemon != "" {
			fmt.Fprintln(os.Stderr, "vennload: -compare self-hosts all runs; -daemon is ignored")
		}
		// The protocol rungs all pin GOMAXPROCS=1 so they measure per-core
		// protocol cost; only the final stream-mc rung opens the core count
		// back up. Only the contended rung runs demand-heavy — a global
		// -demand-frac must not corrupt the surplus rungs' lock-free
		// measurements.
		base.DemandFrac = 0
		// Rung 1: one lock stripe and one HTTP request per check-in — the
		// seed serving path.
		single := base
		single.Mode, single.Transport, single.Shards, single.Batch, single.Gomaxprocs = "single", "http", 1, 1, 1
		report.Runs = append(report.Runs, runSelfHosted(single))
		// Rung 2: sharded manager, batched HTTP API.
		batched := base
		batched.Mode, batched.Transport, batched.Shards, batched.Batch, batched.Gomaxprocs = "batched", "http", *shards, max(*batch, 2), 1
		report.Runs = append(report.Runs, runSelfHosted(batched))
		// Rung 3: same batching over the persistent stream, capped to wire
		// protocol v1 (JSON payloads) — the pre-v2 stream path.
		streamV1 := base
		streamV1.Mode, streamV1.Transport, streamV1.Shards, streamV1.Batch, streamV1.Gomaxprocs = "stream-v1", "stream", *shards, max(*batch, 2), 1
		streamV1.WireVersion = 1
		report.Runs = append(report.Runs, runSelfHosted(streamV1))
		// Rung 4: the same stream at wire v2 (binary payloads).
		stream := base
		stream.Mode, stream.Transport, stream.Shards, stream.Batch, stream.Gomaxprocs = "stream", "stream", *shards, max(*batch, 2), 1
		report.Runs = append(report.Runs, runSelfHosted(stream))
		// Rung 4b: the same v2 stream under demand-heavy traffic. A feeder
		// keeps fresh job arrivals flowing (daily budget lifted) so a target
		// fraction of check-ins wins an assignment and reports back; while
		// demand is open every check-in commits through the scheduler core,
		// so this rung measures the flat-combining commit pipeline where the
		// surplus rungs measure the lock-free snapshot path.
		contended := base
		contended.Mode, contended.Transport, contended.Shards, contended.Batch, contended.Gomaxprocs = "stream-v2-contended", "stream", *shards, max(*batch, 2), 1
		contended.DemandFrac = *demandFrac
		if contended.DemandFrac <= 0 {
			contended.DemandFrac = defaultContendedFrac
		}
		report.Runs = append(report.Runs, runSelfHosted(contended))
		// Rung 5: a federation of stream daemons sharing the fleet by
		// consistent-hash ownership, agents spread across all members.
		// Seed-only clients, so roughly half of all traffic crosses the
		// server-side forward path — this rung keeps the forwarded number
		// visible now that direct routing exists.
		nodes := *clusterN
		if nodes <= 0 {
			nodes = 2
		}
		clus := base
		clus.Mode, clus.Transport, clus.Shards, clus.Batch, clus.ClusterNodes = "cluster", "stream", *shards, max(*batch, 2), nodes
		clus.Gomaxprocs = 1
		report.Runs = append(report.Runs, runSelfHostedCluster(clus))
		// Rung 5b: the same federation driven by ring-aware clients
		// (OpTopology): items go straight to their owners and the forward
		// path idles. This is the headline cluster number.
		direct := clus
		direct.Mode, direct.Topology = "cluster-direct", true
		report.Runs = append(report.Runs, runSelfHostedCluster(direct))
		// Rung 6 (multi-core hosts only): the v2 stream again at full
		// GOMAXPROCS with one SO_REUSEPORT accept shard per core.
		if runtime.NumCPU() > 1 {
			mc := base
			mc.Mode, mc.Transport, mc.Shards, mc.Batch = "stream-mc", "stream", *shards, max(*batch, 2)
			mc.Gomaxprocs, mc.StreamShards = runtime.NumCPU(), runtime.NumCPU()
			report.Runs = append(report.Runs, runSelfHosted(mc))
		} else {
			fmt.Println("\nskipping stream-mc rung: single-CPU host (core scaling is unmeasurable here)")
		}

		rate := func(mode string) float64 {
			for _, r := range report.Runs {
				if r.Mode == mode {
					return r.CheckInsPerSec
				}
			}
			return 0
		}
		singleRate, batchedRate := rate("single"), rate("batched")
		streamV1Rate, streamRate := rate("stream-v1"), rate("stream")
		contendedRate := rate("stream-v2-contended")
		clusterRate, directRate, mcRate := rate("cluster"), rate("cluster-direct"), rate("stream-mc")
		if singleRate > 0 {
			report.SpeedupBatchedVsSingle = batchedRate / singleRate
			report.SpeedupStreamVsSingle = streamRate / singleRate
			fmt.Printf("\nspeedup (batched+sharded HTTP vs single-lock): %.2fx\n", report.SpeedupBatchedVsSingle)
			fmt.Printf("speedup (stream vs single-lock):               %.2fx\n", report.SpeedupStreamVsSingle)
		}
		if batchedRate > 0 {
			report.SpeedupStreamVsBatched = streamRate / batchedRate
			fmt.Printf("speedup (stream vs batched HTTP):              %.2fx\n", report.SpeedupStreamVsBatched)
		}
		if streamV1Rate > 0 {
			report.SpeedupStreamV2VsV1 = streamRate / streamV1Rate
			fmt.Printf("speedup (stream wire v2 vs v1):                %.2fx\n", report.SpeedupStreamV2VsV1)
		}
		if streamRate > 0 && contendedRate > 0 {
			report.ContendedVsStream = contendedRate / streamRate
			fmt.Printf("demand-heavy contended rung vs surplus stream: %.2fx\n", report.ContendedVsStream)
		}
		if streamRate > 0 {
			report.SpeedupClusterVsStream = directRate / streamRate
			report.SpeedupClusterFwdVsStream = clusterRate / streamRate
			fmt.Printf("speedup (%d-daemon cluster, ring-aware clients, vs one stream daemon): %.2fx\n", nodes, report.SpeedupClusterVsStream)
			fmt.Printf("speedup (%d-daemon cluster, seed-only clients, vs one stream daemon):  %.2fx\n", nodes, report.SpeedupClusterFwdVsStream)
			if mcRate > 0 {
				report.SpeedupStreamMCVsSingleCore = mcRate / streamRate
				fmt.Printf("speedup (stream at %d cores vs 1 core):         %.2fx\n", runtime.NumCPU(), report.SpeedupStreamMCVsSingleCore)
			}
		}
	case *clusterDmns != "":
		cfg := base
		cfg.Mode, cfg.Transport, cfg.Batch, cfg.Topology = "cluster", "stream", *batch, *topology
		addrs := strings.Split(*clusterDmns, ",")
		cfg.ClusterNodes = len(addrs)
		lanes := make([]lane, len(addrs))
		for i, addr := range addrs {
			lanes[i] = lane{name: addr, c: newStreamClient(addr, cfg)}
		}
		report.Runs = append(report.Runs, runLoad(lanes, cfg))
	case *clusterN > 0:
		cfg := base
		cfg.Mode, cfg.Transport, cfg.Shards, cfg.Batch, cfg.ClusterNodes = "cluster", "stream", *shards, *batch, *clusterN
		cfg.Topology = *topology
		report.Runs = append(report.Runs, runSelfHostedCluster(cfg))
	case *daemon != "" || *streamDmn != "":
		cfg := base
		cfg.Mode, cfg.Transport, cfg.Batch = modeName(*batch, *transp), *transp, *batch
		var c apiClient
		if *transp == "stream" {
			if *streamDmn == "" {
				fmt.Fprintln(os.Stderr, "vennload: -transport stream against a live daemon needs -stream-daemon host:port")
				os.Exit(2)
			}
			c = newStreamClient(*streamDmn, cfg)
		} else {
			c = newHTTPClient(*daemon, cfg)
		}
		report.Runs = append(report.Runs, runLoad([]lane{{name: "daemon", c: c}}, cfg))
	default:
		cfg := base
		cfg.Mode, cfg.Transport, cfg.Shards, cfg.Batch = modeName(*batch, *transp), *transp, *shards, *batch
		report.Runs = append(report.Runs, runSelfHosted(cfg))
	}

	printSummary(report)

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: write report:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *out)
	}
}

func modeName(batch int, transport string) string {
	if transport == "stream" {
		return "stream"
	}
	if batch > 1 {
		return "batched"
	}
	return "single"
}

// Demand-feeder and profiling knobs.
const (
	// defaultContendedFrac is the stream-v2-contended rung's target
	// assignment fraction when -demand-frac is unset.
	defaultContendedFrac = 0.4
	// feedInterval is how often a lane's demand feeder re-sizes open demand
	// against the observed check-in rate.
	feedInterval = 100 * time.Millisecond
	// mutexProfileFraction samples 1 in N mutex contention events for
	// -mutexprofile; blockProfileRateNs records one sample per N ns of
	// goroutine blocking for -blockprofile.
	mutexProfileFraction = 100
	blockProfileRateNs   = 10_000
)

// writeProfile dumps a named runtime profile ("mutex", "block") to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vennload: "+name+" profile:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "vennload: "+name+" profile:", err)
	}
}

type loadConfig struct {
	Mode          string
	Transport     string   // "http" | "stream"
	Shards        int      // self-hosted runs only; 0 = server default
	Policy        string   // self-hosted runs only; "" = server default
	Shadow        []string // self-hosted runs only; shadow policies to attach
	CoreCommit    string   // self-hosted runs only; "" = server default (auto)
	Batch         int
	Agents        int
	Conns         int
	StreamConns   int  // 0 = Conns/2, min 1
	WireVersion   int  // stream wire version cap offered by clients; 0 = newest
	StreamShards  int  // self-hosted stream listener accept shards; 0 = 1
	Gomaxprocs    int  // pin runtime.GOMAXPROCS for the run; 0 = leave as is
	ClusterNodes  int  // federation member count (cluster mode only)
	Topology      bool // ring-aware clients (cluster modes): route items to owners directly
	Duration      time.Duration
	Jobs          int
	Demand        int
	DemandFrac    float64 // demand-heavy mode: target assignment fraction of check-ins (0 = surplus traffic)
	NoDailyBudget bool    // self-hosted runs: lift the one-task-per-day budget (implied by DemandFrac > 0)
	ObsSample     int     // self-hosted runs: span sampling 1 in N (0 = server default, negative disables)
	Rounds        int
	Category      string // "" cycles the standard strata
	Seed          int64
	DemandSpread  bool // -ab: job demands descend across registration order
	Trickle       bool // -ab: each device checks in once, paced across Duration
}

// managerConfig maps a self-hosted run's knobs onto the server config. The
// fleet seed doubles as the scheduling seed so an A/B replay's two arms see
// identical randomness end to end.
func managerConfig(cfg loadConfig) server.Config {
	return server.Config{
		Shards:         cfg.Shards,
		Policy:         cfg.Policy,
		ShadowPolicies: cfg.Shadow,
		Seed:           cfg.Seed,
		CoreCommit:     cfg.CoreCommit,
		// Demand-heavy runs lift the one-task-per-day budget: sustained
		// contention needs the same fleet to stay assignable, or the budget
		// drains the eligible pool within seconds and the run degenerates
		// back to surplus traffic.
		DisableDailyBudget: cfg.NoDailyBudget || cfg.DemandFrac > 0,
		ObsSampleEvery:     cfg.ObsSample,
	}
}

func (cfg loadConfig) streamPool() int {
	if cfg.StreamConns > 0 {
		return cfg.StreamConns
	}
	n := cfg.Conns / 2
	if n < 1 {
		n = 1
	}
	return n
}

type percentiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// nodeResult is one federation member's slice of a cluster run: client-side
// throughput of the lane that drove it plus the member's own federation
// counters.
type nodeResult struct {
	Node           string  `json:"node"`
	CheckIns       int64   `json:"checkins"`
	CheckInsPerSec float64 `json:"checkins_per_sec"`
	Errors         int64   `json:"errors"`
	JobsDone       int     `json:"jobs_done"`
	ForwardsIn     int64   `json:"forwards_in"`
	ForwardsOut    int64   `json:"forwards_out"`
	ForwardErrors  int64   `json:"forward_errors"`
	LocalFallbacks int64   `json:"local_fallbacks"`
	PeersUp        int     `json:"peers_up"`
	PeersDown      int     `json:"peers_down"`
	// Direct-routing telemetry (ring-aware clients): batches served without
	// any peer hop, the topology the member advertises, and forwarded bytes.
	DirectRoutedBatches int64  `json:"direct_routed_batches,omitempty"`
	TopologyEpoch       uint64 `json:"topology_epoch,omitempty"`
	TopologyPushes      int64  `json:"topology_pushes,omitempty"`
	ForwardBytesIn      int64  `json:"forward_bytes_in,omitempty"`
	ForwardBytesOut     int64  `json:"forward_bytes_out,omitempty"`
}

type runResult struct {
	Mode             string           `json:"mode"`
	Transport        string           `json:"transport"`
	Shards           int              `json:"shards,omitempty"`
	Policy           string           `json:"policy,omitempty"`
	CoreCommit       string           `json:"core_commit,omitempty"`
	DemandFrac       float64          `json:"demand_frac,omitempty"`
	ServedByPolicy   map[string]int64 `json:"served_by_policy,omitempty"`
	JCTAvgSeconds    float64          `json:"jct_avg_seconds,omitempty"`
	JCTP90Seconds    float64          `json:"jct_p90_seconds,omitempty"`
	JCTJainFairness  float64          `json:"jct_jain_fairness,omitempty"`
	Agents           int              `json:"agents"`
	Conns            int              `json:"conns"`
	StreamConns      int              `json:"stream_conns,omitempty"`
	WireVersion      int              `json:"wire_version,omitempty"`
	StreamShards     int              `json:"stream_shards,omitempty"`
	GOMAXPROCS       int              `json:"gomaxprocs,omitempty"`
	Batch            int              `json:"batch"`
	DurationSeconds  float64          `json:"duration_seconds"`
	CheckIns         int64            `json:"checkins"`
	CheckInsPerSec   float64          `json:"checkins_per_sec"`
	Assignments      int64            `json:"assignments"`
	Reports          int64            `json:"reports"`
	Errors           int64            `json:"errors"`
	JobsTotal        int              `json:"jobs_total"`
	JobsDone         int              `json:"jobs_done"`
	RequestLatencyMs percentiles      `json:"request_latency_ms"`
	Nodes            []nodeResult     `json:"nodes,omitempty"`
	ServerMetrics    *server.Metrics  `json:"server_metrics,omitempty"`
}

// forwards sums the run's federation counters across its nodes.
func (r runResult) forwards() (in, out int64) {
	for _, n := range r.Nodes {
		in += n.ForwardsIn
		out += n.ForwardsOut
	}
	return in, out
}

// directRouted sums the run's direct-routed batch counts across its nodes.
func (r runResult) directRouted() int64 {
	var total int64
	for _, n := range r.Nodes {
		total += n.DirectRoutedBatches
	}
	return total
}

type benchReport struct {
	Schema                 string      `json:"schema"`
	GoVersion              string      `json:"go_version"`
	GOOS                   string      `json:"goos"`
	GOARCH                 string      `json:"goarch"`
	NumCPU                 int         `json:"num_cpu"`
	UnixTime               int64       `json:"unix_time"`
	Runs                   []runResult `json:"runs"`
	SpeedupBatchedVsSingle float64     `json:"speedup_batched_vs_single,omitempty"`
	SpeedupStreamVsSingle  float64     `json:"speedup_stream_vs_single,omitempty"`
	SpeedupStreamVsBatched float64     `json:"speedup_stream_vs_batched,omitempty"`
	// SpeedupClusterVsStream compares the cluster-direct rung (ring-aware
	// clients, OpTopology routing) to the single-daemon v2 stream rung — the
	// headline federation number. SpeedupClusterFwdVsStream keeps the
	// seed-only clients' ratio (every misrouted item crossing the forward
	// path) that this field used to hold.
	SpeedupClusterVsStream    float64 `json:"speedup_cluster_vs_stream,omitempty"`
	SpeedupClusterFwdVsStream float64 `json:"speedup_cluster_fwd_vs_stream,omitempty"`
	// SpeedupStreamV2VsV1 compares the stream rung (wire v2, binary
	// payloads) to stream-v1 (same transport capped to JSON payloads).
	SpeedupStreamV2VsV1 float64 `json:"speedup_stream_v2_vs_v1,omitempty"`
	// SpeedupStreamMCVsSingleCore compares the stream-mc rung (full
	// GOMAXPROCS, per-core listener shards) to the single-core stream rung.
	SpeedupStreamMCVsSingleCore float64 `json:"speedup_stream_mc_vs_single_core,omitempty"`
	// ContendedVsStream compares the stream-v2-contended rung (demand-heavy
	// traffic committing through the core pipeline) to the surplus stream
	// rung (lock-free snapshot path). Expected well below 1.0 — it prices
	// the core commit, not the protocol.
	ContendedVsStream float64 `json:"contended_vs_stream,omitempty"`
}

// printMu serializes all human-readable run output: each run's block is
// assembled off to the side and printed atomically, so per-node (or any
// future concurrent) runs can never interleave lines mid-block.
var printMu sync.Mutex

func printBlock(b *strings.Builder) {
	printMu.Lock()
	fmt.Print(b.String())
	printMu.Unlock()
}

// printSummary renders the end-of-run table: one row per run with its
// policy, throughput, and federation forward counts, plus per-node rows for
// cluster runs.
func printSummary(report benchReport) {
	var b strings.Builder
	fmt.Fprintf(&b, "\n%-14s %-9s %-8s %5s %5s %14s %10s %10s %10s %8s %8s\n",
		"mode", "transport", "policy", "nodes", "batch", "checkins/s", "fwd_out", "fwd_in", "direct", "errors", "jobs")
	for _, run := range report.Runs {
		nodes := 1
		if len(run.Nodes) > 0 {
			nodes = len(run.Nodes)
		}
		pol := run.Policy
		if pol == "" {
			pol = "-"
		}
		in, out := run.forwards()
		fmt.Fprintf(&b, "%-14s %-9s %-8s %5d %5d %14.0f %10d %10d %10d %8d %d/%d\n",
			run.Mode, run.Transport, pol, nodes, run.Batch, run.CheckInsPerSec,
			out, in, run.directRouted(), run.Errors, run.JobsDone, run.JobsTotal)
		for _, n := range run.Nodes {
			fmt.Fprintf(&b, "  └ %-28s %14.0f %10d %10d %10d %8d %d (topo epoch %d, %d pushes, fwd bytes %d/%d)\n",
				n.Node, n.CheckInsPerSec, n.ForwardsOut, n.ForwardsIn, n.DirectRoutedBatches,
				n.Errors, n.JobsDone, n.TopologyEpoch, n.TopologyPushes, n.ForwardBytesOut, n.ForwardBytesIn)
		}
	}
	printBlock(&b)
}

// printABDelta renders the -ab verdict: both arms side by side plus A's
// JCT/throughput/fairness deltas relative to B.
func printABDelta(a, b runResult) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nA/B replay, identical seeded traffic (%s vs %s):\n", a.Policy, b.Policy)
	fmt.Fprintf(&sb, "%-8s %14s %9s %11s %11s %8s\n",
		"policy", "checkins/s", "jobs", "jct_avg_s", "jct_p90_s", "jain")
	for _, r := range []runResult{a, b} {
		fmt.Fprintf(&sb, "%-8s %14.0f %6d/%-2d %11.2f %11.2f %8.3f\n",
			r.Policy, r.CheckInsPerSec, r.JobsDone, r.JobsTotal,
			r.JCTAvgSeconds, r.JCTP90Seconds, r.JCTJainFairness)
	}
	if a.JCTAvgSeconds > 0 && b.JCTAvgSeconds > 0 && b.CheckInsPerSec > 0 {
		fmt.Fprintf(&sb, "delta (%s relative to %s): jct_avg %+.1f%%, throughput %+.1f%%, fairness %+.3f\n",
			a.Policy, b.Policy,
			100*(a.JCTAvgSeconds-b.JCTAvgSeconds)/b.JCTAvgSeconds,
			100*(a.CheckInsPerSec-b.CheckInsPerSec)/b.CheckInsPerSec,
			a.JCTJainFairness-b.JCTJainFairness)
	}
	printBlock(&sb)
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²) over per-job JCTs: 1.0
// when every job waits equally, approaching 1/n as one job absorbs all the
// delay.
func jainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func newHTTPClient(baseURL string, cfg loadConfig) apiClient {
	tr := &http.Transport{
		MaxIdleConns:        2 * cfg.Conns,
		MaxIdleConnsPerHost: 2 * cfg.Conns,
	}
	return client.New(baseURL,
		client.WithHTTPClient(&http.Client{Timeout: 30 * time.Second, Transport: tr}),
		client.WithRetries(2))
}

func newStreamClient(addr string, cfg loadConfig) apiClient {
	opts := []client.Option{
		client.WithStreamConns(cfg.streamPool()),
		client.WithTimeout(30 * time.Second),
	}
	if cfg.WireVersion > 0 {
		opts = append(opts, client.WithMaxWireVersion(cfg.WireVersion))
	}
	if cfg.Topology {
		opts = append(opts, client.WithTopology(true))
	}
	return client.NewStream(addr, opts...)
}

// pinGomaxprocs applies cfg.Gomaxprocs for the duration of a run; the
// returned func restores the previous value. Runs are sequential, so the
// global knob cannot race another run.
func pinGomaxprocs(cfg loadConfig) (restore func()) {
	if cfg.Gomaxprocs <= 0 {
		return func() {}
	}
	prev := runtime.GOMAXPROCS(cfg.Gomaxprocs)
	return func() { runtime.GOMAXPROCS(prev) }
}

// selfHostedNode is one in-process daemon: manager, listener, transport
// server, optional federation layer, and its tick loop.
type selfHostedNode struct {
	m        *server.Manager
	clu      *cluster.Cluster
	teardown func()
}

// startTicker runs the manager's once-a-second maintenance until stop.
func startTicker(m *server.Manager) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// runSelfHosted spins one in-process daemon on the requested transport,
// drives the load against it over real loopback sockets, and tears it down.
func runSelfHosted(cfg loadConfig) runResult {
	defer pinGomaxprocs(cfg)()
	m := server.NewManager(managerConfig(cfg))
	defer m.StopShadows()
	var c apiClient
	var teardown func()
	if cfg.Transport == "stream" {
		ts := transport.NewServer(m, transport.Options{})
		lns, err := transport.ListenSharded("127.0.0.1:0", max(cfg.StreamShards, 1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: listen:", err)
			os.Exit(1)
		}
		go func() { _ = ts.ServeListeners(lns) }()
		c = newStreamClient(lns[0].Addr().String(), cfg)
		teardown = func() { _ = ts.Close() }
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: listen:", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: server.Handler(m)}
		go func() { _ = srv.Serve(ln) }()
		c = newHTTPClient("http://"+ln.Addr().String(), cfg)
		teardown = func() { _ = srv.Close() }
	}
	stopTick := startTicker(m)
	defer func() {
		stopTick()
		teardown()
	}()
	res := runLoad([]lane{{name: "daemon", c: c}}, cfg)
	if cfg.Shards > 0 {
		res.Shards = cfg.Shards
	} else if res.ServerMetrics != nil {
		res.Shards = res.ServerMetrics.Shards
	}
	if cfg.Transport == "stream" {
		res.StreamShards = max(cfg.StreamShards, 1)
	}
	return res
}

// runSelfHostedCluster spins cfg.ClusterNodes federated in-process daemons
// (stream transport, consistent-hash ownership over all members) and drives
// one agent lane per member — each lane's fleet slice lands on an arbitrary
// owner, so roughly (N-1)/N of all traffic exercises the forwarding path.
func runSelfHostedCluster(cfg loadConfig) runResult {
	defer pinGomaxprocs(cfg)()
	n := cfg.ClusterNodes
	if n < 2 {
		n = 2
		cfg.ClusterNodes = n
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: listen:", err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]selfHostedNode, n)
	lanes := make([]lane, n)
	for i := range nodes {
		m := server.NewManager(managerConfig(cfg))
		ts := transport.NewServer(m, transport.Options{})
		go func(ln net.Listener) { _ = ts.Serve(ln) }(lns[i])
		clu, err := cluster.New(m, cluster.Config{SelfID: addrs[i], Peers: addrs})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vennload: cluster:", err)
			os.Exit(1)
		}
		stopTick := startTicker(m)
		nodes[i] = selfHostedNode{m: m, clu: clu, teardown: func() {
			stopTick()
			_ = clu.Close()
			_ = ts.Close()
			m.StopShadows()
		}}
		lanes[i] = lane{name: addrs[i], c: newStreamClient(addrs[i], cfg)}
	}
	defer func() {
		for _, nd := range nodes {
			nd.teardown()
		}
	}()
	res := runLoad(lanes, cfg)
	if cfg.Shards > 0 {
		res.Shards = cfg.Shards
	}
	return res
}

// lane is one load target: a named client (a single daemon, or one member
// of a federation) that a share of the workers drives.
type lane struct {
	name string
	c    apiClient
}

// laneStat is one lane's live counters, shared between its workers and (in
// demand-heavy mode) its demand feeder.
type laneStat struct {
	checkIns atomic.Int64
	assigns  atomic.Int64
	errs     atomic.Int64
}

// demandFeeder keeps one lane demand-heavy: every feedInterval it measures
// the lane's check-in rate and registers a one-round filler job sized so
// that roughly cfg.DemandFrac of check-ins keeps winning an assignment.
// Open demand is consumed greedily at the check-in rate, so the feeder
// tops outstanding demand up to exactly one interval's worth — more would
// overshoot the fraction, not smooth it. While any demand is open every
// check-in commits through the scheduler core, so the fraction governs
// assignment (and report) volume, not which path check-ins take. Filler
// jobs are not part of the scripted job set, so the end-of-run completion
// poll ignores them.
func demandFeeder(c apiClient, ls *laneStat, cfg loadConfig, li int, stop <-chan struct{}) {
	cat := cfg.Category
	if cat == "" {
		cat = "General"
	}
	t := time.NewTicker(feedInterval)
	defer t.Stop()
	var registered, prevCI int64
	seq := 0
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		ci := ls.checkIns.Load()
		dCI := ci - prevCI
		prevCI = ci
		want := int64(cfg.DemandFrac * float64(dCI))
		if want < 1 {
			want = 1
		}
		// Assignments against the scripted jobs inflate the lane's assign
		// counter by their (small, fixed) total demand; the resulting
		// under-count of outstanding feeder demand is a bounded constant
		// that the next top-up absorbs.
		outstanding := registered - ls.assigns.Load()
		if need := want - outstanding; need > 0 {
			if _, err := c.RegisterJob(server.JobSpec{
				Name:           fmt.Sprintf("feed-%d-%d", li, seq),
				Category:       cat,
				DemandPerRound: int(need),
				Rounds:         1,
			}); err != nil {
				continue // a register hiccup only delays the next top-up
			}
			registered += need
			seq++
		}
	}
}

// runLoad drives one load run through the given lanes. Workers are spread
// across lanes round-robin; each worker drives a disjoint slice of the
// fleet through its lane's client, so a device always checks in via the
// same member (its reports then chase its assignments to the same owner).
func runLoad(lanes []lane, cfg loadConfig) runResult {
	// Every lane needs at least one worker driving a non-empty fleet slice,
	// or an undriven member's jobs never complete and its forward counters
	// stay zero (which the CI federation gate would read as a broken
	// cluster). Workers beyond the agent count would get empty slices and
	// skip out, so bound conns by agents first; that makes agents >= lanes
	// a hard requirement.
	if cfg.Agents < len(lanes) {
		fmt.Fprintf(os.Stderr, "vennload: -agents %d is fewer than the %d federation members; every member needs at least one agent\n",
			cfg.Agents, len(lanes))
		os.Exit(2)
	}
	if cfg.Conns > cfg.Agents {
		cfg.Conns = cfg.Agents
	}
	if cfg.Conns < len(lanes) {
		cfg.Conns = len(lanes)
	}
	// Reachability probe; the stats reply also names the serving policy
	// (authoritative for live daemons, where cfg.Policy is unset).
	activePolicy := cfg.Policy
	for _, l := range lanes {
		st, err := l.c.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vennload: daemon %s unreachable: %v\n", l.name, err)
			os.Exit(1)
		}
		if st.Policy != "" {
			activePolicy = st.Policy
		}
	}

	// Register the CL jobs — one set per lane, since federation members run
	// independent schedulers. Auto demand keeps total required responses
	// well under the fleet's one-task-per-day capacity so every job can
	// finish within the run.
	demand := cfg.Demand
	if demand <= 0 {
		demand = cfg.Agents / (4 * cfg.Jobs * cfg.Rounds * len(lanes))
		if cfg.DemandSpread {
			// Spread demands sum to demand*Jobs*(Jobs+1)/2; size that total
			// to about half the fleet so supply stays scarce enough for the
			// scheduling order to matter, yet every job can finish.
			demand = cfg.Agents / (cfg.Jobs * (cfg.Jobs + 1) * cfg.Rounds * len(lanes))
		}
		if demand < 1 {
			demand = 1
		}
	}
	// demandFor spreads per-job demand when requested: registration order
	// descends from Jobs*demand down to demand, so FIFO-style policies pay a
	// head-of-line price that demand-aware ones avoid.
	demandFor := func(i int) int {
		if cfg.DemandSpread {
			return demand * (cfg.Jobs - i)
		}
		return demand
	}
	categories := []string{"General", "General", "Compute-Rich", "Memory-Rich", "High-Perf"}
	if cfg.Category != "" {
		categories = []string{cfg.Category}
	}
	laneJobs := make([][]int, len(lanes))
	for li, l := range lanes {
		for i := 0; i < cfg.Jobs; i++ {
			st, err := l.c.RegisterJob(server.JobSpec{
				Name:           fmt.Sprintf("load-job-%d-%d", li, i),
				Category:       categories[i%len(categories)],
				DemandPerRound: demandFor(i),
				Rounds:         cfg.Rounds,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "vennload: register job:", err)
				os.Exit(1)
			}
			laneJobs[li] = append(laneJobs[li], st.ID)
		}
	}
	jobsTotal := cfg.Jobs * len(lanes)

	// Synthesize the fleet.
	rng := stats.NewRNG(cfg.Seed)
	type dev struct {
		id       string
		cpu, mem float64
	}
	fleet := make([]dev, cfg.Agents)
	for i := range fleet {
		fleet[i] = dev{
			id:  fmt.Sprintf("load-%06d", i),
			cpu: rng.Float64(),
			mem: rng.Float64(),
		}
	}

	// Ring-aware fleets converge on device→owner affinity: each lane's
	// workers drive the slice of the fleet that lane's member owns, so
	// batches arrive full-size at their owner instead of being split per
	// owner inside the client. Lane names are the members' stream addresses
	// (their default node IDs), so the same ring the daemons derive from
	// -peers is reproducible here. Misalignment is harmless — the
	// ring-aware client still partitions whatever it is handed — so a
	// daemon running custom -node-id or -vnodes only costs the affinity,
	// not correctness.
	var laneFleet [][]dev
	if cfg.Topology && len(lanes) > 1 {
		members := make([]string, len(lanes))
		laneIdx := make(map[string]int, len(lanes))
		for i, l := range lanes {
			members[i] = l.name
			laneIdx[l.name] = i
		}
		ring := cluster.NewRing(members, 0)
		byLane := make([][]dev, len(lanes))
		for _, d := range fleet {
			li := laneIdx[ring.Owner(d.id)]
			byLane[li] = append(byLane[li], d)
		}
		laneFleet = byLane
		for _, part := range byLane {
			if len(part) == 0 {
				// A member owning zero devices would go undriven; keep the
				// round-robin spread instead.
				laneFleet = nil
				break
			}
		}
	}

	var (
		checkIns    atomic.Int64
		assignments atomic.Int64
		reports     atomic.Int64
		errs        atomic.Int64
		laneStats   = make([]laneStat, len(lanes))

		latMu     sync.Mutex
		latencies []float64
		servedBy  = make(map[string]int64) // assignments by wire policy attribution
	)
	const maxLatSamplesPerWorker = 100_000

	var head strings.Builder
	fmt.Fprintf(&head, "run %q: %s transport, %d agents, %d conns, batch %d, %v",
		cfg.Mode, cfg.Transport, cfg.Agents, cfg.Conns, cfg.Batch, cfg.Duration)
	if len(lanes) > 1 {
		fmt.Fprintf(&head, ", %d federation members", len(lanes))
	}
	head.WriteByte('\n')
	printBlock(&head)

	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		li := w % len(lanes)
		pool := fleet
		lo := w * len(fleet) / cfg.Conns
		hi := (w + 1) * len(fleet) / cfg.Conns
		if laneFleet != nil {
			// Affinity mode: split this lane's owned devices across the
			// workers driving this lane.
			pool = laneFleet[li]
			perLane := (cfg.Conns - li + len(lanes) - 1) / len(lanes)
			wi := w / len(lanes)
			lo = wi * len(pool) / perLane
			hi = (wi + 1) * len(pool) / perLane
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c apiClient, ls *laneStat, mine []dev, taskRNG *stats.RNG) {
			defer wg.Done()
			local := make([]float64, 0, 4096)
			localServed := make(map[string]int64)
			record := func(d time.Duration) {
				if len(local) < maxLatSamplesPerWorker {
					local = append(local, float64(d)/float64(time.Millisecond))
				}
			}
			if cfg.Trickle {
				// A/B replay supply model: every device checks in exactly
				// once, paced so the worker's slice spreads evenly across
				// the run. Reports always succeed — failure noise would
				// differ between the arms of a replay.
				interval := cfg.Duration / time.Duration(len(mine))
				for _, d := range mine {
					t0 := time.Now()
					asg, err := c.CheckIn(server.CheckIn{DeviceID: d.id, CPU: d.cpu, Mem: d.mem})
					record(time.Since(t0))
					if err != nil {
						errs.Add(1)
						ls.errs.Add(1)
					} else {
						checkIns.Add(1)
						ls.checkIns.Add(1)
						if asg.Assigned {
							assignments.Add(1)
							ls.assigns.Add(1)
							localServed[asg.Policy]++
							if err := c.Report(server.Report{
								DeviceID:        d.id,
								JobID:           asg.JobID,
								OK:              true,
								DurationSeconds: 10 + 50*taskRNG.Float64(),
							}); err != nil {
								errs.Add(1)
								ls.errs.Add(1)
							} else {
								reports.Add(1)
							}
						}
					}
					if rest := interval - time.Since(t0); rest > 0 {
						time.Sleep(rest)
					}
				}
				latMu.Lock()
				latencies = append(latencies, local...)
				for p, n := range localServed {
					servedBy[p] += n
				}
				latMu.Unlock()
				return
			}
			// A batch larger than this worker's fleet slice would carry
			// duplicate devices whose reservations reject each other.
			batchSize := min(cfg.Batch, len(mine))
			next := 0
			pendingReports := make([]server.Report, 0, batchSize)
			for time.Now().Before(deadline) {
				if cfg.Batch > 1 {
					cis := make([]server.CheckIn, 0, batchSize)
					for len(cis) < batchSize {
						d := mine[next%len(mine)]
						next++
						cis = append(cis, server.CheckIn{DeviceID: d.id, CPU: d.cpu, Mem: d.mem})
					}
					t0 := time.Now()
					results, err := c.CheckInBatch(cis)
					record(time.Since(t0))
					if err != nil {
						errs.Add(1)
						ls.errs.Add(1)
						continue
					}
					pendingReports = pendingReports[:0]
					served := 0
					for i, res := range results {
						if res.Error != "" {
							// Per-item rejection (e.g. a still-busy
							// device): not a served check-in — counting
							// it would flatter the batched throughput.
							errs.Add(1)
							ls.errs.Add(1)
							continue
						}
						served++
						if !res.Assigned {
							continue
						}
						assignments.Add(1)
						ls.assigns.Add(1)
						localServed[res.Policy]++
						pendingReports = append(pendingReports, server.Report{
							DeviceID:        cis[i].DeviceID,
							JobID:           res.JobID,
							OK:              !taskRNG.Bool(0.05),
							DurationSeconds: 10 + 50*taskRNG.Float64(),
						})
					}
					checkIns.Add(int64(served))
					ls.checkIns.Add(int64(served))
					if len(pendingReports) > 0 {
						if _, err := c.ReportBatch(pendingReports); err != nil {
							errs.Add(1)
							ls.errs.Add(1)
						} else {
							reports.Add(int64(len(pendingReports)))
						}
					}
					continue
				}
				// Unbatched path: one request per check-in.
				d := mine[next%len(mine)]
				next++
				t0 := time.Now()
				asg, err := c.CheckIn(server.CheckIn{DeviceID: d.id, CPU: d.cpu, Mem: d.mem})
				record(time.Since(t0))
				if err != nil {
					errs.Add(1)
					ls.errs.Add(1)
					continue
				}
				checkIns.Add(1)
				ls.checkIns.Add(1)
				if !asg.Assigned {
					continue
				}
				assignments.Add(1)
				ls.assigns.Add(1)
				localServed[asg.Policy]++
				err = c.Report(server.Report{
					DeviceID:        d.id,
					JobID:           asg.JobID,
					OK:              !taskRNG.Bool(0.05),
					DurationSeconds: 10 + 50*taskRNG.Float64(),
				})
				if err != nil {
					errs.Add(1)
					ls.errs.Add(1)
				} else {
					reports.Add(1)
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			for p, n := range localServed {
				servedBy[p] += n
			}
			latMu.Unlock()
		}(lanes[li].c, &laneStats[li], pool[lo:hi], rng.Fork())
	}
	// Demand-heavy mode: one feeder per lane keeps fresh job arrivals
	// flowing for as long as the workers run.
	feedStop := make(chan struct{})
	var feedWG sync.WaitGroup
	if cfg.DemandFrac > 0 {
		for li := range lanes {
			feedWG.Add(1)
			go func(li int) {
				defer feedWG.Done()
				demandFeeder(lanes[li].c, &laneStats[li], cfg, li, feedStop)
			}(li)
		}
	}
	wg.Wait()
	close(feedStop)
	feedWG.Wait()
	elapsed := time.Since(start)

	// Give in-flight rounds a moment to drain, then count completions and
	// collect per-job JCTs. Unfinished jobs are censored at the elapsed
	// wall-clock so a policy cannot flatter its average by stranding work.
	jobsDone := 0
	laneDone := make([]int, len(lanes))
	var jcts []float64
	for waited := time.Duration(0); waited < 3*time.Second; waited += 200 * time.Millisecond {
		jobsDone = 0
		jcts = jcts[:0]
		for li, l := range lanes {
			laneDone[li] = 0
			for _, id := range laneJobs[li] {
				st, err := l.c.JobStatus(id)
				if err != nil {
					continue
				}
				if st.State == "done" {
					laneDone[li]++
					jcts = append(jcts, st.JCTSeconds)
				} else {
					jcts = append(jcts, time.Since(start).Seconds())
				}
			}
			jobsDone += laneDone[li]
		}
		if jobsDone == jobsTotal {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	if n, ok := servedBy[""]; ok {
		// Assignments from daemons predating wire attribution.
		delete(servedBy, "")
		servedBy["(unattributed)"] = n
	}
	res := runResult{
		Mode:            cfg.Mode,
		Transport:       cfg.Transport,
		Policy:          activePolicy,
		CoreCommit:      cfg.CoreCommit,
		DemandFrac:      cfg.DemandFrac,
		ServedByPolicy:  servedBy,
		Agents:          cfg.Agents,
		Conns:           cfg.Conns,
		Batch:           cfg.Batch,
		DurationSeconds: elapsed.Seconds(),
		CheckIns:        checkIns.Load(),
		CheckInsPerSec:  float64(checkIns.Load()) / elapsed.Seconds(),
		Assignments:     assignments.Load(),
		Reports:         reports.Load(),
		Errors:          errs.Load(),
		JobsTotal:       jobsTotal,
		JobsDone:        jobsDone,
	}
	if cfg.Transport == "stream" {
		res.StreamConns = cfg.streamPool()
		res.WireVersion = cfg.WireVersion
		if res.WireVersion <= 0 {
			res.WireVersion = int(transport.MaxVersion)
		}
	}
	res.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.RequestLatencyMs = percentiles{
			Mean: stats.Mean(latencies),
			P50:  stats.PercentileSorted(latencies, 50),
			P90:  stats.PercentileSorted(latencies, 90),
			P99:  stats.PercentileSorted(latencies, 99),
			Max:  latencies[len(latencies)-1],
		}
	}
	if len(jcts) > 0 {
		sort.Float64s(jcts)
		res.JCTAvgSeconds = stats.Mean(jcts)
		res.JCTP90Seconds = stats.PercentileSorted(jcts, 90)
		res.JCTJainFairness = jainIndex(jcts)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "  [%s] %d check-ins in %.2fs = %.0f/s; %d assigned, %d reported, %d errors, %d/%d jobs done (req p50 %.3fms p99 %.3fms)\n",
		cfg.Mode, res.CheckIns, res.DurationSeconds, res.CheckInsPerSec, res.Assignments,
		res.Reports, res.Errors, res.JobsDone, res.JobsTotal,
		res.RequestLatencyMs.P50, res.RequestLatencyMs.P99)
	if res.Policy != "" {
		fmt.Fprintf(&b, "  policy %s", res.Policy)
		if len(res.ServedByPolicy) > 0 {
			fmt.Fprintf(&b, "; served by policy:")
			for _, p := range sortedKeys(res.ServedByPolicy) {
				fmt.Fprintf(&b, " %s=%d", p, res.ServedByPolicy[p])
			}
		}
		if len(jcts) > 0 {
			fmt.Fprintf(&b, "; jct avg %.2fs p90 %.2fs jain %.3f", res.JCTAvgSeconds, res.JCTP90Seconds, res.JCTJainFairness)
		}
		b.WriteByte('\n')
	}

	if len(lanes) > 1 {
		// Per-member rows: lane-side throughput plus the member's own
		// federation counters from /v1/metrics.
		for li, l := range lanes {
			nr := nodeResult{
				Node:           l.name,
				CheckIns:       laneStats[li].checkIns.Load(),
				CheckInsPerSec: float64(laneStats[li].checkIns.Load()) / elapsed.Seconds(),
				Errors:         laneStats[li].errs.Load(),
				JobsDone:       laneDone[li],
			}
			// A member that died mid-run (chaos smoke) answers no metrics;
			// its lane still reports client-side counts with zeroed
			// federation counters.
			if mt, err := l.c.Metrics(); err == nil {
				nr.ForwardsIn = mt.ClusterForwardsIn
				nr.ForwardsOut = mt.ClusterForwardsOut
				nr.ForwardErrors = mt.ClusterForwardErrors
				nr.LocalFallbacks = mt.ClusterLocalFallbacks
				nr.PeersUp = mt.ClusterPeersUp
				nr.PeersDown = mt.ClusterPeersDown
				nr.DirectRoutedBatches = mt.DirectRoutedBatches
				nr.TopologyEpoch = mt.TopologyEpoch
				nr.TopologyPushes = mt.TopologyPushes
				nr.ForwardBytesIn = mt.ForwardBytesIn
				nr.ForwardBytesOut = mt.ForwardBytesOut
			}
			res.Nodes = append(res.Nodes, nr)
			fmt.Fprintf(&b, "    node %s: %.0f checkins/s, fwd out %d / in %d (errors %d, fallbacks %d), direct %d, topo epoch %d (%d pushes), fwd bytes out %d / in %d, %d jobs done\n",
				nr.Node, nr.CheckInsPerSec, nr.ForwardsOut, nr.ForwardsIn,
				nr.ForwardErrors, nr.LocalFallbacks, nr.DirectRoutedBatches,
				nr.TopologyEpoch, nr.TopologyPushes, nr.ForwardBytesOut, nr.ForwardBytesIn, nr.JobsDone)
		}
	} else if mt, err := lanes[0].c.Metrics(); err == nil {
		res.ServerMetrics = &mt
		res.Shards = mt.Shards
		if mt.PlanRebuilds+mt.PlanPatches > 0 {
			fmt.Fprintf(&b, "  plan: %d rebuilds, %d patches (incremental hit rate %.1f%%); %d/%d check-ins lock-free\n",
				mt.PlanRebuilds, mt.PlanPatches, 100*mt.PlanIncrementalHitRate,
				mt.LockFreeCheckIns, mt.CheckIns)
		}
		if mt.StreamFramesIn > 0 {
			fmt.Fprintf(&b, "  stream: %d conns, %d frames in, %d frames out; per-transport rates %v\n",
				mt.StreamConns, mt.StreamFramesIn, mt.StreamFramesOut, mt.CheckInsPerSecByTransport)
		}
		// Per-stage p99 of the dominant op's sampled spans (1 in
		// obs_sample_every requests), in canonical stage order.
		for _, op := range []string{"checkin_batch", "checkin"} {
			stages := mt.RequestStageNs[op]
			if len(stages) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  stages (%s p99, 1/%d sampled):", op, mt.ObsSampleEvery)
			for _, st := range []string{"read", "decode", "queue_wait", "apply", "hop", "encode", "write"} {
				if s, ok := stages[st]; ok && s.Count > 0 {
					fmt.Fprintf(&b, " %s=%s", st, time.Duration(s.P99).Round(100*time.Nanosecond))
				}
			}
			b.WriteByte('\n')
			break
		}
	}
	printBlock(&b)
	return res
}
