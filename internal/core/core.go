package core
