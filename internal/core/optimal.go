package core

import (
	"math"
)

// This file implements the exact reference solver for the IRS problem on
// small instances — the integer program of Appendix B, solved by exhaustive
// search with pruning. It exists to validate the scheduling heuristic: the
// property tests compare Algorithm 1's outcome against the true optimum on
// instances small enough to enumerate (the full problem is NP-hard).

// OptInstance is a small IRS instance: devices arrive at ArrivalTimes (in
// any time unit, ascending), each eligible for a subset of jobs, and job j
// needs Demands[j] devices. The objective is the minimum average scheduling
// delay, where a job's delay is the arrival time of the last device it
// needs (all jobs present from time 0).
type OptInstance struct {
	ArrivalTimes []float64
	// Eligible[i] is a bitmask over jobs device i may serve.
	Eligible []uint32
	Demands  []int
}

// BruteForceAvgDelay exhaustively assigns devices to jobs and returns the
// minimum achievable average completion (scheduling-delay) over all jobs,
// or +Inf if demands cannot be met. Complexity O((m+1)^q); keep q small
// (the tests use q <= 12, m <= 4).
func BruteForceAvgDelay(inst OptInstance) float64 {
	m := len(inst.Demands)
	q := len(inst.ArrivalTimes)
	remaining := make([]int, m)
	copy(remaining, inst.Demands)
	finish := make([]float64, m)

	total := 0
	for _, d := range inst.Demands {
		total += d
	}

	best := math.Inf(1)
	var rec func(i, unmet int, sumDelay float64)
	rec = func(i, unmet int, sumDelay float64) {
		if sumDelay >= best {
			return // prune: delays only grow
		}
		if unmet == 0 {
			if sumDelay < best {
				best = sumDelay
			}
			return
		}
		if i >= q || q-i < unmet {
			return // not enough devices left
		}
		// Option: assign device i to an eligible unmet job.
		for j := 0; j < m; j++ {
			if inst.Eligible[i]&(1<<uint(j)) == 0 || remaining[j] == 0 {
				continue
			}
			remaining[j]--
			add := 0.0
			if remaining[j] == 0 {
				finish[j] = inst.ArrivalTimes[i]
				add = inst.ArrivalTimes[i]
			}
			rec(i+1, unmet-1, sumDelay+add)
			remaining[j]++
		}
		// Option: leave device i unused.
		rec(i+1, unmet, sumDelay)
	}
	rec(0, total, 0)
	if math.IsInf(best, 1) {
		return best
	}
	return best / float64(m)
}

// GreedyOrderAvgDelay evaluates a fixed job order on the instance: each
// arriving device goes to the first job in the order that is eligible and
// still unmet — the assignment rule Venn's plan induces. Returns the average
// delay, or +Inf if demands cannot be met.
func GreedyOrderAvgDelay(inst OptInstance, order []int) float64 {
	m := len(inst.Demands)
	remaining := make([]int, m)
	copy(remaining, inst.Demands)
	unmet := 0
	for _, d := range inst.Demands {
		unmet += d
	}
	sum := 0.0
	for i, t := range inst.ArrivalTimes {
		if unmet == 0 {
			break
		}
		for _, j := range order {
			if inst.Eligible[i]&(1<<uint(j)) == 0 || remaining[j] == 0 {
				continue
			}
			remaining[j]--
			unmet--
			if remaining[j] == 0 {
				sum += t
			}
			break
		}
	}
	if unmet > 0 {
		return math.Inf(1)
	}
	return sum / float64(m)
}

// BestOrderAvgDelay tries every job permutation under the greedy
// first-eligible rule and returns the best average delay — the optimum
// within the fixed-job-order family Venn searches (Algorithm 1 restricts
// itself to this family for tractability; Appendix C argues it contains an
// optimal schedule for intra-group orderings).
func BestOrderAvgDelay(inst OptInstance) float64 {
	m := len(inst.Demands)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	best := math.Inf(1)
	var perm func(k int)
	perm = func(k int) {
		if k == m {
			if v := GreedyOrderAvgDelay(inst, order); v < best {
				best = v
			}
			return
		}
		for i := k; i < m; i++ {
			order[k], order[i] = order[i], order[k]
			perm(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	perm(0)
	return best
}
