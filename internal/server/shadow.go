// Shadow policies: secondary schedulers that observe the primary's event
// stream — job registrations, check-ins, reports, completions — and record
// the assignments they *would* have made, without any of them taking effect.
// Each shadow owns a full mirror world (its own policy instance, job clones,
// device registry, supply history) fed by a bounded event channel and driven
// by a dedicated goroutine, so shadow planning never runs on a serving path:
// the serving paths only perform a non-blocking channel send. A slow shadow
// loses events (counted, never blocking); a panicking shadow loses one event
// (recovered, counted); neither can perturb primary assignments or latency.
//
// The mirror applies the *primary's* decisions to its job clones (the shadow
// job set must track real job states, or its queue would diverge after the
// first round) while asking its own policy, at every check-in, which job it
// would have picked. The per-policy divergence counters — assignment
// mismatches, queue-depth delta — surface via /v1/metrics as policy_*
// gauges.
package server

import (
	"strings"
	"sync"
	"sync/atomic"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/policy"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/tsdb"
)

// shadowEventBuffer bounds each shadow's event channel. At ~10⁶ events/s on
// the stream rung a full buffer represents a few milliseconds of backlog;
// beyond that the shadow is too slow and events drop (counted).
const shadowEventBuffer = 8192

// shadowMaxDevices caps each shadow's mirror device registry; devices beyond
// the cap are modeled as transients (ID -1, bypassing per-ID caches).
const shadowMaxDevices = 1 << 20

// shadowSampleStride thins the surplus-path scoring stream: check-ins the
// primary answered lock-free (nothing to assign) are scored one-in-stride,
// carrying the stride as a supply weight so the mirror's check-in history
// stays calibrated. Lifecycle events — arrivals, core-path assignments,
// fulfillments, responses, round completions, aborts — are never sampled,
// so mirror job state stays exact. Keeps shadow CPU well under 10% of
// serving throughput even on small hosts.
const shadowSampleStride = 16

type shadowKind uint8

const (
	shadowArrival shadowKind = iota
	shadowAssign
	shadowFulfilled
	shadowResponse
	shadowRoundDone
	shadowAbort
)

// shadowEvent is one primary-side lifecycle event, self-contained enough to
// replay without touching any primary state.
type shadowEvent struct {
	kind shadowKind
	now  simtime.Time

	jobID job.ID

	// Arrival fields.
	name      string
	category  string
	demand    int
	rounds    int
	taskScale float64

	// Assign / response fields.
	devID      string
	cpu, mem   float64
	cell       device.CellID
	primaryJob job.ID // primary's pick for this check-in; -1 = none
	weight     int32  // check-ins this sampled scoring event represents (0 = 1)
	durSec     float64

	// Round completion.
	done bool
}

// shadowRunner hosts one shadow policy. All mirror state is confined to the
// run goroutine; only the atomic counters are read from outside.
type shadowRunner struct {
	name string
	pol  policy.Policy
	env  *sim.Env
	cats map[string]device.Requirement

	events chan []shadowEvent
	quit   chan struct{}
	once   sync.Once

	jobs    map[job.ID]*job.Job
	devs    map[string]*device.Device
	nextDev device.ID

	assignChecks  atomic.Int64 // check-ins the shadow scored
	mismatches    atomic.Int64 // shadow's pick differed from the primary's
	shadowAssigns atomic.Int64 // check-ins the shadow would have assigned
	queueDepth    atomic.Int64 // mirror jobs currently in StateScheduling
	dropped       atomic.Int64 // events lost to a full channel
	panics        atomic.Int64 // events whose handling panicked (recovered)
}

// PolicyShadowStats is one shadow policy's divergence counters, exported via
// /v1/metrics under policy_shadows.
type PolicyShadowStats struct {
	// AssignChecks counts check-ins the shadow scored; Mismatches counts
	// how many of them it would have answered differently than the primary
	// (different job, or assigned where the primary did not, or vice
	// versa). ShadowAssigns counts the check-ins the shadow would have
	// assigned. Surplus-path check-ins are scored one-in-shadowSampleStride,
	// so AssignChecks can undercount raw traffic; core-path check-ins (the
	// ones the primary assigned from) are always scored.
	AssignChecks  int64 `json:"assign_checks"`
	Mismatches    int64 `json:"assign_mismatches"`
	ShadowAssigns int64 `json:"shadow_assigns"`
	// QueueDepth is the shadow mirror's open-request count;
	// QueueDepthDelta is that minus the primary's (scheduling_jobs).
	QueueDepth      int64 `json:"queue_depth"`
	QueueDepthDelta int64 `json:"queue_depth_delta"`
	// DroppedEvents counts events lost to backpressure (slow shadow);
	// Panics counts recovered shadow-policy panics. Both zero in a healthy
	// deployment — CI's shadow smoke gates on them.
	DroppedEvents int64 `json:"dropped_events"`
	Panics        int64 `json:"panics"`
}

// newShadowRunner builds the mirror world for one shadow policy and starts
// its goroutine.
func newShadowRunner(name string, pol policy.Policy, categories []device.Requirement, window simtime.Duration, seed int64) *shadowRunner {
	grid := device.NewGrid(categories)
	sr := &shadowRunner{
		name: name,
		pol:  pol,
		env: &sim.Env{
			Grid:          grid,
			DB:            tsdb.New(grid.NumCells(), window, simtime.Hour),
			CellPriorRate: make([]float64, grid.NumCells()),
			Jobs:          make(map[job.ID]*job.Job),
			RNG:           stats.NewRNG(seed),
		},
		cats:   make(map[string]device.Requirement, len(categories)),
		events: make(chan []shadowEvent, shadowEventBuffer),
		quit:   make(chan struct{}),
		jobs:   make(map[job.ID]*job.Job),
		devs:   make(map[string]*device.Device),
	}
	for _, c := range categories {
		sr.cats[c.Name] = c
	}
	pol.Bind(sr.env)
	go sr.run()
	return sr
}

// offer enqueues a group of events without ever blocking the caller. Batched
// serving paths hand a whole batch's events over in one send, so the
// hot-path cost per check-in is a slice append, not a channel operation. The
// slice is shared read-only by every shadow; runners never mutate it.
func (sr *shadowRunner) offer(evs []shadowEvent) {
	select {
	case sr.events <- evs:
	default:
		sr.dropped.Add(int64(len(evs)))
	}
}

// stop terminates the runner goroutine (idempotent).
func (sr *shadowRunner) stop() { sr.once.Do(func() { close(sr.quit) }) }

func (sr *shadowRunner) run() {
	for {
		select {
		case <-sr.quit:
			return
		case evs := <-sr.events:
			for i := range evs {
				sr.apply(evs[i])
			}
		}
	}
}

// apply replays one event into the mirror. Panics (a hostile or buggy shadow
// policy, or a mirror desynchronized by dropped events) abandon the event
// and are counted; the runner keeps consuming.
func (sr *shadowRunner) apply(ev shadowEvent) {
	defer func() {
		if r := recover(); r != nil {
			sr.panics.Add(1)
		}
	}()
	switch ev.kind {
	case shadowArrival:
		sr.applyArrival(ev)
	case shadowAssign:
		sr.applyAssign(ev)
	case shadowFulfilled:
		if j := sr.jobs[ev.jobID]; j != nil {
			sr.pol.OnRequestFulfilled(j, ev.now)
			sr.recountQueue()
		}
	case shadowResponse:
		sr.applyResponse(ev)
	case shadowRoundDone:
		sr.applyRoundDone(ev)
	case shadowAbort:
		if j := sr.jobs[ev.jobID]; j != nil && !j.Done() {
			j.AbortAttempt(ev.now)
			sr.pol.OnRequest(j, ev.now)
			sr.recountQueue()
		}
	}
}

func (sr *shadowRunner) applyArrival(ev shadowEvent) {
	req, ok := sr.cats[ev.category]
	if !ok {
		return
	}
	j := job.New(ev.jobID, req, ev.demand, ev.rounds, ev.now)
	if ev.taskScale > 0 {
		j.TaskScale = ev.taskScale
	}
	if ev.name != "" {
		j.Name = ev.name
	}
	sr.jobs[ev.jobID] = j
	sr.env.Jobs[ev.jobID] = j
	j.Start(ev.now)
	sr.pol.OnJobArrival(j, ev.now)
	sr.pol.OnRequest(j, ev.now)
	sr.recountQueue()
}

// applyAssign scores one admitted check-in: ask the shadow policy for its
// would-be pick, compare it against the primary's, feed the shadow's supply
// history, and apply the primary's decision to the mirror.
func (sr *shadowRunner) applyAssign(ev shadowEvent) {
	d := sr.deviceFor(ev)
	choice := sr.pol.Assign(d, ev.now)
	sr.assignChecks.Add(1)
	chosen := job.ID(-1)
	if choice != nil {
		chosen = choice.ID
		sr.shadowAssigns.Add(1)
	}
	if chosen != ev.primaryJob {
		sr.mismatches.Add(1)
	}
	weight := int(ev.weight)
	if weight <= 0 {
		weight = 1
	}
	sr.env.DB.RecordCheckIns(ev.cell, weight, ev.now)
	if ev.primaryJob >= 0 {
		if j := sr.jobs[ev.primaryJob]; j != nil && j.State() == job.StateScheduling {
			// Fulfillment is signaled by its own event; ignore the return.
			j.AddAssignment(ev.now)
			sr.recountQueue()
		}
	}
}

func (sr *shadowRunner) applyResponse(ev shadowEvent) {
	j := sr.jobs[ev.jobID]
	if j == nil {
		return
	}
	if d, ok := sr.devs[ev.devID]; ok {
		sr.pol.ObserveResponse(j, d, simtime.FromSeconds(ev.durSec), ev.now)
	}
	j.AddResponse(ev.now) // tolerant of state drift; completion has its own event
}

// applyRoundDone completes the mirror's round exactly when the primary's
// completed. Dropped events may have starved the mirror of assignments or
// responses; force it to a completable state first so the mirror's lifecycle
// tracks the primary's even under backpressure.
func (sr *shadowRunner) applyRoundDone(ev shadowEvent) {
	j := sr.jobs[ev.jobID]
	if j == nil {
		return
	}
	if j.Done() {
		sr.forgetJob(ev.jobID, ev.now)
		return
	}
	for j.State() == job.StateScheduling {
		j.AddAssignment(ev.now)
	}
	for !j.CanComplete() {
		j.AddResponse(ev.now)
	}
	j.CompleteRound(ev.now)
	if ev.done {
		sr.forgetJob(ev.jobID, ev.now)
	} else {
		sr.pol.OnRequest(j, ev.now)
	}
	sr.recountQueue()
}

func (sr *shadowRunner) forgetJob(id job.ID, now simtime.Time) {
	j := sr.jobs[id]
	if j == nil {
		return
	}
	sr.pol.OnJobDone(j, now)
	delete(sr.jobs, id)
	delete(sr.env.Jobs, id)
	sr.recountQueue()
}

// deviceFor resolves (or mints) the mirror device for a check-in event.
func (sr *shadowRunner) deviceFor(ev shadowEvent) *device.Device {
	if d, ok := sr.devs[ev.devID]; ok {
		d.CPU, d.Mem = ev.cpu, ev.mem
		return d
	}
	if len(sr.devs) >= shadowMaxDevices {
		return device.New(-1, ev.cpu, ev.mem)
	}
	d := device.New(sr.nextDev, ev.cpu, ev.mem)
	sr.nextDev++
	sr.devs[ev.devID] = d
	return d
}

// recountQueue refreshes the mirror's open-request gauge. Mirror job counts
// are small (active jobs, not devices), so a full recount per lifecycle
// event is cheap — and it only ever runs on the shadow goroutine.
func (sr *shadowRunner) recountQueue() {
	n := int64(0)
	for _, j := range sr.jobs {
		if j.State() == job.StateScheduling {
			n++
		}
	}
	sr.queueDepth.Store(n)
}

// statsSnapshot exports the divergence counters. primaryQueueDepth is the
// primary's scheduling_jobs gauge, read by the caller under the core mutex.
func (sr *shadowRunner) statsSnapshot(primaryQueueDepth int64) PolicyShadowStats {
	depth := sr.queueDepth.Load()
	return PolicyShadowStats{
		AssignChecks:    sr.assignChecks.Load(),
		Mismatches:      sr.mismatches.Load(),
		ShadowAssigns:   sr.shadowAssigns.Load(),
		QueueDepth:      depth,
		QueueDepthDelta: depth - primaryQueueDepth,
		DroppedEvents:   sr.dropped.Load(),
		Panics:          sr.panics.Load(),
	}
}

// emitShadow fans one event out to every shadow (non-blocking). Callers
// guard with m.shadowsOn so the no-shadow configuration pays one branch.
func (m *Manager) emitShadow(ev shadowEvent) {
	// Clone: the devID may share a v2 request payload's backing
	// (bdec.shared), and shadow runners retain it in their device maps.
	ev.devID = strings.Clone(ev.devID)
	evs := []shadowEvent{ev}
	for _, sr := range m.shadows {
		sr.offer(evs)
	}
}

// emitShadowBatch fans a batch's accumulated events out to every shadow in
// one send per shadow.
func (m *Manager) emitShadowBatch(evs []shadowEvent) {
	if len(evs) == 0 {
		return
	}
	for i := range evs {
		evs[i].devID = strings.Clone(evs[i].devID)
	}
	for _, sr := range m.shadows {
		sr.offer(evs)
	}
}

// StopShadows terminates the shadow runner goroutines. Safe to call more
// than once; events emitted afterwards are dropped (counted) once the
// channels fill.
func (m *Manager) StopShadows() {
	for _, sr := range m.shadows {
		sr.stop()
	}
}

// ShadowPolicies lists the active shadow policy names, in configuration
// order.
func (m *Manager) ShadowPolicies() []string {
	out := make([]string, len(m.shadows))
	for i, sr := range m.shadows {
		out[i] = sr.name
	}
	return out
}
