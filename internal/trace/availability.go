package trace

import (
	"math"
	"sort"

	"venn/internal/simtime"
	"venn/internal/stats"
)

// Interval is a half-open span [Start, End) during which a device is
// available for CL work (charging and on WiFi).
type Interval struct {
	Start simtime.Time `json:"start"`
	End   simtime.Time `json:"end"`
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t simtime.Time) bool { return t >= iv.Start && t < iv.End }

// Duration returns the interval's length.
func (iv Interval) Duration() simtime.Duration { return iv.End.Sub(iv.Start) }

// AvailabilityModel generates per-device availability intervals with the
// diurnal shape of the FedScale client trace (Figure 2a): most devices come
// online overnight while charging on WiFi, a smaller share during the day,
// and the fraction of the fleet that is online oscillates daily between
// roughly TroughFraction and PeakFraction.
type AvailabilityModel struct {
	// PeakHour is the hour of day (0-24) at which most sessions begin.
	PeakHour float64
	// StartStdHours is the spread of session start times around PeakHour.
	StartStdHours float64
	// SessionMedianHours and SessionP95Hours parameterize the log-normal
	// session length.
	SessionMedianHours float64
	SessionP95Hours    float64
	// DailyOnlineProb is the probability that a device comes online at
	// all on a given day.
	DailyOnlineProb float64
	// DaytimeProb is the probability that a session is a short daytime
	// top-up charge instead of the overnight charge.
	DaytimeProb float64
}

// DefaultAvailabilityModel returns the model used in experiments, tuned so
// the online fraction swings diurnally between ~10% and ~30% of the fleet,
// matching the amplitude of Figure 2a.
func DefaultAvailabilityModel() *AvailabilityModel {
	return &AvailabilityModel{
		PeakHour:           1.0, // 1 AM overnight charging
		StartStdHours:      2.5,
		SessionMedianHours: 4.0,
		SessionP95Hours:    9.0,
		DailyOnlineProb:    0.85,
		DaytimeProb:        0.25,
	}
}

// Generate produces the availability intervals for one device over the given
// horizon. Intervals are sorted and non-overlapping.
func (m *AvailabilityModel) Generate(rng *stats.RNG, horizon simtime.Duration) []Interval {
	days := int(horizon/simtime.Day) + 1
	var ivs []Interval
	for day := 0; day < days; day++ {
		if !rng.Bool(m.DailyOnlineProb) {
			continue
		}
		base := simtime.Time(day) * simtime.Time(simtime.Day)
		startHour := rng.Normal(m.PeakHour, m.StartStdHours)
		if rng.Bool(m.DaytimeProb) {
			// Daytime top-up session around mid-afternoon.
			startHour = rng.Normal(14.0, 3.0)
		}
		start := base.Add(simtime.FromSeconds(normHour(startHour) * 3600))
		durH := rng.LogNormalMedianP95(m.SessionMedianHours, m.SessionP95Hours)
		if durH < 0.25 {
			durH = 0.25
		}
		end := start.Add(simtime.FromSeconds(durH * 3600))
		if end > simtime.Time(horizon) {
			end = simtime.Time(horizon)
		}
		if end > start {
			ivs = append(ivs, Interval{Start: start, End: end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	return mergeIntervals(ivs)
}

// normHour wraps an hour value into [0, 24).
func normHour(h float64) float64 {
	h = math.Mod(h, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// mergeIntervals coalesces overlapping sorted intervals.
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// OnlineFraction returns, for each sampled instant step apart over the
// horizon, the fraction of the fleet whose trace is online. Used to
// regenerate Figure 2a.
func OnlineFraction(traces [][]Interval, horizon simtime.Duration, step simtime.Duration) []float64 {
	if step <= 0 {
		step = simtime.Hour
	}
	n := int(horizon/step) + 1
	out := make([]float64, n)
	if len(traces) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		t := simtime.Time(i) * simtime.Time(step)
		online := 0
		for _, ivs := range traces {
			if atTime(ivs, t) {
				online++
			}
		}
		out[i] = float64(online) / float64(len(traces))
	}
	return out
}

// atTime reports whether sorted intervals cover t (binary search).
func atTime(ivs []Interval, t simtime.Time) bool {
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case t < ivs[mid].Start:
			hi = mid
		case t >= ivs[mid].End:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}
