package cluster_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/obs"
	"venn/internal/server"
	"venn/internal/transport"
)

// TestForwardTraceJoinsFlightRecords is the end-to-end trace-context test:
// with every request sampled, a check-in for a B-owned device sent through
// daemon A must leave a flight record on A (forwarded, hop stage timed) and
// a hop record on B carrying the same trace ID, so the two sides of the
// forward can be joined from the /v1/debug/flight dumps alone.
func TestForwardTraceJoinsFlightRecords(t *testing.T) {
	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mgrs := make([]*server.Manager, 2)
	clus := make([]*cluster.Cluster, 2)
	for i := range mgrs {
		m := server.NewManager(server.Config{ObsSampleEvery: 1})
		ts := transport.NewServer(m, transport.Options{})
		go func(ln net.Listener) { _ = ts.Serve(ln) }(lns[i])
		clu, err := cluster.New(m, cluster.Config{
			SelfID:         addrs[i],
			Peers:          addrs,
			HealthInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgrs[i], clus[i] = m, clu
		t.Cleanup(func() {
			_ = clu.Close()
			_ = ts.Close()
		})
	}
	a, b := mgrs[0], mgrs[1]

	devB := deviceOwnedByRing(t, clus[0].Ring(), addrs[1])

	ca := client.NewStream(addrs[0])
	defer ca.Close()
	if _, err := ca.CheckIn(server.CheckIn{DeviceID: devB, CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatal(err)
	}

	// Spans finish on the transport writer goroutines after the responses go
	// out, so the flight records can land an instant after CheckIn returns.
	var arec, brec obs.Record
	deadline := time.Now().Add(2 * time.Second)
	for {
		arec, brec = obs.Record{}, obs.Record{}
		for _, r := range a.Obs().Flight().Snapshot() {
			if r.Forwarded && r.Op == "checkin" {
				arec = r
			}
		}
		for _, r := range b.Obs().Flight().Snapshot() {
			if r.Hop && r.Op == "checkin" {
				brec = r
			}
		}
		if arec.TraceID != 0 && brec.TraceID != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight records missing: origin=%+v remote=%+v", arec, brec)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if arec.TraceID != brec.TraceID {
		t.Fatalf("trace IDs diverge: origin %016x, remote %016x", arec.TraceID, brec.TraceID)
	}
	hop := arec.StageNs[obs.StageHop]
	if hop <= 0 {
		t.Fatalf("origin record has no hop time: %+v", arec)
	}
	if brec.TotalNs <= 0 {
		t.Fatalf("remote record has no duration: %+v", brec)
	}
	// The remote's serving time sits inside the origin's hop window; allow
	// scheduler slop on the remote's post-write span finish.
	if slop := int64(5 * time.Millisecond); brec.TotalNs > hop+slop {
		t.Fatalf("remote total %dns exceeds origin hop %dns", brec.TotalNs, hop)
	}
}

// deviceOwnedByRing is deviceOwnedBy against a standalone ring (the trace
// test builds its own federation without the startFederation helper).
func deviceOwnedByRing(t *testing.T, r *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("trace-dev-%06d", i)
		if r.Owner(id) == owner {
			return id
		}
	}
	t.Fatalf("no device hashes to %s", owner)
	return ""
}
