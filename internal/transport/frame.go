// Package transport serves the scheduler's Service layer over a persistent
// binary streaming protocol: length-prefixed frames on a raw TCP
// connection. Compared to the HTTP adapter it removes per-request framing,
// header parsing, and connection churn — an agent (or a peer daemon) holds
// one connection open and pipelines requests over it, correlating replies
// by request ID.
//
// Frame layout (all integers big-endian):
//
//	offset size  field
//	0      2     magic 0x56 0x4E ("VN")
//	2      1     protocol version (1)
//	3      1     opcode
//	4      4     request ID (echoed verbatim in the response)
//	8      4     payload length N
//	12     N     payload (JSON, same wire structs + codecs as HTTP)
//
// A response reuses the request's opcode with RespFlag set, or OpError with
// an ErrorPayload body. Request IDs are chosen by the client; responses may
// arrive out of order (the server answers each frame as its handler
// finishes), which is what makes pipelining pay.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	Magic0  = 0x56 // 'V'
	Magic1  = 0x4E // 'N'
	Version = 1
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 12
)

// Opcodes. Response opcode = request opcode | RespFlag on success; OpError
// carries an ErrorPayload on failure.
const (
	OpCheckIn      byte = 0x01
	OpCheckInBatch byte = 0x02
	OpReport       byte = 0x03
	OpReportBatch  byte = 0x04
	OpRegisterJob  byte = 0x05
	OpJobs         byte = 0x06
	OpJobStatus    byte = 0x07
	OpStats        byte = 0x08
	OpMetrics      byte = 0x09
	OpPing         byte = 0x0A

	// HopFlag marks a request frame as already forwarded once by a peer
	// daemon (federation hop guard). A server must answer a hop-flagged
	// frame itself — served locally or rejected — and never re-forward it,
	// so two daemons with disagreeing (stale) rings cannot ping-pong a
	// request between each other. Only the four serving opcodes (check-in,
	// report, and their batch forms) may carry it. Responses echo the flag.
	HopFlag byte = 0x40
	// RespFlag marks a frame as a response to the same opcode.
	RespFlag byte = 0x80
	// OpError is the error-response opcode; its payload is an ErrorPayload.
	OpError byte = 0xFF
)

// ErrorPayload is the body of an OpError response frame. Code carries the
// service layer's error code (server.Code) so clients can classify without
// string matching.
type ErrorPayload struct {
	Code  int    `json:"code"`
	Error string `json:"error"`
}

// JobIDRequest is the OpJobStatus request body.
type JobIDRequest struct {
	ID int `json:"id"`
}

// Frame is one decoded frame.
type Frame struct {
	Op      byte
	ID      uint32
	Payload []byte
}

// ErrProtocol reports a framing violation (bad magic or version); the
// connection cannot be trusted past it and must be closed.
type ErrProtocol struct{ msg string }

func (e *ErrProtocol) Error() string { return "transport: " + e.msg }

// WriteFrame writes one frame to w (typically a *bufio.Writer; the caller
// owns flushing).
func WriteFrame(w io.Writer, op byte, id uint32, payload []byte) error {
	var hdr [HeaderSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = Magic0, Magic1, Version, op
	binary.BigEndian.PutUint32(hdr[4:8], id)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads and validates one frame. Payloads above maxPayload are
// rejected as a protocol violation — a correct peer never sends them, and
// honoring the prefix would let a malformed length balloon memory. The
// returned payload is freshly allocated (it may outlive the reader).
func ReadFrame(br *bufio.Reader, maxPayload int) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return Frame{}, &ErrProtocol{msg: "bad magic"}
	}
	if hdr[2] != Version {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("unsupported version %d", hdr[2])}
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxPayload) {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("payload %d exceeds limit %d", n, maxPayload)}
	}
	fr := Frame{Op: hdr[3], ID: binary.BigEndian.Uint32(hdr[4:8])}
	if n > 0 {
		fr.Payload = make([]byte, n)
		if _, err := io.ReadFull(br, fr.Payload); err != nil {
			return Frame{}, err
		}
	}
	return fr, nil
}
