// Package fl is a self-contained federated-learning emulator used for the
// paper's accuracy experiments (Figures 4 and 9). It substitutes the paper's
// ResNet-18-on-FEMNIST testbed with FedAvg over multinomial logistic
// regression on a synthetic non-IID dataset: class-prototype Gaussians with
// a Dirichlet label partition across clients. What those experiments
// actually measure — how participant count and diversity per round drive
// round-to-accuracy — is preserved, while training stays pure Go and fast.
package fl

import (
	"venn/internal/stats"
)

// Example is one labeled sample.
type Example struct {
	X []float64
	Y int
}

// DataConfig parameterizes synthetic federated dataset generation.
type DataConfig struct {
	Classes          int     // number of labels (default 10)
	Features         int     // input dimension (default 32)
	Clients          int     // number of client shards (default 200)
	SamplesPerClient int     // shard size (default 100)
	TestSamples      int     // held-out test set size (default 2000)
	Alpha            float64 // Dirichlet concentration; lower = more non-IID (default 0.5)
	NoiseStd         float64 // within-class Gaussian noise (default 1.2)
	Seed             int64
}

func (c *DataConfig) normalize() {
	if c.Classes <= 1 {
		c.Classes = 10
	}
	if c.Features <= 0 {
		c.Features = 32
	}
	if c.Clients <= 0 {
		c.Clients = 200
	}
	if c.SamplesPerClient <= 0 {
		c.SamplesPerClient = 100
	}
	if c.TestSamples <= 0 {
		c.TestSamples = 2000
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.NoiseStd <= 0 {
		c.NoiseStd = 1.2
	}
}

// Dataset is a federated dataset: per-client shards plus a global test set.
type Dataset struct {
	Cfg    DataConfig
	Shards [][]Example // Shards[c] is client c's local data
	Test   []Example
	protos [][]float64 // class prototype means
}

// GenerateDataset synthesizes a federated dataset. Each class has a random
// prototype vector; samples are the prototype plus Gaussian noise. Each
// client's label distribution is an independent Dirichlet(alpha) draw, which
// makes shards non-IID: with small alpha most clients carry only a couple of
// labels, so participant diversity genuinely matters for convergence.
func GenerateDataset(cfg DataConfig) *Dataset {
	cfg.normalize()
	rng := stats.NewRNG(cfg.Seed)
	protoRNG := rng.Fork()
	shardRNG := rng.Fork()
	testRNG := rng.Fork()

	protos := make([][]float64, cfg.Classes)
	for k := range protos {
		protos[k] = make([]float64, cfg.Features)
		for f := range protos[k] {
			protos[k][f] = protoRNG.Normal(0, 1)
		}
	}

	ds := &Dataset{Cfg: cfg, protos: protos}
	sample := func(rng *stats.RNG, label int) Example {
		x := make([]float64, cfg.Features)
		for f := range x {
			x[f] = protos[label][f] + rng.Normal(0, cfg.NoiseStd)
		}
		return Example{X: x, Y: label}
	}

	ds.Shards = make([][]Example, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		labelDist := shardRNG.DirichletSym(cfg.Alpha, cfg.Classes)
		shard := make([]Example, cfg.SamplesPerClient)
		for i := range shard {
			shard[i] = sample(shardRNG, shardRNG.WeightedChoice(labelDist))
		}
		ds.Shards[c] = shard
	}

	ds.Test = make([]Example, cfg.TestSamples)
	for i := range ds.Test {
		ds.Test[i] = sample(testRNG, testRNG.Intn(cfg.Classes))
	}
	return ds
}

// ClientFor maps an arbitrary device identifier onto a client shard.
func (d *Dataset) ClientFor(devID int) int {
	if devID < 0 {
		devID = -devID
	}
	return devID % len(d.Shards)
}

// LabelDiversity returns the number of distinct labels present across the
// given client shards — a direct measure of the participant diversity that
// resource contention erodes (Figure 4's mechanism).
func (d *Dataset) LabelDiversity(clients []int) int {
	seen := make(map[int]bool)
	for _, c := range clients {
		if c < 0 || c >= len(d.Shards) {
			continue
		}
		for _, ex := range d.Shards[c] {
			seen[ex.Y] = true
		}
	}
	return len(seen)
}
