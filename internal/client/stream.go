package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/server"
	"venn/internal/transport"
)

// StreamClient talks to a venndaemon stream listener (venndaemon
// -stream-addr) over the persistent framed protocol of internal/transport.
// It exposes the same surface as the HTTP Client — CheckIn/CheckInBatch,
// Report/ReportBatch, job registration and lookup, Stats, Metrics — but
// amortizes connection setup and HTTP framing away entirely: requests from
// any number of goroutines are multiplexed over a small pool of persistent
// connections, correlated by pipelined request IDs, and a connection that
// dies is redialed transparently on the next call.
//
// With WithTopology(true) the client is additionally *ring-aware*: it
// fetches the federation topology (OpTopology) from its seed daemon, builds
// the same consistent-hash ring the daemons use (internal/hashring), and
// partitions every call by device owner onto pooled per-member connections —
// so in a healthy cluster no request needs a server-side federation hop.
// See topo.go for the routing, staleness, and failover contract.
//
// All methods are safe for concurrent use.
type StreamClient struct {
	conns []*streamConn
	next  atomic.Uint64
	topo  *topoState // nil unless WithTopology(true)
}

// Stream defaults.
const (
	DefaultStreamConns      = 2
	DefaultStreamTimeout    = 10 * time.Second
	defaultClientMaxPayload = 64 << 20 // responses can carry full batch + metrics payloads
)

// NewStream creates a stream client for the daemon's stream listener at
// addr (e.g. "localhost:8081"). Connections are dialed lazily on first use
// and redialed automatically after failures; each dial negotiates the wire
// protocol version (v2 binary payloads against current daemons, v1 JSON
// against old ones).
//
// Deprecated: use New — a bare host:port address (or
// WithTransport(TransportStream)) selects this same transport. NewStream
// remains for callers that need the concrete *StreamClient.
func NewStream(addr string, opts ...Option) *StreamClient {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return newStreamClient(addr, cfg)
}

func newStreamClient(addr string, cfg config) *StreamClient {
	sc := &StreamClient{conns: make([]*streamConn, cfg.streamConns)}
	for i := range sc.conns {
		sc.conns[i] = &streamConn{addr: addr, timeout: cfg.timeout, maxVer: byte(min(cfg.maxWireVersion, int(transport.MaxVersion)))}
	}
	if cfg.topology {
		sc.topo = newTopoState(sc, addr, cfg)
		for _, c := range sc.conns {
			c.onPush = sc.topo.applyPush
		}
	}
	return sc
}

// Close tears down every pooled connection (and, in topology mode, the
// per-member sub-clients); in-flight calls fail.
func (s *StreamClient) Close() error {
	if s.topo != nil {
		s.topo.close()
	}
	for _, c := range s.conns {
		c.close(errors.New("client: stream client closed"))
	}
	return nil
}

// Ping round-trips an empty frame — a cheap reachability and liveness
// probe.
func (s *StreamClient) Ping() error {
	_, _, _, err := s.do(transport.OpPing, jsonPayload(nil))
	return err
}

// jsonPayload builds the encoder for the low-volume opcodes, which ride in
// v1 (JSON) frames regardless of the negotiated version.
func jsonPayload(buf []byte) reqEncoder {
	return func(byte) ([]byte, byte, error) { return buf, transport.Version1, nil }
}

// CheckIn announces device availability and returns the assignment.
func (s *StreamClient) CheckIn(ci server.CheckIn) (server.Assignment, error) {
	if s.topo != nil {
		return s.topo.checkIn(ci)
	}
	asg, _, err := s.checkInOp(transport.OpCheckIn, ci, 0)
	return asg, err
}

func (s *StreamClient) checkInOp(op byte, ci server.CheckIn, trace uint64) (server.Assignment, bool, error) {
	var asg server.Assignment
	resp, ver, fwd, err := s.doTrace(op, trace, func(ver byte) ([]byte, byte, error) {
		if ver >= transport.Version2 {
			b, err := ci.AppendBinary(transport.GetBuf(64))
			return b, transport.Version2, err
		}
		b, err := ci.MarshalJSON()
		return b, transport.Version1, err
	})
	if err != nil {
		return asg, fwd, err
	}
	if ver >= transport.Version2 {
		err = asg.UnmarshalBinary(resp)
	} else {
		err = asg.UnmarshalJSON(resp)
	}
	return asg, fwd, err
}

// CheckInBatch announces availability for a whole batch of devices in one
// frame. Results[i] answers cis[i]; per-item rejections surface in each
// result's Error field, not as a Go error.
func (s *StreamClient) CheckInBatch(cis []server.CheckIn) ([]server.CheckInResult, error) {
	if s.topo != nil {
		return s.topo.checkInBatch(cis)
	}
	res, _, err := s.checkInBatchOp(transport.OpCheckInBatch, cis, 0)
	return res, err
}

func (s *StreamClient) checkInBatchOp(op byte, cis []server.CheckIn, trace uint64) ([]server.CheckInResult, bool, error) {
	req := server.CheckInBatchRequest{CheckIns: cis}
	buf, ver, fwd, err := s.doTrace(op, trace, func(ver byte) ([]byte, byte, error) {
		if ver >= transport.Version2 {
			b, err := req.AppendBinary(transport.GetBuf(256))
			return b, transport.Version2, err
		}
		b, err := req.MarshalJSON()
		return b, transport.Version1, err
	})
	if err != nil {
		return nil, fwd, err
	}
	var resp server.CheckInBatchResponse
	if ver >= transport.Version2 {
		err = resp.UnmarshalBinary(buf)
	} else {
		err = resp.UnmarshalJSON(buf)
	}
	if err != nil {
		return nil, fwd, err
	}
	if len(resp.Results) != len(cis) {
		return nil, fwd, fmt.Errorf("client: batch reply has %d results for %d check-ins", len(resp.Results), len(cis))
	}
	return resp.Results, fwd, nil
}

// Report submits a task result.
func (s *StreamClient) Report(r server.Report) error {
	if s.topo != nil {
		return s.topo.report(r)
	}
	_, err := s.reportOp(transport.OpReport, r, 0)
	return err
}

func (s *StreamClient) reportOp(op byte, r server.Report, trace uint64) (bool, error) {
	_, _, fwd, err := s.doTrace(op, trace, func(ver byte) ([]byte, byte, error) {
		if ver >= transport.Version2 {
			b, err := r.AppendBinary(transport.GetBuf(64))
			return b, transport.Version2, err
		}
		b, err := r.MarshalJSON()
		return b, transport.Version1, err
	})
	return fwd, err
}

// ReportBatch submits a batch of task results in one frame. Results[i]
// answers rs[i].
func (s *StreamClient) ReportBatch(rs []server.Report) ([]server.ReportResult, error) {
	if s.topo != nil {
		return s.topo.reportBatch(rs)
	}
	res, _, err := s.reportBatchOp(transport.OpReportBatch, rs, 0)
	return res, err
}

func (s *StreamClient) reportBatchOp(op byte, rs []server.Report, trace uint64) ([]server.ReportResult, bool, error) {
	req := server.ReportBatchRequest{Reports: rs}
	buf, ver, fwd, err := s.doTrace(op, trace, func(ver byte) ([]byte, byte, error) {
		if ver >= transport.Version2 {
			b, err := req.AppendBinary(transport.GetBuf(256))
			return b, transport.Version2, err
		}
		b, err := req.MarshalJSON()
		return b, transport.Version1, err
	})
	if err != nil {
		return nil, fwd, err
	}
	var resp server.ReportBatchResponse
	if ver >= transport.Version2 {
		err = resp.UnmarshalBinary(buf)
	} else {
		err = resp.UnmarshalJSON(buf)
	}
	if err != nil {
		return nil, fwd, err
	}
	if len(resp.Results) != len(rs) {
		return nil, fwd, fmt.Errorf("client: batch reply has %d results for %d reports", len(resp.Results), len(rs))
	}
	return resp.Results, fwd, nil
}

// RegisterJob submits a new CL job and returns its status (including ID).
func (s *StreamClient) RegisterJob(spec server.JobSpec) (server.JobStatus, error) {
	var st server.JobStatus
	err := s.doJSON(transport.OpRegisterJob, spec, &st)
	return st, err
}

// Jobs lists all jobs.
func (s *StreamClient) Jobs() ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := s.doJSON(transport.OpJobs, nil, &out)
	return out, err
}

// JobStatus fetches one job's status.
func (s *StreamClient) JobStatus(id int) (server.JobStatus, error) {
	var st server.JobStatus
	err := s.doJSON(transport.OpJobStatus, transport.JobIDRequest{ID: id}, &st)
	return st, err
}

// Stats fetches the daemon's monitoring snapshot.
func (s *StreamClient) Stats() (server.Stats, error) {
	var st server.Stats
	err := s.doJSON(transport.OpStats, nil, &st)
	return st, err
}

// Metrics fetches the daemon's serving-throughput and latency metrics.
func (s *StreamClient) Metrics() (server.Metrics, error) {
	var mt server.Metrics
	err := s.doJSON(transport.OpMetrics, nil, &mt)
	return mt, err
}

// WaitForJob polls until the job completes or the timeout elapses.
func (s *StreamClient) WaitForJob(id int, poll, timeout time.Duration) (server.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.JobStatus(id)
		if err != nil {
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("client: job %d not done after %v", id, timeout)
		}
		time.Sleep(poll)
	}
}

// doJSON is do for the low-volume ops: reflective encode of in (nil for an
// empty payload), reflective decode into out. These opcodes have no binary
// layout and always ride in v1 frames.
func (s *StreamClient) doJSON(op byte, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	buf, _, _, err := s.do(op, jsonPayload(payload))
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf, out)
}

// reqEncoder builds a request payload given the connection's negotiated
// protocol version, returning the payload and the frame version that
// matches its encoding. Ownership of the payload passes to the send path:
// once the frame is written (or the write fails) the buffer is recycled
// into the transport's frame pool, so encoders should build into
// transport.GetBuf and must not retain the slice.
type reqEncoder func(negotiated byte) ([]byte, byte, error)

// do sends one request frame over a pooled connection and waits for its
// response, returning the response payload, the version of the response
// frame (which dictates how to decode it), and whether the response carried
// the forwarded flag (HopFlag on a non-hop request's response: the daemon
// federation-hopped at least one item, i.e. a ring-aware caller's topology
// is stale) — or the decoded error frame.
func (s *StreamClient) do(op byte, enc reqEncoder) ([]byte, byte, bool, error) {
	return s.doTrace(op, 0, enc)
}

// doTrace is do with an optional trace context: a nonzero trace (the
// forwarding daemon's sampled span ID) is prepended to the payload and
// announced via TraceFlag on the opcode, so the receiving daemon records the
// hop under the same trace ID. Silently dropped on v1 connections — the flag
// and prefix are v2 vocabulary.
func (s *StreamClient) doTrace(op byte, trace uint64, enc reqEncoder) ([]byte, byte, bool, error) {
	c := s.conns[s.next.Add(1)%uint64(len(s.conns))]
	return c.do(op, trace, enc)
}

// streamConn is one pooled connection: a lazily dialed socket, a reader
// goroutine that dispatches response frames to waiters by request ID, and
// a write path serialized by mu. gen guards against a stale teardown (a
// reader from a previous dial) clobbering a fresh connection.
type streamConn struct {
	addr    string
	timeout time.Duration
	maxVer  byte // highest protocol version to negotiate
	// onPush, when set, receives unsolicited OpTopology|RespFlag frames
	// (request ID 0) — the server's topology-change notifications. Called on
	// the read-loop goroutine; must not block.
	onPush func(transport.TopologyPayload)

	mu      sync.Mutex
	c       net.Conn
	bw      *bufio.Writer
	ver     byte // negotiated protocol version of the live connection
	pending map[uint32]chan streamResp
	nextID  uint32
	gen     uint64
}

type streamResp struct {
	ver     byte
	op      byte
	payload []byte
	err     error
}

// connect dials under mu if needed, negotiates the protocol version, and
// starts the reader for the new connection.
func (sc *streamConn) connectLocked() error {
	if sc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", sc.addr, sc.timeout)
	if err != nil {
		return &NotSentError{Err: fmt.Errorf("client: dial stream %s: %w", sc.addr, err)}
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	ver, br, err := negotiate(c, sc.timeout, sc.maxVer)
	if err != nil {
		c.Close()
		// The hello never became a caller-visible request, so this is a
		// pre-send failure: safe to retry elsewhere.
		return &NotSentError{Err: fmt.Errorf("client: stream hello %s: %w", sc.addr, err)}
	}
	sc.c = c
	sc.bw = bufio.NewWriterSize(c, 64<<10)
	sc.ver = ver
	sc.pending = make(map[uint32]chan streamResp)
	sc.gen++
	go sc.readLoop(sc.gen, c, br)
	return nil
}

// negotiate performs the synchronous OpHello exchange on a fresh
// connection, before any pipelined traffic: it announces maxVer and returns
// the version the server selected. A pre-v2 daemon answers OpError
// ("unknown opcode"), which downgrades the connection to v1 — the JSON wire
// format those daemons speak. When maxVer is 1 the exchange is skipped
// entirely (old daemons would treat the hello as an error, and new ones
// default to v1 per frame anyway). The returned reader carries any bytes
// buffered past the hello response and must be handed to the read loop.
func negotiate(c net.Conn, timeout time.Duration, maxVer byte) (byte, *bufio.Reader, error) {
	br := bufio.NewReaderSize(c, 64<<10)
	if maxVer < transport.Version2 {
		return transport.Version1, br, nil
	}
	_ = c.SetDeadline(time.Now().Add(timeout))
	defer func() { _ = c.SetDeadline(time.Time{}) }()
	payload, err := json.Marshal(transport.HelloRequest{MaxVersion: int(maxVer)})
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, transport.HeaderSize, transport.HeaderSize+len(payload))
	transport.PutHeader(buf, transport.Version1, transport.OpHello, 0, len(payload))
	if _, err := c.Write(append(buf, payload...)); err != nil {
		return 0, nil, err
	}
	fr, err := transport.ReadFrame(br, defaultClientMaxPayload, transport.MaxVersion)
	if err != nil {
		return 0, nil, err
	}
	switch fr.Op {
	case transport.OpHello | transport.RespFlag:
		var hr transport.HelloResponse
		if err := json.Unmarshal(fr.Payload, &hr); err != nil {
			return 0, nil, fmt.Errorf("malformed hello response: %w", err)
		}
		v := byte(hr.Version)
		if v < transport.Version1 || v > maxVer {
			return 0, nil, fmt.Errorf("server selected unusable version %d", hr.Version)
		}
		return v, br, nil
	case transport.OpError:
		// Pre-v2 daemon: OpHello is an unknown opcode there. Fall back.
		return transport.Version1, br, nil
	default:
		return 0, nil, fmt.Errorf("unexpected hello response opcode %#x", fr.Op)
	}
}

// readLoop dispatches response frames to their waiters until the
// connection dies, then fails every pending request so callers can retry
// (the next call redials).
func (sc *streamConn) readLoop(gen uint64, c net.Conn, br *bufio.Reader) {
	for {
		fr, err := transport.ReadFrame(br, defaultClientMaxPayload, transport.MaxVersion)
		if err != nil {
			sc.teardown(gen, fmt.Errorf("client: stream connection lost: %w", err))
			return
		}
		if fr.ID == 0 && fr.Op == transport.OpTopology|transport.RespFlag {
			// Unsolicited topology push (ID 0 never collides with a request:
			// request IDs start at 1).
			if sc.onPush != nil {
				var tp transport.TopologyPayload
				if tp.UnmarshalBinary(fr.Payload) == nil {
					sc.onPush(tp)
				}
			}
			continue
		}
		sc.mu.Lock()
		var ch chan streamResp
		if gen == sc.gen {
			ch = sc.pending[fr.ID]
			delete(sc.pending, fr.ID)
		}
		sc.mu.Unlock()
		if ch != nil {
			ch <- streamResp{ver: fr.Ver, op: fr.Op, payload: fr.Payload}
		}
		// A response nobody waits for (timed-out request) is dropped.
	}
}

// teardown closes the socket of generation gen and fails its pending
// requests; a newer generation is left untouched.
func (sc *streamConn) teardown(gen uint64, err error) {
	sc.mu.Lock()
	if gen != sc.gen || sc.c == nil {
		sc.mu.Unlock()
		return
	}
	c := sc.c
	pending := sc.pending
	sc.c, sc.bw, sc.pending = nil, nil, nil
	sc.mu.Unlock()
	c.Close()
	for _, ch := range pending {
		ch <- streamResp{err: err}
	}
}

// close hard-closes the connection, failing pending requests with err.
func (sc *streamConn) close(err error) {
	sc.mu.Lock()
	gen := sc.gen
	sc.mu.Unlock()
	sc.teardown(gen, err)
}

func (sc *streamConn) do(op byte, trace uint64, enc reqEncoder) ([]byte, byte, bool, error) {
	ch := make(chan streamResp, 1)

	sc.mu.Lock()
	if err := sc.connectLocked(); err != nil {
		sc.mu.Unlock()
		return nil, 0, false, err
	}
	// The payload encoding depends on the version this connection
	// negotiated, so it is built under mu, after connect. The codecs are
	// allocation-light appends; the write syscall below dominates.
	payload, frameVer, err := enc(sc.ver)
	if err != nil {
		sc.mu.Unlock()
		return nil, 0, false, err
	}
	// TraceFlag rides only on the wire opcode: the server strips it before
	// building the response, so response matching below uses the bare op.
	wireOp := op
	if trace != 0 && frameVer >= transport.Version2 {
		payload = transport.PrependTrace(payload, trace, true)
		wireOp |= transport.TraceFlag
	}
	gen := sc.gen
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	// Write under mu: frames from concurrent callers interleave whole, and
	// the shared buffered writer coalesces them. The write deadline keeps a
	// wedged peer from holding the lock forever.
	_ = sc.c.SetWriteDeadline(time.Now().Add(sc.timeout))
	err = transport.WriteFrame(sc.bw, frameVer, wireOp, id, payload)
	if err == nil {
		err = sc.bw.Flush()
	}
	sc.mu.Unlock()
	// The buffered writer has copied (or directly written) the payload by
	// now, success or not — recycle it per the reqEncoder contract.
	transport.PutBuf(payload)
	if err != nil {
		sc.teardown(gen, fmt.Errorf("client: stream write: %w", err))
		// teardown already delivered the failure to ch (buffered), but be
		// defensive about ordering: prefer the write error.
		select {
		case <-ch:
		default:
		}
		return nil, 0, false, &NotSentError{Err: fmt.Errorf("client: stream write: %w", err)}
	}

	timer := time.NewTimer(sc.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			return nil, 0, false, resp.err
		}
		if resp.op == transport.OpError {
			return nil, 0, false, decodeStreamError(resp.ver, resp.payload)
		}
		// On a non-hop request, HopFlag on the response opcode is the
		// forwarded flag: the daemon federation-hopped at least one item.
		// (Hop requests echo the flag in op|RespFlag already.)
		forwarded := false
		if op&transport.HopFlag == 0 && resp.op == op|transport.RespFlag|transport.HopFlag {
			forwarded = true
		} else if resp.op != op|transport.RespFlag {
			return nil, 0, false, fmt.Errorf("client: stream response opcode %#x for request %#x", resp.op, op)
		}
		return resp.payload, resp.ver, forwarded, nil
	case <-timer.C:
		sc.mu.Lock()
		if gen == sc.gen && sc.pending != nil {
			delete(sc.pending, id)
		}
		sc.mu.Unlock()
		return nil, 0, false, fmt.Errorf("client: stream request timed out after %v", sc.timeout)
	}
}

// decodeStreamError parses an OpError payload per the frame version into
// the typed StreamError.
func decodeStreamError(ver byte, payload []byte) error {
	var ep transport.ErrorPayload
	if ver >= transport.Version2 {
		if ep.UnmarshalBinary(payload) == nil && ep.Error != "" {
			return &StreamError{Code: server.Code(ep.Code), Msg: ep.Error}
		}
	} else if json.Unmarshal(payload, &ep) == nil && ep.Error != "" {
		return &StreamError{Code: server.Code(ep.Code), Msg: ep.Error}
	}
	return errors.New("client: malformed stream error frame")
}

// StreamError is a typed server-side rejection carried over the stream
// transport; Code mirrors the service layer's error codes.
type StreamError struct {
	Code server.Code
	Msg  string
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("client: %s (stream code %d)", e.Msg, e.Code)
}

// NotSentError wraps a transport failure that happened before the request
// frame could have been processed by the daemon: the dial failed, or the
// frame's write/flush failed (a partially written frame is unparseable, so
// the server never dispatches it). Callers with side-effecting requests —
// the federation forwarder above all — may safely retry or re-apply
// elsewhere. Failures after a complete send (timeout waiting for the
// response, connection lost mid-flight) are NOT wrapped: their outcome is
// unknown and re-applying could double-apply.
type NotSentError struct{ Err error }

func (e *NotSentError) Error() string { return e.Err.Error() }
func (e *NotSentError) Unwrap() error { return e.Err }
