// Package core implements the Venn scheduler: the Intersection Resource
// Scheduling (IRS) heuristic that orders CL jobs to minimize average
// scheduling delay (Algorithm 1), the resource-aware tier-based device
// matching that trims response-collection time (Algorithm 2), and the
// starvation-prevention fairness knob (§4.4).
package core

import (
	"math"
	"sort"

	"venn/internal/device"
)

// GroupState is the planner's view of one resource-homogeneous job group:
// jobs sharing the same device requirement. The IRS planner is a pure
// function over GroupStates, which keeps it independently testable and lets
// the scalability benchmark (Figure 10) drive it directly.
type GroupState struct {
	// Region is the group's eligible cell set S_j.
	Region device.RegionSet
	// Supply is |S_j|: the estimated check-in rate (devices/hour) of
	// eligible devices.
	Supply float64
	// Queue is m_j: the (fairness-adjusted) number of queued jobs.
	Queue float64

	// Outputs, filled by ComputeAllocation.
	Alloc     device.RegionSet // S'_j: cells allocated to this group
	AllocRate float64          // |S'_j| in devices/hour
}

// ComputeAllocation runs Algorithm 1's group-level steps over the groups:
// initial scarcest-first allocation followed by greedy cross-group
// reallocation of intersected resources. cellRates[c] is the estimated
// check-in rate of cell c. Alloc/AllocRate are (re)written on every group;
// allocations are disjoint and cover exactly the cells claimed by at least
// one group.
func ComputeAllocation(groups []*GroupState, cellRates []float64) {
	if len(groups) == 0 {
		return
	}
	rate := func(s device.RegionSet) float64 {
		total := 0.0
		s.ForEach(func(c device.CellID) {
			if int(c) < len(cellRates) {
				total += cellRates[c]
			}
		})
		return total
	}

	// --- Initial allocation (Algorithm 1 lines 5-9): scan groups from
	// scarcest supply to most abundant; each claims whatever of its
	// eligible cells is still unclaimed. Supply ties (common before any
	// rate data exists) break by structural scarcity: fewer eligible
	// cells means a scarcer group.
	byScarcity := make([]*GroupState, len(groups))
	copy(byScarcity, groups)
	sort.SliceStable(byScarcity, func(i, j int) bool {
		if byScarcity[i].Supply != byScarcity[j].Supply {
			return byScarcity[i].Supply < byScarcity[j].Supply
		}
		return byScarcity[i].Region.Count() < byScarcity[j].Region.Count()
	})
	remaining := byScarcity[0].Region.Clone()
	{
		// Union of all groups' regions forms the universe S.
		for _, g := range groups {
			remaining = remaining.Union(g.Region)
		}
	}
	for _, g := range byScarcity {
		g.Alloc = remaining.Intersect(g.Region)
		remaining = remaining.Subtract(g.Alloc)
		g.AllocRate = rate(g.Alloc)
	}

	// --- Cross-group reallocation (Algorithm 1 lines 10-23): scan groups
	// from most abundant; a group j with an unclaimed (non-empty)
	// allocation takes intersected cells from scarcer overlapping groups
	// k, from the relatively abundant k down, while j's queue-pressure
	// ratio exceeds k's.
	byAbundance := make([]*GroupState, len(groups))
	copy(byAbundance, groups)
	sort.SliceStable(byAbundance, func(i, j int) bool {
		if byAbundance[i].Supply != byAbundance[j].Supply {
			return byAbundance[i].Supply > byAbundance[j].Supply
		}
		return byAbundance[i].Region.Count() > byAbundance[j].Region.Count()
	})
	// queueNow tracks m'_j as it accumulates absorbed queues.
	queueNow := make(map[*GroupState]float64, len(groups))
	for _, g := range groups {
		queueNow[g] = g.Queue
	}
	for idx, gj := range byAbundance {
		if gj.Alloc.Empty() {
			continue
		}
		for _, gk := range byAbundance[idx+1:] {
			if gk.Supply >= gj.Supply { // require strictly scarcer
				continue
			}
			if !gk.Region.Overlaps(gj.Region) {
				continue
			}
			rj := pressure(queueNow[gj], gj.AllocRate)
			rk := pressure(queueNow[gk], gk.AllocRate)
			if rj > rk {
				// Reallocate the intersection held by k to j.
				steal := gk.Alloc.Intersect(gj.Region)
				if steal.Empty() {
					continue
				}
				gj.Alloc = gj.Alloc.Union(steal)
				gk.Alloc = gk.Alloc.Subtract(steal)
				moved := rate(steal)
				gj.AllocRate += moved
				gk.AllocRate -= moved
				// k's waiting jobs now queue behind j on the
				// shared cells; account them into m'_j.
				queueNow[gj] += queueNow[gk]
			} else {
				break
			}
		}
	}
}

// pressure is the scheduling-delay pressure ratio m'/|S'| with a safe
// infinity for starved groups.
func pressure(queue, allocRate float64) float64 {
	if allocRate <= 0 {
		if queue <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return queue / allocRate
}

// CellPlan is the per-cell group priority order derived from an allocation:
// for each atomic cell, the groups eligible for it, allocation owner first,
// then scarcest-supply first. A checked-in device in cell c is offered to
// plan[c]'s groups in order (the "first eligible job in the order" rule).
type CellPlan struct {
	// Order[c] lists indices into the planner's group slice.
	Order [][]int
}

// BuildCellPlan derives the per-cell priority lists for the given groups
// (after ComputeAllocation has filled Alloc).
func BuildCellPlan(groups []*GroupState, numCells int) *CellPlan {
	plan := &CellPlan{Order: make([][]int, numCells)}
	for c := 0; c < numCells; c++ {
		cell := device.CellID(c)
		owner := -1
		var others []int
		for gi, g := range groups {
			if !g.Region.Has(cell) {
				continue
			}
			if g.Alloc.Has(cell) && owner < 0 {
				owner = gi
			} else {
				others = append(others, gi)
			}
		}
		sort.SliceStable(others, func(i, j int) bool {
			gi, gj := groups[others[i]], groups[others[j]]
			if gi.Supply != gj.Supply {
				return gi.Supply < gj.Supply
			}
			return gi.Region.Count() < gj.Region.Count()
		})
		if owner >= 0 {
			plan.Order[c] = append([]int{owner}, others...)
		} else {
			plan.Order[c] = others
		}
	}
	return plan
}
