package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBodyLimits pins the request-body bounds: an over-limit payload is
// answered with 413 before it can balloon memory, on both the single-item
// and batch endpoints, and the bound is configurable.
func TestBodyLimits(t *testing.T) {
	m := NewManager(Config{})
	srv := httptest.NewServer(NewHandler(m, HandlerConfig{MaxBodyBytes: 256, MaxBatchBodyBytes: 1024}))
	defer srv.Close()

	post := func(path string, body []byte) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Within bounds: normal processing.
	if code := post("/v1/checkin", []byte(`{"device_id":"a","cpu":0.5,"mem":0.5}`)); code != http.StatusOK {
		t.Errorf("small checkin status %d", code)
	}

	// A giant single-item body trips the 256-byte bound.
	big := []byte(fmt.Sprintf(`{"device_id":%q,"cpu":0.5,"mem":0.5}`, strings.Repeat("x", 4096)))
	if code := post("/v1/checkin", big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized checkin status %d, want 413", code)
	}

	// Same for the batch endpoint and its separate bound.
	var batch bytes.Buffer
	batch.WriteString(`{"checkins":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			batch.WriteByte(',')
		}
		fmt.Fprintf(&batch, `{"device_id":"dev-%06d","cpu":0.5,"mem":0.5}`, i)
	}
	batch.WriteString(`]}`)
	if code := post("/v1/checkin/batch", batch.Bytes()); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch body status %d, want 413", code)
	}

	// The defaults still admit a normal large-ish batch.
	srv2 := httptest.NewServer(Handler(m))
	defer srv2.Close()
	resp, err := http.Post(srv2.URL+"/v1/checkin/batch", "application/json", bytes.NewReader(batch.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default-bound batch status %d", resp.StatusCode)
	}
}
