package core

import (
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
)

// tierFilter restricts one open request to a single device tier (the output
// of Algorithm 2). Devices outside the tier skip this job and flow to
// subsequent jobs in the group, maximizing utilization of leftover tiers.
type tierFilter struct {
	tier int
	cuts []float64 // capability thresholds in effect for this request

	// lapseAt is a safety valve: if the request is still unfilled well
	// past the scheduling-delay estimate (the supply estimate was wrong,
	// or the tier is unexpectedly thin), the filter stops applying so the
	// request cannot starve.
	lapseAt simtime.Time
}

// accepts reports whether the device falls in the chosen tier.
func (f *tierFilter) accepts(d *device.Device) bool {
	return tierOf(d.Capability(), f.cuts) == f.tier
}

// decideTier evaluates Algorithm 2 for a newly opened request and returns
// the tier filter to apply, or nil to run the round unfiltered (either the
// trade-off condition fails, or the job has no profile yet and this round
// profiles its devices).
//
// The paper's condition V + g_u*c < 1 + c (with c = t_response/t_schedule)
// models supply as a pure arrival rate, where restricting to one of V tiers
// multiplies the scheduling delay by V. We evaluate the same trade-off on
// absolute times — t_sched(filtered) + g_u*t_resp < t_sched(unfiltered) +
// t_resp — with a supply estimate that also covers the standing idle pool;
// when supply is rate-limited the two forms coincide exactly.
func (v *Venn) decideTier(j *job.Job, now simtime.Time) *tierFilter {
	V := v.opts.Tiers
	if v.opts.DisableMatching || V <= 1 {
		return nil
	}
	prof := v.profiles.forJob(j.ID)
	if prof == nil {
		return nil // profiling round
	}
	cuts := prof.tierThresholds(V)
	if len(cuts) == 0 {
		return nil
	}
	u := v.env.RNG.Intn(V) // rotate tiers randomly for participant diversity
	g := prof.speedup(u, cuts, v.profiles.minN)
	if g >= 1 {
		return nil // the sampled tier is not faster than the mix
	}

	tResp := prof.p95All()
	if tResp <= 0 {
		tResp = 180
	}
	demand := float64(j.RemainingDemand())
	if demand <= 0 {
		demand = float64(j.Demand)
	}
	idle, rate := v.supplyFor(j, now)
	// Regime detector: with one task per device per day, every round
	// consumes `demand` fresh arrivals, so a job's long-run round cadence
	// is bounded by demand/rate no matter how fast devices respond. Tier
	// filtering can only pay off when the arrival stream sustains rounds
	// at response-time cadence (the paper's "sufficient device influx"
	// precondition); otherwise response savings just convert into
	// scheduling delay.
	if rate <= 0 || demand/rate*3600 > tResp {
		return nil
	}
	tU := acquireSeconds(demand, idle, rate)
	// The filtered acquisition draws on the tier's actual standing pool
	// (counted exactly) plus roughly 1/V of future arrivals.
	idleU := idle / float64(V)
	if v.env.CountIdle != nil {
		req := j.Requirement
		idleU = float64(v.env.CountIdle(func(d *device.Device) bool {
			return req.Eligible(d) && tierOf(d.Capability(), cuts) == u
		}))
	}
	// Tier filtering is reserved for the sufficient-supply regime (§4.3):
	// the chosen tier's standing pool must already cover the request, so
	// filtering costs (almost) no scheduling delay and the g_u response
	// speed-up is a pure win. Outside that regime supply estimates are
	// too noisy for the trade-off to be reliably positive.
	if idleU < demand {
		return nil
	}
	tF := acquireSeconds(demand, idleU, rate/float64(V))
	if tF+g*tResp < tU+tResp {
		// The covering pool fills the request in the very next
		// scheduling pass or not at all (competing jobs may drain the
		// tier first); lapse almost immediately so a missed fill costs
		// seconds of scheduling delay, never minutes. The response-time
		// benefit is locked in by whatever fraction did come from the
		// tier.
		const grace = 15 * simtime.Second
		return &tierFilter{tier: u, cuts: cuts, lapseAt: now.Add(grace)}
	}
	return nil
}

// supplyFor returns the job's standing idle eligible devices and the
// eligible arrival rate (devices/hour), preferring the group's current IRS
// allocation.
func (v *Venn) supplyFor(j *job.Job, now simtime.Time) (idle float64, ratePerHour float64) {
	var region device.RegionSet
	g := v.groups[j.Requirement.Key()]
	if g != nil {
		region = g.region
	} else {
		region = v.env.Grid.RegionOf(j.Requirement)
	}
	idle = float64(v.env.IdleInRegion(region))
	if g != nil && g.state != nil && g.state.AllocRate > 0 {
		ratePerHour = g.state.AllocRate
	} else {
		ratePerHour = v.env.RegionRatePerHour(region, now)
	}
	return idle, ratePerHour
}

// acquireSeconds estimates how long acquiring `demand` devices takes given a
// standing idle pool and an arrival rate.
func acquireSeconds(demand, idle, ratePerHour float64) float64 {
	if demand <= idle {
		return 1
	}
	remaining := demand - idle
	if ratePerHour <= 0 {
		return 3600 // pessimistic hour when nothing is known
	}
	return remaining / ratePerHour * 3600
}

// responseScheduleRatio estimates c_i = t_response / t_schedule for the
// job's current request (kept for observability and tests; decideTier uses
// the absolute-time form).
func (v *Venn) responseScheduleRatio(j *job.Job, prof *profile, now simtime.Time) float64 {
	tResp := prof.p95All()
	if tResp <= 0 {
		tResp = 180
	}
	demand := float64(j.RemainingDemand())
	if demand <= 0 {
		demand = float64(j.Demand)
	}
	idle, rate := v.supplyFor(j, now)
	tSched := acquireSeconds(demand, idle, rate)
	return tResp / tSched
}
