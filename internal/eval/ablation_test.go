package eval

import (
	"testing"
)

func TestSupplyWindowAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := SupplyWindowAblation(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, wh := range res.WindowsHours {
		if res.Speedup[wh] <= 0 {
			t.Errorf("window %.0fh: no speedup recorded", wh)
		}
	}
}

func TestTaskHeavinessAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := TaskHeaviness(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// Heavier tasks must abort more often (they brush the deadline).
	if res.AbortFrac[3.0] < res.AbortFrac[0.5] {
		t.Errorf("heavier tasks should abort at least as often: 0.5x=%.3f 3.0x=%.3f",
			res.AbortFrac[0.5], res.AbortFrac[3.0])
	}
}
