//go:build linux

package transport

import "syscall"

// reusePortSupported reports whether this platform can bind multiple
// listeners to one port via SO_REUSEPORT (Linux ≥ 3.9).
const reusePortSupported = true

// soReusePort is SO_REUSEPORT, absent from the frozen stdlib syscall
// package. 0xf on every Linux ABI this project targets (amd64, arm64, 386,
// arm, riscv64); MIPS and SPARC use different values — there ListenSharded
// falls back to a single listener via the failed-first-bind path.
const soReusePort = 0xf

// reusePortControl sets SO_REUSEPORT on the socket before bind, letting N
// listeners share one port with kernel-side connection spreading.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
