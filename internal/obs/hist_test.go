package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, NumBuckets - 1}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
		h.Observe(c.ns)
	}
	s := h.Snapshot()
	if got := s.Count(); got != int64(len(cases)) {
		t.Fatalf("Count() = %d, want %d", got, len(cases))
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 100 observations of ~1µs and one of ~1ms: p50 must sit near 1µs and
	// p99.9 near 1ms, within the 2x bucket resolution.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 512 || p50 > 2048 {
		t.Errorf("p50 = %v ns, want ~1000 within bucket resolution", p50)
	}
	if p999 := s.Quantile(0.999); p999 < 500_000 || p999 > 2_100_000 {
		t.Errorf("p99.9 = %v ns, want ~1e6 within bucket resolution", p999)
	}
	if max := s.MaxNs(); max < 1_000_000 || max > 2_100_000 {
		t.Errorf("MaxNs = %v, want the 1ms bucket's upper bound", max)
	}
	if mean := s.MeanNs(); mean < 1000 || mean > 12_000 {
		t.Errorf("MeanNs = %v, want ~10.9µs", mean)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Observe(100)
	b.Observe(100)
	b.Observe(1 << 20)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if got := s.Count(); got != 3 {
		t.Fatalf("merged count = %d, want 3", got)
	}
	if s.Sum != 200+1<<20 {
		t.Fatalf("merged sum = %d, want %d", s.Sum, 200+1<<20)
	}
}

// TestHistConcurrent hammers one histogram from many writers while a reader
// snapshots continuously; under -race this pins the lock-free contract (no
// torn reads, monotonic counts).
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var prev int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			s := h.Snapshot()
			if n := s.Count(); n < prev {
				t.Errorf("snapshot count went backwards: %d after %d", n, prev)
				return
			} else {
				prev = n
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	for h.Snapshot().Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if got := s.Count(); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
}
