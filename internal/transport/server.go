package transport

import (
	"bufio"
	"context"
	"encoding"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/obs"
	"venn/internal/server"
)

// ErrServerClosed is returned by Serve after Shutdown or Close, mirroring
// http.ErrServerClosed.
var ErrServerClosed = errors.New("transport: server closed")

// Options parameterizes the stream server. The zero value takes defaults.
type Options struct {
	// Window bounds the in-flight (read but unanswered) requests per
	// connection (default 64). When a client pipelines past it, the server
	// simply stops reading that connection until responses drain —
	// backpressure propagates through TCP instead of growing queues.
	Window int
	// MaxPayload bounds one frame's payload (default server.MaxBatch KiB,
	// matching the HTTP adapter's batch body bound). A frame announcing
	// more is a protocol violation and closes the connection.
	MaxPayload int
	// MaxVersion caps the protocol version this server speaks (default
	// MaxVersion, currently 2). Setting 1 makes the server behave exactly
	// like a pre-v2 daemon — v2 frames are framing violations and OpHello
	// is an unknown opcode — which is how the mixed-version federation
	// tests pin the fallback path.
	MaxVersion byte
}

func (o *Options) fillDefaults() {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = server.MaxBatch * 1024
	}
	if o.MaxVersion == 0 {
		o.MaxVersion = MaxVersion
	}
}

// Server serves the scheduler's Service over framed TCP streams. Each
// connection gets a read loop (frames → bounded handler window) and a write
// loop (responses → buffered writer, flushed when idle); responses carry
// the request's ID and may be answered out of order.
type Server struct {
	svc  *server.Service
	m    *server.Manager
	opts Options

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup // one entry per active connection

	connsActive atomic.Int64
	framesIn    atomic.Int64
	framesInV2  atomic.Int64
	framesOut   atomic.Int64
}

// NewServer builds a stream server over m and registers its telemetry
// (stream_conns, stream_frames_*) with the manager's /v1/metrics; Shutdown
// and Close detach it again.
func NewServer(m *server.Manager, opts Options) *Server {
	opts.fillDefaults()
	s := &Server{
		svc:   server.NewService(m, server.TransportStream),
		m:     m,
		opts:  opts,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*srvConn]struct{}),
	}
	m.SetStreamTelemetrySource(s)
	if opts.MaxVersion >= Version2 {
		m.SetTopologyPusher(s)
	}
	return s
}

// PushTopology implements server.TopologyPusher: it enqueues an unsolicited
// OpTopology|RespFlag frame (request ID 0) to every connection that has
// fetched the topology, so ring-aware clients learn of membership changes
// without polling. The enqueue is non-blocking — a connection whose write
// window is full simply misses the push and re-syncs on the next forwarded
// response flag.
func (s *Server) PushTopology(info server.TopologyInfo) int {
	tp := TopologyPayload{Epoch: info.Epoch, VNodes: info.VNodes, Members: info.Members}
	payload, err := tp.MarshalBinary()
	if err != nil {
		return 0
	}
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		if sc.topoSub.Load() {
			conns = append(conns, sc)
		}
	}
	s.mu.Unlock()
	pushed := 0
	for _, sc := range conns {
		// The payload is shared across connections, so it is never pooled.
		if sc.tryPush(outFrame{ver: Version2, op: OpTopology | RespFlag, id: 0, payload: payload}) {
			pushed++
		}
	}
	return pushed
}

// StreamTelemetry snapshots the live stream counters (implements
// server.StreamTelemetrySource; reads only atomics, as that contract
// requires).
func (s *Server) StreamTelemetry() server.StreamTelemetry {
	return server.StreamTelemetry{
		Conns:      s.connsActive.Load(),
		FramesIn:   s.framesIn.Load(),
		FramesInV2: s.framesInV2.Load(),
		FramesOut:  s.framesOut.Load(),
	}
}

// Serve accepts connections on ln until the listener fails or the server is
// shut down (then it returns ErrServerClosed).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		sc := &srvConn{c: c, out: make(chan outFrame, s.opts.Window)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsActive.Add(1)
		go s.serveConn(sc)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown closes the listeners, stops reading new frames on every
// connection, and waits for in-flight requests to be answered and flushed.
// If ctx expires first, remaining connections are closed hard and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	defer s.m.ClearStreamTelemetrySource(s)
	defer s.m.ClearTopologyPusher(s)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close shuts the server down without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for sc := range s.conns {
		sc.c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.m.ClearStreamTelemetrySource(s)
	s.m.ClearTopologyPusher(s)
	return nil
}

type outFrame struct {
	ver     byte
	op      byte
	id      uint32
	payload []byte
	// pooled marks a payload owned by the frame buffer pool; the writer
	// returns it with PutBuf once the bytes are on the wire.
	pooled bool
	// sp is the request's observability span (nil when unsampled). The
	// writer attributes the out-queue wait plus the write syscall to its
	// write stage and finishes it once the bytes are on the wire (or the
	// connection died). enq is the enqueue instant, set only with a span.
	sp  *obs.Span
	enq time.Time
}

type srvConn struct {
	c   net.Conn
	out chan outFrame
	// draining flips when Shutdown asked this connection to stop reading;
	// the read loop then treats its (deadline-induced) read error as a
	// clean end-of-stream and lets in-flight responses flush.
	draining atomic.Bool
	// topoSub marks a connection that has fetched the topology (served an
	// OpTopology request) and therefore receives topology pushes.
	topoSub atomic.Bool
	// outMu/outClosed guard out against pushes racing the channel close:
	// handler sends are already ordered before the close by handlers.Wait,
	// but PushTopology arrives from the cluster health loop at any time.
	outMu     sync.RWMutex
	outClosed bool
}

// tryPush enqueues an unsolicited frame without blocking; it reports false
// when the connection is closing or its write window is full.
func (sc *srvConn) tryPush(fr outFrame) bool {
	sc.outMu.RLock()
	defer sc.outMu.RUnlock()
	if sc.outClosed {
		return false
	}
	select {
	case sc.out <- fr:
		return true
	default:
		return false
	}
}

// beginDrain stops the connection's read loop at the next frame boundary by
// expiring its read deadline.
func (sc *srvConn) beginDrain() {
	sc.draining.Store(true)
	_ = sc.c.SetReadDeadline(time.Unix(0, 1))
}

func (s *Server) serveConn(sc *srvConn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		s.connsActive.Add(-1)
		s.wg.Done()
	}()

	// Writer loop: serializes response frames onto the socket. Queued
	// responses are drained into one writev-style vectored write
	// (net.Buffers.WriteTo — a single writev(2) on TCP), so a burst of
	// pipelined replies coalesces into one syscall without copying payloads
	// into an intermediate buffer. After a write error it keeps draining
	// the channel (dropping frames) so handler goroutines can never block
	// on a dead connection.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		const maxCoalesce = 64
		hdrs := make([]byte, maxCoalesce*HeaderSize)
		pending := make([]outFrame, 0, maxCoalesce)
		failed := false
		for {
			fr, ok := <-sc.out
			if !ok {
				return
			}
			pending = append(pending[:0], fr)
		gather:
			for len(pending) < maxCoalesce {
				select {
				case fr2, ok2 := <-sc.out:
					if !ok2 {
						break gather // write the batch; outer recv exits next
					}
					pending = append(pending, fr2)
				default:
					break gather
				}
			}
			if !failed {
				bufs := make(net.Buffers, 0, 2*len(pending))
				for i := range pending {
					f := &pending[i]
					h := hdrs[i*HeaderSize : (i+1)*HeaderSize]
					PutHeader(h, f.ver, f.op, f.id, len(f.payload))
					bufs = append(bufs, h)
					if len(f.payload) > 0 {
						bufs = append(bufs, f.payload)
					}
				}
				if _, err := bufs.WriteTo(sc.c); err != nil {
					failed = true
				} else {
					s.framesOut.Add(int64(len(pending)))
				}
			}
			// Written or dropped, pooled payloads are done with either way;
			// spans seal here — the write stage covers out-queue wait plus
			// the syscall, and a dropped frame records as an error.
			for i := range pending {
				f := &pending[i]
				if f.sp != nil {
					if failed {
						f.sp.SetError()
					} else {
						f.sp.Mark(obs.StageWrite, time.Since(f.enq))
					}
					f.sp.Finish()
				}
				if f.pooled {
					PutBuf(f.payload)
				}
			}
		}
	}()

	// Read loop: each frame is handled on its own goroutine, bounded by the
	// in-flight window. When the window is full the loop blocks before
	// reading further — pipelining depth is capped per connection, and
	// backpressure reaches the client through TCP flow control.
	br := bufio.NewReaderSize(sc.c, 64<<10)
	sem := make(chan struct{}, s.opts.Window)
	var handlers sync.WaitGroup
	for {
		fr, readNs, err := ReadFramePooledTimed(br, s.opts.MaxPayload, s.opts.MaxVersion)
		if err != nil {
			// EOF, peer reset, protocol violation, or the drain deadline:
			// all end the read loop; in-flight work still completes below.
			break
		}
		s.framesIn.Add(1)
		if fr.Ver >= Version2 {
			s.framesInV2.Add(1)
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(fr Frame, readNs int64) {
			defer handlers.Done()
			t0 := time.Now()
			op, payload, pooled, sp := s.handle(sc, fr.Ver, fr.Op, fr.Payload)
			// The request payload is pooled and nothing retains it past
			// handle (decoders copy; the relay copies item ranges before
			// returning), so it recycles here.
			PutBuf(fr.Payload)
			s.svc.Obs().ObserveTotal(obsOpOf(fr.Op), time.Since(t0))
			sp.Mark(obs.StageRead, time.Duration(readNs))
			of := outFrame{ver: fr.Ver, op: op, id: fr.ID, payload: payload, pooled: pooled, sp: sp}
			if sp != nil {
				of.enq = time.Now()
			}
			sc.out <- of
			<-sem
		}(fr, readNs)
	}
	handlers.Wait()
	sc.outMu.Lock()
	sc.outClosed = true
	sc.outMu.Unlock()
	close(sc.out)
	<-writerDone
	sc.c.Close()
}

// obsOpOf maps an opcode (flag bits ignored) to its observability op.
func obsOpOf(op byte) obs.Op {
	switch op &^ (HopFlag | TraceFlag) {
	case OpCheckIn:
		return obs.OpCheckIn
	case OpCheckInBatch:
		return obs.OpCheckInBatch
	case OpReport:
		return obs.OpReport
	case OpReportBatch:
		return obs.OpReportBatch
	case OpRegisterJob, OpJobs, OpJobStatus:
		return obs.OpJobs
	default:
		return obs.OpOther
	}
}

// handle peels the optional trace context off a request frame, starts the
// request's observability span, and dispatches. A TraceFlag-marked frame
// (v2 only) carries a 9-byte trace prefix: when its sampled bit is set the
// span is forced with the origin's trace ID — the receiving side of a
// federation hop records the same trace the origin did, which is what lets
// a slow hop in the origin's flight recorder be joined against the remote's
// record. Unsampled requests get the regular 1-in-N sampler; hop requests
// whose origin did not sample never start a span of their own.
func (s *Server) handle(sc *srvConn, ver, op byte, payload []byte) (byte, []byte, bool, *obs.Span) {
	var trace uint64
	if op&TraceFlag != 0 {
		op &^= TraceFlag
		if ver < Version2 {
			b, p, pl := errFrame(ver, server.CodeInvalid, errors.New("transport: trace context requires protocol v2"))
			return b, p, pl, nil
		}
		id, sampled, rest, err := PeelTrace(payload)
		if err != nil {
			b, p, pl := errFrame(ver, server.CodeInvalid, err)
			return b, p, pl, nil
		}
		payload = rest
		if sampled {
			trace = id
		}
	}
	obsOp := obsOpOf(op)
	var sp *obs.Span
	if trace != 0 {
		sp = s.svc.Obs().StartTraced(obsOp, trace)
	} else if op&HopFlag == 0 {
		sp = s.svc.Obs().Sample(obsOp)
	}
	ro, rp, pooled := s.dispatch(sc, ver, op, payload, sp)
	if ro == OpError {
		sp.SetError()
	}
	return ro, rp, pooled, sp
}

// dispatch routes one request frame to the service layer and encodes the
// response. Decode errors and service errors both become OpError frames;
// only framing violations (handled in the read loop) close the connection.
//
// A hop-flagged frame was already forwarded once by a peer daemon: it is
// dispatched to the local service unconditionally — the hop guard — so a
// stale ring on a peer can never make a request ping-pong between daemons.
// Its receipt (and payload size, for forward_bytes_in) is recorded with the
// attached federation router, and the flag is echoed on the response opcode.
// The flag is only legal on the four serving opcodes; anything else is
// rejected as invalid.
//
// On a *non-hop* v2 batch request, HopFlag on the response opcode means
// something different: the router forwarded at least one item to a peer
// ("forwarded flag"). Ring-aware clients treat it as a stale-topology signal
// and re-fetch the ring. v1 responses never carry it, keeping this server
// byte-identical to a pre-v2 daemon on v1 connections.
//
// The returned bool marks a pooled response payload (the writer recycles it
// after the write).
func (s *Server) dispatch(sc *srvConn, ver, op byte, payload []byte, sp *obs.Span) (byte, []byte, bool) {
	forwarded := op&HopFlag != 0
	if forwarded {
		switch op &^ HopFlag {
		case OpCheckIn, OpCheckInBatch, OpReport, OpReportBatch:
			s.svc.NoteForwardedIn(len(payload))
		default:
			return errFrame(ver, server.CodeInvalid, errors.New("transport: hop flag on non-forwardable opcode"))
		}
	}
	// dec wraps decodeReq with the span's decode-stage mark; the clock reads
	// are span-gated, so the unsampled path pays nothing extra.
	dec := func(v wireCodec) error {
		if sp == nil {
			return decodeReq(ver, payload, v)
		}
		t0 := time.Now()
		err := decodeReq(ver, payload, v)
		sp.Mark(obs.StageDecode, time.Since(t0))
		return err
	}
	switch op &^ HopFlag {
	case OpCheckIn:
		var ci server.CheckIn
		if err := dec(&ci); err != nil {
			return svcErrFrame(ver, err)
		}
		var asg server.Assignment
		var err error
		if forwarded {
			asg, err = s.svc.CheckInLocal(ci, sp)
		} else {
			asg, err = s.svc.CheckIn(ci, sp)
		}
		if err != nil {
			return svcErrFrame(ver, err)
		}
		return respFrameSpan(ver, op, &asg, sp)
	case OpCheckInBatch:
		var req server.CheckInBatchRequest
		if forwarded {
			if err := dec(&req); err != nil {
				return svcErrFrame(ver, err)
			}
			resp, err := s.svc.CheckInBatchLocal(req, sp)
			if err != nil {
				return svcErrFrame(ver, err)
			}
			return respFrameSpan(ver, op, &resp, sp)
		}
		var raw server.RawItems
		if ver >= Version2 {
			var t0 time.Time
			if sp != nil {
				t0 = time.Now()
			}
			bounds, err := req.UnmarshalBinaryBounds(payload)
			if sp != nil {
				sp.Mark(obs.StageDecode, time.Since(t0))
			}
			if err != nil {
				return svcErrFrame(ver, err)
			}
			raw = server.RawItems{Data: payload, Bounds: bounds}
		} else if err := dec(&req); err != nil {
			return svcErrFrame(ver, err)
		}
		resp, fwd, err := s.svc.CheckInBatchRouted(req, raw, sp)
		if err != nil {
			return svcErrFrame(ver, err)
		}
		if fwd && ver >= Version2 {
			op |= HopFlag
		}
		return respFrameSpan(ver, op, &resp, sp)
	case OpReport:
		var rep server.Report
		if err := dec(&rep); err != nil {
			return svcErrFrame(ver, err)
		}
		var err error
		if forwarded {
			err = s.svc.ReportLocal(rep, sp)
		} else {
			err = s.svc.Report(rep, sp)
		}
		if err != nil {
			return svcErrFrame(ver, err)
		}
		return op | RespFlag, nil, false
	case OpReportBatch:
		var req server.ReportBatchRequest
		if forwarded {
			if err := dec(&req); err != nil {
				return svcErrFrame(ver, err)
			}
			resp, err := s.svc.ReportBatchLocal(req, sp)
			if err != nil {
				return svcErrFrame(ver, err)
			}
			return respFrameSpan(ver, op, &resp, sp)
		}
		var raw server.RawItems
		if ver >= Version2 {
			var t0 time.Time
			if sp != nil {
				t0 = time.Now()
			}
			bounds, err := req.UnmarshalBinaryBounds(payload)
			if sp != nil {
				sp.Mark(obs.StageDecode, time.Since(t0))
			}
			if err != nil {
				return svcErrFrame(ver, err)
			}
			raw = server.RawItems{Data: payload, Bounds: bounds}
		} else if err := dec(&req); err != nil {
			return svcErrFrame(ver, err)
		}
		resp, fwd, err := s.svc.ReportBatchRouted(req, raw, sp)
		if err != nil {
			return svcErrFrame(ver, err)
		}
		if fwd && ver >= Version2 {
			op |= HopFlag
		}
		return respFrameSpan(ver, op, &resp, sp)
	case OpRegisterJob:
		var spec server.JobSpec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return errFrame(ver, server.CodeInvalid, err)
		}
		st, err := s.svc.RegisterJob(spec)
		if err != nil {
			return svcErrFrame(ver, err)
		}
		return respFrame(ver, op, st)
	case OpJobs:
		return respFrame(ver, op, s.svc.Jobs())
	case OpJobStatus:
		var req JobIDRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return errFrame(ver, server.CodeInvalid, err)
		}
		st, err := s.svc.JobStatusByID(req.ID)
		if err != nil {
			return svcErrFrame(ver, err)
		}
		return respFrame(ver, op, st)
	case OpStats:
		return respFrame(ver, op, s.svc.Stats())
	case OpMetrics:
		return respFrame(ver, op, s.svc.Metrics())
	case OpPing:
		return op | RespFlag, nil, false
	case OpTopology:
		// v2-era opcode: requests must ride in v2 frames. Serving it flags
		// the connection for topology pushes.
		if ver < Version2 {
			return errFrame(ver, server.CodeInvalid, errors.New("transport: topology requires protocol v2"))
		}
		src := s.m.TopologySourceRef()
		if src == nil {
			return errFrame(ver, server.CodeUnavailable, errors.New("transport: no federation topology attached"))
		}
		info := src.Topology()
		sc.topoSub.Store(true)
		tp := TopologyPayload{Epoch: info.Epoch, VNodes: info.VNodes, Members: info.Members}
		return respFrame(ver, op, &tp)
	case OpHello:
		// Version negotiation. A server capped at v1 must be byte-for-byte
		// indistinguishable from a pre-v2 daemon, so it falls through to
		// the unknown-opcode error below — which is exactly the reply
		// clients interpret as "peer speaks v1 only".
		if s.opts.MaxVersion >= Version2 {
			var req HelloRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				return errFrame(ver, server.CodeInvalid, err)
			}
			v := min(req.MaxVersion, int(s.opts.MaxVersion))
			if v < int(Version1) {
				v = int(Version1)
			}
			return respFrame(Version1, op, HelloResponse{Version: v})
		}
		fallthrough
	default:
		return errFrame(ver, server.CodeInvalid, errors.New("transport: unknown opcode"))
	}
}

// wireCodec is implemented by the serving wire types, which carry both a
// hand-rolled JSON codec (v1) and the fixed-layout binary codec (v2).
type wireCodec interface {
	json.Unmarshaler
	encoding.BinaryUnmarshaler
}

// decodeReq decodes a serving-opcode request payload per the frame version.
func decodeReq(ver byte, payload []byte, v wireCodec) error {
	if ver >= Version2 {
		return v.UnmarshalBinary(payload)
	}
	return v.UnmarshalJSON(payload)
}

// binaryAppender is the pooled-encode fast path: types that can append their
// v2 wire form onto a caller-owned buffer, skipping the per-response
// allocation MarshalBinary would make.
type binaryAppender interface {
	AppendBinary(b []byte) ([]byte, error)
}

// respFrame encodes a success response: the binary codec when the frame is
// v2 and the type has one (into a pooled buffer when the type supports
// appending), else the hand-rolled JSON marshaler, else encoding/json.
// Non-serving opcodes keep JSON payloads in every version — they have no
// binary codec, and they are off the hot path. The returned bool marks a
// pooled payload.
func respFrame(ver, op byte, v any) (byte, []byte, bool) {
	if ver >= Version2 {
		if m, ok := v.(binaryAppender); ok {
			buf, err := m.AppendBinary(GetBuf(64))
			if err != nil {
				PutBuf(buf)
				return errFrame(ver, server.CodeInvalid, err)
			}
			return op | RespFlag, buf, true
		}
	}
	var buf []byte
	var err error
	if m, ok := v.(encoding.BinaryMarshaler); ok && ver >= Version2 {
		buf, err = m.MarshalBinary()
	} else if m, ok := v.(json.Marshaler); ok {
		buf, err = m.MarshalJSON()
	} else {
		buf, err = json.Marshal(v)
	}
	if err != nil {
		return errFrame(ver, server.CodeInvalid, err)
	}
	return op | RespFlag, buf, false
}

// respFrameSpan is respFrame with the span's encode-stage mark (clock reads
// span-gated; a nil span takes the plain path).
func respFrameSpan(ver, op byte, v any, sp *obs.Span) (byte, []byte, bool) {
	if sp == nil {
		return respFrame(ver, op, v)
	}
	t0 := time.Now()
	ro, payload, pooled := respFrame(ver, op, v)
	sp.Mark(obs.StageEncode, time.Since(t0))
	return ro, payload, pooled
}

func svcErrFrame(ver byte, err error) (byte, []byte, bool) {
	return errFrame(ver, server.ErrCode(err), err)
}

func errFrame(ver byte, code server.Code, err error) (byte, []byte, bool) {
	ep := ErrorPayload{Code: int(code), Error: err.Error()}
	if ver >= Version2 {
		buf, _ := ep.MarshalBinary()
		return OpError, buf, false
	}
	buf, mErr := json.Marshal(ep)
	if mErr != nil {
		buf = []byte(`{"code":1,"error":"transport: unencodable error"}`)
	}
	return OpError, buf, false
}
