package sim

import (
	"fmt"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
	"venn/internal/tsdb"
)

// RoundObserver is an optional hook invoked on every successful round
// completion with the devices that reported. The federated-learning emulator
// uses it to run actual model updates with the scheduled participants.
type RoundObserver func(j *job.Job, round int, participants []device.ID, now simtime.Time)

// Config describes one simulation run.
type Config struct {
	Fleet     *trace.Fleet
	Jobs      []*job.Job // arrival times set; need not be sorted
	Scheduler Scheduler
	Response  ResponseModel
	// Horizon caps the run; zero means the fleet horizon.
	Horizon simtime.Duration
	// TSDBWindow is the supply-averaging window (default 24h, §4.4).
	TSDBWindow simtime.Duration
	Seed       int64
	Observer   RoundObserver
}

// devRuntime is the engine's per-device state.
type devRuntime struct {
	dev         *device.Device
	cell        device.CellID
	online      bool
	busy        bool
	intervalEnd simtime.Time
	idleSeq     uint64 // position in the idle queue; 0 = not enqueued
}

// Engine executes one simulation run.
type Engine struct {
	cfg   Config
	cal   *calendar
	now   simtime.Time
	grid  *device.Grid
	env   *Env
	sched Scheduler
	rng   *stats.RNG

	devs map[device.ID]*devRuntime

	// idle is the FIFO queue of idle online devices (lazy deletion:
	// entries are skipped unless the runtime's idleSeq matches).
	idle    []idleEntry
	idleSeq uint64

	// attempt tracks each job's current attempt sequence number; response
	// and deadline events from older attempts are stale.
	attempt map[job.ID]uint64
	// responders collects the successful participants of the current
	// attempt per job, handed to the RoundObserver on completion.
	responders map[job.ID][]device.ID

	jobs      map[job.ID]*job.Job
	active    int // jobs arrived and not done
	completed []*job.Job

	// openDemand is the total unassigned demand over jobs currently in
	// StateScheduling. When it is zero no scheduler may legally assign
	// anything (validateAssignment would panic), so idle-queue walks stop
	// offering devices entirely instead of collecting nil answers from
	// every entry.
	openDemand int

	// Aggregate counters.
	assignments int
	responses   int
	failures    int
	aborts      int
	checkIns    int
}

type idleEntry struct {
	rt  *devRuntime
	seq uint64
}

// NewEngine validates the config and builds a ready-to-run engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Fleet == nil || len(cfg.Fleet.Devices) == 0 {
		return nil, fmt.Errorf("sim: config needs a non-empty fleet")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: config needs a scheduler")
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("sim: config needs at least one job")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = cfg.Fleet.Horizon
	}
	if cfg.TSDBWindow <= 0 {
		cfg.TSDBWindow = 24 * simtime.Hour
	}
	if cfg.Response.Median <= 0 {
		cfg.Response = DefaultResponseModel()
	}

	reqs := make([]device.Requirement, 0, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		reqs = append(reqs, j.Requirement)
	}
	grid := device.NewGrid(reqs)

	e := &Engine{
		cfg:        cfg,
		cal:        newCalendar(),
		grid:       grid,
		sched:      cfg.Scheduler,
		rng:        stats.NewRNG(cfg.Seed),
		devs:       make(map[device.ID]*devRuntime, len(cfg.Fleet.Devices)),
		attempt:    make(map[job.ID]uint64, len(cfg.Jobs)),
		responders: make(map[job.ID][]device.ID, len(cfg.Jobs)),
		jobs:       make(map[job.ID]*job.Job, len(cfg.Jobs)),
	}

	// Seed device events from the availability trace.
	for i, d := range cfg.Fleet.Devices {
		rt := &devRuntime{dev: d, cell: grid.CellOfDevice(d)}
		e.devs[d.ID] = rt
		for _, iv := range cfg.Fleet.Intervals[i] {
			if iv.Start >= simtime.Time(cfg.Horizon) {
				break
			}
			e.cal.push(&event{at: iv.Start, kind: evDeviceOnline, dev: d, intervalEnd: iv.End})
			if iv.End < simtime.Time(cfg.Horizon) {
				e.cal.push(&event{at: iv.End, kind: evDeviceOffline, dev: d})
			}
		}
	}

	// Seed job arrivals.
	for _, j := range cfg.Jobs {
		if _, dup := e.jobs[j.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate job id %d", j.ID)
		}
		e.jobs[j.ID] = j
		e.cal.push(&event{at: j.Arrival, kind: evJobArrival, job: j})
	}

	// Environment for the scheduler: cell priors from the fleet trace.
	db := tsdb.New(grid.NumCells(), cfg.TSDBWindow, simtime.Hour)
	prior := make([]float64, grid.NumCells())
	horizonHours := simtime.Duration(cfg.Horizon).Hours()
	if horizonHours <= 0 {
		horizonHours = 1
	}
	for i, d := range cfg.Fleet.Devices {
		c := grid.CellOfDevice(d)
		prior[c] += float64(len(cfg.Fleet.Intervals[i])) / horizonHours
	}
	e.env = &Env{
		Grid:          grid,
		DB:            db,
		CellPriorRate: prior,
		Jobs:          e.jobs,
		RNG:           e.rng.Fork(),
		IdlePerCell:   make([]int, grid.NumCells()),
	}
	e.env.CountIdle = func(pred func(*device.Device) bool) int {
		n := 0
		for _, ent := range e.idle {
			rt := ent.rt
			if rt.idleSeq != ent.seq || !rt.online || rt.busy {
				continue
			}
			if pred(rt.dev) {
				n++
			}
		}
		return n
	}
	e.sched.Bind(e.env)
	return e, nil
}

// Env exposes the engine's scheduler environment (useful in tests).
func (e *Engine) Env() *Env { return e.env }

// Grid returns the requirement grid of the run.
func (e *Engine) Grid() *device.Grid { return e.grid }

// Now returns the current simulation time.
func (e *Engine) Now() simtime.Time { return e.now }

// Run executes the simulation to the horizon (or event exhaustion) and
// returns the result.
func (e *Engine) Run() *Result {
	for !e.cal.empty() {
		ev := e.cal.pop()
		if ev.at > simtime.Time(e.cfg.Horizon) {
			break
		}
		e.now = ev.at
		switch ev.kind {
		case evDeviceOnline:
			e.handleOnline(ev)
		case evDeviceOffline:
			e.handleOffline(ev)
		case evJobArrival:
			e.handleArrival(ev)
		case evResponse:
			e.handleResponse(ev)
		case evDeadline:
			e.handleDeadline(ev)
		}
	}
	return e.buildResult()
}

func (e *Engine) handleOnline(ev *event) {
	rt := e.devs[ev.dev.ID]
	rt.online = true
	rt.intervalEnd = ev.intervalEnd
	// One CL task per device per day (§5.1): a device that already worked
	// today checks in but is not schedulable until tomorrow's session.
	if int(rt.dev.LastTaskDay) == e.now.DayIndex() {
		return
	}
	e.checkIns++
	e.env.DB.RecordCheckIn(rt.cell, e.now)
	e.enqueueIdle(rt)
	// Fast path: try to place just this device before a full drain.
	e.tryAssign(rt)
}

func (e *Engine) handleOffline(ev *event) {
	rt := e.devs[ev.dev.ID]
	rt.online = false
	if rt.idleSeq != 0 {
		rt.idleSeq = 0 // lazily removes it from the idle queue
		e.env.IdlePerCell[rt.cell]--
	}
}

func (e *Engine) handleArrival(ev *event) {
	j := ev.job
	j.Start(e.now)
	e.openDemand += j.RemainingDemand()
	e.active++
	e.attempt[j.ID] = 1
	e.responders[j.ID] = e.responders[j.ID][:0]
	e.sched.OnJobArrival(j, e.now)
	e.sched.OnRequest(j, e.now)
	e.drain()
}

func (e *Engine) handleResponse(ev *event) {
	rt := e.devs[ev.dev.ID]
	rt.busy = false
	// The device stays out of the pool until its next check-in (it has
	// used its task-per-day budget).
	j := ev.job
	if j.Done() || ev.attempt != e.attempt[j.ID] {
		return // stale: round completed or attempt aborted meanwhile
	}
	if ev.ok {
		e.responses++
		e.observeResponseDuration(j, ev)
		j.AddResponse(e.now)
		e.responders[j.ID] = append(e.responders[j.ID], ev.dev.ID)
		if j.CanComplete() {
			e.completeRound(j)
		}
		return
	}
	e.failures++
	j.AddFailure()
	// Early abort: if enough devices failed that the 80% target can never
	// be met by the remaining in-flight tasks, resubmit immediately
	// rather than waiting for the deadline.
	if j.State() == job.StateCollecting {
		maxPossible := j.Demand - j.AttemptFailures()
		if maxPossible < j.TargetResponses() {
			e.abortAttempt(j)
		}
	}
}

// observeResponseDuration forwards the measured task duration to the
// scheduler's profiler. The duration is reconstructed from the attempt's
// request bookkeeping on the event itself.
func (e *Engine) observeResponseDuration(j *job.Job, ev *event) {
	// ev.intervalEnd doubles as the task start time for response events.
	start := ev.intervalEnd
	if start > 0 && ev.at > start {
		e.sched.ObserveResponse(j, ev.dev, ev.at.Sub(start), e.now)
	}
}

func (e *Engine) handleDeadline(ev *event) {
	j := ev.job
	if j.Done() || ev.attempt != e.attempt[j.ID] {
		return
	}
	if j.State() != job.StateCollecting {
		return
	}
	if j.CanComplete() {
		e.completeRound(j)
		return
	}
	e.abortAttempt(j)
}

func (e *Engine) abortAttempt(j *job.Job) {
	e.aborts++
	before := j.RemainingDemand()
	j.AbortAttempt(e.now)
	e.openDemand += j.RemainingDemand() - before
	e.attempt[j.ID]++
	e.responders[j.ID] = e.responders[j.ID][:0]
	e.sched.OnRequest(j, e.now)
	e.drain()
}

func (e *Engine) completeRound(j *job.Job) {
	round := j.Round()
	if e.cfg.Observer != nil {
		parts := make([]device.ID, len(e.responders[j.ID]))
		copy(parts, e.responders[j.ID])
		e.cfg.Observer(j, round, parts, e.now)
	}
	before := j.RemainingDemand()
	done := j.CompleteRound(e.now)
	e.openDemand += j.RemainingDemand() - before
	e.attempt[j.ID]++
	e.responders[j.ID] = e.responders[j.ID][:0]
	if done {
		e.active--
		e.completed = append(e.completed, j)
		e.sched.OnJobDone(j, e.now)
	} else {
		e.sched.OnRequest(j, e.now)
	}
	e.drain()
}

// enqueueIdle appends the device to the idle FIFO.
func (e *Engine) enqueueIdle(rt *devRuntime) {
	e.idleSeq++
	rt.idleSeq = e.idleSeq
	e.idle = append(e.idle, idleEntry{rt: rt, seq: e.idleSeq})
	e.env.IdlePerCell[rt.cell]++
}

// tryAssign offers a single idle device to the scheduler.
func (e *Engine) tryAssign(rt *devRuntime) bool {
	if e.openDemand <= 0 || !rt.online || rt.busy || rt.idleSeq == 0 {
		return false
	}
	j := e.sched.Assign(rt.dev, e.now)
	if j == nil {
		return false
	}
	e.validateAssignment(rt.dev, j)
	rt.idleSeq = 0
	e.env.IdlePerCell[rt.cell]--
	e.assign(rt, j)
	return true
}

// drain repeatedly offers idle devices (in check-in order) to the scheduler
// until a full pass yields no assignment or all open demand is satisfied.
// No scheduler may legally assign with zero open demand, so once demand runs
// out mid-pass the remaining live entries are retained in bulk without
// consulting the scheduler, and dead entries are dropped wholesale.
func (e *Engine) drain() {
	if e.openDemand <= 0 {
		return
	}
	for {
		assignedAny := false
		// Compact while scanning: keep only still-valid entries.
		kept := e.idle[:0]
		for idx, ent := range e.idle {
			rt := ent.rt
			if rt.idleSeq != ent.seq || !rt.online || rt.busy {
				continue // stale entry
			}
			if e.openDemand <= 0 {
				// Bulk-skip: no more offers can succeed this pass;
				// keep the rest, filtering dead entries only.
				for _, rest := range e.idle[idx:] {
					if rest.rt.idleSeq == rest.seq && rest.rt.online && !rest.rt.busy {
						kept = append(kept, rest)
					}
				}
				break
			}
			j := e.sched.Assign(rt.dev, e.now)
			if j == nil {
				kept = append(kept, ent)
				continue
			}
			e.validateAssignment(rt.dev, j)
			rt.idleSeq = 0
			e.env.IdlePerCell[rt.cell]--
			e.assign(rt, j)
			assignedAny = true
		}
		// Zero the tail so stale pointers don't leak.
		for i := len(kept); i < len(e.idle); i++ {
			e.idle[i] = idleEntry{}
		}
		e.idle = kept
		if !assignedAny || e.openDemand <= 0 {
			return
		}
	}
}

func (e *Engine) validateAssignment(d *device.Device, j *job.Job) {
	if !j.Requirement.Eligible(d) {
		panic(fmt.Sprintf("sim: scheduler %s assigned ineligible %v to %v",
			e.sched.Name(), d, j))
	}
	if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
		panic(fmt.Sprintf("sim: scheduler %s assigned %v to %v with no open demand",
			e.sched.Name(), d, j))
	}
}

// assign commits a device to a job's open request and schedules its outcome.
func (e *Engine) assign(rt *devRuntime, j *job.Job) {
	e.assignments++
	e.openDemand--
	rt.busy = true
	rt.dev.LastTaskDay = int32(e.now.DayIndex())

	dur, ok := e.cfg.Response.Sample(e.rng, rt.dev, j)
	finish := e.now.Add(dur)
	// The device leaves when its availability window closes: tasks that
	// would outlive the window fail at the window's end.
	if finish > rt.intervalEnd {
		ok = false
		finish = rt.intervalEnd
		if finish <= e.now {
			finish = e.now.Add(simtime.Second)
		}
	}
	e.cal.push(&event{
		at:          finish,
		kind:        evResponse,
		dev:         rt.dev,
		job:         j,
		attempt:     e.attempt[j.ID],
		ok:          ok,
		intervalEnd: e.now, // repurposed: task start time for profiling
	})

	fully := j.AddAssignment(e.now)
	if fully {
		e.sched.OnRequestFulfilled(j, e.now)
		e.cal.push(&event{
			at:      e.now.Add(j.Deadline()),
			kind:    evDeadline,
			job:     j,
			attempt: e.attempt[j.ID],
		})
		if j.CanComplete() {
			e.completeRound(j)
		}
	}
}

func (e *Engine) buildResult() *Result {
	r := &Result{
		SchedulerName: e.sched.Name(),
		Horizon:       e.cfg.Horizon,
		Assignments:   e.assignments,
		Responses:     e.responses,
		Failures:      e.failures,
		Aborts:        e.aborts,
		CheckIns:      e.checkIns,
	}
	for _, j := range e.cfg.Jobs {
		if j.Done() {
			r.Completed = append(r.Completed, j)
		} else {
			r.Unfinished = append(r.Unfinished, j)
		}
	}
	r.finalize()
	return r
}
