package eval

import (
	"fmt"
	"sort"
	"strings"

	"venn/internal/device"
	"venn/internal/fl"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
)

// FLConfig sizes the federated-learning experiments.
type FLConfig struct {
	Devices        int
	Rounds         int
	DemandPerRound int
	Horizon        simtime.Duration
	Data           fl.DataConfig
	Train          fl.TrainConfig
	Seed           int64
}

// DefaultFLConfig returns the FL experiment sizing for a scale.
func DefaultFLConfig(scale Scale, seed int64) FLConfig {
	cfg := FLConfig{
		Devices:        2000,
		Rounds:         15,
		DemandPerRound: 30,
		Horizon:        16 * simtime.Day,
		Seed:           seed,
		Data: fl.DataConfig{
			Classes:          16,
			Features:         24,
			SamplesPerClient: 40,
			Alpha:            0.1, // strongly non-IID: ~1-2 labels/client
			NoiseStd:         2.0,
			Seed:             seed + 11,
		},
		Train: fl.TrainConfig{LocalEpochs: 2, LR: 0.05, Seed: seed + 13},
	}
	if scale == ScaleQuick {
		cfg.Devices = 800
		cfg.Rounds = 10
		cfg.DemandPerRound = 20
		cfg.Data.SamplesPerClient = 30
		cfg.Data.Features = 16
	}
	if scale == ScaleFull {
		cfg.Devices = 5000
		cfg.Rounds = 40
		cfg.DemandPerRound = 60
	}
	return cfg
}

// --- Figure 4: impact of resource contention on round-to-accuracy ---

// Figure4Result holds, per concurrent-job count, the average test-accuracy
// curve over rounds when the device pool is evenly partitioned per job.
type Figure4Result struct {
	JobCounts []int
	// Curves[k][r] is the average test accuracy after round r+1 with k
	// concurrent jobs.
	Curves map[int][]float64
}

// Figure4 reproduces the contention motivation experiment: the device pool
// is evenly partitioned among k jobs, so with more jobs each job sees fewer
// distinct participants per round and converges slower per round.
func Figure4(scale Scale) (*Figure4Result, error) {
	cfg := DefaultFLConfig(scale, 404)
	res := &Figure4Result{JobCounts: []int{1, 5, 10, 20}, Curves: map[int][]float64{}}
	if scale == ScaleQuick {
		res.JobCounts = []int{1, 5, 20}
	}
	for _, k := range res.JobCounts {
		curve, err := partitionedAccuracy(cfg, k)
		if err != nil {
			return nil, err
		}
		res.Curves[k] = curve
	}
	return res, nil
}

// partitionedAccuracy runs single-job simulations on 1/k fleet partitions
// and averages the per-round accuracy across (up to 3 sampled) jobs.
func partitionedAccuracy(cfg FLConfig, k int) ([]float64, error) {
	fleetCfg := trace.FleetConfig{
		NumDevices: cfg.Devices,
		Horizon:    cfg.Horizon,
		Seed:       cfg.Seed,
	}
	full := trace.GenerateFleet(fleetCfg)

	sampleJobs := k
	if sampleJobs > 3 {
		sampleJobs = 3
	}
	sum := make([]float64, cfg.Rounds)
	cnt := make([]int, cfg.Rounds)
	for p := 0; p < sampleJobs; p++ {
		sub := partitionFleet(full, k, p)
		ds := fl.GenerateDataset(withClients(cfg.Data, len(sub.Devices)))
		trainer := fl.NewTrainer(ds, cfg.Train)

		j := job.New(0, device.General, cfg.DemandPerRound, cfg.Rounds, 0)
		observer := func(jb *job.Job, round int, parts []device.ID, now simtime.Time) {
			ids := make([]int, len(parts))
			for i, id := range parts {
				ids[i] = int(id)
			}
			trainer.RunRound(ids)
		}
		eng, err := sim.NewEngine(sim.Config{
			Fleet:     sub,
			Jobs:      []*job.Job{j},
			Scheduler: newRandomBaseline(),
			Seed:      cfg.Seed + int64(p),
			Observer:  observer,
		})
		if err != nil {
			return nil, err
		}
		eng.Run()
		for r, h := range trainer.History {
			if r < cfg.Rounds {
				sum[r] += h.TestAccuracy
				cnt[r]++
			}
		}
	}
	curve := make([]float64, 0, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		if cnt[r] == 0 {
			break
		}
		curve = append(curve, sum[r]/float64(cnt[r]))
	}
	return curve, nil
}

// withClients pins the dataset's client count to the partition size so each
// device maps to a unique shard.
func withClients(d fl.DataConfig, clients int) fl.DataConfig {
	d.Clients = clients
	return d
}

// partitionFleet extracts partition p of k (round-robin by device index),
// renumbering devices densely so device IDs map onto dataset shards.
func partitionFleet(f *trace.Fleet, k, p int) *trace.Fleet {
	sub := &trace.Fleet{Horizon: f.Horizon}
	for i := range f.Devices {
		if i%k != p {
			continue
		}
		d := f.Devices[i]
		nd := device.New(device.ID(len(sub.Devices)), d.CPU, d.Mem)
		sub.Devices = append(sub.Devices, nd)
		sub.Intervals = append(sub.Intervals, f.Intervals[i])
	}
	return sub
}

// Render prints the accuracy curves.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: round-to-accuracy under even pool partitioning\n")
	b.WriteString("round")
	for _, k := range r.JobCounts {
		fmt.Fprintf(&b, "  %7s", fmt.Sprintf("%d job(s)", k))
	}
	b.WriteByte('\n')
	maxLen := 0
	for _, c := range r.Curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%5d", i+1)
		for _, k := range r.JobCounts {
			c := r.Curves[k]
			if i < len(c) {
				fmt.Fprintf(&b, "  %7.3f", c[i])
			} else {
				fmt.Fprintf(&b, "  %7s", "-")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(paper: more concurrent jobs -> slower round-to-accuracy)\n")
	return b.String()
}

// FinalAccuracy returns the last point of the curve for k jobs.
func (r *Figure4Result) FinalAccuracy(k int) float64 {
	c := r.Curves[k]
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1]
}

// --- Figure 9: accuracy over time per scheduler ---

// Figure9Result holds, per scheduler, the average-test-accuracy-vs-time
// series across jobs, plus final accuracies.
type Figure9Result struct {
	Schedulers []string
	// Times is the shared sampling grid in seconds.
	Times []float64
	// AvgAccuracy[scheduler][i] is the mean accuracy across jobs at
	// Times[i] (jobs contribute 0 before their first round).
	AvgAccuracy map[string][]float64
	// Final[scheduler] is the mean final accuracy across jobs.
	Final map[string]float64
	// TimeTo[scheduler] is when the average accuracy first reached the
	// target level (seconds; +Inf if never).
	TimeTo map[string]float64
	Target float64
}

// Figure9 reproduces the accuracy-vs-time comparison: several CL jobs train
// real (surrogate) models under each scheduler; Venn should converge sooner
// without hurting final accuracy.
func Figure9(scale Scale, numJobs int) (*Figure9Result, error) {
	cfg := DefaultFLConfig(scale, 909)
	if numJobs <= 0 {
		numJobs = 8
		if scale != ScaleQuick {
			numJobs = 20
		}
	}
	fleet := trace.GenerateFleet(trace.FleetConfig{
		NumDevices: cfg.Devices, Horizon: cfg.Horizon, Seed: cfg.Seed})
	ds := fl.GenerateDataset(withClients(cfg.Data, cfg.Devices))

	res := &Figure9Result{
		Schedulers:  []string{"FIFO", "SRSF", "Venn"},
		AvgAccuracy: map[string][]float64{},
		Final:       map[string]float64{},
		TimeTo:      map[string]float64{},
	}
	type point struct {
		t   float64
		acc float64
	}
	horizonSec := simtime.Duration(cfg.Horizon).Seconds()
	const gridN = 240
	res.Times = make([]float64, gridN)
	for i := range res.Times {
		res.Times[i] = horizonSec * float64(i+1) / gridN
	}

	for _, name := range res.Schedulers {
		factory := StandardSchedulers()[name]
		jobs := make([]*job.Job, numJobs)
		arrive := simtime.Time(0)
		arrRNG := stats.NewRNG(cfg.Seed + 77)
		cats := device.Categories()
		for i := range jobs {
			jobs[i] = job.New(job.ID(i), cats[i%len(cats)], cfg.DemandPerRound, cfg.Rounds, arrive)
			arrive = arrive.Add(simtime.Duration(arrRNG.Exp(float64(30 * simtime.Minute))))
		}
		trainers := make(map[job.ID]*fl.Trainer, numJobs)
		series := make(map[job.ID][]point, numJobs)
		for _, j := range jobs {
			trainers[j.ID] = fl.NewTrainer(ds, cfg.Train)
		}
		observer := func(jb *job.Job, round int, parts []device.ID, now simtime.Time) {
			ids := make([]int, len(parts))
			for i, id := range parts {
				ids[i] = int(id)
			}
			rr := trainers[jb.ID].RunRound(ids)
			series[jb.ID] = append(series[jb.ID], point{t: simtime.Duration(now).Seconds(), acc: rr.TestAccuracy})
		}
		fleet.Reset()
		eng, err := sim.NewEngine(sim.Config{
			Fleet:     fleet,
			Jobs:      jobs,
			Scheduler: factory(),
			Seed:      cfg.Seed + 1,
			Observer:  observer,
		})
		if err != nil {
			return nil, err
		}
		eng.Run()

		// Sample each job's step function on the shared grid.
		avg := make([]float64, gridN)
		for _, j := range jobs {
			pts := series[j.ID]
			sort.Slice(pts, func(a, b int) bool { return pts[a].t < pts[b].t })
			for i, t := range res.Times {
				acc := 0.0
				for _, p := range pts {
					if p.t <= t {
						acc = p.acc
					} else {
						break
					}
				}
				avg[i] += acc / float64(numJobs)
			}
		}
		res.AvgAccuracy[name] = avg

		finals := 0.0
		for _, tr := range trainers {
			finals += tr.FinalAccuracy()
		}
		res.Final[name] = finals / float64(numJobs)
	}

	// Time-to-target with an adaptive target every scheduler can reach:
	// 90% of the worst scheduler's final average accuracy.
	res.Target = 1.0
	for _, name := range res.Schedulers {
		if res.Final[name] < res.Target {
			res.Target = res.Final[name]
		}
	}
	res.Target *= 0.9
	for _, name := range res.Schedulers {
		res.TimeTo[name] = -1
		for i, a := range res.AvgAccuracy[name] {
			if a >= res.Target {
				res.TimeTo[name] = res.Times[i]
				break
			}
		}
	}
	return res, nil
}

// Render prints final accuracy and time-to-target per scheduler.
func (r *Figure9Result) Render() string {
	t := NewTable("Figure 9: accuracy over time per scheduler",
		"Scheduler", "Final avg accuracy", fmt.Sprintf("Time to %.0f%% avg accuracy", 100*r.Target))
	for _, name := range r.Schedulers {
		tt := "never"
		if r.TimeTo[name] >= 0 {
			tt = fmt.Sprintf("%.0fs", r.TimeTo[name])
		}
		t.AddRow(name, fmt.Sprintf("%.3f", r.Final[name]), tt)
	}
	t.Caption = "(paper: Venn converges sooner with unchanged final accuracy)"
	return t.Render()
}
