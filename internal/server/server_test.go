package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is an adjustable wall clock for deterministic manager tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestManager(clk *fakeClock) *Manager { return NewManager(Config{Clock: clk.now}) }

func TestRegisterAndCompleteJob(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	st, err := m.RegisterJob(JobSpec{Name: "kbd", Category: "General", DemandPerRound: 2, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "scheduling" || st.Round != 1 {
		t.Fatalf("status: %+v", st)
	}

	// Two devices check in and get the job.
	for i := 0; i < 2; i++ {
		clk.advance(time.Minute)
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: 0.6, Mem: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		if !asg.Assigned || asg.JobID != st.ID {
			t.Fatalf("assignment %d: %+v", i, asg)
		}
	}
	// Both report: round 1 completes (target = ceil(0.8*2) = 2).
	for i := 0; i < 2; i++ {
		clk.advance(30 * time.Second)
		if err := m.DeviceReport(Report{DeviceID: fmt.Sprintf("d%d", i), JobID: st.ID, OK: true, DurationSeconds: 45}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.JobStatusByID(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.CompletedRounds != 1 || got.Round != 2 {
		t.Fatalf("after round 1: %+v", got)
	}

	// Round 2 with two fresh devices (the first two used their daily
	// budget).
	for i := 2; i < 4; i++ {
		clk.advance(time.Minute)
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: 0.7, Mem: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if !asg.Assigned {
			t.Fatalf("round 2 assignment %d refused", i)
		}
	}
	for i := 2; i < 4; i++ {
		if err := m.DeviceReport(Report{DeviceID: fmt.Sprintf("d%d", i), JobID: st.ID, OK: true, DurationSeconds: 50}); err != nil {
			t.Fatal(err)
		}
	}
	got, err = m.JobStatusByID(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "done" || got.JCTSeconds <= 0 {
		t.Fatalf("job not done: %+v", got)
	}
	s := m.StatsSnapshot()
	if s.CompletedJobs != 1 || s.ActiveJobs != 0 || s.Assignments != 4 {
		t.Errorf("stats: %+v", s)
	}
}

func TestOneTaskPerDayLive(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 5, Rounds: 3}); err != nil {
		t.Fatal(err)
	}
	asg, err := m.DeviceCheckIn(CheckIn{DeviceID: "d0", CPU: 0.5, Mem: 0.5})
	if err != nil || !asg.Assigned {
		t.Fatalf("first check-in: %+v %v", asg, err)
	}
	// Busy device checking in again conflicts.
	if _, err := m.DeviceCheckIn(CheckIn{DeviceID: "d0", CPU: 0.5, Mem: 0.5}); err != ErrDeviceBusy {
		t.Fatalf("busy check-in error = %v", err)
	}
	// After reporting, the same day check-in yields no assignment.
	if err := m.DeviceReport(Report{DeviceID: "d0", JobID: asg.JobID, OK: true, DurationSeconds: 30}); err != nil {
		t.Fatal(err)
	}
	asg2, err := m.DeviceCheckIn(CheckIn{DeviceID: "d0", CPU: 0.5, Mem: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if asg2.Assigned {
		t.Fatal("device must not get a second task the same day")
	}
	// Next day it works again.
	clk.advance(25 * time.Hour)
	asg3, err := m.DeviceCheckIn(CheckIn{DeviceID: "d0", CPU: 0.5, Mem: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !asg3.Assigned {
		t.Fatal("device must be usable the next day")
	}
}

func TestDeadlineAbortLive(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	st, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: 0.5, Mem: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	// One response only, then the deadline passes.
	if err := m.DeviceReport(Report{DeviceID: "d0", JobID: st.ID, OK: true, DurationSeconds: 20}); err != nil {
		t.Fatal(err)
	}
	clk.advance(20 * time.Minute)
	m.Tick()
	got, _ := m.JobStatusByID(st.ID)
	if got.State != "scheduling" {
		t.Fatalf("deadline must reopen scheduling: %+v", got)
	}
	if m.StatsSnapshot().Aborts != 1 {
		t.Error("abort not counted")
	}
	// A late (stale) report from d1 must be ignored without error.
	if err := m.DeviceReport(Report{DeviceID: "d1", JobID: st.ID, OK: true, DurationSeconds: 900}); err != nil {
		t.Fatal(err)
	}
	got, _ = m.JobStatusByID(st.ID)
	if got.Responses != 0 {
		t.Error("stale report counted toward the new attempt")
	}
}

func TestFailureTriggersEarlyAbort(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	st, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 4, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: 0.5, Mem: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	// Target = ceil(0.8*4) = 4: one failure makes completion impossible.
	if err := m.DeviceReport(Report{DeviceID: "d0", JobID: st.ID, OK: false}); err != nil {
		t.Fatal(err)
	}
	got, _ := m.JobStatusByID(st.ID)
	if got.State != "scheduling" {
		t.Fatalf("early abort expected: %+v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	m := newTestManager(newFakeClock())
	if _, err := m.RegisterJob(JobSpec{Category: "Quantum", DemandPerRound: 1, Rounds: 1}); err == nil {
		t.Error("unknown category must be rejected")
	}
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 0, Rounds: 1}); err == nil {
		t.Error("zero demand must be rejected")
	}
	if _, err := m.JobStatusByID(99); err == nil {
		t.Error("unknown job must error")
	}
}

func TestEligibilityRespectedLive(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	if _, err := m.RegisterJob(JobSpec{Category: "High-Perf", DemandPerRound: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	asg, err := m.DeviceCheckIn(CheckIn{DeviceID: "weak", CPU: 0.1, Mem: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if asg.Assigned {
		t.Fatal("weak device must not serve a High-Perf job")
	}
	asg, err = m.DeviceCheckIn(CheckIn{DeviceID: "strong", CPU: 0.9, Mem: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !asg.Assigned {
		t.Fatal("strong device must be assigned")
	}
}

// --- HTTP layer ---

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	// Register a job.
	resp := postJSON(t, srv, "/v1/jobs", JobSpec{Name: "emoji", Category: "General", DemandPerRound: 1, Rounds: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Device checks in.
	resp = postJSON(t, srv, "/v1/checkin", CheckIn{DeviceID: "phone-1", CPU: 0.8, Mem: 0.8})
	var asg Assignment
	if err := json.NewDecoder(resp.Body).Decode(&asg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !asg.Assigned || asg.JobName != "emoji" {
		t.Fatalf("assignment: %+v", asg)
	}

	// Device reports; job completes.
	resp = postJSON(t, srv, "/v1/report", Report{DeviceID: "phone-1", JobID: asg.JobID, OK: true, DurationSeconds: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Job status over HTTP.
	r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(r2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got.State != "done" {
		t.Fatalf("job state = %s", got.State)
	}

	// Stats and list endpoints.
	r3, _ := http.Get(srv.URL + "/v1/stats")
	var stats Stats
	if err := json.NewDecoder(r3.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if stats.CompletedJobs != 1 {
		t.Errorf("stats: %+v", stats)
	}
	r4, _ := http.Get(srv.URL + "/v1/jobs")
	var all []JobStatus
	if err := json.NewDecoder(r4.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if len(all) != 1 {
		t.Errorf("jobs list = %v", all)
	}
}

func TestHTTPErrors(t *testing.T) {
	m := newTestManager(newFakeClock())
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	// Bad JSON.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", resp.StatusCode)
	}
	// Unknown job id.
	r2, _ := http.Get(srv.URL + "/v1/jobs/42")
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", r2.StatusCode)
	}
	// Wrong method.
	r3, _ := http.Get(srv.URL + "/v1/checkin")
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET checkin status %d", r3.StatusCode)
	}
	// Bad job id format.
	r4, _ := http.Get(srv.URL + "/v1/jobs/abc")
	r4.Body.Close()
	if r4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", r4.StatusCode)
	}
}

func TestVennPrioritizationLive(t *testing.T) {
	// The toy-example behavior through the live API: with an Emoji-style
	// scarce job and a Keyboard-style general job queued, scarce devices
	// must flow to the scarce job.
	clk := newFakeClock()
	m := newTestManager(clk)
	kbd, _ := m.RegisterJob(JobSpec{Name: "kbd", Category: "General", DemandPerRound: 3, Rounds: 1})
	emj, _ := m.RegisterJob(JobSpec{Name: "emoji", Category: "High-Perf", DemandPerRound: 2, Rounds: 1})

	// A strong device: must go to the scarce (High-Perf) job.
	asg, err := m.DeviceCheckIn(CheckIn{DeviceID: "strong-1", CPU: 0.9, Mem: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if asg.JobID != emj.ID {
		t.Errorf("strong device went to job %d, want the scarce job %d", asg.JobID, emj.ID)
	}
	// A weak device: only the keyboard job is eligible.
	asg, err = m.DeviceCheckIn(CheckIn{DeviceID: "weak-1", CPU: 0.2, Mem: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if asg.JobID != kbd.ID {
		t.Errorf("weak device went to job %d, want keyboard %d", asg.JobID, kbd.ID)
	}
}
