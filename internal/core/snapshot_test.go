package core

import (
	"sync"
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
)

// newBoundVenn wires a Venn to a standalone four-cell env (no engine).
func newBoundVenn(opts Options) (*Venn, *sim.Env) {
	v := New(opts)
	grid := device.NewGrid(device.Categories())
	env := &sim.Env{
		Grid:          grid,
		CellPriorRate: []float64{40, 20, 20, 10},
		Jobs:          map[job.ID]*job.Job{},
		RNG:           stats.NewRNG(1),
		IdlePerCell:   make([]int, grid.NumCells()),
	}
	v.Bind(env)
	return v, env
}

// plansEqual deep-compares two cell plans row by row.
func plansEqual(a, b *CellPlan) bool {
	if len(a.Order) != len(b.Order) {
		return false
	}
	for c := range a.Order {
		if len(a.Order[c]) != len(b.Order[c]) {
			return false
		}
		for i := range a.Order[c] {
			if a.Order[c][i] != b.Order[c][i] {
				return false
			}
		}
	}
	return true
}

// TestIncrementalPlanEquivalence drives an incremental and a full-rebuild
// scheduler through the same randomized lifecycle-event sequence and demands
// identical cell plans and assignment decisions after every step. This is
// the unit-level counterpart of the eval differential test: it exercises
// group add/remove (structural rebuilds), queue growth/shrink (patches), and
// no-op refreshes, with interleaved assigns forcing a replan at every stage.
func TestIncrementalPlanEquivalence(t *testing.T) {
	inc, _ := newBoundVenn(Options{Tiers: 1})
	full, _ := newBoundVenn(Options{Tiers: 1, DisableIncrementalPlan: true})

	rng := stats.NewRNG(99)
	cats := device.Categories()
	type pair struct{ a, b *job.Job } // same spec, one per scheduler
	var livePairs []pair
	nextID := 0
	now := simtime.Time(0)

	probe := []*device.Device{
		device.New(1_000_001, 0.9, 0.9),
		device.New(1_000_002, 0.2, 0.8),
		device.New(1_000_003, 0.8, 0.2),
		device.New(1_000_004, 0.1, 0.1),
	}

	step := func() {
		now = now.Add(simtime.Duration(1+rng.Intn(30)) * simtime.Second)
		for _, d := range probe {
			ja := inc.Assign(d, now)
			jb := full.Assign(d, now)
			switch {
			case ja == nil && jb == nil:
			case ja == nil || jb == nil || ja.ID != jb.ID:
				t.Fatalf("assign diverged at %v: inc=%v full=%v", now, ja, jb)
			}
		}
		if !plansEqual(inc.plan, full.plan) {
			t.Fatalf("plans diverged at %v:\ninc=%v\nfull=%v", now, inc.plan.Order, full.plan.Order)
		}
	}

	for i := 0; i < 400; i++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(livePairs) == 0: // arrive + open request
			req := cats[rng.Intn(len(cats))]
			demand := 1 + rng.Intn(50)
			rounds := 1 + rng.Intn(3)
			a := job.New(job.ID(nextID), req, demand, rounds, now)
			b := job.New(job.ID(nextID), req, demand, rounds, now)
			nextID++
			a.Start(now)
			b.Start(now)
			inc.OnJobArrival(a, now)
			full.OnJobArrival(b, now)
			inc.OnRequest(a, now)
			full.OnRequest(b, now)
			livePairs = append(livePairs, pair{a, b})
		case op < 7: // fulfil an open request
			k := rng.Intn(len(livePairs))
			p := livePairs[k]
			if p.a.State() != job.StateScheduling {
				continue
			}
			for p.a.State() == job.StateScheduling {
				p.a.AddAssignment(now)
				p.b.AddAssignment(now)
			}
			inc.OnRequestFulfilled(p.a, now)
			full.OnRequestFulfilled(p.b, now)
		default: // finish a collecting job's round (maybe the whole job)
			k := rng.Intn(len(livePairs))
			p := livePairs[k]
			if p.a.State() != job.StateCollecting {
				continue
			}
			for !p.a.CanComplete() {
				p.a.AddResponse(now)
				p.b.AddResponse(now)
			}
			doneA := p.a.CompleteRound(now)
			doneB := p.b.CompleteRound(now)
			if doneA != doneB {
				t.Fatal("job lifecycles diverged")
			}
			if doneA {
				inc.OnJobDone(p.a, now)
				full.OnJobDone(p.b, now)
				livePairs = append(livePairs[:k], livePairs[k+1:]...)
			} else {
				inc.OnRequest(p.a, now)
				full.OnRequest(p.b, now)
			}
		}
		step()
	}
	if inc.PlanPatches == 0 {
		t.Error("incremental scheduler never took the patch path")
	}
	if full.PlanPatches != 0 {
		t.Errorf("full-rebuild scheduler must never patch, got %d", full.PlanPatches)
	}
	if inc.PlanRebuilds >= full.PlanRebuilds {
		t.Errorf("incremental path saved no rebuilds: %d vs %d full", inc.PlanRebuilds, full.PlanRebuilds)
	}
	t.Logf("incremental: %d rebuilds + %d patches; full: %d rebuilds",
		inc.PlanRebuilds, inc.PlanPatches, full.PlanRebuilds)
}

// TestPlanSnapshotMatchesAssign checks the lock-free candidate probe against
// the authoritative Assign on a fresh plan: HasCandidate must be true iff
// Assign hands out a job.
func TestPlanSnapshotMatchesAssign(t *testing.T) {
	v, env := newBoundVenn(Options{Tiers: 1})
	cats := device.Categories()
	for i, c := range cats {
		j := job.New(job.ID(i), c, 5, 1, 0)
		j.Start(0)
		env.Jobs[j.ID] = j
		v.OnJobArrival(j, 0)
		v.OnRequest(j, 0)
	}
	devs := []*device.Device{
		device.New(10, 0.9, 0.9),
		device.New(11, 0.1, 0.9),
		device.New(12, 0.9, 0.1),
		device.New(13, 0.1, 0.1),
	}
	// Freshness requires a published plan: force it.
	v.Assign(devs[0], 1)
	if !v.PlanFresh() {
		t.Fatal("plan must be fresh after Assign")
	}
	snap := v.PlanSnapshot()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	if snap.OpenRequests() != len(cats) {
		t.Fatalf("snapshot sees %d open requests, want %d", snap.OpenRequests(), len(cats))
	}
	for _, d := range devs {
		got := snap.HasCandidate(d, env.Grid.CellOfDevice(d), 1)
		want := v.Assign(d, 1) != nil
		if got != want {
			t.Errorf("device %v: HasCandidate=%v, Assign=%v", d, got, want)
		}
	}
	// Out-of-range cells never match.
	if snap.HasCandidate(devs[0], device.CellID(snap.NumCells()), 1) {
		t.Error("out-of-range cell must have no candidate")
	}

	// Fulfil everything: the republished snapshot must report empty.
	now := simtime.Time(2)
	for _, j := range env.Jobs {
		for j.State() == job.StateScheduling {
			j.AddAssignment(now)
		}
		v.OnRequestFulfilled(j, now)
	}
	if v.PlanFresh() {
		t.Fatal("lifecycle events must mark the plan stale")
	}
	v.Assign(devs[0], now) // replan + republish
	if !v.PlanFresh() {
		t.Fatal("plan must be fresh again")
	}
	if snap2 := v.PlanSnapshot(); snap2.OpenRequests() != 0 {
		t.Errorf("drained scheduler still advertises %d open requests", snap2.OpenRequests())
	} else if snap2.Epoch() <= snap.Epoch() {
		t.Errorf("epoch must advance: %d -> %d", snap.Epoch(), snap2.Epoch())
	}
}

// TestPlanSnapshotConcurrentReaders hammers the published snapshot from
// hundreds of reader goroutines while the owning goroutine keeps mutating
// job state and replanning — the -race guard for the lock-free read path.
func TestPlanSnapshotConcurrentReaders(t *testing.T) {
	v, env := newBoundVenn(DefaultOptions())
	const readers = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			d := device.New(device.ID(100+r), float64(r%10)/10, float64(r%7)/7)
			cell := env.Grid.CellOfDevice(d)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v.PlanFresh() {
					if s := v.PlanSnapshot(); s != nil {
						s.HasCandidate(d, cell, 1)
						s.OpenRequests()
					}
				}
			}
		}(r)
	}

	// Writer: churn jobs through arrivals, assigns, fulfilments, and
	// completions, replanning constantly.
	rng := stats.NewRNG(7)
	cats := device.Categories()
	now := simtime.Time(0)
	for i := 0; i < 3000; i++ {
		now = now.Add(simtime.Second)
		j := job.New(job.ID(i), cats[i%len(cats)], 1+rng.Intn(3), 1, now)
		j.Start(now)
		v.OnJobArrival(j, now)
		v.OnRequest(j, now)
		d := device.New(device.ID(i%50), rng.Float64(), rng.Float64())
		if got := v.Assign(d, now); got != nil {
			got.AddAssignment(now)
		}
		for j.State() == job.StateScheduling {
			j.AddAssignment(now)
		}
		v.OnRequestFulfilled(j, now)
		for !j.CanComplete() {
			j.AddResponse(now)
		}
		if j.CompleteRound(now) {
			v.OnJobDone(j, now)
		}
		v.Assign(d, now)
	}
	close(stop)
	wg.Wait()
}
