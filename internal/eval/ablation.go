package eval

import (
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
	"venn/internal/workload"
)

// Ablations beyond the paper's figures (DESIGN.md §6): how much does the
// 24-hour supply-averaging window of §4.4 matter, and how sensitive is the
// system to the round deadline policy?

// WindowAblationResult reports Venn's speed-up over Random for different
// supply-averaging windows.
type WindowAblationResult struct {
	WindowsHours []float64
	Speedup      map[float64]float64
}

// SupplyWindowAblation sweeps the time-series-database averaging window.
// The paper argues 24h averaging makes the scheduler farsighted against the
// diurnal supply pattern; very short windows chase the momentary rate.
func SupplyWindowAblation(scale Scale, seeds int) (*WindowAblationResult, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &WindowAblationResult{
		WindowsHours: []float64{3, 12, 24, 48},
		Speedup:      map[float64]float64{},
	}
	for _, wh := range res.WindowsHours {
		window := simtime.Duration(wh * float64(simtime.Hour))
		var acc []float64
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(11000+s))
			fleet := trace.GenerateFleet(setup.Fleet)
			wl := workload.Generate(setup.Jobs)
			random, err := runWithWindow(fleet, wl, newRandomBaseline, setup.Seed+100, window)
			if err != nil {
				return nil, err
			}
			venn, err := runWithWindow(fleet, wl, func() sim.Scheduler {
				return StandardSchedulers()["Venn"]()
			}, setup.Seed+100, window)
			if err != nil {
				return nil, err
			}
			acc = append(acc, venn.SpeedupOver(random))
		}
		res.Speedup[wh] = stats.Mean(acc)
	}
	return res, nil
}

func runWithWindow(fleet *trace.Fleet, wl *workload.Workload, factory func() sim.Scheduler, seed int64, window simtime.Duration) (*sim.Result, error) {
	fleet.Reset()
	run := wl.Clone()
	eng, err := sim.NewEngine(sim.Config{
		Fleet:      fleet,
		Jobs:       run.Jobs,
		Scheduler:  factory(),
		Seed:       seed,
		TSDBWindow: window,
	})
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// Render prints the window sweep.
func (r *WindowAblationResult) Render() string {
	t := NewTable("Ablation: supply-averaging window (Venn speed-up vs Random)",
		"Window (h)", "Speedup")
	for _, wh := range r.WindowsHours {
		t.AddRow(wh, FormatSpeedup(r.Speedup[wh]))
	}
	return t.Render()
}

// WorkConservationResult compares full Venn against a variant whose cell
// plan offers devices only to the allocation-owning group.
type WorkConservationResult struct {
	WithFallback    float64 // speed-up over Random (standard Venn)
	WithoutFallback float64 // owner-only assignment
}

// TaskHeavinessAblation reports how the Venn-over-Random speed-up shifts as
// per-task duration grows relative to the round deadline (heavier models
// abort more rounds).
type TaskHeavinessAblation struct {
	TaskScales []float64
	Speedup    map[float64]float64
	AbortFrac  map[float64]float64 // aborted attempts per completed round, Venn
}

// TaskHeaviness sweeps the per-job task-duration multiplier.
func TaskHeaviness(scale Scale, seeds int) (*TaskHeavinessAblation, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &TaskHeavinessAblation{
		TaskScales: []float64{0.5, 1.5, 3.0},
		Speedup:    map[float64]float64{},
		AbortFrac:  map[float64]float64{},
	}
	for _, ts := range res.TaskScales {
		var sp, ab []float64
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(12000+s))
			setup.Jobs.TaskScaleLo = ts
			setup.Jobs.TaskScaleHi = ts + 0.01
			cmp, err := Compare(setup, pick(StandardSchedulers(), "Random", "Venn"))
			if err != nil {
				return nil, err
			}
			sp = append(sp, cmp.Speedup("Venn", "Random"))
			venn := cmp.Results["Venn"]
			rounds := 0
			for _, j := range venn.Completed {
				rounds += j.Rounds
			}
			if rounds > 0 {
				ab = append(ab, float64(venn.Aborts)/float64(rounds))
			}
		}
		res.Speedup[ts] = stats.Mean(sp)
		res.AbortFrac[ts] = stats.Mean(ab)
	}
	return res, nil
}

// Render prints the heaviness sweep.
func (r *TaskHeavinessAblation) Render() string {
	t := NewTable("Ablation: task heaviness vs deadline",
		"TaskScale", "Venn speedup", "Aborts per round")
	for _, ts := range r.TaskScales {
		t.AddRow(ts, FormatSpeedup(r.Speedup[ts]),
			FormatSpeedup(r.AbortFrac[ts]))
	}
	return t.Render()
}
