package server

// Flat-combining core commit pipeline. Every mutation of the scheduler core
// (assignments, reports, job arrivals, plan refreshes) is expressed as a
// typed coreOp. Under contention, callers push their op onto a lock-free
// MPSC queue and park on the op's done signal; one caller — the combiner —
// takes the core mutex and applies queued ops in rounds, so the per-section
// maintenance (supply drain, deadline expiry, plan republish) runs once per
// round instead of once per caller, and the mutex is acquired once per round
// instead of once per op. When there is no contention the pipeline
// degenerates to the historical behavior: the caller wins the combiner role
// on one CAS and applies its op directly under the lock, with no queue hop
// and no allocation.
//
// Combiner election uses a dedicated flag (not mu.TryLock) so that a
// non-participant holding the core mutex — Tick, StatsSnapshot,
// MetricsSnapshot — can never strand parked submitters: whichever submitter
// holds the flag blocks on mu.Lock and serves the queue as soon as the
// mutex frees. The combiner takes no shard locks, so submitters parking
// with their shard mutexes held (the serving paths always do) cannot
// deadlock it; the global lock order — shard locks ascending, then the core
// mutex — is unchanged.

import (
	"sync"
	"time"

	"venn/internal/obs"
	"venn/internal/simtime"
)

// Core commit modes (Config.CoreCommit).
const (
	coreAuto    = iota // flat combining with an uncontended direct fast path
	coreDirect         // per-caller lock acquisition (pre-combining behavior)
	coreCombine        // every op through the queue (forces the combining path; tests)
)

// parseCoreCommit maps a Config.CoreCommit string to its mode.
func parseCoreCommit(s string) (int, bool) {
	switch s {
	case "", "auto":
		return coreAuto, true
	case "direct":
		return coreDirect, true
	case "combine":
		return coreCombine, true
	}
	return 0, false
}

// CoreCommitValid reports whether s names a core commit mode ("auto",
// "direct", "combine", or empty for the default). CLIs validate their
// -core-commit flag with it before constructing a Manager, which panics on
// unknown names.
func CoreCommitValid(s string) bool { _, ok := parseCoreCommit(s); return ok }

// coreOpKind discriminates the typed core operations.
type coreOpKind uint8

const (
	opAssign coreOpKind = iota
	opAssignBatch
	opReport
	opReportBatch
	opRegister
	opRefresh
)

// assignItem is one admitted check-in of a batch op. The result is written
// through out, which points into the submitter's result slice; the submitter
// is parked (or is the combiner) until the op completes, so the pointer
// stays valid for the combiner's write.
type assignItem struct {
	md  *managedDevice
	id  string
	out *Assignment
}

// reportItem is one accepted report of a batch op.
type reportItem struct {
	r  Report
	md *managedDevice
}

// coreOp is one queued core operation. Exactly one payload group is live,
// selected by kind. Ops are pooled; wake persists across reuses.
type coreOp struct {
	qnext *coreOp // queue link; owned by the queue until the op is woken
	kind  coreOpKind

	md  *managedDevice // opAssign device / opReport device
	id  string         // opAssign device ID
	asg Assignment     // opAssign result

	assigns []assignItem // opAssignBatch payload
	rep     Report       // opReport payload
	reports []reportItem // opReportBatch payload

	spec   JobSpec   // opRegister payload
	status JobStatus // opRegister result

	// sp is the submitting request's observability span (nil when
	// unsampled); the combiner attributes the op's core apply time to it.
	sp *obs.Span

	// wake is the op's done signal. It is buffered so the combiner never
	// blocks waking a submitter; after the send the op belongs to its
	// submitter again and the combiner must not touch it.
	wake chan struct{}
}

var coreOpPool = sync.Pool{New: func() any { return &coreOp{wake: make(chan struct{}, 1)} }}

func getCoreOp(kind coreOpKind) *coreOp {
	op := coreOpPool.Get().(*coreOp)
	op.kind = kind
	return op
}

// putCoreOp returns an op to the pool, dropping payload references so pooled
// ops don't pin devices, slices, or request-backed strings.
func putCoreOp(op *coreOp) {
	op.qnext = nil
	op.md = nil
	op.id = ""
	op.asg = Assignment{}
	op.assigns = nil
	op.rep = Report{}
	op.reports = nil
	op.spec = JobSpec{}
	op.status = JobStatus{}
	op.sp = nil
	coreOpPool.Put(op)
}

// maxRoundsPerHold caps combining rounds per core-mutex hold so that under a
// saturated queue the combiner still releases the mutex periodically and
// non-participant lock users (Tick, snapshots) get through. exitCombining
// resumes combining immediately if ops remain.
const maxRoundsPerHold = 4

// pushOp adds op to the MPSC queue (a Treiber stack; the combiner reverses
// each drained batch back into arrival order).
func (m *Manager) pushOp(op *coreOp) {
	for {
		head := m.coreHead.Load()
		op.qnext = head
		if m.coreHead.CompareAndSwap(head, op) {
			return
		}
	}
}

// drainOps detaches the whole queue and reverses it into arrival order.
func (m *Manager) drainOps() *coreOp {
	head := m.coreHead.Swap(nil)
	var fifo *coreOp
	for head != nil {
		next := head.qnext
		head.qnext = fifo
		fifo = head
		head = next
	}
	return fifo
}

// submit runs one core op through the configured commit pipeline and returns
// once it has been applied. Callers hold their device shard mutexes (or none,
// for opRegister/opRefresh); the op's results are readable on return.
func (m *Manager) submit(op *coreOp) {
	if m.coreMode != coreCombine {
		if m.coreMode == coreDirect {
			// Historical per-caller acquisition, kept as a determinism
			// reference and an A/B lever (Config.CoreCommit "direct").
			m.mu.Lock()
			now := m.now()
			m.drainSupplyLocked(now)
			m.expireDueLocked(now)
			m.applyOpLocked(op, now)
			m.mu.Unlock()
			return
		}
		// Uncontended fast path: win the combiner role before queueing and
		// apply directly under the lock — no queue hop, no parking.
		if m.combining.CompareAndSwap(false, true) {
			m.combine(op)
			m.exitCombining()
			return
		}
	}
	// Contended: enqueue, then either take over as combiner or park until a
	// combiner applies the op.
	t0 := time.Now()
	m.pushOp(op)
	if m.combining.CompareAndSwap(false, true) {
		m.combine(nil)
		m.exitCombining()
		<-op.wake // applied by our combine (or, past the round cap, a successor's)
	} else {
		<-op.wake
		wait := time.Since(t0)
		m.coreWait.observe(float64(wait))
		op.sp.Mark(obs.StageQueueWait, wait)
	}
}

// combine is the combiner body: holding the combining flag, take the core
// mutex once and apply queued ops in rounds. Each round drains the whole
// queue, runs the section preamble (supply drain, deadline expiry) once,
// applies the ops in arrival order, and wakes their submitters. own — the
// fast-path caller's op, never queued — is applied first under the entry
// preamble. Before releasing the mutex the combiner republishes the plan if
// the round left it stale, so trailing check-ins keep the lock-free surplus
// path instead of re-entering the core one by one.
func (m *Manager) combine(own *coreOp) {
	m.mu.Lock()
	m.coreHeldSince.Store(time.Now().UnixNano())
	now := m.now()
	m.drainSupplyLocked(now)
	m.expireDueLocked(now)
	if own != nil {
		m.applyOpLocked(own, now)
		m.coreFastOps.Add(1)
	}
	for r := 0; r < maxRoundsPerHold; r++ {
		batch := m.drainOps()
		if batch == nil {
			break
		}
		if r > 0 || own != nil {
			now = m.now()
			m.drainSupplyLocked(now)
			m.expireDueLocked(now)
		}
		var n int64
		for op := batch; op != nil; {
			next := op.qnext
			op.qnext = nil
			m.applyOpLocked(op, now)
			op.wake <- struct{}{}
			op = next
			n++
		}
		m.coreRounds.Add(1)
		m.coreCombinedOps.Add(n)
	}
	if m.lockFreeOK && !m.venn.PlanFresh() {
		m.venn.RefreshPlan(m.now())
	}
	m.coreHeldSince.Store(0)
	m.mu.Unlock()
}

// exitCombining releases the combiner role and rescues late enqueuers: an op
// pushed after the final drain but before the flag cleared would otherwise
// park with no combiner left to serve it. The rescue is sound because a
// submitter pushes before trying its CAS, and that CAS can only fail before
// the Store below — so after the Store, either the re-check here observes
// the push, or the submitter's CAS succeeded and it combines for itself.
func (m *Manager) exitCombining() {
	for {
		m.combining.Store(false)
		if m.coreHead.Load() == nil || !m.combining.CompareAndSwap(false, true) {
			return
		}
		m.combine(nil)
	}
}

// applyOpLocked applies one core op. The caller holds the core mutex; now is
// the op's round time, shared by every op of the round.
func (m *Manager) applyOpLocked(op *coreOp, now simtime.Time) {
	// Apply timing is span-gated: at serving rates an unconditional clock
	// read per op would cost more than the whole combining win.
	var t0 time.Time
	if op.sp != nil {
		t0 = time.Now()
	}
	switch op.kind {
	case opAssign:
		op.asg = m.assignCoreLocked(op.md, op.id, now)
	case opAssignBatch:
		for i := range op.assigns {
			it := &op.assigns[i]
			*it.out = m.assignCoreLocked(it.md, it.id, now)
		}
	case opReport:
		m.reportCoreLocked(op.rep, op.md, now)
	case opReportBatch:
		for i := range op.reports {
			m.reportCoreLocked(op.reports[i].r, op.reports[i].md, now)
		}
	case opRegister:
		op.status = m.registerJobLocked(op.spec, now)
	case opRefresh:
		if m.lockFreeOK && !m.venn.PlanFresh() {
			m.venn.RefreshPlan(now)
		}
	}
	if op.sp != nil {
		op.sp.Mark(obs.StageApply, time.Since(t0))
	}
}

// submitAssign runs the core section for one admitted check-in. The caller
// holds the device's shard mutex and releases the reservation itself when no
// assignment comes back.
func (m *Manager) submitAssign(md *managedDevice, deviceID string, sp *obs.Span) Assignment {
	op := getCoreOp(opAssign)
	op.md, op.id = md, deviceID
	op.sp = sp
	m.submit(op)
	asg := op.asg
	putCoreOp(op)
	return asg
}

// submitAssignBatch runs the core section for a batch's assignment-eligible
// check-ins in one op; results land through the items' out pointers.
func (m *Manager) submitAssignBatch(items []assignItem, sp *obs.Span) {
	op := getCoreOp(opAssignBatch)
	op.assigns = items
	op.sp = sp
	m.submit(op)
	putCoreOp(op)
}

// submitReport applies one accepted report to the scheduler core.
func (m *Manager) submitReport(r Report, md *managedDevice, sp *obs.Span) {
	op := getCoreOp(opReport)
	op.rep, op.md = r, md
	op.sp = sp
	m.submit(op)
	putCoreOp(op)
}

// submitReportBatch applies a batch's accepted reports in one op.
func (m *Manager) submitReportBatch(items []reportItem, sp *obs.Span) {
	op := getCoreOp(opReportBatch)
	op.reports = items
	op.sp = sp
	m.submit(op)
	putCoreOp(op)
}

// submitRegister admits a pre-validated job spec through the pipeline.
func (m *Manager) submitRegister(spec JobSpec) JobStatus {
	op := getCoreOp(opRegister)
	op.spec = spec
	m.submit(op)
	st := op.status
	putCoreOp(op)
	return st
}

// submitRefresh pays one plan republish through the pipeline, so a batch
// that found the snapshot stale re-freshens it without a private core-mutex
// acquisition (and shares the refresh with every op of the same round).
func (m *Manager) submitRefresh() {
	op := getCoreOp(opRefresh)
	m.submit(op)
	putCoreOp(op)
}
