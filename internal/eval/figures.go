package eval

import (
	"fmt"
	"strings"
	"time"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/policy"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
	"venn/internal/workload"
)

// --- Figure 2a: diurnal device availability ---

// Figure2aResult is the fraction of the fleet online per hour.
type Figure2aResult struct {
	HourlyFraction []float64
}

// Figure2a regenerates the diurnal availability curve over 96 hours.
func Figure2a(devices int, seed int64) *Figure2aResult {
	cfg := trace.FleetConfig{NumDevices: devices, Horizon: 4 * simtime.Day, Seed: seed}
	fleet := trace.GenerateFleet(cfg)
	return &Figure2aResult{
		HourlyFraction: trace.OnlineFraction(fleet.Intervals, fleet.Horizon, simtime.Hour),
	}
}

// Render prints the curve as an hourly ASCII sparkline table.
func (r *Figure2aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2a: diurnal device availability (fraction of fleet online per hour)\n")
	for h, f := range r.HourlyFraction {
		bars := int(f * 100)
		fmt.Fprintf(&b, "h%03d %5.1f%% %s\n", h, f*100, strings.Repeat("#", bars/2))
	}
	return b.String()
}

// PeakTroughRatio returns max/min online fraction (diurnal amplitude),
// skipping the warm-up and cool-down edges of the horizon.
func (r *Figure2aResult) PeakTroughRatio() float64 {
	if len(r.HourlyFraction) < 48 {
		return 0
	}
	interior := r.HourlyFraction[12 : len(r.HourlyFraction)-12]
	lo, hi := stats.Min(interior), stats.Max(interior)
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// --- Figure 8a: device eligibility strata ---

// Figure8aResult reports the fraction of the fleet in each requirement
// stratum.
type Figure8aResult struct {
	Fractions map[string]float64
}

// Figure8a regenerates the eligibility stratification of the device trace.
func Figure8a(devices int, seed int64) *Figure8aResult {
	fleet := trace.GenerateFleet(trace.FleetConfig{
		NumDevices: devices, Horizon: simtime.Day, Seed: seed})
	counts := fleet.CategoryCounts()
	out := &Figure8aResult{Fractions: map[string]float64{}}
	for name, n := range counts {
		out.Fractions[name] = float64(n) / float64(devices)
	}
	return out
}

// Render prints the stratum shares.
func (r *Figure8aResult) Render() string {
	t := NewTable("Figure 8a: device eligibility strata", "Category", "Eligible fraction")
	for _, name := range categoriesOrdered() {
		t.AddRow(name, fmt.Sprintf("%.1f%%", 100*r.Fractions[name]))
	}
	return t.Render()
}

// --- Figure 3: toy example ---

// Figure3Result compares schedulers on the paper's toy example: one
// Keyboard job (demand 3, all devices eligible) and two Emoji jobs (demand
// 4, half the devices eligible), devices checking in at a constant rate.
type Figure3Result struct {
	// AvgJCT in check-in time units, per scheduler.
	AvgJCT map[string]float64
}

// Figure3 runs the toy example. Devices check in one per minute,
// alternating between Emoji-eligible (High-Perf stratum here) and
// General-only; response time is negligible so JCT is scheduling-bound.
// Each scheduler is averaged over several seeds (the randomized baseline's
// job order varies run to run).
func Figure3() (*Figure3Result, error) {
	res := &Figure3Result{AvgJCT: map[string]float64{}}
	const seeds = 20
	names := []string{"Random", "SRSF", "Venn"}
	factories := pick(StandardSchedulers(), names...)
	jcts := make([]float64, len(names)*seeds)
	err := parallelEach(len(jcts), func(i int) error {
		factory := factories[names[i/seeds]]
		s := i % seeds
		fleet := toyFleet()
		keyboard := job.New(0, device.General, 3, 1, 0)
		emoji1 := job.New(1, device.HighPerf, 4, 1, 0)
		emoji2 := job.New(2, device.HighPerf, 4, 1, 0)
		eng, err := sim.NewEngine(sim.Config{
			Fleet:     fleet,
			Jobs:      []*job.Job{keyboard, emoji1, emoji2},
			Scheduler: factory(),
			Response:  sim.ResponseModel{Median: simtime.Millisecond, P95: 2 * simtime.Millisecond, DisableFailures: true},
			Horizon:   2 * simtime.Hour,
			Seed:      int64(40 + s),
		})
		if err != nil {
			return err
		}
		r := eng.Run()
		jcts[i] = stats.Mean(r.JCTSeconds()) / 60 // minutes = check-in units
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res.AvgJCT[name] = stats.Mean(jcts[i*seeds : (i+1)*seeds])
	}
	return res, nil
}

// toyFleet builds 40 devices that check in one per minute, alternating
// between Emoji-eligible (high CPU and memory) and General-only.
func toyFleet() *trace.Fleet {
	horizon := 2 * simtime.Hour
	f := &trace.Fleet{Horizon: horizon}
	for i := 0; i < 40; i++ {
		var d *device.Device
		if i%2 == 0 {
			d = device.New(device.ID(i), 0.9, 0.9) // Emoji-eligible
		} else {
			d = device.New(device.ID(i), 0.2, 0.2) // General only
		}
		f.Devices = append(f.Devices, d)
		start := simtime.Time(i+1) * simtime.Time(simtime.Minute)
		f.Intervals = append(f.Intervals, []trace.Interval{{
			Start: start, End: simtime.Time(horizon),
		}})
	}
	return f
}

// Render prints per-scheduler toy JCTs.
func (r *Figure3Result) Render() string {
	t := NewTable("Figure 3: toy example average JCT (check-in time units)",
		"Scheduler", "Avg JCT")
	for _, name := range []string{"Random", "SRSF", "Venn"} {
		t.AddRow(name, fmt.Sprintf("%.1f", r.AvgJCT[name]))
	}
	t.Caption = "(paper: Random 12.0, SRSF 11.0, optimal 9.3)"
	return t.Render()
}

// --- Figure 5: JCT breakdown under random matching ---

// Figure5Result reports average scheduling delay and response time per
// attempt under random matching at two contention levels.
type Figure5Result struct {
	NumJobs       []int
	SchedDelaySec map[int]float64
	RespTimeSec   map[int]float64
}

// Figure5 reproduces the JCT breakdown (the motivation experiment): as the
// number of jobs grows, scheduling delay comes to dominate response time.
func Figure5(scale Scale) (*Figure5Result, error) {
	res := &Figure5Result{
		NumJobs:       []int{10, 20},
		SchedDelaySec: map[int]float64{},
		RespTimeSec:   map[int]float64{},
	}
	setups := make([]Setup, len(res.NumJobs))
	for i, n := range res.NumJobs {
		setups[i] = NewSetup(scale, int64(500+n))
		setups[i].Jobs.NumJobs = n
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory {
		return pick(StandardSchedulers(), "Random")
	})
	if err != nil {
		return nil, err
	}
	for i, n := range res.NumJobs {
		r := cmps[i].Results["Random"]
		res.SchedDelaySec[n] = simtime.Duration(r.AvgSchedDelay).Seconds()
		res.RespTimeSec[n] = simtime.Duration(r.AvgResponseTime).Seconds()
	}
	return res, nil
}

// Render prints the breakdown.
func (r *Figure5Result) Render() string {
	t := NewTable("Figure 5: JCT breakdown per round under random matching",
		"#Jobs", "Avg sched delay (s)", "Avg response time (s)")
	for _, n := range r.NumJobs {
		t.AddRow(n, fmt.Sprintf("%.0f", r.SchedDelaySec[n]), fmt.Sprintf("%.0f", r.RespTimeSec[n]))
	}
	t.Caption = "(paper: scheduling delay dominates and grows with contention)"
	return t.Render()
}

// --- Figure 10: scheduler overhead ---

// Figure10Result reports the wall-clock latency of one Algorithm 1
// invocation at increasing job and group counts.
type Figure10Result struct {
	JobCounts   []int
	JobLatency  []time.Duration // at fixed 20 groups
	GroupCounts []int
	GrpLatency  []time.Duration // at fixed 500 jobs
}

// Figure10 benchmarks the IRS planner exactly as the paper's overhead
// experiment: emulated job groups at scale, measuring one scheduling
// trigger.
func Figure10() *Figure10Result {
	res := &Figure10Result{
		JobCounts:   []int{100, 250, 500, 750, 1000},
		GroupCounts: []int{20, 40, 60, 80, 100},
	}
	for _, m := range res.JobCounts {
		res.JobLatency = append(res.JobLatency, planLatency(m, 20))
	}
	for _, n := range res.GroupCounts {
		res.GrpLatency = append(res.GrpLatency, planLatency(500, n))
	}
	return res
}

// planLatency times one ComputeAllocation+BuildCellPlan over synthetic
// groups. Jobs influence the planner only through queue lengths, matching
// the paper's emulated-scale methodology.
func planLatency(jobs, groups int) time.Duration {
	rng := stats.NewRNG(int64(jobs*1000 + groups))
	reqs := make([]device.Requirement, groups)
	for i := range reqs {
		reqs[i] = device.Requirement{
			MinCPU: float64(i%10) / 10,
			MinMem: float64(i/10%10) / 10,
		}
	}
	grid := device.NewGrid(reqs)
	rates := make([]float64, grid.NumCells())
	for c := range rates {
		rates[c] = rng.Uniform(1, 100)
	}
	states := make([]*core.GroupState, groups)
	for i := range states {
		states[i] = &core.GroupState{
			Region: grid.RegionOf(reqs[i]),
			Supply: rng.Uniform(10, 1000),
			Queue:  float64(jobs / groups),
		}
	}
	const iters = 20
	start := time.Now()
	for k := 0; k < iters; k++ {
		core.ComputeAllocation(states, rates)
		core.BuildCellPlan(states, grid.NumCells())
	}
	return time.Since(start) / iters
}

// Render prints the overhead table.
func (r *Figure10Result) Render() string {
	t := NewTable("Figure 10: scheduling-trigger latency",
		"#Jobs (20 groups)", "Latency", "#Groups (500 jobs)", "Latency")
	for i := range r.JobCounts {
		t.AddRow(r.JobCounts[i], r.JobLatency[i].String(),
			r.GroupCounts[i], r.GrpLatency[i].String())
	}
	t.Caption = "(paper: sub-millisecond at 1000 jobs / 100 groups)"
	return t.Render()
}

// --- Figure 11: component ablation ---

// Figure11Result reports speed-up over Random for FIFO, Venn without
// scheduling, Venn without matching, and full Venn on the Low and High
// workloads.
type Figure11Result struct {
	Workloads  []workload.Scenario
	Schedulers []string
	Speedup    map[workload.Scenario]map[string]float64
}

// AblationSchedulers returns the Figure 11 lineup.
func AblationSchedulers() map[string]SchedulerFactory {
	return map[string]SchedulerFactory{
		"Random": func() sim.Scheduler { return newRandomBaseline() },
		"FIFO":   func() sim.Scheduler { return newFIFOBaseline() },
		"Venn-w/o-sched": func() sim.Scheduler {
			return policy.MustNew("fifo", policy.Config{Core: core.DefaultOptions()})
		},
		"Venn-w/o-match": func() sim.Scheduler {
			o := core.DefaultOptions()
			o.DisableMatching = true
			return core.New(o)
		},
		"Venn": func() sim.Scheduler { return core.NewDefault() },
	}
}

// Figure11 reproduces the ablation breakdown.
func Figure11(scale Scale, seeds int) (*Figure11Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Figure11Result{
		Workloads:  []workload.Scenario{workload.Low, workload.High},
		Schedulers: []string{"FIFO", "Venn-w/o-sched", "Venn-w/o-match", "Venn"},
		Speedup:    make(map[workload.Scenario]map[string]float64),
	}
	setups := make([]Setup, 0, len(res.Workloads)*seeds)
	for _, sc := range res.Workloads {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(6000*int(sc)+s))
			setup.Jobs.Scenario = sc
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory { return AblationSchedulers() })
	if err != nil {
		return nil, err
	}
	for i, sc := range res.Workloads {
		acc := map[string][]float64{}
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			for _, name := range res.Schedulers {
				acc[name] = append(acc[name], cmp.Speedup(name, "Random"))
			}
		}
		res.Speedup[sc] = map[string]float64{}
		for _, name := range res.Schedulers {
			res.Speedup[sc][name] = stats.Mean(acc[name])
		}
	}
	return res, nil
}

// Render prints the ablation table.
func (r *Figure11Result) Render() string {
	t := NewTable("Figure 11: average JCT improvement breakdown (vs Random)",
		append([]string{"Workload"}, r.Schedulers...)...)
	for _, sc := range r.Workloads {
		row := []any{sc.String()}
		for _, name := range r.Schedulers {
			row = append(row, FormatSpeedup(r.Speedup[sc][name]))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper Low: 1.55/1.62/1.79/1.88; High: 1.42/1.42/1.63/1.63)"
	return t.Render()
}

// --- Figure 12: impact of the number of jobs ---

// Figure12Result reports speed-up over Random vs workload size.
type Figure12Result struct {
	JobCounts  []int
	Schedulers []string
	Speedup    map[int]map[string]float64
}

// Figure12 sweeps the number of jobs on the Even workload.
func Figure12(scale Scale, seeds int) (*Figure12Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Figure12Result{
		JobCounts:  []int{25, 50, 75},
		Schedulers: []string{"FIFO", "SRSF", "Venn"},
		Speedup:    make(map[int]map[string]float64),
	}
	if scale == ScaleQuick {
		res.JobCounts = []int{8, 16, 24}
	}
	setups := make([]Setup, 0, len(res.JobCounts)*seeds)
	for _, n := range res.JobCounts {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(7000+100*n+s))
			setup.Jobs.NumJobs = n
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory { return StandardSchedulers() })
	if err != nil {
		return nil, err
	}
	for i, n := range res.JobCounts {
		acc := map[string][]float64{}
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			for _, name := range res.Schedulers {
				acc[name] = append(acc[name], cmp.Speedup(name, "Random"))
			}
		}
		res.Speedup[n] = map[string]float64{}
		for _, name := range res.Schedulers {
			res.Speedup[n][name] = stats.Mean(acc[name])
		}
	}
	return res, nil
}

// Render prints the sweep.
func (r *Figure12Result) Render() string {
	t := NewTable("Figure 12: average JCT improvement vs number of jobs",
		"#Jobs", "FIFO", "SRSF", "Venn")
	for _, n := range r.JobCounts {
		row := []any{n}
		for _, name := range r.Schedulers {
			row = append(row, FormatSpeedup(r.Speedup[n][name]))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper: Venn leads at every size; gap widens with contention)"
	return t.Render()
}

// --- Figure 13: impact of the number of tiers ---

// Figure13Result reports Venn's speed-up over Random at tier counts 1-4.
type Figure13Result struct {
	Tiers   []int
	Speedup map[int]float64
}

// Figure13 sweeps the matching granularity V on the Low workload (where
// matching matters most).
func Figure13(scale Scale, seeds int) (*Figure13Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Figure13Result{Tiers: []int{1, 2, 3, 4}, Speedup: map[int]float64{}}
	setups := make([]Setup, 0, len(res.Tiers)*seeds)
	tierOf := make([]int, 0, len(res.Tiers)*seeds)
	for _, v := range res.Tiers {
		for s := 0; s < seeds; s++ {
			// Same seed across tier counts so the sweep isolates V.
			// Low contention (few small jobs on the full fleet) puts
			// the JCT into the matching-dominated regime.
			setup := NewSetup(scale, int64(8000+s))
			setup.Jobs.Scenario = workload.Low
			setup.Jobs.NumJobs = setup.Jobs.NumJobs / 3
			setup.Jobs.MaxDemand = 15
			setup.Jobs.MinRounds = 6
			setup.Jobs.MeanInterArrival = 2 * simtime.Hour
			setups = append(setups, setup)
			tierOf = append(tierOf, v)
		}
	}
	cmps, err := CompareMany(setups, func(i int) map[string]SchedulerFactory {
		tiers := tierOf[i]
		return map[string]SchedulerFactory{
			"Random": func() sim.Scheduler { return newRandomBaseline() },
			"Venn": func() sim.Scheduler {
				o := core.DefaultOptions()
				o.Tiers = tiers
				return core.New(o)
			},
		}
	})
	if err != nil {
		return nil, err
	}
	for i, v := range res.Tiers {
		var acc []float64
		for s := 0; s < seeds; s++ {
			acc = append(acc, cmps[i*seeds+s].Speedup("Venn", "Random"))
		}
		res.Speedup[v] = stats.Mean(acc)
	}
	return res, nil
}

// Render prints the sweep.
func (r *Figure13Result) Render() string {
	t := NewTable("Figure 13: Venn improvement vs number of device tiers",
		"Tiers", "Speedup")
	for _, v := range r.Tiers {
		t.AddRow(v, FormatSpeedup(r.Speedup[v]))
	}
	t.Caption = "(paper: gains grow with granularity then plateau)"
	return t.Render()
}

// --- Figure 14: fairness knob ---

// Figure14Result reports, per epsilon, Venn's speed-up over Random and the
// fraction of jobs finishing within their fair-share JCT.
type Figure14Result struct {
	Epsilons  []float64
	Speedup   map[float64]float64
	FairShare map[float64]float64 // fraction of jobs with JCT <= M*sd
}

// Figure14 sweeps the fairness knob.
func Figure14(scale Scale, seeds int) (*Figure14Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Figure14Result{
		Epsilons:  []float64{0, 1, 2, 4, 6},
		Speedup:   map[float64]float64{},
		FairShare: map[float64]float64{},
	}
	n := len(res.Epsilons) * seeds
	sp := make([]float64, n)
	fair := make([]float64, n)
	err := parallelEach(n, func(i int) error {
		epsilon := res.Epsilons[i/seeds]
		s := i % seeds
		setup := NewSetup(scale, int64(9000+int(epsilon*37)+s))
		factories := map[string]SchedulerFactory{
			"Random": func() sim.Scheduler { return newRandomBaseline() },
			"Venn": func() sim.Scheduler {
				o := core.DefaultOptions()
				o.Epsilon = epsilon
				return core.New(o)
			},
		}
		fleet := trace.GenerateFleet(setup.Fleet)
		wl := workload.Generate(setup.Jobs)
		random, err := RunOne(fleet, wl, factories["Random"], setup.Seed+100, nil)
		if err != nil {
			return err
		}
		venn, err := RunOne(fleet, wl, factories["Venn"], setup.Seed+100, nil)
		if err != nil {
			return err
		}
		sp[i] = venn.SpeedupOver(random)
		fair[i] = fairShareFraction(venn, fleet, len(wl.Jobs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, eps := range res.Epsilons {
		res.Speedup[eps] = stats.Mean(sp[i*seeds : (i+1)*seeds])
		res.FairShare[eps] = stats.Mean(fair[i*seeds : (i+1)*seeds])
	}
	return res, nil
}

// fairShareFraction computes the share of completed jobs whose JCT is within
// the fair-share bound T = M * sd, with sd the analytic no-contention JCT
// (per-round supply-limited acquisition plus tail response time).
func fairShareFraction(r *sim.Result, fleet *trace.Fleet, m int) float64 {
	if len(r.Completed) == 0 {
		return 0
	}
	// Eligible check-in rate per category from the fleet trace.
	horizonH := simtime.Duration(fleet.Horizon).Hours()
	ratePerCat := map[string]float64{}
	for _, cat := range device.Categories() {
		n := 0.0
		for i, d := range fleet.Devices {
			if cat.Eligible(d) {
				n += float64(len(fleet.Intervals[i]))
			}
		}
		ratePerCat[cat.Name] = n / horizonH
	}
	const respTailSec = 300.0
	met := 0
	for _, j := range r.Completed {
		rate := ratePerCat[j.Requirement.Name]
		if rate <= 0 {
			rate = 1
		}
		sdSec := float64(j.Rounds) * (float64(j.Demand)/rate*3600 + respTailSec)
		fair := float64(m) * sdSec
		if j.JCT().Seconds() <= fair {
			met++
		}
	}
	return float64(met) / float64(len(r.Completed))
}

// Render prints the sweep.
func (r *Figure14Result) Render() string {
	t := NewTable("Figure 14: fairness knob sweep",
		"Epsilon", "Speedup vs Random", "Jobs within fair-share JCT")
	for _, eps := range r.Epsilons {
		t.AddRow(fmt.Sprintf("%.0f", eps), FormatSpeedup(r.Speedup[eps]),
			fmt.Sprintf("%.0f%%", 100*r.FairShare[eps]))
	}
	t.Caption = "(paper: speed-up declines and fair-share attainment rises with epsilon)"
	return t.Render()
}
