package sched

import (
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
)

// bindEnv gives a baseline a minimal environment (only RNG is used).
func bindEnv(b *Baseline) {
	b.Bind(&sim.Env{RNG: stats.NewRNG(1)})
}

// openJob creates a job with an open request.
func openJob(id int, req device.Requirement, demand, rounds int, arrival simtime.Time) *job.Job {
	j := job.New(job.ID(id), req, demand, rounds, arrival)
	j.Start(arrival)
	return j
}

func TestFIFOOrdersByArrival(t *testing.T) {
	b := NewFIFO()
	bindEnv(b)
	late := openJob(1, device.General, 5, 1, 100)
	early := openJob(2, device.General, 5, 1, 50)
	b.OnRequest(late, 100)
	b.OnRequest(early, 100)
	d := device.New(0, 0.5, 0.5)
	if got := b.Assign(d, 200); got.ID != 2 {
		t.Errorf("FIFO picked job %d, want the earlier arrival (2)", got.ID)
	}
}

func TestSRSFOrdersByRemainingService(t *testing.T) {
	b := NewSRSF()
	bindEnv(b)
	big := openJob(1, device.General, 100, 10, 0)
	small := openJob(2, device.General, 5, 2, 10)
	b.OnRequest(big, 10)
	b.OnRequest(small, 10)
	d := device.New(0, 0.5, 0.5)
	if got := b.Assign(d, 20); got.ID != 2 {
		t.Errorf("SRSF picked job %d, want the small job (2)", got.ID)
	}
}

func TestRandomIsSeedDeterministicButShuffled(t *testing.T) {
	pickFirst := func(seed int64) job.ID {
		b := NewRandom()
		b.Bind(&sim.Env{RNG: stats.NewRNG(seed)})
		for i := 0; i < 8; i++ {
			b.OnRequest(openJob(i, device.General, 5, 1, 0), 0)
		}
		return b.Assign(device.New(0, 0.5, 0.5), 1).ID
	}
	if pickFirst(1) != pickFirst(1) {
		t.Error("same seed must give same random order")
	}
	varies := false
	first := pickFirst(1)
	for seed := int64(2); seed < 12; seed++ {
		if pickFirst(seed) != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("random order never varies across seeds")
	}
}

func TestEligibilityHonored(t *testing.T) {
	b := NewFIFO()
	bindEnv(b)
	hp := openJob(1, device.HighPerf, 5, 1, 0)
	gen := openJob(2, device.General, 5, 1, 1)
	b.OnRequest(hp, 1)
	b.OnRequest(gen, 1)
	weak := device.New(0, 0.2, 0.2)
	if got := b.Assign(weak, 2); got.ID != 2 {
		t.Errorf("weak device must skip the High-Perf job, got job %d", got.ID)
	}
	strong := device.New(1, 0.9, 0.9)
	if got := b.Assign(strong, 2); got.ID != 1 {
		t.Errorf("strong device should go to the earlier High-Perf job, got %d", got.ID)
	}
}

func TestQueueRemovalOnFulfilledAndDone(t *testing.T) {
	b := NewFIFO()
	bindEnv(b)
	j := openJob(1, device.General, 1, 1, 0)
	b.OnRequest(j, 0)
	if b.QueueLen() != 1 {
		t.Fatal("queued")
	}
	b.OnRequestFulfilled(j, 1)
	if b.QueueLen() != 0 {
		t.Fatal("fulfilled request must leave the queue")
	}
	b.OnRequest(j, 2)
	b.OnJobDone(j, 3)
	if b.QueueLen() != 0 {
		t.Fatal("done job must leave the queue")
	}
}

func TestAssignSkipsNonOpenJobs(t *testing.T) {
	b := NewFIFO()
	bindEnv(b)
	j := openJob(1, device.General, 1, 1, 0)
	b.OnRequest(j, 0)
	// Fill the job's demand directly; the queue entry is now stale.
	j.AddAssignment(1)
	if got := b.Assign(device.New(0, 0.5, 0.5), 2); got != nil {
		t.Errorf("assigned to a collecting job: %v", got)
	}
}

func TestReopenUpdatesPriority(t *testing.T) {
	b := NewSRSF()
	bindEnv(b)
	j := openJob(1, device.General, 10, 5, 0)
	b.OnRequest(j, 0)
	// Simulate progress: complete rounds so remaining service shrinks,
	// then re-request; the priority must reflect the new value.
	pr0 := b.queue[0].priority
	for r := 0; r < 2; r++ {
		for i := 0; i < 10; i++ {
			j.AddAssignment(simtime.Time(10 + i))
		}
		for i := 0; i < 8; i++ {
			j.AddResponse(simtime.Time(30 + i))
		}
		j.CompleteRound(simtime.Time(40 + r))
	}
	b.OnRequest(j, 50)
	if b.queue[0].priority >= pr0 {
		t.Errorf("priority must drop with remaining service: %v -> %v", pr0, b.queue[0].priority)
	}
	if b.QueueLen() != 1 {
		t.Error("re-request must not duplicate the queue entry")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyRandom.String() != "Random" || PolicyFIFO.String() != "FIFO" || PolicySRSF.String() != "SRSF" {
		t.Error("policy names wrong")
	}
	if Policy(99).String() != "Unknown" {
		t.Error("unknown policy name")
	}
}
