// Command vennbench regenerates every table and figure of the paper's
// evaluation section and prints them as text reports.
//
// Usage:
//
//	vennbench                 # all experiments at default scale
//	vennbench -scale quick    # fast pass (CI-sized)
//	vennbench -only table1,fig11 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"venn/internal/eval"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "default", "quick|default|full")
		only      = flag.String("only", "", "comma-separated subset: table1..table4,fig2a,fig3,fig4,fig5,fig8a,fig9,fig10,fig11,fig12,fig13,fig14")
		seeds     = flag.Int("seeds", 3, "seeds per configuration")
	)
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name != "" {
			want[name] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (string, error)
	}
	experiments := []experiment{
		{"fig2a", func() (string, error) {
			r := eval.Figure2a(2000, 1)
			return fmt.Sprintf("Figure 2a: diurnal availability, peak/trough ratio %.2f\n", r.PeakTroughRatio()), nil
		}},
		{"fig8a", func() (string, error) { return eval.Figure8a(5000, 1).Render(), nil }},
		{"fig3", func() (string, error) { r, err := eval.Figure3(); return render(r, err) }},
		{"fig4", func() (string, error) { r, err := eval.Figure4(scale); return render(r, err) }},
		{"fig5", func() (string, error) { r, err := eval.Figure5(scale); return render(r, err) }},
		{"table1", func() (string, error) { r, err := eval.Table1(scale, *seeds); return render(r, err) }},
		{"fig9", func() (string, error) { r, err := eval.Figure9(scale, 0); return render(r, err) }},
		{"fig10", func() (string, error) { return eval.Figure10().Render(), nil }},
		{"fig11", func() (string, error) { r, err := eval.Figure11(scale, *seeds); return render(r, err) }},
		{"table2", func() (string, error) { r, err := eval.Table2(scale, *seeds); return render(r, err) }},
		{"table3", func() (string, error) { r, err := eval.Table3(scale, *seeds); return render(r, err) }},
		{"table4", func() (string, error) { r, err := eval.Table4(scale, *seeds); return render(r, err) }},
		{"fig12", func() (string, error) { r, err := eval.Figure12(scale, *seeds); return render(r, err) }},
		{"fig13", func() (string, error) { r, err := eval.Figure13(scale, *seeds); return render(r, err) }},
		{"fig14", func() (string, error) { r, err := eval.Figure14(scale, *seeds); return render(r, err) }},
		{"ablation-window", func() (string, error) { r, err := eval.SupplyWindowAblation(scale, *seeds); return render(r, err) }},
		{"ablation-heaviness", func() (string, error) { r, err := eval.TaskHeaviness(scale, *seeds); return render(r, err) }},
	}

	var todo []experiment
	for _, ex := range experiments {
		if selected(ex.name) {
			todo = append(todo, ex)
		}
	}
	if len(todo) == 0 {
		fatal(fmt.Errorf("no experiments match -only %q", *only))
	}

	// Fan the experiments out across a bounded worker pool (each
	// underlying simulation run is deterministic via its own seed, so
	// concurrency cannot change any reported number), but print results
	// in the canonical order as they become ready.
	type outcome struct {
		out  string
		err  error
		secs float64
	}
	workers := eval.Workers()
	if workers > len(todo) {
		workers = len(todo)
	}
	fmt.Printf("vennbench: scale=%s seeds=%d workers=%d\n\n", scale, *seeds, workers)
	results := make([]chan outcome, len(todo))
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	for i, ex := range todo {
		go func() {
			release := eval.WorkerSlot()
			defer release()
			start := time.Now()
			out, err := ex.run()
			results[i] <- outcome{out: out, err: err, secs: time.Since(start).Seconds()}
		}()
	}
	for i, ex := range todo {
		res := <-results[i]
		if res.err != nil {
			fatal(fmt.Errorf("%s: %w", ex.name, res.err))
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", ex.name, res.secs, res.out)
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func parseScale(s string) (eval.Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return eval.ScaleQuick, nil
	case "default", "":
		return eval.ScaleDefault, nil
	case "full":
		return eval.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vennbench:", err)
	os.Exit(1)
}
