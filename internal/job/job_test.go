package job

import (
	"testing"
	"testing/quick"

	"venn/internal/device"
	"venn/internal/simtime"
)

func newTestJob(demand, rounds int) *Job {
	return New(1, device.General, demand, rounds, 0)
}

func TestLifecycleSingleRound(t *testing.T) {
	j := newTestJob(5, 1)
	if j.State() != StatePending {
		t.Fatal("new job must be pending")
	}
	j.Start(100)
	if j.State() != StateScheduling || j.Round() != 1 {
		t.Fatalf("after Start: %v round %d", j.State(), j.Round())
	}
	if j.RemainingDemand() != 5 {
		t.Fatalf("RemainingDemand = %d", j.RemainingDemand())
	}
	// Assign 5 devices over time.
	for i := 0; i < 4; i++ {
		if full := j.AddAssignment(simtime.Time(200 + i)); full {
			t.Fatal("not yet fully assigned")
		}
	}
	if full := j.AddAssignment(1000); !full {
		t.Fatal("5th assignment must complete scheduling")
	}
	if j.State() != StateCollecting {
		t.Fatal("must be collecting")
	}
	// Target is ceil(0.8*5) = 4.
	if j.TargetResponses() != 4 {
		t.Fatalf("TargetResponses = %d", j.TargetResponses())
	}
	for i := 0; i < 3; i++ {
		if done := j.AddResponse(simtime.Time(1100 + i)); done {
			t.Fatal("round complete too early")
		}
	}
	if done := j.AddResponse(2000); !done {
		t.Fatal("4th response must complete the round")
	}
	if !j.CanComplete() {
		t.Fatal("CanComplete must hold")
	}
	if jobDone := j.CompleteRound(2000); !jobDone {
		t.Fatal("single-round job must be done")
	}
	if !j.Done() || j.JCT() != 2000 {
		// JCT runs from arrival (t=0), not from Start.
		t.Fatalf("JCT = %v, want 2000ms", j.JCT())
	}
	rec := j.Records()
	if len(rec) != 1 || len(rec[0].Attempts) != 1 {
		t.Fatalf("records: %+v", rec)
	}
	a := rec[0].Attempts[0]
	if a.SchedulingDelay() != 900 {
		t.Errorf("sched delay = %v, want 900ms", a.SchedulingDelay())
	}
	if a.ResponseTime() != 1000 {
		t.Errorf("response time = %v, want 1000ms", a.ResponseTime())
	}
}

func TestMultiRoundProgression(t *testing.T) {
	j := newTestJob(2, 3)
	j.Start(0)
	for r := 1; r <= 3; r++ {
		if j.Round() != r {
			t.Fatalf("round = %d, want %d", j.Round(), r)
		}
		j.AddAssignment(simtime.Time(r * 100))
		j.AddAssignment(simtime.Time(r*100 + 1))
		j.AddResponse(simtime.Time(r*100 + 10))
		j.AddResponse(simtime.Time(r*100 + 20))
		done := j.CompleteRound(simtime.Time(r*100 + 20))
		if (r == 3) != done {
			t.Fatalf("round %d done=%v", r, done)
		}
	}
	if j.CompletedRounds() != 3 {
		t.Errorf("CompletedRounds = %d", j.CompletedRounds())
	}
	if j.RemainingRounds() != 0 || j.RemainingService() != 0 {
		t.Error("finished job must have no remaining service")
	}
}

func TestResponsesDuringScheduling(t *testing.T) {
	// Early-assigned devices can respond before the request is fully
	// assigned; the round must not complete until both conditions hold.
	j := newTestJob(2, 1)
	j.Start(0)
	j.AddAssignment(10)
	if done := j.AddResponse(20); done {
		t.Fatal("cannot complete while scheduling")
	}
	if full := j.AddAssignment(30); !full {
		t.Fatal("fully assigned")
	}
	// Target ceil(0.8*2)=2, so we need the second response.
	if j.CanComplete() {
		t.Fatal("one response of two must not complete")
	}
	if done := j.AddResponse(40); !done {
		t.Fatal("second response completes round")
	}
}

func TestAbortAndRetry(t *testing.T) {
	j := newTestJob(2, 1)
	j.Start(0)
	j.AddAssignment(10)
	j.AddAssignment(20)
	j.AddFailure()
	j.AbortAttempt(500)
	if j.State() != StateScheduling {
		t.Fatal("abort must reopen scheduling")
	}
	if j.RemainingDemand() != 2 {
		t.Fatal("retry needs full demand again")
	}
	if j.TotalAborts() != 1 {
		t.Fatalf("TotalAborts = %d", j.TotalAborts())
	}
	// Finish on retry.
	j.AddAssignment(600)
	j.AddAssignment(610)
	j.AddResponse(700)
	j.AddResponse(710)
	if !j.CanComplete() {
		t.Fatal("retry must be completable")
	}
	j.CompleteRound(710)
	if !j.Done() {
		t.Fatal("job must finish after retry")
	}
	rec := j.Records()[0]
	if len(rec.Attempts) != 2 || !rec.Attempts[0].Aborted || rec.Attempts[1].Aborted {
		t.Fatalf("attempt records wrong: %+v", rec.Attempts)
	}
}

func TestDeadlineInterpolation(t *testing.T) {
	small := newTestJob(1, 1)
	big := newTestJob(5000, 1)
	mid := newTestJob(500, 1)
	if d := small.Deadline(); d < MinDeadline || d > MinDeadline+simtime.Second {
		t.Errorf("tiny job deadline = %v, want ~MinDeadline", d)
	}
	if big.Deadline() != MaxDeadline {
		t.Errorf("huge job deadline = %v", big.Deadline())
	}
	d := mid.Deadline()
	if d <= MinDeadline || d >= MaxDeadline {
		t.Errorf("mid deadline %v must be interior", d)
	}
}

func TestTargetResponsesCeil(t *testing.T) {
	cases := []struct{ demand, want int }{
		{1, 1}, {2, 2}, {4, 4}, {5, 4}, {10, 8}, {100, 80}, {3, 3},
	}
	for _, c := range cases {
		j := newTestJob(c.demand, 1)
		if got := j.TargetResponses(); got != c.want {
			t.Errorf("TargetResponses(demand=%d) = %d, want %d", c.demand, got, c.want)
		}
	}
}

func TestServiceTimeAccumulates(t *testing.T) {
	j := newTestJob(1, 2)
	j.Start(0)
	j.AddAssignment(100)
	j.AddResponse(400)
	j.CompleteRound(400)
	if j.ServiceTime() != 300 {
		t.Fatalf("ServiceTime = %v, want 300ms", j.ServiceTime())
	}
	j.AddAssignment(500)
	j.AddFailure()
	j.AbortAttempt(900)
	// Aborted attempt adds its active window (500->900).
	if j.ServiceTime() != 700 {
		t.Fatalf("ServiceTime after abort = %v, want 700ms", j.ServiceTime())
	}
}

func TestMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		fn()
	}
	j := newTestJob(1, 1)
	mustPanic("AddAssignment before Start", func() { j.AddAssignment(0) })
	mustPanic("CompleteRound before Start", func() { j.CompleteRound(0) })
	j.Start(0)
	mustPanic("double Start", func() { j.Start(0) })
}

func TestConstructorClamps(t *testing.T) {
	j := New(1, device.General, 0, 0, 5)
	if j.Demand != 1 || j.Rounds != 1 {
		t.Errorf("constructor must clamp demand/rounds to 1: %d %d", j.Demand, j.Rounds)
	}
	if j.TaskScale != 1.0 {
		t.Errorf("TaskScale default = %v", j.TaskScale)
	}
}

// TestInvariantProperty drives a job through random valid event sequences
// and checks internal consistency at every step.
func TestInvariantProperty(t *testing.T) {
	f := func(script []uint8, demandRaw, roundsRaw uint8) bool {
		demand := int(demandRaw%6) + 1
		rounds := int(roundsRaw%4) + 1
		j := New(1, device.General, demand, rounds, 0)
		j.Start(0)
		now := simtime.Time(1)
		for _, op := range script {
			if j.Done() {
				break
			}
			now++
			switch op % 4 {
			case 0: // assignment if open
				if j.State() == StateScheduling {
					j.AddAssignment(now)
				}
			case 1: // response from a previously assigned device
				if j.AttemptResponses()+j.AttemptFailures() < j.AttemptAssigned() {
					j.AddResponse(now)
				}
			case 2: // failure of a previously assigned device
				if j.AttemptResponses()+j.AttemptFailures() < j.AttemptAssigned() {
					j.AddFailure()
				}
			case 3: // deadline-style abort or completion
				if j.CanComplete() {
					j.CompleteRound(now)
				} else if j.State() == StateCollecting {
					j.AbortAttempt(now)
				}
			}
			// Invariants.
			if j.AttemptResponses() > j.AttemptAssigned() {
				return false
			}
			if j.AttemptAssigned() > j.Demand {
				return false
			}
			if j.Round() < 1 || (!j.Done() && j.Round() > j.Rounds) {
				return false
			}
			if j.RemainingDemand() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAggregateMetrics(t *testing.T) {
	j := newTestJob(1, 2)
	j.Start(0)
	j.AddAssignment(100)
	j.AddResponse(200)
	j.CompleteRound(200)
	j.AddAssignment(300)
	j.AddResponse(450)
	j.CompleteRound(450)
	if j.TotalSchedulingDelay() != 200 { // 100 + 100
		t.Errorf("TotalSchedulingDelay = %v", j.TotalSchedulingDelay())
	}
	if j.TotalResponseTime() != 250 { // 100 + 150
		t.Errorf("TotalResponseTime = %v", j.TotalResponseTime())
	}
	if j.String() == "" {
		t.Error("String empty")
	}
}
