package cluster_test

import (
	"fmt"
	"testing"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/server"
)

// BenchmarkForwardPath profiles the server-side federation hop: a plain
// (ring-unaware) client batches check-ins into one daemon of a two-member
// federation over real loopback transport, so roughly half of every batch
// crosses the forward path to its owner. ReportAllocs counts allocations
// process-wide — ingress handler, forward encode, peer handler, response
// merge — which is exactly the surface the relay and the frame-buffer pools
// attack.
//
//	relay/   zero-copy raw relay with pooled buffers (the default)
//	legacy/  DisableRelay: decode → split → re-encode typed forwarding
//
// Compare allocs/op between the two to see the relay's effect; compare
// relay/ against a pre-pool checkout to see the buffer pools' effect.
func BenchmarkForwardPath(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{
		{"relay", false},
		{"legacy", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			nodes := startFederation(b, 2, func(cfg *cluster.Config) {
				cfg.DisableRelay = bc.disable
			})
			c := client.NewStream(nodes[0].addr)
			defer c.Close()

			batch := make([]server.CheckIn, 128)
			for i := range batch {
				batch[i] = server.CheckIn{DeviceID: fmt.Sprintf("bench-dev-%04d", i), CPU: 0.5, Mem: 0.5}
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.CheckInBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, out, errs, _ := nodes[0].clu.Counters()
			if out == 0 || errs != 0 {
				b.Fatalf("forward path not exercised: out=%d errs=%d", out, errs)
			}
		})
	}
}
