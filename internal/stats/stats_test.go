package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input must give 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated p50 = %v, want 5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must give 0")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(raw, p1) <= Percentile(raw, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.Count != 101 || s.Min != 0 || s.Max != 100 || s.Median != 50 {
		t.Errorf("Summary wrong: %+v", s)
	}
	if !almost(s.P95, 95, 1e-9) {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := NewRNG(1)
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.Normal(3, 2)
		o.Add(xs[i])
	}
	if !almost(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almost(o.Variance(), Variance(xs), 1e-6) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Error("online min/max mismatch")
	}
	if o.Count() != 1000 {
		t.Error("count mismatch")
	}
}

func TestOnlineMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var oa, ob, all Online
		for _, x := range a {
			oa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			ob.Add(x)
			all.Add(x)
		}
		oa.Merge(&ob)
		return oa.Count() == all.Count() &&
			almost(oa.Mean(), all.Mean(), 1e-6) &&
			almost(oa.Variance(), all.Variance(), 1e-4*(1+all.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almost(g, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("all-nonpositive GeoMean = %v, want 0", g)
	}
	if g := GeoMean([]float64{-5, 4, 9}); !almost(g, 6, 1e-9) {
		t.Errorf("GeoMean skipping nonpositive = %v, want 6", g)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Error("Min/Max/Sum broken")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max sentinels wrong")
	}
}
