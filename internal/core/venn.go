package core

import (
	"sort"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// Options configure a Venn scheduler instance.
type Options struct {
	// Tiers is V, the device-tier granularity of Algorithm 2 (default 3;
	// 1 disables tiering).
	Tiers int
	// Epsilon is the fairness knob of §4.4 (0 disables).
	Epsilon float64
	// DisableScheduling replaces the IRS job order with FIFO while
	// keeping device matching — the paper's "Venn w/o scheduling"
	// ablation (Figure 11).
	DisableScheduling bool
	// DisableMatching turns off tier-based matching — the paper's
	// "Venn w/o matching" ablation.
	DisableMatching bool
	// MinProfileSamples gates tier decisions on profile maturity.
	MinProfileSamples int
}

// DefaultOptions returns the configuration used in the end-to-end
// evaluation: 3 tiers, fairness knob off.
func DefaultOptions() Options {
	return Options{Tiers: 3, MinProfileSamples: 20}
}

// vgroup is one resource-homogeneous job group at run time.
type vgroup struct {
	req    device.Requirement
	region device.RegionSet
	// jobs holds the open requests sorted ascending by (adjusted demand,
	// job ID). The sort key is cached in adj at insertion time — a job's
	// adjusted demand only moves on its own lifecycle events (round
	// completion, abort), each of which re-opens the request through
	// OnRequest, so re-keying the one affected job keeps the whole queue
	// ordered without the former full re-sort on every plan rebuild.
	jobs []*job.Job
	// adj caches each queued job's sort key and doubles as the O(1)
	// membership index that replaced linear containment scans.
	adj   map[job.ID]float64
	state *GroupState
}

// insertJob places j into the group's demand order under sort key d.
func (g *vgroup) insertJob(j *job.Job, d float64) {
	g.adj[j.ID] = d
	i := sort.Search(len(g.jobs), func(k int) bool {
		jk := g.jobs[k]
		if dk := g.adj[jk.ID]; dk != d {
			return dk > d
		}
		return jk.ID > j.ID
	})
	g.jobs = append(g.jobs, nil)
	copy(g.jobs[i+1:], g.jobs[i:])
	g.jobs[i] = j
}

// removeJob deletes the job from the group's demand order, locating it by
// its cached sort key. The vacated tail slot is nilled so completed jobs
// (and their response histories) are released in long-horizon runs.
func (g *vgroup) removeJob(id job.ID) {
	d, ok := g.adj[id]
	if !ok {
		return
	}
	i := sort.Search(len(g.jobs), func(k int) bool {
		jk := g.jobs[k]
		if dk := g.adj[jk.ID]; dk != d {
			return dk > d
		}
		return jk.ID >= id
	})
	if i >= len(g.jobs) || g.jobs[i].ID != id {
		// The cached key went stale (cannot happen while the OnRequest
		// re-keying invariant holds); fall back to a linear scan rather
		// than corrupt the queue.
		i = 0
		for ; i < len(g.jobs); i++ {
			if g.jobs[i].ID == id {
				break
			}
		}
		if i == len(g.jobs) {
			delete(g.adj, id)
			return
		}
	}
	delete(g.adj, id)
	copy(g.jobs[i:], g.jobs[i+1:])
	g.jobs[len(g.jobs)-1] = nil
	g.jobs = g.jobs[:len(g.jobs)-1]
}

// Venn is the paper's CL resource manager. It implements sim.Scheduler.
type Venn struct {
	opts Options
	env  *sim.Env

	groups map[device.RequirementKey]*vgroup
	// fifo holds every open request sorted by (arrival, job ID) — FIFO
	// means arrival order across the job's whole lifetime, not
	// request-reopen order (a job must not lose its place between
	// rounds). inFIFO is its membership index.
	fifo      []*job.Job
	inFIFO    map[job.ID]struct{}
	filters   map[job.ID]*tierFilter
	profiles  *profiler
	sdCache   map[job.ID]simtime.Duration
	fairM     map[job.ID]int
	active    int
	lastNow   simtime.Time
	planDirty bool

	// Last computed plan.
	plan       *CellPlan
	planGroups []*vgroup

	// Reused plan-rebuild buffers.
	stateBuf []*GroupState
	rateBuf  []float64

	// cellCache memoizes the device → cell mapping by device ID (device
	// scores are immutable for a run). Entries are cell+1 so the zero
	// value means "unknown".
	cellCache []int32

	// PlanRebuilds counts Algorithm 1 invocations (observability).
	PlanRebuilds int
	// TierFiltersApplied counts requests that ran tier-restricted
	// (observability).
	TierFiltersApplied int
}

// New creates a Venn scheduler with the given options.
func New(opts Options) *Venn {
	if opts.Tiers <= 0 {
		opts.Tiers = 3
	}
	if opts.MinProfileSamples <= 0 {
		opts.MinProfileSamples = 20
	}
	return &Venn{
		opts:     opts,
		groups:   make(map[device.RequirementKey]*vgroup),
		inFIFO:   make(map[job.ID]struct{}),
		filters:  make(map[job.ID]*tierFilter),
		profiles: newProfiler(opts.MinProfileSamples),
		sdCache:  make(map[job.ID]simtime.Duration),
		fairM:    make(map[job.ID]int),
	}
}

// NewDefault creates a Venn scheduler with DefaultOptions.
func NewDefault() *Venn { return New(DefaultOptions()) }

// Name implements sim.Scheduler.
func (v *Venn) Name() string {
	switch {
	case v.opts.DisableScheduling && v.opts.DisableMatching:
		return "Venn-w/o-both"
	case v.opts.DisableScheduling:
		return "Venn-w/o-sched"
	case v.opts.DisableMatching:
		return "Venn-w/o-match"
	default:
		return "Venn"
	}
}

// Bind implements sim.Scheduler.
func (v *Venn) Bind(env *sim.Env) {
	v.env = env
	v.cellCache = v.cellCache[:0] // a new env means a new grid
}

// OnJobArrival implements sim.Scheduler.
func (v *Venn) OnJobArrival(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active++
	v.fairM[j.ID] = v.active
	v.soloJCT(j) // prime the no-contention estimate at arrival conditions
}

// OnRequest implements sim.Scheduler.
func (v *Venn) OnRequest(j *job.Job, now simtime.Time) {
	v.lastNow = now
	g := v.ensureGroup(j.Requirement)
	d := v.adjustedDemand(j)
	if old, queued := g.adj[j.ID]; !queued {
		g.insertJob(j, d)
	} else if old != d {
		g.removeJob(j.ID)
		g.insertJob(j, d)
	}
	if _, queued := v.inFIFO[j.ID]; !queued {
		v.inFIFO[j.ID] = struct{}{}
		i := sort.Search(len(v.fifo), func(k int) bool {
			jk := v.fifo[k]
			if jk.Arrival != j.Arrival {
				return jk.Arrival > j.Arrival
			}
			return jk.ID > j.ID
		})
		v.fifo = append(v.fifo, nil)
		copy(v.fifo[i+1:], v.fifo[i:])
		v.fifo[i] = j
	}
	if f := v.decideTier(j, now); f != nil {
		v.filters[j.ID] = f
		v.TierFiltersApplied++
	} else {
		delete(v.filters, j.ID)
	}
	v.planDirty = true
}

// OnRequestFulfilled implements sim.Scheduler.
func (v *Venn) OnRequestFulfilled(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.removeOpen(j)
	v.planDirty = true
}

// OnJobDone implements sim.Scheduler.
func (v *Venn) OnJobDone(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active--
	v.removeOpen(j)
	v.profiles.drop(j.ID)
	delete(v.sdCache, j.ID)
	delete(v.fairM, j.ID)
	delete(v.filters, j.ID)
	v.planDirty = true
}

// ObserveResponse implements sim.Scheduler.
func (v *Venn) ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time) {
	v.profiles.observe(j.ID, d.Capability(), dur.Seconds())
}

// Assign implements sim.Scheduler. The per-device walk consults the cell
// plan's group order for the device's cell and hands out the first
// schedulable job, honoring tier filters (devices outside a job's tier flow
// to the next job in the order).
func (v *Venn) Assign(d *device.Device, now simtime.Time) *job.Job {
	v.lastNow = now
	if v.opts.DisableScheduling {
		return v.assignFIFO(d)
	}
	v.ensurePlan(now)
	cell := v.cellOf(d)
	if int(cell) >= len(v.plan.Order) {
		return nil
	}
	checkFilters := len(v.filters) > 0
	for _, gi := range v.plan.Order[cell] {
		for _, j := range v.planGroups[gi].jobs {
			if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
				continue
			}
			if !j.Requirement.Eligible(d) {
				continue
			}
			if checkFilters {
				if f := v.filters[j.ID]; f != nil && now < f.lapseAt && !f.accepts(d) {
					continue
				}
			}
			return j
		}
	}
	return nil
}

// cellOf memoizes Grid.CellOfDevice by device ID: two binary searches per
// assignment add up over millions of check-ins, and a device never changes
// cells within a run.
func (v *Venn) cellOf(d *device.Device) device.CellID {
	id := int(d.ID)
	if id < 0 {
		return v.env.Grid.CellOfDevice(d)
	}
	if id >= len(v.cellCache) {
		grown := make([]int32, id+1+1024)
		copy(grown, v.cellCache)
		v.cellCache = grown
	}
	if c := v.cellCache[id]; c > 0 {
		return device.CellID(c - 1)
	}
	c := v.env.Grid.CellOfDevice(d)
	v.cellCache[id] = int32(c) + 1
	return c
}

// assignFIFO is the Venn-w/o-scheduling ablation: FIFO request order with
// tier-based matching still in force.
func (v *Venn) assignFIFO(d *device.Device) *job.Job {
	checkFilters := len(v.filters) > 0
	for _, j := range v.fifo {
		if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
			continue
		}
		if !j.Requirement.Eligible(d) {
			continue
		}
		if checkFilters {
			if f := v.filters[j.ID]; f != nil && v.lastNow < f.lapseAt && !f.accepts(d) {
				continue
			}
		}
		return j
	}
	return nil
}

// ensurePlan lazily recomputes the IRS allocation and cell plan.
func (v *Venn) ensurePlan(now simtime.Time) {
	if !v.planDirty && v.plan != nil {
		return
	}
	v.planDirty = false
	v.PlanRebuilds++

	// Collect groups with open requests and refresh their state. Each
	// group's queue is already ordered by fairness-adjusted remaining
	// demand, smallest first (Algorithm 1 line 3) — the order is
	// maintained incrementally at request open/close, so the rebuild only
	// refreshes supply and queue pressure.
	v.planGroups = v.planGroups[:0]
	for _, g := range v.groups {
		if len(g.jobs) == 0 {
			continue
		}
		if g.state == nil {
			g.state = &GroupState{Region: g.region}
		}
		g.state.Supply = v.env.RegionRatePerHour(g.region, now)
		g.state.Queue = v.adjustedQueue(g.jobs)
		v.planGroups = append(v.planGroups, g)
	}
	// Deterministic planning order regardless of map iteration.
	sort.SliceStable(v.planGroups, func(a, b int) bool {
		ka, kb := v.planGroups[a].req.Key(), v.planGroups[b].req.Key()
		if ka.MinCPU != kb.MinCPU {
			return ka.MinCPU < kb.MinCPU
		}
		return ka.MinMem < kb.MinMem
	})

	states := v.stateBuf[:0]
	for _, g := range v.planGroups {
		states = append(states, g.state)
	}
	v.stateBuf = states
	numCells := v.env.Grid.NumCells()
	if cap(v.rateBuf) < numCells {
		v.rateBuf = make([]float64, numCells)
	}
	rates := v.rateBuf[:numCells]
	useDB := v.env.DB != nil && v.env.DB.HasHistory(now, 6)
	for c := range rates {
		rates[c] = v.env.CellRatePerHour(device.CellID(c), now, useDB)
	}
	ComputeAllocation(states, rates)
	v.plan = BuildCellPlan(states, numCells)
}

func (v *Venn) ensureGroup(req device.Requirement) *vgroup {
	key := req.Key()
	if g, ok := v.groups[key]; ok {
		return g
	}
	g := &vgroup{
		req:    req,
		region: v.env.Grid.RegionOf(req),
		adj:    make(map[job.ID]float64),
	}
	v.groups[key] = g
	return g
}

func (v *Venn) removeOpen(j *job.Job) {
	if g, ok := v.groups[j.Requirement.Key()]; ok {
		g.removeJob(j.ID)
	}
	if _, ok := v.inFIFO[j.ID]; !ok {
		return
	}
	delete(v.inFIFO, j.ID)
	i := sort.Search(len(v.fifo), func(k int) bool {
		jk := v.fifo[k]
		if jk.Arrival != j.Arrival {
			return jk.Arrival > j.Arrival
		}
		return jk.ID >= j.ID
	})
	if i >= len(v.fifo) || v.fifo[i].ID != j.ID {
		i = 0
		for ; i < len(v.fifo); i++ {
			if v.fifo[i].ID == j.ID {
				break
			}
		}
		if i == len(v.fifo) {
			return
		}
	}
	copy(v.fifo[i:], v.fifo[i+1:])
	v.fifo[len(v.fifo)-1] = nil
	v.fifo = v.fifo[:len(v.fifo)-1]
}
