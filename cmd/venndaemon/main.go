// Command venndaemon runs Venn as a live HTTP resource manager (the
// standalone service of the paper's Figure 6). CL jobs register resource
// requests, devices check in as they become available, and the daemon
// assigns each device to a job using the IRS scheduling and tier-based
// matching algorithms.
//
// Usage:
//
//	venndaemon -addr :8080 -tiers 3 -epsilon 0
//
// API:
//
//	POST /v1/jobs           {"name":"kbd","category":"General","demand_per_round":100,"rounds":50}
//	POST /v1/checkin        {"device_id":"phone-1","cpu":0.8,"mem":0.7}
//	POST /v1/checkin/batch  {"checkins":[...]}
//	POST /v1/report         {"device_id":"phone-1","job_id":0,"ok":true,"duration_seconds":42}
//	POST /v1/report/batch   {"reports":[...]}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/stats, /v1/metrics
//
// Profiling: -pprof serves net/http/pprof on a side listener and
// -cpuprofile records a CPU profile until the daemon receives SIGINT or
// SIGTERM, so perf work can attribute serving-path time without ad-hoc
// patches.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"venn/internal/core"
	"venn/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		tiers     = flag.Int("tiers", 3, "device-tier granularity V")
		epsilon   = flag.Float64("epsilon", 0, "fairness knob")
		shards    = flag.Int("shards", 0, "device-state lock shards (0 = default)")
		deviceTTL = flag.Duration("device-ttl", 24*time.Hour, "evict devices not seen for this long (0 disables)")
		pprofSrv  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile here until SIGINT/SIGTERM")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "venndaemon: pprof server:", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "venndaemon: CPU profile written to", *cpuProf)
			os.Exit(0)
		}()
	}

	opts := core.DefaultOptions()
	opts.Tiers = *tiers
	opts.Epsilon = *epsilon
	m := server.NewManager(server.Config{Options: opts, Shards: *shards, DeviceTTL: *deviceTTL})
	fmt.Printf("venndaemon listening on %s (tiers=%d epsilon=%.1f shards=%d device-ttl=%v)\n",
		*addr, *tiers, *epsilon, m.MetricsSnapshot().Shards, *deviceTTL)
	if err := server.Serve(*addr, m); err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon:", err)
		os.Exit(1)
	}
}
