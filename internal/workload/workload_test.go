package workload

import (
	"testing"

	"venn/internal/device"
	"venn/internal/simtime"
)

func TestGenerateBasics(t *testing.T) {
	wl := Generate(Config{NumJobs: 30, Seed: 1})
	if len(wl.Jobs) != 30 {
		t.Fatalf("got %d jobs", len(wl.Jobs))
	}
	seen := map[int]bool{}
	var last simtime.Time = -1
	for _, j := range wl.Jobs {
		if seen[int(j.ID)] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[int(j.ID)] = true
		if j.Arrival < last {
			t.Fatal("arrivals must be non-decreasing")
		}
		last = j.Arrival
		if j.Demand < 5 || j.Demand > 300 {
			t.Errorf("demand %d outside default clamps", j.Demand)
		}
		if j.Rounds < 2 || j.Rounds > 40 {
			t.Errorf("rounds %d outside default clamps", j.Rounds)
		}
		if j.TaskScale < 0.6 || j.TaskScale > 1.6 {
			t.Errorf("TaskScale %v outside defaults", j.TaskScale)
		}
		if device.CategoryIndex(j.Requirement) < 0 {
			t.Errorf("job mapped to non-standard requirement %v", j.Requirement)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{NumJobs: 20, Seed: 5})
	b := Generate(Config{NumJobs: 20, Seed: 5})
	for i := range a.Jobs {
		if a.Jobs[i].Demand != b.Jobs[i].Demand ||
			a.Jobs[i].Rounds != b.Jobs[i].Rounds ||
			a.Jobs[i].Arrival != b.Jobs[i].Arrival ||
			a.Jobs[i].Requirement.Name != b.Jobs[i].Requirement.Name {
			t.Fatal("same seed must reproduce the workload")
		}
	}
	c := Generate(Config{NumJobs: 20, Seed: 6})
	diff := false
	for i := range a.Jobs {
		if a.Jobs[i].Demand != c.Jobs[i].Demand || a.Jobs[i].Arrival != c.Jobs[i].Arrival {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestScenarioSplitsBehave(t *testing.T) {
	small := Generate(Config{Scenario: Small, NumJobs: 200, Seed: 2})
	large := Generate(Config{Scenario: Large, NumJobs: 200, Seed: 2})
	avgTotal := func(w *Workload) float64 {
		s := 0.0
		for _, j := range w.Jobs {
			s += float64(j.TotalDemand())
		}
		return s / float64(len(w.Jobs))
	}
	if avgTotal(small) >= avgTotal(large) {
		t.Errorf("Small avg total %v must be below Large %v", avgTotal(small), avgTotal(large))
	}
	low := Generate(Config{Scenario: Low, NumJobs: 200, Seed: 2})
	high := Generate(Config{Scenario: High, NumJobs: 200, Seed: 2})
	avgDemand := func(w *Workload) float64 {
		s := 0.0
		for _, j := range w.Jobs {
			s += float64(j.Demand)
		}
		return s / float64(len(w.Jobs))
	}
	if avgDemand(low) >= avgDemand(high) {
		t.Errorf("Low avg demand %v must be below High %v", avgDemand(low), avgDemand(high))
	}
}

func TestBiasSkewsCategories(t *testing.T) {
	wl := Generate(Config{Bias: BiasCompute, NumJobs: 400, Seed: 3})
	counts := map[string]int{}
	for _, j := range wl.Jobs {
		counts[j.Requirement.Name]++
	}
	if frac := float64(counts["Compute-Rich"]) / 400; frac < 0.4 || frac > 0.6 {
		t.Errorf("Compute-Rich fraction %.2f, want ~0.5", frac)
	}
	for _, other := range []string{"General", "Memory-Rich", "High-Perf"} {
		if frac := float64(counts[other]) / 400; frac < 0.08 || frac > 0.28 {
			t.Errorf("%s fraction %.2f, want ~1/6", other, frac)
		}
	}
}

func TestFixedOverrides(t *testing.T) {
	req := device.MemoryRich
	wl := Generate(Config{NumJobs: 10, Seed: 4, FixedReq: &req, FixedDemand: 42, FixedRounds: 7})
	for _, j := range wl.Jobs {
		if j.Requirement.Name != "Memory-Rich" || j.Demand != 42 || j.Rounds != 7 {
			t.Fatalf("fixed overrides ignored: %v", j)
		}
	}
}

func TestCloneIsDeepForJobState(t *testing.T) {
	wl := Generate(Config{NumJobs: 5, Seed: 5})
	cl := wl.Clone()
	cl.Jobs[0].Start(cl.Jobs[0].Arrival)
	if wl.Jobs[0].State() == cl.Jobs[0].State() {
		t.Error("Clone must not share job state")
	}
	if wl.TotalDemand() != cl.TotalDemand() {
		t.Error("Clone must preserve demands")
	}
}

func TestMeanInterArrival(t *testing.T) {
	wl := Generate(Config{NumJobs: 2000, Seed: 6, MeanInterArrival: 10 * simtime.Minute})
	span := wl.Jobs[len(wl.Jobs)-1].Arrival.Sub(wl.Jobs[0].Arrival)
	mean := span.Minutes() / float64(len(wl.Jobs)-1)
	if mean < 8 || mean > 12 {
		t.Errorf("mean inter-arrival %.1f min, want ~10", mean)
	}
}

func TestScenarioAndBiasStrings(t *testing.T) {
	if Even.String() != "Even" || High.String() != "High" {
		t.Error("scenario strings")
	}
	if BiasResource.String() != "Resource-heavy" || NoBias.String() != "Unbiased" {
		t.Error("bias strings")
	}
	if len(Scenarios()) != 5 {
		t.Error("Scenarios size")
	}
}

func TestScaleClamp(t *testing.T) {
	if scaleClamp(4000, 0.01, 2, 40) != 40 {
		t.Error("upper clamp")
	}
	if scaleClamp(10, 0.01, 2, 40) != 2 {
		t.Error("lower clamp")
	}
	if scaleClamp(1000, 0.01, 2, 40) != 10 {
		t.Error("proportional scaling")
	}
}
