package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"venn/internal/job"
	"venn/internal/obs"
	"venn/internal/stats"
)

// Metrics is the GET /v1/metrics payload: serving throughput, queue depths,
// and handler latency percentiles. Rates are averaged over the trailing
// rateWindowSeconds full seconds; latency percentiles are computed over a
// sliding window of the most recent latencyWindow requests per route.
type Metrics struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	Shards            int     `json:"shards"`
	CheckIns          int64   `json:"checkins_total"`
	Assignments       int64   `json:"assignments_total"`
	Reports           int64   `json:"reports_total"`
	CheckInsPerSec    float64 `json:"checkins_per_sec"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
	ReportsPerSec     float64 `json:"reports_per_sec"`

	ActiveJobs     int   `json:"active_jobs"`
	SchedulingJobs int   `json:"scheduling_jobs"` // queue depth: jobs with an open request
	CollectingJobs int   `json:"collecting_jobs"`
	KnownDevices   int64 `json:"known_devices"`
	BusyDevices    int64 `json:"busy_devices"`

	// Scheduling-policy telemetry. PolicyPrimary names the policy serving
	// assignments; PolicyShadows carries each shadow policy's divergence
	// counters (assignment mismatches, queue-depth delta, drop/panic
	// health), keyed by registry name. Absent when no shadows run.
	PolicyPrimary string                       `json:"policy_primary"`
	PolicyShadows map[string]PolicyShadowStats `json:"policy_shadows,omitempty"`

	// Plan-lifecycle telemetry: full Algorithm-1 rebuilds vs incremental
	// patches, and the fraction of refreshes the incremental path served.
	PlanRebuilds           int64   `json:"plan_rebuilds"`
	PlanPatches            int64   `json:"plan_patches"`
	PlanIncrementalHitRate float64 `json:"plan_incremental_hit_rate"`
	// LockFreeCheckIns counts check-ins answered from a plan snapshot
	// without entering the scheduler lock.
	LockFreeCheckIns int64 `json:"lock_free_checkins_total"`
	// DevicesEvicted counts registry entries dropped by TTL sweeps.
	DevicesEvicted int64 `json:"devices_evicted_total"`

	// Core commit pipeline telemetry (combiner.go). CoreRounds counts
	// combining rounds applied; CoreCombinedOps counts the queued ops they
	// carried (CoreOpsPerRound is their ratio — the amortization factor);
	// CoreFastPathOps counts ops applied directly on the uncontended fast
	// path, no queue hop. CoreWaitNs gives the wait-time percentiles, in
	// nanoseconds, of submitters that parked while a combiner worked.
	CoreRounds      int64          `json:"core_rounds"`
	CoreCombinedOps int64          `json:"core_combined_ops"`
	CoreOpsPerRound float64        `json:"core_ops_per_round"`
	CoreFastPathOps int64          `json:"core_fastpath_ops"`
	CoreWaitNs      LatencySummary `json:"core_wait_ns"`

	// CheckInsPerSecByTransport splits the served check-in rate by the
	// transport that carried it ("http", "stream"); transports with no
	// traffic in the window are omitted. "Served" counts items not rejected
	// per-item, so it can slightly exceed the admitted checkins_per_sec
	// (daily-budget refusals are served but not admitted).
	CheckInsPerSecByTransport map[string]float64 `json:"checkins_per_sec_by_transport,omitempty"`
	// Streaming-transport telemetry; all zero when no stream listener is
	// attached (SetStreamTelemetry).
	StreamConns      int64 `json:"stream_conns"`
	StreamFramesIn   int64 `json:"stream_frames_in_total"`
	StreamFramesInV2 int64 `json:"stream_frames_in_v2_total"`
	StreamFramesOut  int64 `json:"stream_frames_out_total"`

	// Federation telemetry; all absent when no cluster layer is attached
	// (SetClusterTelemetrySource). ForwardsIn counts peer-forwarded request
	// frames this node served; ForwardsOut counts request frames this node
	// forwarded to owning peers; LocalFallbacks counts would-be forwards
	// applied locally instead (owner down, drain, or a forward that
	// provably never left this node) — the degraded mode that trades
	// ownership locality for availability. Forwards that fail ambiguously
	// (timeout mid-flight) are never re-applied locally; they surface to
	// the caller as unavailable and count only in ForwardErrors.
	ClusterNodeID         string            `json:"cluster_node_id,omitempty"`
	ClusterRingSize       int               `json:"cluster_ring_size,omitempty"`
	ClusterVNodes         int               `json:"cluster_vnodes,omitempty"`
	ClusterPeersUp        int               `json:"cluster_peers_up,omitempty"`
	ClusterPeersDown      int               `json:"cluster_peers_down,omitempty"`
	ClusterPeerStates     map[string]string `json:"cluster_peer_states,omitempty"`
	ClusterForwardsIn     int64             `json:"cluster_forwards_in,omitempty"`
	ClusterForwardsOut    int64             `json:"cluster_forwards_out,omitempty"`
	ClusterForwardErrors  int64             `json:"cluster_forward_errors,omitempty"`
	ClusterLocalFallbacks int64             `json:"cluster_local_fallbacks,omitempty"`
	// Direct-routing observability: DirectRoutedBatches counts ingress
	// batches that needed no peer hop at all (a ring-aware client landed
	// every item on its owner), TopologyEpoch/TopologyPushes track the
	// topology the daemon advertises over OpTopology, and the byte pair
	// makes the direct-vs-forwarded traffic ratio observable (bytes_out
	// counts the v2 zero-copy relay path; bytes_in counts every hop frame
	// received, any version).
	DirectRoutedBatches int64  `json:"direct_routed_batches,omitempty"`
	TopologyEpoch       uint64 `json:"topology_epoch,omitempty"`
	TopologyPushes      int64  `json:"topology_pushes,omitempty"`
	ForwardBytesIn      int64  `json:"forward_bytes_in,omitempty"`
	ForwardBytesOut     int64  `json:"forward_bytes_out,omitempty"`

	// HandlerLatencyMs gives per-op end-to-end handler latency percentiles
	// in milliseconds, derived from the always-on obs total histograms
	// (every transport feeds them); ops with no traffic are omitted. The
	// percentile resolution is the histograms' power-of-two bucketing (2x).
	HandlerLatencyMs map[string]LatencySummary `json:"handler_latency_ms"`

	// RequestStageNs breaks sampled request time down per op and stage
	// ("read", "decode", "queue_wait", "apply", "hop", "encode", "write"),
	// in nanoseconds. Populated from 1-in-ObsSampleEvery sampled spans;
	// empty stages are omitted, and the whole map is absent with sampling
	// disabled.
	RequestStageNs map[string]map[string]LatencySummary `json:"request_stage_ns,omitempty"`
	// ObsSampleEvery is the active span sampling rate (0 = spans off).
	ObsSampleEvery int `json:"obs_sample_every"`
	// FlightRecorded counts requests retained by the flight recorder since
	// start (the ring keeps the slowest obs.FlightSize of them; see
	// /v1/debug/flight).
	FlightRecorded int64 `json:"flight_recorded_total"`
}

// LatencySummary describes one route's handler latency. Count is cumulative;
// the percentiles cover the most recent latencyWindow observations.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

const (
	// rateRingSeconds is the per-second bucket ring size; it must exceed
	// rateWindowSeconds so a full window of closed seconds is available.
	rateRingSeconds = 32
	// rateWindowSeconds is the averaging window for the */s rates.
	rateWindowSeconds = 10
	// latencyWindow is the per-route sliding window for percentiles.
	latencyWindow = 2048
)

// rateCounter counts events into per-second buckets with atomics only, so
// the serving paths can record throughput without sharing a lock. A bucket
// is reused once its second falls out of the ring; the CAS hand-off may
// drop a handful of events on the reuse boundary, which is acceptable for
// monitoring.
type rateCounter struct {
	buckets [rateRingSeconds]rateBucket
}

type rateBucket struct {
	sec atomic.Int64
	n   atomic.Int64
}

// Add records n events at the given wall-clock second.
func (rc *rateCounter) Add(nowSec int64, n int64) {
	if n <= 0 {
		return
	}
	b := &rc.buckets[nowSec%rateRingSeconds]
	if s := b.sec.Load(); s != nowSec {
		if b.sec.CompareAndSwap(s, nowSec) {
			b.n.Store(0)
		}
	}
	b.n.Add(n)
}

// PerSec averages the trailing window of fully elapsed seconds (the
// current, still-filling second is excluded).
func (rc *rateCounter) PerSec(nowSec int64) float64 {
	var sum int64
	for s := nowSec - rateWindowSeconds; s < nowSec; s++ {
		if s < 0 {
			continue
		}
		b := &rc.buckets[s%rateRingSeconds]
		if b.sec.Load() == s {
			sum += b.n.Load()
		}
	}
	return float64(sum) / rateWindowSeconds
}

// latencyTrack keeps one route's cumulative count plus a ring of the most
// recent observations for percentile estimation.
type latencyTrack struct {
	mu    sync.Mutex
	count int64
	ring  [latencyWindow]float64
	n     int // filled entries
	idx   int // next write position
}

func (t *latencyTrack) observe(ms float64) {
	t.mu.Lock()
	t.count++
	t.ring[t.idx] = ms
	t.idx = (t.idx + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.mu.Unlock()
}

func (t *latencyTrack) summary() LatencySummary {
	t.mu.Lock()
	count := t.count
	window := make([]float64, t.n)
	copy(window, t.ring[:t.n])
	t.mu.Unlock()
	if count == 0 {
		return LatencySummary{}
	}
	sort.Float64s(window)
	return LatencySummary{
		Count: count,
		P50:   stats.PercentileSorted(window, 50),
		P90:   stats.PercentileSorted(window, 90),
		P99:   stats.PercentileSorted(window, 99),
		Max:   window[len(window)-1],
	}
}

// Route labels for the per-op latency maps of /v1/metrics. They are the
// string forms of the obs.Op enum — the JSON view, the Prometheus view, and
// the per-stage breakdowns all share one vocabulary.
const (
	RouteCheckIn      = "checkin"
	RouteCheckInBatch = "checkin_batch"
	RouteReport       = "report"
	RouteReportBatch  = "report_batch"
	RouteJobs         = "jobs"
	RouteOther        = "other"
)

// metricsRecorder aggregates the serving-path rate telemetry behind
// /v1/metrics. Latency lives in the manager's obs registry, not here.
type metricsRecorder struct {
	checkins   rateCounter
	assignRate rateCounter
	reportRate rateCounter
	// perTransport counts served check-ins by transport label; written once
	// at construction and then only read, so lookups need no lock.
	perTransport map[string]*rateCounter
}

func newMetricsRecorder() *metricsRecorder {
	r := &metricsRecorder{
		perTransport: make(map[string]*rateCounter, len(transportLabels)),
	}
	for _, tr := range transportLabels {
		r.perTransport[tr] = &rateCounter{}
	}
	return r
}

// transportRate returns the served-check-in counter for a transport label,
// defaulting unknown labels to the HTTP bucket.
func (r *metricsRecorder) transportRate(transport string) *rateCounter {
	if rc, ok := r.perTransport[transport]; ok {
		return rc
	}
	return r.perTransport[TransportHTTP]
}

// histSummary condenses an obs histogram snapshot into the LatencySummary
// shape; scale divides the nanosecond estimates (1 keeps ns, 1e6 yields ms).
func histSummary(s obs.HistSnapshot, scale float64) LatencySummary {
	return LatencySummary{
		Count: s.Count(),
		P50:   s.Quantile(0.50) / scale,
		P90:   s.Quantile(0.90) / scale,
		P99:   s.Quantile(0.99) / scale,
		Max:   s.MaxNs() / scale,
	}
}

// MetricsSnapshot assembles the /v1/metrics payload.
func (m *Manager) MetricsSnapshot() Metrics {
	sec := m.nowSec()
	out := Metrics{
		Shards:            len(m.shards),
		CheckInsPerSec:    m.metrics.checkins.PerSec(sec),
		AssignmentsPerSec: m.metrics.assignRate.PerSec(sec),
		ReportsPerSec:     m.metrics.reportRate.PerSec(sec),
		KnownDevices:      m.numDevices.Load(),
		BusyDevices:       m.busyDevices.Load(),
		CheckIns:          m.checkIns.Load(),
		LockFreeCheckIns:  m.lockFreeCheckIns.Load(),
		DevicesEvicted:    m.evictions.Load(),
		HandlerLatencyMs:  make(map[string]LatencySummary, int(obs.NumOps)),
		ObsSampleEvery:    m.obs.SampleEvery(),
		FlightRecorded:    m.obs.Flight().Recorded(),
	}
	out.CoreRounds = m.coreRounds.Load()
	out.CoreCombinedOps = m.coreCombinedOps.Load()
	if out.CoreRounds > 0 {
		out.CoreOpsPerRound = float64(out.CoreCombinedOps) / float64(out.CoreRounds)
	}
	out.CoreFastPathOps = m.coreFastOps.Load()
	out.CoreWaitNs = m.coreWait.summary()
	for op := obs.Op(0); op < obs.NumOps; op++ {
		if s := m.obs.TotalSnapshot(op); s.Count() > 0 {
			out.HandlerLatencyMs[op.String()] = histSummary(s, 1e6)
		}
		var stages map[string]LatencySummary
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if s := m.obs.StageSnapshot(op, st); s.Count() > 0 {
				if stages == nil {
					stages = make(map[string]LatencySummary, int(obs.NumStages))
				}
				stages[st.String()] = histSummary(s, 1)
			}
		}
		if stages != nil {
			if out.RequestStageNs == nil {
				out.RequestStageNs = make(map[string]map[string]LatencySummary, int(obs.NumOps))
			}
			out.RequestStageNs[op.String()] = stages
		}
	}
	for _, tr := range transportLabels {
		if rate := m.metrics.perTransport[tr].PerSec(sec); rate > 0 {
			if out.CheckInsPerSecByTransport == nil {
				out.CheckInsPerSecByTransport = make(map[string]float64, len(transportLabels))
			}
			out.CheckInsPerSecByTransport[tr] = rate
		}
	}
	m.mu.Lock()
	if m.streamSource != nil {
		st := m.streamSource.StreamTelemetry()
		out.StreamConns = st.Conns
		out.StreamFramesIn = st.FramesIn
		out.StreamFramesInV2 = st.FramesInV2
		out.StreamFramesOut = st.FramesOut
	}
	if m.clusterSource != nil {
		ct := m.clusterSource.ClusterTelemetry()
		out.ClusterNodeID = ct.NodeID
		out.ClusterRingSize = ct.RingSize
		out.ClusterVNodes = ct.VNodes
		out.ClusterPeerStates = ct.PeerStates
		for _, st := range ct.PeerStates {
			if st == "up" {
				out.ClusterPeersUp++
			} else {
				out.ClusterPeersDown++
			}
		}
		out.ClusterForwardsIn = ct.ForwardsIn
		out.ClusterForwardsOut = ct.ForwardsOut
		out.ClusterForwardErrors = ct.ForwardErrors
		out.ClusterLocalFallbacks = ct.LocalFallbacks
		out.DirectRoutedBatches = ct.DirectRoutedBatches
		out.TopologyEpoch = ct.TopologyEpoch
		out.TopologyPushes = ct.TopologyPushes
		out.ForwardBytesIn = ct.ForwardBytesIn
		out.ForwardBytesOut = ct.ForwardBytesOut
	}
	out.UptimeSeconds = float64(m.now()) / 1000
	out.Assignments = int64(m.assignments)
	out.Reports = int64(m.reports)
	if m.venn != nil {
		out.PlanRebuilds = int64(m.venn.PlanRebuilds)
		out.PlanPatches = int64(m.venn.PlanPatches)
		if total := out.PlanRebuilds + out.PlanPatches; total > 0 {
			out.PlanIncrementalHitRate = float64(out.PlanPatches) / float64(total)
		}
	}
	out.ActiveJobs = len(m.jobs)
	for _, mj := range m.jobs {
		switch mj.j.State() {
		case job.StateScheduling:
			out.SchedulingJobs++
		case job.StateCollecting:
			out.CollectingJobs++
		}
	}
	m.mu.Unlock()
	out.PolicyPrimary = m.policyName
	if m.shadowsOn {
		out.PolicyShadows = make(map[string]PolicyShadowStats, len(m.shadows))
		for _, sr := range m.shadows {
			out.PolicyShadows[sr.name] = sr.statsSnapshot(int64(out.SchedulingJobs))
		}
	}
	return out
}
