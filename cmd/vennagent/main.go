// Command vennagent simulates a fleet of edge devices against a live
// venndaemon: each device periodically checks in (respecting a synthetic
// charging schedule), executes assigned tasks for a speed-dependent
// duration, and reports back. Useful for load-testing and demos:
//
//	venndaemon -addr :8080 &
//	vennagent -daemon http://localhost:8080 -devices 200 -rate 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"venn/internal/client"
	"venn/internal/server"
	"venn/internal/stats"
)

func main() {
	var (
		daemon   = flag.String("daemon", "http://localhost:8080", "venndaemon base URL")
		devices  = flag.Int("devices", 100, "number of simulated devices")
		rate     = flag.Float64("rate", 5, "check-ins per second across the fleet")
		duration = flag.Duration("duration", time.Minute, "how long to run")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	c := client.New(*daemon)
	if _, err := c.Stats(); err != nil {
		fmt.Fprintf(os.Stderr, "vennagent: daemon unreachable: %v\n", err)
		os.Exit(1)
	}

	rng := stats.NewRNG(*seed)
	type dev struct {
		id       string
		cpu, mem float64
	}
	fleet := make([]dev, *devices)
	for i := range fleet {
		fleet[i] = dev{
			id:  fmt.Sprintf("agent-%04d", i),
			cpu: rng.Float64(),
			mem: rng.Float64(),
		}
	}

	var (
		mu          sync.Mutex
		checkIns    int
		assignments int
		reports     int
	)
	var wg sync.WaitGroup
	stop := time.Now().Add(*duration)
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	for time.Now().Before(stop) {
		<-ticker.C
		d := fleet[rng.Intn(len(fleet))]
		wg.Add(1)
		go func(d dev, taskSeed int64) {
			defer wg.Done()
			asg, err := c.CheckIn(server.CheckIn{DeviceID: d.id, CPU: d.cpu, Mem: d.mem})
			mu.Lock()
			checkIns++
			mu.Unlock()
			if err != nil || !asg.Assigned {
				return
			}
			mu.Lock()
			assignments++
			mu.Unlock()
			// Execute: duration scales inversely with capability.
			taskRNG := stats.NewRNG(taskSeed)
			secs := taskRNG.LogNormalMedianP95(4, 10) / (0.5 + 1.5*d.cpu)
			time.Sleep(time.Duration(secs * float64(time.Second)))
			ok := !taskRNG.Bool(0.08)
			if err := c.Report(server.Report{
				DeviceID: d.id, JobID: asg.JobID, OK: ok, DurationSeconds: secs,
			}); err == nil && ok {
				mu.Lock()
				reports++
				mu.Unlock()
			}
		}(d, rng.Int63())
	}
	wg.Wait()

	st, err := c.Stats()
	mu.Lock()
	fmt.Printf("agent: %d check-ins, %d assignments, %d successful reports\n",
		checkIns, assignments, reports)
	mu.Unlock()
	if err == nil {
		fmt.Printf("daemon: %d assignments, %d reports, %d jobs done (avg JCT %.0fs)\n",
			st.Assignments, st.Reports, st.CompletedJobs, st.AvgJCTSeconds)
	}
}
