package eval

import (
	"testing"

	"venn/internal/stats"
)

// TestMultiSeedDirection checks the headline comparison across several seeds:
// on average Venn must beat Random and match or beat SRSF.
func TestMultiSeedDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	var venn, srsf, fifo []float64
	for seed := int64(1); seed <= 5; seed++ {
		setup := NewSetup(ScaleQuick, seed)
		cmp, err := Compare(setup, StandardSchedulers())
		if err != nil {
			t.Fatal(err)
		}
		venn = append(venn, cmp.Speedup("Venn", "Random"))
		srsf = append(srsf, cmp.Speedup("SRSF", "Random"))
		fifo = append(fifo, cmp.Speedup("FIFO", "Random"))
		t.Logf("seed %d: Venn %.2fx SRSF %.2fx FIFO %.2fx",
			seed, venn[len(venn)-1], srsf[len(srsf)-1], fifo[len(fifo)-1])
	}
	vm, sm, fm := stats.Mean(venn), stats.Mean(srsf), stats.Mean(fifo)
	t.Logf("means: Venn %.2fx SRSF %.2fx FIFO %.2fx", vm, sm, fm)
	if vm <= 1.0 {
		t.Errorf("Venn mean speedup over Random = %.2f, want > 1.0", vm)
	}
	if vm < sm*0.95 {
		t.Errorf("Venn (%.2f) should not trail SRSF (%.2f) materially", vm, sm)
	}
}
