// Federated: end-to-end collaborative learning — two CL jobs train real
// (surrogate) models with federated averaging while Venn manages the shared
// device pool. Demonstrates the RoundObserver hook that connects the
// resource manager to actual training.
package main

import (
	"fmt"
	"log"

	venn "venn"
	"venn/internal/fl"
)

func main() {
	const devices = 1500
	fleet := venn.GenerateFleet(venn.FleetConfig{NumDevices: devices, Seed: 31})

	// One dataset per job: each device holds a non-IID local shard.
	dsA := fl.GenerateDataset(fl.DataConfig{Clients: devices, Alpha: 0.3, Seed: 41})
	dsB := fl.GenerateDataset(fl.DataConfig{Clients: devices, Alpha: 0.3, Seed: 42})
	trainers := map[int]*fl.Trainer{
		0: fl.NewTrainer(dsA, fl.TrainConfig{Seed: 51}),
		1: fl.NewTrainer(dsB, fl.TrainConfig{Seed: 52}),
	}

	jobs := []*venn.Job{
		venn.NewJob(0, venn.General, 30, 10, 0),
		venn.NewJob(1, venn.ComputeRich, 25, 10, 10*venn.Minute),
	}

	observer := func(j *venn.Job, round int, participants []venn.DeviceID, now venn.Time) {
		ids := make([]int, len(participants))
		for i, p := range participants {
			ids[i] = int(p)
		}
		rr := trainers[int(j.ID)].RunRound(ids)
		fmt.Printf("t=%-12v %s round %2d: %3d participants, %2d labels, test acc %.3f\n",
			now, j.Name, round, rr.Participants, rr.Diversity, rr.TestAccuracy)
	}

	res, err := venn.Simulate(venn.SimConfig{
		Fleet:     fleet,
		Jobs:      jobs,
		Scheduler: venn.NewVenn(venn.SchedulerOptions{}),
		Seed:      61,
		Observer:  observer,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n" + res.String())
	for id, tr := range trainers {
		fmt.Printf("job%d final accuracy: %.3f after %d rounds\n", id, tr.FinalAccuracy(), tr.Rounds())
	}
}
