// Package transport serves the scheduler's Service layer over a persistent
// binary streaming protocol: length-prefixed frames on a raw TCP
// connection. Compared to the HTTP adapter it removes per-request framing,
// header parsing, and connection churn — an agent (or a peer daemon) holds
// one connection open and pipelines requests over it, correlating replies
// by request ID.
//
// Frame layout (all integers big-endian):
//
//	offset size  field
//	0      2     magic 0x56 0x4E ("VN")
//	2      1     protocol version (1 or 2)
//	3      1     opcode
//	4      4     request ID (echoed verbatim in the response)
//	8      4     payload length N
//	12     N     payload
//
// The version byte declares the *payload encoding* of this frame: version 1
// payloads are JSON (same wire structs + codecs as HTTP); version 2 carries
// the fixed-layout binary codec for the four serving opcodes (check-in,
// report, and their batch forms) and for OpError, while every other opcode
// keeps JSON payloads even in v2 frames. A response frame echoes the
// request frame's version, so frames of both versions may interleave on one
// connection — that is what lets a mixed-version federation keep
// forwarding.
//
// Version negotiation: after dialing, a client sends OpHello (always as a
// v1/JSON frame) announcing its highest supported version; the server
// replies with the version both sides will consider enabled. A pre-v2
// server instead answers OpError ("unknown opcode"), which a client must
// treat as "peer speaks v1 only". See README "Wire protocol" for the spec.
//
// A response reuses the request's opcode with RespFlag set, or OpError with
// an ErrorPayload body. Request IDs are chosen by the client; responses may
// arrive out of order (the server answers each frame as its handler
// finishes), which is what makes pipelining pay.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Protocol constants.
const (
	Magic0 = 0x56 // 'V'
	Magic1 = 0x4E // 'N'
	// Version1 frames carry JSON payloads; Version2 frames carry the
	// fixed-layout binary codec on the serving opcodes. MaxVersion is the
	// highest version this build speaks.
	Version1   byte = 1
	Version2   byte = 2
	MaxVersion byte = Version2
	// Version is the original protocol version. Deprecated: use Version1.
	Version = Version1
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 12
)

// Opcodes. Response opcode = request opcode | RespFlag on success; OpError
// carries an ErrorPayload on failure.
const (
	OpCheckIn      byte = 0x01
	OpCheckInBatch byte = 0x02
	OpReport       byte = 0x03
	OpReportBatch  byte = 0x04
	OpRegisterJob  byte = 0x05
	OpJobs         byte = 0x06
	OpJobStatus    byte = 0x07
	OpStats        byte = 0x08
	OpMetrics      byte = 0x09
	OpPing         byte = 0x0A
	// OpHello is the version-negotiation opcode. The request payload is a
	// HelloRequest, the response a HelloResponse; both ride in v1 (JSON)
	// frames so that any peer can parse them. Servers predating v2 answer
	// OpError instead, which clients treat as a v1-only peer.
	OpHello byte = 0x0B
	// OpTopology requests the federation topology: the ring's member
	// addresses, vnode count, and an epoch that advances whenever the live
	// membership changes. The request payload is empty; the response is a
	// TopologyPayload in the fixed binary layout. It is a v2-era opcode —
	// requests must ride in v2 frames (a v1 frame is rejected as invalid),
	// which a client guarantees by only asking after negotiating v2. The
	// server additionally *pushes* an unsolicited OpTopology|RespFlag frame
	// with request ID 0 to every connection that has fetched the topology
	// whenever the epoch advances, so ring-aware clients re-partition
	// without polling. A daemon with no federation layer attached answers
	// OpError with CodeUnavailable.
	OpTopology byte = 0x0C

	// HopFlag marks a request frame as already forwarded once by a peer
	// daemon (federation hop guard). A server must answer a hop-flagged
	// frame itself — served locally or rejected — and never re-forward it,
	// so two daemons with disagreeing (stale) rings cannot ping-pong a
	// request between each other. Only the four serving opcodes (check-in,
	// report, and their batch forms) may carry it. Responses echo the flag.
	HopFlag byte = 0x40
	// TraceFlag marks a v2 request frame as carrying a trace context: the
	// payload begins with a TraceContextSize-byte prefix (see AppendTrace /
	// PeelTrace) that the server strips before decoding. Only the four
	// serving opcodes may carry it, and only in v2 frames — trace context
	// never downgrades to v1 peers and never appears on responses (where the
	// bit pattern would collide with nothing today, but responses carry their
	// timing in the origin's span instead of on the wire). The federation
	// layer sets it on hop frames whose origin request was sampled, which is
	// what lets the owning daemon attribute its time to the same trace ID the
	// origin records for the hop stage.
	TraceFlag byte = 0x20
	// RespFlag marks a frame as a response to the same opcode.
	RespFlag byte = 0x80
	// OpError is the error-response opcode; its payload is an ErrorPayload
	// (JSON in v1 frames, binary in v2 frames).
	OpError byte = 0xFF
)

// HelloRequest is the OpHello request body (always JSON): the highest
// protocol version the client can speak.
type HelloRequest struct {
	MaxVersion int `json:"max_version"`
}

// HelloResponse is the OpHello response body (always JSON): the version the
// server selected, min(client max, server max). All subsequent frames from
// the client must use a version ≤ this.
type HelloResponse struct {
	Version int `json:"version"`
}

// ErrorPayload is the body of an OpError response frame. Code carries the
// service layer's error code (server.Code) so clients can classify without
// string matching. In a v1 frame it is JSON; in a v2 frame it is
// `uvarint code | uvarint len | len bytes of message`.
type ErrorPayload struct {
	Code  int    `json:"code"`
	Error string `json:"error"`
}

// MarshalBinary encodes the v2 wire form of the error payload.
func (e *ErrorPayload) MarshalBinary() ([]byte, error) {
	b := binary.AppendUvarint(nil, uint64(uint(e.Code)))
	b = binary.AppendUvarint(b, uint64(len(e.Error)))
	return append(b, e.Error...), nil
}

// UnmarshalBinary decodes the v2 wire form of the error payload.
func (e *ErrorPayload) UnmarshalBinary(data []byte) error {
	code, n := binary.Uvarint(data)
	if n <= 0 {
		return &ErrProtocol{msg: "error payload: bad code"}
	}
	data = data[n:]
	slen, n := binary.Uvarint(data)
	if n <= 0 || slen > uint64(len(data[n:])) {
		return &ErrProtocol{msg: "error payload: bad message length"}
	}
	data = data[n:]
	if uint64(len(data)) != slen {
		return &ErrProtocol{msg: "error payload: trailing bytes"}
	}
	e.Code = int(code)
	e.Error = string(data)
	return nil
}

// TopologyPayload is the OpTopology response body: everything a client
// needs to rebuild the federation's ownership ring locally (hashring.New
// over Members with VNodes points each) plus the epoch it was published at.
//
// Binary layout (always; OpTopology never rides in v1 frames):
//
//	uvarint epoch | uvarint vnodes | uvarint count | count × (uvarint len | bytes)
//
// Members lists the *live* members (self plus peers currently passing
// health probes), sorted; a member marked down by the health loop drops off
// the payload and the epoch advances, so ring-aware clients stop routing
// batches at a daemon its own peers consider dead.
type TopologyPayload struct {
	Epoch   uint64   `json:"epoch"`
	VNodes  int      `json:"vnodes"`
	Members []string `json:"members"`
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *TopologyPayload) MarshalBinary() ([]byte, error) {
	n := 12
	for _, m := range t.Members {
		n += 5 + len(m)
	}
	b := binary.AppendUvarint(make([]byte, 0, n), t.Epoch)
	b = binary.AppendUvarint(b, uint64(uint(t.VNodes)))
	b = binary.AppendUvarint(b, uint64(len(t.Members)))
	for _, m := range t.Members {
		b = binary.AppendUvarint(b, uint64(len(m)))
		b = append(b, m...)
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Like every v2
// decoder it rejects lying counts and trailing bytes, and an accepted
// payload re-encodes byte-identically (pinned by FuzzTopologyRoundTrip).
func (t *TopologyPayload) UnmarshalBinary(data []byte) error {
	*t = TopologyPayload{}
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, &ErrProtocol{msg: "topology payload: bad " + what}
		}
		data = data[n:]
		return v, nil
	}
	epoch, err := uv("epoch")
	if err != nil {
		return err
	}
	vnodes, err := uv("vnodes")
	if err != nil {
		return err
	}
	count, err := uv("member count")
	if err != nil {
		return err
	}
	// Every member costs at least one length byte, so a lying count cannot
	// balloon the allocation past the payload it arrived in.
	if count > uint64(len(data)) {
		return &ErrProtocol{msg: "topology payload: member count exceeds payload"}
	}
	members := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		slen, err := uv("member length")
		if err != nil {
			return err
		}
		if slen > uint64(len(data)) {
			return &ErrProtocol{msg: "topology payload: member length exceeds payload"}
		}
		members = append(members, string(data[:slen]))
		data = data[slen:]
	}
	if len(data) != 0 {
		return &ErrProtocol{msg: "topology payload: trailing bytes"}
	}
	t.Epoch = epoch
	t.VNodes = int(vnodes)
	if len(members) > 0 {
		t.Members = members
	}
	return nil
}

// TraceContextSize is the length of the trace prefix a TraceFlag frame's
// payload starts with: a big-endian uint64 trace ID followed by one flags
// byte (bit 0 = sampled).
const TraceContextSize = 9

// traceSampledBit is the sampled flag in a trace context's flags byte.
const traceSampledBit = 0x01

// AppendTrace appends a trace context to b — used by forwarders to build
// `trace prefix | payload` bodies for TraceFlag frames.
func AppendTrace(b []byte, traceID uint64, sampled bool) []byte {
	var ctx [TraceContextSize]byte
	binary.BigEndian.PutUint64(ctx[:8], traceID)
	if sampled {
		ctx[8] = traceSampledBit
	}
	return append(b, ctx[:]...)
}

// PrependTrace shifts payload right by TraceContextSize bytes and writes the
// trace context at the front, returning the grown slice. The payload is
// typically a pooled buffer mid-build; the copy is the price of keeping the
// encoders trace-unaware.
func PrependTrace(payload []byte, traceID uint64, sampled bool) []byte {
	payload = append(payload, make([]byte, TraceContextSize)...)
	copy(payload[TraceContextSize:], payload[:len(payload)-TraceContextSize])
	binary.BigEndian.PutUint64(payload[:8], traceID)
	payload[8] = 0
	if sampled {
		payload[8] = traceSampledBit
	}
	return payload
}

// PeelTrace splits a TraceFlag frame's payload into its trace context and
// the real payload that follows. The returned rest aliases data — callers
// recycling a pooled payload must recycle the original slice, not rest.
func PeelTrace(data []byte) (traceID uint64, sampled bool, rest []byte, err error) {
	if len(data) < TraceContextSize {
		return 0, false, nil, &ErrProtocol{msg: "trace context shorter than its fixed size"}
	}
	traceID = binary.BigEndian.Uint64(data[:8])
	return traceID, data[8]&traceSampledBit != 0, data[TraceContextSize:], nil
}

// JobIDRequest is the OpJobStatus request body.
type JobIDRequest struct {
	ID int `json:"id"`
}

// Frame is one decoded frame.
type Frame struct {
	Ver     byte
	Op      byte
	ID      uint32
	Payload []byte
}

// ErrProtocol reports a framing violation (bad magic or version); the
// connection cannot be trusted past it and must be closed.
type ErrProtocol struct{ msg string }

func (e *ErrProtocol) Error() string { return "transport: " + e.msg }

// PutHeader encodes a frame header into hdr, which must be at least
// HeaderSize bytes.
func PutHeader(hdr []byte, ver, op byte, id uint32, payloadLen int) {
	hdr[0], hdr[1], hdr[2], hdr[3] = Magic0, Magic1, ver, op
	binary.BigEndian.PutUint32(hdr[4:8], id)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(payloadLen))
}

// WriteFrame writes one frame to w (typically a *bufio.Writer; the caller
// owns flushing).
func WriteFrame(w io.Writer, ver, op byte, id uint32, payload []byte) error {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], ver, op, id, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads and validates one frame. Frames with a version above
// maxVer are rejected — a v1-only server passes Version1 here, which is
// exactly how a pre-v2 daemon behaves. Payloads above maxPayload are
// rejected as a protocol violation — a correct peer never sends them, and
// honoring the prefix would let a malformed length balloon memory. The
// returned payload is freshly allocated (it may outlive the reader).
func ReadFrame(br *bufio.Reader, maxPayload int, maxVer byte) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return Frame{}, &ErrProtocol{msg: "bad magic"}
	}
	if hdr[2] < Version1 || hdr[2] > maxVer {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("unsupported version %d", hdr[2])}
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxPayload) {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("payload %d exceeds limit %d", n, maxPayload)}
	}
	fr := Frame{Ver: hdr[2], Op: hdr[3], ID: binary.BigEndian.Uint32(hdr[4:8])}
	if n > 0 {
		fr.Payload = make([]byte, n)
		if _, err := io.ReadFull(br, fr.Payload); err != nil {
			return Frame{}, err
		}
	}
	return fr, nil
}

// ReadFramePooled is ReadFrame with the payload read into a pooled buffer
// (GetBuf). The caller owns the payload and must return it with PutBuf once
// the frame is fully handled — which also means the payload must not escape
// the handler (decoders copy what they keep).
func ReadFramePooled(br *bufio.Reader, maxPayload int, maxVer byte) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return Frame{}, &ErrProtocol{msg: "bad magic"}
	}
	if hdr[2] < Version1 || hdr[2] > maxVer {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("unsupported version %d", hdr[2])}
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxPayload) {
		return Frame{}, &ErrProtocol{msg: fmt.Sprintf("payload %d exceeds limit %d", n, maxPayload)}
	}
	fr := Frame{Ver: hdr[2], Op: hdr[3], ID: binary.BigEndian.Uint32(hdr[4:8])}
	if n > 0 {
		fr.Payload = GetBuf(int(n))[:n]
		if _, err := io.ReadFull(br, fr.Payload); err != nil {
			PutBuf(fr.Payload)
			return Frame{}, err
		}
	}
	return fr, nil
}

// ReadFramePooledTimed is ReadFramePooled, additionally reporting the time
// spent reading the payload bytes (after the header completed) in
// nanoseconds. The header wait is deliberately excluded: between requests it
// measures client idle time, which would poison any latency attribution.
// readNs is 0 for empty payloads and whenever the payload was already
// buffered.
func ReadFramePooledTimed(br *bufio.Reader, maxPayload int, maxVer byte) (fr Frame, readNs int64, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return Frame{}, 0, &ErrProtocol{msg: "bad magic"}
	}
	if hdr[2] < Version1 || hdr[2] > maxVer {
		return Frame{}, 0, &ErrProtocol{msg: fmt.Sprintf("unsupported version %d", hdr[2])}
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxPayload) {
		return Frame{}, 0, &ErrProtocol{msg: fmt.Sprintf("payload %d exceeds limit %d", n, maxPayload)}
	}
	fr = Frame{Ver: hdr[2], Op: hdr[3], ID: binary.BigEndian.Uint32(hdr[4:8])}
	if n > 0 {
		fr.Payload = GetBuf(int(n))[:n]
		if br.Buffered() >= int(n) {
			// Fast path: the payload is already in the read buffer; a clock
			// read per frame here would cost more than the copy it times.
			if _, err := io.ReadFull(br, fr.Payload); err != nil {
				PutBuf(fr.Payload)
				return Frame{}, 0, err
			}
			return fr, 0, nil
		}
		t0 := time.Now()
		if _, err := io.ReadFull(br, fr.Payload); err != nil {
			PutBuf(fr.Payload)
			return Frame{}, 0, err
		}
		readNs = int64(time.Since(t0))
	}
	return fr, readNs, nil
}
