// Command vennsim runs one simulated CL workload under one or all
// schedulers and reports job-completion-time statistics.
//
// Usage:
//
//	vennsim -devices 5000 -jobs 50 -scheduler all -scenario even -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"venn/internal/eval"
	"venn/internal/sched"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/trace"
	"venn/internal/workload"

	vennapi "venn"
)

func main() {
	var (
		devices   = flag.Int("devices", 5000, "fleet size")
		jobs      = flag.Int("jobs", 50, "number of CL jobs")
		days      = flag.Int("days", 5, "simulation horizon in days")
		scheduler = flag.String("scheduler", "all", "random|fifo|srsf|venn|all")
		scenario  = flag.String("scenario", "even", "even|small|large|low|high")
		bias      = flag.String("bias", "", "''|general|compute|memory|resource")
		tiers     = flag.Int("tiers", 3, "Venn device-tier granularity V")
		epsilon   = flag.Float64("epsilon", 0, "Venn fairness knob")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	sc, err := parseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	bi, err := parseBias(*bias)
	if err != nil {
		fatal(err)
	}

	fleet := trace.GenerateFleet(trace.FleetConfig{
		NumDevices: *devices,
		Horizon:    simtime.Duration(*days) * simtime.Day,
		Seed:       *seed,
	})
	wl := workload.Generate(workload.Config{
		Scenario: sc,
		Bias:     bi,
		NumJobs:  *jobs,
		Seed:     *seed + 1,
	})
	fmt.Printf("fleet: %d devices over %d days; workload: %d jobs (%s/%s), total demand %d device-tasks\n\n",
		*devices, *days, *jobs, sc, bi, wl.TotalDemand())

	factories := schedulerFactories(*scheduler, *tiers, *epsilon)
	if len(factories) == 0 {
		fatal(fmt.Errorf("unknown scheduler %q", *scheduler))
	}

	results := map[string]*sim.Result{}
	names := make([]string, 0, len(factories))
	for name, f := range factories {
		res, err := eval.RunOne(fleet, wl, f, *seed+100, nil)
		if err != nil {
			fatal(err)
		}
		results[name] = res
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(results[name])
	}
	if base, ok := results["Random"]; ok && len(results) > 1 {
		fmt.Println("\nspeed-up over Random:")
		for _, name := range names {
			if name == "Random" {
				continue
			}
			fmt.Printf("  %-8s %.2fx\n", name, results[name].SpeedupOver(base))
		}
	}
}

func schedulerFactories(sel string, tiers int, epsilon float64) map[string]eval.SchedulerFactory {
	mk := map[string]eval.SchedulerFactory{
		"Random": func() sim.Scheduler { return sched.NewRandom() },
		"FIFO":   func() sim.Scheduler { return sched.NewFIFO() },
		"SRSF":   func() sim.Scheduler { return sched.NewSRSF() },
		"Venn": func() sim.Scheduler {
			return vennapi.NewVenn(vennapi.SchedulerOptions{Tiers: tiers, Epsilon: epsilon, MinProfileSamples: 20})
		},
	}
	switch strings.ToLower(sel) {
	case "all":
		return mk
	case "random":
		return map[string]eval.SchedulerFactory{"Random": mk["Random"]}
	case "fifo":
		return map[string]eval.SchedulerFactory{"FIFO": mk["FIFO"]}
	case "srsf":
		return map[string]eval.SchedulerFactory{"SRSF": mk["SRSF"]}
	case "venn":
		return map[string]eval.SchedulerFactory{"Venn": mk["Venn"], "Random": mk["Random"]}
	default:
		return nil
	}
}

func parseScenario(s string) (workload.Scenario, error) {
	switch strings.ToLower(s) {
	case "even", "":
		return workload.Even, nil
	case "small":
		return workload.Small, nil
	case "large":
		return workload.Large, nil
	case "low":
		return workload.Low, nil
	case "high":
		return workload.High, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}

func parseBias(s string) (workload.Bias, error) {
	switch strings.ToLower(s) {
	case "":
		return workload.NoBias, nil
	case "general":
		return workload.BiasGeneral, nil
	case "compute":
		return workload.BiasCompute, nil
	case "memory":
		return workload.BiasMemory, nil
	case "resource":
		return workload.BiasResource, nil
	default:
		return 0, fmt.Errorf("unknown bias %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vennsim:", err)
	os.Exit(1)
}
