package server

import "testing"

// TestWireCodesFrozen pins the numeric values of the service error codes.
// They are stable wire codes — carried in stream OpError frames and HTTP
// error bodies, and classified on by clients of both transports — so a
// renumbering is a protocol break, not a refactor. If this test fails, you
// changed the wire protocol: add new codes at the end instead.
func TestWireCodesFrozen(t *testing.T) {
	frozen := map[Code]int{
		CodeInvalid:     1,
		CodeNotFound:    2,
		CodeBusy:        3,
		CodeTooLarge:    4,
		CodeUnavailable: 5,
	}
	for code, want := range frozen {
		if int(code) != want {
			t.Errorf("code value drifted: got %d, want %d", int(code), want)
		}
	}
	if len(frozen) != 5 {
		t.Error("update this test (append-only) when adding codes")
	}
}
