// Ring-aware client routing (WithTopology). The client fetches the
// federation topology from its seed daemon over OpTopology, builds the same
// consistent-hash ring the daemons use (internal/hashring — identical hash,
// identical vnode expansion, so client and cluster always agree on
// ownership), and partitions every call by device owner onto a pooled
// per-member StreamClient. In a healthy, settled cluster every item lands on
// its owner directly and the daemons' forward path goes idle.
//
// Staleness: the ring is a cache. When it is stale (a member joined, died,
// or recovered between the fetch and a send), misrouted items still land on
// a daemon — which forwards them server-side exactly as before and sets the
// forwarded flag on its response. The client treats that flag as "re-fetch
// before the next batch" (single-flight, asynchronous); the daemons also
// push fresh topologies at subscribed connections on every epoch change, so
// the correction usually arrives before it is needed. Correctness never
// depends on ring freshness — only locality does.
//
// Failover: a transport failure on a member connection (dial refused,
// connection lost, timeout) retries the sub-batch ONCE on a different live
// member, which serves or forwards it authoritatively. That makes routed
// calls at-least-once under member failure — a check-in may be applied twice
// (harmless: check-ins and reports are idempotent per device+task), but is
// never lost, which is exactly the guarantee the chaos smoke pins. Typed
// rejections (StreamError) are authoritative answers and are never retried.
//
// Degradation: a seed daemon that answers OpTopology with CodeUnavailable
// (no federation layer) or that negotiated v1 permanently disables the mode
// — the client behaves exactly like a plain StreamClient from then on.

package client

import (
	"errors"
	"sync"

	"venn/internal/hashring"
	"venn/internal/server"
	"venn/internal/transport"
)

// errTopoV1 marks a topology fetch attempted over a v1 connection; the mode
// disables itself (OpTopology is a v2-era opcode).
var errTopoV1 = errors.New("client: topology requires wire protocol v2")

// topoView is one immutable routing view: the ring at one epoch plus the
// member clients to send on. Swapped wholesale under topoState.mu.
type topoView struct {
	epoch   uint64
	ring    *hashring.Ring
	members []string // sorted, as served
	clients map[string]*StreamClient
}

// owner resolves the member an item routes to. Unroutable (empty-ID) items
// go to the first member, deterministically.
func (v *topoView) owner(deviceID string) string {
	if deviceID == "" {
		return v.members[0]
	}
	return v.ring.Owner(deviceID)
}

// alt picks a failover member ≠ m: the first other member of the view, else
// nil when m is the only one.
func (v *topoView) alt(m string) *StreamClient {
	for _, mm := range v.members {
		if mm != m {
			return v.clients[mm]
		}
	}
	return nil
}

// topoState is the mutable side: the current view, the persistent member
// client pool (members that drop off the ring keep their client — they
// usually come back), and the single-flight fetch state.
type topoState struct {
	root *StreamClient
	addr string // the seed address root dials
	cfg  config

	mu       sync.Mutex
	view     *topoView
	clients  map[string]*StreamClient // persistent pool, root included under addr
	fetching bool
	disabled bool
}

func newTopoState(root *StreamClient, addr string, cfg config) *topoState {
	cfg.topology = false // member sub-clients are plain
	return &topoState{
		root:    root,
		addr:    addr,
		cfg:     cfg,
		clients: map[string]*StreamClient{addr: root},
	}
}

// close tears down the member sub-clients (the root's own connections are
// closed by StreamClient.Close, which calls this first).
func (t *topoState) close() {
	t.mu.Lock()
	clients := t.clients
	t.clients = map[string]*StreamClient{t.addr: t.root}
	t.disabled = true
	t.view = nil
	t.mu.Unlock()
	for _, cl := range clients {
		if cl != t.root {
			_ = cl.Close()
		}
	}
}

// ensureView returns the current routing view, fetching it synchronously on
// first use. nil means "route plainly through the seed for now": the mode is
// disabled, or another goroutine is mid-fetch.
func (t *topoState) ensureView() *topoView {
	t.mu.Lock()
	if t.disabled {
		t.mu.Unlock()
		return nil
	}
	if v := t.view; v != nil {
		t.mu.Unlock()
		return v
	}
	if t.fetching {
		t.mu.Unlock()
		return nil
	}
	t.fetching = true
	t.mu.Unlock()
	t.fetch()
	t.mu.Lock()
	v := t.view
	t.mu.Unlock()
	return v
}

// fetch performs one OpTopology round trip and installs the result. The
// caller must have set t.fetching; fetch clears it.
func (t *topoState) fetch() {
	payload, _, _, err := t.root.do(transport.OpTopology, func(ver byte) ([]byte, byte, error) {
		if ver < transport.Version2 {
			return nil, 0, errTopoV1
		}
		return nil, transport.Version2, nil
	})
	disable := false
	var view *topoView
	if err != nil {
		var se *StreamError
		// A v1 seed or a seed with no federation layer will never serve a
		// topology; a transport failure might, next time.
		disable = errors.Is(err, errTopoV1) || errors.As(err, &se)
	} else {
		var tp transport.TopologyPayload
		if tp.UnmarshalBinary(payload) == nil {
			view = t.buildView(tp)
		}
	}
	t.mu.Lock()
	t.fetching = false
	if disable {
		t.disabled = true
	}
	if view != nil && (t.view == nil || view.epoch >= t.view.epoch) {
		t.view = view
	}
	t.mu.Unlock()
}

// buildView materializes a served topology into a routing view, creating
// member clients the pool doesn't hold yet.
func (t *topoState) buildView(tp transport.TopologyPayload) *topoView {
	members := tp.Members
	if len(members) == 0 {
		members = []string{t.addr}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	clients := make(map[string]*StreamClient, len(members))
	for _, m := range members {
		cl := t.clients[m]
		if cl == nil {
			cl = newStreamClient(m, t.cfg)
			t.clients[m] = cl
		}
		clients[m] = cl
	}
	return &topoView{
		epoch:   tp.Epoch,
		ring:    hashring.New(members, tp.VNodes),
		members: members,
		clients: clients,
	}
}

// applyPush installs a server-pushed topology (read-loop goroutine).
func (t *topoState) applyPush(tp transport.TopologyPayload) {
	view := t.buildView(tp)
	t.mu.Lock()
	if !t.disabled && (t.view == nil || view.epoch >= t.view.epoch) {
		t.view = view
	}
	t.mu.Unlock()
}

// markStale triggers one asynchronous re-fetch unless a fresher view (epoch
// beyond the one found stale) is already installed or a fetch is in flight.
func (t *topoState) markStale(epoch uint64) {
	t.mu.Lock()
	if t.disabled || t.fetching || (t.view != nil && t.view.epoch > epoch) {
		t.mu.Unlock()
		return
	}
	t.fetching = true
	t.mu.Unlock()
	go t.fetch()
}

// retryable reports whether a failed sub-call may be retried on another
// member: transport failures yes (pre-send ones certainly never reached a
// daemon; ambiguous ones ride the at-least-once contract), typed rejections
// no (the daemon answered).
func retryable(err error) bool {
	var se *StreamError
	return !errors.As(err, &se)
}

// sendGroup runs one member sub-call with the staleness and failover
// contract: the forwarded flag (from either attempt) marks the view stale,
// and a transport failure retries once on a different member.
func sendGroup[Res any](t *topoState, v *topoView, member string,
	call func(cl *StreamClient) (Res, bool, error)) (Res, error) {
	res, fwd, err := call(v.clients[member])
	if fwd {
		t.markStale(v.epoch)
	}
	if err == nil || !retryable(err) {
		return res, err
	}
	t.markStale(v.epoch)
	alt := v.alt(member)
	if alt == nil {
		return res, err
	}
	res, fwd, err2 := call(alt)
	if fwd {
		t.markStale(v.epoch)
	}
	if err2 != nil {
		return res, err2
	}
	return res, nil
}

// checkIn routes one check-in to its owner.
func (t *topoState) checkIn(ci server.CheckIn) (server.Assignment, error) {
	v := t.ensureView()
	if v == nil {
		asg, _, err := t.root.checkInOp(transport.OpCheckIn, ci, 0)
		return asg, err
	}
	return sendGroup(t, v, v.owner(ci.DeviceID), func(cl *StreamClient) (server.Assignment, bool, error) {
		return cl.checkInOp(transport.OpCheckIn, ci, 0)
	})
}

// report routes one report to its owner.
func (t *topoState) report(r server.Report) error {
	v := t.ensureView()
	if v == nil {
		_, err := t.root.reportOp(transport.OpReport, r, 0)
		return err
	}
	_, err := sendGroup(t, v, v.owner(r.DeviceID), func(cl *StreamClient) (struct{}, bool, error) {
		fwd, err := cl.reportOp(transport.OpReport, r, 0)
		return struct{}{}, fwd, err
	})
	return err
}

// partitioned is the shared batch engine: split items by owner under one
// view, send the sub-batches concurrently (one frame per owner), merge
// results back into request order. Sub-batch failures fail the whole call
// (matching plain batch semantics); per-item rejections stay per-item.
func partitioned[Req, Res any](t *topoState, items []Req, deviceID func(Req) string,
	plain func(cl *StreamClient, sub []Req) ([]Res, bool, error)) ([]Res, error) {
	v := t.ensureView()
	if v == nil || len(items) == 0 {
		res, _, err := plain(t.root, items)
		return res, err
	}
	// Single-owner fast path: an affinity-aligned fleet (or a one-member
	// ring) puts every item of a batch on the same owner, so the batch goes
	// out as-is — no index map, no sub-slice copy, no fan-out goroutine.
	first := v.owner(deviceID(items[0]))
	split := 1
	for ; split < len(items); split++ {
		if v.owner(deviceID(items[split])) != first {
			break
		}
	}
	if split == len(items) {
		return sendGroup(t, v, first, func(cl *StreamClient) ([]Res, bool, error) {
			return plain(cl, items)
		})
	}
	groups := make(map[string][]int)
	prefix := make([]int, split)
	for i := range prefix {
		prefix[i] = i
	}
	groups[first] = prefix
	for i := split; i < len(items); i++ {
		m := v.owner(deviceID(items[i]))
		groups[m] = append(groups[m], i)
	}
	out := make([]Res, len(items))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for m, idxs := range groups {
		wg.Add(1)
		go func(m string, idxs []int) {
			defer wg.Done()
			sub := make([]Req, len(idxs))
			for j, i := range idxs {
				sub[j] = items[i]
			}
			res, err := sendGroup(t, v, m, func(cl *StreamClient) ([]Res, bool, error) {
				return plain(cl, sub)
			})
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for j, i := range idxs {
				out[i] = res[j]
			}
		}(m, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func (t *topoState) checkInBatch(cis []server.CheckIn) ([]server.CheckInResult, error) {
	return partitioned(t, cis,
		func(ci server.CheckIn) string { return ci.DeviceID },
		func(cl *StreamClient, sub []server.CheckIn) ([]server.CheckInResult, bool, error) {
			return cl.checkInBatchOp(transport.OpCheckInBatch, sub, 0)
		})
}

func (t *topoState) reportBatch(rs []server.Report) ([]server.ReportResult, error) {
	return partitioned(t, rs,
		func(r server.Report) string { return r.DeviceID },
		func(cl *StreamClient, sub []server.Report) ([]server.ReportResult, bool, error) {
			return cl.reportBatchOp(transport.OpReportBatch, sub, 0)
		})
}

// TopologyEpoch reports the epoch of the client's current topology view (0
// when none is installed) and whether ring-aware routing is currently
// active. Primarily for harnesses and tests.
func (s *StreamClient) TopologyEpoch() (uint64, bool) {
	if s.topo == nil {
		return 0, false
	}
	s.topo.mu.Lock()
	defer s.topo.mu.Unlock()
	if s.topo.disabled || s.topo.view == nil {
		return 0, false
	}
	return s.topo.view.epoch, true
}

// InjectTopologyForTest force-installs a topology view, bypassing the fetch
// path. Tests use it to simulate a stale ring (e.g. a different vnode count
// than the servers') and then assert the forwarded-flag correction; it is
// not part of the supported API.
func (s *StreamClient) InjectTopologyForTest(epoch uint64, vnodes int, members []string) {
	if s.topo == nil {
		return
	}
	view := s.topo.buildView(transport.TopologyPayload{Epoch: epoch, VNodes: vnodes, Members: members})
	s.topo.mu.Lock()
	s.topo.view = view
	s.topo.mu.Unlock()
}
