module venn

go 1.24
