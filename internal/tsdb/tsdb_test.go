package tsdb

import (
	"testing"
	"testing/quick"

	"venn/internal/device"
	"venn/internal/simtime"
)

func TestRateSimple(t *testing.T) {
	db := New(4, 24*simtime.Hour, simtime.Hour)
	// 10 check-ins for cell 1 spread over one hour.
	for i := 0; i < 10; i++ {
		db.RecordCheckIn(1, simtime.Time(i)*simtime.Time(6*simtime.Minute))
	}
	now := simtime.Time(simtime.Hour)
	rate := db.RatePerHour(1, now)
	if rate < 9 || rate > 11 {
		t.Errorf("rate = %v, want ~10/h", rate)
	}
	if r := db.RatePerHour(0, now); r != 0 {
		t.Errorf("untouched cell rate = %v", r)
	}
}

func TestRateAveragesOverWindow(t *testing.T) {
	db := New(1, 24*simtime.Hour, simtime.Hour)
	// 24 check-ins in the first hour, nothing after: the 24h average at
	// t=24h must be ~1/h, not the momentary burst.
	for i := 0; i < 24; i++ {
		db.RecordCheckIn(0, simtime.Time(i)*simtime.Time(2*simtime.Minute))
	}
	rate := db.RatePerHour(0, simtime.Time(24*simtime.Hour))
	if rate < 0.9 || rate > 1.1 {
		t.Errorf("windowed rate = %v, want ~1/h", rate)
	}
}

func TestRingRecycling(t *testing.T) {
	db := New(1, 6*simtime.Hour, simtime.Hour)
	// Fill hour 0 heavily, then move two window-lengths away; the stale
	// bucket must be recycled rather than pollute the rate.
	for i := 0; i < 100; i++ {
		db.RecordCheckIn(0, 0)
	}
	late := simtime.Time(20 * simtime.Hour)
	db.RecordCheckIn(0, late)
	rate := db.RatePerHour(0, late.Add(simtime.Hour))
	if rate > 1 {
		t.Errorf("stale bucket leaked into rate: %v", rate)
	}
}

func TestTotalRate(t *testing.T) {
	db := New(3, 12*simtime.Hour, simtime.Hour)
	now := simtime.Time(simtime.Hour)
	db.RecordCheckIn(0, 0)
	db.RecordCheckIn(1, 0)
	db.RecordCheckIn(2, 0)
	total := db.TotalRatePerHour(now)
	sum := 0.0
	for c := 0; c < 3; c++ {
		sum += db.RatePerHour(device.CellID(c), now)
	}
	if total != sum {
		t.Errorf("TotalRatePerHour %v != sum %v", total, sum)
	}
}

func TestHasHistory(t *testing.T) {
	db := New(1, 24*simtime.Hour, simtime.Hour)
	if db.HasHistory(0, 1) {
		t.Error("fresh DB must not claim history")
	}
	for h := 0; h < 8; h++ {
		db.RecordCheckIn(0, simtime.Time(h)*simtime.Time(simtime.Hour))
	}
	now := simtime.Time(8 * simtime.Hour)
	if !db.HasHistory(now, 6) {
		t.Error("8 hours of buckets must satisfy 6h requirement")
	}
	if db.HasHistory(now, 20) {
		t.Error("8 hours of buckets must not satisfy 20h requirement")
	}
}

func TestOutOfRangeCells(t *testing.T) {
	db := New(2, 24*simtime.Hour, simtime.Hour)
	db.RecordCheckIn(-1, 0) // must not panic
	db.RecordCheckIn(5, 0)
	if db.RatePerHour(-1, simtime.Time(simtime.Hour)) != 0 {
		t.Error("out-of-range rate must be 0")
	}
	if db.RatePerHour(5, simtime.Time(simtime.Hour)) != 0 {
		t.Error("out-of-range rate must be 0")
	}
}

func TestConstructorDefaults(t *testing.T) {
	db := New(1, 0, 0)
	if db.Window() <= 0 {
		t.Error("degenerate constructor must produce a usable window")
	}
	if db.Cells() != 1 {
		t.Error("cell count lost")
	}
}

// TestRateConservationProperty: the sum of per-cell rates times the covered
// window equals the number of recorded (in-window) check-ins.
func TestRateConservationProperty(t *testing.T) {
	f := func(events []uint16) bool {
		db := New(4, 8*simtime.Hour, simtime.Hour)
		db.RecordCheckIn(0, 0) // anchor coverage at t=0
		var last simtime.Time
		n := 1
		for _, e := range events {
			cell := device.CellID(e % 4)
			// Keep all events inside the window so nothing expires.
			tm := simtime.Time(e%500) * simtime.Time(simtime.Minute/10)
			if tm < last {
				tm = last
			}
			last = tm
			db.RecordCheckIn(cell, tm)
			n++
		}
		if n == 0 {
			return true
		}
		now := last.Add(simtime.Minute)
		// Total rate * covered hours == n (all events in window).
		covered := now.Sub(0)
		if covered > db.Window() {
			return true // some events may have expired; skip
		}
		got := db.TotalRatePerHour(now) * covered.Hours()
		return got > float64(n)-0.01 && got < float64(n)+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
