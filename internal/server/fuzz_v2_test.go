package server

import (
	"encoding"
	"testing"
)

// FuzzCodecV2RoundTrip drives arbitrary bytes through every fixed-layout
// binary codec in bincodec.go (the wire protocol v2 payloads). For each
// wire type it demands:
//
//  1. UnmarshalBinary never panics and never over-allocates, whatever the
//     input claims (lying batch counts and string lengths are the classic
//     attack on length-prefixed formats).
//  2. What the decoder accepts re-marshals and re-parses to the same value
//     and the same bytes (round-trip stability). The first decode may
//     normalize (non-minimal varints re-encode minimally); from the second
//     generation on, bytes and values must be a fixed point.
//
// CI runs this with a short -fuzztime as a smoke pass alongside the v1
// JSON codec fuzz; grow the corpus locally with
// `go test -fuzz=FuzzCodecV2RoundTrip ./internal/server/`.
func FuzzCodecV2RoundTrip(f *testing.F) {
	// Seed with real encodings of representative values.
	seedVals := []interface{ MarshalBinary() ([]byte, error) }{
		&CheckIn{DeviceID: "dev-1", CPU: 0.5, Mem: 0.25},
		&Assignment{},
		&Assignment{Assigned: true, JobID: 3, Round: 2, JobName: "job", Policy: "venn"},
		&CheckInResult{Assignment: Assignment{Assigned: true, JobID: -1}},
		&CheckInResult{Error: "device busy"},
		&Report{DeviceID: "dev-1", JobID: 7, OK: true, DurationSeconds: 12.5},
		&ReportResult{Error: "unknown job"},
		&CheckInBatchRequest{CheckIns: []CheckIn{{DeviceID: "a", CPU: 1}, {DeviceID: "b"}}},
		&CheckInBatchResponse{Results: []CheckInResult{{}, {Error: "x"}}},
		&ReportBatchRequest{Reports: []Report{{DeviceID: "d", JobID: 7}}},
		&ReportBatchResponse{Results: []ReportResult{{}, {Error: "x"}}},
	}
	for sel := byte(0); sel < 9; sel++ {
		for _, v := range seedVals {
			if b, err := v.MarshalBinary(); err == nil {
				f.Add(sel, b)
			}
		}
		f.Add(sel, []byte{})
		f.Add(sel, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	}
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		switch sel % 9 {
		case 0:
			binRoundTrip[CheckIn](t, data)
		case 1:
			binRoundTrip[Assignment](t, data)
		case 2:
			binRoundTrip[CheckInResult](t, data)
		case 3:
			binRoundTrip[Report](t, data)
		case 4:
			binRoundTrip[ReportResult](t, data)
		case 5:
			binRoundTrip[CheckInBatchRequest](t, data)
		case 6:
			binRoundTrip[CheckInBatchResponse](t, data)
		case 7:
			binRoundTrip[ReportBatchRequest](t, data)
		case 8:
			binRoundTrip[ReportBatchResponse](t, data)
		}
	})
}

// binCodec is the method pair every v2 wire type implements.
type binCodec interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

func binRoundTrip[T any](t *testing.T, data []byte) {
	var v T
	u, ok := any(&v).(binCodec)
	if !ok {
		t.Fatalf("%T does not implement both binary codec directions", v)
	}
	if err := u.UnmarshalBinary(data); err != nil {
		return // rejected input — fine, as long as it didn't panic
	}
	buf, err := u.MarshalBinary()
	if err != nil {
		t.Fatalf("accepted %q but cannot re-marshal: %v", data, err)
	}
	var v2 T
	u2 := any(&v2).(binCodec)
	if err := u2.UnmarshalBinary(buf); err != nil {
		t.Fatalf("own output %x does not re-parse: %v", buf, err)
	}
	buf2, err := u2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Byte equality across generations is the invariant (not DeepEqual:
	// float fields may legitimately hold NaN, which never compares equal
	// to itself). The encoder is a pure function of the value, so stable
	// bytes prove the decoded values agree bit-for-bit.
	if string(buf) != string(buf2) {
		t.Fatalf("marshal not stable:\n first  %x\n second %x\n input %q", buf, buf2, data)
	}
}
