// Command tracegen synthesizes and inspects the input traces the simulator
// replays: device fleets (capacity + diurnal availability) and CL job demand
// traces.
//
// Usage:
//
//	tracegen -devices 5000 -days 4 -out fleet.json
//	tracegen -summary            # print trace statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"venn/internal/eval"
	"venn/internal/simtime"
	"venn/internal/trace"
)

func main() {
	var (
		devices = flag.Int("devices", 5000, "fleet size")
		days    = flag.Int("days", 4, "horizon in days")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "write fleet JSON to this path")
		summary = flag.Bool("summary", true, "print trace summaries")
	)
	flag.Parse()

	fleet := trace.GenerateFleet(trace.FleetConfig{
		NumDevices: *devices,
		Horizon:    simtime.Duration(*days) * simtime.Day,
		Seed:       *seed,
	})

	if *summary {
		fmt.Printf("fleet: %d devices, horizon %d days\n", *devices, *days)
		counts := fleet.CategoryCounts()
		for _, name := range []string{"General", "Compute-Rich", "Memory-Rich", "High-Perf"} {
			fmt.Printf("  %-13s %5d devices (%.1f%%)\n", name, counts[name],
				100*float64(counts[name])/float64(*devices))
		}
		frac := trace.OnlineFraction(fleet.Intervals, fleet.Horizon, simtime.Hour)
		lo, hi := frac[0], frac[0]
		for _, f := range frac {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		fmt.Printf("  online fraction ranges %.1f%% .. %.1f%% (diurnal)\n", 100*lo, 100*hi)

		rounds, demand := eval.JobTraceSummary(1000, *seed)
		fmt.Printf("job demand trace (1000 jobs):\n")
		fmt.Printf("  rounds:       %v\n", rounds)
		fmt.Printf("  demand/round: %v\n", demand)
	}

	if *out != "" {
		if err := fleet.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
