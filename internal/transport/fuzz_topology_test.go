package transport

import (
	"testing"
)

// FuzzTopologyRoundTrip drives arbitrary bytes through the OpTopology
// payload codec with the same contract the serving-codec fuzzes pin:
//
//  1. UnmarshalBinary never panics and never over-allocates, whatever the
//     input's member count or lengths claim.
//  2. What the decoder accepts re-marshals and re-parses to the same bytes
//     from the second generation on (non-minimal varints may normalize
//     once) — the fixed-point property ring-aware clients rely on.
//
// CI runs this with a short -fuzztime as a smoke pass; grow the corpus
// locally with `go test -fuzz=FuzzTopologyRoundTrip ./internal/transport/`.
func FuzzTopologyRoundTrip(f *testing.F) {
	seeds := []TopologyPayload{
		{},
		{Epoch: 1, VNodes: 128, Members: []string{"127.0.0.1:8081"}},
		{Epoch: 42, VNodes: 128, Members: []string{"a:1", "b:2", "c:3"}},
		{Epoch: 1<<63 + 7, VNodes: 1, Members: []string{""}},
	}
	for _, tp := range seeds {
		if b, err := tp.MarshalBinary(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tp TopologyPayload
		if err := tp.UnmarshalBinary(data); err != nil {
			return // rejected input — fine, as long as it didn't panic
		}
		buf, err := tp.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted %q but cannot re-marshal: %v", data, err)
		}
		var tp2 TopologyPayload
		if err := tp2.UnmarshalBinary(buf); err != nil {
			t.Fatalf("own output %x does not re-parse: %v", buf, err)
		}
		buf2, err := tp2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatalf("marshal not stable:\n first  %x\n second %x\n input %q", buf, buf2, data)
		}
	})
}
