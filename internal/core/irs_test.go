package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"venn/internal/device"
)

// twoGroupSetup builds the Appendix D scenario: group A (General, 100% of
// supply eligible) and group B (High-Mem, x% eligible), on a 1x2 cell grid.
func twoGroupSetup(x float64, queueA, queueB float64) (groups []*GroupState, rates []float64, grid *device.Grid) {
	reqA := device.Requirement{Name: "A", MinMem: 0}
	reqB := device.Requirement{Name: "B", MinMem: 0.5}
	grid = device.NewGrid([]device.Requirement{reqA, reqB})
	rates = make([]float64, grid.NumCells())
	// Cell for mem < 0.5 gets rate 100-x, cell for mem >= 0.5 gets x.
	lowCell := grid.CellOf(0, 0)
	highCell := grid.CellOf(0, 0.9)
	rates[lowCell] = 100 - x
	rates[highCell] = x
	regionA := grid.RegionOf(reqA)
	regionB := grid.RegionOf(reqB)
	groups = []*GroupState{
		{Region: regionA, Supply: 100, Queue: queueA},
		{Region: regionB, Supply: x, Queue: queueB},
	}
	return groups, rates, grid
}

func TestInitialAllocationScarcestFirst(t *testing.T) {
	groups, rates, _ := twoGroupSetup(20, 1, 1)
	ComputeAllocation(groups, rates)
	a, b := groups[0], groups[1]
	// B is scarcer: it must own its whole region; A gets the rest.
	if !b.Alloc.Equal(b.Region) {
		t.Errorf("scarce group alloc = %v, want its full region %v", b.Alloc, b.Region)
	}
	if b.Alloc.Overlaps(a.Alloc) {
		t.Error("allocations must be disjoint")
	}
	if a.AllocRate != 80 || b.AllocRate != 20 {
		t.Errorf("alloc rates = %v, %v; want 80, 20", a.AllocRate, b.AllocRate)
	}
}

func TestCrossGroupStealWhenQueuePressureHigher(t *testing.T) {
	// A has a much longer queue per allocated rate than B: A should take
	// the intersected (high-mem) cell from B.
	groups, rates, _ := twoGroupSetup(20, 50, 1)
	ComputeAllocation(groups, rates)
	a, b := groups[0], groups[1]
	// pressure(A) = 50/80 = 0.625 > pressure(B) = 1/20 = 0.05 -> steal.
	if b.AllocRate != 0 {
		t.Errorf("B should have been stripped, has rate %v", b.AllocRate)
	}
	if a.AllocRate != 100 {
		t.Errorf("A should own everything, has %v", a.AllocRate)
	}
}

func TestCrossGroupNoStealWhenPressureLower(t *testing.T) {
	// B's queue pressure dominates: no steal.
	groups, rates, _ := twoGroupSetup(20, 1, 50)
	ComputeAllocation(groups, rates)
	a, b := groups[0], groups[1]
	if b.AllocRate != 20 {
		t.Errorf("B must keep its region: rate %v", b.AllocRate)
	}
	if a.AllocRate != 80 {
		t.Errorf("A rate = %v, want 80", a.AllocRate)
	}
}

func TestStealThresholdMatchesLemma(t *testing.T) {
	// Lemma 2: prioritize A iff m'_A/(1-x) > m'_B/x  (rates as fractions).
	// With x=20%: steal iff qA/80 > qB/20, i.e. qA > 4*qB.
	for _, c := range []struct {
		qA, qB float64
		steal  bool
	}{
		{9, 2, true},   // 9/80 > 2/20? 0.1125 > 0.1 -> steal
		{7, 2, false},  // 0.0875 < 0.1 -> keep
		{41, 10, true}, // 0.5125 > 0.5
		{39, 10, false},
	} {
		groups, rates, _ := twoGroupSetup(20, c.qA, c.qB)
		ComputeAllocation(groups, rates)
		b := groups[1]
		stole := b.AllocRate == 0
		if stole != c.steal {
			t.Errorf("qA=%v qB=%v: steal=%v, want %v", c.qA, c.qB, stole, c.steal)
		}
	}
}

func TestAllocationDisjointAndCompleteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		reqs := make([]device.Requirement, n)
		for i := range reqs {
			reqs[i] = device.Requirement{
				MinCPU: float64(rng.Intn(8)) / 8,
				MinMem: float64(rng.Intn(8)) / 8,
			}
		}
		grid := device.NewGrid(reqs)
		rates := make([]float64, grid.NumCells())
		for c := range rates {
			rates[c] = rng.Float64() * 100
		}
		groups := make([]*GroupState, n)
		union := grid.EmptySet()
		for i := range groups {
			region := grid.RegionOf(reqs[i])
			supply := 0.0
			region.ForEach(func(c device.CellID) { supply += rates[c] })
			groups[i] = &GroupState{
				Region: region,
				Supply: supply,
				Queue:  float64(rng.Intn(20) + 1),
			}
			union = union.Union(region)
		}
		ComputeAllocation(groups, rates)
		// Disjointness.
		seen := grid.EmptySet()
		for _, g := range groups {
			if g.Alloc.Overlaps(seen) {
				return false
			}
			seen = seen.Union(g.Alloc)
			// A group can only hold cells it is eligible for.
			if !g.Region.ContainsSet(g.Alloc) {
				return false
			}
		}
		// Coverage: every cell of the union is owned by someone.
		return seen.Equal(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuildCellPlanOwnerFirst(t *testing.T) {
	groups, rates, grid := twoGroupSetup(20, 1, 1)
	ComputeAllocation(groups, rates)
	plan := BuildCellPlan(groups, grid.NumCells())
	highCell := grid.CellOf(0, 0.9)
	lowCell := grid.CellOf(0, 0)
	// High cell: owner is B (index 1), then A.
	if got := plan.Order[highCell]; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("high cell order = %v, want [1 0]", got)
	}
	// Low cell: only A is eligible.
	if got := plan.Order[lowCell]; len(got) != 1 || got[0] != 0 {
		t.Errorf("low cell order = %v, want [0]", got)
	}
}

func TestBuildCellPlanFallbackScarcestFirst(t *testing.T) {
	// Three overlapping groups on the standard 2x2 grid.
	cats := device.Categories()
	grid := device.NewGrid(cats)
	rates := []float64{50, 20, 20, 10}
	mk := func(req device.Requirement, q float64) *GroupState {
		region := grid.RegionOf(req)
		s := 0.0
		region.ForEach(func(c device.CellID) { s += rates[c] })
		return &GroupState{Region: region, Supply: s, Queue: q}
	}
	groups := []*GroupState{mk(device.General, 1), mk(device.ComputeRich, 1), mk(device.HighPerf, 1)}
	ComputeAllocation(groups, rates)
	plan := BuildCellPlan(groups, grid.NumCells())
	// The high/high cell (3) must list HighPerf (owner, idx 2) first,
	// then ComputeRich (scarcer) before General.
	got := plan.Order[3]
	if len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("cell 3 order = %v, want [2 1 0]", got)
	}
}

func TestPressureSafeDivision(t *testing.T) {
	if p := pressure(5, 0); p <= 1e300 {
		t.Error("starved group with queue must have infinite pressure")
	}
	if p := pressure(0, 0); p != 0 {
		t.Error("empty group with no supply must have zero pressure")
	}
	if p := pressure(4, 2); p != 2 {
		t.Errorf("pressure = %v, want 2", p)
	}
}

func TestComputeAllocationEmpty(t *testing.T) {
	ComputeAllocation(nil, nil) // must not panic
	plan := BuildCellPlan(nil, 4)
	for _, o := range plan.Order {
		if len(o) != 0 {
			t.Error("empty plan must have empty orders")
		}
	}
}
