package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// toyInstance is the paper's Figure 3 example: devices arrive one per time
// unit alternating Emoji-eligible (jobs 1,2 and the keyboard job 0) and
// keyboard-only; demands are 3, 4, 4.
func toyInstance() OptInstance {
	const q = 18
	inst := OptInstance{Demands: []int{3, 4, 4}}
	for i := 1; i <= q; i++ {
		inst.ArrivalTimes = append(inst.ArrivalTimes, float64(i))
		if i%2 == 1 {
			inst.Eligible = append(inst.Eligible, 0b111) // emoji-capable
		} else {
			inst.Eligible = append(inst.Eligible, 0b001) // keyboard only
		}
	}
	return inst
}

func TestBruteForceMatchesPaperToy(t *testing.T) {
	inst := toyInstance()
	got := BruteForceAvgDelay(inst)
	// The paper's optimal schedule achieves (6+7+15)/3 = 9.33.
	if math.Abs(got-28.0/3.0) > 1e-9 {
		t.Errorf("optimal avg delay = %v, want %v", got, 28.0/3.0)
	}
	// The best fixed-order schedule achieves the same optimum here.
	if best := BestOrderAvgDelay(inst); math.Abs(best-got) > 1e-9 {
		t.Errorf("best-order %v != optimal %v on the toy example", best, got)
	}
	// SRSF order (keyboard first: demand 3 < 4) is strictly worse.
	srsf := GreedyOrderAvgDelay(inst, []int{0, 1, 2})
	if srsf <= got {
		t.Errorf("SRSF-style order %v should be worse than optimal %v", srsf, got)
	}
}

func TestGreedyOrderInfeasible(t *testing.T) {
	inst := OptInstance{
		ArrivalTimes: []float64{1, 2},
		Eligible:     []uint32{0b01, 0b01},
		Demands:      []int{1, 1}, // job 1 has no eligible device
	}
	if v := GreedyOrderAvgDelay(inst, []int{0, 1}); !math.IsInf(v, 1) {
		t.Errorf("infeasible instance must be +Inf, got %v", v)
	}
	if v := BruteForceAvgDelay(inst); !math.IsInf(v, 1) {
		t.Errorf("infeasible brute force must be +Inf, got %v", v)
	}
}

// TestFixedOrderFamilyNearOptimalProperty compares the best fixed-job-order
// schedule (the family Venn searches) against the true optimum on random
// small instances: it must never beat the optimum, and on the nested/
// overlapping eligibility structures IRS targets it should match it most of
// the time. We assert a worst-case approximation factor of 1.5 — far tighter
// than anything a bad heuristic family would satisfy.
func TestFixedOrderFamilyNearOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(2) + 2 // 2-3 jobs
		q := rng.Intn(5) + 7 // 7-11 devices
		inst := OptInstance{Demands: make([]int, m)}
		total := 0
		for j := range inst.Demands {
			inst.Demands[j] = rng.Intn(3) + 1
			total += inst.Demands[j]
		}
		if total > q {
			return true // likely infeasible; skip
		}
		tm := 0.0
		for i := 0; i < q; i++ {
			tm += rng.Float64()*3 + 0.5
			inst.ArrivalTimes = append(inst.ArrivalTimes, tm)
			// Nested eligibility: device tier k serves jobs 0..k.
			tier := rng.Intn(m)
			mask := uint32(0)
			for j := 0; j <= tier; j++ {
				mask |= 1 << uint(j)
			}
			inst.Eligible = append(inst.Eligible, mask)
		}
		opt := BruteForceAvgDelay(inst)
		if math.IsInf(opt, 1) {
			return true
		}
		best := BestOrderAvgDelay(inst)
		if best < opt-1e-9 {
			return false // impossible: family is a subset of schedules
		}
		return best <= opt*1.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVennOrderingQualityOnToy drives the full heuristic pipeline
// (grouping, scarcest-first allocation, per-cell priority) conceptually: the
// order it induces on the toy instance — emoji jobs before keyboard on
// emoji-eligible devices — matches the best order.
func TestVennOrderingQualityOnToy(t *testing.T) {
	inst := toyInstance()
	// Venn's per-cell plan puts the scarce (emoji) group first on emoji
	// devices; within the emoji group, smaller remaining demand first.
	// For equal demands the job order is ID order: 1 then 2, keyboard
	// last on shared devices.
	venn := GreedyOrderAvgDelay(inst, []int{1, 2, 0})
	best := BestOrderAvgDelay(inst)
	if math.Abs(venn-best) > 1e-9 {
		t.Errorf("Venn-style order %v != best order %v", venn, best)
	}
}
