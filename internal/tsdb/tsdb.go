// Package tsdb implements the small time-series database Venn uses to track
// device eligibility over time (§4.4, "Dynamic resource supply"). Device
// check-ins are recorded per atomic grid cell into fixed-width time buckets;
// the scheduler queries the average arrival rate per cell over a trailing
// window (24 hours by default) so that its supply estimates are farsighted
// and robust to the diurnal availability pattern rather than reacting to the
// momentary rate.
package tsdb

import (
	"venn/internal/device"
	"venn/internal/simtime"
)

// DB records per-cell device check-in counts in a ring of time buckets.
// The zero value is not usable; create with New.
type DB struct {
	bucketWidth simtime.Duration
	numBuckets  int
	cells       int

	// counts[cell][bucketIndex % numBuckets]
	counts [][]float64
	// bucketStart[b] is the absolute start time the ring slot currently
	// represents; slots are lazily recycled as time advances.
	bucketStart []simtime.Time
	lastTime    simtime.Time
	// firstTime is the earliest recorded instant; -1 before any record.
	// Coverage for rate averaging runs from max(firstTime, now-window)
	// to now, so silent periods correctly count as zero-rate time.
	firstTime simtime.Time
}

// New creates a DB covering `window` of history at `bucketWidth` resolution
// for a grid with `cells` atomic cells.
func New(cells int, window, bucketWidth simtime.Duration) *DB {
	if bucketWidth <= 0 {
		bucketWidth = simtime.Hour
	}
	if window < bucketWidth {
		window = bucketWidth
	}
	n := int(window / bucketWidth)
	if n < 1 {
		n = 1
	}
	db := &DB{
		bucketWidth: bucketWidth,
		numBuckets:  n,
		cells:       cells,
		counts:      make([][]float64, cells),
		bucketStart: make([]simtime.Time, n),
	}
	for i := range db.counts {
		db.counts[i] = make([]float64, n)
	}
	for i := range db.bucketStart {
		db.bucketStart[i] = -1
	}
	db.firstTime = -1
	return db
}

// Window returns the amount of history the DB retains.
func (db *DB) Window() simtime.Duration {
	return db.bucketWidth * simtime.Duration(db.numBuckets)
}

// Cells returns the number of tracked cells.
func (db *DB) Cells() int { return db.cells }

// slotFor returns the ring slot for time t, recycling it if it holds data
// from an older wrap of the ring.
func (db *DB) slotFor(t simtime.Time) int {
	bucket := int64(t) / int64(db.bucketWidth)
	slot := int(bucket % int64(db.numBuckets))
	start := simtime.Time(bucket * int64(db.bucketWidth))
	if db.bucketStart[slot] != start {
		db.bucketStart[slot] = start
		for c := range db.counts {
			db.counts[c][slot] = 0
		}
	}
	return slot
}

// RecordCheckIn notes one device check-in for the given cell at time t.
// Times must be non-decreasing across calls (simulation order).
func (db *DB) RecordCheckIn(cell device.CellID, t simtime.Time) {
	db.RecordCheckIns(cell, 1, t)
}

// RecordCheckIns notes n device check-ins for the given cell at time t in
// one call — the bulk entry point for callers (like the live server) that
// batch check-in counts outside their scheduler lock and drain them
// periodically.
func (db *DB) RecordCheckIns(cell device.CellID, n int, t simtime.Time) {
	if n <= 0 || int(cell) < 0 || int(cell) >= db.cells {
		return
	}
	slot := db.slotFor(t)
	db.counts[cell][slot] += float64(n)
	if t > db.lastTime {
		db.lastTime = t
	}
	if db.firstTime < 0 || t < db.firstTime {
		db.firstTime = t
	}
}

// coveredWindow returns the span of observed history inside the trailing
// window ending at now.
func (db *DB) coveredWindow(now simtime.Time) simtime.Duration {
	if db.firstTime < 0 || now <= db.firstTime {
		return 0
	}
	start := db.firstTime
	if cutoff := now.Add(-db.Window()); cutoff > start {
		start = cutoff
	}
	return now.Sub(start)
}

// RatePerHour returns the average check-in rate (devices/hour) for the cell
// over the trailing window ending at now. Buckets that predate the window or
// postdate now contribute nothing. If no history exists yet, returns 0.
func (db *DB) RatePerHour(cell device.CellID, now simtime.Time) float64 {
	if int(cell) < 0 || int(cell) >= db.cells {
		return 0
	}
	cutoff := now.Add(-db.Window())
	total := 0.0
	for slot := 0; slot < db.numBuckets; slot++ {
		start := db.bucketStart[slot]
		if start < 0 {
			continue
		}
		end := start.Add(db.bucketWidth)
		if end <= cutoff || start > now {
			continue
		}
		total += db.counts[cell][slot]
	}
	covered := db.coveredWindow(now)
	if covered <= 0 {
		return 0
	}
	return total / covered.Hours()
}

// Rates returns RatePerHour for every cell.
func (db *DB) Rates(now simtime.Time) []float64 {
	out := make([]float64, db.cells)
	for c := range out {
		out[c] = db.RatePerHour(device.CellID(c), now)
	}
	return out
}

// TotalRatePerHour returns the fleet-wide check-in rate over the window.
func (db *DB) TotalRatePerHour(now simtime.Time) float64 {
	total := 0.0
	for c := 0; c < db.cells; c++ {
		total += db.RatePerHour(device.CellID(c), now)
	}
	return total
}

// HasHistory reports whether at least minHours of history has been observed
// at time now — before that, callers should blend in the capacity-model
// prior instead of trusting the measured rates.
func (db *DB) HasHistory(now simtime.Time, minHours float64) bool {
	return db.coveredWindow(now).Hours() >= minHours
}
