package obs

import (
	"sync/atomic"
	"time"
)

// Stage labels one timed segment of a request's path through the daemon.
type Stage uint8

const (
	StageRead      Stage = iota // frame payload read off the socket
	StageDecode                 // wire payload decode into the typed request
	StageQueueWait              // combiner queue wait (core_wait, per request)
	StageApply                  // scheduler-core apply under the commit path
	StageHop                    // federation forward round-trip (origin side)
	StageEncode                 // response payload encode
	StageWrite                  // response write (out-queue wait + syscall)
	NumStages
)

var stageNames = [NumStages]string{"read", "decode", "queue_wait", "apply", "hop", "encode", "write"}

func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// Op labels the request kind a histogram or span tracks. The names line up
// with the server's route labels so the JSON and Prometheus views agree.
type Op uint8

const (
	OpCheckIn Op = iota
	OpCheckInBatch
	OpReport
	OpReportBatch
	OpJobs
	OpOther
	NumOps
)

var opNames = [NumOps]string{"checkin", "checkin_batch", "report", "report_batch", "jobs", "other"}

func (op Op) String() string {
	if op < NumOps {
		return opNames[op]
	}
	return "unknown"
}

// DefaultSampleEvery is the default span sampling rate: 1 in N served
// requests carries a full per-stage span (and a flight-recorder entry).
const DefaultSampleEvery = 64

// Registry owns every histogram, the sampler, and the flight recorder for
// one daemon. All methods are safe for concurrent use.
type Registry struct {
	sampleEvery uint64 // 0 = per-stage sampling off
	tick        atomic.Uint64
	seed        uint64
	seq         atomic.Uint64
	start       time.Time
	total       [NumOps]Hist
	stage       [NumOps][NumStages]Hist
	flight      Flight
}

// NewRegistry builds a registry sampling 1 in sampleEvery requests. 0
// selects DefaultSampleEvery; a negative value disables spans, trace
// propagation, and the flight recorder entirely (the always-on per-op total
// histograms keep recording — they are the cheap path).
func NewRegistry(sampleEvery int) *Registry {
	r := &Registry{start: time.Now()}
	switch {
	case sampleEvery == 0:
		r.sampleEvery = DefaultSampleEvery
	case sampleEvery > 0:
		r.sampleEvery = uint64(sampleEvery)
	}
	r.seed = uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 | 1
	return r
}

// SampleEvery reports the active sampling rate, 0 when sampling is off.
func (r *Registry) SampleEvery() int { return int(r.sampleEvery) }

// Uptime is the time since the registry (in practice, the daemon) started.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Flight is the registry's flight recorder.
func (r *Registry) Flight() *Flight { return &r.flight }

// ObserveTotal records one request's end-to-end handler latency — the
// always-on path, independent of sampling.
func (r *Registry) ObserveTotal(op Op, d time.Duration) {
	if r == nil {
		return
	}
	r.total[op].Observe(int64(d))
}

// TotalSnapshot copies op's always-on end-to-end histogram.
func (r *Registry) TotalSnapshot(op Op) HistSnapshot { return r.total[op].Snapshot() }

// StageSnapshot copies op's sampled histogram for one stage.
func (r *Registry) StageSnapshot(op Op, st Stage) HistSnapshot { return r.stage[op][st].Snapshot() }

// newTraceID derives a unique well-mixed trace ID (splitmix64 over a
// process-random seed and a sequence counter); never 0, which is the wire's
// "no trace" value.
func (r *Registry) newTraceID() uint64 {
	z := r.seed + r.seq.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Sample starts a span for 1 in SampleEvery requests and returns nil for
// the rest (a nil *Span is valid everywhere). The unsampled cost is one
// atomic add.
func (r *Registry) Sample(op Op) *Span {
	if r == nil {
		return nil
	}
	n := r.sampleEvery
	if n == 0 || r.tick.Add(1)%n != 0 {
		return nil
	}
	return &Span{reg: r, op: op, traceID: r.newTraceID(), start: time.Now()}
}

// StartTraced starts a forced span carrying a remote trace ID — the
// receiving side of a federation hop whose origin sampled the request. The
// hop inherits the origin's sampling decision so both daemons record the
// same trace; nil when sampling is disabled locally.
func (r *Registry) StartTraced(op Op, traceID uint64) *Span {
	if r == nil || r.sampleEvery == 0 || traceID == 0 {
		return nil
	}
	return &Span{reg: r, op: op, traceID: traceID, hop: true, start: time.Now()}
}

// Span is one sampled request's stage record. Mark may be called from any
// goroutine (batch forwards fan out); durations for one stage accumulate.
// Every method is safe on a nil receiver.
type Span struct {
	reg     *Registry
	op      Op
	traceID uint64
	hop     bool // serving the remote side of a federation hop
	start   time.Time
	stages  [NumStages]atomic.Int64
	err     atomic.Bool
	fwd     atomic.Bool
	done    atomic.Bool
}

// Mark attributes d to stage st.
func (s *Span) Mark(st Stage, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.stages[st].Add(int64(d))
}

// TraceID is the span's wire trace ID, 0 for a nil (unsampled) span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SetError flags the request as failed.
func (s *Span) SetError() {
	if s != nil {
		s.err.Store(true)
	}
}

// SetForwarded flags that at least part of the request crossed a
// federation hop.
func (s *Span) SetForwarded() {
	if s != nil {
		s.fwd.Store(true)
	}
}

// Finish seals the span: stage durations land in the registry's sampled
// histograms and the request joins the flight recorder. Idempotent.
func (s *Span) Finish() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	rec := Record{
		TraceID:       s.traceID,
		Op:            s.op.String(),
		Hop:           s.hop,
		Error:         s.err.Load(),
		Forwarded:     s.fwd.Load(),
		StartUnixNano: s.start.UnixNano(),
		TotalNs:       int64(time.Since(s.start)),
	}
	for st := Stage(0); st < NumStages; st++ {
		ns := s.stages[st].Load()
		if ns > 0 {
			s.reg.stage[s.op][st].Observe(ns)
			rec.StageNs[st] = ns
		}
	}
	s.reg.flight.record(rec)
}
