package eval

import (
	"strings"
	"testing"

	"venn/internal/job"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Title", "A", "LongHeader")
	tb.AddRow("x", 1.2345)
	tb.AddRow("longercell", "v")
	tb.Caption = "cap"
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "LongHeader") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	if !strings.Contains(out, "1.23") {
		t.Error("floats must render with 2 decimals")
	}
	if lines[len(lines)-1] != "cap" {
		t.Errorf("caption line = %q", lines[len(lines)-1])
	}
	// All data rows should be at least as wide as the header's columns.
	if len(lines[3]) < len("longercell") {
		t.Error("row width too small")
	}
}

func TestFormatSpeedup(t *testing.T) {
	if got := FormatSpeedup(1.875); got != "1.88x" {
		t.Errorf("FormatSpeedup = %q", got)
	}
}

func TestJobTraceSummaryRanges(t *testing.T) {
	rounds, demand := JobTraceSummary(500, 3)
	if rounds.Min < 10 || rounds.Max > 4000 {
		t.Errorf("rounds out of Fig 8b range: %v", rounds)
	}
	if demand.Min < 10 || demand.Max > 1500 {
		t.Errorf("demand out of Fig 8b range: %v", demand)
	}
	if rounds.Mean <= rounds.Min || rounds.Mean >= rounds.Max {
		t.Error("mean must be interior")
	}
}

func TestSpeedupOverSubsetEdges(t *testing.T) {
	setup := NewSetup(ScaleQuick, 31)
	cmp, err := Compare(setup, pick(StandardSchedulers(), "Random", "Venn"))
	if err != nil {
		t.Fatal(err)
	}
	venn, random := cmp.Results["Venn"], cmp.Results["Random"]
	// Empty subset yields 0.
	if sp := SpeedupOverSubset(venn, random, func(j *job.Job) bool { return false }); sp != 0 {
		t.Errorf("empty subset speedup = %v", sp)
	}
	// Full subset equals SpeedupOver.
	full := SpeedupOverSubset(venn, random, func(j *job.Job) bool { return true })
	if want := venn.SpeedupOver(random); full != want {
		t.Errorf("full-subset %v != SpeedupOver %v", full, want)
	}
}
