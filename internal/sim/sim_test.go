package sim

import (
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
)

// fifoSched is a minimal in-package FIFO scheduler for engine tests.
type fifoSched struct {
	env  *Env
	open []*job.Job
}

func (s *fifoSched) Name() string  { return "test-fifo" }
func (s *fifoSched) Bind(env *Env) { s.env = env }
func (s *fifoSched) OnJobArrival(j *job.Job, now simtime.Time) {
}
func (s *fifoSched) OnRequest(j *job.Job, now simtime.Time) {
	for _, o := range s.open {
		if o.ID == j.ID {
			return
		}
	}
	s.open = append(s.open, j)
}
func (s *fifoSched) OnRequestFulfilled(j *job.Job, now simtime.Time) { s.remove(j.ID) }
func (s *fifoSched) OnJobDone(j *job.Job, now simtime.Time)          { s.remove(j.ID) }
func (s *fifoSched) remove(id job.ID) {
	for i, o := range s.open {
		if o.ID == id {
			s.open = append(s.open[:i], s.open[i+1:]...)
			return
		}
	}
}
func (s *fifoSched) Assign(d *device.Device, now simtime.Time) *job.Job {
	for _, j := range s.open {
		if j.State() == job.StateScheduling && j.RemainingDemand() > 0 && j.Requirement.Eligible(d) {
			return j
		}
	}
	return nil
}
func (s *fifoSched) ObserveResponse(*job.Job, *device.Device, simtime.Duration, simtime.Time) {}

// uniformFleet builds n always-on identical devices over the horizon.
func uniformFleet(n int, horizon simtime.Duration, cpu, mem float64) *trace.Fleet {
	f := &trace.Fleet{Horizon: horizon}
	for i := 0; i < n; i++ {
		f.Devices = append(f.Devices, device.New(device.ID(i), cpu, mem))
		f.Intervals = append(f.Intervals, []trace.Interval{{Start: 0, End: simtime.Time(horizon)}})
	}
	return f
}

func quietResponse() ResponseModel {
	return ResponseModel{Median: 10 * simtime.Second, P95: 20 * simtime.Second, DisableFailures: true}
}

func TestEngineRunsSimpleJob(t *testing.T) {
	fleet := uniformFleet(20, simtime.Day, 0.8, 0.8)
	j := job.New(0, device.General, 5, 2, 0)
	eng, err := NewEngine(Config{
		Fleet:     fleet,
		Jobs:      []*job.Job{j},
		Scheduler: &fifoSched{},
		Response:  quietResponse(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if len(res.Completed) != 1 {
		t.Fatalf("job did not complete: %v", res)
	}
	if res.Assignments < 10 {
		t.Errorf("expected >= 10 assignments (2 rounds x 5), got %d", res.Assignments)
	}
	if res.AvgJCT <= 0 {
		t.Error("AvgJCT must be positive")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		fleet := trace.GenerateFleet(trace.FleetConfig{NumDevices: 300, Horizon: 2 * simtime.Day, Seed: 3})
		jobs := []*job.Job{
			job.New(0, device.General, 10, 3, 0),
			job.New(1, device.ComputeRich, 8, 2, simtime.Time(simtime.Hour)),
		}
		eng, err := NewEngine(Config{Fleet: fleet, Jobs: jobs, Scheduler: &fifoSched{}, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}
	a, b := run(), run()
	if a.Assignments != b.Assignments || a.Responses != b.Responses || a.AvgJCT != b.AvgJCT {
		t.Errorf("engine is not deterministic: %v vs %v", a, b)
	}
}

func TestOneTaskPerDay(t *testing.T) {
	// 5 devices, one job needing 3 devices x 4 rounds, all-day availability:
	// each device may serve at most one task per day, so at most 5
	// assignments can happen on day one.
	fleet := uniformFleet(5, 3*simtime.Day, 0.9, 0.9)
	j := job.New(0, device.General, 3, 4, 0)
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: []*job.Job{j}, Scheduler: &fifoSched{},
		Response: quietResponse(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	// 4 rounds x 3 = 12 assignments over >= 3 days at 5/day: round 2
	// cannot finish on day one. The job finishes only if the horizon
	// admits ceil(12/5) = 3 days, which it does (exactly).
	if res.Assignments > 15 {
		t.Errorf("more assignments than the per-day budget allows: %d", res.Assignments)
	}
	if len(res.Completed) == 1 {
		if res.Completed[0].JCT() < simtime.Duration(2*simtime.Day)-simtime.Duration(simtime.Hour) {
			t.Errorf("JCT %v too small for the per-day budget", res.Completed[0].JCT())
		}
	}
}

func TestIneligibleAssignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("assigning an ineligible device must panic")
		}
	}()
	fleet := uniformFleet(3, simtime.Day, 0.1, 0.1) // low-end devices only
	j := job.New(0, device.HighPerf, 1, 1, 0)
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: []*job.Job{j},
		Scheduler: &badSched{target: j}, Response: quietResponse(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

// badSched assigns every device to its target regardless of eligibility.
type badSched struct {
	env    *Env
	target *job.Job
}

func (s *badSched) Name() string                                                             { return "bad" }
func (s *badSched) Bind(env *Env)                                                            { s.env = env }
func (s *badSched) OnJobArrival(*job.Job, simtime.Time)                                      {}
func (s *badSched) OnRequest(*job.Job, simtime.Time)                                         {}
func (s *badSched) OnRequestFulfilled(*job.Job, simtime.Time)                                {}
func (s *badSched) OnJobDone(*job.Job, simtime.Time)                                         {}
func (s *badSched) ObserveResponse(*job.Job, *device.Device, simtime.Duration, simtime.Time) {}
func (s *badSched) Assign(d *device.Device, now simtime.Time) *job.Job {
	if s.target.State() == job.StateScheduling && s.target.RemainingDemand() > 0 {
		return s.target
	}
	return nil
}

func TestConfigValidation(t *testing.T) {
	fleet := uniformFleet(2, simtime.Day, 0.5, 0.5)
	j := job.New(0, device.General, 1, 1, 0)
	cases := []Config{
		{Jobs: []*job.Job{j}, Scheduler: &fifoSched{}},                  // no fleet
		{Fleet: fleet, Scheduler: &fifoSched{}},                         // no jobs
		{Fleet: fleet, Jobs: []*job.Job{j}},                             // no scheduler
		{Fleet: fleet, Jobs: []*job.Job{j, j}, Scheduler: &fifoSched{}}, // dup IDs
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestResponseModelScaling(t *testing.T) {
	m := DefaultResponseModel()
	rng := stats.NewRNG(1)
	fast := device.New(0, 1, 1) // speed 2.0
	slow := device.New(1, 0, 0) // speed 0.5
	j := job.New(0, device.General, 1, 1, 0)
	var fastSum, slowSum float64
	const n = 3000
	for i := 0; i < n; i++ {
		fd, _ := m.Sample(rng, fast, j)
		sd, _ := m.Sample(rng, slow, j)
		fastSum += fd.Seconds()
		slowSum += sd.Seconds()
	}
	if slowSum <= 2*fastSum {
		t.Errorf("slow device should take ~4x longer: fast=%.0f slow=%.0f", fastSum, slowSum)
	}
	// TaskScale stretches durations.
	heavy := job.New(1, device.General, 1, 1, 0)
	heavy.TaskScale = 3
	var lightSum, heavySum float64
	for i := 0; i < n; i++ {
		ld, _ := m.Sample(rng, fast, j)
		hd, _ := m.Sample(rng, fast, heavy)
		lightSum += ld.Seconds()
		heavySum += hd.Seconds()
	}
	if heavySum <= 2*lightSum {
		t.Errorf("TaskScale=3 should take ~3x longer: light=%.0f heavy=%.0f", lightSum, heavySum)
	}
}

func TestResponseModelFailures(t *testing.T) {
	m := DefaultResponseModel()
	rng := stats.NewRNG(2)
	frail := device.New(0, 0, 0) // highest failure probability
	j := job.New(0, device.General, 1, 1, 0)
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		_, ok := m.Sample(rng, frail, j)
		if !ok {
			fails++
		}
	}
	want := frail.FailureProb
	got := float64(fails) / n
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("failure rate = %.3f, want ~%.3f", got, want)
	}
	m.DisableFailures = true
	for i := 0; i < 1000; i++ {
		if _, ok := m.Sample(rng, frail, j); !ok {
			t.Fatal("DisableFailures must suppress dropouts")
		}
	}
}

func TestDeadlineAbortsSlowRound(t *testing.T) {
	// A fleet of very slow devices and tasks longer than the deadline:
	// the round must abort at least once.
	fleet := uniformFleet(30, 2*simtime.Day, 0.0, 0.0)
	j := job.New(0, device.General, 5, 1, 0)
	j.TaskScale = 50 // ~50 min median on a slow device, deadline ~5 min
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: []*job.Job{j}, Scheduler: &fifoSched{},
		Response: ResponseModel{Median: 60 * simtime.Second, P95: 120 * simtime.Second, DisableFailures: true},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.Aborts == 0 {
		t.Error("expected at least one deadline abort")
	}
}

func TestRoundObserverReceivesParticipants(t *testing.T) {
	fleet := uniformFleet(20, simtime.Day, 0.7, 0.7)
	j := job.New(0, device.General, 5, 2, 0)
	var rounds []int
	var counts []int
	obs := func(jb *job.Job, round int, parts []device.ID, now simtime.Time) {
		rounds = append(rounds, round)
		counts = append(counts, len(parts))
		seen := map[device.ID]bool{}
		for _, p := range parts {
			if seen[p] {
				t.Errorf("duplicate participant %d in round %d", p, round)
			}
			seen[p] = true
		}
	}
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: []*job.Job{j}, Scheduler: &fifoSched{},
		Response: quietResponse(), Seed: 4, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rounds) != 2 || rounds[0] != 1 || rounds[1] != 2 {
		t.Fatalf("observer rounds = %v", rounds)
	}
	for _, c := range counts {
		if c < j.TargetResponses() {
			t.Errorf("observer got %d participants, want >= %d", c, j.TargetResponses())
		}
	}
}

func TestEnvSupplyEstimates(t *testing.T) {
	fleet := uniformFleet(50, 2*simtime.Day, 0.9, 0.9)
	j := job.New(0, device.HighPerf, 5, 1, simtime.Time(simtime.Hour))
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: []*job.Job{j}, Scheduler: &fifoSched{},
		Response: quietResponse(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	// Prior: 50 devices with 1 interval each over 48h ~ 1.04/h, all in
	// the High-Perf cell.
	rate := env.EligibleRatePerHour(device.HighPerf, 0)
	if rate < 0.5 || rate > 2 {
		t.Errorf("prior eligible rate = %v, want ~1/h", rate)
	}
	if got := env.EligibleRatePerHour(device.Requirement{MinCPU: 0.95, MinMem: 0.95}, 0); got != 0 {
		// 0.9-score devices are in the 0.5-1.0 band of this grid (cuts
		// at 0 and 0.5 only), so a 0.95 threshold still matches the
		// same region; accept either 0 or the band rate.
		_ = got
	}
	res := eng.Run()
	if len(res.Completed) != 1 {
		t.Fatalf("job incomplete: %v", res)
	}
}

func TestResultMetrics(t *testing.T) {
	fleet := uniformFleet(30, simtime.Day, 0.6, 0.6)
	jobs := []*job.Job{
		job.New(0, device.General, 4, 2, 0),
		job.New(1, device.General, 4, 2, 0),
	}
	eng, err := NewEngine(Config{
		Fleet: fleet, Jobs: jobs, Scheduler: &fifoSched{},
		Response: quietResponse(), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.CompletionRate() != 1 {
		t.Fatalf("completion rate %v", res.CompletionRate())
	}
	if len(res.JCTSeconds()) != 2 {
		t.Fatal("JCTSeconds size")
	}
	if _, ok := res.JobJCT(0); !ok {
		t.Fatal("JobJCT(0) missing")
	}
	if _, ok := res.JobJCT(99); ok {
		t.Fatal("JobJCT(99) must be missing")
	}
	if sp := res.SpeedupOver(res); sp != 1 {
		t.Errorf("self speedup = %v, want 1", sp)
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	c := newCalendar()
	c.push(&event{at: 50, kind: evDeviceOnline})
	c.push(&event{at: 10, kind: evDeviceOnline})
	c.push(&event{at: 10, kind: evDeviceOffline}) // same time: FIFO by seq
	c.push(&event{at: 30, kind: evJobArrival})
	var times []simtime.Time
	var kinds []eventKind
	for !c.empty() {
		ev := c.pop()
		times = append(times, ev.at)
		kinds = append(kinds, ev.kind)
	}
	want := []simtime.Time{10, 10, 30, 50}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pop order %v", times)
		}
	}
	if kinds[0] != evDeviceOnline || kinds[1] != evDeviceOffline {
		t.Error("ties must preserve push order")
	}
}
