package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(1)
	c1 := parent.Fork()
	c2 := parent.Fork()
	equal := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() {
			equal++
		}
	}
	if equal > 5 {
		t.Errorf("forked streams look identical (%d/50 equal)", equal)
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform out of range: %v", x)
		}
		n := g.UniformInt(2, 5)
		if n < 2 || n > 5 {
			t.Fatalf("UniformInt out of range: %d", n)
		}
	}
	if g.UniformInt(9, 3) != 9 {
		t.Error("degenerate UniformInt should return lo")
	}
}

func TestLogNormalMedianP95(t *testing.T) {
	g := NewRNG(3)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.LogNormalMedianP95(60, 180)
	}
	med := Median(xs)
	p95 := Percentile(xs, 95)
	if math.Abs(med-60)/60 > 0.05 {
		t.Errorf("median = %v, want ~60", med)
	}
	if math.Abs(p95-180)/180 > 0.10 {
		t.Errorf("p95 = %v, want ~180", p95)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(4)
	var o Online
	for i := 0; i < 20000; i++ {
		o.Add(g.Exp(42))
	}
	if math.Abs(o.Mean()-42)/42 > 0.05 {
		t.Errorf("Exp mean = %v, want ~42", o.Mean())
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(5)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		var o Online
		for i := 0; i < 5000; i++ {
			o.Add(float64(g.Poisson(mean)))
		}
		if math.Abs(o.Mean()-mean)/mean > 0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, o.Mean())
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("non-positive mean must give 0")
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(6)
	for _, c := range []struct{ shape, scale float64 }{{0.5, 2}, {3, 1.5}, {10, 0.3}} {
		var o Online
		for i := 0; i < 20000; i++ {
			o.Add(g.Gamma(c.shape, c.scale))
		}
		wantMean := c.shape * c.scale
		if math.Abs(o.Mean()-wantMean)/wantMean > 0.05 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, o.Mean(), wantMean)
		}
	}
	if g.Gamma(0, 1) != 0 || g.Gamma(1, -1) != 0 {
		t.Error("degenerate Gamma must give 0")
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	g := NewRNG(7)
	var o Online
	for i := 0; i < 20000; i++ {
		x := g.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
		o.Add(x)
	}
	if math.Abs(o.Mean()-2.0/7.0) > 0.01 {
		t.Errorf("Beta(2,5) mean = %v, want %v", o.Mean(), 2.0/7.0)
	}
}

func TestDirichletSumsToOneProperty(t *testing.T) {
	g := NewRNG(8)
	f := func(alphaRaw uint8, kRaw uint8) bool {
		k := int(kRaw%8) + 2
		alpha := 0.1 + float64(alphaRaw)/64
		w := g.DirichletSym(alpha, k)
		if len(w) != k {
			return false
		}
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	g := NewRNG(9)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[g.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	// Degenerate weights fall back to uniform.
	if idx := g.WeightedChoice([]float64{0, 0}); idx < 0 || idx > 1 {
		t.Errorf("degenerate WeightedChoice = %d", idx)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(10)
	got := g.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("want 4 samples, got %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad sample set %v", got)
		}
		seen[i] = true
	}
	if all := g.SampleWithoutReplacement(3, 10); len(all) != 3 {
		t.Errorf("oversized k should return n items, got %d", len(all))
	}
}

func TestChoiceAndPerm(t *testing.T) {
	g := NewRNG(11)
	if g.Choice(0) != -1 || g.Choice(-3) != -1 {
		t.Error("Choice of empty must be -1")
	}
	p := g.Perm(6)
	seen := map[int]bool{}
	for _, x := range p {
		seen[x] = true
	}
	if len(seen) != 6 {
		t.Errorf("Perm not a permutation: %v", p)
	}
}

func TestMixSpreadsSeeds(t *testing.T) {
	// Consecutive seeds must produce well-separated internal states.
	s1, s2 := mix(1), mix(2)
	if s1 == s2 {
		t.Error("mix collides on consecutive seeds")
	}
	if s1 < 0 || s2 < 0 {
		t.Error("mix must return non-negative seeds")
	}
}
