package core

import (
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
)

// buildEngine wires a Venn scheduler into a real engine over a hand-made
// fleet, returning both for white-box inspection.
func buildEngine(t *testing.T, v *Venn, fleet *trace.Fleet, jobs []*job.Job) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		Fleet:     fleet,
		Jobs:      jobs,
		Scheduler: v,
		Response:  sim.ResponseModel{Median: 5 * simtime.Second, P95: 10 * simtime.Second, DisableFailures: true},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// mixedFleet: devices alternate between high-end and low-end, checking in
// one per minute.
func mixedFleet(n int, horizon simtime.Duration) *trace.Fleet {
	f := &trace.Fleet{Horizon: horizon}
	for i := 0; i < n; i++ {
		var d *device.Device
		if i%2 == 0 {
			d = device.New(device.ID(i), 0.9, 0.9)
		} else {
			d = device.New(device.ID(i), 0.2, 0.2)
		}
		f.Devices = append(f.Devices, d)
		start := simtime.Time(i+1) * simtime.Time(simtime.Minute)
		f.Intervals = append(f.Intervals, []trace.Interval{{Start: start, End: simtime.Time(horizon)}})
	}
	return f
}

func TestVennReservesScarceDevices(t *testing.T) {
	// The toy-example property: a General job (ample supply) must not eat
	// the scarce High-Perf devices while a High-Perf job is waiting.
	fleet := mixedFleet(60, 4*simtime.Hour)
	gen := job.New(0, device.General, 10, 1, 0)
	hp := job.New(1, device.HighPerf, 10, 1, 0)
	v := New(Options{Tiers: 1}) // isolate the IRS component
	eng := buildEngine(t, v, fleet, []*job.Job{gen, hp})
	res := eng.Run()
	if len(res.Completed) != 2 {
		t.Fatalf("both jobs must complete: %v", res)
	}
	// 30 high-end devices serve HP's 10; General rides the low-end.
	// With devices arriving alternately one per minute, HP needs ~20
	// minutes of arrivals (10 high-end) and General ~20 minutes of
	// low-end; if General had consumed high-end devices first, HP's JCT
	// would stretch well beyond 40 minutes.
	hpJCT, _ := res.JobJCT(1)
	if hpJCT > 45*60 {
		t.Errorf("High-Perf job starved: JCT %.0fs", hpJCT)
	}
}

func TestVennSmallestFirstWithinGroup(t *testing.T) {
	fleet := mixedFleet(100, 6*simtime.Hour)
	big := job.New(0, device.General, 30, 1, 0)
	small := job.New(1, device.General, 5, 1, 0)
	v := New(Options{Tiers: 1})
	eng := buildEngine(t, v, fleet, []*job.Job{big, small})
	res := eng.Run()
	smallJCT, ok1 := res.JobJCT(1)
	bigJCT, ok2 := res.JobJCT(0)
	if !ok1 || !ok2 {
		t.Fatalf("both jobs must complete: %v", res)
	}
	if smallJCT >= bigJCT {
		t.Errorf("small job (%.0fs) must finish before the big one (%.0fs)", smallJCT, bigJCT)
	}
}

func TestVennNamesByAblation(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{}, "Venn"},
		{Options{DisableMatching: true}, "Venn-w/o-match"},
	}
	for _, c := range cases {
		if got := New(c.opts).Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestVennPlanRebuildCount(t *testing.T) {
	fleet := mixedFleet(40, 2*simtime.Hour)
	j := job.New(0, device.General, 5, 2, 0)
	v := NewDefault()
	eng := buildEngine(t, v, fleet, []*job.Job{j})
	eng.Run()
	if v.PlanRebuilds == 0 {
		t.Error("the plan must have been rebuilt at least once")
	}
	// Plans are lazy: rebuild count must be far below the assignment
	// count (one rebuild per request event, not per device).
	if v.PlanRebuilds > 20 {
		t.Errorf("too many plan rebuilds: %d", v.PlanRebuilds)
	}
}

// hotPathEnv wires a bound Venn with one open job per requirement category,
// mirroring the assignment benchmark's setup.
func hotPathEnv(t *testing.T, v *Venn, jobsPerCat int) *sim.Env {
	t.Helper()
	grid := device.NewGrid(device.Categories())
	env := &sim.Env{
		Grid:          grid,
		CellPriorRate: []float64{40, 20, 20, 10},
		RNG:           stats.NewRNG(1),
		Jobs:          map[job.ID]*job.Job{},
		IdlePerCell:   make([]int, grid.NumCells()),
	}
	v.Bind(env)
	cats := device.Categories()
	for i := 0; i < jobsPerCat*len(cats); i++ {
		j := job.New(job.ID(i), cats[i%len(cats)], 1000, 3, 0)
		j.Start(0)
		env.Jobs[j.ID] = j
		v.OnJobArrival(j, 0)
		v.OnRequest(j, 0)
	}
	return env
}

// TestAssignCoversLastCell pins the plan-sizing invariant: the cell plan
// always spans Grid.NumCells(), so a device landing in the grid's final cell
// (maximal scores) must be matched, not silently dropped by a short Order.
func TestAssignCoversLastCell(t *testing.T) {
	v := NewDefault()
	env := hotPathEnv(t, v, 1)
	d := device.New(0, 1, 1)
	if cell := env.Grid.CellOfDevice(d); int(cell) != env.Grid.NumCells()-1 {
		t.Fatalf("precondition: device must land in the last cell, got %d/%d", cell, env.Grid.NumCells())
	}
	got := v.Assign(d, 1)
	if got == nil {
		t.Fatal("device in the last grid cell must receive a job")
	}
	if len(v.plan.Order) != env.Grid.NumCells() {
		t.Errorf("plan covers %d cells, want %d", len(v.plan.Order), env.Grid.NumCells())
	}
}

// TestAssignHotPathAllocFree guards the assignment fast path against
// allocation regressions: once the plan is built, handing out devices must
// not allocate at all.
func TestAssignHotPathAllocFree(t *testing.T) {
	v := NewDefault()
	hotPathEnv(t, v, 10)
	d := device.New(0, 0.8, 0.8)
	if v.Assign(d, 1) == nil { // warm up: builds the plan and cell cache
		t.Fatal("no assignment")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if v.Assign(d, 1) == nil {
			t.Fatal("no assignment")
		}
	})
	if allocs != 0 {
		t.Errorf("Assign allocates %.2f objects/op, want 0", allocs)
	}
}

// TestGroupQueueOrderMaintained checks the incremental ordered insertion
// that replaced the per-rebuild sort: jobs must come out smallest adjusted
// demand first regardless of insertion order.
func TestGroupQueueOrderMaintained(t *testing.T) {
	v := New(Options{Tiers: 1})
	grid := device.NewGrid(device.Categories())
	v.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}, Jobs: map[job.ID]*job.Job{}, IdlePerCell: make([]int, grid.NumCells())})
	demands := []int{70, 10, 40, 90, 20, 60, 30}
	jobs := make([]*job.Job, len(demands))
	for i, dm := range demands {
		j := job.New(job.ID(i), device.General, dm, 1, 0)
		j.Start(0)
		jobs[i] = j
		v.OnJobArrival(j, 0)
		v.OnRequest(j, 0)
	}
	g := v.groups[device.General.Key()]
	checkSorted := func() {
		t.Helper()
		for i := 1; i < len(g.jobs); i++ {
			if g.adj[g.jobs[i-1].ID] > g.adj[g.jobs[i].ID] {
				t.Fatalf("queue out of order at %d: %v > %v", i, g.adj[g.jobs[i-1].ID], g.adj[g.jobs[i].ID])
			}
		}
	}
	if len(g.jobs) != len(demands) {
		t.Fatalf("queue holds %d jobs, want %d", len(g.jobs), len(demands))
	}
	checkSorted()
	// Removal from the middle must keep order and fully forget the job,
	// including nilling the vacated tail slot so the pointer is released.
	v.OnJobDone(jobs[2], 1)
	if len(g.jobs) != len(demands)-1 {
		t.Fatalf("queue holds %d jobs after removal, want %d", len(g.jobs), len(demands)-1)
	}
	if _, still := g.adj[jobs[2].ID]; still {
		t.Error("removed job must leave the membership index")
	}
	if tail := g.jobs[:cap(g.jobs)][len(g.jobs)]; tail != nil {
		t.Error("vacated tail slot must be nilled so the job can be collected")
	}
	checkSorted()
}

func TestVennWorkConservation(t *testing.T) {
	// A device eligible only for General must still be used when the only
	// open job is General — and a High-Perf device must serve General
	// jobs when no High-Perf job is waiting (work conservation).
	fleet := mixedFleet(30, 3*simtime.Hour)
	gen := job.New(0, device.General, 12, 1, 0)
	v := NewDefault()
	eng := buildEngine(t, v, fleet, []*job.Job{gen})
	res := eng.Run()
	if len(res.Completed) != 1 {
		t.Fatalf("job must complete: %v", res)
	}
	// 12 demand with devices arriving 1/minute: JCT must be ~12-13 min,
	// meaning high-end devices were used too (not only the 15 low-end).
	jct, _ := res.JobJCT(0)
	if jct > 20*60 {
		t.Errorf("work conservation violated: JCT %.0fs", jct)
	}
}

func TestFairnessAdjustedDemandDirection(t *testing.T) {
	v := New(Options{Epsilon: 2})
	grid := device.NewGrid(device.Categories())
	v.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}, RNG: nil})
	served := job.New(0, device.General, 10, 4, 0)
	served.Start(0)
	starved := job.New(1, device.General, 10, 4, 0)
	starved.Start(0)
	v.OnJobArrival(served, 0)
	v.OnJobArrival(starved, 0)
	// Give `served` lots of service time via completed rounds.
	for i := 0; i < 10; i++ {
		served.AddAssignment(simtime.Time(i))
	}
	for i := 0; i < 8; i++ {
		served.AddResponse(simtime.Time(3600_000 + i))
	}
	served.CompleteRound(simtime.Time(3600_000 + 10)) // one hour of service
	dServed := v.adjustedDemand(served)
	dStarved := v.adjustedDemand(starved)
	if dStarved >= dServed {
		t.Errorf("starved job must look smaller: served=%v starved=%v", dServed, dStarved)
	}
	// Epsilon 0 must reproduce raw remaining service.
	v0 := New(Options{Epsilon: 0})
	v0.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}})
	if got := v0.adjustedDemand(starved); got != float64(starved.RemainingService()) {
		t.Errorf("eps=0 adjusted demand = %v, want %v", got, starved.RemainingService())
	}
}

func TestAdjustedQueueDirection(t *testing.T) {
	v := New(Options{Epsilon: 2})
	grid := device.NewGrid(device.Categories())
	v.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}})
	j1 := job.New(0, device.General, 10, 4, 0)
	j1.Start(0)
	j2 := job.New(1, device.General, 10, 4, 0)
	j2.Start(0)
	v.OnJobArrival(j1, 0)
	v.OnJobArrival(j2, 0)
	qStarved := v.adjustedQueue([]*job.Job{j1, j2})
	if qStarved <= 2 {
		t.Errorf("under-served group queue must be inflated: %v", qStarved)
	}
	v0 := New(Options{})
	if got := v0.adjustedQueue([]*job.Job{j1, j2}); got != 2 {
		t.Errorf("eps=0 queue = %v, want 2", got)
	}
}

func TestClampRatio(t *testing.T) {
	if clampRatio(0) != minFairRatio {
		t.Error("zero must clamp up")
	}
	if clampRatio(1e9) != maxFairRatio {
		t.Error("huge must clamp down")
	}
	if clampRatio(2.5) != 2.5 {
		t.Error("interior must pass through")
	}
}

func TestDecideTierRespectsDisable(t *testing.T) {
	v := New(Options{DisableMatching: true})
	grid := device.NewGrid(device.Categories())
	v.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}})
	j := job.New(0, device.General, 5, 1, 0)
	j.Start(0)
	if f := v.decideTier(j, 0); f != nil {
		t.Error("DisableMatching must suppress tier filters")
	}
	v1 := New(Options{Tiers: 1})
	v1.Bind(&sim.Env{Grid: grid, CellPriorRate: []float64{10, 10, 10, 10}})
	if f := v1.decideTier(j, 0); f != nil {
		t.Error("V=1 must suppress tier filters")
	}
}

func TestTierFilterAccepts(t *testing.T) {
	f := &tierFilter{tier: 1, cuts: []float64{0.5}}
	fast := device.New(0, 1, 1)
	slow := device.New(1, 0, 0)
	if !f.accepts(fast) {
		t.Error("fast device belongs to tier 1")
	}
	if f.accepts(slow) {
		t.Error("slow device is tier 0")
	}
}

func TestAcquireSeconds(t *testing.T) {
	if s := acquireSeconds(10, 20, 5); s != 1 {
		t.Errorf("pool-covered demand = %vs, want 1", s)
	}
	if s := acquireSeconds(10, 0, 10); s != 3600 {
		t.Errorf("rate-limited: %v, want 3600 (10 devices at 10/h)", s)
	}
	if s := acquireSeconds(10, 5, 0); s != 3600 {
		t.Errorf("no rate: %v, want pessimistic 3600", s)
	}
}
