package venn

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{NumDevices: 800, Seed: 1})
	wl := GenerateWorkload(WorkloadConfig{NumJobs: 8, Seed: 2, MaxRounds: 5, MaxDemand: 40})
	random, err := Simulate(SimConfig{Fleet: fleet, Workload: wl, Scheduler: NewRandom(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vn, err := Simulate(SimConfig{Fleet: fleet, Workload: wl, Scheduler: NewVenn(SchedulerOptions{}), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if random.CompletionRate() < 0.5 || vn.CompletionRate() < 0.5 {
		t.Fatalf("too few completions: random %v venn %v", random, vn)
	}
	if sp := vn.SpeedupOver(random); sp <= 0 {
		t.Errorf("speedup = %v", sp)
	}
}

func TestPublicAPIHandBuiltJobs(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{NumDevices: 500, Seed: 4})
	jobs := []*Job{
		NewJob(0, General, 10, 2, 0),
		NewJob(1, HighPerf, 5, 2, 10*Minute),
	}
	rounds := 0
	obs := func(j *Job, round int, parts []DeviceID, now Time) { rounds++ }
	res, err := Simulate(SimConfig{
		Fleet: fleet, Jobs: jobs, Scheduler: NewVenn(SchedulerOptions{}),
		Seed: 5, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 2 {
		t.Fatalf("jobs incomplete: %v", res)
	}
	if rounds != 4 {
		t.Errorf("observer saw %d rounds, want 4", rounds)
	}
}

func TestSchedulerConstructors(t *testing.T) {
	for _, c := range []struct {
		s    Scheduler
		name string
	}{
		{NewRandom(), "Random"},
		{NewFIFO(), "FIFO"},
		{NewSRSF(), "SRSF"},
		{NewVenn(SchedulerOptions{}), "Venn"},
		{NewVenn(SchedulerOptions{DisableMatching: true}), "Venn-w/o-match"},
	} {
		if c.s.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.s.Name(), c.name)
		}
	}
}
