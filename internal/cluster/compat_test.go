package cluster_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/server"
	"venn/internal/transport"
)

// startCompatFed starts a two-member federation whose ring is built from the
// logical member IDs "A" and "B" (mapped to real loopback listeners through
// Config.Dial), so two separately started federations share an identical
// ownership ring and route the same devices to the same logical members.
// With bIsV1 set, member B emulates a pre-v2 daemon end to end: its stream
// server rejects v2 frames (transport MaxVersion 1) and its outbound peer
// clients never offer v2 (cluster MaxWireVersion 1).
func startCompatFed(t *testing.T, bIsV1 bool) []*node {
	t.Helper()
	ids := []string{"A", "B"}
	addrOf := map[string]string{}
	lns := make([]net.Listener, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrOf[id] = ln.Addr().String()
	}
	nodes := make([]*node, len(ids))
	for i, id := range ids {
		oldDaemon := bIsV1 && id == "B"
		m := server.NewManager(server.Config{})
		topts := transport.Options{}
		if oldDaemon {
			topts.MaxVersion = transport.Version1
		}
		ts := transport.NewServer(m, topts)
		go func(ln net.Listener) { _ = ts.Serve(ln) }(lns[i])
		maxWire := 0
		if oldDaemon {
			maxWire = 1
		}
		cfg := cluster.Config{
			SelfID:         id,
			Peers:          ids,
			HealthInterval: 50 * time.Millisecond,
			Dial: func(peerID string) cluster.PeerClient {
				opts := []client.Option{client.WithTimeout(5 * time.Second)}
				if maxWire > 0 {
					opts = append(opts, client.WithMaxWireVersion(maxWire))
				}
				return client.NewStream(addrOf[peerID], opts...)
			},
		}
		clu, err := cluster.New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{m: m, ts: ts, clu: clu, addr: addrOf[id]}
		t.Cleanup(func() {
			_ = clu.Close()
			_ = ts.Close()
		})
	}
	return nodes
}

// TestCrossVersionFederationCompat is the mixed-version compatibility pin:
// a federation where member B is a v1-only daemon (JSON payloads, no hello)
// must serve the exact same workload as a pure-v2 federation with
// byte-identical responses — negotiation downgrades the A→B forwarding hop
// transparently and the codecs are payload-equivalent. The telemetry
// assertions prove the two federations really took different wire paths.
func TestCrossVersionFederationCompat(t *testing.T) {
	mixed := startCompatFed(t, true)
	pure := startCompatFed(t, false)

	runWorkload := func(nodes []*node) (ciJSON, repJSON []byte) {
		// Same demand on both members: assignments happen on whichever
		// member owns the checked-in device.
		for _, nd := range nodes {
			svc := server.NewService(nd.m, server.TransportStream)
			if _, err := svc.RegisterJob(server.JobSpec{Name: "compat", Category: "General", DemandPerRound: 16, Rounds: 1}); err != nil {
				t.Fatal(err)
			}
		}
		c := client.NewStream(nodes[0].addr)
		defer c.Close()
		fleet := make([]server.CheckIn, 64)
		for i := range fleet {
			fleet[i] = server.CheckIn{DeviceID: fmt.Sprintf("compat-%04d", i), CPU: 0.9, Mem: 0.9}
		}
		results, err := c.CheckInBatch(fleet)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Error != "" {
				t.Fatalf("item %d (%s): %s", i, fleet[i].DeviceID, res.Error)
			}
		}
		ciResp := server.CheckInBatchResponse{Results: results}
		ciJSON, err = ciResp.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var reports []server.Report
		for i, res := range results {
			if res.Assigned {
				reports = append(reports, server.Report{
					DeviceID: fleet[i].DeviceID, JobID: res.JobID, OK: true, DurationSeconds: 30,
				})
			}
		}
		if len(reports) == 0 {
			t.Fatal("workload produced no assignments")
		}
		rres, err := c.ReportBatch(reports)
		if err != nil {
			t.Fatal(err)
		}
		repResp := server.ReportBatchResponse{Results: rres}
		repJSON, err = repResp.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return ciJSON, repJSON
	}

	mixedCI, mixedRep := runWorkload(mixed)
	pureCI, pureRep := runWorkload(pure)

	if !bytes.Equal(mixedCI, pureCI) {
		t.Errorf("check-in results diverge across wire versions:\nmixed %s\npure  %s", mixedCI, pureCI)
	}
	if !bytes.Equal(mixedRep, pureRep) {
		t.Errorf("report results diverge across wire versions:\nmixed %s\npure  %s", mixedRep, pureRep)
	}

	// Both federations must actually have forwarded A→B...
	for name, nodes := range map[string][]*node{"mixed": mixed, "pure": pure} {
		_, outA, fwdErrs, _ := nodes[0].clu.Counters()
		inB, _, _, _ := nodes[1].clu.Counters()
		if outA == 0 || inB == 0 {
			t.Errorf("%s federation never forwarded (A out=%d, B in=%d)", name, outA, inB)
		}
		if fwdErrs != 0 {
			t.Errorf("%s federation logged %d forward errors", name, fwdErrs)
		}
	}
	// ...but over different wire versions: the v1 member saw zero v2 frames,
	// the v2 member saw the forwarded serving frames as binary.
	if tel := mixed[1].ts.StreamTelemetry(); tel.FramesInV2 != 0 {
		t.Errorf("v1 member received %d v2 frames", tel.FramesInV2)
	}
	if tel := pure[1].ts.StreamTelemetry(); tel.FramesInV2 == 0 {
		t.Error("pure-v2 federation forwarded no v2 frames")
	}
}
