// Package client is the Go SDK for the venndaemon HTTP API: CL job owners
// use it to register jobs and poll status; device agents use it to check in
// and report task results. High-volume callers (fleets, load generators)
// should prefer the batch methods, which amortize one HTTP round trip and
// one scheduler-lock acquisition over many devices.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"venn/internal/server"
)

// Defaults for the configurable knobs.
const (
	DefaultTimeout    = 10 * time.Second
	DefaultRetryDelay = 100 * time.Millisecond
)

// Client talks to one venndaemon instance.
type Client struct {
	base       string
	http       *http.Client
	retries    int           // extra attempts for idempotent GETs
	retryDelay time.Duration // backoff base, doubled per attempt, jittered
}

// NewHTTP creates an HTTP client for the daemon at baseURL (e.g.
// "http://host:8080"). Most callers should use New, which picks the
// transport from the address; NewHTTP exists for code that needs the
// concrete *Client.
func NewHTTP(baseURL string, opts ...Option) *Client {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return newHTTPClient(baseURL, cfg)
}

func newHTTPClient(baseURL string, cfg config) *Client {
	h := cfg.httpClient
	if h == nil {
		h = &http.Client{Timeout: cfg.timeout}
	} else if cfg.timeoutSet {
		h.Timeout = cfg.timeout
	}
	return &Client{
		base:       baseURL,
		http:       h,
		retries:    cfg.retries,
		retryDelay: cfg.retryDelay,
	}
}

// RegisterJob submits a new CL job and returns its status (including ID).
func (c *Client) RegisterJob(spec server.JobSpec) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.post("/v1/jobs", spec, &st)
	return st, err
}

// JobStatus fetches one job's status.
func (c *Client) JobStatus(id int) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.get(fmt.Sprintf("/v1/jobs/%d", id), &st)
	return st, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.get("/v1/jobs", &out)
	return out, err
}

// CheckIn announces device availability and returns the assignment.
func (c *Client) CheckIn(ci server.CheckIn) (server.Assignment, error) {
	var asg server.Assignment
	err := c.post("/v1/checkin", ci, &asg)
	return asg, err
}

// CheckInBatch announces availability for a whole batch of devices in one
// request. Results[i] answers cis[i]; per-item rejections surface in each
// result's Error field, not as a Go error.
func (c *Client) CheckInBatch(cis []server.CheckIn) ([]server.CheckInResult, error) {
	var resp server.CheckInBatchResponse
	if err := c.post("/v1/checkin/batch", server.CheckInBatchRequest{CheckIns: cis}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(cis) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d check-ins", len(resp.Results), len(cis))
	}
	return resp.Results, nil
}

// Report submits a task result.
func (c *Client) Report(r server.Report) error {
	return c.post("/v1/report", r, &struct{}{})
}

// ReportBatch submits a batch of task results in one request. Results[i]
// answers rs[i].
func (c *Client) ReportBatch(rs []server.Report) ([]server.ReportResult, error) {
	var resp server.ReportBatchResponse
	if err := c.post("/v1/report/batch", server.ReportBatchRequest{Reports: rs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(rs) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d reports", len(resp.Results), len(rs))
	}
	return resp.Results, nil
}

// Stats fetches the daemon's monitoring snapshot.
func (c *Client) Stats() (server.Stats, error) {
	var st server.Stats
	err := c.get("/v1/stats", &st)
	return st, err
}

// Metrics fetches the daemon's serving-throughput and latency metrics.
func (c *Client) Metrics() (server.Metrics, error) {
	var mt server.Metrics
	err := c.get("/v1/metrics", &mt)
	return mt, err
}

// Ping probes daemon reachability with the cheapest idempotent request.
func (c *Client) Ping() error {
	return c.get("/v1/stats", &struct{}{})
}

// Close releases idle connections held by the underlying HTTP transport.
func (c *Client) Close() error {
	c.http.CloseIdleConnections()
	return nil
}

// WaitForJob polls until the job completes or the timeout elapses.
func (c *Client) WaitForJob(id int, poll, timeout time.Duration) (server.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.JobStatus(id)
		if err != nil {
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("client: job %d not done after %v", id, timeout)
		}
		time.Sleep(poll)
	}
}

func (c *Client) post(path string, body, out any) error {
	var buf []byte
	var err error
	// The hot batch wire types marshal themselves (see server/codec.go);
	// calling them directly skips encoding/json's re-validation pass.
	if m, ok := body.(json.Marshaler); ok {
		buf, err = m.MarshalJSON()
	} else {
		buf, err = json.Marshal(body)
	}
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// get fetches an idempotent resource, retrying transient failures (network
// errors and 5xx statuses) up to the configured retry budget with jittered
// exponential backoff.
func (c *Client) get(path string, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Get(c.base + path)
		if err == nil && resp.StatusCode < 500 {
			err := decodeResponse(resp, out)
			resp.Body.Close()
			return err
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("client: status %d", resp.StatusCode)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		if attempt >= c.retries {
			return lastErr
		}
		time.Sleep(backoff(c.retryDelay, attempt))
	}
}

// maxBackoff caps one retry wait; it also keeps the doubling shift far
// from int64 overflow for large retry budgets.
const maxBackoff = 30 * time.Second

// backoff returns base*2^attempt plus up to 50% jitter, capped at
// maxBackoff. The global math/rand source is goroutine-safe and fine for
// jitter — unlike the simulator's seeded RNGs, there is no reproducibility
// requirement here.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
			Code  int    `json:"code"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return &APIError{Code: server.Code(apiErr.Code), Status: resp.StatusCode, Msg: apiErr.Error}
		}
		return fmt.Errorf("client: status %d", resp.StatusCode)
	}
	// Hand-rolled unmarshalers get the raw bytes directly: a json.Decoder
	// would tokenize the value once to find its extent and then have the
	// custom unmarshaler parse it a second time.
	if u, ok := out.(json.Unmarshaler); ok {
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return u.UnmarshalJSON(body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
