package server

import (
	"strings"

	"venn/internal/obs"
)

// Prometheus text-format view of the daemon's telemetry (GET /metrics). It
// exposes the same counters and histograms as the JSON /v1/metrics payload,
// renamed into Prometheus conventions: cumulative counters keep their
// _total suffix, durations are histograms in seconds, and the windowed
// */s rates are omitted — Prometheus derives rates from the counters. The
// output passes obs.ValidateExposition (and promtool), which CI checks.

// WritePrometheus renders the full exposition into b.
func WritePrometheus(b *strings.Builder, m *Manager) {
	mt := m.MetricsSnapshot()
	h := m.Health()

	gauge := func(name, help string, v float64) {
		obs.PromFamily(b, name, help, "gauge")
		obs.PromSample(b, name, "", v)
	}
	counter := func(name, help string, v int64) {
		obs.PromFamily(b, name, help, "counter")
		obs.PromSample(b, name, "", float64(v))
	}

	healthy := 0.0
	if h.OK {
		healthy = 1
	}
	gauge("venn_healthy", "Whether the daemon reports healthy (see /v1/healthz).", healthy)
	gauge("venn_uptime_seconds", "Seconds since the daemon started.", mt.UptimeSeconds)
	gauge("venn_obs_sample_every", "Active span sampling rate (0 = spans off).", float64(mt.ObsSampleEvery))

	counter("venn_checkins_total", "Admitted device check-ins.", mt.CheckIns)
	counter("venn_assignments_total", "Task assignments handed out.", mt.Assignments)
	counter("venn_reports_total", "Task reports accepted.", mt.Reports)
	counter("venn_lock_free_checkins_total", "Check-ins answered from a plan snapshot without the scheduler lock.", mt.LockFreeCheckIns)
	counter("venn_devices_evicted_total", "Device registry entries dropped by TTL sweeps.", mt.DevicesEvicted)
	counter("venn_plan_rebuilds_total", "Full scheduling-plan rebuilds.", mt.PlanRebuilds)
	counter("venn_plan_patches_total", "Incremental scheduling-plan patches.", mt.PlanPatches)
	counter("venn_flight_recorded_total", "Requests retained by the flight recorder since start.", mt.FlightRecorded)

	counter("venn_core_rounds_total", "Flat-combining rounds applied by the core commit pipeline.", mt.CoreRounds)
	counter("venn_core_combined_ops_total", "Queued core ops applied by combining rounds.", mt.CoreCombinedOps)
	counter("venn_core_fastpath_ops_total", "Core ops applied on the uncontended fast path.", mt.CoreFastPathOps)

	gauge("venn_known_devices", "Devices currently in the registry.", float64(mt.KnownDevices))
	gauge("venn_busy_devices", "Devices currently holding a task.", float64(mt.BusyDevices))
	obs.PromFamily(b, "venn_jobs", "Jobs by lifecycle state.", "gauge")
	obs.PromSample(b, "venn_jobs", `state="active"`, float64(mt.ActiveJobs))
	obs.PromSample(b, "venn_jobs", `state="scheduling"`, float64(mt.SchedulingJobs))
	obs.PromSample(b, "venn_jobs", `state="collecting"`, float64(mt.CollectingJobs))

	gauge("venn_stream_conns", "Open stream-transport connections.", float64(mt.StreamConns))
	counter("venn_stream_frames_in_total", "Stream request frames received.", mt.StreamFramesIn)
	counter("venn_stream_frames_out_total", "Stream response frames written.", mt.StreamFramesOut)

	if mt.ClusterNodeID != "" {
		obs.PromFamily(b, "venn_cluster_peers", "Federation peers by state.", "gauge")
		obs.PromSample(b, "venn_cluster_peers", `state="up"`, float64(mt.ClusterPeersUp))
		obs.PromSample(b, "venn_cluster_peers", `state="down"`, float64(mt.ClusterPeersDown))
		counter("venn_cluster_forwards_in_total", "Peer-forwarded request frames served.", mt.ClusterForwardsIn)
		counter("venn_cluster_forwards_out_total", "Request frames forwarded to owning peers.", mt.ClusterForwardsOut)
		counter("venn_cluster_forward_errors_total", "Federation forwards that failed.", mt.ClusterForwardErrors)
		counter("venn_cluster_local_fallbacks_total", "Would-be forwards applied locally instead.", mt.ClusterLocalFallbacks)
		counter("venn_forward_bytes_in_total", "Bytes of hop request frames received.", mt.ForwardBytesIn)
		counter("venn_forward_bytes_out_total", "Bytes relayed out over the zero-copy forward path.", mt.ForwardBytesOut)
	}

	// End-to-end handler latency, always-on, per op — every transport feeds
	// these histograms.
	obs.PromFamily(b, "venn_request_duration_seconds", "End-to-end request latency by op.", "histogram")
	for op := obs.Op(0); op < obs.NumOps; op++ {
		s := m.obs.TotalSnapshot(op)
		if s.Count() == 0 {
			continue
		}
		obs.PromHist(b, "venn_request_duration_seconds", `op="`+op.String()+`"`, s)
	}

	// Sampled per-stage breakdown (1 in ObsSampleEvery requests).
	obs.PromFamily(b, "venn_request_stage_duration_seconds", "Sampled request latency by op and stage.", "histogram")
	for op := obs.Op(0); op < obs.NumOps; op++ {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			s := m.obs.StageSnapshot(op, st)
			if s.Count() == 0 {
				continue
			}
			obs.PromHist(b, "venn_request_stage_duration_seconds", `op="`+op.String()+`",stage="`+st.String()+`"`, s)
		}
	}
}
