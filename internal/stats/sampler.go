package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distribution samplers this project needs.
// Every stochastic component of the simulator owns an RNG seeded from the
// experiment seed, so runs are reproducible and components are independent.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(mix(seed)))}
}

// mix whitens small consecutive seeds (0, 1, 2, ...) into well-separated
// internal seeds using the SplitMix64 finalizer.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// Fork derives an independent child RNG from this one. Use it to hand each
// sub-component its own stream without coupling their consumption order.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// UniformInt returns a uniform integer in [lo, hi] inclusive.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 { return mu + sigma*g.r.NormFloat64() }

// LogNormal returns a sample whose logarithm is N(mu, sigma^2). The paper
// models device response times as log-normal (Wang et al., 2023).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalMeanP95 returns a log-normal sample parameterized by its median m
// and 95th percentile p95 (both > 0), a convenient form for response-time
// models where the tail is the quantity of interest.
func (g *RNG) LogNormalMedianP95(median, p95 float64) float64 {
	// For LogNormal(mu, sigma): median = e^mu, p95 = e^(mu + 1.6449*sigma).
	mu := math.Log(median)
	sigma := (math.Log(p95) - mu) / 1.6448536269514722
	if sigma < 0 {
		sigma = 0
	}
	return g.LogNormal(mu, sigma)
}

// Exp returns a sample from an exponential distribution with the given mean
// (not rate). Used for Poisson job inter-arrival times.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(g.Normal(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Gamma returns a sample from Gamma(shape, scale) using the Marsaglia–Tsang
// method (with Ahrens-style boosting for shape < 1).
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.r.Float64()
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a sample from Beta(a, b).
func (g *RNG) Beta(a, b float64) float64 {
	x := g.Gamma(a, 1)
	y := g.Gamma(b, 1)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Dirichlet returns a sample from Dirichlet(alpha...). The result sums to 1.
func (g *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		out[i] = g.Gamma(a, 1)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DirichletSym returns a symmetric Dirichlet sample with concentration alpha
// over k categories.
func (g *RNG) DirichletSym(alpha float64, k int) []float64 {
	a := make([]float64, k)
	for i := range a {
		a[i] = alpha
	}
	return g.Dirichlet(a)
}

// Shuffle permutes the n elements addressed by swap uniformly at random.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Choice returns a uniformly random index in [0, n), or -1 when n <= 0.
func (g *RNG) Choice(n int) int {
	if n <= 0 {
		return -1
	}
	return g.r.Intn(n)
}

// WeightedChoice returns an index sampled proportionally to weights.
// Non-positive total weight falls back to uniform choice.
func (g *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.Choice(len(weights))
	}
	target := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns all n indices (shuffled).
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	perm := g.Perm(n)
	return perm[:k]
}
