// Package hashring is the consistent-hash ownership ring shared by the
// federation layer (internal/cluster) and ring-aware clients
// (internal/client with WithTopology). It is a leaf package — no venn
// imports — because the client cannot depend on the cluster package (the
// dependency runs the other way), yet both sides must derive *identical*
// ownership from the same member set: a client that partitions a batch with
// a different hash or vnode placement than the serving daemons would
// misroute every item it "direct-routes".
//
// Each member contributes VNodes points placed by FNV-1a over
// "<member>#<index>" (finalized by a murmur3-style avalanche); a key is
// owned by the first point clockwise from the key's own hash. A *Ring is
// immutable and safe to share across goroutines without synchronization.
package hashring

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 128 points per member
// keeps the expected ownership imbalance under ~15% for small clusters while
// the whole ring for dozens of members still fits comfortably in cache.
const DefaultVNodes = 128

// bucketBits sizes the Owner lookup index: the 32-bit hash space is split
// into 2^bucketBits equal buckets, each remembering the first ring point at
// or after its start. Lookups then skip the binary search — they start at
// the bucket entry and walk forward an expected vnodes/2^bucketBits (≪1)
// steps. 12 bits = 4096 buckets = 16KB of index, sized so rings of dozens
// of members stay O(1) while the index still fits in L1/L2.
const bucketBits = 12

// Ring is an immutable consistent-hash ring mapping keys (device IDs) to
// member node IDs.
type Ring struct {
	vnodes  int
	hashes  []uint32 // sorted point hashes
	owners  []string // owners[i] owns the arc ending at hashes[i]
	members []string // sorted, deduplicated member IDs
	bucket  []int32  // bucket[j] = first i with hashes[i] >= j<<(32-bucketBits)
}

// New builds a ring over the given member IDs with vnodes virtual nodes per
// member (<=0 takes DefaultVNodes). Members are deduplicated; their input
// order does not affect the ring, so every party configured with the same
// member set derives the same ownership no matter how its list was ordered.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, dup := seen[m]; !dup && m != "" {
			seen[m] = struct{}{}
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	type point struct {
		hash  uint32
		owner string
	}
	points := make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		base := m + "#"
		for i := 0; i < vnodes; i++ {
			points = append(points, point{hash: Hash(base + strconv.Itoa(i)), owner: m})
		}
	}
	// Ties (two members hashing one point) are broken by owner order so the
	// ring stays a pure function of the member set.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].owner < points[j].owner
	})
	r.hashes = make([]uint32, len(points))
	r.owners = make([]string, len(points))
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owners[i] = p.owner
	}
	r.bucket = make([]int32, 1<<bucketBits)
	i := 0
	for j := range r.bucket {
		start := uint32(j) << (32 - bucketBits)
		for i < len(r.hashes) && r.hashes[i] < start {
			i++
		}
		r.bucket[j] = int32(i)
	}
	return r
}

// Owner returns the member owning key: the first ring point at or clockwise
// after the key's hash (wrapping at the top). An empty ring owns nothing and
// returns "".
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := Hash(key)
	// First point >= h: the bucket index lands at (or just before) it, and
	// the walk from there is expected-sub-one steps (see bucketBits).
	i := int(r.bucket[h>>(32-bucketBits)])
	for i < len(r.hashes) && r.hashes[i] < h {
		i++
	}
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// Members returns the deduplicated, sorted member IDs.
func (r *Ring) Members() []string { return r.members }

// Size is the number of members on the ring.
func (r *Ring) Size() int { return len(r.members) }

// VNodes is the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Hash places keys and vnode points on the ring: FNV-1a (the hash family
// the manager's lock stripes use) followed by a murmur3-style avalanche
// finalizer. Raw FNV-1a clusters badly on the near-identical strings members
// produce ("host:9001#17" vs "host:9002#17"), leaving >20% ownership
// imbalance even at 128 vnodes; the finalizer is a bijection on uint32 — it
// changes no equality relations, only disperses the points — and brings the
// imbalance under the 15% budget.
func Hash(s string) uint32 {
	return fmix32(fnv32a(s))
}

// fnv32a is FNV-1a over s, allocation-free (hash/fnv forces a heap handle on
// the hot path). It matches hash/fnv's New32a for byte-identical input.
func fnv32a(s string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// fmix32 is the murmur3 32-bit finalizer: a cheap bijective avalanche.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
