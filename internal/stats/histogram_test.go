package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Errorf("bin %d count = %d, want 1", i, h.Counts[i])
		}
		if f := h.Fraction(i); f != 0.1 {
			t.Errorf("Fraction(%d) = %v", i, f)
		}
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("BinCenter(0) = %v", c)
	}
	if cdf := h.CDF(4); math.Abs(cdf-0.5) > 1e-9 {
		t.Errorf("CDF(4) = %v, want 0.5", cdf)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Errorf("out-of-range values must clamp to edge bins: %v", h.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("Quantile(0.5) = %v, want ~50", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v", q)
	}
	empty := NewHistogram(5, 10, 3)
	if q := empty.Quantile(0.7); q != 5 {
		t.Errorf("empty Quantile = %v, want Lo", q)
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and bins<=0
	h.Add(5)
	if h.Total() != 1 {
		t.Error("degenerate histogram must still record")
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should draw at least one bar")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2.5 {
		t.Errorf("Quantile(0.5) = %v, want 2.5", q)
	}
	if e.Len() != 4 {
		t.Error("Len wrong")
	}
	if NewECDF(nil).At(3) != 0 {
		t.Error("empty ECDF At must be 0")
	}
}
