package core

import (
	"sort"

	"venn/internal/job"
	"venn/internal/stats"
)

// sampleCap bounds the per-profile sample buffers; old samples are evicted
// FIFO so profiles track the recent response-time regime.
const sampleCap = 512

// ring is a bounded FIFO buffer of float64 samples.
type ring struct {
	buf  []float64
	next int
	full bool
}

func (r *ring) add(x float64) {
	if r.buf == nil {
		r.buf = make([]float64, 0, sampleCap)
	}
	if len(r.buf) < sampleCap {
		r.buf = append(r.buf, x)
		return
	}
	r.buf[r.next] = x
	r.next = (r.next + 1) % sampleCap
	r.full = true
}

func (r *ring) len() int { return len(r.buf) }

func (r *ring) values() []float64 { return r.buf }

// profile accumulates (capability, response-duration) pairs for one job or
// globally. The two rings move in lockstep so pair i is (caps[i], durs[i]).
type profile struct {
	caps ring // device capability scores of responders
	durs ring // response durations in seconds
}

func (p *profile) add(capability, durSeconds float64) {
	p.caps.add(capability)
	p.durs.add(durSeconds)
}

func (p *profile) count() int { return p.caps.len() }

// tierThresholds returns the V-1 capability cut points that split the
// profiled participants into V equal-mass tiers (ascending capability).
func (p *profile) tierThresholds(v int) []float64 {
	if v <= 1 || p.count() == 0 {
		return nil
	}
	caps := make([]float64, len(p.caps.buf))
	copy(caps, p.caps.buf)
	sort.Float64s(caps)
	cuts := make([]float64, v-1)
	for i := 1; i < v; i++ {
		cuts[i-1] = stats.PercentileSorted(caps, float64(i)/float64(v)*100)
	}
	return cuts
}

// tierOf maps a capability score to its tier index (0 = slowest) under the
// given thresholds.
func tierOf(capability float64, cuts []float64) int {
	t := 0
	for _, c := range cuts {
		if capability >= c {
			t++
		}
	}
	return t
}

// p95All returns the 95th-percentile response duration across all tiers —
// the statistical tail latency the paper uses for response collection time.
func (p *profile) p95All() float64 {
	if p.durs.len() == 0 {
		return 0
	}
	return stats.Percentile(p.durs.values(), 95)
}

// p95Tier returns the 95th-percentile response duration of one tier, and the
// number of samples it is based on.
func (p *profile) p95Tier(tier int, cuts []float64) (p95 float64, n int) {
	var durs []float64
	for i := range p.caps.buf {
		if tierOf(p.caps.buf[i], cuts) == tier {
			durs = append(durs, p.durs.buf[i])
		}
	}
	if len(durs) == 0 {
		return 0, 0
	}
	return stats.Percentile(durs, 95), len(durs)
}

// speedup returns g_u = t95_u / t95_all for the tier (Algorithm 2 line 3),
// or 1 (no speed-up) when there is not enough data to trust the estimate.
func (p *profile) speedup(tier int, cuts []float64, minSamples int) float64 {
	all := p.p95All()
	if all <= 0 || p.count() < minSamples {
		return 1
	}
	t95, n := p.p95Tier(tier, cuts)
	if n < minSamples/4 || t95 <= 0 {
		return 1
	}
	return t95 / all
}

// profiler keeps a global profile plus per-job profiles; per-job data is
// preferred once the job has participated enough (its device mix and task
// weight differ from the fleet average).
type profiler struct {
	global profile
	byJob  map[job.ID]*profile
	minN   int
}

func newProfiler(minSamples int) *profiler {
	if minSamples <= 0 {
		minSamples = 20
	}
	return &profiler{byJob: make(map[job.ID]*profile), minN: minSamples}
}

func (pf *profiler) observe(id job.ID, capability, durSeconds float64) {
	pf.global.add(capability, durSeconds)
	jp := pf.byJob[id]
	if jp == nil {
		jp = &profile{}
		pf.byJob[id] = jp
	}
	jp.add(capability, durSeconds)
}

// forJob returns the profile to use for a job's matching decision: the job's
// own when mature, the global otherwise, nil when neither has enough data.
func (pf *profiler) forJob(id job.ID) *profile {
	if jp := pf.byJob[id]; jp != nil && jp.count() >= pf.minN {
		return jp
	}
	if pf.global.count() >= pf.minN {
		return &pf.global
	}
	return nil
}

// drop discards a completed job's profile.
func (pf *profiler) drop(id job.ID) { delete(pf.byJob, id) }
