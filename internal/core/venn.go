package core

import (
	"sort"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// Options configure a Venn scheduler instance.
type Options struct {
	// Tiers is V, the device-tier granularity of Algorithm 2 (default 3;
	// 1 disables tiering).
	Tiers int
	// Epsilon is the fairness knob of §4.4 (0 disables).
	Epsilon float64
	// DisableScheduling replaces the IRS job order with FIFO while
	// keeping device matching — the paper's "Venn w/o scheduling"
	// ablation (Figure 11).
	DisableScheduling bool
	// DisableMatching turns off tier-based matching — the paper's
	// "Venn w/o matching" ablation.
	DisableMatching bool
	// MinProfileSamples gates tier decisions on profile maturity.
	MinProfileSamples int
}

// DefaultOptions returns the configuration used in the end-to-end
// evaluation: 3 tiers, fairness knob off.
func DefaultOptions() Options {
	return Options{Tiers: 3, MinProfileSamples: 20}
}

// vgroup is one resource-homogeneous job group at run time.
type vgroup struct {
	req    device.Requirement
	region device.RegionSet
	jobs   []*job.Job // open requests, sorted by adjusted remaining demand
	state  *GroupState
}

// Venn is the paper's CL resource manager. It implements sim.Scheduler.
type Venn struct {
	opts Options
	env  *sim.Env

	groups    map[device.RequirementKey]*vgroup
	fifo      []*job.Job // request-open order, used when DisableScheduling
	filters   map[job.ID]*tierFilter
	profiles  *profiler
	sdCache   map[job.ID]simtime.Duration
	fairM     map[job.ID]int
	active    int
	lastNow   simtime.Time
	planDirty bool

	// Last computed plan.
	plan       *CellPlan
	planGroups []*vgroup

	// PlanRebuilds counts Algorithm 1 invocations (observability).
	PlanRebuilds int
	// TierFiltersApplied counts requests that ran tier-restricted
	// (observability).
	TierFiltersApplied int
}

// New creates a Venn scheduler with the given options.
func New(opts Options) *Venn {
	if opts.Tiers <= 0 {
		opts.Tiers = 3
	}
	if opts.MinProfileSamples <= 0 {
		opts.MinProfileSamples = 20
	}
	return &Venn{
		opts:     opts,
		groups:   make(map[device.RequirementKey]*vgroup),
		filters:  make(map[job.ID]*tierFilter),
		profiles: newProfiler(opts.MinProfileSamples),
		sdCache:  make(map[job.ID]simtime.Duration),
		fairM:    make(map[job.ID]int),
	}
}

// NewDefault creates a Venn scheduler with DefaultOptions.
func NewDefault() *Venn { return New(DefaultOptions()) }

// Name implements sim.Scheduler.
func (v *Venn) Name() string {
	switch {
	case v.opts.DisableScheduling && v.opts.DisableMatching:
		return "Venn-w/o-both"
	case v.opts.DisableScheduling:
		return "Venn-w/o-sched"
	case v.opts.DisableMatching:
		return "Venn-w/o-match"
	default:
		return "Venn"
	}
}

// Bind implements sim.Scheduler.
func (v *Venn) Bind(env *sim.Env) { v.env = env }

// OnJobArrival implements sim.Scheduler.
func (v *Venn) OnJobArrival(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active++
	v.fairM[j.ID] = v.active
	v.soloJCT(j) // prime the no-contention estimate at arrival conditions
}

// OnRequest implements sim.Scheduler.
func (v *Venn) OnRequest(j *job.Job, now simtime.Time) {
	v.lastNow = now
	g := v.ensureGroup(j.Requirement)
	if !containsJob(g.jobs, j.ID) {
		g.jobs = append(g.jobs, j)
	}
	if !containsJob(v.fifo, j.ID) {
		v.fifo = append(v.fifo, j)
		// FIFO means arrival order across the job's whole lifetime, not
		// request-reopen order (a job must not lose its place between
		// rounds).
		sort.SliceStable(v.fifo, func(a, b int) bool {
			if v.fifo[a].Arrival != v.fifo[b].Arrival {
				return v.fifo[a].Arrival < v.fifo[b].Arrival
			}
			return v.fifo[a].ID < v.fifo[b].ID
		})
	}
	if f := v.decideTier(j, now); f != nil {
		v.filters[j.ID] = f
		v.TierFiltersApplied++
	} else {
		delete(v.filters, j.ID)
	}
	v.planDirty = true
}

// OnRequestFulfilled implements sim.Scheduler.
func (v *Venn) OnRequestFulfilled(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.removeOpen(j)
	v.planDirty = true
}

// OnJobDone implements sim.Scheduler.
func (v *Venn) OnJobDone(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active--
	v.removeOpen(j)
	v.profiles.drop(j.ID)
	delete(v.sdCache, j.ID)
	delete(v.fairM, j.ID)
	delete(v.filters, j.ID)
	v.planDirty = true
}

// ObserveResponse implements sim.Scheduler.
func (v *Venn) ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time) {
	v.profiles.observe(j.ID, d.Capability(), dur.Seconds())
}

// Assign implements sim.Scheduler.
func (v *Venn) Assign(d *device.Device, now simtime.Time) *job.Job {
	v.lastNow = now
	if v.opts.DisableScheduling {
		return v.assignFIFO(d)
	}
	v.ensurePlan(now)
	cell := v.env.Grid.CellOfDevice(d)
	if int(cell) >= len(v.plan.Order) {
		return nil
	}
	for _, gi := range v.plan.Order[cell] {
		g := v.planGroups[gi]
		if jb := v.pickFromGroup(g, d, now); jb != nil {
			return jb
		}
	}
	return nil
}

// pickFromGroup returns the first job in the group's order that can take the
// device, honoring tier filters (devices outside a job's tier flow to the
// next job in the group).
func (v *Venn) pickFromGroup(g *vgroup, d *device.Device, now simtime.Time) *job.Job {
	for _, j := range g.jobs {
		if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
			continue
		}
		if !j.Requirement.Eligible(d) {
			continue
		}
		if f := v.filters[j.ID]; f != nil && now < f.lapseAt && !f.accepts(d) {
			continue
		}
		return j
	}
	return nil
}

// assignFIFO is the Venn-w/o-scheduling ablation: FIFO request order with
// tier-based matching still in force.
func (v *Venn) assignFIFO(d *device.Device) *job.Job {
	for _, j := range v.fifo {
		if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
			continue
		}
		if !j.Requirement.Eligible(d) {
			continue
		}
		if f := v.filters[j.ID]; f != nil && v.lastNow < f.lapseAt && !f.accepts(d) {
			continue
		}
		return j
	}
	return nil
}

// ensurePlan lazily recomputes the IRS allocation and cell plan.
func (v *Venn) ensurePlan(now simtime.Time) {
	if !v.planDirty && v.plan != nil {
		return
	}
	v.planDirty = false
	v.PlanRebuilds++

	// Collect groups with open requests and refresh their state.
	v.planGroups = v.planGroups[:0]
	for _, g := range v.groups {
		if len(g.jobs) == 0 {
			continue
		}
		g.state = &GroupState{
			Region: g.region,
			Supply: v.env.RegionRatePerHour(g.region, now),
			Queue:  v.adjustedQueue(g.jobs),
		}
		// Intra-group order: fairness-adjusted remaining demand,
		// smallest first (Algorithm 1 line 3).
		sort.SliceStable(g.jobs, func(a, b int) bool {
			da, db := v.adjustedDemand(g.jobs[a]), v.adjustedDemand(g.jobs[b])
			if da != db {
				return da < db
			}
			return g.jobs[a].ID < g.jobs[b].ID
		})
		v.planGroups = append(v.planGroups, g)
	}
	// Deterministic planning order regardless of map iteration.
	sort.SliceStable(v.planGroups, func(a, b int) bool {
		ka, kb := v.planGroups[a].req.Key(), v.planGroups[b].req.Key()
		if ka.MinCPU != kb.MinCPU {
			return ka.MinCPU < kb.MinCPU
		}
		return ka.MinMem < kb.MinMem
	})

	states := make([]*GroupState, len(v.planGroups))
	for i, g := range v.planGroups {
		states[i] = g.state
	}
	rates := make([]float64, v.env.Grid.NumCells())
	useDB := v.env.DB != nil && v.env.DB.HasHistory(now, 6)
	for c := range rates {
		rates[c] = v.env.CellRatePerHour(device.CellID(c), now, useDB)
	}
	ComputeAllocation(states, rates)
	v.plan = BuildCellPlan(states, v.env.Grid.NumCells())
}

func (v *Venn) ensureGroup(req device.Requirement) *vgroup {
	key := req.Key()
	if g, ok := v.groups[key]; ok {
		return g
	}
	g := &vgroup{req: req, region: v.env.Grid.RegionOf(req)}
	v.groups[key] = g
	return g
}

func (v *Venn) removeOpen(j *job.Job) {
	if g, ok := v.groups[j.Requirement.Key()]; ok {
		g.jobs = removeJob(g.jobs, j.ID)
	}
	v.fifo = removeJob(v.fifo, j.ID)
}

func containsJob(js []*job.Job, id job.ID) bool {
	for _, j := range js {
		if j.ID == id {
			return true
		}
	}
	return false
}

func removeJob(js []*job.Job, id job.ID) []*job.Job {
	for i, j := range js {
		if j.ID == id {
			return append(js[:i], js[i+1:]...)
		}
	}
	return js
}
