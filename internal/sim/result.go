package sim

import (
	"fmt"
	"strings"

	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
)

// Result summarizes one simulation run.
type Result struct {
	SchedulerName string
	Horizon       simtime.Duration

	Completed  []*job.Job
	Unfinished []*job.Job

	// Aggregate counters.
	Assignments int
	Responses   int
	Failures    int
	Aborts      int
	CheckIns    int

	// Derived metrics (filled by finalize).
	AvgJCT          simtime.Duration
	MedianJCT       simtime.Duration
	AvgSchedDelay   simtime.Duration // mean per-attempt scheduling delay
	AvgResponseTime simtime.Duration // mean per-attempt response-collection time
}

func (r *Result) finalize() {
	jcts := r.JCTSeconds()
	if len(jcts) > 0 {
		r.AvgJCT = simtime.FromSeconds(stats.Mean(jcts))
		r.MedianJCT = simtime.FromSeconds(stats.Median(jcts))
	}
	var sched, resp []float64
	for _, j := range r.Completed {
		for _, rec := range j.Records() {
			for _, a := range rec.Attempts {
				sched = append(sched, a.SchedulingDelay().Seconds())
				resp = append(resp, a.ResponseTime().Seconds())
			}
		}
	}
	if len(sched) > 0 {
		r.AvgSchedDelay = simtime.FromSeconds(stats.Mean(sched))
		r.AvgResponseTime = simtime.FromSeconds(stats.Mean(resp))
	}
}

// JCTSeconds returns the JCT of every completed job, in seconds.
func (r *Result) JCTSeconds() []float64 {
	out := make([]float64, 0, len(r.Completed))
	for _, j := range r.Completed {
		out = append(out, j.JCT().Seconds())
	}
	return out
}

// CompletionRate returns the fraction of jobs that finished within the
// horizon.
func (r *Result) CompletionRate() float64 {
	total := len(r.Completed) + len(r.Unfinished)
	if total == 0 {
		return 0
	}
	return float64(len(r.Completed)) / float64(total)
}

// JobJCT looks up the JCT (seconds) of a specific completed job; ok reports
// whether the job completed.
func (r *Result) JobJCT(id job.ID) (secs float64, ok bool) {
	for _, j := range r.Completed {
		if j.ID == id {
			return j.JCT().Seconds(), true
		}
	}
	return 0, false
}

// String renders a one-paragraph run summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d jobs done, avg JCT %v (median %v), avg sched delay %v, avg resp time %v, %d assignments, %d aborts",
		r.SchedulerName, len(r.Completed), len(r.Completed)+len(r.Unfinished),
		r.AvgJCT, r.MedianJCT, r.AvgSchedDelay, r.AvgResponseTime, r.Assignments, r.Aborts)
	return b.String()
}

// SpeedupOver returns baseline.AvgJCT / r.AvgJCT computed over the jobs both
// runs completed (paired comparison), the metric every table of the paper
// reports. Returns 0 when there is no overlap.
func (r *Result) SpeedupOver(baseline *Result) float64 {
	var mine, theirs float64
	n := 0
	for _, j := range r.Completed {
		if base, ok := baseline.JobJCT(j.ID); ok {
			mine += j.JCT().Seconds()
			theirs += base
			n++
		}
	}
	if n == 0 || mine <= 0 {
		return 0
	}
	return theirs / mine
}
