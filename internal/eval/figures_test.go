package eval

import (
	"testing"

	"venn/internal/workload"
)

func TestFigure3Toy(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, name := range []string{"Random", "SRSF", "Venn"} {
		if res.AvgJCT[name] <= 0 {
			t.Fatalf("%s produced no JCT", name)
		}
	}
	if res.AvgJCT["Venn"] > res.AvgJCT["Random"]+0.01 {
		t.Errorf("toy example: Venn (%.1f) should not be slower than Random (%.1f)",
			res.AvgJCT["Venn"], res.AvgJCT["Random"])
	}
}

func TestFigure2aDiurnal(t *testing.T) {
	res := Figure2a(800, 3)
	if ratio := res.PeakTroughRatio(); ratio < 1.5 {
		t.Errorf("diurnal amplitude too flat: peak/trough = %.2f, want >= 1.5", ratio)
	}
}

func TestFigure8aStrata(t *testing.T) {
	res := Figure8a(3000, 5)
	t.Log("\n" + res.Render())
	gen := res.Fractions["General"]
	hp := res.Fractions["High-Perf"]
	if gen != 1.0 {
		t.Errorf("General must cover all devices, got %.2f", gen)
	}
	if hp <= 0 || hp >= gen {
		t.Errorf("High-Perf fraction %.2f must be positive and below General", hp)
	}
	for _, mid := range []string{"Compute-Rich", "Memory-Rich"} {
		if f := res.Fractions[mid]; f <= hp || f >= gen {
			t.Errorf("%s fraction %.2f must lie strictly between High-Perf %.2f and General %.2f",
				mid, f, hp, gen)
		}
	}
}

func TestFigure5Breakdown(t *testing.T) {
	res, err := Figure5(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if res.SchedDelaySec[20] <= res.RespTimeSec[20] {
		t.Errorf("under contention scheduling delay (%.0fs) should dominate response time (%.0fs)",
			res.SchedDelaySec[20], res.RespTimeSec[20])
	}
}

func TestFigure10Overhead(t *testing.T) {
	res := Figure10()
	t.Log("\n" + res.Render())
	last := res.JobLatency[len(res.JobLatency)-1]
	if last.Milliseconds() > 100 {
		t.Errorf("planning latency at 1000 jobs too high: %v", last)
	}
}

func TestFigure11Ablation(t *testing.T) {
	res, err := Figure11(ScaleQuick, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, sc := range res.Workloads {
		if res.Speedup[sc]["Venn"] <= 0 {
			t.Errorf("%v: Venn speedup missing", sc)
		}
	}
}

func TestFigure13Tiers(t *testing.T) {
	res, err := Figure13(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, v := range res.Tiers {
		if res.Speedup[v] <= 0 {
			t.Errorf("tiers=%d: no speedup recorded", v)
		}
	}
}

func TestFigure14Fairness(t *testing.T) {
	res, err := Figure14(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// At quick scale contention is mild and most jobs already meet their
	// fair share at eps=0, so only sanity-check the sweep here; the
	// paper-shape assertion (attainment rises with eps) lives in the
	// default-scale bench harness.
	for _, eps := range res.Epsilons {
		if res.Speedup[eps] <= 0 {
			t.Errorf("eps=%.0f: no speedup recorded", eps)
		}
		if res.FairShare[eps] < 0 || res.FairShare[eps] > 1 {
			t.Errorf("eps=%.0f: fair-share fraction %.2f out of range", eps, res.FairShare[eps])
		}
	}
}

func TestTable1Quick(t *testing.T) {
	res, err := Table1(ScaleQuick, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, sc := range res.Scenarios {
		if res.Speedup[sc]["Venn"] <= 0.8 {
			t.Errorf("%v: Venn speedup %.2f too low", sc, res.Speedup[sc]["Venn"])
		}
	}
	_ = workload.Scenarios()
}
