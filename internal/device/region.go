package device

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// CellID indexes an atomic cell of a Grid. Cells are numbered row-major:
// cell = memBand*numCPUBands + cpuBand.
type CellID int

// Grid partitions the (CPU, Mem) score plane into atomic cells induced by
// the distinct thresholds of a set of requirements. Every requirement's
// eligible region is an exact, axis-aligned union of cells: the upper-right
// sub-grid at its thresholds. The grid is immutable once built.
type Grid struct {
	cpuCuts []float64 // ascending, cpuCuts[0] == 0
	memCuts []float64 // ascending, memCuts[0] == 0
}

// NewGrid builds the atomic-cell grid for the given requirements. The zero
// threshold is always included so the grid covers the whole plane.
func NewGrid(reqs []Requirement) *Grid {
	cpuSet := map[int64]float64{0: 0}
	memSet := map[int64]float64{0: 0}
	for _, r := range reqs {
		k := r.Key()
		cpuSet[k.MinCPU] = r.MinCPU
		memSet[k.MinMem] = r.MinMem
	}
	g := &Grid{}
	for _, v := range cpuSet {
		g.cpuCuts = append(g.cpuCuts, v)
	}
	for _, v := range memSet {
		g.memCuts = append(g.memCuts, v)
	}
	sort.Float64s(g.cpuCuts)
	sort.Float64s(g.memCuts)
	return g
}

// NumCells returns the total number of atomic cells.
func (g *Grid) NumCells() int { return len(g.cpuCuts) * len(g.memCuts) }

// CPUBands returns the number of CPU bands.
func (g *Grid) CPUBands() int { return len(g.cpuCuts) }

// MemBands returns the number of memory bands.
func (g *Grid) MemBands() int { return len(g.memCuts) }

// CellOf returns the atomic cell containing the given scores.
func (g *Grid) CellOf(cpu, mem float64) CellID {
	ci := bandOf(g.cpuCuts, cpu)
	mi := bandOf(g.memCuts, mem)
	return CellID(mi*len(g.cpuCuts) + ci)
}

// CellOfDevice returns the atomic cell containing the device.
func (g *Grid) CellOfDevice(d *Device) CellID { return g.CellOf(d.CPU, d.Mem) }

// bandOf returns the index of the highest cut <= x. Hand-rolled binary
// search: sort.SearchFloat64s costs a non-inlinable closure call per probe,
// which is measurable on the per-device assignment hot path.
func bandOf(cuts []float64, x float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cuts[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// CellCorner returns the lower-left corner (cpu, mem) of the cell, i.e. the
// minimum scores of any device in that cell.
func (g *Grid) CellCorner(c CellID) (cpu, mem float64) {
	nc := len(g.cpuCuts)
	return g.cpuCuts[int(c)%nc], g.memCuts[int(c)/nc]
}

// CellBounds returns the half-open score rectangle [cpuLo,cpuHi)x[memLo,memHi)
// covered by the cell. The top band extends to 1 (inclusive upper score).
func (g *Grid) CellBounds(c CellID) (cpuLo, cpuHi, memLo, memHi float64) {
	nc := len(g.cpuCuts)
	ci, mi := int(c)%nc, int(c)/nc
	cpuLo, memLo = g.cpuCuts[ci], g.memCuts[mi]
	cpuHi, memHi = 1.0, 1.0
	if ci+1 < len(g.cpuCuts) {
		cpuHi = g.cpuCuts[ci+1]
	}
	if mi+1 < len(g.memCuts) {
		memHi = g.memCuts[mi+1]
	}
	return
}

// RegionOf returns the set of cells eligible for the requirement. A cell is
// eligible iff its lower-left corner satisfies the requirement; because the
// grid cuts include every requirement threshold, this is exact.
func (g *Grid) RegionOf(r Requirement) RegionSet {
	s := g.EmptySet()
	for c := 0; c < g.NumCells(); c++ {
		cpu, mem := g.CellCorner(CellID(c))
		if r.EligibleScores(cpu, mem) {
			s.Insert(CellID(c))
		}
	}
	return s
}

// UniverseSet returns the set of all cells.
func (g *Grid) UniverseSet() RegionSet {
	s := g.EmptySet()
	for c := 0; c < g.NumCells(); c++ {
		s.Insert(CellID(c))
	}
	return s
}

// EmptySet returns an empty region sized for this grid.
func (g *Grid) EmptySet() RegionSet {
	return RegionSet{words: make([]uint64, (g.NumCells()+63)/64), n: g.NumCells()}
}

// RegionSet is a set of atomic cells, backed by a bitset. Methods with value
// receivers treat the set as immutable and return new sets; Insert/Remove
// mutate in place.
type RegionSet struct {
	words []uint64
	n     int // grid cell count, for bounds and iteration
}

// Insert adds cell c to the set.
func (s *RegionSet) Insert(c CellID) {
	s.words[int(c)/64] |= 1 << (uint(c) % 64)
}

// Remove deletes cell c from the set.
func (s *RegionSet) Remove(c CellID) {
	s.words[int(c)/64] &^= 1 << (uint(c) % 64)
}

// Has reports whether cell c is in the set.
func (s RegionSet) Has(c CellID) bool {
	if int(c) < 0 || int(c) >= s.n {
		return false
	}
	return s.words[int(c)/64]&(1<<(uint(c)%64)) != 0
}

// Count returns the number of cells in the set.
func (s RegionSet) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no cells.
func (s RegionSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s RegionSet) Clone() RegionSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return RegionSet{words: w, n: s.n}
}

// CopyFrom makes s an independent copy of t, reusing s's storage when it has
// capacity (the allocation-free counterpart of Clone).
func (s *RegionSet) CopyFrom(t RegionSet) {
	s.words = append(s.words[:0], t.words...)
	s.n = t.n
}

// Clear removes every cell, keeping the set's grid size and storage.
func (s *RegionSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AccumulateDiff adds to s every cell on which a and b disagree (their
// symmetric difference). Used by the incremental planner to collect the
// cells whose allocation owner changed between two plans.
func (s *RegionSet) AccumulateDiff(a, b RegionSet) {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	for i := 0; i < n && i < len(s.words); i++ {
		s.words[i] |= a.words[i] ^ b.words[i]
	}
	// Tail words present in only one operand differ wherever they are set.
	for i := n; i < len(s.words); i++ {
		if i < len(a.words) {
			s.words[i] |= a.words[i]
		}
		if i < len(b.words) {
			s.words[i] |= b.words[i]
		}
	}
}

// UnionWith adds every cell of t to s, in place. Cells of t beyond s's grid
// size are ignored (mirrors Union's clone-of-s semantics).
func (s *RegionSet) UnionWith(t RegionSet) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] |= t.words[i]
	}
}

// SubtractWith removes every cell of t from s, in place.
func (s *RegionSet) SubtractWith(t RegionSet) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// IntersectOf sets s = a ∩ b, reusing s's storage. s takes a's grid size
// (identical to a.Intersect(b) without the allocation once s has capacity).
func (s *RegionSet) IntersectOf(a, b RegionSet) {
	s.words = append(s.words[:0], a.words...)
	s.n = a.n
	for i := range s.words {
		if i < len(b.words) {
			s.words[i] &= b.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// WeightedSum sums w[c] over the cells c of the set; cells with no weight
// entry contribute zero. It is the closure-free equivalent of iterating with
// ForEach, used on the planner's hot path.
func (s RegionSet) WeightedSum(w []float64) float64 {
	total := 0.0
	for i, word := range s.words {
		base := i * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if c := base + b; c < len(w) {
				total += w[c]
			}
			word &= word - 1
		}
	}
	return total
}

// Union returns s ∪ t.
func (s RegionSet) Union(t RegionSet) RegionSet {
	out := s.Clone()
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] |= t.words[i]
		}
	}
	return out
}

// Intersect returns s ∩ t.
func (s RegionSet) Intersect(t RegionSet) RegionSet {
	out := s.Clone()
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &= t.words[i]
		} else {
			out.words[i] = 0
		}
	}
	return out
}

// Subtract returns s \ t.
func (s RegionSet) Subtract(t RegionSet) RegionSet {
	out := s.Clone()
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &^= t.words[i]
		}
	}
	return out
}

// Overlaps reports whether s ∩ t is non-empty.
func (s RegionSet) Overlaps(t RegionSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsSet reports whether every cell of t is in s.
func (s RegionSet) ContainsSet(t RegionSet) bool {
	for i, w := range t.words {
		if i >= len(s.words) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same cells.
func (s RegionSet) Equal(t RegionSet) bool {
	return s.ContainsSet(t) && t.ContainsSet(s)
}

// Cells returns the cells of the set in ascending order.
func (s RegionSet) Cells() []CellID {
	out := make([]CellID, 0, s.Count())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, CellID(i*64+b))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every cell in ascending order.
func (s RegionSet) ForEach(fn func(CellID)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(CellID(i*64 + b))
			w &= w - 1
		}
	}
}

// String renders the set as {c0,c3,...}.
func (s RegionSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(c CellID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", c)
	})
	b.WriteByte('}')
	return b.String()
}
