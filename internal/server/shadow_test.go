package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/policy"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// waitShadowStats polls the metrics endpoint until the named shadow's
// counters satisfy ok (shadow runners drain their event queues
// asynchronously).
func waitShadowStats(t *testing.T, m *Manager, name string, ok func(PolicyShadowStats) bool) PolicyShadowStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, found := m.MetricsSnapshot().PolicyShadows[name]
		if found && ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow %q never reached expected state: %+v", name, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShadowObservesPrimary(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(Config{Clock: clk.now, ShadowPolicies: []string{"fifo"}, Seed: 1})
	defer m.StopShadows()

	if got := m.PolicyName(); got != "venn" {
		t.Fatalf("primary policy = %q, want venn", got)
	}
	if got := m.ShadowPolicies(); !reflect.DeepEqual(got, []string{"fifo"}) {
		t.Fatalf("shadow policies = %v", got)
	}

	st, err := m.RegisterJob(JobSpec{Name: "kbd", Category: "General", DemandPerRound: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		clk.advance(time.Minute)
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: 0.6, Mem: 0.6})
		if err != nil || !asg.Assigned {
			t.Fatalf("check-in %d: %+v %v", i, asg, err)
		}
		if asg.Policy != "venn" {
			t.Errorf("assignment policy attribution = %q, want venn", asg.Policy)
		}
	}
	for i := 0; i < 2; i++ {
		if err := m.DeviceReport(Report{DeviceID: fmt.Sprintf("d%d", i), JobID: st.ID, OK: true, DurationSeconds: 30}); err != nil {
			t.Fatal(err)
		}
	}

	// The fifo shadow saw the same single-job world: it must have scored
	// both check-ins, assigned both (only one job to pick), agreed with the
	// primary, and drained its queue once the round completed.
	got := waitShadowStats(t, m, "fifo", func(s PolicyShadowStats) bool {
		return s.AssignChecks == 2 && s.QueueDepth == 0
	})
	if got.ShadowAssigns != 2 || got.Mismatches != 0 {
		t.Errorf("fifo shadow diverged on a one-job world: %+v", got)
	}
	if got.DroppedEvents != 0 || got.Panics != 0 {
		t.Errorf("unhealthy shadow counters: %+v", got)
	}
	mt := m.MetricsSnapshot()
	if mt.PolicyPrimary != "venn" {
		t.Errorf("metrics policy_primary = %q", mt.PolicyPrimary)
	}
}

// hostilePolicy is a worst-case shadow: it panics or stalls on every call it
// can. Registered under test-only names; the primary must be unaffected.
type hostilePolicy struct{ mode string }

func (p *hostilePolicy) Name() string                              { return "hostile-" + p.mode }
func (p *hostilePolicy) Bind(*sim.Env)                             {}
func (p *hostilePolicy) OnJobArrival(*job.Job, simtime.Time)       {}
func (p *hostilePolicy) OnRequest(*job.Job, simtime.Time)          {}
func (p *hostilePolicy) OnRequestFulfilled(*job.Job, simtime.Time) {}
func (p *hostilePolicy) OnJobDone(*job.Job, simtime.Time)          {}
func (p *hostilePolicy) Assign(*device.Device, simtime.Time) *job.Job {
	switch p.mode {
	case "panic":
		panic("hostile shadow policy")
	case "slow":
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}
func (p *hostilePolicy) ObserveResponse(*job.Job, *device.Device, simtime.Duration, simtime.Time) {
}

func registerHostilePolicies() {
	policy.Register("test-hostile-panic", func(policy.Config) policy.Policy {
		return &hostilePolicy{mode: "panic"}
	})
	policy.Register("test-hostile-slow", func(policy.Config) policy.Policy {
		return &hostilePolicy{mode: "slow"}
	})
}

// driveDeterministic replays a fixed traffic script and returns the primary's
// assignment sequence (job ID per check-in, -1 for refusals).
func driveDeterministic(t *testing.T, m *Manager, clk *fakeClock) []int {
	t.Helper()
	j1, err := m.RegisterJob(JobSpec{Name: "a", Category: "General", DemandPerRound: 3, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterJob(JobSpec{Name: "b", Category: "High-Perf", DemandPerRound: 2, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	var picks []int
	for i := 0; i < 12; i++ {
		clk.advance(30 * time.Second)
		cpu := 0.2 + float64(i%8)/10
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("d%d", i), CPU: cpu, Mem: cpu})
		if err != nil {
			t.Fatal(err)
		}
		if asg.Assigned {
			picks = append(picks, asg.JobID)
			if err := m.DeviceReport(Report{DeviceID: fmt.Sprintf("d%d", i), JobID: asg.JobID, OK: true, DurationSeconds: 20}); err != nil {
				t.Fatal(err)
			}
		} else {
			picks = append(picks, -1)
		}
	}
	if got, _ := m.JobStatusByID(j1.ID); got.CompletedRounds == 0 {
		t.Fatalf("scripted traffic completed no rounds: %+v", got)
	}
	return picks
}

// TestHostileShadowIsolation proves satellite 3: a panicking or stalling
// shadow policy must never change the primary's assignments or job progress.
// The same seeded traffic runs against a shadow-free manager and one
// saddled with two hostile shadows; the assignment sequences must match
// exactly, and the hostile panics must be recovered and counted.
func TestHostileShadowIsolation(t *testing.T) {
	registerHostilePolicies()

	clk1 := newFakeClock()
	clean := NewManager(Config{Clock: clk1.now, Seed: 42})
	want := driveDeterministic(t, clean, clk1)

	clk2 := newFakeClock()
	m := NewManager(Config{
		Clock:          clk2.now,
		Seed:           42,
		ShadowPolicies: []string{"test-hostile-panic", "test-hostile-slow", "fifo"},
	})
	defer m.StopShadows()
	got := driveDeterministic(t, m, clk2)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("hostile shadows perturbed primary assignments:\n got %v\nwant %v", got, want)
	}

	// Every scored check-in panicked in the hostile shadow; all recovered.
	st := waitShadowStats(t, m, "test-hostile-panic", func(s PolicyShadowStats) bool {
		return s.Panics > 0
	})
	if st.Panics == 0 {
		t.Errorf("hostile panics not counted: %+v", st)
	}
	// The healthy shadow riding alongside stayed healthy.
	fifoSt := waitShadowStats(t, m, "fifo", func(s PolicyShadowStats) bool {
		return s.AssignChecks > 0
	})
	if fifoSt.Panics != 0 {
		t.Errorf("healthy shadow panicked: %+v", fifoSt)
	}
}

// TestShadowConcurrentLoad hammers a shadowed manager from many goroutines
// (single, batched, and read-side paths) with a hostile shadow attached; run
// under -race it proves the shadow fan-out introduces no data race and no
// serving-path blocking. Uses the real clock like the other race tests.
func TestShadowConcurrentLoad(t *testing.T) {
	registerHostilePolicies()
	m := NewManager(Config{
		Seed:           7,
		ShadowPolicies: []string{"fifo", "test-hostile-panic", "test-hostile-slow"},
	})
	defer m.StopShadows()

	const jobs = 4
	for i := 0; i < jobs; i++ {
		if _, err := m.RegisterJob(JobSpec{
			Name: fmt.Sprintf("shadow-race-%d", i), Category: "General",
			DemandPerRound: 40, Rounds: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 32
	const devicesPerWork = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				cis := make([]CheckIn, devicesPerWork)
				for i := range cis {
					cis[i] = CheckIn{
						DeviceID: fmt.Sprintf("sw%d-d%d", w, i),
						CPU:      float64((w+i)%10) / 10,
						Mem:      float64((w+2*i)%10) / 10,
					}
				}
				var reports []Report
				for i, r := range m.CheckInBatch(cis) {
					if r.Assigned {
						reports = append(reports, Report{
							DeviceID: cis[i].DeviceID, JobID: r.JobID,
							OK: true, DurationSeconds: 4,
						})
					}
				}
				if len(reports) > 0 {
					m.ReportBatch(reports)
				}
				return
			}
			for i := 0; i < devicesPerWork; i++ {
				id := fmt.Sprintf("sw%d-d%d", w, i)
				asg, err := m.DeviceCheckIn(CheckIn{
					DeviceID: id,
					CPU:      float64((w+i)%10) / 10,
					Mem:      float64((w+3*i)%10) / 10,
				})
				if err != nil {
					t.Errorf("check-in %s: %v", id, err)
					return
				}
				if asg.Assigned {
					if err := m.DeviceReport(Report{DeviceID: id, JobID: asg.JobID, OK: true, DurationSeconds: 3}); err != nil {
						t.Errorf("report %s: %v", id, err)
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = m.MetricsSnapshot()
				_ = m.StatsSnapshot()
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if st := m.StatsSnapshot(); st.Assignments == 0 {
		t.Fatalf("no assignments under load: %+v", st)
	}
	// Shadows may legitimately drop events under this load (bounded queue,
	// hostile stall) but must never panic unrecovered or corrupt counters:
	// checks >= assigns, and the hostile shadow's panics are all counted.
	mt := m.MetricsSnapshot()
	for name, s := range mt.PolicyShadows {
		if s.ShadowAssigns > s.AssignChecks {
			t.Errorf("shadow %s: assigns %d > checks %d", name, s.ShadowAssigns, s.AssignChecks)
		}
	}
	if s := mt.PolicyShadows["test-hostile-panic"]; s.AssignChecks > 0 && s.Panics == 0 {
		t.Errorf("hostile shadow scored %d check-ins with no panics counted", s.AssignChecks)
	}
}
