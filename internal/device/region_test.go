package device

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// standardGrid builds the grid of the four evaluation strata: a 2x2 cell
// grid cut at 0.5 on both axes.
func standardGrid() *Grid { return NewGrid(Categories()) }

func TestGridShape(t *testing.T) {
	g := standardGrid()
	if g.NumCells() != 4 || g.CPUBands() != 2 || g.MemBands() != 2 {
		t.Fatalf("grid shape: cells=%d cpu=%d mem=%d", g.NumCells(), g.CPUBands(), g.MemBands())
	}
	// Duplicated thresholds must not add cells.
	g2 := NewGrid(append(Categories(), Categories()...))
	if g2.NumCells() != 4 {
		t.Errorf("duplicate requirements inflated the grid to %d cells", g2.NumCells())
	}
	// An empty requirement set still yields the unit cell.
	g3 := NewGrid(nil)
	if g3.NumCells() != 1 {
		t.Errorf("empty grid should have 1 cell, got %d", g3.NumCells())
	}
}

func TestCellOfBoundaries(t *testing.T) {
	g := standardGrid()
	cases := []struct {
		cpu, mem float64
		want     CellID
	}{
		{0, 0, 0},
		{0.49, 0.49, 0},
		{0.5, 0, 1}, // boundary is inclusive on the upper band
		{1, 0.49, 1},
		{0, 0.5, 2},
		{0.49, 1, 2},
		{0.5, 0.5, 3},
		{1, 1, 3},
	}
	for _, c := range cases {
		if got := g.CellOf(c.cpu, c.mem); got != c.want {
			t.Errorf("CellOf(%v,%v) = %d, want %d", c.cpu, c.mem, got, c.want)
		}
	}
}

func TestRegionOfStandardCategories(t *testing.T) {
	g := standardGrid()
	if got := g.RegionOf(General).Count(); got != 4 {
		t.Errorf("General covers %d cells, want 4", got)
	}
	if got := g.RegionOf(ComputeRich).Cells(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Compute-Rich cells = %v, want [1 3]", got)
	}
	if got := g.RegionOf(MemoryRich).Cells(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Memory-Rich cells = %v, want [2 3]", got)
	}
	if got := g.RegionOf(HighPerf).Cells(); len(got) != 1 || got[0] != 3 {
		t.Errorf("High-Perf cells = %v, want [3]", got)
	}
	// Set relations mirror requirement containment.
	if !g.RegionOf(General).ContainsSet(g.RegionOf(HighPerf)) {
		t.Error("General region must contain High-Perf region")
	}
	inter := g.RegionOf(ComputeRich).Intersect(g.RegionOf(MemoryRich))
	if !inter.Equal(g.RegionOf(HighPerf)) {
		t.Error("Compute ∩ Memory must equal High-Perf")
	}
}

// TestEligibilityMatchesRegionProperty is the core exactness property of the
// grid construction: for any set of requirements and any device, membership
// of the device's cell in a requirement's region must coincide with direct
// eligibility.
func TestEligibilityMatchesRegionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		reqs := make([]Requirement, n)
		for i := range reqs {
			reqs[i] = Requirement{
				MinCPU: float64(rng.Intn(10)) / 10,
				MinMem: float64(rng.Intn(10)) / 10,
			}
		}
		g := NewGrid(reqs)
		regions := make([]RegionSet, n)
		for i, r := range reqs {
			regions[i] = g.RegionOf(r)
		}
		for k := 0; k < 50; k++ {
			cpu, mem := rng.Float64(), rng.Float64()
			cell := g.CellOf(cpu, mem)
			for i, r := range reqs {
				if regions[i].Has(cell) != r.EligibleScores(cpu, mem) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRegionSetAlgebraLawsProperty(t *testing.T) {
	g := NewGrid([]Requirement{
		{MinCPU: 0.3}, {MinCPU: 0.7}, {MinMem: 0.4}, {MinMem: 0.8}, {MinCPU: 0.5, MinMem: 0.5},
	})
	universe := g.UniverseSet()
	mkSet := func(bits uint32) RegionSet {
		s := g.EmptySet()
		for c := 0; c < g.NumCells(); c++ {
			if bits&(1<<uint(c%32)) != 0 && c < 32 {
				s.Insert(CellID(c))
			}
		}
		return s
	}
	f := func(aBits, bBits uint32) bool {
		a, b := mkSet(aBits), mkSet(bBits)
		// De Morgan: U \ (a ∪ b) == (U\a) ∩ (U\b)
		left := universe.Subtract(a.Union(b))
		right := universe.Subtract(a).Intersect(universe.Subtract(b))
		if !left.Equal(right) {
			return false
		}
		// |a| = |a∩b| + |a\b|
		if a.Count() != a.Intersect(b).Count()+a.Subtract(b).Count() {
			return false
		}
		// Overlap consistency.
		if a.Overlaps(b) != !a.Intersect(b).Empty() {
			return false
		}
		// Union contains both.
		u := a.Union(b)
		return u.ContainsSet(a) && u.ContainsSet(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegionSetInsertRemove(t *testing.T) {
	g := standardGrid()
	s := g.EmptySet()
	if !s.Empty() {
		t.Fatal("new set must be empty")
	}
	s.Insert(2)
	if !s.Has(2) || s.Count() != 1 {
		t.Fatal("Insert broken")
	}
	s.Remove(2)
	if s.Has(2) || !s.Empty() {
		t.Fatal("Remove broken")
	}
	if s.Has(-1) || s.Has(99) {
		t.Error("out-of-range Has must be false")
	}
}

func TestRegionSetCloneIsIndependent(t *testing.T) {
	g := standardGrid()
	a := g.EmptySet()
	a.Insert(1)
	b := a.Clone()
	b.Insert(3)
	if a.Has(3) {
		t.Error("Clone aliases the original")
	}
	if !b.Has(1) {
		t.Error("Clone lost contents")
	}
}

func TestRegionSetString(t *testing.T) {
	g := standardGrid()
	s := g.EmptySet()
	s.Insert(0)
	s.Insert(3)
	if got := s.String(); got != "{0,3}" {
		t.Errorf("String = %q", got)
	}
	if got := g.EmptySet().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCellCornerAndBounds(t *testing.T) {
	g := standardGrid()
	cpu, mem := g.CellCorner(3)
	if cpu != 0.5 || mem != 0.5 {
		t.Errorf("CellCorner(3) = (%v,%v)", cpu, mem)
	}
	cl, ch, ml, mh := g.CellBounds(0)
	if cl != 0 || ch != 0.5 || ml != 0 || mh != 0.5 {
		t.Errorf("CellBounds(0) = %v %v %v %v", cl, ch, ml, mh)
	}
	cl, ch, ml, mh = g.CellBounds(3)
	if cl != 0.5 || ch != 1 || ml != 0.5 || mh != 1 {
		t.Errorf("CellBounds(3) = %v %v %v %v", cl, ch, ml, mh)
	}
}

func TestForEachOrder(t *testing.T) {
	g := NewGrid([]Requirement{{MinCPU: 0.2}, {MinCPU: 0.4}, {MinCPU: 0.6}, {MinMem: 0.5}})
	s := g.UniverseSet()
	var cells []CellID
	s.ForEach(func(c CellID) { cells = append(cells, c) })
	if len(cells) != g.NumCells() {
		t.Fatalf("ForEach visited %d cells, want %d", len(cells), g.NumCells())
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] <= cells[i-1] {
			t.Fatal("ForEach must visit in ascending order")
		}
	}
}
