package device

import (
	"testing"
)

func TestNewClampsAndDerives(t *testing.T) {
	d := New(1, -0.5, 1.5)
	if d.CPU != 0 || d.Mem != 1 {
		t.Errorf("scores not clamped: cpu=%v mem=%v", d.CPU, d.Mem)
	}
	lo := New(2, 0, 0)
	hi := New(3, 1, 1)
	if lo.Speed >= hi.Speed {
		t.Error("speed must grow with CPU score")
	}
	if lo.FailureProb <= hi.FailureProb {
		t.Error("failure probability must shrink with CPU score")
	}
	if lo.LastTaskDay != -1 {
		t.Error("LastTaskDay must start at -1")
	}
	if lo.Capability() >= hi.Capability() {
		t.Error("capability ordering broken")
	}
}

func TestRequirementEligible(t *testing.T) {
	r := Requirement{Name: "r", MinCPU: 0.5, MinMem: 0.3}
	cases := []struct {
		cpu, mem float64
		want     bool
	}{
		{0.5, 0.3, true},
		{0.6, 0.9, true},
		{0.49, 0.9, false},
		{0.9, 0.29, false},
	}
	for _, c := range cases {
		d := New(0, c.cpu, c.mem)
		if got := r.Eligible(d); got != c.want {
			t.Errorf("Eligible(%v,%v) = %v, want %v", c.cpu, c.mem, got, c.want)
		}
		if got := r.EligibleScores(c.cpu, c.mem); got != c.want {
			t.Errorf("EligibleScores(%v,%v) = %v", c.cpu, c.mem, got)
		}
	}
}

func TestRequirementContains(t *testing.T) {
	if !General.Contains(HighPerf) {
		t.Error("General must contain High-Perf")
	}
	if !ComputeRich.Contains(HighPerf) || !MemoryRich.Contains(HighPerf) {
		t.Error("both mid strata must contain High-Perf")
	}
	if HighPerf.Contains(General) {
		t.Error("High-Perf must not contain General")
	}
	if ComputeRich.Contains(MemoryRich) || MemoryRich.Contains(ComputeRich) {
		t.Error("Compute-Rich and Memory-Rich only overlap, not contain")
	}
}

func TestRequirementKeyGroupsEqualThresholds(t *testing.T) {
	a := Requirement{Name: "a", MinCPU: 0.5, MinMem: 0.25}
	b := Requirement{Name: "b", MinCPU: 0.5, MinMem: 0.25}
	c := Requirement{Name: "c", MinCPU: 0.5, MinMem: 0.26}
	if a.Key() != b.Key() {
		t.Error("identical thresholds must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("distinct thresholds must not share a key")
	}
	// Floating-point noise below 1e-9 must not split a group.
	d := Requirement{MinCPU: 0.5 + 1e-12, MinMem: 0.25}
	if a.Key() != d.Key() {
		t.Error("1e-12 noise split the key")
	}
}

func TestCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 4 {
		t.Fatalf("want 4 categories, got %d", len(cats))
	}
	for i, c := range cats {
		if CategoryIndex(c) != i {
			t.Errorf("CategoryIndex(%s) = %d, want %d", c.Name, CategoryIndex(c), i)
		}
	}
	if CategoryIndex(Requirement{MinCPU: 0.123}) != -1 {
		t.Error("unknown requirement must index -1")
	}
}

func TestDeviceString(t *testing.T) {
	d := New(5, 0.25, 0.75)
	if s := d.String(); s == "" {
		t.Error("empty String")
	}
	if s := General.String(); s != "General" {
		t.Errorf("named requirement String = %q", s)
	}
	anon := Requirement{MinCPU: 0.5, MinMem: 0.5}
	if s := anon.String(); s == "" {
		t.Error("anonymous requirement String empty")
	}
}
