package client

import (
	"net/http/httptest"
	"testing"
	"time"

	"venn/internal/server"
)

func newTestPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	m := server.NewManager(server.Config{})
	srv := httptest.NewServer(server.Handler(m))
	t.Cleanup(srv.Close)
	return NewHTTP(srv.URL), srv
}

func TestClientJobLifecycle(t *testing.T) {
	c, _ := newTestPair(t)
	st, err := c.RegisterJob(server.JobSpec{Name: "kbd", Category: "General", DemandPerRound: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "kbd" || st.State != "scheduling" {
		t.Fatalf("status: %+v", st)
	}

	asg, err := c.CheckIn(server.CheckIn{DeviceID: "d0", CPU: 0.7, Mem: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if !asg.Assigned || asg.JobID != st.ID {
		t.Fatalf("assignment: %+v", asg)
	}
	if err := c.Report(server.Report{DeviceID: "d0", JobID: asg.JobID, OK: true, DurationSeconds: 15}); err != nil {
		t.Fatal(err)
	}

	done, err := c.WaitForJob(st.ID, 10*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job not done: %+v", done)
	}

	jobs, err := c.Jobs()
	if err != nil || len(jobs) != 1 {
		t.Fatalf("Jobs: %v %v", jobs, err)
	}
	stats, err := c.Stats()
	if err != nil || stats.CompletedJobs != 1 {
		t.Fatalf("Stats: %+v %v", stats, err)
	}
}

func TestClientErrorSurfacing(t *testing.T) {
	c, _ := newTestPair(t)
	if _, err := c.RegisterJob(server.JobSpec{Category: "Nope", DemandPerRound: 1, Rounds: 1}); err == nil {
		t.Error("bad category must surface an error")
	}
	if _, err := c.JobStatus(77); err == nil {
		t.Error("unknown job must surface an error")
	}
	if _, err := c.CheckIn(server.CheckIn{}); err == nil {
		t.Error("missing device_id must surface an error")
	}
}

func TestClientWaitTimeout(t *testing.T) {
	c, _ := newTestPair(t)
	st, err := c.RegisterJob(server.JobSpec{Category: "General", DemandPerRound: 5, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForJob(st.ID, 5*time.Millisecond, 30*time.Millisecond); err == nil {
		t.Error("unfulfilled job must time out")
	}
}
