// Package workload constructs the CL job workloads of the paper's
// evaluation (§5.1): five demand scenarios sampled from the job demand trace
// (Even, Small, Large, Low, High), the four requirement-biased workloads of
// the Table 4 case study, Poisson job arrivals with a 30-minute mean
// inter-arrival, and random mapping of jobs onto the four device-eligibility
// categories.
package workload

import (
	"fmt"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/trace"
)

// Scenario selects how job specs are sampled from the demand trace.
type Scenario int

const (
	// Even samples uniformly from the whole trace (the default workload).
	Even Scenario = iota
	// Small samples only jobs with below-average total demand.
	Small
	// Large samples only jobs with above-average total demand.
	Large
	// Low samples only jobs with below-average per-round demand.
	Low
	// High samples only jobs with above-average per-round demand.
	High
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Even:
		return "Even"
	case Small:
		return "Small"
	case Large:
		return "Large"
	case Low:
		return "Low"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Scenarios lists all five demand scenarios in paper order.
func Scenarios() []Scenario { return []Scenario{Even, Small, Large, Low, High} }

// Bias selects the requirement-distribution bias of the Table 4 case study:
// half the jobs ask for the biased category, the rest spread evenly.
type Bias int

const (
	// NoBias maps each job to a uniformly random category.
	NoBias Bias = iota
	// BiasGeneral over-weights General resources.
	BiasGeneral
	// BiasCompute over-weights Compute-Rich resources.
	BiasCompute
	// BiasMemory over-weights Memory-Rich resources.
	BiasMemory
	// BiasResource over-weights High-Performance resources.
	BiasResource
)

// String implements fmt.Stringer.
func (b Bias) String() string {
	switch b {
	case NoBias:
		return "Unbiased"
	case BiasGeneral:
		return "General"
	case BiasCompute:
		return "Compute-heavy"
	case BiasMemory:
		return "Memory-heavy"
	case BiasResource:
		return "Resource-heavy"
	default:
		return fmt.Sprintf("Bias(%d)", int(b))
	}
}

// categoryWeights returns the per-category sampling weights for a bias.
// Order follows device.Categories(): General, Compute, Memory, HighPerf.
func (b Bias) categoryWeights() []float64 {
	even := []float64{0.25, 0.25, 0.25, 0.25}
	biased := func(i int) []float64 {
		w := []float64{1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6}
		w[i] = 0.5
		return w
	}
	switch b {
	case BiasGeneral:
		return biased(0)
	case BiasCompute:
		return biased(1)
	case BiasMemory:
		return biased(2)
	case BiasResource:
		return biased(3)
	default:
		return even
	}
}

// Config parameterizes workload generation.
type Config struct {
	Scenario Scenario
	Bias     Bias
	NumJobs  int
	// MeanInterArrival is the Poisson arrival mean (default 30 min).
	MeanInterArrival simtime.Duration
	Seed             int64

	// TraceSize is the size of the underlying job demand trace the
	// scenario samples from (default 400).
	TraceSize int
	// TraceModel overrides the demand-trace distribution.
	TraceModel *trace.JobTraceModel

	// Scaling: the paper's jobs run for days (up to 4000 rounds x 1500
	// participants); simulations scale rounds and per-round demand down
	// proportionally so experiments complete in seconds while preserving
	// the trace's relative shape. Zero values take the defaults below.
	RoundsScale  float64 // default 0.01  (4000 -> 40)
	MinRounds    int     // default 2
	MaxRounds    int     // default 40
	DemandScale  float64 // default 0.2   (1500 -> 300)
	MinDemand    int     // default 5
	MaxDemand    int     // default 300
	TaskScaleLo  float64 // default 0.6   per-job task-duration multiplier
	TaskScaleHi  float64 // default 1.6
	FixedReq     *device.Requirement
	FixedDemand  int // >0 pins every job's per-round demand
	FixedRounds  int // >0 pins every job's round count
	ArrivalStart simtime.Time
}

// normalize fills defaults.
func (c *Config) normalize() {
	if c.NumJobs <= 0 {
		c.NumJobs = 50
	}
	if c.MeanInterArrival <= 0 {
		c.MeanInterArrival = 30 * simtime.Minute
	}
	if c.TraceSize <= 0 {
		c.TraceSize = 400
	}
	if c.TraceModel == nil {
		c.TraceModel = trace.DefaultJobTraceModel()
	}
	if c.RoundsScale <= 0 {
		c.RoundsScale = 0.01
	}
	if c.MinRounds <= 0 {
		c.MinRounds = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 40
	}
	if c.DemandScale <= 0 {
		c.DemandScale = 0.2
	}
	if c.MinDemand <= 0 {
		c.MinDemand = 5
	}
	if c.MaxDemand <= 0 {
		c.MaxDemand = 300
	}
	if c.TaskScaleLo <= 0 {
		c.TaskScaleLo = 0.6
	}
	if c.TaskScaleHi <= c.TaskScaleLo {
		c.TaskScaleHi = c.TaskScaleLo + 1.0
	}
}

// Workload is a generated set of jobs ready for simulation.
type Workload struct {
	Jobs   []*job.Job
	Config Config
}

// Generate builds a workload from the config. Jobs receive IDs 0..NumJobs-1
// and Poisson arrival times.
func Generate(cfg Config) *Workload {
	cfg.normalize()
	rng := stats.NewRNG(cfg.Seed)
	traceRNG := rng.Fork()
	pickRNG := rng.Fork()
	arriveRNG := rng.Fork()
	catRNG := rng.Fork()
	taskRNG := rng.Fork()

	specs := cfg.TraceModel.Generate(cfg.TraceSize, traceRNG)
	pool := filterScenario(specs, cfg.Scenario)
	if len(pool) == 0 {
		pool = specs
	}

	weights := cfg.Bias.categoryWeights()
	cats := device.Categories()

	jobs := make([]*job.Job, 0, cfg.NumJobs)
	at := cfg.ArrivalStart
	for i := 0; i < cfg.NumJobs; i++ {
		spec := pool[pickRNG.Intn(len(pool))]
		rounds := scaleClamp(spec.Rounds, cfg.RoundsScale, cfg.MinRounds, cfg.MaxRounds)
		demand := scaleClamp(spec.DemandPerRound, cfg.DemandScale, cfg.MinDemand, cfg.MaxDemand)
		if cfg.FixedRounds > 0 {
			rounds = cfg.FixedRounds
		}
		if cfg.FixedDemand > 0 {
			demand = cfg.FixedDemand
		}
		req := cats[catRNG.WeightedChoice(weights)]
		if cfg.FixedReq != nil {
			req = *cfg.FixedReq
		}
		j := job.New(job.ID(i), req, demand, rounds, at)
		j.TaskScale = taskRNG.Uniform(cfg.TaskScaleLo, cfg.TaskScaleHi)
		jobs = append(jobs, j)
		at = at.Add(simtime.Duration(arriveRNG.Exp(float64(cfg.MeanInterArrival))))
	}
	return &Workload{Jobs: jobs, Config: cfg}
}

func scaleClamp(x int, scale float64, lo, hi int) int {
	v := int(float64(x)*scale + 0.5)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func filterScenario(specs []trace.JobSpec, s Scenario) []trace.JobSpec {
	switch s {
	case Small:
		small, _ := trace.SplitByTotalDemand(specs)
		return small
	case Large:
		_, large := trace.SplitByTotalDemand(specs)
		return large
	case Low:
		low, _ := trace.SplitByRoundDemand(specs)
		return low
	case High:
		_, high := trace.SplitByRoundDemand(specs)
		return high
	default:
		return specs
	}
}

// Clone returns a deep copy of the workload with fresh job state, so the
// same workload can be replayed under several schedulers (jobs are mutated
// by the simulator).
func (w *Workload) Clone() *Workload {
	jobs := make([]*job.Job, len(w.Jobs))
	for i, j := range w.Jobs {
		nj := job.New(j.ID, j.Requirement, j.Demand, j.Rounds, j.Arrival)
		nj.TaskScale = j.TaskScale
		nj.Name = j.Name
		jobs[i] = nj
	}
	return &Workload{Jobs: jobs, Config: w.Config}
}

// TotalDemand sums lifetime device demand across jobs.
func (w *Workload) TotalDemand() int {
	total := 0
	for _, j := range w.Jobs {
		total += j.TotalDemand()
	}
	return total
}
