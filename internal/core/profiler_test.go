package core

import (
	"testing"

	"venn/internal/stats"
)

func TestRingBounded(t *testing.T) {
	var r ring
	for i := 0; i < sampleCap*2; i++ {
		r.add(float64(i))
	}
	if r.len() != sampleCap {
		t.Fatalf("ring grew to %d, want %d", r.len(), sampleCap)
	}
	// Oldest values must be gone: the ring now holds the second half.
	minVal := r.values()[0]
	for _, v := range r.values() {
		if v < minVal {
			minVal = v
		}
	}
	if minVal < float64(sampleCap)-1 {
		t.Errorf("old samples not evicted: min=%v", minVal)
	}
}

func TestTierThresholdsSplitEvenly(t *testing.T) {
	var p profile
	for i := 0; i < 300; i++ {
		p.add(float64(i)/300, 10)
	}
	cuts := p.tierThresholds(3)
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v", cuts)
	}
	if cuts[0] < 0.25 || cuts[0] > 0.40 || cuts[1] < 0.60 || cuts[1] > 0.75 {
		t.Errorf("cuts %v not near terciles", cuts)
	}
	if p.tierThresholds(1) != nil {
		t.Error("V=1 must have no cuts")
	}
	var empty profile
	if empty.tierThresholds(3) != nil {
		t.Error("empty profile must have no cuts")
	}
}

func TestTierOf(t *testing.T) {
	cuts := []float64{0.3, 0.7}
	cases := []struct {
		cap  float64
		want int
	}{{0.1, 0}, {0.3, 1}, {0.5, 1}, {0.7, 2}, {0.9, 2}}
	for _, c := range cases {
		if got := tierOf(c.cap, cuts); got != c.want {
			t.Errorf("tierOf(%v) = %d, want %d", c.cap, got, c.want)
		}
	}
	if tierOf(0.5, nil) != 0 {
		t.Error("no cuts means tier 0")
	}
}

func TestSpeedupFasterTierBelowOne(t *testing.T) {
	// Response duration inversely correlated with capability.
	var p profile
	rng := stats.NewRNG(1)
	for i := 0; i < 400; i++ {
		capability := rng.Float64()
		dur := 100 * (1.5 - capability) * rng.Uniform(0.9, 1.1)
		p.add(capability, dur)
	}
	cuts := p.tierThresholds(3)
	gFast := p.speedup(2, cuts, 20)
	gSlow := p.speedup(0, cuts, 20)
	if gFast >= 1 {
		t.Errorf("fast tier speedup = %v, want < 1", gFast)
	}
	if gSlow <= gFast {
		t.Errorf("slow tier (%v) must be slower than fast tier (%v)", gSlow, gFast)
	}
}

func TestSpeedupNeedsSamples(t *testing.T) {
	var p profile
	p.add(0.5, 100)
	if g := p.speedup(0, []float64{0.5}, 20); g != 1 {
		t.Errorf("immature profile speedup = %v, want 1", g)
	}
}

func TestProfilerPrefersMatureJobProfile(t *testing.T) {
	pf := newProfiler(10)
	if pf.forJob(1) != nil {
		t.Fatal("empty profiler must return nil")
	}
	// Global data only.
	for i := 0; i < 15; i++ {
		pf.observe(2, 0.5, 100)
	}
	if pf.forJob(1) == nil {
		t.Fatal("global profile must back an unknown job")
	}
	// Job 1 matures.
	for i := 0; i < 12; i++ {
		pf.observe(1, 0.9, 20)
	}
	prof := pf.forJob(1)
	if prof == nil || prof.count() != 12 {
		t.Fatalf("job profile not used (count=%d)", prof.count())
	}
	pf.drop(1)
	if got := pf.forJob(1); got == nil || got.count() == 12 {
		t.Error("drop must fall back to global")
	}
}

func TestP95Tier(t *testing.T) {
	var p profile
	for i := 0; i < 100; i++ {
		p.add(0.2, 200) // slow tier
		p.add(0.8, 50)  // fast tier
	}
	cuts := []float64{0.5}
	p95, n := p.p95Tier(1, cuts)
	if n != 100 || p95 != 50 {
		t.Errorf("fast tier p95 = %v (n=%d)", p95, n)
	}
	p95, n = p.p95Tier(0, cuts)
	if n != 100 || p95 != 200 {
		t.Errorf("slow tier p95 = %v (n=%d)", p95, n)
	}
	if _, n := p.p95Tier(5, cuts); n != 0 {
		t.Error("nonexistent tier must have no samples")
	}
}
