// Command promlint validates a Prometheus text-format exposition against
// the subset of the format venndaemon emits: HELP/TYPE comment pairs,
// metric-name and label-name charsets, histogram bucket/sum/count families,
// and float sample values. CI curls GET /metrics through it so a malformed
// exposition fails the lint job even on runners without promtool.
//
//	promlint http://localhost:8080/metrics
//	promlint exposition.txt
//	curl -s localhost:8080/metrics | promlint -
//
// On success it prints the family and sample counts; any grammar violation
// exits nonzero with the offending line.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"venn/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: promlint <url|file|->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)

	var (
		text []byte
		err  error
	)
	switch {
	case src == "-":
		text, err = io.ReadAll(os.Stdin)
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		cl := &http.Client{Timeout: 10 * time.Second}
		var resp *http.Response
		resp, err = cl.Get(src)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "promlint: %s answered %s\n", src, resp.Status)
				os.Exit(1)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				fmt.Fprintf(os.Stderr, "promlint: %s content type %q, want text/plain\n", src, ct)
				os.Exit(1)
			}
			text, err = io.ReadAll(resp.Body)
		}
	default:
		text, err = os.ReadFile(src)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}

	families, samples, err := obs.ValidateExposition(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	if families == 0 || samples == 0 {
		fmt.Fprintf(os.Stderr, "promlint: empty exposition (%d families, %d samples)\n", families, samples)
		os.Exit(1)
	}
	fmt.Printf("promlint: OK (%d families, %d samples)\n", families, samples)
}
