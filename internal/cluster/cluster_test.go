package cluster_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/cluster"
	"venn/internal/server"
	"venn/internal/transport"
)

// node is one federated daemon for tests: manager, stream listener, cluster.
type node struct {
	m    *server.Manager
	ts   *transport.Server
	clu  *cluster.Cluster
	addr string
}

// startFederation spins n daemons on loopback stream listeners, federates
// them over each other's real addresses, and registers cleanup in reverse
// dependency order (clusters before listeners).
func startFederation(t testing.TB, n int, tweak func(*cluster.Config)) []*node {
	t.Helper()
	nodes := make([]*node, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range nodes {
		m := server.NewManager(server.Config{})
		ts := transport.NewServer(m, transport.Options{})
		go func(ln net.Listener) { _ = ts.Serve(ln) }(lns[i])
		cfg := cluster.Config{
			SelfID:         addrs[i],
			Peers:          addrs,
			HealthInterval: 50 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		clu, err := cluster.New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{m: m, ts: ts, clu: clu, addr: addrs[i]}
		t.Cleanup(func() {
			_ = clu.Close()
			_ = ts.Close()
		})
	}
	return nodes
}

// deviceOwnedBy finds a device ID the ring assigns to the wanted member.
func deviceOwnedBy(t *testing.T, r *cluster.Ring, owner string, tag string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%s-%06d", tag, i)
		if r.Owner(id) == owner {
			return id
		}
	}
	t.Fatalf("no device hashes to %s", owner)
	return ""
}

// TestFederationTwoDaemonForward drives batched check-ins for a fleet
// spanning both owners through a single ingress daemon and asserts the
// requests are served with zero routing errors while the misrouted half is
// forwarded. Run under -race in CI, this is the federation concurrency
// test: handler goroutines on the ingress node call into the peer stream
// pool while the peer's handlers apply them locally.
func TestFederationTwoDaemonForward(t *testing.T) {
	nodes := startFederation(t, 2, nil)
	a, b := nodes[0], nodes[1]

	ca := client.NewStream(a.addr)
	defer ca.Close()
	cb := client.NewStream(b.addr)
	defer cb.Close()
	// One job per node: assignments happen on whichever node owns the
	// checked-in device, so both schedulers need demand.
	for _, c := range []*client.StreamClient{ca, cb} {
		if _, err := c.RegisterJob(server.JobSpec{Name: "fed", Category: "General", DemandPerRound: 8, Rounds: 1}); err != nil {
			t.Fatal(err)
		}
	}

	fleet := make([]server.CheckIn, 256)
	owners := map[string]int{}
	for i := range fleet {
		id := fmt.Sprintf("fed-dev-%04d", i)
		owners[a.clu.Ring().Owner(id)]++
		fleet[i] = server.CheckIn{DeviceID: id, CPU: 0.9, Mem: 0.9}
	}
	if len(owners) != 2 {
		t.Fatalf("test fleet spans %d owners, want 2 (%v)", len(owners), owners)
	}

	var reports []server.Report
	for lo := 0; lo < len(fleet); lo += 64 {
		results, err := ca.CheckInBatch(fleet[lo : lo+64])
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Error != "" {
				t.Fatalf("routing error for %s: %s", fleet[lo+i].DeviceID, res.Error)
			}
			if res.Assigned {
				reports = append(reports, server.Report{
					DeviceID: fleet[lo+i].DeviceID, JobID: res.JobID, OK: true, DurationSeconds: 30,
				})
			}
		}
	}
	if len(reports) != 16 {
		t.Fatalf("%d assignments, want 16 (8 per node)", len(reports))
	}
	// Before the reports land (which free the devices), a busy rejection
	// must cross the forward chain typed: re-checking an assigned, B-owned
	// device through A answers CodeBusy.
	busyProbed := false
	for _, rep := range reports {
		if a.clu.Ring().Owner(rep.DeviceID) != b.addr {
			continue
		}
		_, err := ca.CheckIn(server.CheckIn{DeviceID: rep.DeviceID, CPU: 0.9, Mem: 0.9})
		var se *client.StreamError
		if !errors.As(err, &se) || se.Code != server.CodeBusy {
			t.Fatalf("re-check-in of busy forwarded device: got %v, want typed busy", err)
		}
		busyProbed = true
		break
	}
	if !busyProbed {
		t.Fatal("no B-owned assignment to probe busy semantics with")
	}

	rres, err := ca.ReportBatch(reports)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range rres {
		if rr.Error != "" {
			t.Fatalf("report %d rejected: %s", i, rr.Error)
		}
	}

	_, outA, _, _ := a.clu.Counters()
	inB, _, _, _ := b.clu.Counters()
	if outA == 0 || inB == 0 {
		t.Fatalf("no forwarding happened: A out=%d, B in=%d", outA, inB)
	}

	// The federation counters surface in /v1/metrics on both nodes.
	for _, nd := range []*node{a, b} {
		mt := nd.m.MetricsSnapshot()
		if mt.ClusterRingSize != 2 || mt.ClusterNodeID != nd.addr {
			t.Fatalf("metrics cluster identity wrong: %+v", mt.ClusterNodeID)
		}
		if mt.ClusterForwardsIn+mt.ClusterForwardsOut == 0 {
			t.Fatalf("node %s metrics report no forwards", nd.addr)
		}
		if mt.ClusterPeersUp != 1 || mt.ClusterPeersDown != 0 {
			t.Fatalf("node %s peer states: %v", nd.addr, mt.ClusterPeerStates)
		}
	}

}

// TestFederationBatchSplitMergeErrors asserts the split/fan-out/merge path
// preserves per-item errors at their original batch positions.
func TestFederationBatchSplitMergeErrors(t *testing.T) {
	nodes := startFederation(t, 2, nil)
	a, b := nodes[0], nodes[1]
	ca := client.NewStream(a.addr)
	defer ca.Close()

	devA := deviceOwnedBy(t, a.clu.Ring(), a.addr, "merge-a")
	devB := deviceOwnedBy(t, a.clu.Ring(), b.addr, "merge-b")

	// Index 1 is invalid (no device ID); indices 0 and 2 are the same
	// B-owned device, whose duplicate reservation must reject exactly one of
	// them at the owner; index 3 is served locally on A.
	batch := []server.CheckIn{
		{DeviceID: devB, CPU: 0.5, Mem: 0.5},
		{},
		{DeviceID: devB, CPU: 0.5, Mem: 0.5},
		{DeviceID: devA, CPU: 0.5, Mem: 0.5},
	}
	results, err := ca.CheckInBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error != "" {
		t.Fatalf("first devB item rejected: %s", results[0].Error)
	}
	if !strings.Contains(results[1].Error, "device_id") {
		t.Fatalf("missing-ID item error = %q, want device_id complaint", results[1].Error)
	}
	if results[2].Error != server.ErrDeviceBusy.Error() {
		t.Fatalf("duplicate devB item error = %q, want %q", results[2].Error, server.ErrDeviceBusy)
	}
	if results[3].Error != "" {
		t.Fatalf("local devA item rejected: %s", results[3].Error)
	}
	_, outA, _, _ := a.clu.Counters()
	if outA != 1 {
		t.Fatalf("batch should forward exactly one owner-group frame, forwarded %d", outA)
	}
}

// TestHopGuard asserts the loop guard: a frame that already carries the hop
// flag is served by its receiver even when the receiver's ring says a peer
// owns the device — it is never forwarded again, so two daemons with
// disagreeing rings cannot ping-pong a request.
func TestHopGuard(t *testing.T) {
	nodes := startFederation(t, 2, nil)
	a, b := nodes[0], nodes[1]

	// A device A owns, forwarded (hop set) to B — as a daemon with a stale
	// ring would. B must apply it locally.
	devA := deviceOwnedBy(t, a.clu.Ring(), a.addr, "hop")
	cb := client.NewStream(b.addr)
	defer cb.Close()
	if _, err := cb.CheckInForward(server.CheckIn{DeviceID: devA, CPU: 0.5, Mem: 0.5}, 0); err != nil {
		t.Fatalf("hop-flagged check-in not served locally: %v", err)
	}
	inB, outB, _, _ := b.clu.Counters()
	if inB != 1 {
		t.Fatalf("B forwards_in = %d, want 1", inB)
	}
	if outB != 0 {
		t.Fatalf("B re-forwarded a hop-flagged frame (forwards_out = %d)", outB)
	}
	inA, _, _, _ := a.clu.Counters()
	if inA != 0 {
		t.Fatalf("A received a bounced frame (forwards_in = %d)", inA)
	}
	// B now owns the device state: its registry grew, A's did not.
	if got := b.m.MetricsSnapshot().KnownDevices; got != 1 {
		t.Fatalf("B knows %d devices, want 1", got)
	}
	if got := a.m.MetricsSnapshot().KnownDevices; got != 0 {
		t.Fatalf("A knows %d devices, want 0", got)
	}
}

// TestHopFlagRejectedOnNonServingOp pins the frame-level contract: the hop
// flag is only legal on the four serving opcodes; anything else is a typed
// invalid rejection, not a crash or a hang.
func TestHopFlagRejectedOnNonServingOp(t *testing.T) {
	nodes := startFederation(t, 1, nil)
	conn, err := net.Dial("tcp", nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := transport.WriteFrame(bw, transport.Version1, transport.OpStats|transport.HopFlag, 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := transport.ReadFrame(bufio.NewReader(conn), 1<<20, transport.MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Op != transport.OpError || fr.ID != 7 {
		t.Fatalf("got op %#x id %d, want OpError id 7", fr.Op, fr.ID)
	}
	if !strings.Contains(string(fr.Payload), "hop flag") {
		t.Fatalf("error payload %q does not name the hop flag", fr.Payload)
	}
}

// fakePeer is an injectable PeerClient: forwards block until released and
// can be made to fail with a chosen error, ping results are switchable, and
// teardown order is observable.
type fakePeer struct {
	pingErr  atomic.Bool // true -> Ping fails
	block    chan struct{}
	forwards atomic.Int64
	closed   atomic.Bool
	fwdErr   atomic.Value // error returned by forwards (nil = success)
}

func newFakePeer() *fakePeer { return &fakePeer{block: make(chan struct{})} }

func (f *fakePeer) failForwardsWith(err error) { f.fwdErr.Store(&err) }

func (f *fakePeer) forwardErr() error {
	if p, ok := f.fwdErr.Load().(*error); ok {
		return *p
	}
	return nil
}

func (f *fakePeer) Ping() error {
	if f.pingErr.Load() {
		return errors.New("fake: peer unreachable")
	}
	return nil
}

func (f *fakePeer) CheckInForward(ci server.CheckIn, trace uint64) (server.Assignment, error) {
	f.forwards.Add(1)
	<-f.block
	return server.Assignment{}, f.forwardErr()
}

func (f *fakePeer) CheckInBatchForward(cis []server.CheckIn, trace uint64) ([]server.CheckInResult, error) {
	f.forwards.Add(1)
	<-f.block
	if err := f.forwardErr(); err != nil {
		return nil, err
	}
	return make([]server.CheckInResult, len(cis)), nil
}

func (f *fakePeer) ReportForward(r server.Report, trace uint64) error {
	f.forwards.Add(1)
	<-f.block
	return f.forwardErr()
}

func (f *fakePeer) ReportBatchForward(rs []server.Report, trace uint64) ([]server.ReportResult, error) {
	f.forwards.Add(1)
	<-f.block
	if err := f.forwardErr(); err != nil {
		return nil, err
	}
	return make([]server.ReportResult, len(rs)), nil
}

func (f *fakePeer) CheckInBatchForwardRaw(items []byte, n int, trace uint64) ([]server.CheckInResult, error) {
	f.forwards.Add(1)
	<-f.block
	if err := f.forwardErr(); err != nil {
		return nil, err
	}
	return make([]server.CheckInResult, n), nil
}

func (f *fakePeer) ReportBatchForwardRaw(items []byte, n int, trace uint64) ([]server.ReportResult, error) {
	f.forwards.Add(1)
	<-f.block
	if err := f.forwardErr(); err != nil {
		return nil, err
	}
	return make([]server.ReportResult, n), nil
}

func (f *fakePeer) Close() error {
	f.closed.Store(true)
	return nil
}

// TestDrainOrdering pins the federation shutdown sequence: BeginDrain stops
// new forwards (they local-apply instead), Close waits for the in-flight
// forwarded frame to finish, and only then are the peer clients closed.
func TestDrainOrdering(t *testing.T) {
	m := server.NewManager(server.Config{})
	fake := newFakePeer()
	clu, err := cluster.New(m, cluster.Config{
		SelfID:         "self",
		Peers:          []string{"self", "peer-1"},
		HealthInterval: time.Hour, // keep the health loop out of the picture
		Dial:           func(addr string) cluster.PeerClient { return fake },
	})
	if err != nil {
		t.Fatal(err)
	}
	devPeer := deviceOwnedBy(t, clu.Ring(), "peer-1", "drain")

	// An in-flight forward, parked inside the fake peer.
	fwdDone := make(chan struct{})
	go func() {
		defer close(fwdDone)
		_, _ = clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil)
	}()
	waitFor(t, func() bool { return fake.forwards.Load() == 1 })

	clu.BeginDrain()
	// New requests for peer-owned devices no longer forward: applied
	// locally, counted as fallbacks.
	devPeer2 := deviceOwnedBy(t, clu.Ring(), "peer-1", "drain2")
	if _, err := clu.CheckIn(server.CheckIn{DeviceID: devPeer2, CPU: 0.5, Mem: 0.5}, nil); err != nil {
		t.Fatalf("drained check-in must local-apply, got %v", err)
	}
	if got := fake.forwards.Load(); got != 1 {
		t.Fatalf("a forward escaped after BeginDrain (%d)", got)
	}
	_, _, _, fallbacks := clu.Counters()
	if fallbacks == 0 {
		t.Fatal("drained forward not counted as local fallback")
	}

	// Close must wait for the in-flight forward and must not have closed the
	// peer client while that frame is still out.
	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		_ = clu.Close()
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a forwarded frame was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	if fake.closed.Load() {
		t.Fatal("peer client closed before in-flight forwards drained")
	}
	close(fake.block)
	<-fwdDone
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the in-flight forward drained")
	}
	if !fake.closed.Load() {
		t.Fatal("peer client not closed by Close")
	}
	// Detached: requests after Close stay local even for peer-owned devices.
	if m.MetricsSnapshot().ClusterRingSize != 0 {
		t.Fatal("cluster telemetry still attached after Close")
	}
}

// TestHealthLoopDownUp drives a peer down (failed pings past FailAfter) and
// back up, asserting routing degrades to local-apply and recovers.
func TestHealthLoopDownUp(t *testing.T) {
	m := server.NewManager(server.Config{})
	fake := newFakePeer()
	close(fake.block) // forwards return immediately
	clu, err := cluster.New(m, cluster.Config{
		SelfID:         "self",
		Peers:          []string{"self", "peer-1"},
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      2,
		Dial:           func(addr string) cluster.PeerClient { return fake },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	devPeer := deviceOwnedBy(t, clu.Ring(), "peer-1", "health")

	if _, err := clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	if fake.forwards.Load() != 1 {
		t.Fatal("healthy peer must receive the forward")
	}

	fake.pingErr.Store(true)
	waitFor(t, func() bool { return clu.ClusterTelemetry().PeerStates["peer-1"] == "down" })
	before := fake.forwards.Load()
	if _, err := clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil); err != nil {
		t.Fatalf("down-peer check-in must local-apply, got %v", err)
	}
	if fake.forwards.Load() != before {
		t.Fatal("forwarded to a down peer")
	}
	_, _, _, fallbacks := clu.Counters()
	if fallbacks == 0 {
		t.Fatal("down-peer fallback not counted")
	}

	fake.pingErr.Store(false)
	waitFor(t, func() bool { return clu.ClusterTelemetry().PeerStates["peer-1"] == "up" })
	if _, err := clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	if fake.forwards.Load() != before+1 {
		t.Fatal("recovered peer must receive forwards again")
	}
}

// TestSingleMemberCluster: a ring of one routes everything locally and
// never forwards.
func TestSingleMemberCluster(t *testing.T) {
	nodes := startFederation(t, 1, nil)
	c := client.NewStream(nodes[0].addr)
	defer c.Close()
	results, err := c.CheckInBatch([]server.CheckIn{
		{DeviceID: "solo-1", CPU: 0.5, Mem: 0.5},
		{DeviceID: "solo-2", CPU: 0.5, Mem: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("item %d: %s", i, res.Error)
		}
	}
	in, out, _, _ := nodes[0].clu.Counters()
	if in != 0 || out != 0 {
		t.Fatalf("single-member cluster forwarded (in=%d out=%d)", in, out)
	}
}

// TestSelfIDMustBeInPeers pins the membership contract: a non-empty peers
// list that lacks the node's own ID is a configuration error (it would put
// a phantom member on the ring), not a silent near-miss.
func TestSelfIDMustBeInPeers(t *testing.T) {
	m := server.NewManager(server.Config{})
	_, err := cluster.New(m, cluster.Config{
		SelfID: ":8081",
		Peers:  []string{"10.0.0.1:8081", "10.0.0.2:8081"},
		Dial:   func(string) cluster.PeerClient { return newFakePeer() },
	})
	if err == nil || !strings.Contains(err.Error(), "not in the peers list") {
		t.Fatalf("mismatched self ID must fail construction, got %v", err)
	}
	// And the manager must be left untouched (nothing attached).
	if m.MetricsSnapshot().ClusterRingSize != 0 {
		t.Fatal("failed construction left telemetry attached")
	}
}

// TestForwardFailureSemantics pins the double-apply guard: only a forward
// that provably never left this node (client.NotSentError) falls back to
// local apply; an ambiguous failure surfaces as typed CodeUnavailable with
// no local side effects, and the batch path reports it per item.
func TestForwardFailureSemantics(t *testing.T) {
	m := server.NewManager(server.Config{})
	fake := newFakePeer()
	close(fake.block)
	clu, err := cluster.New(m, cluster.Config{
		SelfID:         "self",
		Peers:          []string{"self", "peer-1"},
		HealthInterval: time.Hour,
		Dial:           func(string) cluster.PeerClient { return fake },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	devPeer := deviceOwnedBy(t, clu.Ring(), "peer-1", "fail")

	// Ambiguous failure (e.g. timeout): typed unavailable, NOT applied
	// locally — the owner may have already applied it.
	fake.failForwardsWith(errors.New("fake: request timed out"))
	_, err = clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil)
	if server.ErrCode(err) != server.CodeUnavailable {
		t.Fatalf("ambiguous forward failure: got %v, want CodeUnavailable", err)
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 0 {
		t.Fatalf("ambiguous failure applied locally (%d devices registered)", got)
	}
	results, _ := clu.CheckInBatch([]server.CheckIn{{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}}, nil)
	if !strings.Contains(results[0].Error, "forward to owner failed") {
		t.Fatalf("ambiguous batch failure item error = %q", results[0].Error)
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 0 {
		t.Fatal("ambiguous batch failure applied locally")
	}

	// Provably-unsent failure: safe to apply locally. It is a clean,
	// caller-invisible fallback, so it counts in local_fallbacks but NOT in
	// forward_errors (only ambiguous outcomes do).
	fake.failForwardsWith(&client.NotSentError{Err: errors.New("fake: dial refused")})
	if _, err := clu.CheckIn(server.CheckIn{DeviceID: devPeer, CPU: 0.5, Mem: 0.5}, nil); err != nil {
		t.Fatalf("unsent forward must local-apply, got %v", err)
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 1 {
		t.Fatalf("unsent forward not applied locally (%d devices)", got)
	}
	_, _, fwdErrs, fallbacks := clu.Counters()
	if fwdErrs != 2 || fallbacks != 1 {
		t.Fatalf("counters: %d forward errors (want 2), %d fallbacks (want 1)", fwdErrs, fallbacks)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
