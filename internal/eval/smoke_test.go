package eval

import (
	"testing"
)

// TestSmokeCompare runs the full pipeline end-to-end at quick scale and
// sanity-checks the headline result direction: Venn should beat Random.
func TestSmokeCompare(t *testing.T) {
	setup := NewSetup(ScaleQuick, 7)
	cmp, err := Compare(setup, StandardSchedulers())
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range cmp.Results {
		t.Logf("%s: %v", name, res)
		if res.CompletionRate() < 0.5 {
			t.Errorf("%s completed only %.0f%% of jobs", name, 100*res.CompletionRate())
		}
	}
	if sp := cmp.Speedup("Venn", "Random"); sp <= 0.9 {
		t.Errorf("Venn speedup over Random = %.2f, want > 0.9", sp)
	} else {
		t.Logf("Venn speedup over Random: %.2fx", sp)
	}
}
