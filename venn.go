// Package venn is the public API of the Venn reproduction: a resource
// manager for collaborative-learning (CL) jobs that schedules ephemeral,
// heterogeneous edge devices across many concurrent jobs to minimize average
// job completion time (JCT), after "Venn: Resource Management for
// Collaborative Learning Jobs" (MLSys 2025).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Scheduler construction: NewVenn, NewRandom, NewFIFO, NewSRSF
//   - Workload and fleet synthesis: GenerateFleet, GenerateWorkload
//   - Simulation: Simulate and SimConfig
//   - The experiment harness lives in internal/eval and is surfaced by
//     cmd/vennbench.
//
// Quickstart:
//
//	fleet := venn.GenerateFleet(venn.FleetConfig{NumDevices: 3000, Seed: 1})
//	wl := venn.GenerateWorkload(venn.WorkloadConfig{NumJobs: 20, Seed: 2})
//	res, err := venn.Simulate(venn.SimConfig{Fleet: fleet, Workload: wl,
//	    Scheduler: venn.NewVenn(venn.SchedulerOptions{})})
package venn

import (
	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/policy"
	"venn/internal/sched"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/trace"
	"venn/internal/workload"
)

// Re-exported core types.
type (
	// Device is one edge device (normalized CPU/memory scores).
	Device = device.Device
	// DeviceID identifies a device within a simulation.
	DeviceID = device.ID
	// Requirement is a job's minimum device specification.
	Requirement = device.Requirement
	// Job is one collaborative-learning job.
	Job = job.Job
	// Fleet is a device population plus its availability trace.
	Fleet = trace.Fleet
	// FleetConfig controls fleet synthesis.
	FleetConfig = trace.FleetConfig
	// WorkloadConfig controls workload synthesis.
	WorkloadConfig = workload.Config
	// Workload is a generated job set.
	Workload = workload.Workload
	// Scheduler is the resource-manager plug-in interface.
	Scheduler = sim.Scheduler
	// Result summarizes one simulation run.
	Result = sim.Result
	// SchedulerOptions configures the Venn scheduler.
	SchedulerOptions = core.Options
	// Time is simulated absolute time (milliseconds).
	Time = simtime.Time
	// Duration is simulated elapsed time (milliseconds).
	Duration = simtime.Duration
	// RoundObserver receives each completed round's participants.
	RoundObserver = sim.RoundObserver
)

// The four standard device-eligibility strata of the paper's evaluation.
var (
	General     = device.General
	ComputeRich = device.ComputeRich
	MemoryRich  = device.MemoryRich
	HighPerf    = device.HighPerf
)

// NewVenn returns the paper's scheduler: IRS contention-aware job ordering
// plus resource-aware tier-based device matching. Zero-value options take
// the defaults (3 tiers, fairness knob off).
func NewVenn(opts SchedulerOptions) Scheduler {
	if opts.Tiers == 0 && opts.MinProfileSamples == 0 {
		d := core.DefaultOptions()
		d.Epsilon = opts.Epsilon
		d.DisableMatching = opts.DisableMatching
		opts = d
	}
	return core.New(opts)
}

// NewPolicy builds a scheduler by registry name ("venn", "fifo", "srsf",
// "random") with default options — the same lookup venndaemon's -policy flag
// uses. PolicyNames lists the valid names.
func NewPolicy(name string) (Scheduler, error) {
	return policy.New(name, policy.Config{Core: core.DefaultOptions()})
}

// PolicyNames lists the registered scheduling policies.
func PolicyNames() []string { return policy.Names() }

// NewRandom returns the optimized random-matching baseline (the common
// design of production CL resource managers).
func NewRandom() Scheduler { return sched.NewRandom() }

// NewFIFO returns the FIFO baseline.
func NewFIFO() Scheduler { return sched.NewFIFO() }

// NewSRSF returns the shortest-remaining-service-first baseline.
func NewSRSF() Scheduler { return sched.NewSRSF() }

// GenerateFleet synthesizes a device fleet with diurnal availability and an
// AI-Benchmark-like capacity distribution.
func GenerateFleet(cfg FleetConfig) *Fleet { return trace.GenerateFleet(cfg) }

// GenerateWorkload synthesizes a CL job workload (demand-trace sampling,
// Poisson arrivals, category mapping).
func GenerateWorkload(cfg WorkloadConfig) *Workload { return workload.Generate(cfg) }

// NewJob creates a single job directly, for hand-built scenarios.
func NewJob(id int, req Requirement, demandPerRound, rounds int, arrival Duration) *Job {
	return job.New(job.ID(id), req, demandPerRound, rounds, simtime.Time(arrival))
}

// SimConfig describes one simulation run through the public API.
type SimConfig struct {
	Fleet     *Fleet
	Workload  *Workload
	Jobs      []*Job // alternative to Workload for hand-built job sets
	Scheduler Scheduler
	Horizon   Duration // zero = fleet horizon
	Seed      int64
	Observer  RoundObserver
}

// Simulate replays the fleet against the workload under the scheduler and
// returns the run's result. The workload is cloned and the fleet reset, so
// inputs can be reused across runs.
func Simulate(cfg SimConfig) (*Result, error) {
	jobs := cfg.Jobs
	if cfg.Workload != nil {
		jobs = cfg.Workload.Clone().Jobs
	}
	cfg.Fleet.Reset()
	eng, err := sim.NewEngine(sim.Config{
		Fleet:     cfg.Fleet,
		Jobs:      jobs,
		Scheduler: cfg.Scheduler,
		Horizon:   simtime.Duration(cfg.Horizon),
		Seed:      cfg.Seed,
		Observer:  cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// Hour and Day re-export the most used simulated durations.
const (
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
	Day         = simtime.Day
)
