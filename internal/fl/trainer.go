package fl

import (
	"venn/internal/stats"
)

// TrainConfig controls per-round local training.
type TrainConfig struct {
	LocalEpochs int     // default 2
	LR          float64 // default 0.05
	L2          float64 // default 1e-4
	Seed        int64
}

func (c *TrainConfig) normalize() {
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 2
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.L2 < 0 {
		c.L2 = 1e-4
	}
}

// Trainer runs FedAvg rounds for one CL job over a federated dataset. The
// simulator feeds it the device IDs that reported each round (via the
// RoundObserver hook), so the training curve reflects exactly the
// participants the resource manager delivered.
type Trainer struct {
	DS     *Dataset
	Model  *Model
	Cfg    TrainConfig
	rng    *stats.RNG
	rounds int

	// History records test accuracy after each round.
	History []RoundResult
}

// RoundResult is one point of the accuracy-vs-round curve.
type RoundResult struct {
	Round        int
	Participants int
	Diversity    int // distinct labels among participants
	TestAccuracy float64
}

// NewTrainer creates a FedAvg trainer over the dataset.
func NewTrainer(ds *Dataset, cfg TrainConfig) *Trainer {
	cfg.normalize()
	return &Trainer{
		DS:    ds,
		Model: NewModel(ds.Cfg.Classes, ds.Cfg.Features),
		Cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
	}
}

// RunRound performs one FedAvg round with the given participant device IDs
// and returns the post-round test accuracy.
func (t *Trainer) RunRound(deviceIDs []int) RoundResult {
	t.rounds++
	clients := make([]int, 0, len(deviceIDs))
	for _, id := range deviceIDs {
		clients = append(clients, t.DS.ClientFor(id))
	}

	deltas := make([]*Model, 0, len(clients))
	weights := make([]float64, 0, len(clients))
	for _, c := range clients {
		shard := t.DS.Shards[c]
		if len(shard) == 0 {
			continue
		}
		local := t.Model.Clone()
		local.TrainLocal(shard, t.Cfg.LocalEpochs, t.Cfg.LR, t.Cfg.L2, t.rng)
		deltas = append(deltas, local.Sub(t.Model))
		weights = append(weights, float64(len(shard)))
	}
	FedAvg(t.Model, deltas, weights)

	res := RoundResult{
		Round:        t.rounds,
		Participants: len(clients),
		Diversity:    t.DS.LabelDiversity(clients),
		TestAccuracy: t.Model.Accuracy(t.DS.Test),
	}
	t.History = append(t.History, res)
	return res
}

// Rounds returns the number of rounds run so far.
func (t *Trainer) Rounds() int { return t.rounds }

// FinalAccuracy returns the latest test accuracy (0 before any round).
func (t *Trainer) FinalAccuracy() float64 {
	if len(t.History) == 0 {
		return 0
	}
	return t.History[len(t.History)-1].TestAccuracy
}
