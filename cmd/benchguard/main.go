// Command benchguard is the CI gate over the serving-path benchmarks: it
// compares a freshly measured vennload report against the committed
// BENCH_serve.json and fails when batched+sharded HTTP throughput — or,
// when both reports carry one, streaming-transport throughput — regressed
// beyond the allowed margin, and (optionally) when the incremental-plan hit
// rate of a live smoke run fell below its floor.
//
//	benchguard -baseline BENCH_serve.json -current BENCH_serve_fresh.json \
//	    -max-regress 0.20 -live BENCH_serve_live.json -min-hit-rate 0.90
//
// Shadow-mode gates: -shadow-smoke asserts a report's shadow-policy counters
// are present and healthy (observing traffic, zero dropped events, zero
// recovered panics), and -shadow-ref bounds the stream-rung throughput cost
// of running shadows at -max-shadow-overhead (default 10%). Both flags take
// comma-separated report lists: counters are checked in every smoke report,
// while the overhead comparison uses the best stream rate on each side —
// single 5s runs swing ±15% on small CI runners, so best-of-N against
// best-of-N is the noise-robust estimate of the real cost.
//
// Observability gate: -obs-smoke takes reports measured with request-span
// sampling at its default rate and asserts sampling was live (spans reached
// the flight recorder); with -obs-ref (sampling-off reports of the same
// rungs) it bounds the stream-rung throughput cost of observability at
// -max-obs-overhead (default 3%), best-of-N against best-of-N like the
// shadow gate.
//
// Policy A/B gate: -ab-smoke takes a vennload -ab report and fails when the
// first arm's mean JCT is worse than the second's — CI runs -ab venn,fifo,
// so this asserts Venn's scheduling beats FIFO on the replayed trace.
//
// Wire-protocol gates: -min-v2-speedup asserts the current report's stream
// rung (wire v2, binary payloads) beats its stream-v1 rung (same transport,
// JSON payloads) by at least the given ratio, and -multicore-min-scale
// asserts the stream-mc rung (full GOMAXPROCS, per-core listener shards)
// scales over the single-core stream rung by at least the given factor.
// Both compare rungs inside one report, so they apply on any hardware; the
// multi-core gate is skipped (with a note) on single-CPU hosts, where core
// scaling is unmeasurable.
//
// Federation fast-path gates: -min-cluster-direct-speedup asserts the
// cluster-direct rung (ring-aware clients, near-zero forwards) reaches at
// least the given fraction of the single-daemon stream rung within the same
// report (self-skipping when the report predates the rung), and every
// cluster-direct run must show nonzero direct-routed batches with forwards
// bounded to fetch-race noise. -chaos-smoke takes a report from a run where
// one federation member was killed mid-run under ring-aware clients and
// fails on any lost check-in, any forward error, or if no node ever saw a
// peer down (i.e. nothing was actually killed).
//
// Core commit pipeline gate: the stream-v2-contended rung (demand-heavy
// traffic committing through the scheduler core) joins the cross-report
// regression checks like any other rung, and -min-contended-frac asserts
// within one report that contended throughput stays above the given
// fraction of the surplus stream rung — the floor on how much the core
// commit path may cost relative to the lock-free snapshot path. Both
// self-skip (with a note) on reports that predate the rung.
//
// Cross-report throughput comparisons are only meaningful on the same
// hardware, so the regression checks are skipped (with a note) when the
// recorded num_cpu differs between the two reports — CI runners and
// developer laptops guard against themselves, not against each other.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors the subset of vennload's benchReport the guard reads. The
// ladder shape labels each run with a transport; pre-stream reports lack
// the field, which decodes as "" and classifies as HTTP. Cluster runs
// additionally carry per-node federation counters.
type report struct {
	Schema string `json:"schema"`
	NumCPU int    `json:"num_cpu"`
	Runs   []run  `json:"runs"`
}

type run struct {
	Mode           string  `json:"mode"`
	Transport      string  `json:"transport"`
	Batch          int     `json:"batch"`
	CheckIns       int64   `json:"checkins"`
	CheckInsPerSec float64 `json:"checkins_per_sec"`
	Errors         int64   `json:"errors"`
	Policy         string  `json:"policy"`
	JCTAvgSeconds  float64 `json:"jct_avg_seconds"`
	Nodes          []struct {
		Node                string `json:"node"`
		CheckIns            int64  `json:"checkins"`
		ForwardsIn          int64  `json:"forwards_in"`
		ForwardsOut         int64  `json:"forwards_out"`
		ForwardErrors       int64  `json:"forward_errors"`
		PeersDown           int    `json:"peers_down"`
		DirectRoutedBatches int64  `json:"direct_routed_batches"`
		TopologyEpoch       uint64 `json:"topology_epoch"`
	} `json:"nodes"`
	ServerMetrics *struct {
		PlanRebuilds           int64                  `json:"plan_rebuilds"`
		PlanPatches            int64                  `json:"plan_patches"`
		PlanIncrementalHitRate float64                `json:"plan_incremental_hit_rate"`
		PolicyPrimary          string                 `json:"policy_primary"`
		PolicyShadows          map[string]shadowStats `json:"policy_shadows"`
		ObsSampleEvery         int                    `json:"obs_sample_every"`
		FlightRecorded         int64                  `json:"flight_recorded_total"`
	} `json:"server_metrics"`
}

// shadowStats mirrors server.PolicyShadowStats: per-shadow divergence
// counters plus the drop/panic health counters the smoke gate reads.
type shadowStats struct {
	AssignChecks  int64 `json:"assign_checks"`
	Mismatches    int64 `json:"assign_mismatches"`
	ShadowAssigns int64 `json:"shadow_assigns"`
	DroppedEvents int64 `json:"dropped_events"`
	Panics        int64 `json:"panics"`
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// loadAll loads a comma-separated list of report paths.
func loadAll(paths string) ([]report, error) {
	var rs []report
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := load(p)
		if err != nil {
			return nil, err
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no report paths in %q", paths)
	}
	return rs, nil
}

// bestStreamRate returns the highest stream-rung rate across the reports —
// the least-interfered-with sample of a noisy repeated measurement.
func bestStreamRate(rs []report) (float64, bool) {
	best, ok := 0.0, false
	for _, r := range rs {
		if rate, has := streamRate(r); has && rate > best {
			best, ok = rate, true
		}
	}
	return best, ok
}

// batchedRate finds the batched HTTP rung (transport absent or "http").
func batchedRate(r report) (float64, bool) {
	for _, run := range r.Runs {
		if run.Mode == "batched" && run.Transport != "stream" {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

// rateByMode finds the run carrying the exact mode label.
func rateByMode(r report, mode string) (float64, bool) {
	for _, run := range r.Runs {
		if run.Mode == mode {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

// streamRate finds the single-daemon streaming-transport rung at the newest
// wire version. The exact-mode match matters since the ladder grew stream-v1
// and stream-mc rungs: "first stream run" would pick the capped v1 rung.
// Reports predating the mode labels fall back to the first non-cluster
// stream run.
func streamRate(r report) (float64, bool) {
	if rate, ok := rateByMode(r, "stream"); ok {
		return rate, true
	}
	for _, run := range r.Runs {
		if run.Transport == "stream" && run.Mode != "cluster" {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

// clusterRate finds the federation rung.
func clusterRate(r report) (float64, bool) {
	for _, run := range r.Runs {
		if run.Mode == "cluster" {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

// checkClusterRun validates a seed-only federation run (mode "cluster") end
// to end: zero routing errors, every member both originated and received
// forwards (a silent all-local run would flatter throughput while testing
// nothing), and — when a floor is given — aggregate throughput above it.
// Ring-aware runs (mode "cluster-direct") invert the forwarding expectation;
// use checkClusterDirectRun for those.
func checkClusterRun(r run, label string, floor float64) bool {
	failed := false
	if r.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s federation run had %d routing errors\n", label, r.Errors)
		failed = true
	}
	if len(r.Nodes) < 2 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s federation run has %d nodes, want >= 2\n", label, len(r.Nodes))
		return true
	}
	for _, n := range r.Nodes {
		if n.ForwardsOut == 0 || n.ForwardsIn == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s node %s did not forward (out=%d in=%d)\n",
				label, n.Node, n.ForwardsOut, n.ForwardsIn)
			failed = true
		}
	}
	if floor > 0 && r.CheckInsPerSec < floor {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s aggregate throughput %.0f/s below floor %.0f/s\n",
			label, r.CheckInsPerSec, floor)
		failed = true
	}
	if !failed {
		fmt.Printf("benchguard: %s federation run OK (%.0f/s aggregate, %d nodes all forwarding)\n",
			label, r.CheckInsPerSec, len(r.Nodes))
	}
	return failed
}

// checkClusterDirectRun validates a ring-aware federation run (mode
// "cluster-direct"): zero routing errors, zero forward errors, every member
// serving direct-routed batches, and a near-idle forward path — clients that
// know the ring should leave the daemons nothing to forward beyond the
// handful of batches sent before the first topology fetch completes (bounded
// at 1% of the direct-routed count, minimum 16 for short runs).
func checkClusterDirectRun(r run, label string) bool {
	failed := false
	if r.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s direct-routing run had %d routing errors\n", label, r.Errors)
		failed = true
	}
	if len(r.Nodes) < 2 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s direct-routing run has %d nodes, want >= 2\n", label, len(r.Nodes))
		return true
	}
	var direct, out int64
	for _, n := range r.Nodes {
		direct += n.DirectRoutedBatches
		out += n.ForwardsOut
		if n.ForwardErrors > 0 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s node %s had %d forward errors\n", label, n.Node, n.ForwardErrors)
			failed = true
		}
		if n.DirectRoutedBatches == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s node %s served no direct-routed batches (ring-aware clients not routing)\n",
				label, n.Node)
			failed = true
		}
	}
	if slack := max(direct/100, 16); out > slack {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s forward path not idle: %d forwards out vs %d direct-routed batches (allowed %d)\n",
			label, out, direct, slack)
		failed = true
	}
	if !failed {
		fmt.Printf("benchguard: %s direct-routing run OK (%.0f/s aggregate, %d direct-routed batches, %d forwards)\n",
			label, r.CheckInsPerSec, direct, out)
	}
	return failed
}

// checkChaosRun validates a chaos smoke: a federation run during which one
// member was killed. Ring-aware clients must have absorbed the loss — zero
// client-visible errors (every check-in either landed or was retried onto a
// live member; an error here is a potentially lost check-in), zero forward
// errors on the survivors (forwards to the dead peer must classify as local
// fallbacks, not ambiguous failures), and at least one surviving member must
// actually have seen a peer go down, or the run proves nothing.
func checkChaosRun(r run, label string) bool {
	failed := false
	if r.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s chaos run lost check-ins: %d client-side errors\n", label, r.Errors)
		failed = true
	}
	if r.CheckIns == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s chaos run served no check-ins\n", label)
		failed = true
	}
	sawDown := false
	for _, n := range r.Nodes {
		if n.ForwardErrors > 0 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s node %s had %d forward errors during the kill\n",
				label, n.Node, n.ForwardErrors)
			failed = true
		}
		if n.PeersDown > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s chaos run: no surviving node reports a down peer (was anything killed?)\n", label)
		failed = true
	}
	if !failed {
		fmt.Printf("benchguard: %s chaos run OK (%d check-ins, zero lost, zero forward errors, kill observed)\n",
			label, r.CheckIns)
	}
	return failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_serve.json", "committed benchmark report")
		currentPath  = flag.String("current", "", "freshly measured -compare report")
		maxRegress   = flag.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
		livePath     = flag.String("live", "", "live-daemon smoke report to check the plan hit rate in (optional)")
		minHitRate   = flag.Float64("min-hit-rate", 0.90, "minimum incremental plan hit rate for the smoke run")
		clusterPath  = flag.String("cluster-smoke", "", "live federation smoke report: every node must forward, zero routing errors (optional)")
		clusterFloor = flag.Float64("cluster-floor", 0, "absolute aggregate-throughput floor for -cluster-smoke (0 disables)")
		floorFrom    = flag.String("cluster-floor-from", "", "derive the -cluster-smoke floor from this single-daemon report's stream rate")
		floorFrac    = flag.Float64("cluster-floor-frac", 0.25, "fraction of -cluster-floor-from's rate the federation aggregate must reach")
		abPath       = flag.String("ab-smoke", "", "vennload -ab report: the first ab run's mean JCT must be no worse than the second's (optional)")
		obsSmoke     = flag.String("obs-smoke", "", "comma-separated reports measured with span sampling at the default rate; sampling must be live (spans recorded) and the best stream rung must stay within -max-obs-overhead of -obs-ref's")
		obsRef       = flag.String("obs-ref", "", "comma-separated sampling-off reference reports for the observability overhead gate")
		maxObsOvh    = flag.Float64("max-obs-overhead", 0.03, "maximum fractional stream-throughput loss attributable to request-span sampling")
		shadowPath   = flag.String("shadow-smoke", "", "comma-separated shadow-mode smoke reports: shadow counters must be present with zero dropped events and panics (optional)")
		shadowRef    = flag.String("shadow-ref", "", "comma-separated no-shadow reference reports; -shadow-smoke's best stream rung must stay within -max-shadow-overhead of theirs")
		maxShadowOvh = flag.Float64("max-shadow-overhead", 0.10, "maximum fractional stream-throughput loss attributable to shadow policies")
		minV2Speedup = flag.Float64("min-v2-speedup", 0, "minimum stream (wire v2) over stream-v1 throughput ratio within the -current report (0 disables)")
		multicoreMin = flag.Float64("multicore-min-scale", 0, "minimum stream-mc over single-core stream throughput ratio within the -current report (0 disables; skipped on single-CPU hosts)")
		minDirect    = flag.Float64("min-cluster-direct-speedup", 0, "minimum cluster-direct (ring-aware clients) over single-daemon stream throughput ratio within the -current report (0 disables; skipped when the report has no cluster-direct rung)")
		minContended = flag.Float64("min-contended-frac", 0, "minimum stream-v2-contended (demand-heavy) over surplus stream throughput ratio within the -current report (0 disables; skipped when the report has no contended rung)")
		chaosPath    = flag.String("chaos-smoke", "", "federation chaos smoke report (one member killed mid-run under ring-aware clients): zero lost check-ins, zero forward errors (optional)")
	)
	flag.Parse()

	failed := false

	if *currentPath != "" {
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		current, err := load(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		if baseline.NumCPU != current.NumCPU {
			fmt.Printf("benchguard: num_cpu differs (%d baseline vs %d current); skipping throughput checks\n",
				baseline.NumCPU, current.NumCPU)
		} else {
			check := func(label string, rate func(report) (float64, bool)) {
				baseRate, okB := rate(baseline)
				curRate, okC := rate(current)
				switch {
				case !okB:
					fmt.Printf("benchguard: baseline has no %s run; skipping its throughput check\n", label)
				case !okC:
					fmt.Fprintf(os.Stderr, "benchguard: FAIL current report lost its %s run (baseline has one)\n", label)
					failed = true
				case curRate < baseRate*(1-*maxRegress):
					fmt.Fprintf(os.Stderr, "benchguard: FAIL %s throughput %.0f/s regressed more than %.0f%% below baseline %.0f/s\n",
						label, curRate, *maxRegress*100, baseRate)
					failed = true
				default:
					fmt.Printf("benchguard: %s throughput %.0f/s vs baseline %.0f/s (%.2fx) — OK\n",
						label, curRate, baseRate, curRate/baseRate)
				}
			}
			check("batched-http", batchedRate)
			check("stream-v1", func(r report) (float64, bool) { return rateByMode(r, "stream-v1") })
			check("stream", streamRate)
			check("stream-v2-contended", func(r report) (float64, bool) { return rateByMode(r, "stream-v2-contended") })
			check("cluster", clusterRate)
			check("cluster-direct", func(r report) (float64, bool) { return rateByMode(r, "cluster-direct") })
			check("stream-mc", func(r report) (float64, bool) { return rateByMode(r, "stream-mc") })
		}
		// Whatever the hardware, a committed-shape cluster run must actually
		// have federated: every node forwarding, zero routing errors. The
		// cluster-direct rung inverts that expectation — ring-aware clients
		// mean direct hits and near-zero forwards.
		for _, r := range current.Runs {
			switch r.Mode {
			case "cluster":
				failed = checkClusterRun(r, "compare", 0) || failed
			case "cluster-direct":
				failed = checkClusterDirectRun(r, "compare") || failed
			}
		}

		// Within-report ratio gates: same process, same hardware, so they
		// hold regardless of what machine recorded the committed baseline.
		if *minV2Speedup > 0 {
			v1Rate, ok1 := rateByMode(current, "stream-v1")
			v2Rate, ok2 := rateByMode(current, "stream")
			switch {
			case !ok1 || !ok2:
				fmt.Fprintln(os.Stderr, "benchguard: FAIL -min-v2-speedup needs both stream-v1 and stream rungs in the current report")
				failed = true
			case v2Rate < v1Rate**minV2Speedup:
				fmt.Fprintf(os.Stderr, "benchguard: FAIL stream wire v2 %.0f/s is only %.2fx the v1 rung's %.0f/s (floor %.2fx)\n",
					v2Rate, v2Rate/v1Rate, v1Rate, *minV2Speedup)
				failed = true
			default:
				fmt.Printf("benchguard: stream wire v2 %.0f/s vs v1 %.0f/s (%.2fx >= %.2fx) — OK\n",
					v2Rate, v1Rate, v2Rate/v1Rate, *minV2Speedup)
			}
		}
		if *multicoreMin > 0 {
			if current.NumCPU <= 1 {
				fmt.Println("benchguard: single-CPU host; skipping the multi-core scaling gate")
			} else {
				mcRate, okM := rateByMode(current, "stream-mc")
				scRate, okS := rateByMode(current, "stream")
				switch {
				case !okM || !okS:
					fmt.Fprintf(os.Stderr, "benchguard: FAIL -multicore-min-scale on a %d-CPU host needs both stream and stream-mc rungs in the current report\n", current.NumCPU)
					failed = true
				case mcRate < scRate**multicoreMin:
					fmt.Fprintf(os.Stderr, "benchguard: FAIL multi-core stream %.0f/s is only %.2fx the single-core rung's %.0f/s (floor %.2fx on %d CPUs)\n",
						mcRate, mcRate/scRate, scRate, *multicoreMin, current.NumCPU)
					failed = true
				default:
					fmt.Printf("benchguard: multi-core stream %.0f/s vs single-core %.0f/s (%.2fx >= %.2fx on %d CPUs) — OK\n",
						mcRate, scRate, mcRate/scRate, *multicoreMin, current.NumCPU)
				}
			}
		}
		if *minDirect > 0 {
			directRate, okD := rateByMode(current, "cluster-direct")
			scRate, okS := rateByMode(current, "stream")
			switch {
			case !okD:
				// Older reports predate the ring-aware rung; that is a
				// baseline problem, not a regression, so self-skip.
				fmt.Println("benchguard: report has no cluster-direct rung; skipping the direct-routing speedup gate")
			case !okS:
				fmt.Fprintln(os.Stderr, "benchguard: FAIL -min-cluster-direct-speedup needs a stream rung in the current report")
				failed = true
			case directRate < scRate**minDirect:
				fmt.Fprintf(os.Stderr, "benchguard: FAIL cluster-direct %.0f/s is only %.2fx the single-daemon stream rung's %.0f/s (floor %.2fx)\n",
					directRate, directRate/scRate, scRate, *minDirect)
				failed = true
			default:
				fmt.Printf("benchguard: cluster-direct %.0f/s vs single-daemon stream %.0f/s (%.2fx >= %.2fx) — OK\n",
					directRate, scRate, directRate/scRate, *minDirect)
			}
		}
		if *minContended > 0 {
			conRate, okC := rateByMode(current, "stream-v2-contended")
			scRate, okS := rateByMode(current, "stream")
			switch {
			case !okC:
				// Older reports predate the demand-heavy rung; self-skip
				// rather than fail a baseline problem as a regression.
				fmt.Println("benchguard: report has no stream-v2-contended rung; skipping the contended-throughput gate")
			case !okS:
				fmt.Fprintln(os.Stderr, "benchguard: FAIL -min-contended-frac needs a stream rung in the current report")
				failed = true
			case conRate < scRate**minContended:
				fmt.Fprintf(os.Stderr, "benchguard: FAIL contended stream %.0f/s is only %.2fx the surplus rung's %.0f/s (floor %.2fx)\n",
					conRate, conRate/scRate, scRate, *minContended)
				failed = true
			default:
				fmt.Printf("benchguard: contended stream %.0f/s vs surplus %.0f/s (%.2fx >= %.2fx) — OK\n",
					conRate, scRate, conRate/scRate, *minContended)
			}
		}
	}

	if *livePath != "" {
		live, err := load(*livePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		checked := false
		for _, run := range live.Runs {
			mt := run.ServerMetrics
			if mt == nil || mt.PlanRebuilds+mt.PlanPatches == 0 {
				continue
			}
			checked = true
			if mt.PlanIncrementalHitRate < *minHitRate {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL plan hit rate %.1f%% below %.1f%% (%d rebuilds, %d patches)\n",
					100*mt.PlanIncrementalHitRate, 100**minHitRate, mt.PlanRebuilds, mt.PlanPatches)
				failed = true
			} else {
				fmt.Printf("benchguard: plan hit rate %.1f%% (%d rebuilds, %d patches) — OK\n",
					100*mt.PlanIncrementalHitRate, mt.PlanRebuilds, mt.PlanPatches)
			}
		}
		if !checked {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL live report has no plan telemetry to check")
			failed = true
		}
	}

	if *clusterPath != "" {
		smoke, err := load(*clusterPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		floor := *clusterFloor
		if *floorFrom != "" {
			single, err := load(*floorFrom)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchguard:", err)
				os.Exit(1)
			}
			if rate, ok := streamRate(single); ok {
				floor = rate * *floorFrac
				fmt.Printf("benchguard: federation floor = %.2f x single-daemon stream %.0f/s = %.0f/s\n",
					*floorFrac, rate, floor)
			} else {
				fmt.Printf("benchguard: %s has no single-daemon stream run; skipping the federation floor\n", *floorFrom)
			}
		}
		checkedCluster := false
		for _, r := range smoke.Runs {
			if r.Mode != "cluster" {
				continue
			}
			checkedCluster = true
			failed = checkClusterRun(r, "smoke", floor) || failed
		}
		if !checkedCluster {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL cluster-smoke report has no cluster run")
			failed = true
		}
	}

	if *chaosPath != "" {
		chaos, err := load(*chaosPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		checkedChaos := false
		for _, r := range chaos.Runs {
			if r.Mode != "cluster" && r.Mode != "cluster-direct" {
				continue
			}
			checkedChaos = true
			failed = checkChaosRun(r, "smoke") || failed
		}
		if !checkedChaos {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL chaos-smoke report has no cluster run")
			failed = true
		}
	}

	if *abPath != "" {
		ab, err := load(*abPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		var abRuns []run
		for _, r := range ab.Runs {
			if strings.HasPrefix(r.Mode, "ab:") {
				abRuns = append(abRuns, r)
			}
		}
		if len(abRuns) != 2 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL ab-smoke report has %d ab runs, want 2\n", len(abRuns))
			failed = true
		} else {
			a, b := abRuns[0], abRuns[1]
			if a.JCTAvgSeconds > b.JCTAvgSeconds {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL A/B smoke: %s mean JCT %.2fs is worse than %s's %.2fs\n",
					a.Policy, a.JCTAvgSeconds, b.Policy, b.JCTAvgSeconds)
				failed = true
			} else {
				fmt.Printf("benchguard: A/B smoke OK (%s mean JCT %.2fs <= %s %.2fs)\n",
					a.Policy, a.JCTAvgSeconds, b.Policy, b.JCTAvgSeconds)
			}
		}
	}

	if *obsSmoke != "" {
		smokes, err := loadAll(*obsSmoke)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		// Sampling must actually have been live in the smoke runs, or the
		// overhead comparison silently measures nothing.
		sampled := false
		for _, smoke := range smokes {
			for _, r := range smoke.Runs {
				if mt := r.ServerMetrics; mt != nil && mt.ObsSampleEvery > 0 && mt.FlightRecorded > 0 {
					sampled = true
				}
			}
		}
		if !sampled {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL no obs-smoke report shows live span sampling (obs_sample_every > 0 with flight records)")
			failed = true
		}
		if *obsRef != "" {
			refs, err := loadAll(*obsRef)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchguard:", err)
				os.Exit(1)
			}
			refRate, okR := bestStreamRate(refs)
			curRate, okC := bestStreamRate(smokes)
			switch {
			case refs[0].NumCPU != smokes[0].NumCPU:
				fmt.Printf("benchguard: num_cpu differs (%d ref vs %d obs smoke); skipping the observability overhead check\n",
					refs[0].NumCPU, smokes[0].NumCPU)
			case !okR || !okC:
				fmt.Println("benchguard: observability overhead check needs a stream run on both sides; skipping")
			case curRate < refRate*(1-*maxObsOvh):
				fmt.Fprintf(os.Stderr, "benchguard: FAIL sampled stream throughput %.0f/s is more than %.1f%% below the sampling-off %.0f/s (best of %d vs %d runs)\n",
					curRate, *maxObsOvh*100, refRate, len(smokes), len(refs))
				failed = true
			default:
				fmt.Printf("benchguard: observability overhead %.1f%% of stream throughput (%.0f/s sampled vs %.0f/s off, best of %d vs %d runs) — OK\n",
					100*(1-curRate/refRate), curRate, refRate, len(smokes), len(refs))
			}
		}
	}

	if *shadowPath != "" {
		smokes, err := loadAll(*shadowPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		checkedShadow := false
		for _, smoke := range smokes {
			for _, r := range smoke.Runs {
				mt := r.ServerMetrics
				if mt == nil || len(mt.PolicyShadows) == 0 {
					continue
				}
				checkedShadow = true
				for name, s := range mt.PolicyShadows {
					switch {
					case s.Panics > 0 || s.DroppedEvents > 0:
						fmt.Fprintf(os.Stderr, "benchguard: FAIL shadow %s unhealthy: %d panics, %d dropped events\n",
							name, s.Panics, s.DroppedEvents)
						failed = true
					case s.AssignChecks == 0:
						fmt.Fprintf(os.Stderr, "benchguard: FAIL shadow %s scored no check-ins (not observing the event stream)\n", name)
						failed = true
					default:
						fmt.Printf("benchguard: shadow %s OK (%d checks, %d would-assign, %d mismatches vs primary %s)\n",
							name, s.AssignChecks, s.ShadowAssigns, s.Mismatches, mt.PolicyPrimary)
					}
				}
			}
		}
		if !checkedShadow {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL no shadow-smoke report has shadow telemetry")
			failed = true
		}
		if *shadowRef != "" {
			refs, err := loadAll(*shadowRef)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchguard:", err)
				os.Exit(1)
			}
			refRate, okR := bestStreamRate(refs)
			curRate, okC := bestStreamRate(smokes)
			switch {
			case refs[0].NumCPU != smokes[0].NumCPU:
				fmt.Printf("benchguard: num_cpu differs (%d ref vs %d shadow smoke); skipping the shadow overhead check\n",
					refs[0].NumCPU, smokes[0].NumCPU)
			case !okR || !okC:
				fmt.Println("benchguard: shadow overhead check needs a stream run on both sides; skipping")
			case curRate < refRate*(1-*maxShadowOvh):
				fmt.Fprintf(os.Stderr, "benchguard: FAIL shadowed stream throughput %.0f/s is more than %.0f%% below the no-shadow %.0f/s (best of %d vs %d runs)\n",
					curRate, *maxShadowOvh*100, refRate, len(smokes), len(refs))
				failed = true
			default:
				fmt.Printf("benchguard: shadow overhead %.1f%% of stream throughput (%.0f/s shadowed vs %.0f/s clean, best of %d vs %d runs) — OK\n",
					100*(1-curRate/refRate), curRate, refRate, len(smokes), len(refs))
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}
