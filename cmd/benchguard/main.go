// Command benchguard is the CI gate over the serving-path benchmarks: it
// compares a freshly measured vennload report against the committed
// BENCH_serve.json and fails when batched+sharded HTTP throughput — or,
// when both reports carry one, streaming-transport throughput — regressed
// beyond the allowed margin, and (optionally) when the incremental-plan hit
// rate of a live smoke run fell below its floor.
//
//	benchguard -baseline BENCH_serve.json -current BENCH_serve_fresh.json \
//	    -max-regress 0.20 -live BENCH_serve_live.json -min-hit-rate 0.90
//
// Throughput comparisons are only meaningful on the same hardware, so the
// regression checks are skipped (with a note) when the recorded num_cpu
// differs between the two reports — CI runners and developer laptops guard
// against themselves, not against each other.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the subset of vennload's benchReport the guard reads. The
// three-way shape labels each run with a transport; pre-stream reports
// lack the field, which decodes as "" and classifies as HTTP.
type report struct {
	Schema string `json:"schema"`
	NumCPU int    `json:"num_cpu"`
	Runs   []struct {
		Mode           string  `json:"mode"`
		Transport      string  `json:"transport"`
		Batch          int     `json:"batch"`
		CheckInsPerSec float64 `json:"checkins_per_sec"`
		ServerMetrics  *struct {
			PlanRebuilds           int64   `json:"plan_rebuilds"`
			PlanPatches            int64   `json:"plan_patches"`
			PlanIncrementalHitRate float64 `json:"plan_incremental_hit_rate"`
		} `json:"server_metrics"`
	} `json:"runs"`
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// batchedRate finds the batched HTTP rung (transport absent or "http").
func batchedRate(r report) (float64, bool) {
	for _, run := range r.Runs {
		if run.Mode == "batched" && run.Transport != "stream" {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

// streamRate finds the streaming-transport rung.
func streamRate(r report) (float64, bool) {
	for _, run := range r.Runs {
		if run.Transport == "stream" {
			return run.CheckInsPerSec, true
		}
	}
	return 0, false
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_serve.json", "committed benchmark report")
		currentPath  = flag.String("current", "", "freshly measured -compare report")
		maxRegress   = flag.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
		livePath     = flag.String("live", "", "live-daemon smoke report to check the plan hit rate in (optional)")
		minHitRate   = flag.Float64("min-hit-rate", 0.90, "minimum incremental plan hit rate for the smoke run")
	)
	flag.Parse()

	failed := false

	if *currentPath != "" {
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		current, err := load(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		if baseline.NumCPU != current.NumCPU {
			fmt.Printf("benchguard: num_cpu differs (%d baseline vs %d current); skipping throughput checks\n",
				baseline.NumCPU, current.NumCPU)
		} else {
			check := func(label string, rate func(report) (float64, bool)) {
				baseRate, okB := rate(baseline)
				curRate, okC := rate(current)
				switch {
				case !okB:
					fmt.Printf("benchguard: baseline has no %s run; skipping its throughput check\n", label)
				case !okC:
					fmt.Fprintf(os.Stderr, "benchguard: FAIL current report lost its %s run (baseline has one)\n", label)
					failed = true
				case curRate < baseRate*(1-*maxRegress):
					fmt.Fprintf(os.Stderr, "benchguard: FAIL %s throughput %.0f/s regressed more than %.0f%% below baseline %.0f/s\n",
						label, curRate, *maxRegress*100, baseRate)
					failed = true
				default:
					fmt.Printf("benchguard: %s throughput %.0f/s vs baseline %.0f/s (%.2fx) — OK\n",
						label, curRate, baseRate, curRate/baseRate)
				}
			}
			check("batched-http", batchedRate)
			check("stream", streamRate)
		}
	}

	if *livePath != "" {
		live, err := load(*livePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		checked := false
		for _, run := range live.Runs {
			mt := run.ServerMetrics
			if mt == nil || mt.PlanRebuilds+mt.PlanPatches == 0 {
				continue
			}
			checked = true
			if mt.PlanIncrementalHitRate < *minHitRate {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL plan hit rate %.1f%% below %.1f%% (%d rebuilds, %d patches)\n",
					100*mt.PlanIncrementalHitRate, 100**minHitRate, mt.PlanRebuilds, mt.PlanPatches)
				failed = true
			} else {
				fmt.Printf("benchguard: plan hit rate %.1f%% (%d rebuilds, %d patches) — OK\n",
					100*mt.PlanIncrementalHitRate, mt.PlanRebuilds, mt.PlanPatches)
			}
		}
		if !checked {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL live report has no plan telemetry to check")
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
