package sim

import (
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
)

// ResponseModel generates per-task response durations and failures. Device
// response times follow a log-normal distribution (Wang et al., 2023, as the
// paper assumes), scaled down by the device's compute speed and up by the
// job's task scale; devices additionally fail with their per-task failure
// probability, or when their availability window closes mid-task.
type ResponseModel struct {
	// Median and P95 parameterize the reference log-normal task duration
	// (on a Speed-1.0 device for a TaskScale-1.0 job).
	Median simtime.Duration
	P95    simtime.Duration
	// DisableFailures turns random dropouts off (availability-window
	// truncation still applies).
	DisableFailures bool
}

// DefaultResponseModel returns the model used in experiments: a reference
// task of median 60 s, p95 3 min — within the paper's 5-15 min round
// deadlines even for slow devices.
func DefaultResponseModel() ResponseModel {
	return ResponseModel{Median: 60 * simtime.Second, P95: 180 * simtime.Second}
}

// Sample draws the task outcome for dev working on j: the duration until the
// device would report, and whether the report succeeds.
func (m ResponseModel) Sample(rng *stats.RNG, d *device.Device, j *job.Job) (dur simtime.Duration, ok bool) {
	scale := j.TaskScale
	if scale <= 0 {
		scale = 1
	}
	speed := d.Speed
	if speed <= 0 {
		speed = 0.5
	}
	median := float64(m.Median) * scale / speed
	p95 := float64(m.P95) * scale / speed
	dur = simtime.Duration(rng.LogNormalMedianP95(median, p95))
	if dur < simtime.Second {
		dur = simtime.Second
	}
	ok = true
	if !m.DisableFailures && rng.Bool(d.FailureProb) {
		ok = false
		// Dropouts happen part-way through the task.
		dur = simtime.Duration(float64(dur) * rng.Uniform(0.1, 1.0))
	}
	return dur, ok
}
