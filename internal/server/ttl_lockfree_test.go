package server

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// TestDeviceTTLEviction pins the registry-bounding behavior: devices idle
// past Config.DeviceTTL are swept out by Tick (busy ones included once
// their reservation is a full TTL stale), and a returning device simply
// re-registers.
func TestDeviceTTLEviction(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(Config{Clock: clk.now, DeviceTTL: time.Hour})

	// Register a job and get one device assigned so it is busy.
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	busyAsg, err := m.DeviceCheckIn(CheckIn{DeviceID: "busy", CPU: 0.9, Mem: 0.9})
	if err != nil || !busyAsg.Assigned {
		t.Fatalf("busy device must be assigned: %+v %v", busyAsg, err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.DeviceCheckIn(CheckIn{DeviceID: fmt.Sprintf("idle-%d", i), CPU: 0.5, Mem: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 11 {
		t.Fatalf("known devices = %d, want 11", got)
	}

	// Within the TTL nothing is evicted.
	clk.advance(30 * time.Minute)
	for i := 0; i < len(m.shards); i++ {
		m.Tick()
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 11 {
		t.Fatalf("premature eviction: known devices = %d, want 11", got)
	}

	// Past the TTL everything goes — including the busy device, whose
	// reservation is a full TTL old and therefore belongs to a crashed
	// agent (its gauge entry must be released with it). Tick enough times
	// for the round-robin sweep to cover all shards.
	clk.advance(time.Hour)
	for i := 0; i < len(m.shards); i++ {
		m.Tick()
	}
	mt := m.MetricsSnapshot()
	if mt.KnownDevices != 0 {
		t.Errorf("known devices after sweep = %d, want 0", mt.KnownDevices)
	}
	if mt.DevicesEvicted != 11 {
		t.Errorf("devices_evicted = %d, want 11", mt.DevicesEvicted)
	}
	if mt.BusyDevices != 0 {
		t.Errorf("busy gauge after evicting a busy device = %d, want 0", mt.BusyDevices)
	}

	// An evicted device can come back as a fresh registration.
	if _, err := m.DeviceCheckIn(CheckIn{DeviceID: "idle-0", CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatalf("returning device rejected: %v", err)
	}
	if got := m.MetricsSnapshot().KnownDevices; got != 1 {
		t.Errorf("known devices after return = %d, want 1", got)
	}
	// A late report from the evicted busy device is an expected, tolerated
	// error — not a crash or a phantom response.
	if err := m.DeviceReport(Report{DeviceID: "busy", JobID: busyAsg.JobID, OK: true, DurationSeconds: 5}); err != ErrUnknownDevice {
		t.Errorf("stale report error = %v, want ErrUnknownDevice", err)
	}

	// TTL disabled (the default) must never evict.
	m2 := NewManager(Config{Clock: clk.now})
	if _, err := m2.DeviceCheckIn(CheckIn{DeviceID: "d", CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatal(err)
	}
	clk.advance(1000 * time.Hour)
	for i := 0; i < len(m2.shards); i++ {
		m2.Tick()
	}
	if got := m2.MetricsSnapshot().KnownDevices; got != 1 {
		t.Errorf("TTL-disabled manager evicted: known devices = %d, want 1", got)
	}
}

// TestLockFreeFastPathServesSurplus checks the snapshot fast path end to
// end: demand is still fulfilled exactly while surplus check-ins are
// answered without the core mutex, and the lock-free counter proves the
// fast path actually ran.
func TestLockFreeFastPathServesSurplus(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(Config{Clock: clk.now})
	if _, err := m.RegisterJob(JobSpec{Category: "Compute-Rich", DemandPerRound: 3, Rounds: 1}); err != nil {
		t.Fatal(err)
	}

	// A fleet where only some devices are eligible; batch them through.
	cis := make([]CheckIn, 40)
	for i := range cis {
		cpu := 0.2
		if i%4 == 0 {
			cpu = 0.9 // eligible for Compute-Rich
		}
		cis[i] = CheckIn{DeviceID: fmt.Sprintf("d%02d", i), CPU: cpu, Mem: 0.5}
	}
	res := m.CheckInBatch(cis)
	assigned := 0
	for i, r := range res {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
		if r.Assigned {
			assigned++
			if cis[i].CPU < 0.5 {
				t.Errorf("ineligible device %s assigned", cis[i].DeviceID)
			}
		}
	}
	if assigned != 3 {
		t.Fatalf("assigned = %d, want exactly the demand 3", assigned)
	}

	// Let the assigned devices report so the round (and job) completes and
	// the devices are free again.
	var reports []Report
	for i, r := range res {
		if r.Assigned {
			reports = append(reports, Report{DeviceID: cis[i].DeviceID, JobID: r.JobID, OK: true, DurationSeconds: 5})
		}
	}
	for _, rr := range m.ReportBatch(reports) {
		if rr.Error != "" {
			t.Fatal(rr.Error)
		}
	}

	// The job is done, the plan is republished: a second surplus batch
	// must ride the lock-free path entirely.
	before := m.MetricsSnapshot().LockFreeCheckIns
	clk.advance(25 * time.Hour) // reset the daily budget
	m.Tick()
	res = m.CheckInBatch(cis)
	for i, r := range res {
		if r.Error != "" || r.Assigned {
			t.Fatalf("surplus item %d: %+v", i, r)
		}
	}
	after := m.MetricsSnapshot().LockFreeCheckIns
	if after-before != int64(len(cis)) {
		t.Errorf("lock-free check-ins grew by %d, want %d", after-before, len(cis))
	}
}

// TestCheckInClampsWireScores is the regression guard for the
// out-of-range-cell panic: a device re-checking in with negative or NaN
// scores must be clamped exactly like a fresh registration, never indexing
// the per-cell supply counters out of range.
func TestCheckInClampsWireScores(t *testing.T) {
	m := NewManager(Config{Clock: newFakeClock().now})
	if _, err := m.DeviceCheckIn(CheckIn{DeviceID: "d1", CPU: 0.5, Mem: 0.5}); err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	for _, ci := range []CheckIn{
		{DeviceID: "d1", CPU: 0.5, Mem: -0.1},
		{DeviceID: "d1", CPU: -2, Mem: 0.9},
		{DeviceID: "d1", CPU: nan, Mem: nan},
		{DeviceID: "d1", CPU: 7, Mem: 7},
		{DeviceID: "fresh-nan", CPU: nan, Mem: -1},
	} {
		if _, err := m.DeviceCheckIn(ci); err != nil {
			t.Fatalf("%+v: %v", ci, err)
		}
	}
	res := m.CheckInBatch([]CheckIn{{DeviceID: "d1", CPU: -1, Mem: 2}})
	if res[0].Error != "" {
		t.Fatalf("batch with out-of-range scores: %s", res[0].Error)
	}
}

// TestMetricsExposePlanTelemetry checks the new /v1/metrics fields.
func TestMetricsExposePlanTelemetry(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(Config{Clock: clk.now})
	for i := 0; i < 4; i++ {
		if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 2, Rounds: 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("m%02d", i)
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: id, CPU: 0.7, Mem: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if asg.Assigned {
			if err := m.DeviceReport(Report{DeviceID: id, JobID: asg.JobID, OK: true, DurationSeconds: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	mt := m.MetricsSnapshot()
	if mt.PlanRebuilds == 0 {
		t.Error("plan_rebuilds must be positive after serving traffic")
	}
	if mt.PlanPatches == 0 {
		t.Error("plan_patches must be positive: round churn within a stable group set must patch, not rebuild")
	}
	if hr := mt.PlanIncrementalHitRate; hr <= 0 || hr >= 1 {
		t.Errorf("plan_incremental_hit_rate = %v, want in (0,1)", hr)
	}
	st := m.StatsSnapshot()
	if st.PlanRebuilds != int(mt.PlanRebuilds) || st.PlanPatches != int(mt.PlanPatches) {
		t.Errorf("stats/metrics disagree: %+v vs %+v", st, mt)
	}
}
