package sim

import (
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/tsdb"
)

// Scheduler is the resource-manager plug-in point. The engine drives it with
// job lifecycle notifications and asks it, for every checked-in device, which
// job (if any) the device should work for. Implementations include the
// paper's baselines (Random, FIFO, SRSF in internal/sched) and Venn itself
// (internal/core).
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string

	// Bind hands the scheduler its environment before the run starts.
	Bind(env *Env)

	// OnJobArrival notifies that a job has arrived (its first request
	// opens immediately after via OnRequest).
	OnJobArrival(j *job.Job, now simtime.Time)

	// OnRequest notifies that a request is (re)opened: a new round began
	// or an aborted attempt was resubmitted.
	OnRequest(j *job.Job, now simtime.Time)

	// OnRequestFulfilled notifies that the open request acquired its full
	// demand and entered response collection.
	OnRequestFulfilled(j *job.Job, now simtime.Time)

	// OnJobDone notifies that the job completed all rounds.
	OnJobDone(j *job.Job, now simtime.Time)

	// Assign picks the job a checked-in device should serve, or nil to
	// leave the device idle. The engine guarantees the device is online
	// and unused today; the scheduler must only return jobs whose
	// requirement the device satisfies and whose request is open.
	Assign(d *device.Device, now simtime.Time) *job.Job

	// ObserveResponse reports a completed (successful) task so the
	// scheduler can profile per-tier response times for device matching.
	ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time)
}

// Env is the scheduler's view of the simulated world.
type Env struct {
	// Grid is the atomic-cell grid induced by all job requirements in
	// the workload.
	Grid *device.Grid

	// DB records device check-ins per cell; schedulers query it for
	// trailing-window supply rates (§4.4).
	DB *tsdb.DB

	// CellPriorRate[c] is the expected check-in rate (devices/hour) of
	// cell c computed from the fleet trace, used before the DB has
	// observed enough history.
	CellPriorRate []float64

	// Jobs lists every job in the workload keyed by ID (including ones
	// that have not arrived yet); schedulers must not act on a job before
	// its OnJobArrival.
	Jobs map[job.ID]*job.Job

	// RNG is the scheduler's private randomness stream.
	RNG *stats.RNG

	// IdlePerCell[c] is the engine-maintained count of devices currently
	// checked in, idle, and schedulable in cell c. Schedulers may fold it
	// into their scheduling-delay estimates: a standing pool fulfills a
	// request immediately regardless of the arrival rate.
	IdlePerCell []int

	// CountIdle counts currently idle schedulable devices matching the
	// predicate (engine-provided). Nil outside a live engine.
	CountIdle func(pred func(*device.Device) bool) int
}

// IdleInRegion returns the standing idle-device count over a region.
func (e *Env) IdleInRegion(region device.RegionSet) int {
	total := 0
	region.ForEach(func(c device.CellID) {
		if int(c) < len(e.IdlePerCell) {
			total += e.IdlePerCell[c]
		}
	})
	return total
}

// EligibleRatePerHour returns the current estimate of the check-in rate of
// devices eligible for the requirement: the 24h-window measurement when
// enough history exists, otherwise the trace prior.
func (e *Env) EligibleRatePerHour(req device.Requirement, now simtime.Time) float64 {
	region := e.Grid.RegionOf(req)
	return e.RegionRatePerHour(region, now)
}

// RegionRatePerHour returns the supply-rate estimate summed over a region.
func (e *Env) RegionRatePerHour(region device.RegionSet, now simtime.Time) float64 {
	useDB := e.DB != nil && e.DB.HasHistory(now, 6)
	total := 0.0
	region.ForEach(func(c device.CellID) {
		total += e.CellRatePerHour(c, now, useDB)
	})
	return total
}

// CellRatePerHour returns the supply-rate estimate of one cell.
func (e *Env) CellRatePerHour(c device.CellID, now simtime.Time, useDB bool) float64 {
	if useDB && e.DB != nil {
		if r := e.DB.RatePerHour(c, now); r > 0 {
			return r
		}
	}
	if int(c) < len(e.CellPriorRate) {
		return e.CellPriorRate[c]
	}
	return 0
}
