// Package core implements the Venn scheduler: the Intersection Resource
// Scheduling (IRS) heuristic that orders CL jobs to minimize average
// scheduling delay (Algorithm 1), the resource-aware tier-based device
// matching that trims response-collection time (Algorithm 2), and the
// starvation-prevention fairness knob (§4.4).
package core

import (
	"math"
	"sort"

	"venn/internal/device"
)

// GroupState is the planner's view of one resource-homogeneous job group:
// jobs sharing the same device requirement. The IRS planner is a pure
// function over GroupStates, which keeps it independently testable and lets
// the scalability benchmark (Figure 10) drive it directly.
type GroupState struct {
	// Region is the group's eligible cell set S_j.
	Region device.RegionSet
	// Supply is |S_j|: the estimated check-in rate (devices/hour) of
	// eligible devices.
	Supply float64
	// Queue is m_j: the (fairness-adjusted) number of queued jobs.
	Queue float64

	// Outputs, filled by ComputeAllocation.
	Alloc     device.RegionSet // S'_j: cells allocated to this group
	AllocRate float64          // |S'_j| in devices/hour

	// Planner scratch, valid only during ComputeAllocation/BuildCellPlan:
	// m'_j as it accumulates absorbed queues, and the cached |Region|.
	queueNow    float64
	regionCells int
}

// ComputeAllocation runs Algorithm 1's group-level steps over the groups:
// initial scarcest-first allocation followed by greedy cross-group
// reallocation of intersected resources. cellRates[c] is the estimated
// check-in rate of cell c. Alloc/AllocRate are (re)written on every group;
// allocations are disjoint and cover exactly the cells claimed by at least
// one group.
func ComputeAllocation(groups []*GroupState, cellRates []float64) {
	if len(groups) == 0 {
		return
	}
	for _, g := range groups {
		g.queueNow = g.Queue
		g.regionCells = g.Region.Count()
	}

	// --- Initial allocation (Algorithm 1 lines 5-9): scan groups from
	// scarcest supply to most abundant; each claims whatever of its
	// eligible cells is still unclaimed. Supply ties (common before any
	// rate data exists) break by structural scarcity: fewer eligible
	// cells means a scarcer group.
	byScarcity := make([]*GroupState, len(groups))
	copy(byScarcity, groups)
	sort.SliceStable(byScarcity, func(i, j int) bool {
		if byScarcity[i].Supply != byScarcity[j].Supply {
			return byScarcity[i].Supply < byScarcity[j].Supply
		}
		return byScarcity[i].regionCells < byScarcity[j].regionCells
	})
	// Union of all groups' regions forms the universe S.
	remaining := groups[0].Region.Clone()
	for _, g := range groups[1:] {
		remaining.UnionWith(g.Region)
	}
	for _, g := range byScarcity {
		g.Alloc.IntersectOf(remaining, g.Region)
		remaining.SubtractWith(g.Alloc)
		g.AllocRate = g.Alloc.WeightedSum(cellRates)
	}

	// --- Cross-group reallocation (Algorithm 1 lines 10-23): scan groups
	// from most abundant; a group j with an unclaimed (non-empty)
	// allocation takes intersected cells from scarcer overlapping groups
	// k, from the relatively abundant k down, while j's queue-pressure
	// ratio exceeds k's.
	byAbundance := make([]*GroupState, len(groups))
	copy(byAbundance, groups)
	sort.SliceStable(byAbundance, func(i, j int) bool {
		if byAbundance[i].Supply != byAbundance[j].Supply {
			return byAbundance[i].Supply > byAbundance[j].Supply
		}
		return byAbundance[i].regionCells > byAbundance[j].regionCells
	})
	var steal device.RegionSet // scratch, reused across iterations
	for idx, gj := range byAbundance {
		if gj.Alloc.Empty() {
			continue
		}
		for _, gk := range byAbundance[idx+1:] {
			if gk.Supply >= gj.Supply { // require strictly scarcer
				continue
			}
			if !gk.Region.Overlaps(gj.Region) {
				continue
			}
			rj := pressure(gj.queueNow, gj.AllocRate)
			rk := pressure(gk.queueNow, gk.AllocRate)
			if rj > rk {
				// Reallocate the intersection held by k to j.
				steal.IntersectOf(gk.Alloc, gj.Region)
				if steal.Empty() {
					continue
				}
				gj.Alloc.UnionWith(steal)
				gk.Alloc.SubtractWith(steal)
				moved := steal.WeightedSum(cellRates)
				gj.AllocRate += moved
				gk.AllocRate -= moved
				// k's waiting jobs now queue behind j on the
				// shared cells; account them into m'_j.
				gj.queueNow += gk.queueNow
			} else {
				break
			}
		}
	}
}

// pressure is the scheduling-delay pressure ratio m'/|S'| with a safe
// infinity for starved groups.
func pressure(queue, allocRate float64) float64 {
	if allocRate <= 0 {
		if queue <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return queue / allocRate
}

// CellPlan is the per-cell group priority order derived from an allocation:
// for each atomic cell, the groups eligible for it, allocation owner first,
// then scarcest-supply first. A checked-in device in cell c is offered to
// plan[c]'s groups in order (the "first eligible job in the order" rule).
type CellPlan struct {
	// Order[c] lists indices into the planner's group slice.
	Order [][]int
}

// scarcityOrder returns the group indices sorted lowest supply first,
// structurally scarcer (fewer eligible cells) on ties, original index on
// full ties (matching the former per-cell stable sort). It is the single
// definition of the per-cell priority order shared by the full plan build
// and the incremental patch path — the patcher reuses existing rows only
// when this permutation is unchanged.
func scarcityOrder(groups []*GroupState) []int {
	order := make([]int, len(groups))
	counts := make([]int, len(groups))
	for i, g := range groups {
		order[i] = i
		counts[i] = g.Region.Count()
	}
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		if ga.Supply != gb.Supply {
			return ga.Supply < gb.Supply
		}
		return counts[order[a]] < counts[order[b]]
	})
	return order
}

// BuildCellPlan derives the per-cell priority lists for the given groups
// (after ComputeAllocation has filled Alloc). Order is always sized to
// numCells, so every cell of the grid has a (possibly empty) row.
//
// Instead of sorting each cell's eligible groups independently (O(cells x
// groups log groups) with two allocations per cell), the groups are sorted by
// scarcity once and appended cell-row by cell-row into one flat backing
// array, which is O(total region size) and three allocations total.
func BuildCellPlan(groups []*GroupState, numCells int) *CellPlan {
	if numCells < 0 {
		numCells = 0
	}
	plan := &CellPlan{Order: make([][]int, numCells)}
	if len(groups) == 0 || numCells == 0 {
		return plan
	}
	return buildCellPlanOrdered(groups, numCells, scarcityOrder(groups))
}

// buildCellPlanOrdered is BuildCellPlan with the scarcity permutation
// precomputed by the caller.
func buildCellPlanOrdered(groups []*GroupState, numCells int, order []int) *CellPlan {
	plan := &CellPlan{Order: make([][]int, numCells)}

	// Size each cell's row, then carve all rows out of one backing slice.
	sizes := make([]int, numCells)
	for _, g := range groups {
		g.Region.ForEach(func(c device.CellID) {
			if int(c) < numCells {
				sizes[c]++
			}
		})
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	backing := make([]int, 0, total)
	off := 0
	for c := range plan.Order {
		plan.Order[c] = backing[off : off : off+sizes[c]]
		off += sizes[c]
	}

	// The allocation owner leads its cell's row. First-in-group-order wins
	// if allocations ever overlap (they are disjoint after
	// ComputeAllocation); any extra alloc-holder falls through to the
	// scarcity-ordered remainder below.
	owner := make([]int32, numCells)
	for c := range owner {
		owner[c] = -1
	}
	for gi, g := range groups {
		g.Alloc.ForEach(func(c device.CellID) {
			if int(c) < numCells && owner[c] < 0 && g.Region.Has(c) {
				owner[c] = int32(gi)
				plan.Order[c] = append(plan.Order[c], gi)
			}
		})
	}
	for _, gi := range order {
		g := groups[gi]
		g.Region.ForEach(func(c device.CellID) {
			if int(c) < numCells && owner[c] != int32(gi) {
				plan.Order[c] = append(plan.Order[c], gi)
			}
		})
	}
	return plan
}

// patchCellPlan derives the cell plan that buildCellPlanOrdered would
// produce for the given groups, reusing every row of the previous plan
// except those of the changed cells. It must only be called when the group
// slice (set and order) and the scarcity permutation are unchanged since old
// was built, so a row's content can only differ on a cell whose allocation
// owner moved. The returned plan is a fresh object sharing the unchanged
// rows: published snapshots stay immutable for concurrent readers, while the
// patch cost is O(numCells pointer copies + changed cells x groups) instead
// of a full O(total region size) rebuild.
func patchCellPlan(old *CellPlan, groups []*GroupState, order []int, changed device.RegionSet) *CellPlan {
	numCells := len(old.Order)
	plan := &CellPlan{Order: make([][]int, numCells)}
	copy(plan.Order, old.Order)
	changed.ForEach(func(c device.CellID) {
		if int(c) >= numCells {
			return
		}
		row := make([]int, 0, len(old.Order[c]))
		// Allocation owner leads the row: first group in original index
		// order holding the cell (allocations are disjoint subsets of the
		// group's region, mirroring buildCellPlanOrdered's owner rule).
		ownerIdx := -1
		for gi, g := range groups {
			if g.Alloc.Has(c) {
				ownerIdx = gi
				row = append(row, gi)
				break
			}
		}
		for _, gi := range order {
			if gi != ownerIdx && groups[gi].Region.Has(c) {
				row = append(row, gi)
			}
		}
		plan.Order[c] = row
	})
	return plan
}
