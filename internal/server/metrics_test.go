package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRateCounter(t *testing.T) {
	var rc rateCounter
	// 5 events/s for the 10 seconds preceding "now" (second 100).
	for s := int64(90); s < 100; s++ {
		rc.Add(s, 5)
	}
	if got := rc.PerSec(100); got != 5 {
		t.Errorf("PerSec = %v, want 5", got)
	}
	// The current, still-filling second is excluded.
	rc.Add(100, 1000)
	if got := rc.PerSec(100); got != 5 {
		t.Errorf("PerSec with open second = %v, want 5", got)
	}
	// A quiet window decays to zero once the buckets fall out of range.
	if got := rc.PerSec(100 + rateRingSeconds + 1); got != 0 {
		t.Errorf("stale PerSec = %v, want 0", got)
	}
	// Bucket reuse after the ring wraps.
	rc.Add(100+rateRingSeconds, 7)
	if got := rc.PerSec(101 + rateRingSeconds); got != 0.7 {
		t.Errorf("reused-bucket PerSec = %v, want 0.7", got)
	}
}

func TestLatencyTrack(t *testing.T) {
	var lt latencyTrack
	if s := lt.summary(); s.Count != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	for i := 1; i <= 100; i++ {
		lt.observe(float64(i))
	}
	s := lt.summary()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 < 49 || s.P50 > 52 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Errorf("p99 = %v", s.P99)
	}
	// Overflow the ring: the window keeps only the most recent
	// latencyWindow samples, the count keeps everything.
	for i := 0; i < latencyWindow+10; i++ {
		lt.observe(1000)
	}
	s = lt.summary()
	if s.Count != int64(100+latencyWindow+10) {
		t.Errorf("cumulative count = %d", s.Count)
	}
	if s.P50 != 1000 {
		t.Errorf("windowed p50 = %v, want 1000", s.P50)
	}
}

func TestMetricsSnapshotAndEndpoint(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(clk)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/jobs", JobSpec{Category: "General", DemandPerRound: 2, Rounds: 1})
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/checkin", CheckIn{DeviceID: "m0", CPU: 0.6, Mem: 0.6})
	resp.Body.Close()
	resp = postJSON(t, srv, "/v1/checkin/batch", CheckInBatchRequest{CheckIns: []CheckIn{
		{DeviceID: "m1", CPU: 0.7, Mem: 0.7},
		{DeviceID: "m2", CPU: 0.4, Mem: 0.4},
	}})
	resp.Body.Close()

	r, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mt Metrics
	if err := json.NewDecoder(r.Body).Decode(&mt); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	if mt.CheckIns != 3 {
		t.Errorf("checkins_total = %d, want 3", mt.CheckIns)
	}
	if mt.Assignments != 2 {
		t.Errorf("assignments_total = %d, want 2", mt.Assignments)
	}
	if mt.KnownDevices != 3 || mt.BusyDevices != 2 {
		t.Errorf("devices: known=%d busy=%d", mt.KnownDevices, mt.BusyDevices)
	}
	if mt.Shards != defaultShards {
		t.Errorf("shards = %d", mt.Shards)
	}
	if mt.ActiveJobs != 1 || mt.CollectingJobs != 1 {
		t.Errorf("job depths: %+v", mt)
	}
	ci, ok := mt.HandlerLatencyMs[RouteCheckIn]
	if !ok || ci.Count != 1 {
		t.Errorf("checkin latency: %+v (ok=%v)", ci, ok)
	}
	cb, ok := mt.HandlerLatencyMs[RouteCheckInBatch]
	if !ok || cb.Count != 1 || cb.P99 < 0 {
		t.Errorf("checkin_batch latency: %+v (ok=%v)", cb, ok)
	}
	if _, ok := mt.HandlerLatencyMs[RouteReport]; ok {
		t.Error("untouched route must be omitted from the latency map")
	}

	// Rates: feed the counters directly at a known clock second.
	sec := clk.now().Unix()
	m.metrics.checkins.Add(sec-1, 30)
	mt2 := m.MetricsSnapshot()
	if mt2.CheckInsPerSec < 3.0-1e-9 {
		t.Errorf("checkins_per_sec = %v, want >= 3", mt2.CheckInsPerSec)
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	m := newTestManager(newFakeClock())
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST metrics status %d", resp.StatusCode)
	}
}
