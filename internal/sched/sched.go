// Package sched implements the baseline CL resource managers the paper
// compares against (§5.1): optimized Random matching (the common design of
// Apple's, Meta's, and Google's resource managers), FIFO, and SRSF (shortest
// remaining service first). All three keep a priority-ordered queue of open
// requests and hand each checked-in device to the first eligible job.
package sched

import (
	"sort"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// Policy orders the open-request queue.
type Policy int

const (
	// PolicyRandom assigns each request a random priority when it opens —
	// the paper's "optimized random matching" baseline: devices flow to a
	// randomized job order (rather than scattering uniformly), which
	// reduces round abortions under contention.
	PolicyRandom Policy = iota
	// PolicyFIFO orders by job arrival time.
	PolicyFIFO
	// PolicySRSF orders by remaining service (remaining rounds x demand),
	// smallest first.
	PolicySRSF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyRandom:
		return "Random"
	case PolicyFIFO:
		return "FIFO"
	case PolicySRSF:
		return "SRSF"
	default:
		return "Unknown"
	}
}

// queued is one open request in the queue.
type queued struct {
	job      *job.Job
	priority float64 // meaning depends on policy
}

// Baseline is a queue-order scheduler parameterized by Policy. It implements
// sim.Scheduler.
type Baseline struct {
	policy Policy
	env    *sim.Env
	queue  []queued
	dirty  bool
}

// New returns a baseline scheduler with the given policy.
func New(policy Policy) *Baseline { return &Baseline{policy: policy} }

// NewRandom returns the optimized random-matching baseline.
func NewRandom() *Baseline { return New(PolicyRandom) }

// NewFIFO returns the FIFO baseline.
func NewFIFO() *Baseline { return New(PolicyFIFO) }

// NewSRSF returns the shortest-remaining-service-first baseline.
func NewSRSF() *Baseline { return New(PolicySRSF) }

// Name implements sim.Scheduler.
func (b *Baseline) Name() string { return b.policy.String() }

// Bind implements sim.Scheduler.
func (b *Baseline) Bind(env *sim.Env) { b.env = env }

// OnJobArrival implements sim.Scheduler.
func (b *Baseline) OnJobArrival(j *job.Job, now simtime.Time) {}

// OnRequest implements sim.Scheduler.
func (b *Baseline) OnRequest(j *job.Job, now simtime.Time) {
	pr := b.priorityFor(j, now)
	for i := range b.queue {
		if b.queue[i].job.ID == j.ID {
			b.queue[i].priority = pr
			b.dirty = true
			return
		}
	}
	b.queue = append(b.queue, queued{job: j, priority: pr})
	b.dirty = true
}

func (b *Baseline) priorityFor(j *job.Job, now simtime.Time) float64 {
	switch b.policy {
	case PolicyRandom:
		return b.env.RNG.Float64()
	case PolicyFIFO:
		return float64(j.Arrival)
	case PolicySRSF:
		return float64(j.RemainingService())
	default:
		return 0
	}
}

// OnRequestFulfilled implements sim.Scheduler: the request leaves the queue.
func (b *Baseline) OnRequestFulfilled(j *job.Job, now simtime.Time) {
	b.remove(j.ID)
}

// OnJobDone implements sim.Scheduler.
func (b *Baseline) OnJobDone(j *job.Job, now simtime.Time) {
	b.remove(j.ID)
}

func (b *Baseline) remove(id job.ID) {
	for i := range b.queue {
		if b.queue[i].job.ID == id {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return
		}
	}
}

// Assign implements sim.Scheduler: first eligible open request in queue
// order gets the device.
func (b *Baseline) Assign(d *device.Device, now simtime.Time) *job.Job {
	b.ensureSorted()
	for _, q := range b.queue {
		j := q.job
		if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
			continue
		}
		if j.Requirement.Eligible(d) {
			return j
		}
	}
	return nil
}

func (b *Baseline) ensureSorted() {
	if !b.dirty {
		return
	}
	sort.SliceStable(b.queue, func(i, k int) bool {
		if b.queue[i].priority != b.queue[k].priority {
			return b.queue[i].priority < b.queue[k].priority
		}
		return b.queue[i].job.ID < b.queue[k].job.ID
	})
	b.dirty = false
}

// ObserveResponse implements sim.Scheduler (baselines do not profile).
func (b *Baseline) ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time) {
}

// QueueLen reports the number of open requests (for tests).
func (b *Baseline) QueueLen() int { return len(b.queue) }
