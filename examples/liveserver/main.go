// Liveserver: runs the Venn resource manager as an in-process HTTP service
// and drives it with simulated devices and jobs over the wire — the full
// Figure 6 workflow (request, check-in, assign, participate, report) without
// any simulator involvement.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"venn/internal/server"
	"venn/internal/stats"
)

func main() {
	m := server.NewManager(server.Config{})
	srv := httptest.NewServer(server.Handler(m))
	defer srv.Close()
	fmt.Println("resource manager at", srv.URL)

	// Two product teams register jobs.
	kbd := registerJob(srv.URL, server.JobSpec{
		Name: "keyboard", Category: "General", DemandPerRound: 8, Rounds: 2})
	emoji := registerJob(srv.URL, server.JobSpec{
		Name: "emoji", Category: "High-Perf", DemandPerRound: 4, Rounds: 2})
	fmt.Printf("registered: %s (#%d), %s (#%d)\n", kbd.Name, kbd.ID, emoji.Name, emoji.ID)

	// A fleet of phones checks in as they reach chargers.
	rng := stats.NewRNG(7)
	assigned := 0
	for i := 0; i < 60 && activeJobs(srv.URL) > 0; i++ {
		ci := server.CheckIn{
			DeviceID: fmt.Sprintf("phone-%03d", i),
			CPU:      rng.Float64(),
			Mem:      rng.Float64(),
		}
		var asg server.Assignment
		post(srv.URL+"/v1/checkin", ci, &asg)
		if !asg.Assigned {
			continue
		}
		assigned++
		// The device runs its task and reports (always succeeds here).
		post(srv.URL+"/v1/report", server.Report{
			DeviceID: ci.DeviceID, JobID: asg.JobID, OK: true,
			DurationSeconds: 30 + 60*rng.Float64(),
		}, &struct{}{})
	}

	var st server.Stats
	get(srv.URL+"/v1/stats", &st)
	fmt.Printf("\n%d devices assigned, %d reports, %d jobs completed (avg JCT %.0fs)\n",
		st.Assignments, st.Reports, st.CompletedJobs, st.AvgJCTSeconds)
	for _, j := range jobs(srv.URL) {
		fmt.Printf("  job %d (%s): %s, %d/%d rounds\n", j.ID, j.Name, j.State, j.CompletedRounds, j.Rounds)
	}
}

func registerJob(base string, spec server.JobSpec) server.JobStatus {
	var st server.JobStatus
	post(base+"/v1/jobs", spec, &st)
	return st
}

func jobs(base string) []server.JobStatus {
	var out []server.JobStatus
	get(base+"/v1/jobs", &out)
	return out
}

func activeJobs(base string) int {
	n := 0
	for _, j := range jobs(base) {
		if j.State != "done" {
			n++
		}
	}
	return n
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
