// Package device models edge devices and the set algebra over job resource
// requirements that underlies Venn's Intersection Resource Scheduling.
//
// A device is described by normalized hardware scores (CPU and memory, each
// in [0, 1], following the AI-Benchmark normalization the paper uses). A job
// requirement is a pair of minimum scores. The distinct thresholds across all
// active requirements cut the score plane into a grid of atomic cells; every
// requirement's eligible device set is then an exact union of cells (a
// RegionSet bitset). Overlap, containment, and nesting between job resource
// demands — the structure the IRS problem is named for — become plain set
// algebra over these bitsets.
package device

import (
	"fmt"
	"math"
)

// ID identifies a device within one simulation.
type ID int32

// Device is one edge device: a phone, laptop, or IoT node.
type Device struct {
	ID  ID
	CPU float64 // normalized CPU capability score in [0, 1]
	Mem float64 // normalized memory capacity score in [0, 1]

	// Speed scales task compute time: a device with Speed 2 finishes the
	// same task twice as fast as the reference device. Derived from CPU
	// score by the trace generator.
	Speed float64

	// FailureProb is the per-task probability that the device drops out
	// (battery, user interaction, network loss) before reporting.
	FailureProb float64

	// LastTaskDay is the simulation day index of the device's most recent
	// task, used to enforce the paper's one-CL-task-per-device-per-day
	// realism constraint. -1 means never.
	LastTaskDay int32
}

// New returns a device with the given scores and sensible derived defaults:
// speed follows the CPU score linearly in [0.5, 2.0] and failure probability
// decreases with capability (high-end devices finish quickly and drop out
// less, as §4.3 observes).
func New(id ID, cpu, mem float64) *Device {
	cpu = clamp01(cpu)
	mem = clamp01(mem)
	return &Device{
		ID:          id,
		CPU:         cpu,
		Mem:         mem,
		Speed:       0.5 + 1.5*cpu,
		FailureProb: 0.12 * (1 - 0.75*cpu),
		LastTaskDay: -1,
	}
}

func clamp01(x float64) float64 { return Clamp01(x) }

// Clamp01 clamps a reported hardware score into the valid [0, 1] range;
// NaN maps to 0. Callers that overwrite a Device's scores with raw wire
// values (the live server's check-in refresh) must clamp the same way New
// does, or grid lookups can return out-of-range cells.
func Clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x >= 0 {
		return x
	}
	return 0 // negative or NaN
}

// Capability is a combined capacity score used for tier partitioning in the
// device-matching algorithm (Algorithm 2). Compute speed dominates since it
// determines response time.
func (d *Device) Capability() float64 { return 0.7*d.CPU + 0.3*d.Mem }

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("dev%d(cpu=%.2f mem=%.2f)", d.ID, d.CPU, d.Mem)
}

// Requirement is a CL job's minimum device specification. Eligible devices
// are those with CPU >= MinCPU and Mem >= MinMem.
type Requirement struct {
	Name   string
	MinCPU float64
	MinMem float64
}

// Eligible reports whether the device satisfies the requirement.
func (r Requirement) Eligible(d *Device) bool {
	return d.CPU >= r.MinCPU && d.Mem >= r.MinMem
}

// EligibleScores reports whether raw scores satisfy the requirement.
func (r Requirement) EligibleScores(cpu, mem float64) bool {
	return cpu >= r.MinCPU && mem >= r.MinMem
}

// Key returns a canonical identity for grouping jobs with identical
// requirements into resource-homogeneous job groups. Thresholds are rounded
// to 1e-9 so that floating-point noise cannot split a group.
func (r Requirement) Key() RequirementKey {
	return RequirementKey{
		MinCPU: int64(math.Round(r.MinCPU * 1e9)),
		MinMem: int64(math.Round(r.MinMem * 1e9)),
	}
}

// RequirementKey is the comparable grouping key of a Requirement.
type RequirementKey struct {
	MinCPU, MinMem int64
}

// Contains reports whether every device eligible for other is also eligible
// for r (r's eligible set is a superset).
func (r Requirement) Contains(other Requirement) bool {
	return r.MinCPU <= other.MinCPU && r.MinMem <= other.MinMem
}

// String implements fmt.Stringer.
func (r Requirement) String() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("req(cpu>=%.2f,mem>=%.2f)", r.MinCPU, r.MinMem)
}

// The four device-eligibility strata used throughout the paper's evaluation
// (Figure 8a): devices are stratified by CPU and memory score at 0.5, giving
// eligible sets that overlap, contain, and nest.
var (
	General     = Requirement{Name: "General", MinCPU: 0, MinMem: 0}
	ComputeRich = Requirement{Name: "Compute-Rich", MinCPU: 0.5, MinMem: 0}
	MemoryRich  = Requirement{Name: "Memory-Rich", MinCPU: 0, MinMem: 0.5}
	HighPerf    = Requirement{Name: "High-Perf", MinCPU: 0.5, MinMem: 0.5}
)

// Categories lists the four standard requirement strata in a stable order.
func Categories() []Requirement {
	return []Requirement{General, ComputeRich, MemoryRich, HighPerf}
}

// CategoryIndex returns the position of the requirement within Categories(),
// or -1 if it is not one of the standard strata.
func CategoryIndex(r Requirement) int {
	key := r.Key()
	for i, c := range Categories() {
		if c.Key() == key {
			return i
		}
	}
	return -1
}
