// Wire protocol v2: fixed-layout binary codecs for the high-volume wire
// types. The JSON codecs in codec.go removed reflection from the serving
// path; these remove JSON itself. A v2 stream frame carries these layouts
// for the four serving opcodes (check-in, report, and their batch forms),
// negotiated per connection at hello time — see internal/transport and the
// README "Wire protocol" spec.
//
// Layout conventions (the spec; frozen once shipped):
//
//	uvarint = unsigned LEB128 (encoding/binary AppendUvarint)
//	varint  = zigzag LEB128 (encoding/binary AppendVarint)
//	str     = uvarint length | raw bytes
//	f64     = 8 bytes IEEE-754, big-endian
//	bool    = 1 byte, 0 or 1 (other values rejected)
//
//	CheckIn              = str device_id | f64 cpu | f64 mem
//	Assignment           = u8 flags | tail?
//	                       flags bit0 = assigned, bit1 = tail present
//	                       tail  = varint job_id | varint round |
//	                               str job_name | str policy
//	CheckInResult        = u8 flags | tail? | str error?
//	                       flags bit0 = assigned, bit1 = tail present,
//	                       bit2 = error present
//	Report               = str device_id | varint job_id | bool ok |
//	                       f64 duration_seconds
//	ReportResult         = u8 flags (bit0 = error present) | str error?
//	CheckInBatchRequest  = uvarint count | count × CheckIn
//	CheckInBatchResponse = uvarint count | count × CheckInResult
//	ReportBatchRequest   = uvarint count | count × Report
//	ReportBatchResponse  = uvarint count | count × ReportResult
//
// The flags-plus-optional-tail shape exists for the same reason Assignment
// uses omitempty in JSON: at load-test rates the overwhelmingly common
// reply is "no work", which encodes as a single zero byte. Unknown flag
// bits are rejected so future revisions cannot be silently misparsed.
// Decoders reject trailing bytes; encode∘decode is a fixed point (pinned by
// bincodec_test.go and FuzzCodecV2RoundTrip).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// --- encoding helpers ---

func appendBinString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBinF64(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBinBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- decoding helper ---

// bdec is a bounds-checked cursor over a binary payload. Methods record the
// first error and return zero values afterwards, so call sites read
// straight-line and check err once per item.
//
// When shared is set (one string conversion of the whole payload, done by
// the batch-request decoders), str returns substrings of it instead of
// allocating per field — the dominant allocation in the v2 serving profile
// (BenchmarkForwardPath). The substrings share the payload-sized backing
// array, so any site that RETAINS a decoded string beyond the request (the
// device registry, in-flight maps, shadow events) must strings.Clone it;
// transient uses (map lookups, comparisons, re-encoding) need nothing.
type bdec struct {
	b      []byte
	shared string
	i      int
	err    error
}

func (d *bdec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("server: malformed binary body: %s", msg)
	}
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.i:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.i += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.i:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.i += n
	return v
}

func (d *bdec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.i) {
		d.fail("string length exceeds payload")
		return ""
	}
	var s string
	if d.shared != "" {
		s = d.shared[d.i : d.i+int(n)]
	} else {
		s = string(d.b[d.i : d.i+int(n)])
	}
	d.i += int(n)
	return s
}

func (d *bdec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.i < 8 {
		d.fail("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.i:]))
	d.i += 8
	return f
}

func (d *bdec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.i >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	c := d.b[d.i]
	d.i++
	return c
}

func (d *bdec) bool() bool {
	c := d.u8()
	if c > 1 {
		d.fail("bad bool")
	}
	return c == 1
}

// count reads a batch length and bounds it: never above the bytes left in
// the payload (every item is at least one byte, so a lying prefix cannot
// balloon the allocation), and never above MaxBatch — the latter as the
// service layer's typed too-large error, so an oversized batch classifies
// identically over v1 JSON (where the service does the check) and v2
// binary.
func (d *bdec) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.i) {
		d.fail("batch count exceeds payload")
		return 0
	}
	if n > MaxBatch {
		if d.err == nil {
			d.err = svcErr(CodeTooLarge, fmt.Errorf("server: batch of %d exceeds limit %d", n, MaxBatch))
		}
		return 0
	}
	return int(n)
}

// finish asserts full consumption; trailing bytes are a framing bug.
func (d *bdec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.i != len(d.b) {
		return errors.New("server: malformed binary body: trailing bytes")
	}
	return nil
}

// --- CheckIn ---

func (c *CheckIn) appendBinary(b []byte) []byte {
	b = appendBinString(b, c.DeviceID)
	b = appendBinF64(b, c.CPU)
	return appendBinF64(b, c.Mem)
}

// AppendBinary appends the v2 wire form to b (pooled-scratch variant of
// MarshalBinary).
func (c *CheckIn) AppendBinary(b []byte) ([]byte, error) { return c.appendBinary(b), nil }

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (c *CheckIn) MarshalBinary() ([]byte, error) {
	return c.appendBinary(make([]byte, 0, 2+len(c.DeviceID)+16)), nil
}

func (c *CheckIn) decodeBinary(d *bdec) {
	c.DeviceID = d.str()
	c.CPU = d.f64()
	c.Mem = d.f64()
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (c *CheckIn) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*c = CheckIn{}
	c.decodeBinary(&d)
	return d.finish()
}

// --- Assignment ---

const (
	binFlagAssigned = 1 << 0
	binFlagTail     = 1 << 1
	binFlagError    = 1 << 2
)

// assignmentFlags computes the flag byte; the tail bit is set whenever any
// tail field is non-zero, so encoding is lossless even for shapes the
// manager never emits (e.g. a policy name on an unassigned reply).
func (a *Assignment) assignmentFlags() byte {
	var fl byte
	if a.Assigned {
		fl |= binFlagAssigned
	}
	if a.JobID != 0 || a.Round != 0 || a.JobName != "" || a.Policy != "" {
		fl |= binFlagTail
	}
	return fl
}

func (a *Assignment) appendTail(b []byte) []byte {
	b = binary.AppendVarint(b, int64(a.JobID))
	b = binary.AppendVarint(b, int64(a.Round))
	b = appendBinString(b, a.JobName)
	return appendBinString(b, a.Policy)
}

// AppendBinary appends the v2 wire form to b (pooled-scratch variant of
// MarshalBinary).
func (a *Assignment) AppendBinary(b []byte) ([]byte, error) {
	fl := a.assignmentFlags()
	b = append(b, fl)
	if fl&binFlagTail != 0 {
		b = a.appendTail(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (a *Assignment) MarshalBinary() ([]byte, error) {
	return a.AppendBinary(make([]byte, 0, 16+len(a.JobName)+len(a.Policy)))
}

func (a *Assignment) decodeTail(d *bdec) {
	a.JobID = int(d.varint())
	a.Round = int(d.varint())
	a.JobName = d.str()
	a.Policy = d.str()
}

func (a *Assignment) decodeBinary(d *bdec, allowedFlags byte) byte {
	fl := d.u8()
	if fl&^allowedFlags != 0 {
		d.fail("unknown flag bits")
		return 0
	}
	a.Assigned = fl&binFlagAssigned != 0
	if fl&binFlagTail != 0 {
		a.decodeTail(d)
	}
	return fl
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (a *Assignment) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*a = Assignment{}
	a.decodeBinary(&d, binFlagAssigned|binFlagTail)
	return d.finish()
}

// --- CheckInResult ---

func (r *CheckInResult) appendBinary(b []byte) []byte {
	fl := r.assignmentFlags()
	if r.Error != "" {
		fl |= binFlagError
	}
	b = append(b, fl)
	if fl&binFlagTail != 0 {
		b = r.appendTail(b)
	}
	if fl&binFlagError != 0 {
		b = appendBinString(b, r.Error)
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *CheckInResult) MarshalBinary() ([]byte, error) {
	return r.appendBinary(make([]byte, 0, 16+len(r.JobName)+len(r.Policy)+len(r.Error))), nil
}

func (r *CheckInResult) decodeBinary(d *bdec) {
	fl := r.Assignment.decodeBinary(d, binFlagAssigned|binFlagTail|binFlagError)
	if fl&binFlagError != 0 {
		r.Error = d.str()
	}
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *CheckInResult) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*r = CheckInResult{}
	r.decodeBinary(&d)
	return d.finish()
}

// --- Report ---

func (r *Report) appendBinary(b []byte) []byte {
	b = appendBinString(b, r.DeviceID)
	b = binary.AppendVarint(b, int64(r.JobID))
	b = appendBinBool(b, r.OK)
	return appendBinF64(b, r.DurationSeconds)
}

// AppendBinary appends the v2 wire form to b (pooled-scratch variant of
// MarshalBinary).
func (r *Report) AppendBinary(b []byte) ([]byte, error) { return r.appendBinary(b), nil }

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *Report) MarshalBinary() ([]byte, error) {
	return r.appendBinary(make([]byte, 0, 2+len(r.DeviceID)+19)), nil
}

func (r *Report) decodeBinary(d *bdec) {
	r.DeviceID = d.str()
	r.JobID = int(d.varint())
	r.OK = d.bool()
	r.DurationSeconds = d.f64()
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *Report) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*r = Report{}
	r.decodeBinary(&d)
	return d.finish()
}

// --- ReportResult ---

func (r *ReportResult) appendBinary(b []byte) []byte {
	if r.Error == "" {
		return append(b, 0)
	}
	b = append(b, binFlagAssigned) // bit0 doubles as "error present" here
	return appendBinString(b, r.Error)
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *ReportResult) MarshalBinary() ([]byte, error) {
	return r.appendBinary(make([]byte, 0, 2+len(r.Error))), nil
}

func (r *ReportResult) decodeBinary(d *bdec) {
	fl := d.u8()
	switch fl {
	case 0:
	case 1:
		r.Error = d.str()
	default:
		d.fail("unknown flag bits")
	}
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *ReportResult) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*r = ReportResult{}
	r.decodeBinary(&d)
	return d.finish()
}

// --- batch types ---

// AppendBinary appends the v2 wire form to b and returns the extended
// slice. The Append variants exist so hot paths (transport response
// encoding, client request encoding) can reuse pooled scratch buffers
// instead of allocating per call; MarshalBinary wraps them.
func (r *CheckInBatchRequest) AppendBinary(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(r.CheckIns)))
	for i := range r.CheckIns {
		b = r.CheckIns[i].appendBinary(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *CheckInBatchRequest) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 8+24*len(r.CheckIns)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *CheckInBatchRequest) UnmarshalBinary(data []byte) error {
	d := bdec{b: data, shared: string(data)}
	*r = CheckInBatchRequest{}
	if n := d.count(); n > 0 {
		r.CheckIns = make([]CheckIn, n)
		for i := range r.CheckIns {
			r.CheckIns[i].decodeBinary(&d)
		}
	}
	return d.finish()
}

// UnmarshalBinaryBounds is UnmarshalBinary plus the item byte boundaries:
// item i of the decoded batch occupies data[bounds[i]:bounds[i+1]] (bounds
// has count+1 entries; nil for an empty batch). The federation relay uses
// the boundaries to splice still-encoded items into forward frames without
// re-encoding them.
func (r *CheckInBatchRequest) UnmarshalBinaryBounds(data []byte) ([]uint32, error) {
	d := bdec{b: data, shared: string(data)}
	*r = CheckInBatchRequest{}
	var bounds []uint32
	if n := d.count(); n > 0 {
		r.CheckIns = make([]CheckIn, n)
		bounds = make([]uint32, n+1)
		for i := range r.CheckIns {
			bounds[i] = uint32(d.i)
			r.CheckIns[i].decodeBinary(&d)
		}
		bounds[n] = uint32(d.i)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return bounds, nil
}

// AppendBinary appends the v2 wire form to b (see CheckInBatchRequest).
func (r *CheckInBatchResponse) AppendBinary(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(r.Results)))
	for i := range r.Results {
		b = r.Results[i].appendBinary(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *CheckInBatchResponse) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 8+2*len(r.Results)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *CheckInBatchResponse) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*r = CheckInBatchResponse{}
	if n := d.count(); n > 0 {
		r.Results = make([]CheckInResult, n)
		for i := range r.Results {
			r.Results[i].decodeBinary(&d)
		}
	}
	return d.finish()
}

// AppendBinary appends the v2 wire form to b (see CheckInBatchRequest).
func (r *ReportBatchRequest) AppendBinary(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(r.Reports)))
	for i := range r.Reports {
		b = r.Reports[i].appendBinary(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *ReportBatchRequest) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 8+27*len(r.Reports)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *ReportBatchRequest) UnmarshalBinary(data []byte) error {
	d := bdec{b: data, shared: string(data)}
	*r = ReportBatchRequest{}
	if n := d.count(); n > 0 {
		r.Reports = make([]Report, n)
		for i := range r.Reports {
			r.Reports[i].decodeBinary(&d)
		}
	}
	return d.finish()
}

// UnmarshalBinaryBounds is UnmarshalBinary plus item byte boundaries (see
// CheckInBatchRequest.UnmarshalBinaryBounds).
func (r *ReportBatchRequest) UnmarshalBinaryBounds(data []byte) ([]uint32, error) {
	d := bdec{b: data, shared: string(data)}
	*r = ReportBatchRequest{}
	var bounds []uint32
	if n := d.count(); n > 0 {
		r.Reports = make([]Report, n)
		bounds = make([]uint32, n+1)
		for i := range r.Reports {
			bounds[i] = uint32(d.i)
			r.Reports[i].decodeBinary(&d)
		}
		bounds[n] = uint32(d.i)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return bounds, nil
}

// AppendBinary appends the v2 wire form to b (see CheckInBatchRequest).
func (r *ReportBatchResponse) AppendBinary(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(r.Results)))
	for i := range r.Results {
		b = r.Results[i].appendBinary(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (wire protocol v2).
func (r *ReportBatchResponse) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 8+2*len(r.Results)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler (wire protocol v2).
func (r *ReportBatchResponse) UnmarshalBinary(data []byte) error {
	d := bdec{b: data}
	*r = ReportBatchResponse{}
	if n := d.count(); n > 0 {
		r.Results = make([]ReportResult, n)
		for i := range r.Results {
			r.Results[i].decodeBinary(&d)
		}
	}
	return d.finish()
}
