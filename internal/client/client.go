// Package client is the Go SDK for the venndaemon HTTP API: CL job owners
// use it to register jobs and poll status; device agents use it to check in
// and report task results.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"venn/internal/server"
)

// Client talks to one venndaemon instance.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the daemon at baseURL (e.g. "http://host:8080").
func New(baseURL string) *Client {
	return &Client{
		base: baseURL,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

// RegisterJob submits a new CL job and returns its status (including ID).
func (c *Client) RegisterJob(spec server.JobSpec) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.post("/v1/jobs", spec, &st)
	return st, err
}

// JobStatus fetches one job's status.
func (c *Client) JobStatus(id int) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.get(fmt.Sprintf("/v1/jobs/%d", id), &st)
	return st, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.get("/v1/jobs", &out)
	return out, err
}

// CheckIn announces device availability and returns the assignment.
func (c *Client) CheckIn(ci server.CheckIn) (server.Assignment, error) {
	var asg server.Assignment
	err := c.post("/v1/checkin", ci, &asg)
	return asg, err
}

// Report submits a task result.
func (c *Client) Report(r server.Report) error {
	return c.post("/v1/report", r, &struct{}{})
}

// Stats fetches the daemon's monitoring snapshot.
func (c *Client) Stats() (server.Stats, error) {
	var st server.Stats
	err := c.get("/v1/stats", &st)
	return st, err
}

// WaitForJob polls until the job completes or the timeout elapses.
func (c *Client) WaitForJob(id int, poll, timeout time.Duration) (server.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.JobStatus(id)
		if err != nil {
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("client: job %d not done after %v", id, timeout)
		}
		time.Sleep(poll)
	}
}

func (c *Client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s (status %d)", apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
