package core

import (
	"math"

	"venn/internal/job"
	"venn/internal/simtime"
)

// Fairness knob (§4.4). Venn's smallest-demand-first ordering can starve
// large jobs. The knob guarantees each job a scheduling latency no worse
// than fair sharing: with M simultaneous jobs and sd_i the job's JCT without
// contention, the fair-share JCT is T_i = M * sd_i. Reading t_i as the
// service the job has received, demands are adjusted d'_i = d_i*(t_i/T_i)^eps
// within a group and queue lengths q'_j = q_j*(sum T_i / sum t_i)^eps across
// groups, so under-served jobs and groups are promoted. eps = 0 recovers the
// raw heuristic; eps -> infinity makes the fairness multiplier dominate.

// ratio bounds keep the fairness multiplier finite when a job has received
// no service yet (t=0) or far more than its fair share.
const (
	minFairRatio = 1e-3
	maxFairRatio = 1e3
)

// fairShareJCT returns T_i for a job: M times the job's estimated
// no-contention JCT, where M is the number of concurrent jobs when the
// estimate was made.
func (v *Venn) fairShareJCT(j *job.Job) simtime.Duration {
	sd := v.soloJCT(j)
	m := v.fairM[j.ID]
	if m < 1 {
		m = 1
	}
	return simtime.Duration(float64(sd) * float64(m))
}

// soloJCT estimates (and caches) sd_i: the job's JCT if it had the entire
// eligible supply to itself — per round, the time to acquire its demand at
// the eligible rate plus the tail response time.
func (v *Venn) soloJCT(j *job.Job) simtime.Duration {
	if d, ok := v.sdCache[j.ID]; ok {
		return d
	}
	rate := v.env.EligibleRatePerHour(j.Requirement, v.lastNow) // devices/hour
	if rate <= 0 {
		rate = 1
	}
	acquireH := float64(j.Demand) / rate
	respS := v.profiles.global.p95All()
	if respS <= 0 {
		respS = 180
	}
	perRound := simtime.FromSeconds(acquireH*3600 + respS)
	sd := simtime.Duration(j.Rounds) * perRound
	v.sdCache[j.ID] = sd
	return sd
}

// adjustedDemand returns d'_i for intra-group ordering. Following §4.2.1,
// the remaining demand "can also encompass the total remaining demand for
// all upcoming rounds, provided such data is available" — the simulator
// knows each job's remaining rounds, so Venn orders by total remaining
// service, which is strictly more informative than the single-request need.
func (v *Venn) adjustedDemand(j *job.Job) float64 {
	d := float64(j.RemainingService())
	if d <= 0 {
		d = float64(j.Demand)
	}
	eps := v.opts.Epsilon
	if eps <= 0 {
		return d
	}
	t := float64(j.ServiceTime())
	T := float64(v.fairShareJCT(j))
	if T <= 0 {
		return d
	}
	ratio := clampRatio(t / T)
	return d * math.Pow(ratio, eps)
}

// adjustedQueue returns q'_j for a group's inter-group pressure.
func (v *Venn) adjustedQueue(jobs []*job.Job) float64 {
	q := float64(len(jobs))
	eps := v.opts.Epsilon
	if eps <= 0 || len(jobs) == 0 {
		return q
	}
	var sumT, sumt float64
	for _, j := range jobs {
		sumT += float64(v.fairShareJCT(j))
		sumt += float64(j.ServiceTime())
	}
	if sumt <= 0 {
		sumt = 1
	}
	if sumT <= 0 {
		return q
	}
	ratio := clampRatio(sumT / sumt)
	return q * math.Pow(ratio, eps)
}

func clampRatio(r float64) float64 {
	if math.IsNaN(r) {
		return 1
	}
	if r < minFairRatio {
		return minFairRatio
	}
	if r > maxFairRatio {
		return maxFairRatio
	}
	return r
}
