// Package server hosts Venn as a live, wall-clock resource manager — the
// standalone service of Figure 6. CL jobs register resource requests over
// HTTP, edge devices check in as they become available, Venn assigns each
// checked-in device to a job (step 2 of the paper's workflow), and devices
// report results or drop out. The scheduling core is exactly the simulator's
// (internal/core); this package adapts it to real time.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/tsdb"
)

// Errors returned by the manager.
var (
	ErrUnknownJob      = errors.New("server: unknown job")
	ErrUnknownCategory = errors.New("server: requirement must be one of the configured categories")
	ErrDeviceBusy      = errors.New("server: device already has a task today")
)

// JobSpec is a job registration request.
type JobSpec struct {
	Name           string  `json:"name"`
	Category       string  `json:"category"` // one of the configured requirement names
	DemandPerRound int     `json:"demand_per_round"`
	Rounds         int     `json:"rounds"`
	TaskScale      float64 `json:"task_scale,omitempty"`
}

// JobStatus is the externally visible job state.
type JobStatus struct {
	ID              int     `json:"id"`
	Name            string  `json:"name"`
	Category        string  `json:"category"`
	State           string  `json:"state"`
	Round           int     `json:"round"`
	Rounds          int     `json:"rounds"`
	DemandPerRound  int     `json:"demand_per_round"`
	Assigned        int     `json:"assigned"`
	Responses       int     `json:"responses"`
	CompletedRounds int     `json:"completed_rounds"`
	JCTSeconds      float64 `json:"jct_seconds,omitempty"`
}

// CheckIn is a device's availability announcement.
type CheckIn struct {
	DeviceID string  `json:"device_id"`
	CPU      float64 `json:"cpu"` // normalized [0,1]
	Mem      float64 `json:"mem"` // normalized [0,1]
}

// Assignment is the manager's reply to a check-in.
type Assignment struct {
	Assigned bool   `json:"assigned"`
	JobID    int    `json:"job_id,omitempty"`
	JobName  string `json:"job_name,omitempty"`
	Round    int    `json:"round,omitempty"`
}

// Report is a device's end-of-task message.
type Report struct {
	DeviceID        string  `json:"device_id"`
	JobID           int     `json:"job_id"`
	OK              bool    `json:"ok"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// Stats summarizes the manager for monitoring.
type Stats struct {
	ActiveJobs     int     `json:"active_jobs"`
	CompletedJobs  int     `json:"completed_jobs"`
	CheckIns       int     `json:"check_ins"`
	Assignments    int     `json:"assignments"`
	Reports        int     `json:"reports"`
	Failures       int     `json:"failures"`
	Aborts         int     `json:"aborts"`
	AvgJCTSeconds  float64 `json:"avg_jct_seconds"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	SupplyPerHour  float64 `json:"supply_per_hour"`
	PlanRebuilds   int     `json:"plan_rebuilds"`
	QueuedRequests int     `json:"queued_requests"`
}

// Config parameterizes the manager.
type Config struct {
	// Categories are the requirement strata jobs may ask for. Defaults
	// to the four standard strata.
	Categories []device.Requirement
	// Scheduler options for the Venn core.
	Options core.Options
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// TSDBWindow is the supply-averaging window (default 24h).
	TSDBWindow simtime.Duration
}

// Manager is the live resource manager. All methods are safe for concurrent
// use.
type Manager struct {
	mu sync.Mutex

	cfg        Config
	start      time.Time
	categories map[string]device.Requirement
	venn       *core.Venn
	env        *sim.Env

	jobs      map[job.ID]*managedJob
	nextJob   job.ID
	completed []*managedJob

	devices map[string]*managedDevice
	nextDev device.ID

	// deadlines holds the at-time per collecting job; checked by Tick.
	deadlines map[job.ID]simtime.Time
	attempt   map[job.ID]uint64

	stats Stats
}

type managedJob struct {
	spec JobSpec
	j    *job.Job
	// inFlight tracks devices working on the current attempt.
	inFlight map[string]uint64 // deviceID -> attempt
}

type managedDevice struct {
	dev  *device.Device
	busy bool
}

// NewManager constructs a live manager.
func NewManager(cfg Config) *Manager {
	if len(cfg.Categories) == 0 {
		cfg.Categories = device.Categories()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.TSDBWindow <= 0 {
		cfg.TSDBWindow = 24 * simtime.Hour
	}
	if cfg.Options.Tiers == 0 {
		cfg.Options = core.DefaultOptions()
	}
	m := &Manager{
		cfg:        cfg,
		start:      cfg.Clock(),
		categories: make(map[string]device.Requirement, len(cfg.Categories)),
		venn:       core.New(cfg.Options),
		jobs:       make(map[job.ID]*managedJob),
		devices:    make(map[string]*managedDevice),
		deadlines:  make(map[job.ID]simtime.Time),
		attempt:    make(map[job.ID]uint64),
	}
	for _, c := range cfg.Categories {
		m.categories[c.Name] = c
	}
	grid := device.NewGrid(cfg.Categories)
	m.env = &sim.Env{
		Grid:          grid,
		DB:            tsdb.New(grid.NumCells(), cfg.TSDBWindow, simtime.Hour),
		CellPriorRate: make([]float64, grid.NumCells()),
		Jobs:          make(map[job.ID]*job.Job),
		RNG:           stats.NewRNG(cfg.Clock().UnixNano()),
	}
	m.venn.Bind(m.env)
	return m
}

// now maps wall-clock to manager-relative simulated time.
func (m *Manager) now() simtime.Time {
	return simtime.Time(m.cfg.Clock().Sub(m.start) / time.Millisecond)
}

// RegisterJob admits a new CL job and opens its first-round request.
func (m *Manager) RegisterJob(spec JobSpec) (JobStatus, error) {
	req, ok := m.categories[spec.Category]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownCategory, spec.Category)
	}
	if spec.DemandPerRound < 1 || spec.Rounds < 1 {
		return JobStatus{}, errors.New("server: demand and rounds must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	id := m.nextJob
	m.nextJob++
	j := job.New(id, req, spec.DemandPerRound, spec.Rounds, now)
	if spec.TaskScale > 0 {
		j.TaskScale = spec.TaskScale
	}
	if spec.Name != "" {
		j.Name = spec.Name
	}
	mj := &managedJob{spec: spec, j: j, inFlight: map[string]uint64{}}
	m.jobs[id] = mj
	m.env.Jobs[id] = j
	m.attempt[id] = 1

	j.Start(now)
	m.venn.OnJobArrival(j, now)
	m.venn.OnRequest(j, now)
	m.stats.ActiveJobs++
	return m.statusLocked(mj), nil
}

// DeviceCheckIn registers availability and returns an assignment (or none).
func (m *Manager) DeviceCheckIn(ci CheckIn) (Assignment, error) {
	if ci.DeviceID == "" {
		return Assignment{}, errors.New("server: device_id required")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.expireDeadlinesLocked(now)

	md, ok := m.devices[ci.DeviceID]
	if !ok {
		md = &managedDevice{dev: device.New(m.nextDev, ci.CPU, ci.Mem)}
		m.nextDev++
		m.devices[ci.DeviceID] = md
	} else {
		// Refresh scores (hardware doesn't change, but normalization or
		// reporting might).
		md.dev.CPU, md.dev.Mem = ci.CPU, ci.Mem
	}
	if md.busy {
		return Assignment{}, ErrDeviceBusy
	}
	// One task per day per device (the paper's realism constraint).
	if int(md.dev.LastTaskDay) == now.DayIndex() {
		return Assignment{Assigned: false}, nil
	}

	m.stats.CheckIns++
	m.env.DB.RecordCheckIn(m.env.Grid.CellOfDevice(md.dev), now)

	j := m.venn.Assign(md.dev, now)
	if j == nil {
		return Assignment{Assigned: false}, nil
	}
	mj := m.jobs[j.ID]
	md.busy = true
	md.dev.LastTaskDay = int32(now.DayIndex())
	mj.inFlight[ci.DeviceID] = m.attempt[j.ID]
	m.stats.Assignments++

	if full := j.AddAssignment(now); full {
		m.venn.OnRequestFulfilled(j, now)
		m.deadlines[j.ID] = now.Add(j.Deadline())
		m.maybeCompleteLocked(mj, now)
	}
	return Assignment{Assigned: true, JobID: int(j.ID), JobName: j.Name, Round: j.Round()}, nil
}

// DeviceReport records a task result.
func (m *Manager) DeviceReport(r Report) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.expireDeadlinesLocked(now)

	md, ok := m.devices[r.DeviceID]
	if !ok {
		return errors.New("server: unknown device")
	}
	md.busy = false

	mj, ok := m.jobs[job.ID(r.JobID)]
	if !ok {
		// Job finished meanwhile; the report is stale but harmless.
		return nil
	}
	att, working := mj.inFlight[r.DeviceID]
	delete(mj.inFlight, r.DeviceID)
	if !working || att != m.attempt[mj.j.ID] || mj.j.Done() {
		return nil // stale attempt
	}
	if r.OK {
		m.stats.Reports++
		m.venn.ObserveResponse(mj.j, md.dev, simtime.FromSeconds(r.DurationSeconds), now)
		mj.j.AddResponse(now)
		m.maybeCompleteLocked(mj, now)
		return nil
	}
	m.stats.Failures++
	mj.j.AddFailure()
	if mj.j.State() == job.StateCollecting &&
		mj.j.Demand-mj.j.AttemptFailures() < mj.j.TargetResponses() {
		m.abortLocked(mj, now)
	}
	return nil
}

// maybeCompleteLocked finishes the round (and possibly the job) when enough
// responses are in.
func (m *Manager) maybeCompleteLocked(mj *managedJob, now simtime.Time) {
	if !mj.j.CanComplete() {
		return
	}
	delete(m.deadlines, mj.j.ID)
	m.attempt[mj.j.ID]++
	mj.inFlight = map[string]uint64{}
	if done := mj.j.CompleteRound(now); done {
		m.venn.OnJobDone(mj.j, now)
		m.completed = append(m.completed, mj)
		delete(m.jobs, mj.j.ID)
		delete(m.attempt, mj.j.ID)
		m.stats.ActiveJobs--
		m.stats.CompletedJobs++
		return
	}
	m.venn.OnRequest(mj.j, now)
}

// abortLocked resubmits the current attempt.
func (m *Manager) abortLocked(mj *managedJob, now simtime.Time) {
	m.stats.Aborts++
	mj.j.AbortAttempt(now)
	m.attempt[mj.j.ID]++
	mj.inFlight = map[string]uint64{}
	delete(m.deadlines, mj.j.ID)
	m.venn.OnRequest(mj.j, now)
}

// expireDeadlinesLocked aborts attempts whose response deadline passed.
func (m *Manager) expireDeadlinesLocked(now simtime.Time) {
	for id, at := range m.deadlines {
		if now < at {
			continue
		}
		mj, ok := m.jobs[id]
		if !ok {
			delete(m.deadlines, id)
			continue
		}
		if mj.j.CanComplete() {
			m.maybeCompleteLocked(mj, now)
			continue
		}
		if mj.j.State() == job.StateCollecting {
			m.abortLocked(mj, now)
		} else {
			delete(m.deadlines, id)
		}
	}
}

// Tick runs deadline expiry; call it periodically (the HTTP server does).
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireDeadlinesLocked(m.now())
}

// JobStatusByID returns the status of an active or completed job.
func (m *Manager) JobStatusByID(id int) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mj, ok := m.jobs[job.ID(id)]; ok {
		return m.statusLocked(mj), nil
	}
	for _, mj := range m.completed {
		if int(mj.j.ID) == id {
			return m.statusLocked(mj), nil
		}
	}
	return JobStatus{}, ErrUnknownJob
}

// Jobs returns the statuses of all jobs (active first, then completed).
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs)+len(m.completed))
	for _, mj := range m.jobs {
		out = append(out, m.statusLocked(mj))
	}
	for _, mj := range m.completed {
		out = append(out, m.statusLocked(mj))
	}
	return out
}

func (m *Manager) statusLocked(mj *managedJob) JobStatus {
	j := mj.j
	st := JobStatus{
		ID:              int(j.ID),
		Name:            j.Name,
		Category:        j.Requirement.Name,
		State:           j.State().String(),
		Round:           j.Round(),
		Rounds:          j.Rounds,
		DemandPerRound:  j.Demand,
		Assigned:        j.AttemptAssigned(),
		Responses:       j.AttemptResponses(),
		CompletedRounds: j.CompletedRounds(),
	}
	if j.Done() {
		st.JCTSeconds = j.JCT().Seconds()
	}
	return st
}

// StatsSnapshot returns a monitoring snapshot.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.UptimeSeconds = float64(m.now()) / 1000
	s.SupplyPerHour = m.env.DB.TotalRatePerHour(m.now())
	s.PlanRebuilds = m.venn.PlanRebuilds
	for _, mj := range m.jobs {
		if mj.j.State() == job.StateScheduling {
			s.QueuedRequests++
		}
	}
	var jct float64
	for _, mj := range m.completed {
		jct += mj.j.JCT().Seconds()
	}
	if len(m.completed) > 0 {
		s.AvgJCTSeconds = jct / float64(len(m.completed))
	}
	return s
}
