package cluster

import (
	"fmt"
	"testing"
)

// ringKeys synthesizes a deterministic device-ID workload; no RNG, so the
// balance and movement assertions below are fully pinned.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("load-%06d", i)
	}
	return keys
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 128)
	b := NewRing([]string{"n3", "n1", "n2", "n1"}, 128) // shuffled + duplicate
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d, %d; want 3", a.Size(), b.Size())
	}
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across member orderings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	// Rebuilding from scratch yields the identical mapping.
	c := NewRing([]string{"n1", "n2", "n3"}, 128)
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != c.Owner(k) {
			t.Fatalf("owner of %q not deterministic across builds", k)
		}
	}
}

// TestRingBalance pins the ISSUE's balance budget: at 128 vnodes the most
// loaded member of a small cluster stays within 15% of the mean.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(100000)
	for _, members := range [][]string{
		{"127.0.0.1:9001", "127.0.0.1:9002"},
		{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"},
		{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004"},
	} {
		r := NewRing(members, 128)
		counts := make(map[string]int, len(members))
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		mean := float64(len(keys)) / float64(len(members))
		for m, n := range counts {
			dev := (float64(n) - mean) / mean
			if dev > 0.15 || dev < -0.15 {
				t.Errorf("%d members: %s owns %d keys (%.1f%% off the mean %.0f)",
					len(members), m, n, 100*dev, mean)
			}
		}
		if len(counts) != len(members) {
			t.Errorf("%d members but only %d own keys", len(members), len(counts))
		}
	}
}

// TestRingMinimalMovement asserts the consistent-hashing contract: adding a
// member only moves keys onto the new member (roughly its fair share), and
// removing one only moves the removed member's keys.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(50000)
	three := NewRing([]string{"a", "b", "c"}, 128)
	four := NewRing([]string{"a", "b", "c", "d"}, 128)

	moved := 0
	for _, k := range keys {
		before, after := three.Owner(k), four.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != "d" {
			t.Fatalf("adding d moved %q from %q to %q (only moves onto the new member are allowed)", k, before, after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("adding a 4th member moved %.1f%% of keys; want roughly a fair share (~25%%)", 100*frac)
	}

	// Removal: keys not owned by the removed member stay put.
	for _, k := range keys {
		if four.Owner(k) == "d" {
			continue
		}
		if three.Owner(k) != four.Owner(k) {
			t.Fatalf("removing d moved %q, which d never owned", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 128).Owner("x"); owner != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", owner)
	}
	one := NewRing([]string{"solo"}, 16)
	for _, k := range ringKeys(100) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, 128)
	keys := ringKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&1023])
	}
}
