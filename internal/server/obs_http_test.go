package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"venn/internal/obs"
)

// TestHealthz asserts the health endpoint answers 200 with the status body
// while the daemon is serving normally.
func TestHealthz(t *testing.T) {
	m := NewManager(Config{})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK {
		t.Fatalf("healthy daemon reports unhealthy: %+v", h)
	}
}

// TestFlightEndpoint drives sampled requests through the HTTP path and
// asserts the flight recorder retains them, dump shape included.
func TestFlightEndpoint(t *testing.T) {
	m := NewManager(Config{ObsSampleEvery: 1})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		resp := postJSON(t, srv, "/v1/checkin", CheckIn{DeviceID: "fd-1", CPU: 0.5, Mem: 0.5})
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/v1/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		SampleEvery int               `json:"sample_every"`
		Recorded    int64             `json:"recorded_total"`
		Records     []json.RawMessage `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.SampleEvery != 1 {
		t.Fatalf("sample_every = %d, want 1", dump.SampleEvery)
	}
	if dump.Recorded < 4 || len(dump.Records) < 4 {
		t.Fatalf("flight retained %d/%d records, want >= 4", len(dump.Records), dump.Recorded)
	}
	var rec struct {
		TraceID string           `json:"trace_id"`
		Op      string           `json:"op"`
		TotalNs int64            `json:"total_ns"`
		Stages  map[string]int64 `json:"stage_ns"`
	}
	if err := json.Unmarshal(dump.Records[0], &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.TraceID) != 16 || rec.TraceID == "0000000000000000" {
		t.Fatalf("trace_id = %q, want 16 hex digits nonzero", rec.TraceID)
	}
	if rec.TotalNs <= 0 {
		t.Fatalf("total_ns = %d", rec.TotalNs)
	}
}

// TestPrometheusEndpoint asserts GET /metrics serves a well-formed text
// exposition covering the core counters and the request histograms.
func TestPrometheusEndpoint(t *testing.T) {
	m := NewManager(Config{ObsSampleEvery: 1})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/checkin", CheckIn{DeviceID: "pm-1", CPU: 0.5, Mem: 0.5})
	resp.Body.Close()

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	families, samples, err := obs.ValidateExposition(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if families == 0 || samples == 0 {
		t.Fatalf("empty exposition: %d families, %d samples", families, samples)
	}
	for _, want := range []string{
		"venn_healthy 1",
		"venn_checkins_total 1",
		"venn_request_duration_seconds_count",
		"venn_request_stage_duration_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestUnifiedStageHistograms asserts satellite 6: both transports land in
// the same per-stage histograms, surfaced by /v1/metrics.
func TestUnifiedStageHistograms(t *testing.T) {
	m := NewManager(Config{ObsSampleEvery: 1})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/checkin", CheckIn{DeviceID: "uh-1", CPU: 0.5, Mem: 0.5})
	resp.Body.Close()

	mt := m.MetricsSnapshot()
	if mt.ObsSampleEvery != 1 {
		t.Fatalf("ObsSampleEvery = %d", mt.ObsSampleEvery)
	}
	lat, ok := mt.HandlerLatencyMs[RouteCheckIn]
	if !ok || lat.Count == 0 {
		t.Fatalf("handler latency missing for %s: %+v", RouteCheckIn, mt.HandlerLatencyMs)
	}
	stages, ok := mt.RequestStageNs[RouteCheckIn]
	if !ok {
		t.Fatalf("no stage breakdown for %s: %v", RouteCheckIn, mt.RequestStageNs)
	}
	if s, ok := stages[obs.StageDecode.String()]; !ok || s.Count == 0 {
		t.Fatalf("decode stage unobserved: %+v", stages)
	}
	if mt.FlightRecorded == 0 {
		t.Fatal("flight recorder saw nothing")
	}
}
