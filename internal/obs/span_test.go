package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Mark(StageApply, time.Millisecond)
	s.SetError()
	s.SetForwarded()
	s.Finish()
	if s.TraceID() != 0 {
		t.Fatal("nil span must carry trace ID 0")
	}
}

func TestSamplingRate(t *testing.T) {
	r := NewRegistry(4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if sp := r.Sample(OpCheckIn); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400 at 1-in-4, want exactly 100", sampled)
	}
	if got := r.Flight().Recorded(); got != 100 {
		t.Fatalf("flight recorded %d, want 100", got)
	}
}

func TestSamplingDisabled(t *testing.T) {
	r := NewRegistry(-1)
	if r.SampleEvery() != 0 {
		t.Fatalf("SampleEvery() = %d, want 0 when disabled", r.SampleEvery())
	}
	for i := 0; i < 100; i++ {
		if sp := r.Sample(OpCheckIn); sp != nil {
			t.Fatal("disabled registry sampled a span")
		}
	}
	if sp := r.StartTraced(OpCheckIn, 42); sp != nil {
		t.Fatal("disabled registry started a traced span")
	}
	// The always-on total path keeps working regardless.
	r.ObserveTotal(OpCheckIn, time.Millisecond)
	if got := r.TotalSnapshot(OpCheckIn).Count(); got != 1 {
		t.Fatalf("total count = %d, want 1", got)
	}
}

func TestDefaultSampleEvery(t *testing.T) {
	if got := NewRegistry(0).SampleEvery(); got != DefaultSampleEvery {
		t.Fatalf("SampleEvery() = %d, want default %d", got, DefaultSampleEvery)
	}
}

func TestSpanFinishRecordsStages(t *testing.T) {
	r := NewRegistry(1)
	sp := r.Sample(OpCheckInBatch)
	if sp == nil {
		t.Fatal("1-in-1 sampling returned nil")
	}
	if sp.TraceID() == 0 {
		t.Fatal("sampled span has zero trace ID")
	}
	sp.Mark(StageDecode, 3*time.Microsecond)
	sp.Mark(StageApply, 5*time.Microsecond)
	sp.Mark(StageApply, 5*time.Microsecond) // accumulates
	sp.SetForwarded()
	sp.Finish()
	sp.Finish() // idempotent
	if got := r.StageSnapshot(OpCheckInBatch, StageApply).Count(); got != 1 {
		t.Fatalf("apply stage count = %d, want 1", got)
	}
	if sum := r.StageSnapshot(OpCheckInBatch, StageApply).Sum; sum != int64(10*time.Microsecond) {
		t.Fatalf("apply stage sum = %d, want accumulated 10µs", sum)
	}
	recs := r.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Forwarded || rec.Op != "checkin_batch" || rec.StageNs[StageApply] != int64(10*time.Microsecond) {
		t.Fatalf("unexpected flight record %+v", rec)
	}
}

func TestStartTracedInheritsID(t *testing.T) {
	r := NewRegistry(64)
	sp := r.StartTraced(OpCheckIn, 0xdeadbeef)
	if sp == nil {
		t.Fatal("StartTraced returned nil with sampling on")
	}
	if sp.TraceID() != 0xdeadbeef {
		t.Fatalf("trace ID %x, want deadbeef", sp.TraceID())
	}
	sp.Finish()
	recs := r.Flight().Snapshot()
	if len(recs) != 1 || !recs[0].Hop || recs[0].TraceID != 0xdeadbeef {
		t.Fatalf("unexpected hop record %+v", recs)
	}
	if r.StartTraced(OpCheckIn, 0) != nil {
		t.Fatal("StartTraced with zero trace ID must return nil")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	r := NewRegistry(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 10_000; i++ {
		id := r.newTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("trace ID %x duplicated or zero at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestRecordJSON(t *testing.T) {
	rec := Record{TraceID: 0xabc, Op: "checkin", TotalNs: 123}
	rec.StageNs[StageHop] = 77
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceID string           `json:"trace_id"`
		Stages  map[string]int64 `json:"stage_ns"`
	}
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "0000000000000abc" || out.Stages["hop"] != 77 {
		t.Fatalf("unexpected JSON %s", buf)
	}
}

// TestFlightConcurrent records from many goroutines while snapshotting;
// under -race this pins the ring against torn reads.
func TestFlightConcurrent(t *testing.T) {
	r := NewRegistry(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			for _, rec := range r.Flight().Snapshot() {
				if rec.Op == "" {
					t.Error("snapshot saw a half-written record")
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	const writers, perWriter = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := r.Sample(OpReport)
				sp.Mark(StageApply, time.Duration(i+1))
				sp.Finish()
			}
		}()
	}
	for r.Flight().Recorded() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	recs := r.Flight().Snapshot()
	if len(recs) != FlightSize {
		t.Fatalf("flight retained %d records, want full ring of %d", len(recs), FlightSize)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TotalNs > recs[i-1].TotalNs {
			t.Fatal("flight snapshot not sorted slowest-first")
		}
	}
}
