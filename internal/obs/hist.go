// Package obs is the request-path observability layer: lock-free
// power-of-two latency histograms, per-request stage spans with trace IDs
// that propagate across federation hops, a flight recorder retaining the
// slowest sampled requests with their full stage breakdowns, and a
// Prometheus text-format exposition writer (plus the strict validator CI
// lints the endpoint with).
//
// The design splits the cost into an always-on path and a sampled path. The
// always-on path is one histogram observation per served request — two
// atomic adds, no locks, no allocation — which replaces the old mutex-ringed
// route latency tracker. Everything richer (per-stage timestamps, flight
// records, trace propagation) only happens on spans, and spans exist for 1
// in SampleEvery requests; a nil *Span is valid everywhere and every method
// on it no-ops, so unsampled requests pay a nil check per instrumentation
// point and nothing else.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets power-of-two buckets: bucket i counts observations in
// [2^(i-1), 2^i) nanoseconds (bucket 0 counts sub-nanosecond values), so the
// ladder spans 1ns to ~9 minutes with the last bucket absorbing anything
// slower. Every histogram shares this shape, which is what makes snapshots
// mergeable across ops, stages, and daemons.
const NumBuckets = 40

// Hist is a fixed-shape histogram of nanosecond durations. Observe is two
// atomic adds, so any number of goroutines record into one Hist with no
// locks and no allocation, and Snapshot runs concurrently with writers — it
// may tear across buckets (each counter is individually consistent), which
// for monotonic counters only ever under-reports the newest observations.
type Hist struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
}

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	if b := bits.Len64(uint64(ns)); b < NumBuckets {
		return b
	}
	return NumBuckets - 1
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the histogram's counters.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist, mergeable with any other
// snapshot of the same shape.
type HistSnapshot struct {
	Counts [NumBuckets]int64
	Sum    int64
}

// Merge adds o's counters into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
}

// Count is the total number of observations.
func (s HistSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// bucketBounds is bucket i's [lo, hi) range in nanoseconds; the last
// bucket's hi is pinned to 2*lo so estimates stay finite.
func bucketBounds(i int) (lo, hi float64) {
	if i > 0 {
		lo = float64(int64(1) << uint(i-1))
	}
	if i < NumBuckets-1 {
		hi = float64(int64(1) << uint(i))
	} else {
		hi = 2 * lo
	}
	return lo, hi
}

// UpperBound is bucket i's exclusive upper bound in nanoseconds; the last
// bucket is unbounded (+Inf), per the Prometheus histogram convention.
func UpperBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(1) << uint(i))
}

// Quantile estimates the q-quantile (q in [0, 1]) in nanoseconds, linearly
// interpolated inside the bucket the rank lands in. Power-of-two buckets
// bound the estimate within 2x of the true value — plenty for "where did
// the time go".
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(seen)+float64(c) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(seen)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	_, hi := bucketBounds(NumBuckets - 1)
	return hi
}

// MaxNs is the upper bound of the highest nonempty bucket — the
// resolution-limited maximum observation.
func (s HistSnapshot) MaxNs() float64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// MeanNs is the average observation, 0 when empty.
func (s HistSnapshot) MeanNs() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}
