package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAddSub(t *testing.T) {
	t0 := Time(1000)
	t1 := t0.Add(5 * Second)
	if t1 != Time(6000) {
		t.Fatalf("Add: got %d, want 6000", t1)
	}
	if d := t1.Sub(t0); d != 5*Second {
		t.Fatalf("Sub: got %v, want 5s", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("Before/After disagree")
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 40))
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDayIndex(t *testing.T) {
	cases := []struct {
		t    Time
		want int
	}{
		{0, 0},
		{Time(Day) - 1, 0},
		{Time(Day), 1},
		{Time(36 * Hour), 1},
		{Time(3*Day) + 5, 3},
		{-1, -1},
		{-Time(Day), -1},
		{-Time(Day) - 1, -2},
	}
	for _, c := range cases {
		if got := c.t.DayIndex(); got != c.want {
			t.Errorf("DayIndex(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTimeOfDay(t *testing.T) {
	if got := (Time(Day) + Time(3*Hour)).TimeOfDay(); got != 3*Hour {
		t.Errorf("TimeOfDay = %v, want 3h", got)
	}
	if got := Time(0).TimeOfDay(); got != 0 {
		t.Errorf("TimeOfDay(0) = %v, want 0", got)
	}
	// Negative times still land in [0, Day).
	if got := Time(-Time(Hour)).TimeOfDay(); got != 23*Hour {
		t.Errorf("TimeOfDay(-1h) = %v, want 23h", got)
	}
}

func TestTimeOfDayRangeProperty(t *testing.T) {
	f := func(raw int64) bool {
		d := Time(raw % (1 << 45)).TimeOfDay()
		return d >= 0 && d < Day
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationConversions(t *testing.T) {
	if s := (90 * Second).Seconds(); s != 90 {
		t.Errorf("Seconds = %v", s)
	}
	if m := (90 * Second).Minutes(); m != 1.5 {
		t.Errorf("Minutes = %v", m)
	}
	if h := (2 * Day).Hours(); h != 48 {
		t.Errorf("Hours = %v", h)
	}
	if std := (1500 * Millisecond).Std(); std != 1500*time.Millisecond {
		t.Errorf("Std = %v", std)
	}
	if d := FromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("FromSeconds = %v", d)
	}
	if d := FromStd(2 * time.Second); d != 2*Second {
		t.Errorf("FromStd = %v", d)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0:00:00"},
		{90 * Second, "0:01:30"},
		{Hour + 2*Minute + 3*Second, "1:02:03"},
		{25*Hour + 500*Millisecond, "25:00:00.500"},
		{-90 * Second, "-0:01:30"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if MinDur(2, 9) != 2 || MaxDur(2, 9) != 9 {
		t.Error("MinDur/MaxDur broken")
	}
	if Clamp(5, 1, 10) != 5 || Clamp(-2, 1, 10) != 1 || Clamp(20, 1, 10) != 10 {
		t.Error("Clamp broken")
	}
}
