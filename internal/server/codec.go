// Hand-rolled JSON codecs for the high-volume wire types. At hundreds of
// thousands of check-ins per second the reflection-based encoding/json
// round trip dominates the serving path's CPU profile (the scheduler core
// itself is a sub-microsecond slice), so the batch request/response types —
// and the single-item check-in types they embed — implement
// json.Marshaler/json.Unmarshaler with a small scanner specialized to their
// fixed shapes. The wire format is unchanged and order-insensitive:
// arbitrary whitespace, any field order, escaped strings, and null values
// all parse; unknown fields are rejected exactly like the former
// DisallowUnknownFields decoder. Round-trip equivalence with encoding/json
// is pinned by codec_test.go.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"unsafe"
)

var errMalformedJSON = errors.New("server: malformed JSON body")

func errUnknownField(key string) error {
	return fmt.Errorf("server: unknown field %q", key)
}

// --- encoding helpers ---

// appendJSONString appends s as a JSON string literal. Plain ASCII (the
// overwhelmingly common case for device IDs and job names) is copied
// directly; anything needing escapes goes through encoding/json.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x80 || c == '"' || c == '\\' {
			esc, _ := json.Marshal(s)
			return append(b, esc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

func appendJSONFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// --- scanning helpers ---

// jscan is a minimal JSON scanner for the fixed wire shapes.
type jscan struct {
	b []byte
	i int
}

func (s *jscan) skipWS() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

func (s *jscan) expect(c byte) error {
	s.skipWS()
	if s.i >= len(s.b) || s.b[s.i] != c {
		return errMalformedJSON
	}
	s.i++
	return nil
}

// literal consumes lit if present at the cursor.
func (s *jscan) literal(lit string) bool {
	if len(s.b)-s.i >= len(lit) && string(s.b[s.i:s.i+len(lit)]) == lit {
		s.i += len(lit)
		return true
	}
	return false
}

// key scans an object key, returning the raw bytes between the quotes
// without allocating; call sites compare it via switch string(key), which
// the compiler keeps allocation-free. Escaped keys take the full string
// parse (none of the wire fields need escapes, so this is the error path in
// practice).
func (s *jscan) key() ([]byte, error) {
	s.skipWS()
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return nil, errMalformedJSON
	}
	start := s.i + 1
	s.i++
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			tok := s.b[start:s.i]
			s.i++
			return tok, nil
		case c == '\\':
			s.i = start - 1
			str, err := s.str()
			return []byte(str), err
		case c < 0x20:
			return nil, errMalformedJSON
		default:
			s.i++
		}
	}
	return nil, errMalformedJSON
}

// bytesToString views b as a string without copying. Only for short-lived
// conversions whose result does not outlive b (the strconv parse calls);
// callers must not retain the string.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// null consumes a null value, reporting whether one was present.
func (s *jscan) null() bool {
	s.skipWS()
	return s.i < len(s.b) && s.b[s.i] == 'n' && s.literal("null")
}

// str parses a JSON string (or null, yielding ""). Unescaped strings are
// sliced out directly; escapes fall back to encoding/json.
func (s *jscan) str() (string, error) {
	if s.null() {
		return "", nil
	}
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return "", errMalformedJSON
	}
	start := s.i
	s.i++
	escaped := false
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '\\':
			escaped = true
			s.i += 2
		case c == '"':
			s.i++
			if !escaped {
				return string(s.b[start+1 : s.i-1]), nil
			}
			var out string
			if err := json.Unmarshal(s.b[start:s.i], &out); err != nil {
				return "", errMalformedJSON
			}
			return out, nil
		case c < 0x20:
			return "", errMalformedJSON
		default:
			s.i++
		}
	}
	return "", errMalformedJSON
}

// numToken scans the extent of a JSON number.
func (s *jscan) numToken() ([]byte, error) {
	s.skipWS()
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			s.i++
			continue
		}
		break
	}
	if s.i == start {
		return nil, errMalformedJSON
	}
	return s.b[start:s.i], nil
}

func (s *jscan) float() (float64, error) {
	if s.null() {
		return 0, nil
	}
	tok, err := s.numToken()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(bytesToString(tok), 64)
	if err != nil {
		return 0, errMalformedJSON
	}
	return f, nil
}

func (s *jscan) int() (int, error) {
	if s.null() {
		return 0, nil
	}
	tok, err := s.numToken()
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(bytesToString(tok))
	if err != nil {
		return 0, errMalformedJSON
	}
	return n, nil
}

func (s *jscan) bool() (bool, error) {
	s.skipWS()
	switch {
	case s.literal("true"):
		return true, nil
	case s.literal("false"):
		return false, nil
	case s.literal("null"):
		return false, nil
	}
	return false, errMalformedJSON
}

// object parses a JSON object (or null), dispatching each key to field,
// which must consume the key's value from the scanner. The key bytes are
// only valid until the next scanner call.
func (s *jscan) object(field func(key []byte) error) error {
	if s.null() {
		return nil
	}
	if err := s.expect('{'); err != nil {
		return err
	}
	s.skipWS()
	if s.i < len(s.b) && s.b[s.i] == '}' {
		s.i++
		return nil
	}
	for {
		key, err := s.key()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		s.skipWS()
		if s.i >= len(s.b) {
			return errMalformedJSON
		}
		switch s.b[s.i] {
		case ',':
			s.i++
			s.skipWS()
		case '}':
			s.i++
			return nil
		default:
			return errMalformedJSON
		}
	}
}

// array parses a JSON array (or null), calling elem to consume each element.
func (s *jscan) array(elem func() error) error {
	if s.null() {
		return nil
	}
	if err := s.expect('['); err != nil {
		return err
	}
	s.skipWS()
	if s.i < len(s.b) && s.b[s.i] == ']' {
		s.i++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		s.skipWS()
		if s.i >= len(s.b) {
			return errMalformedJSON
		}
		switch s.b[s.i] {
		case ',':
			s.i++
		case ']':
			s.i++
			return nil
		default:
			return errMalformedJSON
		}
	}
}

// --- CheckIn ---

func (ci CheckIn) appendJSON(b []byte) []byte {
	b = append(b, `{"device_id":`...)
	b = appendJSONString(b, ci.DeviceID)
	b = append(b, `,"cpu":`...)
	b = appendJSONFloat(b, ci.CPU)
	b = append(b, `,"mem":`...)
	b = appendJSONFloat(b, ci.Mem)
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler.
func (ci CheckIn) MarshalJSON() ([]byte, error) { return ci.appendJSON(nil), nil }

func (ci *CheckIn) scanFrom(s *jscan) error {
	return s.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "device_id":
			ci.DeviceID, err = s.str()
		case "cpu":
			ci.CPU, err = s.float()
		case "mem":
			ci.Mem, err = s.float()
		default:
			err = errUnknownField(string(key))
		}
		return err
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (ci *CheckIn) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return ci.scanFrom(&s)
}

// --- CheckInBatchRequest ---

// MarshalJSON implements json.Marshaler.
func (r CheckInBatchRequest) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16+56*len(r.CheckIns))
	b = append(b, `{"checkins":[`...)
	for i, ci := range r.CheckIns {
		if i > 0 {
			b = append(b, ',')
		}
		b = ci.appendJSON(b)
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *CheckInBatchRequest) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return s.object(func(key []byte) error {
		if string(key) != "checkins" {
			return errUnknownField(string(key))
		}
		return s.array(func() error {
			var ci CheckIn
			if err := ci.scanFrom(&s); err != nil {
				return err
			}
			r.CheckIns = append(r.CheckIns, ci)
			return nil
		})
	})
}

// --- Assignment / CheckInResult ---

func (a Assignment) appendJSON(b []byte) []byte {
	b = append(b, '{')
	if a.Assigned {
		b = append(b, `"assigned":true,"job_id":`...)
		b = strconv.AppendInt(b, int64(a.JobID), 10)
		if a.JobName != "" {
			b = append(b, `,"job_name":`...)
			b = appendJSONString(b, a.JobName)
		}
		if a.Round != 0 {
			b = append(b, `,"round":`...)
			b = strconv.AppendInt(b, int64(a.Round), 10)
		}
		if a.Policy != "" {
			b = append(b, `,"policy":`...)
			b = appendJSONString(b, a.Policy)
		}
	}
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler.
func (a Assignment) MarshalJSON() ([]byte, error) { return a.appendJSON(nil), nil }

func (a *Assignment) scanField(s *jscan, key []byte) (bool, error) {
	var err error
	switch string(key) {
	case "assigned":
		a.Assigned, err = s.bool()
	case "job_id":
		a.JobID, err = s.int()
	case "job_name":
		a.JobName, err = s.str()
	case "round":
		a.Round, err = s.int()
	case "policy":
		a.Policy, err = s.str()
	default:
		return false, nil
	}
	return true, err
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Assignment) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return s.object(func(key []byte) error {
		ok, err := a.scanField(&s, key)
		if err == nil && !ok {
			err = errUnknownField(string(key))
		}
		return err
	})
}

func (r CheckInResult) appendJSON(b []byte) []byte {
	if r.Error == "" {
		return r.Assignment.appendJSON(b)
	}
	b = append(b, `{"error":`...)
	b = appendJSONString(b, r.Error)
	return append(b, '}')
}

func (r *CheckInResult) scanFrom(s *jscan) error {
	return s.object(func(key []byte) error {
		if string(key) == "error" {
			var err error
			r.Error, err = s.str()
			return err
		}
		ok, err := r.Assignment.scanField(s, key)
		if err == nil && !ok {
			err = errUnknownField(string(key))
		}
		return err
	})
}

// MarshalJSON implements json.Marshaler. It must exist explicitly: the
// embedded Assignment's method would otherwise be promoted and silently drop
// the Error field on any encoding/json path.
func (r CheckInResult) MarshalJSON() ([]byte, error) { return r.appendJSON(nil), nil }

// UnmarshalJSON implements json.Unmarshaler (see MarshalJSON for why).
func (r *CheckInResult) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return r.scanFrom(&s)
}

// --- CheckInBatchResponse ---

// MarshalJSON implements json.Marshaler.
func (r CheckInBatchResponse) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16+8*len(r.Results))
	b = append(b, `{"results":[`...)
	for i, res := range r.Results {
		if i > 0 {
			b = append(b, ',')
		}
		b = res.appendJSON(b)
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *CheckInBatchResponse) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return s.object(func(key []byte) error {
		if string(key) != "results" {
			return errUnknownField(string(key))
		}
		return s.array(func() error {
			var res CheckInResult
			if err := res.scanFrom(&s); err != nil {
				return err
			}
			r.Results = append(r.Results, res)
			return nil
		})
	})
}

// --- Report ---

func (r Report) appendJSON(b []byte) []byte {
	b = append(b, `{"device_id":`...)
	b = appendJSONString(b, r.DeviceID)
	b = append(b, `,"job_id":`...)
	b = strconv.AppendInt(b, int64(r.JobID), 10)
	if r.OK {
		b = append(b, `,"ok":true`...)
	} else {
		b = append(b, `,"ok":false`...)
	}
	b = append(b, `,"duration_seconds":`...)
	b = appendJSONFloat(b, r.DurationSeconds)
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler.
func (r Report) MarshalJSON() ([]byte, error) { return r.appendJSON(nil), nil }

func (r *Report) scanFrom(s *jscan) error {
	return s.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "device_id":
			r.DeviceID, err = s.str()
		case "job_id":
			r.JobID, err = s.int()
		case "ok":
			r.OK, err = s.bool()
		case "duration_seconds":
			r.DurationSeconds, err = s.float()
		default:
			err = errUnknownField(string(key))
		}
		return err
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Report) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return r.scanFrom(&s)
}

// --- ReportBatchRequest / ReportBatchResponse ---

// MarshalJSON implements json.Marshaler.
func (r ReportBatchRequest) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16+72*len(r.Reports))
	b = append(b, `{"reports":[`...)
	for i, rep := range r.Reports {
		if i > 0 {
			b = append(b, ',')
		}
		b = rep.appendJSON(b)
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *ReportBatchRequest) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return s.object(func(key []byte) error {
		if string(key) != "reports" {
			return errUnknownField(string(key))
		}
		return s.array(func() error {
			var rep Report
			if err := rep.scanFrom(&s); err != nil {
				return err
			}
			r.Reports = append(r.Reports, rep)
			return nil
		})
	})
}

// MarshalJSON implements json.Marshaler.
func (r ReportBatchResponse) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16+4*len(r.Results))
	b = append(b, `{"results":[`...)
	for i, res := range r.Results {
		if i > 0 {
			b = append(b, ',')
		}
		if res.Error == "" {
			b = append(b, '{', '}')
			continue
		}
		b = append(b, `{"error":`...)
		b = appendJSONString(b, res.Error)
		b = append(b, '}')
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *ReportBatchResponse) UnmarshalJSON(b []byte) error {
	s := jscan{b: b}
	return s.object(func(key []byte) error {
		if string(key) != "results" {
			return errUnknownField(string(key))
		}
		return s.array(func() error {
			var res ReportResult
			err := s.object(func(k []byte) error {
				if string(k) != "error" {
					return errUnknownField(string(k))
				}
				var err error
				res.Error, err = s.str()
				return err
			})
			if err != nil {
				return err
			}
			r.Results = append(r.Results, res)
			return nil
		})
	})
}
