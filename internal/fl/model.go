package fl

import (
	"math"

	"venn/internal/stats"
)

// Model is multinomial (softmax) logistic regression: weights[class] is a
// feature-length vector plus a trailing bias term.
type Model struct {
	Classes  int
	Features int
	W        [][]float64 // Classes x (Features+1)
}

// NewModel returns a zero-initialized model.
func NewModel(classes, features int) *Model {
	w := make([][]float64, classes)
	for k := range w {
		w[k] = make([]float64, features+1)
	}
	return &Model{Classes: classes, Features: features, W: w}
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	n := NewModel(m.Classes, m.Features)
	for k := range m.W {
		copy(n.W[k], m.W[k])
	}
	return n
}

// logits computes class scores for x.
func (m *Model) logits(x []float64, out []float64) {
	for k := 0; k < m.Classes; k++ {
		w := m.W[k]
		s := w[m.Features] // bias
		for f := 0; f < m.Features; f++ {
			s += w[f] * x[f]
		}
		out[k] = s
	}
}

// softmax converts logits to probabilities in place.
func softmax(z []float64) {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	sum := 0.0
	for i := range z {
		z[i] = math.Exp(z[i] - maxZ)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
}

// Predict returns the argmax class for x.
func (m *Model) Predict(x []float64) int {
	z := make([]float64, m.Classes)
	m.logits(x, z)
	best, bestV := 0, z[0]
	for k, v := range z[1:] {
		if v > bestV {
			best, bestV = k+1, v
		}
	}
	return best
}

// Accuracy returns classification accuracy over the examples.
func (m *Model) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	z := make([]float64, m.Classes)
	for _, ex := range examples {
		m.logits(ex.X, z)
		best, bestV := 0, z[0]
		for k, v := range z[1:] {
			if v > bestV {
				best, bestV = k+1, v
			}
		}
		if best == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// Loss returns mean cross-entropy over the examples.
func (m *Model) Loss(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	total := 0.0
	z := make([]float64, m.Classes)
	for _, ex := range examples {
		m.logits(ex.X, z)
		softmax(z)
		p := z[ex.Y]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return total / float64(len(examples))
}

// TrainLocal runs epochs of shuffled SGD with the given learning rate and L2
// regularization, mutating the model in place.
func (m *Model) TrainLocal(examples []Example, epochs int, lr, l2 float64, rng *stats.RNG) {
	if len(examples) == 0 || epochs <= 0 {
		return
	}
	z := make([]float64, m.Classes)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := examples[idx]
			m.logits(ex.X, z)
			softmax(z)
			for k := 0; k < m.Classes; k++ {
				g := z[k]
				if k == ex.Y {
					g -= 1
				}
				w := m.W[k]
				for f := 0; f < m.Features; f++ {
					w[f] -= lr * (g*ex.X[f] + l2*w[f])
				}
				w[m.Features] -= lr * g
			}
		}
	}
}

// Sub returns m - other as a new model (the client update delta).
func (m *Model) Sub(other *Model) *Model {
	out := NewModel(m.Classes, m.Features)
	for k := range m.W {
		for i := range m.W[k] {
			out.W[k][i] = m.W[k][i] - other.W[k][i]
		}
	}
	return out
}

// AddScaled adds scale*delta to the model in place.
func (m *Model) AddScaled(delta *Model, scale float64) {
	for k := range m.W {
		for i := range m.W[k] {
			m.W[k][i] += scale * delta.W[k][i]
		}
	}
}

// FedAvg folds weighted client deltas into the global model: the standard
// federated-averaging update with weights proportional to sample counts.
func FedAvg(global *Model, deltas []*Model, weights []float64) {
	if len(deltas) == 0 {
		return
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		total = float64(len(deltas))
		for i := range weights {
			weights[i] = 1
		}
	}
	for i, d := range deltas {
		global.AddScaled(d, weights[i]/total)
	}
}
