package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"venn/internal/client"
	"venn/internal/obs"
	"venn/internal/server"
	"venn/internal/transport"
)

// Relay tuning. A relay coalesces the forwarded slices of many concurrently
// served batches into one hop frame per peer, so the forward path costs one
// frame per group-commit round instead of one per misrouted batch.
const (
	// relayFlushItems detaches a coalesced batch for an immediate parallel
	// flush once it holds this many items, instead of letting it grow behind
	// the in-flight flush. It must stay ≤ server.MaxBatch or the owner would
	// reject the hop frame; contribute additionally detaches whenever
	// appending a group would cross MaxBatch.
	relayFlushItems = 1024
	// relayFlushBytes detaches once the coalesced payload reaches this size —
	// big enough to amortize the frame, small enough to keep owner-side
	// decode latency flat.
	relayFlushBytes = 128 << 10
)

// relayOut is one coalesced flush's verdict, delivered to every contributing
// group. Exactly one of the three shapes applies: res holds the group's
// results (success), fallback asks the contributor to apply its items
// locally (the flush provably never left this node), or typed carries the
// error to report on each item (authoritative rejection or ambiguous
// outcome; see forwardFailed).
type relayOut[Res any] struct {
	res      []Res
	fallback bool
	typed    error
}

// relayGroup is one batch's contribution to a coalesced flush: n items,
// answered once on ch.
type relayGroup[Res any] struct {
	n  int
	ch chan relayOut[Res]
}

// relayBatch is a detached coalesced batch, ready to send: the concatenated
// still-encoded items, their count, the groups awaiting the verdict, and the
// trace context the hop frame carries. One frame carries one trace, so the
// first sampled contributor's trace ID wins the round — sampling is sparse
// enough (1-in-64 by default) that two sampled requests colliding in one
// commit round is rare, and losing a hop mark merely under-samples.
type relayBatch[Res any] struct {
	buf    []byte
	items  int
	groups []*relayGroup[Res]
	trace  uint64
}

// relay is the per-peer, per-operation coalescer, shaped as a group commit:
// at most one commit flush is on the wire at a time, a contribution arriving
// while the relay is idle flushes immediately (sparse traffic pays zero
// added latency), and contributions arriving while a flush is in flight
// accumulate and are flushed as one frame the moment it completes. The
// coalescing factor therefore self-tunes to load × peer RTT with no timers —
// deadline timers carry millisecond-scale wake slop on many kernels, far
// beyond any window worth configuring here. Size overflow (relayFlushItems /
// relayFlushBytes / MaxBatch) detaches for a parallel flush so one slow
// commit round can't stall a hot peer.
type relay[Res any] struct {
	c *Cluster
	p *peer
	// sendRaw forwards the coalesced items without re-encoding; it returns
	// client.ErrRawUnsupported when the peer connection negotiated v1, in
	// which case sendTyped re-sends by decoding the buffer and taking the
	// typed (version-negotiated) forward path.
	sendRaw   func(pc PeerClient, items []byte, n int, trace uint64) ([]Res, error)
	sendTyped func(pc PeerClient, items []byte, n int, trace uint64) ([]Res, error)

	mu       sync.Mutex
	buf      []byte
	items    int
	groups   []*relayGroup[Res]
	trace    uint64
	inFlight bool // a commit flush is on the wire; commitLoop drains what accumulates
}

func newRelay[Res any](c *Cluster, p *peer,
	sendRaw, sendTyped func(pc PeerClient, items []byte, n int, trace uint64) ([]Res, error)) *relay[Res] {
	return &relay[Res]{c: c, p: p, sendRaw: sendRaw, sendTyped: sendTyped}
}

// contribute splices the idxs item ranges of raw into the coalescing buffer
// and returns the group to wait on. The copy happens before contribute
// returns, which is what lets the transport recycle raw.Data when its
// handler finishes. The caller must hold an inflight permit (acquireForward)
// until the group's verdict arrives.
func (r *relay[Res]) contribute(raw server.RawItems, idxs []int, trace uint64) *relayGroup[Res] {
	g := &relayGroup[Res]{n: len(idxs), ch: make(chan relayOut[Res], 1)}
	var full *relayBatch[Res]
	r.mu.Lock()
	// Never let a coalesced batch cross MaxBatch: the owner's service layer
	// rejects larger hop frames outright.
	if r.items > 0 && r.items+len(idxs) > server.MaxBatch {
		full = r.detachLocked()
	}
	if r.buf == nil {
		r.buf = transport.GetBuf(4096)
	}
	for _, i := range idxs {
		r.buf = append(r.buf, raw.Data[raw.Bounds[i]:raw.Bounds[i+1]]...)
	}
	r.items += len(idxs)
	r.groups = append(r.groups, g)
	if r.trace == 0 {
		r.trace = trace
	}
	var sized *relayBatch[Res]
	var commit *relayBatch[Res]
	switch {
	case r.items >= relayFlushItems || len(r.buf) >= relayFlushBytes:
		// Overflow valve: don't let a batch grow unboundedly behind the
		// in-flight commit — detach and send it in parallel right away.
		sized = r.detachLocked()
	case !r.inFlight:
		// Idle relay: waiting can only add latency. Flush immediately and
		// let whatever arrives during the flush accumulate for the next
		// commit round.
		r.inFlight = true
		commit = r.detachLocked()
	}
	r.mu.Unlock()
	if full != nil {
		go r.flush(full)
	}
	if sized != nil {
		go r.flush(sized)
	}
	if commit != nil {
		go r.commitLoop(commit)
	}
	return g
}

// detachLocked takes ownership of the current batch and resets the
// coalescing state. Caller holds mu.
func (r *relay[Res]) detachLocked() *relayBatch[Res] {
	b := &relayBatch[Res]{buf: r.buf, items: r.items, groups: r.groups, trace: r.trace}
	r.buf, r.items, r.groups, r.trace = nil, 0, nil, 0
	return b
}

// commitLoop is the group-commit driver: flush the batch, then keep flushing
// whatever accumulated while the previous flush was on the wire, until a
// round ends with nothing pending. Exactly one commitLoop runs per relay
// (guarded by inFlight), so hop frames for coalesced traffic stay ordered
// per peer while overflow flushes may overtake in parallel.
func (r *relay[Res]) commitLoop(b *relayBatch[Res]) {
	for b != nil {
		r.flush(b)
		r.mu.Lock()
		if r.items > 0 {
			b = r.detachLocked()
		} else {
			r.inFlight = false
			b = nil
		}
		r.mu.Unlock()
	}
}

// flush sends one detached batch to the peer and distributes the verdict to
// every contributing group, in contribution order. One flush is one hop
// frame (forwards_out counts frames, exactly as the legacy per-batch path
// did) and its payload size feeds forward_bytes_out.
func (r *relay[Res]) flush(b *relayBatch[Res]) {
	c := r.c
	c.forwardsOut.Add(1)
	c.forwardBytesOut.Add(int64(len(b.buf) + uvarintLen(uint64(b.items))))
	res, err := r.sendRaw(r.p.c, b.buf, b.items, b.trace)
	if err != nil && errors.Is(err, client.ErrRawUnsupported) {
		// v1 peer: decode our own buffer and take the negotiated typed path.
		res, err = r.sendTyped(r.p.c, b.buf, b.items, b.trace)
	}
	if err == nil && len(res) != b.items {
		err = fmt.Errorf("cluster: owner answered %d results for %d forwarded items", len(res), b.items)
	}
	var out relayOut[Res]
	if err != nil {
		fallback, typed := c.forwardFailed(err)
		out = relayOut[Res]{fallback: fallback, typed: typed}
	}
	off := 0
	for _, g := range b.groups {
		o := out
		if err == nil {
			o.res = res[off : off+g.n]
		}
		off += g.n
		g.ch <- o
	}
	transport.PutBuf(b.buf)
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeRawPayload rebuilds the canonical batch-request payload (uvarint
// count followed by the items) from a relay buffer, for the typed-fallback
// path and for tests.
func decodeRawPayload(items []byte, n int) []byte {
	payload := binary.AppendUvarint(make([]byte, 0, len(items)+binary.MaxVarintLen64), uint64(n))
	return append(payload, items...)
}

// rawBatch is forwardBatch's zero-copy twin: same split/fan-out/merge
// contract, but remote groups contribute their still-encoded item ranges to
// the per-peer relay instead of re-encoding a fresh frame each. The bool
// reports whether any item was planned onto a peer (the forwarded flag). A
// sampled span's hop stage spans contribute-to-last-verdict — the local
// slice is served while the hop frames are outstanding, so the mark is the
// wall time the request genuinely spent waiting on peers.
func rawBatch[Req, Res any](c *Cluster, items []Req, raw server.RawItems, sp *obs.Span,
	deviceID func(Req) string, getRelay func(p *peer) *relay[Res],
	local func([]Req) []Res, errItem func(msg string) Res) ([]Res, bool) {
	plan := c.planBatch(len(items), func(i int) string { return deviceID(items[i]) })
	if len(plan.remote) == 0 {
		// Every item is local, in request order: serve the batch as-is, no
		// gather copy, no merge. This is the steady state under ring-aware
		// clients.
		c.directRoutedBatches.Add(1)
		return local(items), false
	}
	out := make([]Res, len(items))
	type pending struct {
		idxs []int
		g    *relayGroup[Res]
	}
	var pend []pending
	forwarded := false
	for p, idxs := range plan.remote {
		if !c.acquireForward() {
			c.localFallbacks.Add(1)
			plan.local = append(plan.local, idxs...)
			continue
		}
		forwarded = true
		pend = append(pend, pending{idxs: idxs, g: getRelay(p).contribute(raw, idxs, sp.TraceID())})
	}
	var t0 time.Time
	if sp != nil && len(pend) > 0 {
		sp.SetForwarded()
		t0 = time.Now()
	}
	gather := func(idxs []int) []Req {
		sub := make([]Req, len(idxs))
		for j, i := range idxs {
			sub[j] = items[i]
		}
		return sub
	}
	if len(plan.local) > 0 {
		res := local(gather(plan.local))
		for j, i := range plan.local {
			out[i] = res[j]
		}
	}
	for _, pg := range pend {
		verdict := <-pg.g.ch
		switch {
		case verdict.typed != nil:
			fill := errItem(verdict.typed.Error())
			for _, i := range pg.idxs {
				out[i] = fill
			}
		case verdict.fallback:
			res := local(gather(pg.idxs))
			for j, i := range pg.idxs {
				out[i] = res[j]
			}
		default:
			for j, i := range pg.idxs {
				out[i] = verdict.res[j]
			}
		}
		c.inflight.Done()
	}
	if sp != nil && len(pend) > 0 {
		sp.Mark(obs.StageHop, time.Since(t0))
	}
	return out, forwarded
}

// CheckInBatchRaw implements server.RawRouter (see rawBatch).
func (c *Cluster) CheckInBatchRaw(cis []server.CheckIn, raw server.RawItems, sp *obs.Span) ([]server.CheckInResult, bool) {
	if c.cfg.DisableRelay || raw.Data == nil || len(raw.Bounds) != len(cis)+1 {
		return c.CheckInBatch(cis, sp)
	}
	return rawBatch(c, cis, raw, sp,
		func(ci server.CheckIn) string { return ci.DeviceID },
		func(p *peer) *relay[server.CheckInResult] { return p.ciRelay },
		func(sub []server.CheckIn) []server.CheckInResult { return c.m.CheckInBatchSpan(sub, sp) },
		func(msg string) server.CheckInResult { return server.CheckInResult{Error: msg} })
}

// ReportBatchRaw implements server.RawRouter (see rawBatch).
func (c *Cluster) ReportBatchRaw(rs []server.Report, raw server.RawItems, sp *obs.Span) ([]server.ReportResult, bool) {
	if c.cfg.DisableRelay || raw.Data == nil || len(raw.Bounds) != len(rs)+1 {
		return c.ReportBatch(rs, sp)
	}
	return rawBatch(c, rs, raw, sp,
		func(r server.Report) string { return r.DeviceID },
		func(p *peer) *relay[server.ReportResult] { return p.repRelay },
		func(sub []server.Report) []server.ReportResult { return c.m.ReportBatchSpan(sub, sp) },
		func(msg string) server.ReportResult { return server.ReportResult{Error: msg} })
}

var _ server.RawRouter = (*Cluster)(nil)

// newPeerRelays wires a peer's two coalescers. The typed fallbacks decode
// the relay buffer back into items via the canonical batch codec — the
// bytes came off our own wire, so this cannot fail in practice, but a
// failure is still surfaced as a forward error rather than guessed around.
func newPeerRelays(c *Cluster, p *peer) {
	p.ciRelay = newRelay(c, p,
		func(pc PeerClient, items []byte, n int, trace uint64) ([]server.CheckInResult, error) {
			return pc.CheckInBatchForwardRaw(items, n, trace)
		},
		func(pc PeerClient, items []byte, n int, trace uint64) ([]server.CheckInResult, error) {
			var req server.CheckInBatchRequest
			if err := req.UnmarshalBinary(decodeRawPayload(items, n)); err != nil {
				return nil, fmt.Errorf("cluster: relay re-decode: %w", err)
			}
			return pc.CheckInBatchForward(req.CheckIns, trace)
		})
	p.repRelay = newRelay(c, p,
		func(pc PeerClient, items []byte, n int, trace uint64) ([]server.ReportResult, error) {
			return pc.ReportBatchForwardRaw(items, n, trace)
		},
		func(pc PeerClient, items []byte, n int, trace uint64) ([]server.ReportResult, error) {
			var req server.ReportBatchRequest
			if err := req.UnmarshalBinary(decodeRawPayload(items, n)); err != nil {
				return nil, fmt.Errorf("cluster: relay re-decode: %w", err)
			}
			return pc.ReportBatchForward(req.Reports, trace)
		})
}
