package server

import (
	"errors"
	"testing"
	"time"
)

// newTestService builds a manager + service pair on a manual clock.
func newTestService(t *testing.T) (*Service, *Manager) {
	t.Helper()
	m := NewManager(Config{})
	return NewService(m, TransportHTTP), m
}

// TestServiceTypedErrors pins the error codes each failure class carries —
// the contract every transport adapter maps from. The service itself is
// exercised without any HTTP machinery.
func TestServiceTypedErrors(t *testing.T) {
	svc, _ := newTestService(t)

	if _, err := svc.RegisterJob(JobSpec{Category: "nope", DemandPerRound: 1, Rounds: 1}); ErrCode(err) != CodeInvalid {
		t.Errorf("unknown category: code %v, want CodeInvalid", ErrCode(err))
	}
	if !errors.Is(func() error {
		_, err := svc.RegisterJob(JobSpec{Category: "nope", DemandPerRound: 1, Rounds: 1})
		return err
	}(), ErrUnknownCategory) {
		t.Error("service error must unwrap to ErrUnknownCategory")
	}

	if _, err := svc.JobStatusByID(12345); ErrCode(err) != CodeNotFound {
		t.Errorf("unknown job: code %v, want CodeNotFound", ErrCode(err))
	}

	if _, err := svc.CheckIn(CheckIn{}, nil); ErrCode(err) != CodeInvalid {
		t.Errorf("missing device_id: code %v, want CodeInvalid", ErrCode(err))
	}

	// Busy device: register a job so the first check-in gets assigned, then
	// check in again before reporting.
	if _, err := svc.RegisterJob(JobSpec{Category: "General", DemandPerRound: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CheckIn(CheckIn{DeviceID: "d1", CPU: 0.9, Mem: 0.9}, nil); err != nil {
		t.Fatal(err)
	}
	_, err := svc.CheckIn(CheckIn{DeviceID: "d1", CPU: 0.9, Mem: 0.9}, nil)
	if ErrCode(err) != CodeBusy || !errors.Is(err, ErrDeviceBusy) {
		t.Errorf("busy device: got %v (code %v), want CodeBusy wrapping ErrDeviceBusy", err, ErrCode(err))
	}

	if err := svc.Report(Report{DeviceID: "ghost", JobID: 0, OK: true}, nil); ErrCode(err) != CodeNotFound {
		t.Errorf("unknown device report: code %v, want CodeNotFound", ErrCode(err))
	}

	over := make([]CheckIn, MaxBatch+1)
	for i := range over {
		over[i].DeviceID = "x"
	}
	if _, err := svc.CheckInBatch(CheckInBatchRequest{CheckIns: over}); ErrCode(err) != CodeInvalid {
		t.Errorf("oversize batch: code %v, want CodeInvalid", ErrCode(err))
	}
	if _, err := svc.ReportBatch(ReportBatchRequest{Reports: make([]Report, MaxBatch+1)}); ErrCode(err) != CodeInvalid {
		t.Errorf("oversize report batch: code %v, want CodeInvalid", ErrCode(err))
	}

	// Non-service errors classify as CodeInvalid.
	if ErrCode(errors.New("plain")) != CodeInvalid {
		t.Error("plain error must classify as CodeInvalid")
	}
}

// bucketCount reads one second's raw count out of a rate counter.
func bucketCount(rc *rateCounter, sec int64) int64 {
	b := &rc.buckets[sec%rateRingSeconds]
	if b.sec.Load() == sec {
		return b.n.Load()
	}
	return 0
}

// TestServicePerTransportRates checks that served check-ins land in the
// rate bucket of the transport that carried them.
func TestServicePerTransportRates(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	m := NewManager(Config{Clock: func() time.Time { return now }})
	httpSvc := NewService(m, TransportHTTP)
	streamSvc := NewService(m, TransportStream)

	cis := make([]CheckIn, 10)
	for i := range cis {
		cis[i] = CheckIn{DeviceID: string(rune('a' + i)), CPU: 0.5, Mem: 0.5}
	}
	if _, err := httpSvc.CheckInBatch(CheckInBatchRequest{CheckIns: cis[:4]}); err != nil {
		t.Fatal(err)
	}
	if _, err := streamSvc.CheckInBatch(CheckInBatchRequest{CheckIns: cis[4:]}); err != nil {
		t.Fatal(err)
	}
	sec := m.nowSec()
	if got := bucketCount(m.metrics.transportRate(TransportHTTP), sec); got != 4 {
		t.Errorf("http transport counted %d check-ins, want 4", got)
	}
	if got := bucketCount(m.metrics.transportRate(TransportStream), sec); got != 6 {
		t.Errorf("stream transport counted %d check-ins, want 6", got)
	}
	// The snapshot splits the per-transport rates once the second closes.
	now = now.Add(2 * time.Second)
	mt := m.MetricsSnapshot()
	per := mt.CheckInsPerSecByTransport
	if per[TransportHTTP] <= 0 || per[TransportStream] <= 0 {
		t.Errorf("per-transport rates missing from snapshot: %v", per)
	}
	// Unknown labels share the HTTP bucket rather than crashing.
	if NewService(m, "carrier-pigeon").rate != m.metrics.perTransport[TransportHTTP] {
		t.Error("unknown transport label must fall back to the http bucket")
	}
}

type fakeStreamSource struct{ tel StreamTelemetry }

func (f *fakeStreamSource) StreamTelemetry() StreamTelemetry { return f.tel }

// TestStreamTelemetryHook checks the telemetry-source pass-through into
// MetricsSnapshot, including the compare-on-clear semantics a restarted
// stream listener relies on.
func TestStreamTelemetryHook(t *testing.T) {
	m := NewManager(Config{})
	if mt := m.MetricsSnapshot(); mt.StreamConns != 0 || mt.StreamFramesIn != 0 {
		t.Fatalf("unattached stream telemetry must be zero, got %+v", mt)
	}
	src := &fakeStreamSource{tel: StreamTelemetry{Conns: 3, FramesIn: 70, FramesOut: 68}}
	m.SetStreamTelemetrySource(src)
	mt := m.MetricsSnapshot()
	if mt.StreamConns != 3 || mt.StreamFramesIn != 70 || mt.StreamFramesOut != 68 {
		t.Errorf("stream telemetry not surfaced: %+v", mt)
	}
	// A stale clear (old listener shutting down after a new one attached)
	// must not detach the new source.
	src2 := &fakeStreamSource{tel: StreamTelemetry{Conns: 1}}
	m.SetStreamTelemetrySource(src2)
	m.ClearStreamTelemetrySource(src)
	if mt := m.MetricsSnapshot(); mt.StreamConns != 1 {
		t.Errorf("stale clear clobbered the live source: %+v", mt)
	}
	m.ClearStreamTelemetrySource(src2)
	if mt := m.MetricsSnapshot(); mt.StreamConns != 0 {
		t.Errorf("detached stream telemetry must read zero, got %d conns", mt.StreamConns)
	}
}
