// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablation benchmarks on the scheduler's hot paths.
// Benchmarks run the quick-scale configurations; `cmd/vennbench -scale
// default|full` regenerates the full experiments with paper-sized sweeps.
// Speed-up factors are attached to benchmark output as custom metrics
// (x_over_random), so `go test -bench` output doubles as a results table.
package venn

import (
	"testing"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/eval"
	"venn/internal/fl"
	"venn/internal/job"
	"venn/internal/sched"
	"venn/internal/sim"
	"venn/internal/stats"
	"venn/internal/trace"
	"venn/internal/workload"
)

// --- Table 1: avg JCT improvement per workload scenario ---

func benchTable1(b *testing.B, sc workload.Scenario) {
	b.ReportAllocs()
	var speed float64
	for i := 0; i < b.N; i++ {
		setup := eval.NewSetup(eval.ScaleQuick, int64(100+i))
		setup.Jobs.Scenario = sc
		cmp, err := eval.Compare(setup, eval.StandardSchedulers())
		if err != nil {
			b.Fatal(err)
		}
		speed += cmp.Speedup("Venn", "Random")
	}
	b.ReportMetric(speed/float64(b.N), "x_over_random")
}

func BenchmarkTable1Even(b *testing.B)  { benchTable1(b, workload.Even) }
func BenchmarkTable1Small(b *testing.B) { benchTable1(b, workload.Small) }
func BenchmarkTable1Large(b *testing.B) { benchTable1(b, workload.Large) }
func BenchmarkTable1Low(b *testing.B)   { benchTable1(b, workload.Low) }
func BenchmarkTable1High(b *testing.B)  { benchTable1(b, workload.High) }

// --- Table 2: improvement by total-demand percentile ---

func BenchmarkTable2DemandPercentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table2(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: improvement by eligibility category ---

func BenchmarkTable3Categories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table3(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: biased workloads ---

func BenchmarkTable4BiasedWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table4(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2a: diurnal availability trace ---

func BenchmarkFigure2aAvailability(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := eval.Figure2a(1000, int64(i))
		ratio += r.PeakTroughRatio()
	}
	b.ReportMetric(ratio/float64(b.N), "peak_trough_ratio")
}

// --- Figure 3: toy example ---

func BenchmarkFigure3Toy(b *testing.B) {
	var vennJCT, randomJCT float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		vennJCT += r.AvgJCT["Venn"]
		randomJCT += r.AvgJCT["Random"]
	}
	b.ReportMetric(vennJCT/float64(b.N), "venn_jct_units")
	b.ReportMetric(randomJCT/float64(b.N), "random_jct_units")
}

// --- Figure 4: contention vs round-to-accuracy ---

func BenchmarkFigure4Contention(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure4(eval.ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
		last := r.JobCounts[len(r.JobCounts)-1]
		gap += r.FinalAccuracy(1) - r.FinalAccuracy(last)
	}
	b.ReportMetric(gap/float64(b.N), "accuracy_gap_1_vs_20_jobs")
}

// --- Figure 5: JCT breakdown under random matching ---

func BenchmarkFigure5Breakdown(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure5(eval.ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
		ratio += r.SchedDelaySec[20] / (r.RespTimeSec[20] + 1)
	}
	b.ReportMetric(ratio/float64(b.N), "sched_over_resp_at_20_jobs")
}

// --- Figure 8a: eligibility strata ---

func BenchmarkFigure8aStrata(b *testing.B) {
	var hp float64
	for i := 0; i < b.N; i++ {
		r := eval.Figure8a(2000, int64(i))
		hp += r.Fractions["High-Perf"]
	}
	b.ReportMetric(hp/float64(b.N), "highperf_fraction")
}

// --- Figure 9: accuracy over time per scheduler ---

func BenchmarkFigure9AccuracyOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure9(eval.ScaleQuick, 6)
		if err != nil {
			b.Fatal(err)
		}
		if r.Final["Venn"] <= 0 {
			b.Fatal("no accuracy")
		}
	}
}

// --- Figure 10: scheduler overhead (the paper's scalability claim) ---

func BenchmarkFigure10Plan1000Jobs(b *testing.B)  { benchPlan(b, 1000, 20) }
func BenchmarkFigure10Plan100Groups(b *testing.B) { benchPlan(b, 500, 100) }

func benchPlan(b *testing.B, jobs, groups int) {
	rng := stats.NewRNG(int64(jobs + groups))
	reqs := make([]device.Requirement, groups)
	for i := range reqs {
		reqs[i] = device.Requirement{MinCPU: float64(i%10) / 10, MinMem: float64(i/10%10) / 10}
	}
	grid := device.NewGrid(reqs)
	rates := make([]float64, grid.NumCells())
	for c := range rates {
		rates[c] = rng.Uniform(1, 100)
	}
	states := make([]*core.GroupState, groups)
	for i := range states {
		states[i] = &core.GroupState{
			Region: grid.RegionOf(reqs[i]),
			Supply: rng.Uniform(10, 1000),
			Queue:  float64(jobs / groups),
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ComputeAllocation(states, rates)
		core.BuildCellPlan(states, grid.NumCells())
	}
}

// --- Figure 11: component ablation ---

func BenchmarkFigure11Ablation(b *testing.B) {
	var full, noMatch float64
	for i := 0; i < b.N; i++ {
		setup := eval.NewSetup(eval.ScaleQuick, int64(300+i))
		setup.Jobs.Scenario = workload.Low
		cmp, err := eval.Compare(setup, eval.AblationSchedulers())
		if err != nil {
			b.Fatal(err)
		}
		full += cmp.Speedup("Venn", "Random")
		noMatch += cmp.Speedup("Venn-w/o-match", "Random")
	}
	b.ReportMetric(full/float64(b.N), "venn_x")
	b.ReportMetric(noMatch/float64(b.N), "venn_wo_match_x")
}

// --- Figure 12: number of jobs sweep ---

func BenchmarkFigure12JobSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure12(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 13: tier sweep ---

func BenchmarkFigure13TierSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure13(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 14: fairness knob sweep ---

func BenchmarkFigure14FairnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure14(eval.ScaleQuick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks on hot paths (DESIGN.md §6) ---

// BenchmarkIRSPlanSmall measures a single Algorithm 1 invocation at the
// default evaluation size (4 groups).
func BenchmarkIRSPlanSmall(b *testing.B) { benchPlan(b, 50, 4) }

// BenchmarkRegionAlgebra measures the bitset set operations that dominate
// planning.
func BenchmarkRegionAlgebra(b *testing.B) {
	reqs := make([]device.Requirement, 64)
	for i := range reqs {
		reqs[i] = device.Requirement{MinCPU: float64(i%8) / 8, MinMem: float64(i/8) / 8}
	}
	grid := device.NewGrid(reqs)
	a := grid.RegionOf(reqs[5])
	c := grid.RegionOf(reqs[37])
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := a.Union(c)
		_ = u.Intersect(a).Subtract(c).Count()
	}
}

// BenchmarkAssignHotPath measures per-device assignment latency for each
// scheduler with 40 open requests.
func BenchmarkAssignHotPath(b *testing.B) {
	for _, mk := range []struct {
		name string
		new  func() sim.Scheduler
	}{
		{"FIFO", func() sim.Scheduler { return sched.NewFIFO() }},
		{"SRSF", func() sim.Scheduler { return sched.NewSRSF() }},
		{"Venn", func() sim.Scheduler { return core.NewDefault() }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			s := mk.new()
			grid := device.NewGrid(device.Categories())
			env := &sim.Env{
				Grid:          grid,
				CellPriorRate: []float64{40, 20, 20, 10},
				RNG:           stats.NewRNG(1),
				Jobs:          map[job.ID]*job.Job{},
				IdlePerCell:   make([]int, grid.NumCells()),
			}
			s.Bind(env)
			cats := device.Categories()
			for i := 0; i < 40; i++ {
				j := job.New(job.ID(i), cats[i%4], 1000, 3, 0)
				j.Start(0)
				env.Jobs[j.ID] = j
				s.OnJobArrival(j, 0)
				s.OnRequest(j, 0)
			}
			dev := device.New(0, 0.8, 0.8)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s.Assign(dev, 1) == nil {
					b.Fatal("no assignment")
				}
			}
		})
	}
}

// BenchmarkEngineEvents measures raw simulation throughput (events/op) on a
// mid-size run.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleet := trace.GenerateFleet(trace.FleetConfig{NumDevices: 1000, Seed: int64(i)})
		wl := workload.Generate(workload.Config{NumJobs: 10, Seed: int64(i), MaxRounds: 6, MaxDemand: 60})
		eng, err := sim.NewEngine(sim.Config{
			Fleet: fleet, Jobs: wl.Jobs, Scheduler: core.NewDefault(), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res := eng.Run()
		if res.Assignments == 0 {
			b.Fatal("no work done")
		}
	}
}

// BenchmarkFLRound measures one FedAvg round at experiment size.
func BenchmarkFLRound(b *testing.B) {
	cfg := eval.DefaultFLConfig(eval.ScaleQuick, 1)
	data := cfg.Data
	data.Clients = 400
	ds := fl.GenerateDataset(data)
	tr := fl.NewTrainer(ds, cfg.Train)
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := rng.SampleWithoutReplacement(len(ds.Shards), cfg.DemandPerRound)
		tr.RunRound(parts)
	}
}
