package policy

import (
	"testing"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/trace"
)

func TestRegistryNames(t *testing.T) {
	for _, name := range []string{"venn", "fifo", "srsf", "random"} {
		if !Valid(name) {
			t.Errorf("built-in policy %q missing from registry", name)
		}
		p, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("New(%q) returned nil policy", name)
		}
	}
	if Valid("no-such-policy") {
		t.Error("unknown name must not validate")
	}
	if _, err := New("no-such-policy", Config{}); err == nil {
		t.Error("New must reject unknown names")
	}
	// Lookup is case-insensitive: flags arrive in whatever case users type.
	if !Valid("FIFO") || !Valid("Venn") {
		t.Error("registry lookup must be case-insensitive")
	}
}

func TestRegistryPolicyNames(t *testing.T) {
	wantName := map[string]string{
		"venn":   "Venn",
		"fifo":   "Venn-w/o-sched", // FIFO order, tier matching in force
		"srsf":   "SRSF",
		"random": "Random",
	}
	for reg, want := range wantName {
		if got := MustNew(reg, Config{}).Name(); got != want {
			t.Errorf("policy %q reports Name %q, want %q", reg, got, want)
		}
	}
	if got := NewFIFO().Name(); got != "FIFO" {
		t.Errorf("bare FIFO Name = %q, want FIFO", got)
	}
	if got := NewFIFOMatch(core.Options{DisableMatching: true}).Name(); got != "Venn-w/o-both" {
		t.Errorf("FIFOMatch w/o matching Name = %q, want Venn-w/o-both", got)
	}
}

// buildEngine wires a policy into a real engine over a hand-made fleet.
func buildEngine(t *testing.T, p Policy, fleet *trace.Fleet, jobs []*job.Job) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		Fleet:     fleet,
		Jobs:      jobs,
		Scheduler: p,
		Response:  sim.ResponseModel{Median: 5 * simtime.Second, P95: 10 * simtime.Second, DisableFailures: true},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// mixedFleet: devices alternate between high-end and low-end, checking in
// one per minute.
func mixedFleet(n int, horizon simtime.Duration) *trace.Fleet {
	f := &trace.Fleet{Horizon: horizon}
	for i := 0; i < n; i++ {
		var d *device.Device
		if i%2 == 0 {
			d = device.New(device.ID(i), 0.9, 0.9)
		} else {
			d = device.New(device.ID(i), 0.2, 0.2)
		}
		f.Devices = append(f.Devices, d)
		start := simtime.Time(i+1) * simtime.Time(simtime.Minute)
		f.Intervals = append(f.Intervals, []trace.Interval{{Start: start, End: simtime.Time(horizon)}})
	}
	return f
}

func TestFIFOAblationOrdersByArrival(t *testing.T) {
	fleet := mixedFleet(80, 6*simtime.Hour)
	first := job.New(0, device.General, 10, 2, 0)
	second := job.New(1, device.General, 4, 1, simtime.Time(simtime.Minute))
	p := NewFIFOMatch(core.Options{DisableMatching: true})
	eng := buildEngine(t, p, fleet, []*job.Job{first, second})
	res := eng.Run()
	jct0, ok0 := res.JobJCT(0)
	jct1, ok1 := res.JobJCT(1)
	if !ok0 || !ok1 {
		t.Fatalf("both jobs must complete: %v", res)
	}
	// Under FIFO the earlier, larger job holds priority across rounds,
	// so the later small job cannot finish dramatically earlier.
	if jct1 < jct0/4 {
		t.Errorf("FIFO ablation let the later job jump the queue: %0.fs vs %.0fs", jct1, jct0)
	}
}

// TestFIFOMatchForwardsMatching pins that the registry's "fifo" policy keeps
// tier-based matching in force: the inner Venn core must see every lifecycle
// event (its tier filters drive TierAccepts during the FIFO walk).
func TestFIFOMatchForwardsMatching(t *testing.T) {
	fleet := mixedFleet(60, 4*simtime.Hour)
	jobs := []*job.Job{
		job.New(0, device.General, 8, 2, 0),
		job.New(1, device.HighPerf, 6, 1, 0),
	}
	p := MustNew("fifo", Config{Core: core.DefaultOptions()}).(*FIFO)
	eng := buildEngine(t, p, fleet, jobs)
	res := eng.Run()
	if len(res.Completed) != 2 {
		t.Fatalf("both jobs must complete: %v", res)
	}
	if p.match == nil {
		t.Fatal("registry fifo policy must carry the matching core")
	}
	if p.QueueLen() != 0 {
		t.Errorf("queue must drain after completion, still holds %d", p.QueueLen())
	}
}
