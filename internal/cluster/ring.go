// Package cluster federates several venndaemons into one serving fleet.
// Device ownership is sharded across the member daemons by a consistent-hash
// ring (internal/hashring — FNV-1a over the device ID, the same hash family
// the manager's lock stripes use), and a request that lands on a non-owner
// is transparently forwarded peer-to-peer over the persistent framed stream
// transport (internal/transport) using the multiplexing client.StreamClient
// pool — any daemon can accept any check-in or report, single or batch.
// Ring-aware clients (client.WithTopology) fetch the same ring over
// OpTopology and partition their batches before sending, so on the common
// path nothing needs forwarding at all.
//
// Membership is static configuration: every member is told the full member
// list (venndaemon -peers) and identifies itself by its published stream
// address (-node-id, defaulting to -stream-addr). A lightweight health loop
// pings each peer periodically; a peer that misses FailAfter consecutive
// probes is marked down and forwarding to it falls back to applying the
// request locally, so a dead peer degrades ownership locality instead of
// erroring requests. The ring plus the alive-peer table is published as an
// immutable snapshot behind an atomic pointer — the routing decision on the
// serving hot path is lock-free, mirroring the scheduler's PlanSnapshot
// pattern.
package cluster

import "venn/internal/hashring"

// DefaultVNodes is the virtual-node count per member (see hashring).
const DefaultVNodes = hashring.DefaultVNodes

// Ring is the immutable consistent-hash ownership ring. It is an alias of
// hashring.Ring: the ring moved to a leaf package so ring-aware clients can
// derive byte-identical ownership without importing the federation layer,
// and this alias keeps the cluster API (and its tests) unchanged.
type Ring = hashring.Ring

// NewRing builds a ring over the given member IDs with vnodes virtual nodes
// per member (<=0 takes DefaultVNodes).
func NewRing(members []string, vnodes int) *Ring {
	return hashring.New(members, vnodes)
}
