package client

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"venn/internal/server"
)

func TestClientBatchLifecycle(t *testing.T) {
	c, _ := newTestPair(t)
	st, err := c.RegisterJob(server.JobSpec{Name: "kbd", Category: "General", DemandPerRound: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	results, err := c.CheckInBatch([]server.CheckIn{
		{DeviceID: "b0", CPU: 0.7, Mem: 0.7},
		{DeviceID: "b1", CPU: 0.6, Mem: 0.6},
		{DeviceID: "b2", CPU: 0.5, Mem: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	ids := []string{"b0", "b1", "b2"}
	var reports []server.Report
	assigned := 0
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
		if r.Assigned {
			assigned++
			reports = append(reports, server.Report{
				DeviceID: ids[i], JobID: r.JobID, OK: true, DurationSeconds: 12,
			})
		}
	}
	if assigned != 2 {
		t.Fatalf("assigned = %d, want 2", assigned)
	}
	rr, err := c.ReportBatch(reports)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rr {
		if r.Error != "" {
			t.Fatalf("report %d: %s", i, r.Error)
		}
	}
	done, err := c.WaitForJob(st.ID, 10*time.Millisecond, time.Second)
	if err != nil || done.State != "done" {
		t.Fatalf("job: %+v %v", done, err)
	}

	mt, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mt.CheckIns != 3 || mt.Assignments != 2 || mt.Reports != 2 {
		t.Errorf("metrics: %+v", mt)
	}
	if _, ok := mt.HandlerLatencyMs["checkin_batch"]; !ok {
		t.Error("checkin_batch latency missing from metrics")
	}
}

func TestClientGetRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"completed_jobs": 7}`))
	}))
	defer srv.Close()

	// Without retries the transient 500 surfaces.
	c := New(srv.URL)
	if _, err := c.Stats(); err == nil {
		t.Fatal("expected error without retries")
	}
	calls.Store(0)

	// With a retry budget the GET succeeds on the third attempt.
	c = New(srv.URL, WithRetries(3), WithRetryDelay(time.Millisecond))
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletedJobs != 7 {
		t.Errorf("stats: %+v", st)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
}

func TestClientPostNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(5), WithRetryDelay(time.Millisecond))
	if err := c.Report(server.Report{DeviceID: "d0"}); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Errorf("POST attempted %d times; mutating requests must not retry", calls.Load())
	}
}

func TestClientConfigurableTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	c := New(srv.URL, WithTimeout(50*time.Millisecond))
	start := time.Now()
	_, err := c.Stats()
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v; the configured 50ms timeout was not applied", elapsed)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		for i := 0; i < 50; i++ {
			d := backoff(base, attempt)
			lo := base << uint(attempt)
			hi := lo + lo/2
			if d < lo || d > hi {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}
