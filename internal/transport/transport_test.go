package transport_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"venn/internal/client"
	"venn/internal/server"
	"venn/internal/transport"
)

// startServer spins a manager + stream server on a loopback listener and
// returns the dial address plus a cleanup.
func startServer(t *testing.T, opts transport.Options) (*server.Manager, *transport.Server, string) {
	t.Helper()
	m := server.NewManager(server.Config{})
	ts := transport.NewServer(m, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ts.Serve(ln) }()
	t.Cleanup(func() { _ = ts.Close() })
	return m, ts, ln.Addr().String()
}

// TestStreamEndToEnd drives the whole agent protocol over one stream
// client: job registration, batched check-ins, batched reports, status
// polls, and telemetry.
func TestStreamEndToEnd(t *testing.T) {
	m, ts, addr := startServer(t, transport.Options{})
	c := client.NewStream(addr)
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	st, err := c.RegisterJob(server.JobSpec{Name: "j0", Category: "General", DemandPerRound: 3, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	cis := make([]server.CheckIn, 16)
	for i := range cis {
		cis[i] = server.CheckIn{DeviceID: fmt.Sprintf("dev-%02d", i), CPU: 0.9, Mem: 0.9}
	}
	results, err := c.CheckInBatch(cis)
	if err != nil {
		t.Fatal(err)
	}
	var reports []server.Report
	for i, res := range results {
		if res.Error != "" {
			t.Errorf("item %d rejected: %s", i, res.Error)
		}
		if res.Assigned {
			reports = append(reports, server.Report{
				DeviceID: cis[i].DeviceID, JobID: res.JobID, OK: true, DurationSeconds: 30,
			})
		}
	}
	if len(reports) != 3 {
		t.Fatalf("%d assignments, want 3", len(reports))
	}
	if _, err := c.ReportBatch(reports); err != nil {
		t.Fatal(err)
	}
	got, err := c.JobStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "done" {
		t.Errorf("job state %q after full round, want done", got.State)
	}
	if jobs, err := c.Jobs(); err != nil || len(jobs) != 1 {
		t.Errorf("Jobs() = %v, %v", jobs, err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}

	mt, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mt.StreamConns < 1 || mt.StreamFramesIn == 0 || mt.StreamFramesOut == 0 {
		t.Errorf("stream telemetry not flowing: conns=%d in=%d out=%d",
			mt.StreamConns, mt.StreamFramesIn, mt.StreamFramesOut)
	}
	if mt.CheckInsPerSecByTransport != nil {
		if _, ok := mt.CheckInsPerSecByTransport[server.TransportHTTP]; ok {
			t.Error("no HTTP traffic was sent, http rate must be absent")
		}
	}
	tel := ts.StreamTelemetry()
	if tel.FramesIn != tel.FramesOut {
		t.Errorf("every request frame must be answered: in=%d out=%d", tel.FramesIn, tel.FramesOut)
	}
	// Check-ins served over the stream share the manager with every other
	// transport.
	if s := m.StatsSnapshot(); s.CheckIns == 0 {
		t.Error("stream check-ins did not reach the manager")
	}
}

// TestStreamTypedErrors pins the error mapping across the wire: busy
// devices and unknown jobs come back as StreamError with the service
// layer's code.
func TestStreamTypedErrors(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{})
	c := client.NewStream(addr)
	defer c.Close()

	if _, err := c.RegisterJob(server.JobSpec{Category: "General", DemandPerRound: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckIn(server.CheckIn{DeviceID: "d1", CPU: 0.9, Mem: 0.9}); err != nil {
		t.Fatal(err)
	}
	_, err := c.CheckIn(server.CheckIn{DeviceID: "d1", CPU: 0.9, Mem: 0.9})
	var se *client.StreamError
	if !errors.As(err, &se) || se.Code != server.CodeBusy {
		t.Errorf("busy device over stream: %v, want StreamError CodeBusy", err)
	}
	_, err = c.JobStatus(424242)
	if !errors.As(err, &se) || se.Code != server.CodeNotFound {
		t.Errorf("unknown job over stream: %v, want StreamError CodeNotFound", err)
	}
	if _, err := c.RegisterJob(server.JobSpec{Category: "bogus", DemandPerRound: 1, Rounds: 1}); err == nil {
		t.Error("bogus category must fail over stream")
	}
}

// TestStreamPipelinedConcurrency hammers one small connection pool from
// many goroutines — multiplexing, request-ID correlation, and the
// in-flight window all under the race detector.
func TestStreamPipelinedConcurrency(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{Window: 8})
	c := client.NewStream(addr, client.WithStreamConns(2))
	defer c.Close()

	const goroutines = 24
	const perG = 40
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cis := []server.CheckIn{
					{DeviceID: fmt.Sprintf("g%02d-i%03d-a", g, i), CPU: 0.5, Mem: 0.5},
					{DeviceID: fmt.Sprintf("g%02d-i%03d-b", g, i), CPU: 0.2, Mem: 0.8},
				}
				results, err := c.CheckInBatch(cis)
				if err != nil || len(results) != 2 {
					failures.Add(1)
					continue
				}
				if err := c.Ping(); err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Errorf("%d of %d pipelined calls failed", n, goroutines*perG*2)
	}
}

// TestStreamReconnect kills the server mid-conversation and brings a new
// one up on the same address: the client must fail fast while the server
// is down and transparently redial once it is back.
func TestStreamReconnect(t *testing.T) {
	m := server.NewManager(server.Config{})
	ts := transport.NewServer(m, transport.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = ts.Serve(ln) }()

	c := client.NewStream(addr, client.WithStreamTimeout(2*time.Second))
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	_ = ts.Close()
	// The dead connection must surface as an error, not a hang.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Ping(); err != nil {
			break
		}
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	ts2 := transport.NewServer(m, transport.Options{})
	go func() { _ = ts2.Serve(ln2) }()
	defer ts2.Close()

	var pingErr error
	for time.Now().Before(deadline) {
		if pingErr = c.Ping(); pingErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if pingErr != nil {
		t.Fatalf("client did not reconnect: %v", pingErr)
	}
}

// TestStreamShutdownMidStream checks the drain path: Shutdown under live
// pipelined load answers everything it already read, never wedges, and
// refuses new connections afterwards.
func TestStreamShutdownMidStream(t *testing.T) {
	_, ts, addr := startServer(t, transport.Options{Window: 16})

	const clients = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		c := client.NewStream(addr, client.WithStreamTimeout(2*time.Second))
		defer c.Close()
		wg.Add(1)
		go func(c *client.StreamClient, i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once shutdown begins; the assertion
				// is that calls terminate (no deadlock) and the server
				// drains.
				_, _ = c.CheckInBatch([]server.CheckIn{
					{DeviceID: fmt.Sprintf("c%d-%d", i, n), CPU: 0.5, Mem: 0.5},
				})
			}
		}(c, i)
	}

	time.Sleep(100 * time.Millisecond) // let load build
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Errorf("graceful shutdown failed: %v", err)
	}
	close(stop)
	wg.Wait()

	if tel := ts.StreamTelemetry(); tel.Conns != 0 {
		t.Errorf("%d connections survived shutdown", tel.Conns)
	}
	// New connections must be refused.
	c2 := client.NewStream(addr, client.WithStreamTimeout(500*time.Millisecond))
	defer c2.Close()
	if err := c2.Ping(); err == nil {
		t.Error("ping succeeded after shutdown")
	}
}

// TestStreamProtocolViolation sends garbage bytes: the server must drop the
// connection without answering, and stay healthy for well-formed peers.
func TestStreamProtocolViolation(t *testing.T) {
	_, _, addr := startServer(t, transport.Options{MaxPayload: 1024})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("bad magic: read err %v, want EOF (connection closed)", err)
	}

	// A frame whose declared length exceeds the cap is also a violation.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	bw := bufio.NewWriter(raw2)
	if err := transport.WriteFrame(bw, transport.Version1, transport.OpCheckIn, 1, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	_ = bw.Flush()
	_ = raw2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw2.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("oversized frame: read err %v, want EOF", err)
	}

	// An unknown opcode inside a valid frame is answered with OpError and
	// the connection survives.
	raw3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw3.Close()
	bw3 := bufio.NewWriter(raw3)
	if err := transport.WriteFrame(bw3, transport.Version1, 0x70, 7, nil); err != nil {
		t.Fatal(err)
	}
	_ = bw3.Flush()
	fr, err := transport.ReadFrame(bufio.NewReader(raw3), 1024, transport.MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Op != transport.OpError || fr.ID != 7 {
		t.Errorf("unknown opcode answer: op %#x id %d, want OpError id 7", fr.Op, fr.ID)
	}
}
