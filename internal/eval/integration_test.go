package eval

import (
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
	"venn/internal/trace"
	"venn/internal/workload"
)

// TestSchedulerInvariants replays one workload under every scheduler and
// checks cross-module accounting invariants that no unit test can see:
// round records vs engine counters, JCT consistency, and participant
// uniqueness per attempt.
func TestSchedulerInvariants(t *testing.T) {
	fleet := trace.GenerateFleet(trace.FleetConfig{NumDevices: 1200, Horizon: 3 * simtime.Day, Seed: 17})
	wl := workload.Generate(workload.Config{NumJobs: 12, Seed: 18, MaxRounds: 6, MaxDemand: 60})

	for name, factory := range StandardSchedulers() {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			// Track per-round participants for uniqueness.
			type roundKey struct {
				id    job.ID
				round int
			}
			seenRounds := map[roundKey]bool{}
			obs := func(j *job.Job, round int, parts []device.ID, now simtime.Time) {
				k := roundKey{j.ID, round}
				if seenRounds[k] {
					t.Errorf("round %v observed twice", k)
				}
				seenRounds[k] = true
				uniq := map[device.ID]bool{}
				for _, p := range parts {
					if uniq[p] {
						t.Errorf("%s job %d round %d: duplicate participant %d", name, j.ID, round, p)
					}
					uniq[p] = true
				}
				if len(parts) < j.TargetResponses() {
					t.Errorf("%s job %d round %d: %d participants < target %d",
						name, j.ID, round, len(parts), j.TargetResponses())
				}
			}
			res, err := RunOne(fleet, wl, factory, 19, obs)
			if err != nil {
				t.Fatal(err)
			}
			if res.CompletionRate() < 0.5 {
				t.Fatalf("%s completed only %.0f%%", name, 100*res.CompletionRate())
			}

			totalAttemptAssigned := 0
			for _, j := range res.Completed {
				recs := j.Records()
				if len(recs) != j.Rounds {
					t.Errorf("job %d: %d round records, want %d", j.ID, len(recs), j.Rounds)
				}
				var prevEnd simtime.Time
				for i, rec := range recs {
					if rec.Round != i+1 {
						t.Errorf("job %d: record %d has round %d", j.ID, i, rec.Round)
					}
					if rec.Start < prevEnd {
						t.Errorf("job %d: round %d starts before previous ended", j.ID, rec.Round)
					}
					if rec.End < rec.Start {
						t.Errorf("job %d: round %d ends before it starts", j.ID, rec.Round)
					}
					prevEnd = rec.End
					if len(rec.Attempts) == 0 {
						t.Errorf("job %d round %d: no attempts", j.ID, rec.Round)
					}
					for _, a := range rec.Attempts {
						totalAttemptAssigned += a.Assigned
						if a.SchedulingDelay() < 0 || a.ResponseTime() < 0 {
							t.Errorf("job %d: negative attempt durations %+v", j.ID, a)
						}
						if !a.Aborted && a.Responses < j.TargetResponses() {
							t.Errorf("job %d: successful attempt with %d responses < %d",
								j.ID, a.Responses, j.TargetResponses())
						}
					}
					if !seenRounds[roundKey{j.ID, rec.Round}] {
						t.Errorf("job %d round %d completed without observer callback", j.ID, rec.Round)
					}
				}
				// JCT consistency: completion equals last round end.
				if j.Completion() != recs[len(recs)-1].End {
					t.Errorf("job %d: completion %v != last round end %v",
						j.ID, j.Completion(), recs[len(recs)-1].End)
				}
			}
			// Engine assignments cover at least the fully-assigned
			// attempts of completed jobs (unfinished jobs also consume).
			if res.Assignments < totalAttemptAssigned {
				t.Errorf("engine assignments %d < attempts' assigned %d",
					res.Assignments, totalAttemptAssigned)
			}
			// Response + failure accounting cannot exceed assignments.
			if res.Responses+res.Failures > res.Assignments {
				t.Errorf("responses %d + failures %d > assignments %d",
					res.Responses, res.Failures, res.Assignments)
			}
		})
	}
}

// TestCrossSchedulerJCTSanity verifies that no scheduler produces absurd
// JCTs (negative, or beyond the horizon) on a common workload.
func TestCrossSchedulerJCTSanity(t *testing.T) {
	setup := NewSetup(ScaleQuick, 23)
	cmp, err := Compare(setup, StandardSchedulers())
	if err != nil {
		t.Fatal(err)
	}
	horizon := setup.Fleet.Horizon.Seconds()
	for name, res := range cmp.Results {
		for _, j := range res.Completed {
			sec := j.JCT().Seconds()
			if sec <= 0 || sec > horizon {
				t.Errorf("%s job %d JCT %.0fs outside (0, horizon]", name, j.ID, sec)
			}
		}
	}
}
