package fl

import (
	"math"
	"testing"
	"testing/quick"

	"venn/internal/stats"
)

func testDataConfig(seed int64) DataConfig {
	return DataConfig{
		Classes:          6,
		Features:         12,
		Clients:          60,
		SamplesPerClient: 40,
		TestSamples:      600,
		Alpha:            0.3,
		NoiseStd:         1.0,
		Seed:             seed,
	}
}

func TestGenerateDatasetShapes(t *testing.T) {
	ds := GenerateDataset(testDataConfig(1))
	if len(ds.Shards) != 60 {
		t.Fatalf("shards = %d", len(ds.Shards))
	}
	for _, shard := range ds.Shards {
		if len(shard) != 40 {
			t.Fatalf("shard size = %d", len(shard))
		}
		for _, ex := range shard {
			if len(ex.X) != 12 || ex.Y < 0 || ex.Y >= 6 {
				t.Fatal("malformed example")
			}
		}
	}
	if len(ds.Test) != 600 {
		t.Fatalf("test size = %d", len(ds.Test))
	}
}

func TestDatasetNonIID(t *testing.T) {
	ds := GenerateDataset(testDataConfig(2))
	// With alpha=0.3 most shards should be dominated by few labels.
	dominated := 0
	for _, shard := range ds.Shards {
		counts := map[int]int{}
		for _, ex := range shard {
			counts[ex.Y]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if float64(max) > 0.5*float64(len(shard)) {
			dominated++
		}
	}
	if dominated < len(ds.Shards)/3 {
		t.Errorf("only %d/%d shards are label-dominated; alpha partition looks IID", dominated, len(ds.Shards))
	}
}

func TestClientForAndDiversity(t *testing.T) {
	ds := GenerateDataset(testDataConfig(3))
	if ds.ClientFor(0) != 0 || ds.ClientFor(60) != 0 || ds.ClientFor(-5) != 5 {
		t.Error("ClientFor mapping wrong")
	}
	allClients := make([]int, len(ds.Shards))
	for i := range allClients {
		allClients[i] = i
	}
	if d := ds.LabelDiversity(allClients); d != 6 {
		t.Errorf("full diversity = %d, want 6", d)
	}
	if d := ds.LabelDiversity(nil); d != 0 {
		t.Errorf("empty diversity = %d", d)
	}
	if d := ds.LabelDiversity([]int{0}); d < 1 || d > 6 {
		t.Errorf("single-client diversity = %d", d)
	}
	if ds.LabelDiversity([]int{999}) != 0 {
		t.Error("out-of-range clients must be skipped")
	}
}

func TestSoftmaxIsDistributionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		z := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep logits bounded to avoid overflow-to-zero edge noise.
			z = append(z, math.Mod(x, 50))
		}
		softmax(z)
		sum := 0.0
		for _, p := range z {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestModelLearnsSeparableData(t *testing.T) {
	ds := GenerateDataset(DataConfig{
		Classes: 4, Features: 8, Clients: 10, SamplesPerClient: 200,
		TestSamples: 500, Alpha: 100 /* IID */, NoiseStd: 0.5, Seed: 4,
	})
	m := NewModel(4, 8)
	before := m.Accuracy(ds.Test)
	rng := stats.NewRNG(5)
	for _, shard := range ds.Shards {
		m.TrainLocal(shard, 3, 0.1, 1e-4, rng)
	}
	after := m.Accuracy(ds.Test)
	if after < 0.85 {
		t.Errorf("accuracy after training = %.3f, want > 0.85 (before %.3f)", after, before)
	}
	if loss := m.Loss(ds.Test); loss > 1.0 {
		t.Errorf("loss = %.3f, want < 1.0", loss)
	}
}

func TestCloneAndDelta(t *testing.T) {
	m := NewModel(3, 4)
	m.W[1][2] = 5
	c := m.Clone()
	c.W[1][2] = 7
	if m.W[1][2] != 5 {
		t.Error("Clone aliases weights")
	}
	d := c.Sub(m)
	if d.W[1][2] != 2 {
		t.Errorf("delta = %v", d.W[1][2])
	}
	m.AddScaled(d, 0.5)
	if m.W[1][2] != 6 {
		t.Errorf("AddScaled result = %v", m.W[1][2])
	}
}

func TestFedAvgEqualWeightsIsMean(t *testing.T) {
	g := NewModel(2, 2)
	d1 := NewModel(2, 2)
	d1.W[0][0] = 4
	d2 := NewModel(2, 2)
	d2.W[0][0] = 8
	FedAvg(g, []*Model{d1, d2}, []float64{1, 1})
	if g.W[0][0] != 6 {
		t.Errorf("FedAvg mean = %v, want 6", g.W[0][0])
	}
	// Weighted.
	g2 := NewModel(2, 2)
	FedAvg(g2, []*Model{d1, d2}, []float64{3, 1})
	if g2.W[0][0] != 5 {
		t.Errorf("weighted FedAvg = %v, want 5", g2.W[0][0])
	}
	// Degenerate weights fall back to uniform.
	g3 := NewModel(2, 2)
	FedAvg(g3, []*Model{d1, d2}, []float64{0, 0})
	if g3.W[0][0] != 6 {
		t.Errorf("degenerate-weight FedAvg = %v, want 6", g3.W[0][0])
	}
	// No deltas: no change.
	g4 := NewModel(2, 2)
	FedAvg(g4, nil, nil)
	if g4.W[0][0] != 0 {
		t.Error("empty FedAvg must be a no-op")
	}
}

func TestTrainerAccuracyImproves(t *testing.T) {
	ds := GenerateDataset(testDataConfig(6))
	tr := NewTrainer(ds, TrainConfig{LocalEpochs: 2, LR: 0.1, Seed: 7})
	rng := stats.NewRNG(8)
	var first, last float64
	for round := 0; round < 8; round++ {
		parts := rng.SampleWithoutReplacement(60, 15)
		rr := tr.RunRound(parts)
		if round == 0 {
			first = rr.TestAccuracy
		}
		last = rr.TestAccuracy
		if rr.Round != round+1 || rr.Participants != 15 {
			t.Fatalf("round result wrong: %+v", rr)
		}
	}
	if last <= first {
		t.Errorf("accuracy did not improve: %.3f -> %.3f", first, last)
	}
	if tr.Rounds() != 8 || len(tr.History) != 8 {
		t.Error("history bookkeeping wrong")
	}
	if tr.FinalAccuracy() != last {
		t.Error("FinalAccuracy mismatch")
	}
}

func TestTrainerEmptyRound(t *testing.T) {
	ds := GenerateDataset(testDataConfig(9))
	tr := NewTrainer(ds, TrainConfig{})
	rr := tr.RunRound(nil)
	if rr.Participants != 0 {
		t.Error("empty round participants")
	}
	if tr.FinalAccuracy() != rr.TestAccuracy {
		t.Error("final accuracy should reflect the empty round")
	}
	empty := NewTrainer(ds, TrainConfig{})
	if empty.FinalAccuracy() != 0 {
		t.Error("no-round trainer accuracy must be 0")
	}
}

func TestPredictConsistentWithAccuracy(t *testing.T) {
	ds := GenerateDataset(testDataConfig(10))
	m := NewModel(6, 12)
	rng := stats.NewRNG(11)
	m.TrainLocal(ds.Test[:300], 2, 0.1, 0, rng)
	correct := 0
	for _, ex := range ds.Test {
		if m.Predict(ex.X) == ex.Y {
			correct++
		}
	}
	want := float64(correct) / float64(len(ds.Test))
	if got := m.Accuracy(ds.Test); math.Abs(got-want) > 1e-12 {
		t.Errorf("Accuracy %v != Predict-based %v", got, want)
	}
}
