package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the HTTP adapter over the transport-neutral Service
// (service.go): every handler is decode → service call → encode, plus the
// HTTP-specific concerns (method dispatch, status mapping, body bounds,
// latency middleware). No scheduling or manager logic lives here; the same
// Service is served by the framed stream transport in internal/transport.

// HandlerConfig bounds the HTTP adapter. The zero value takes the defaults.
type HandlerConfig struct {
	// MaxBodyBytes caps single-item request bodies (default 1 MiB). A
	// malformed giant payload is rejected with 413 before it can balloon
	// memory.
	MaxBodyBytes int64
	// MaxBatchBodyBytes caps batch request bodies (default MaxBatch KiB,
	// ~1KB of headroom per allowed item).
	MaxBatchBodyBytes int64
}

const (
	defaultMaxBodyBytes      = 1 << 20
	defaultMaxBatchBodyBytes = MaxBatch * 1024
)

func (c *HandlerConfig) fillDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.MaxBatchBodyBytes <= 0 {
		c.MaxBatchBodyBytes = defaultMaxBatchBodyBytes
	}
}

// Handler wraps a Manager with the HTTP/JSON API under default bounds:
//
//	POST /v1/jobs            {JobSpec}              -> JobStatus
//	GET  /v1/jobs            -> []JobStatus
//	GET  /v1/jobs/{id}       -> JobStatus
//	POST /v1/checkin         {CheckIn}              -> Assignment
//	POST /v1/checkin/batch   {CheckInBatchRequest}  -> CheckInBatchResponse
//	POST /v1/report          {Report}               -> {}
//	POST /v1/report/batch    {ReportBatchRequest}   -> ReportBatchResponse
//	GET  /v1/stats           -> Stats
//	GET  /v1/metrics         -> Metrics
//
// Every route is wrapped in a latency-recording middleware feeding the
// handler_latency_ms percentiles of /v1/metrics.
func Handler(m *Manager) http.Handler { return NewHandler(m, HandlerConfig{}) }

// NewHandler is Handler with explicit body bounds.
func NewHandler(m *Manager, cfg HandlerConfig) http.Handler {
	cfg.fillDefaults()
	svc := NewService(m, TransportHTTP)
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			h(w, r)
			m.metrics.observeLatency(route, time.Since(t0))
		})
	}
	handle("/v1/jobs", RouteJobs, func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var spec JobSpec
			if !decode(w, r, cfg.MaxBodyBytes, &spec) {
				return
			}
			st, err := svc.RegisterJob(spec)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, st, http.StatusCreated)
		case http.MethodGet:
			writeJSON(w, svc.Jobs(), http.StatusOK)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	handle("/v1/jobs/", RouteJobs, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			writeErr(w, svcErr(CodeInvalid, errors.New("bad job id")))
			return
		}
		st, err := svc.JobStatusByID(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, st, http.StatusOK)
	})
	handle("/v1/checkin", RouteCheckIn, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var ci CheckIn
		if !decode(w, r, cfg.MaxBodyBytes, &ci) {
			return
		}
		asg, err := svc.CheckIn(ci)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, asg, http.StatusOK)
	})
	handle("/v1/checkin/batch", RouteCheckInBatch, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req CheckInBatchRequest
		if !decode(w, r, cfg.MaxBatchBodyBytes, &req) {
			return
		}
		resp, err := svc.CheckInBatch(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, resp, http.StatusOK)
	})
	handle("/v1/report", RouteReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var rep Report
		if !decode(w, r, cfg.MaxBodyBytes, &rep) {
			return
		}
		if err := svc.Report(rep); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, struct{}{}, http.StatusOK)
	})
	handle("/v1/report/batch", RouteReportBatch, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req ReportBatchRequest
		if !decode(w, r, cfg.MaxBatchBodyBytes, &req) {
			return
		}
		resp, err := svc.ReportBatch(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, resp, http.StatusOK)
	})
	handle("/v1/stats", RouteOther, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, svc.Stats(), http.StatusOK)
	})
	handle("/v1/metrics", RouteOther, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, svc.Metrics(), http.StatusOK)
	})
	return mux
}

// Serve runs the HTTP API plus the deadline ticker until the listener fails
// or ctx is canceled; cancellation drains in-flight requests (up to
// shutdownGrace) before returning, so a SIGTERM never drops accepted work.
// A clean drain returns nil. cfg's zero value takes the default body
// bounds.
func Serve(ctx context.Context, addr string, m *Manager, cfg HandlerConfig) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick()
			case <-stop:
				return
			}
		}
	}()
	srv := &http.Server{Addr: addr, Handler: NewHandler(m, cfg), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// shutdownGrace bounds how long a canceled Serve (or stream Shutdown) waits
// for in-flight requests to complete.
const shutdownGrace = 10 * time.Second

// bodyPool recycles request-body read buffers across the hot endpoints.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decode parses the request body into v, first bounding it to limit bytes
// (an over-limit body answers 413 without being buffered past the limit).
// Types with a hand-rolled UnmarshalJSON (the hot wire types, see codec.go)
// are fed the raw bytes directly — a json.Decoder would tokenize the value
// once just to find its extent and then have the custom unmarshaler parse
// it again. Everything else takes the reflective decoder with the original
// unknown-field strictness, which the custom codecs replicate.
func decode(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if u, ok := v.(json.Unmarshaler); ok {
		buf := bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyPool.Put(buf)
		if _, err := buf.ReadFrom(r.Body); err != nil {
			writeErr(w, bodyErr(err))
			return false
		}
		if err := u.UnmarshalJSON(buf.Bytes()); err != nil {
			writeErr(w, svcErr(CodeInvalid, err))
			return false
		}
		return true
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, bodyErr(err))
		return false
	}
	return true
}

// bodyErr classifies a body-read failure: the MaxBytesReader limit maps to
// CodeTooLarge, everything else is a plain bad request.
func bodyErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return svcErr(CodeTooLarge, err)
	}
	return svcErr(CodeInvalid, err)
}

// httpStatus maps service error codes to HTTP statuses.
func httpStatus(code Code) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeBusy:
		return http.StatusConflict
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any, code int) {
	var buf []byte
	var err error
	// The hot wire types marshal themselves; calling them directly skips
	// encoding/json's re-validation pass over their output.
	if m, ok := v.(json.Marshaler); ok {
		buf, err = m.MarshalJSON()
	} else {
		buf, err = json.Marshal(v)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Explicit Content-Length keeps large batch replies out of chunked
	// framing.
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(code)
	_, _ = w.Write(buf)
}

// writeErr renders a service failure. The numeric `code` field carries the
// stable server.Code value so SDK clients classify failures without
// matching on the message or the HTTP status.
func writeErr(w http.ResponseWriter, err error) {
	body := struct {
		Error string `json:"error"`
		Code  int    `json:"code"`
	}{Error: err.Error(), Code: int(ErrCode(err))}
	writeJSON(w, body, httpStatus(ErrCode(err)))
}
