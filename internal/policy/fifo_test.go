package policy

import (
	"testing"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
)

func fifoOrder(q *fifoQueue) []job.ID {
	var out []job.ID
	q.ForEachOpen(func(j *job.Job) bool {
		out = append(out, j.ID)
		return true
	})
	return out
}

func idsEqual(a, b []job.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFIFOQueueArrivalOrder(t *testing.T) {
	q := newFIFOQueue()
	// Out-of-order IDs at distinct arrivals, plus an ID tie-break at the
	// same arrival instant.
	j3 := job.New(3, device.General, 1, 1, 10)
	j1 := job.New(1, device.General, 1, 1, 30)
	j2 := job.New(2, device.General, 1, 1, 20)
	j5 := job.New(5, device.General, 1, 1, 20)
	for _, j := range []*job.Job{j3, j1, j2, j5} {
		q.Open(j)
	}
	want := []job.ID{3, 2, 5, 1}
	if got := fifoOrder(&q); !idsEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}

	// A fulfilled request leaves the iteration but keeps its place: on
	// re-open, the job is back at its arrival position, not at the tail.
	q.Close(2)
	if got := fifoOrder(&q); !idsEqual(got, []job.ID{3, 5, 1}) {
		t.Fatalf("after close: %v", got)
	}
	q.Open(j2)
	if got := fifoOrder(&q); !idsEqual(got, want) {
		t.Fatalf("after reopen: %v, want %v", got, want)
	}

	// Duplicate opens are idempotent.
	q.Open(j2)
	if got := fifoOrder(&q); !idsEqual(got, want) {
		t.Fatalf("after duplicate open: %v", got)
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	q := newFIFOQueue()
	const n = 100
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = job.New(job.ID(i), device.General, 1, 1, simtime.Time(i))
		jobs[i].Start(simtime.Time(i))
		q.Open(jobs[i])
	}
	// Complete (and Drop) the first 80 jobs; the queue must compact and
	// release their pointers.
	for i := 0; i < 80; i++ {
		j := jobs[i]
		j.AddAssignment(simtime.Time(n))
		j.AddResponse(simtime.Time(n))
		j.CompleteRound(simtime.Time(n))
		if !j.Done() {
			t.Fatal("job must be done")
		}
		q.Drop(j.ID)
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d, want 20", q.Len())
	}
	if len(q.jobs) >= n {
		t.Fatalf("compaction never ran: backing holds %d entries", len(q.jobs))
	}
	want := make([]job.ID, 0, 20)
	for i := 80; i < n; i++ {
		want = append(want, job.ID(i))
	}
	if got := fifoOrder(&q); !idsEqual(got, want) {
		t.Fatalf("post-compaction order = %v", got)
	}
}
