// Multitenant: the paper's motivating scenario — a production fleet shared
// by keyboard-prediction, emoji-prediction, speech, and health-study jobs
// with overlapping device requirements. Shows per-category JCT under every
// scheduler and how Venn protects scarce-resource jobs.
package main

import (
	"fmt"
	"log"

	venn "venn"
	"venn/internal/stats"
)

// application describes one CL product team's job shape.
type application struct {
	name   string
	req    venn.Requirement
	demand int
	rounds int
	count  int
}

func main() {
	fleet := venn.GenerateFleet(venn.FleetConfig{NumDevices: 4000, Seed: 11})

	// Four application families with requirements that nest and overlap:
	// keyboard runs anywhere; speech needs compute; health analytics
	// needs memory; video super-resolution needs both.
	apps := []application{
		{"keyboard", venn.General, 60, 12, 4},
		{"speech", venn.ComputeRich, 40, 10, 3},
		{"health", venn.MemoryRich, 30, 8, 3},
		{"videoSR", venn.HighPerf, 25, 8, 2},
	}

	var jobs []*venn.Job
	arrival := venn.Duration(0)
	id := 0
	for _, app := range apps {
		for i := 0; i < app.count; i++ {
			j := venn.NewJob(id, app.req, app.demand, app.rounds, arrival)
			j.Name = fmt.Sprintf("%s-%d", app.name, i)
			jobs = append(jobs, j)
			id++
			arrival += 25 * venn.Minute
		}
	}

	schedulers := []struct {
		name string
		mk   func() venn.Scheduler
	}{
		{"Random", venn.NewRandom},
		{"FIFO", venn.NewFIFO},
		{"SRSF", venn.NewSRSF},
		{"Venn", func() venn.Scheduler { return venn.NewVenn(venn.SchedulerOptions{}) }},
	}

	fmt.Printf("%-8s  %-10s  %-10s  %-10s  %-10s\n", "sched", "keyboard", "speech", "health", "videoSR")
	for _, s := range schedulers {
		// Fresh copies of the hand-built jobs for each run.
		runJobs := make([]*venn.Job, len(jobs))
		for i, j := range jobs {
			nj := venn.NewJob(int(j.ID), j.Requirement, j.Demand, j.Rounds, venn.Duration(j.Arrival))
			nj.Name = j.Name
			runJobs[i] = nj
		}
		res, err := venn.Simulate(venn.SimConfig{
			Fleet: fleet, Jobs: runJobs, Scheduler: s.mk(), Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", s.name)
		for _, app := range apps {
			var jcts []float64
			for _, j := range res.Completed {
				if j.Requirement.Name == app.req.Name {
					jcts = append(jcts, j.JCT().Minutes())
				}
			}
			fmt.Printf("  %7.0f min", stats.Mean(jcts))
		}
		fmt.Println()
	}
	fmt.Println("\n(avg JCT per application family; Venn should cut the scarce-resource families most)")
}
