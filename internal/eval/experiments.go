package eval

import (
	"sort"

	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/stats"
	"venn/internal/trace"
	"venn/internal/workload"
)

// SpeedupOverSubset computes r's average-JCT improvement over baseline for
// the jobs that satisfy keep (paired over jobs both runs completed).
func SpeedupOverSubset(r, baseline *sim.Result, keep func(*job.Job) bool) float64 {
	var mine, theirs float64
	n := 0
	for _, j := range r.Completed {
		if !keep(j) {
			continue
		}
		if base, ok := baseline.JobJCT(j.ID); ok {
			mine += j.JCT().Seconds()
			theirs += base
			n++
		}
	}
	if n == 0 || mine <= 0 {
		return 0
	}
	return theirs / mine
}

// --- Table 1: average JCT improvement over Random per workload ---

// Table1Result holds the Table 1 reproduction: per workload scenario, the
// average JCT speed-up of FIFO, SRSF, and Venn over optimized Random
// matching.
type Table1Result struct {
	Scenarios  []workload.Scenario
	Schedulers []string
	// Speedup[scenario][scheduler] averaged over seeds.
	Speedup map[workload.Scenario]map[string]float64
	Seeds   int
}

// Table1 reproduces Table 1 at the given scale, averaging over `seeds`
// independent workload/fleet draws.
func Table1(scale Scale, seeds int) (*Table1Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Table1Result{
		Scenarios:  workload.Scenarios(),
		Schedulers: []string{"FIFO", "SRSF", "Venn"},
		Speedup:    make(map[workload.Scenario]map[string]float64),
		Seeds:      seeds,
	}
	setups := make([]Setup, 0, len(res.Scenarios)*seeds)
	for _, sc := range res.Scenarios {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(1000*int(sc)+s))
			setup.Jobs.Scenario = sc
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory { return StandardSchedulers() })
	if err != nil {
		return nil, err
	}
	for i, sc := range res.Scenarios {
		acc := map[string][]float64{}
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			for _, name := range res.Schedulers {
				acc[name] = append(acc[name], cmp.Speedup(name, "Random"))
			}
		}
		res.Speedup[sc] = map[string]float64{}
		for _, name := range res.Schedulers {
			res.Speedup[sc][name] = stats.Mean(acc[name])
		}
	}
	return res, nil
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	t := NewTable("Table 1: average JCT improvement over Random matching",
		"Workload", "FIFO", "SRSF", "Venn")
	for _, sc := range r.Scenarios {
		row := []any{sc.String()}
		for _, name := range r.Schedulers {
			row = append(row, FormatSpeedup(r.Speedup[sc][name]))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper: FIFO 1.38-1.64x, SRSF 1.41-1.69x, Venn 1.63-1.88x)"
	return t.Render()
}

// --- Table 2: improvement by total-demand percentile ---

// Table2Result breaks Venn's improvement down by job total demand: the
// speed-up over Random among the jobs in the lowest 25%, 50%, and 75% of
// total demand, per workload.
type Table2Result struct {
	Scenarios   []workload.Scenario
	Percentiles []float64
	// Speedup[scenario][i] corresponds to Percentiles[i].
	Speedup map[workload.Scenario][]float64
}

// Table2 reproduces Table 2 at the given scale.
func Table2(scale Scale, seeds int) (*Table2Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Table2Result{
		Scenarios:   workload.Scenarios(),
		Percentiles: []float64{25, 50, 75},
		Speedup:     make(map[workload.Scenario][]float64),
	}
	setups := make([]Setup, 0, len(res.Scenarios)*seeds)
	for _, sc := range res.Scenarios {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(2000*int(sc)+s))
			setup.Jobs.Scenario = sc
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory {
		return pick(StandardSchedulers(), "Random", "Venn")
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range res.Scenarios {
		acc := make([][]float64, len(res.Percentiles))
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			venn, random := cmp.Results["Venn"], cmp.Results["Random"]
			totals := completedTotals(venn)
			for i, p := range res.Percentiles {
				cut := stats.Percentile(totals, p)
				sp := SpeedupOverSubset(venn, random, func(j *job.Job) bool {
					return float64(j.TotalDemand()) <= cut
				})
				if sp > 0 {
					acc[i] = append(acc[i], sp)
				}
			}
		}
		row := make([]float64, len(res.Percentiles))
		for i := range row {
			row[i] = stats.Mean(acc[i])
		}
		res.Speedup[sc] = row
	}
	return res, nil
}

func completedTotals(r *sim.Result) []float64 {
	out := make([]float64, 0, len(r.Completed))
	for _, j := range r.Completed {
		out = append(out, float64(j.TotalDemand()))
	}
	sort.Float64s(out)
	return out
}

// Render formats the result like the paper's Table 2.
func (r *Table2Result) Render() string {
	t := NewTable("Table 2: Venn JCT improvement by total-demand percentile (vs Random)",
		"Workload", "25th", "50th", "75th")
	for _, sc := range r.Scenarios {
		row := []any{sc.String()}
		for _, v := range r.Speedup[sc] {
			row = append(row, FormatSpeedup(v))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper trend: smaller jobs benefit most, up to 11.6x at the 25th percentile)"
	return t.Render()
}

// --- Table 3: improvement by eligibility category ---

// Table3Result breaks Venn's improvement down by job device-requirement
// category per workload.
type Table3Result struct {
	Scenarios  []workload.Scenario
	Categories []string
	Speedup    map[workload.Scenario][]float64
}

// Table3 reproduces Table 3 at the given scale.
func Table3(scale Scale, seeds int) (*Table3Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	cats := deviceCategories()
	res := &Table3Result{
		Scenarios:  workload.Scenarios(),
		Categories: cats,
		Speedup:    make(map[workload.Scenario][]float64),
	}
	setups := make([]Setup, 0, len(res.Scenarios)*seeds)
	for _, sc := range res.Scenarios {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(3000*int(sc)+s))
			setup.Jobs.Scenario = sc
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory {
		return pick(StandardSchedulers(), "Random", "Venn")
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range res.Scenarios {
		acc := make([][]float64, len(cats))
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			venn, random := cmp.Results["Venn"], cmp.Results["Random"]
			for i, cat := range cats {
				name := cat
				sp := SpeedupOverSubset(venn, random, func(j *job.Job) bool {
					return j.Requirement.Name == name
				})
				if sp > 0 {
					acc[i] = append(acc[i], sp)
				}
			}
		}
		row := make([]float64, len(cats))
		for i := range row {
			row[i] = stats.Mean(acc[i])
		}
		res.Speedup[sc] = row
	}
	return res, nil
}

// Render formats the result like the paper's Table 3.
func (r *Table3Result) Render() string {
	t := NewTable("Table 3: Venn JCT improvement by requirement category (vs Random)",
		append([]string{"Workload"}, r.Categories...)...)
	for _, sc := range r.Scenarios {
		row := []any{sc.String()}
		for _, v := range r.Speedup[sc] {
			row = append(row, FormatSpeedup(v))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper trend: jobs asking for scarcer resources benefit more)"
	return t.Render()
}

// --- Table 4: biased workloads case study ---

// Table4Result holds the biased-workload case study: per bias, the speed-up
// of FIFO, SRSF, and Venn over Random.
type Table4Result struct {
	Biases     []workload.Bias
	Schedulers []string
	Speedup    map[workload.Bias]map[string]float64
}

// Table4 reproduces Table 4 at the given scale.
func Table4(scale Scale, seeds int) (*Table4Result, error) {
	if seeds <= 0 {
		seeds = 3
	}
	res := &Table4Result{
		Biases:     []workload.Bias{workload.BiasGeneral, workload.BiasCompute, workload.BiasMemory, workload.BiasResource},
		Schedulers: []string{"FIFO", "SRSF", "Venn"},
		Speedup:    make(map[workload.Bias]map[string]float64),
	}
	setups := make([]Setup, 0, len(res.Biases)*seeds)
	for _, bias := range res.Biases {
		for s := 0; s < seeds; s++ {
			setup := NewSetup(scale, int64(4000*int(bias)+s))
			setup.Jobs.Bias = bias
			setups = append(setups, setup)
		}
	}
	cmps, err := CompareMany(setups, func(int) map[string]SchedulerFactory { return StandardSchedulers() })
	if err != nil {
		return nil, err
	}
	for i, bias := range res.Biases {
		acc := map[string][]float64{}
		for s := 0; s < seeds; s++ {
			cmp := cmps[i*seeds+s]
			for _, name := range res.Schedulers {
				acc[name] = append(acc[name], cmp.Speedup(name, "Random"))
			}
		}
		res.Speedup[bias] = map[string]float64{}
		for _, name := range res.Schedulers {
			res.Speedup[bias][name] = stats.Mean(acc[name])
		}
	}
	return res, nil
}

// Render formats the result like the paper's Table 4.
func (r *Table4Result) Render() string {
	t := NewTable("Table 4: average JCT improvement on biased workloads (vs Random)",
		"Workload", "FIFO", "SRSF", "Venn")
	for _, bias := range r.Biases {
		row := []any{bias.String()}
		for _, name := range r.Schedulers {
			row = append(row, FormatSpeedup(r.Speedup[bias][name]))
		}
		t.AddRow(row...)
	}
	t.Caption = "(paper: Venn 1.94-2.27x across biased workloads)"
	return t.Render()
}

// --- shared helpers ---

func pick(all map[string]SchedulerFactory, names ...string) map[string]SchedulerFactory {
	out := make(map[string]SchedulerFactory, len(names))
	for _, n := range names {
		if f, ok := all[n]; ok {
			out[n] = f
		}
	}
	return out
}

func deviceCategories() []string {
	out := make([]string, 0, 4)
	for _, c := range categoriesOrdered() {
		out = append(out, c)
	}
	return out
}

func categoriesOrdered() []string {
	return []string{"General", "Compute-Rich", "Memory-Rich", "High-Perf"}
}

// JobTraceSummary summarizes a synthetic demand trace (Figure 8b).
func JobTraceSummary(n int, seed int64) (rounds, demand stats.Summary) {
	model := trace.DefaultJobTraceModel()
	specs := model.Generate(n, stats.NewRNG(seed))
	rs := make([]float64, n)
	ds := make([]float64, n)
	for i, s := range specs {
		rs[i] = float64(s.Rounds)
		ds[i] = float64(s.DemandPerRound)
	}
	return stats.Summarize(rs), stats.Summarize(ds)
}
