package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"venn/internal/device"
	"venn/internal/simtime"
	"venn/internal/stats"
)

func TestCapacityModelRange(t *testing.T) {
	m := DefaultCapacityModel()
	rng := stats.NewRNG(1)
	for i := 0; i < 5000; i++ {
		cpu, mem := m.Sample(rng)
		if cpu < 0 || cpu > 1 || mem < 0 || mem > 1 {
			t.Fatalf("scores out of range: %v %v", cpu, mem)
		}
	}
}

func TestCapacityStrataOrdering(t *testing.T) {
	m := DefaultCapacityModel()
	devs := m.GenerateDevices(8000, stats.NewRNG(2))
	counts := map[string]int{}
	for _, d := range devs {
		for _, c := range device.Categories() {
			if c.Eligible(d) {
				counts[c.Name]++
			}
		}
	}
	if counts["General"] != len(devs) {
		t.Error("every device must be General-eligible")
	}
	hp := counts["High-Perf"]
	if hp == 0 {
		t.Fatal("no High-Perf devices at all")
	}
	for _, mid := range []string{"Compute-Rich", "Memory-Rich"} {
		if counts[mid] <= hp || counts[mid] >= counts["General"] {
			t.Errorf("%s count %d must be between High-Perf %d and General %d",
				mid, counts[mid], hp, counts["General"])
		}
	}
	// High-Perf should be a scarce-but-present stratum (~10-35%).
	frac := float64(hp) / float64(len(devs))
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("High-Perf fraction %.2f outside plausible range", frac)
	}
}

func TestCellProbabilitiesSumToOne(t *testing.T) {
	m := DefaultCapacityModel()
	grid := device.NewGrid(device.Categories())
	probs := m.CellProbabilities(grid, stats.NewRNG(3), 10000)
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestAvailabilityIntervalsWellFormed(t *testing.T) {
	m := DefaultAvailabilityModel()
	rng := stats.NewRNG(4)
	horizon := 5 * simtime.Day
	for i := 0; i < 200; i++ {
		ivs := m.Generate(rng, horizon)
		for k, iv := range ivs {
			if iv.End <= iv.Start {
				t.Fatalf("empty interval %v", iv)
			}
			if iv.End > simtime.Time(horizon) {
				t.Fatalf("interval exceeds horizon: %v", iv)
			}
			if k > 0 && iv.Start <= ivs[k-1].End {
				t.Fatalf("intervals overlap or touch: %v then %v", ivs[k-1], iv)
			}
		}
	}
}

func TestIntervalContainsAndDuration(t *testing.T) {
	iv := Interval{Start: 100, End: 200}
	if !iv.Contains(100) || iv.Contains(200) || iv.Contains(99) {
		t.Error("Contains half-open semantics broken")
	}
	if iv.Duration() != 100 {
		t.Error("Duration wrong")
	}
}

func TestMergeIntervalsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		// Build arbitrary sorted intervals, then merge.
		var ivs []Interval
		var cur simtime.Time
		for _, r := range raw {
			start := cur + simtime.Time(r%100)
			end := start + simtime.Time(r%50) + 1
			ivs = append(ivs, Interval{Start: start, End: end})
			cur = start
		}
		// Ensure sorted input (construction above is monotone in Start).
		merged := mergeIntervals(ivs)
		for i := 1; i < len(merged); i++ {
			if merged[i].Start <= merged[i-1].End {
				return false
			}
		}
		// Total coverage must be preserved for every probe point.
		for _, p := range []simtime.Time{0, 10, 50, 100, 500, 1000} {
			if atTime(ivs, p) != atTime(merged, p) {
				// atTime assumes sorted non-overlapping input for ivs,
				// so only check when ivs is already well-formed.
				continue
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnlineFractionDiurnal(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{NumDevices: 600, Horizon: 4 * simtime.Day, Seed: 5})
	frac := OnlineFraction(fleet.Intervals, fleet.Horizon, simtime.Hour)
	if len(frac) == 0 {
		t.Fatal("no samples")
	}
	lo, hi := 1.0, 0.0
	for _, f := range frac[12 : len(frac)-12] {
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of range: %v", f)
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi <= lo*1.3 {
		t.Errorf("no diurnal variation: lo=%.3f hi=%.3f", lo, hi)
	}
}

func TestJobTraceBounds(t *testing.T) {
	m := DefaultJobTraceModel()
	specs := m.Generate(2000, stats.NewRNG(6))
	for _, s := range specs {
		if s.Rounds < m.MinRounds || s.Rounds > m.MaxRounds {
			t.Fatalf("rounds %d out of [%d,%d]", s.Rounds, m.MinRounds, m.MaxRounds)
		}
		if s.DemandPerRound < m.MinDemand || s.DemandPerRound > m.MaxDemand {
			t.Fatalf("demand %d out of [%d,%d]", s.DemandPerRound, m.MinDemand, m.MaxDemand)
		}
		if s.TotalDemand() != s.Rounds*s.DemandPerRound {
			t.Fatal("TotalDemand arithmetic broken")
		}
	}
}

func TestJobTraceSplitsPartition(t *testing.T) {
	m := DefaultJobTraceModel()
	specs := m.Generate(500, stats.NewRNG(7))
	small, large := SplitByTotalDemand(specs)
	if len(small)+len(large) != len(specs) {
		t.Errorf("total-demand split loses jobs: %d+%d != %d", len(small), len(large), len(specs))
	}
	if len(small) == 0 || len(large) == 0 {
		t.Error("heavy-tailed trace should have jobs on both sides of the mean")
	}
	low, high := SplitByRoundDemand(specs)
	if len(low)+len(high) != len(specs) {
		t.Error("round-demand split loses jobs")
	}
	// All "small" jobs must be smaller than all mean-based boundary.
	for _, s := range small {
		for _, l := range large {
			if s.TotalDemand() > l.TotalDemand() {
				// allowed: split is by mean, not by rank — but a small
				// job can never exceed the max large job.
				_ = l
			}
		}
	}
}

func TestDemandPercentileThresholds(t *testing.T) {
	specs := []JobSpec{{Rounds: 1, DemandPerRound: 10}, {Rounds: 1, DemandPerRound: 20}, {Rounds: 1, DemandPerRound: 30}}
	th := DemandPercentileThresholds(specs, []float64{0, 50, 100})
	if th[0] != 10 || th[1] != 20 || th[2] != 30 {
		t.Errorf("thresholds = %v", th)
	}
}

func TestFleetSaveLoadRoundtrip(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{NumDevices: 30, Horizon: simtime.Day, Seed: 8})
	var buf bytes.Buffer
	if err := fleet.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Devices) != len(fleet.Devices) {
		t.Fatalf("device count changed: %d -> %d", len(fleet.Devices), len(loaded.Devices))
	}
	for i := range fleet.Devices {
		if fleet.Devices[i].CPU != loaded.Devices[i].CPU {
			t.Fatal("device scores changed in roundtrip")
		}
		if len(fleet.Intervals[i]) != len(loaded.Intervals[i]) {
			t.Fatal("interval count changed in roundtrip")
		}
	}
}

func TestLoadFleetRejectsCorrupt(t *testing.T) {
	if _, err := LoadFleet(bytes.NewBufferString(`{"devices":[{"ID":0}],"intervals":[],"horizon":1}`)); err == nil {
		t.Error("mismatched devices/intervals must error")
	}
	if _, err := LoadFleet(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("garbage must error")
	}
}

func TestFleetReset(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{NumDevices: 5, Horizon: simtime.Day, Seed: 9})
	fleet.Devices[0].LastTaskDay = 3
	fleet.Reset()
	if fleet.Devices[0].LastTaskDay != -1 {
		t.Error("Reset must clear LastTaskDay")
	}
}

func TestGenerateFleetDeterminism(t *testing.T) {
	a := GenerateFleet(FleetConfig{NumDevices: 50, Horizon: simtime.Day, Seed: 10})
	b := GenerateFleet(FleetConfig{NumDevices: 50, Horizon: simtime.Day, Seed: 10})
	for i := range a.Devices {
		if a.Devices[i].CPU != b.Devices[i].CPU || len(a.Intervals[i]) != len(b.Intervals[i]) {
			t.Fatal("same seed must reproduce the same fleet")
		}
	}
}

func TestFleetConfigDefaults(t *testing.T) {
	f := GenerateFleet(FleetConfig{NumDevices: 10, Seed: 11})
	if f.Horizon <= 0 {
		t.Error("defaulted horizon must be positive")
	}
	counts := f.CategoryCounts()
	if counts["General"] != 10 {
		t.Errorf("General count = %d", counts["General"])
	}
}
