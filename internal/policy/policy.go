// Package policy is the scheduling-policy layer: the decision surface every
// part of the stack — the simulator, the live server, the CLIs — programs
// against, plus a registry of the built-in policies. A policy owns job
// admission, assignment ordering, and completion bookkeeping; everything
// else (device registries, transports, federation) is policy-agnostic and
// selects its scheduler by name at startup.
//
// Built-in policies:
//
//   - "venn"   — the paper's scheduler: IRS contention-aware job ordering
//     plus tier-based device matching (internal/core).
//   - "fifo"   — FIFO request order with tier-based matching still in force
//     (the paper's "Venn w/o scheduling" ablation, promoted from the former
//     core.Options.DisableScheduling knob).
//   - "srsf"   — shortest remaining service first (internal/sched).
//   - "random" — optimized random matching (internal/sched); deterministic
//     for a fixed environment seed, since its priorities come from the
//     bound environment's private RNG stream.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"venn/internal/core"
	"venn/internal/sched"
	"venn/internal/sim"
)

// Policy is the scheduling decision surface. It is exactly the simulator's
// scheduler contract — the live server drives it with the same lifecycle
// events the simulation engine does, which is what lets one implementation
// serve both worlds unchanged.
type Policy = sim.Scheduler

// Config carries the construction-time knobs a policy factory may consult.
type Config struct {
	// Core configures the Venn family (tiers, epsilon, matching). Factories
	// that take no options ignore it. The zero value means defaults.
	Core core.Options
}

// Factory builds one policy instance. Instances are single-owner: they are
// driven under whatever lock serializes the caller's lifecycle events.
type Factory func(cfg Config) Policy

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a policy factory under name (case-insensitive). Registering
// an existing name replaces it — tests use this to inject instrumented
// policies.
func Register(name string, f Factory) {
	regMu.Lock()
	registry[strings.ToLower(name)] = f
	regMu.Unlock()
}

// New builds the named policy, or an error naming the valid choices.
func New(name string, cfg Config) (Policy, error) {
	regMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(cfg), nil
}

// MustNew is New for statically known names; it panics on an unknown one.
func MustNew(name string, cfg Config) Policy {
	p, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Valid reports whether name resolves in the registry.
func Valid(name string) bool {
	regMu.RLock()
	_, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	return ok
}

// Names lists the registered policy names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Default is the policy venndaemon serves when none is requested.
const Default = "venn"

func init() {
	Register("venn", func(cfg Config) Policy { return core.New(cfg.Core) })
	Register("fifo", func(cfg Config) Policy { return NewFIFOMatch(cfg.Core) })
	Register("srsf", func(Config) Policy { return sched.NewSRSF() })
	Register("random", func(Config) Policy { return sched.NewRandom() })
}
