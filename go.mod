module venn

go 1.23
