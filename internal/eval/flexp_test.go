package eval

import (
	"testing"
)

func TestFigure4Contention(t *testing.T) {
	if testing.Short() {
		t.Skip("FL experiment")
	}
	res, err := Figure4(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	one := res.FinalAccuracy(1)
	many := res.FinalAccuracy(res.JobCounts[len(res.JobCounts)-1])
	if one <= 0.3 {
		t.Errorf("single-job final accuracy %.3f too low to be meaningful", one)
	}
	if many > one+0.02 {
		t.Errorf("contention should not improve accuracy: 1 job %.3f vs most jobs %.3f", one, many)
	}
}

func TestFigure9Schedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("FL experiment")
	}
	res, err := Figure9(ScaleQuick, 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, name := range res.Schedulers {
		if res.Final[name] <= 0.3 {
			t.Errorf("%s final accuracy %.3f too low", name, res.Final[name])
		}
	}
	// Final accuracy must be scheduler-independent (within tolerance).
	lo, hi := 1.0, 0.0
	for _, name := range res.Schedulers {
		if res.Final[name] < lo {
			lo = res.Final[name]
		}
		if res.Final[name] > hi {
			hi = res.Final[name]
		}
	}
	if hi-lo > 0.15 {
		t.Errorf("final accuracies diverge too much across schedulers: %.3f..%.3f", lo, hi)
	}
}
