// Package cluster federates several venndaemons into one serving fleet.
// Device ownership is sharded across the member daemons by a consistent-hash
// ring (FNV-1a over the device ID, the same hash family the manager's lock
// stripes use), and a request that lands on a non-owner is transparently
// forwarded peer-to-peer over the persistent framed stream transport
// (internal/transport) using the multiplexing client.StreamClient pool — any
// daemon can accept any check-in or report, single or batch.
//
// Membership is static configuration: every member is told the full member
// list (venndaemon -peers) and identifies itself by its published stream
// address (-node-id, defaulting to -stream-addr). A lightweight health loop
// pings each peer periodically; a peer that misses FailAfter consecutive
// probes is marked down and forwarding to it falls back to applying the
// request locally, so a dead peer degrades ownership locality instead of
// erroring requests. The ring plus the alive-peer table is published as an
// immutable snapshot behind an atomic pointer — the routing decision on the
// serving hot path is lock-free, mirroring the scheduler's PlanSnapshot
// pattern.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 128 points per member
// keeps the expected ownership imbalance under ~15% for small clusters while
// the whole ring for dozens of members still fits comfortably in cache.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring mapping keys (device IDs) to
// member node IDs. Each member contributes vnodes points placed by FNV-1a
// over "<member>#<index>"; a key is owned by the first point clockwise from
// the key's own FNV-1a hash. Immutability makes a *Ring safe to share across
// goroutines without synchronization.
type Ring struct {
	vnodes  int
	hashes  []uint32 // sorted point hashes
	owners  []string // owners[i] owns the arc ending at hashes[i]
	members []string // sorted, deduplicated member IDs
}

// NewRing builds a ring over the given member IDs with vnodes virtual nodes
// per member (<=0 takes DefaultVNodes). Members are deduplicated; their
// input order does not affect the ring, so every daemon configured with the
// same member set derives the same ownership no matter how its -peers flag
// was ordered.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, dup := seen[m]; !dup && m != "" {
			seen[m] = struct{}{}
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	type point struct {
		hash  uint32
		owner string
	}
	points := make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		base := m + "#"
		for i := 0; i < vnodes; i++ {
			points = append(points, point{hash: ringHash(base + strconv.Itoa(i)), owner: m})
		}
	}
	// Ties (two members hashing one point) are broken by owner order so the
	// ring stays a pure function of the member set.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].owner < points[j].owner
	})
	r.hashes = make([]uint32, len(points))
	r.owners = make([]string, len(points))
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owners[i] = p.owner
	}
	return r
}

// Owner returns the member owning key: the first ring point at or clockwise
// after the key's hash (wrapping at the top). An empty ring owns nothing and
// returns "".
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := ringHash(key)
	// Binary search for the first point >= h.
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		lo = 0
	}
	return r.owners[lo]
}

// Members returns the deduplicated, sorted member IDs.
func (r *Ring) Members() []string { return r.members }

// Size is the number of members on the ring.
func (r *Ring) Size() int { return len(r.members) }

// VNodes is the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// ringHash places keys and vnode points on the ring: FNV-1a (the hash
// family the manager's lock stripes use) followed by a murmur3-style
// avalanche finalizer. Raw FNV-1a clusters badly on the near-identical
// strings members produce ("host:9001#17" vs "host:9002#17"), leaving >20%
// ownership imbalance even at 128 vnodes; the finalizer is a bijection on
// uint32 — it changes no equality relations, only disperses the points —
// and brings the imbalance under the 15% budget.
func ringHash(s string) uint32 {
	return fmix32(fnv32a(s))
}

// fnv32a is FNV-1a over s, allocation-free (hash/fnv forces a heap handle on
// the hot path). It matches hash/fnv's New32a for byte-identical input.
func fnv32a(s string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// fmix32 is the murmur3 32-bit finalizer: a cheap bijective avalanche.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
