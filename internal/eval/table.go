package eval

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table builder for experiment reports.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// FormatSpeedup renders a speed-up factor as the paper prints them (1.88x).
func FormatSpeedup(x float64) string { return fmt.Sprintf("%.2fx", x) }
