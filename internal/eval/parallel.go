package eval

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Workers returns the experiment worker-pool size: GOMAXPROCS by default,
// overridable with the VENN_WORKERS environment variable (1 restores fully
// sequential execution).
func Workers() int {
	if s := os.Getenv("VENN_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// slots is the process-wide bound on extra experiment goroutines. Using one
// shared pool (instead of one per call) keeps nested fan-outs — a sweep over
// setups whose Compare fans out over schedulers — from multiplying into
// workers² goroutines.
var (
	slotsOnce sync.Once
	slots     chan struct{}
)

// acquireSlot reports whether a worker slot was free; callers that get none
// must run the work inline, which guarantees progress without blocking (and
// therefore cannot deadlock however deeply calls nest).
func acquireSlot() bool {
	slotsOnce.Do(func() { slots = make(chan struct{}, Workers()) })
	select {
	case slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func releaseSlot() { <-slots }

// WorkerSlot blocks until a shared worker slot is free and returns its
// release func. Top-level launchers (cmd/vennbench) draw on it so their
// fan-out and the nested experiment parallelism share one process-wide
// bound instead of stacking two pools. Safe against deadlock because slot
// holders never block on further slots — nested parallelEach falls back to
// inline execution when the pool is exhausted.
func WorkerSlot() (release func()) {
	slotsOnce.Do(func() { slots = make(chan struct{}, Workers()) })
	slots <- struct{}{}
	return func() { <-slots }
}

// parallelEach runs fn(0), ..., fn(n-1), each exactly once, fanning out
// across free worker slots and running the remainder inline. It returns the
// lowest-index error. Callers must write results to index-addressed slots so
// the outcome is independent of scheduling order — every experiment run is
// deterministic given its own seed, so fan-out cannot change results.
func parallelEach(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if acquireSlot() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer releaseSlot()
				errs[i] = fn(i)
			}()
		} else {
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
