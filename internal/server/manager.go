// Package server hosts Venn as a live, wall-clock resource manager — the
// standalone service of Figure 6. CL jobs register resource requests over
// HTTP, edge devices check in as they become available, Venn assigns each
// checked-in device to a job (step 2 of the paper's workflow), and devices
// report results or drop out. The scheduling core is exactly the simulator's
// (internal/core); this package adapts it to real time.
//
// Concurrency model: per-device state (the device registry and busy flags)
// is striped across Config.Shards lock shards keyed by a hash of the device
// ID, so check-ins from different devices never contend on one global lock.
// The scheduler core (Venn, job lifecycle, deadlines) stays behind a single
// mutex, but that mutex now guards only job-state mutation and plan
// construction: the finished cell plan is published as an immutable,
// epoch-versioned snapshot (core.PlanSnapshot) that the check-in paths read
// without any lock. A check-in whose device provably has no eligible open
// request under the fresh snapshot is answered entirely outside the core
// mutex — in a surplus fleet (most devices, most of the time) the serving
// path touches only its shard stripe and a few atomics. Supply history is
// likewise kept off the hot path: check-in counts accumulate in per-cell
// atomic counters and drain into the TSDB at the next core section (or
// Tick), trading sub-second recording precision — irrelevant at the 24h
// supply-averaging window — for a lock-free fast path. The batch entry
// points (CheckInBatch, ReportBatch) amortize one core-mutex acquisition
// across every item that still needs the scheduler.
//
// Check-ins that do need the scheduler — and reports, and job arrivals —
// commit through the flat-combining pipeline in combiner.go: under
// contention callers enqueue typed core ops and a single combiner applies
// them in rounds, one mutex acquisition and one maintenance pass per round
// instead of per caller; uncontended callers keep the historical direct
// lock. Lock order is always: shard locks in ascending shard index, then
// the core mutex (the combiner takes no shard locks).
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"venn/internal/core"
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/obs"
	"venn/internal/policy"
	"venn/internal/sim"
	"venn/internal/simtime"
	"venn/internal/stats"
	"venn/internal/tsdb"
)

// Errors returned by the manager.
var (
	ErrUnknownJob      = errors.New("server: unknown job")
	ErrUnknownCategory = errors.New("server: requirement must be one of the configured categories")
	ErrDeviceBusy      = errors.New("server: device already has a task today")
	ErrUnknownDevice   = errors.New("server: unknown device")
	errDeviceIDMissing = errors.New("server: device_id required")
)

// MaxBatch bounds the number of items one batch request may carry.
const MaxBatch = 8192

// defaultShards is the device-state lock striping factor. 64 comfortably
// exceeds the core counts this runs on, so two concurrent check-ins almost
// never hash to the same stripe.
const defaultShards = 64

// JobSpec is a job registration request.
type JobSpec struct {
	Name           string  `json:"name"`
	Category       string  `json:"category"` // one of the configured requirement names
	DemandPerRound int     `json:"demand_per_round"`
	Rounds         int     `json:"rounds"`
	TaskScale      float64 `json:"task_scale,omitempty"`
}

// JobStatus is the externally visible job state.
type JobStatus struct {
	ID              int     `json:"id"`
	Name            string  `json:"name"`
	Category        string  `json:"category"`
	State           string  `json:"state"`
	Round           int     `json:"round"`
	Rounds          int     `json:"rounds"`
	DemandPerRound  int     `json:"demand_per_round"`
	Assigned        int     `json:"assigned"`
	Responses       int     `json:"responses"`
	CompletedRounds int     `json:"completed_rounds"`
	JCTSeconds      float64 `json:"jct_seconds,omitempty"`
}

// CheckIn is a device's availability announcement.
type CheckIn struct {
	DeviceID string  `json:"device_id"`
	CPU      float64 `json:"cpu"` // normalized [0,1]
	Mem      float64 `json:"mem"` // normalized [0,1]
}

// Assignment is the manager's reply to a check-in. The unassigned reply is
// the empty object: at load-test rates the overwhelmingly common answer is
// "no work", and omitting the false flag meaningfully shrinks batch
// responses (absent fields decode to their zero values in every client).
type Assignment struct {
	Assigned bool   `json:"assigned,omitempty"`
	JobID    int    `json:"job_id,omitempty"`
	JobName  string `json:"job_name,omitempty"`
	Round    int    `json:"round,omitempty"`
	// Policy attributes the assignment to the scheduling policy that made
	// it. It rides every transport unchanged (batch, stream, cluster
	// forwarding), so in a federation of daemons running different
	// policies each assignment still names its decider.
	Policy string `json:"policy,omitempty"`
}

// CheckInResult is one element of a batch check-in reply. Error is set when
// that item was rejected (busy device, missing device_id); the other items
// of the batch are unaffected.
type CheckInResult struct {
	Assignment
	Error string `json:"error,omitempty"`
}

// Report is a device's end-of-task message.
type Report struct {
	DeviceID        string  `json:"device_id"`
	JobID           int     `json:"job_id"`
	OK              bool    `json:"ok"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// ReportResult is one element of a batch report reply.
type ReportResult struct {
	Error string `json:"error,omitempty"`
}

// Batch wire types shared by the HTTP layer and the client SDK.
type (
	// CheckInBatchRequest is the POST /v1/checkin/batch payload.
	CheckInBatchRequest struct {
		CheckIns []CheckIn `json:"checkins"`
	}
	// CheckInBatchResponse is its reply; Results[i] answers CheckIns[i].
	CheckInBatchResponse struct {
		Results []CheckInResult `json:"results"`
	}
	// ReportBatchRequest is the POST /v1/report/batch payload.
	ReportBatchRequest struct {
		Reports []Report `json:"reports"`
	}
	// ReportBatchResponse is its reply; Results[i] answers Reports[i].
	ReportBatchResponse struct {
		Results []ReportResult `json:"results"`
	}
)

// Stats summarizes the manager for monitoring.
type Stats struct {
	Policy         string  `json:"policy"`
	ActiveJobs     int     `json:"active_jobs"`
	CompletedJobs  int     `json:"completed_jobs"`
	CheckIns       int     `json:"check_ins"`
	Assignments    int     `json:"assignments"`
	Reports        int     `json:"reports"`
	Failures       int     `json:"failures"`
	Aborts         int     `json:"aborts"`
	AvgJCTSeconds  float64 `json:"avg_jct_seconds"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	SupplyPerHour  float64 `json:"supply_per_hour"`
	PlanRebuilds   int     `json:"plan_rebuilds"`
	PlanPatches    int     `json:"plan_patches"`
	QueuedRequests int     `json:"queued_requests"`
}

// Config parameterizes the manager.
type Config struct {
	// Categories are the requirement strata jobs may ask for. Defaults
	// to the four standard strata.
	Categories []device.Requirement
	// Policy selects the primary scheduling policy by registry name
	// (internal/policy: "venn", "fifo", "srsf", "random"); empty means
	// policy.Default. Unknown names panic in NewManager — the CLIs
	// validate with policy.Valid before constructing.
	Policy string
	// ShadowPolicies lists policies that observe the primary's event
	// stream and record would-be assignments without applying them (see
	// shadow.go). Each shadow runs on its own goroutine behind a bounded
	// queue, off every serving path.
	ShadowPolicies []string
	// Seed seeds the scheduling environment's RNG (the Random policy's
	// priority stream) and the shadow mirrors; 0 derives a seed from the
	// clock. Fixing it makes seeded-traffic replays (vennload -ab)
	// reproducible.
	Seed int64
	// Options are scheduler options for the Venn policy family (primary
	// and shadows alike).
	Options core.Options
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// TSDBWindow is the supply-averaging window (default 24h).
	TSDBWindow simtime.Duration
	// Shards is the device-state lock striping factor (default 64; 1
	// reproduces the former single-lock behavior for baselines).
	Shards int
	// DeviceTTL evicts devices that have not checked in for this long
	// (swept incrementally by Tick), bounding registry growth under fleet
	// churn. 0 disables eviction (the library default; venndaemon enables
	// it with a 24h default). Applies to busy devices too: a reservation
	// a full TTL old belongs to a device that crashed mid-task.
	DeviceTTL time.Duration
	// CoreCommit selects how core ops commit (combiner.go): "" or "auto"
	// for flat combining with an uncontended direct fast path, "direct"
	// for the historical per-caller lock acquisition, "combine" to force
	// every op through the queue (tests). Unknown names panic in
	// NewManager — CLIs validate with CoreCommitValid first.
	CoreCommit string
	// DisableDailyBudget lifts the one-task-per-device-per-day realism
	// constraint. Load benchmarks set it so a demand-heavy run exercises
	// sustained assignment traffic instead of exhausting the fleet's
	// budgets in the first seconds.
	DisableDailyBudget bool
	// ObsSampleEvery sets the request-span sampling rate: 1 in N served
	// requests carries a full per-stage span, a trace ID, and a flight-
	// recorder entry (internal/obs). 0 takes obs.DefaultSampleEvery; a
	// negative value disables spans entirely (the always-on per-op total
	// histograms keep recording either way).
	ObsSampleEvery int
}

// deviceShard is one stripe of the device registry. The trailing pad keeps
// neighboring stripe mutexes on separate cache lines.
type deviceShard struct {
	mu      sync.Mutex
	devices map[string]*managedDevice
	_       [40]byte
}

// Manager is the live resource manager. All methods are safe for concurrent
// use.
type Manager struct {
	// mu guards the scheduler core: venn, env, jobs, deadlines, attempt,
	// completed, and the lifecycle counters. Device state lives in shards.
	mu sync.Mutex

	cfg        Config
	start      time.Time
	categories map[string]device.Requirement
	// pol is the primary scheduling policy; every lifecycle event and
	// assignment decision goes through it. venn aliases it when the
	// primary is the Venn core — the lock-free snapshot fast path and the
	// plan telemetry are Venn-specific and disabled (nil) otherwise.
	policyName string
	pol        policy.Policy
	venn       *core.Venn
	env        *sim.Env
	// shadows host the shadow policies (shadow.go); shadowsOn caches
	// len(shadows) > 0 so the no-shadow serving paths pay one branch. Both
	// are immutable after NewManager. shadowSkip round-robins the
	// surplus-path sampling (one scoring event per shadowSampleStride
	// lock-free check-ins).
	shadows    []*shadowRunner
	shadowsOn  bool
	shadowSkip atomic.Uint64

	jobs      map[job.ID]*managedJob
	nextJob   job.ID
	completed []*managedJob

	shards      []deviceShard
	nextDev     atomic.Int64
	numDevices  atomic.Int64
	busyDevices atomic.Int64

	// lockFreeOK gates the snapshot-probe fast path; false when the
	// primary policy is not the Venn core (only Venn publishes plan
	// snapshots that prove a device idle).
	lockFreeOK bool
	// checkIns counts admitted check-ins; atomic because the fast path
	// bumps it without the core mutex.
	checkIns atomic.Int64
	// lockFreeCheckIns counts check-ins answered purely from a plan
	// snapshot, never entering the core mutex (observability).
	lockFreeCheckIns atomic.Int64
	// pendingSupply[c] accumulates check-in counts for grid cell c until a
	// core section drains them into the TSDB (see drainSupplyLocked).
	pendingSupply []atomic.Int64
	// supplyDirty is set (after the cell counter add) whenever pendingSupply
	// holds undrained counts; drainSupplyLocked skips its per-cell scan when
	// clear, so no-op core sections pay one atomic swap instead of an
	// O(cells) walk.
	supplyDirty atomic.Bool
	// sweepCursor round-robins TTL sweeps across shards.
	sweepCursor atomic.Int64
	// evictions counts devices dropped by TTL sweeps.
	evictions atomic.Int64

	// deadlines holds the at-time per collecting job; checked by Tick and
	// opportunistically on the serving paths. deadlineDue mirrors a lower
	// bound on the earliest entry, encoded as at+1 (0 = none armed), so the
	// common no-deadline-due case is one atomic load and no map access.
	// Removals leave it stale-low, which at worst costs one extra scan,
	// never a missed expiry.
	deadlines   map[job.ID]simtime.Time
	deadlineDue atomic.Int64
	attempt     map[job.ID]uint64

	// Flat-combining core commit pipeline (combiner.go). coreHead is the
	// MPSC op queue, combining elects the single combiner, coreMode is the
	// parsed Config.CoreCommit. The counters and the wait tracker feed
	// /v1/metrics (core_rounds, core_ops_per_round, core_wait_ns).
	coreMode        int
	coreHead        atomic.Pointer[coreOp]
	combining       atomic.Bool
	coreRounds      atomic.Int64
	coreCombinedOps atomic.Int64
	coreFastOps     atomic.Int64
	coreWait        *latencyTrack
	// coreHeldSince is the UnixNano at which the current combiner took the
	// core mutex (0 when free); Health reads it to detect a wedged core.
	coreHeldSince atomic.Int64

	// Cumulative counters (guarded by mu; all mutated in core sections).
	assignments, reports, failures, aborts int

	// streamSource, when set, supplies the stream-transport counters
	// surfaced by MetricsSnapshot; guarded by mu.
	streamSource StreamTelemetrySource
	// clusterSource, when set, supplies the federation counters surfaced by
	// MetricsSnapshot; guarded by mu.
	clusterSource ClusterTelemetrySource
	// routerBox holds the attached federation Router (nil box or nil field
	// when standalone). An atomic pointer because every serving-path request
	// loads it.
	routerBox atomic.Pointer[routerHolder]
	// topoSourceBox / topoPusherBox hold the federation topology supplier
	// (the cluster) and the push channel back out (the stream server);
	// atomic pointers because OpTopology requests and health-loop pushes
	// read them without the manager lock.
	topoSourceBox atomic.Pointer[topologySourceHolder]
	topoPusherBox atomic.Pointer[topologyPusherHolder]

	metrics *metricsRecorder
	// obs is the request-path observability registry: per-op total
	// histograms (always on), sampled per-stage histograms, trace IDs, and
	// the flight recorder. Immutable after NewManager.
	obs *obs.Registry
}

// routerHolder boxes the Router interface so it can sit behind an
// atomic.Pointer.
type routerHolder struct{ r Router }

// SetRouter attaches a federation router: from then on the Service layer's
// CheckIn/Report entry points (single and batch) route through it. Pass the
// routing decision to the Local variants to bypass it.
func (m *Manager) SetRouter(r Router) {
	m.routerBox.Store(&routerHolder{r: r})
}

// ClearRouter detaches r if it is still the attached router (a newer
// attachment is left in place), so a closed federation layer stops
// intercepting requests.
func (m *Manager) ClearRouter(r Router) {
	if cur := m.routerBox.Load(); cur != nil && cur.r == r {
		m.routerBox.CompareAndSwap(cur, nil)
	}
}

// router returns the attached federation router, or nil.
func (m *Manager) router() Router {
	if b := m.routerBox.Load(); b != nil {
		return b.r
	}
	return nil
}

// ClusterTelemetry is a snapshot of federation counters, supplied by an
// attached cluster via SetClusterTelemetrySource.
type ClusterTelemetry struct {
	NodeID              string            // this daemon's member ID
	RingSize            int               // members on the ownership ring (self included)
	VNodes              int               // virtual nodes per member
	PeerStates          map[string]string // peer ID -> "up" | "down"
	ForwardsIn          int64             // peer-forwarded request frames received
	ForwardsOut         int64             // request frames forwarded to peers
	ForwardErrors       int64             // forwards that failed in transit
	LocalFallbacks      int64             // would-be forwards applied locally (peer down, drain, or provably-unsent forward)
	DirectRoutedBatches int64             // non-forwarded batches that needed no peer hop at all (ring-aware clients landing every item on its owner)
	TopologyEpoch       uint64            // current topology epoch (advances on live-membership change)
	TopologyPushes      int64             // unsolicited topology frames pushed to subscribed connections
	ForwardBytesIn      int64             // payload bytes of peer-forwarded frames received
	ForwardBytesOut     int64             // payload bytes relayed to peers on the v2 zero-copy forward path
}

// TopologyInfo is the federation topology an attached cluster publishes for
// ring-aware clients: the live member set, the vnode count, and the epoch
// the set was published at. Members must be sorted; together with VNodes it
// lets a client rebuild the exact ownership ring via hashring.New.
type TopologyInfo struct {
	Epoch   uint64
	VNodes  int
	Members []string
}

// TopologySource supplies the current topology on demand (the transport
// layer serves it for OpTopology requests). Implementations must be safe
// for concurrent use and must not call back into the Manager.
type TopologySource interface {
	Topology() TopologyInfo
}

// topologySourceHolder boxes the interface for the atomic pointer.
type topologySourceHolder struct{ src TopologySource }

// SetTopologySource registers the federation topology an attached cluster
// exposes to ring-aware clients; ClearTopologySource detaches it again.
func (m *Manager) SetTopologySource(src TopologySource) {
	m.topoSourceBox.Store(&topologySourceHolder{src: src})
}

// ClearTopologySource detaches src if it is still the registered source.
func (m *Manager) ClearTopologySource(src TopologySource) {
	if cur := m.topoSourceBox.Load(); cur != nil && cur.src == src {
		m.topoSourceBox.CompareAndSwap(cur, nil)
	}
}

// TopologySourceRef returns the attached topology source, or nil when no
// federation layer is attached (standalone daemons have no topology).
func (m *Manager) TopologySourceRef() TopologySource {
	if b := m.topoSourceBox.Load(); b != nil {
		return b.src
	}
	return nil
}

// TopologyPusher is implemented by a transport server that can push an
// unsolicited topology frame to its subscribed connections. It returns how
// many connections the frame was enqueued to.
type TopologyPusher interface {
	PushTopology(TopologyInfo) int
}

// topologyPusherHolder boxes the interface for the atomic pointer.
type topologyPusherHolder struct{ p TopologyPusher }

// SetTopologyPusher registers the transport server that delivers topology
// pushes; ClearTopologyPusher detaches it.
func (m *Manager) SetTopologyPusher(p TopologyPusher) {
	m.topoPusherBox.Store(&topologyPusherHolder{p: p})
}

// ClearTopologyPusher detaches p if it is still the registered pusher.
func (m *Manager) ClearTopologyPusher(p TopologyPusher) {
	if cur := m.topoPusherBox.Load(); cur != nil && cur.p == p {
		m.topoPusherBox.CompareAndSwap(cur, nil)
	}
}

// NotifyTopologyChanged fans a fresh topology out to subscribed stream
// connections via the registered pusher (a no-op returning 0 without one).
// The attached cluster calls it whenever its live membership — and thus the
// epoch — changes.
func (m *Manager) NotifyTopologyChanged(info TopologyInfo) int {
	if b := m.topoPusherBox.Load(); b != nil && b.p != nil {
		return b.p.PushTopology(info)
	}
	return 0
}

// ClusterTelemetrySource supplies live federation counters. Like
// StreamTelemetrySource it is polled with the manager's mutex held, so
// implementations must read only their own atomics/snapshots — never call
// back into the Manager.
type ClusterTelemetrySource interface {
	ClusterTelemetry() ClusterTelemetry
}

// SetClusterTelemetrySource registers the source MetricsSnapshot polls for
// federation counters.
func (m *Manager) SetClusterTelemetrySource(src ClusterTelemetrySource) {
	m.mu.Lock()
	m.clusterSource = src
	m.mu.Unlock()
}

// ClearClusterTelemetrySource detaches src if it is still the registered
// source; a newer registration is left in place.
func (m *Manager) ClearClusterTelemetrySource(src ClusterTelemetrySource) {
	m.mu.Lock()
	if m.clusterSource == src {
		m.clusterSource = nil
	}
	m.mu.Unlock()
}

// StreamTelemetry is a snapshot of streaming-transport counters, supplied
// by an attached stream server via SetStreamTelemetrySource.
type StreamTelemetry struct {
	Conns      int64 // currently open stream connections
	FramesIn   int64 // request frames read, cumulative
	FramesInV2 int64 // request frames read with protocol version 2, cumulative
	FramesOut  int64 // response frames written, cumulative
}

// StreamTelemetrySource supplies live stream-transport counters. It is
// polled with the manager's mutex held, so implementations must only read
// their own counters — never call back into the Manager.
type StreamTelemetrySource interface {
	StreamTelemetry() StreamTelemetry
}

// SetStreamTelemetrySource registers the source MetricsSnapshot polls for
// stream-transport counters. The stream server calls this when it attaches
// to the manager.
func (m *Manager) SetStreamTelemetrySource(src StreamTelemetrySource) {
	m.mu.Lock()
	m.streamSource = src
	m.mu.Unlock()
}

// ClearStreamTelemetrySource detaches src if it is still the registered
// source, so a shut-down stream server neither pins its memory nor keeps
// reporting frozen counters; a newer registration is left in place.
func (m *Manager) ClearStreamTelemetrySource(src StreamTelemetrySource) {
	m.mu.Lock()
	if m.streamSource == src {
		m.streamSource = nil
	}
	m.mu.Unlock()
}

type managedJob struct {
	spec JobSpec
	j    *job.Job
	// inFlight tracks devices working on the current attempt.
	inFlight map[string]uint64 // deviceID -> attempt
}

type managedDevice struct {
	dev *device.Device
	// busy is true from assignment (or batch reservation) until the
	// device reports; guarded by the owning shard's mutex.
	busy bool
	// cell caches the device's grid cell (recomputed only when the
	// reported scores change); guarded by the owning shard's mutex.
	cell int32
	// lastSeenSec is the wall-clock second of the device's latest
	// check-in, driving TTL eviction; guarded by the owning shard's mutex.
	lastSeenSec int64
}

// NewManager constructs a live manager.
func NewManager(cfg Config) *Manager {
	if len(cfg.Categories) == 0 {
		cfg.Categories = device.Categories()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.TSDBWindow <= 0 {
		cfg.TSDBWindow = 24 * simtime.Hour
	}
	if cfg.Options.Tiers == 0 {
		cfg.Options = core.DefaultOptions()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.Policy == "" {
		cfg.Policy = policy.Default
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Clock().UnixNano()
	}
	coreMode, ok := parseCoreCommit(cfg.CoreCommit)
	if !ok {
		panic(fmt.Sprintf("server: unknown core commit mode %q", cfg.CoreCommit))
	}
	m := &Manager{
		coreMode:   coreMode,
		coreWait:   &latencyTrack{},
		cfg:        cfg,
		start:      cfg.Clock(),
		categories: make(map[string]device.Requirement, len(cfg.Categories)),
		policyName: strings.ToLower(cfg.Policy),
		pol:        policy.MustNew(cfg.Policy, policy.Config{Core: cfg.Options}),
		jobs:       make(map[job.ID]*managedJob),
		shards:     make([]deviceShard, cfg.Shards),
		deadlines:  make(map[job.ID]simtime.Time),
		attempt:    make(map[job.ID]uint64),
		metrics:    newMetricsRecorder(),
		obs:        obs.NewRegistry(cfg.ObsSampleEvery),
	}
	// The snapshot fast path and plan telemetry need the concrete core.
	m.venn, _ = m.pol.(*core.Venn)
	for i := range m.shards {
		m.shards[i].devices = make(map[string]*managedDevice)
	}
	for _, c := range cfg.Categories {
		m.categories[c.Name] = c
	}
	grid := device.NewGrid(cfg.Categories)
	m.env = &sim.Env{
		Grid:          grid,
		DB:            tsdb.New(grid.NumCells(), cfg.TSDBWindow, simtime.Hour),
		CellPriorRate: make([]float64, grid.NumCells()),
		Jobs:          make(map[job.ID]*job.Job),
		RNG:           stats.NewRNG(seed),
	}
	m.pol.Bind(m.env)
	m.pendingSupply = make([]atomic.Int64, grid.NumCells())
	m.lockFreeOK = m.venn != nil
	for i, name := range cfg.ShadowPolicies {
		// Distinct derived seeds keep each shadow's RNG stream independent
		// of the primary's and of each other's.
		sp := policy.MustNew(name, policy.Config{Core: cfg.Options})
		sr := newShadowRunner(strings.ToLower(name), sp, cfg.Categories, cfg.TSDBWindow, seed+int64(i)+1)
		m.shadows = append(m.shadows, sr)
	}
	m.shadowsOn = len(m.shadows) > 0
	return m
}

// PolicyName reports the primary scheduling policy's registry name.
func (m *Manager) PolicyName() string { return m.policyName }

// Obs exposes the manager's observability registry: the transport adapters
// sample spans from it, /v1/metrics and /metrics read its histograms, and
// /v1/debug/flight dumps its flight recorder.
func (m *Manager) Obs() *obs.Registry { return m.obs }

// coreWedgeAfter is how long one combiner may hold the core mutex before
// Health declares the core wedged. Real rounds hold it for microseconds;
// seconds means a stuck policy or a deadlock.
const coreWedgeAfter = 5 * time.Second

// HealthStatus is the GET /v1/healthz payload. OK mirrors the HTTP status
// (200 when true, 503 when false); the other fields say why.
type HealthStatus struct {
	OK            bool    `json:"ok"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// CoreHeldSeconds is how long the current core-combiner mutex hold has
	// lasted (0 when the core is free); past coreWedgeAfter the daemon is
	// unhealthy.
	CoreHeldSeconds float64 `json:"core_held_seconds,omitempty"`
	// PeersUp/PeersDown mirror the federation peer states; absent when
	// standalone. A federated daemon with every peer down is degraded but
	// still serves (local fallbacks), so peers alone never flip OK — the
	// detail string surfaces them for operators.
	PeersUp   int    `json:"peers_up,omitempty"`
	PeersDown int    `json:"peers_down,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// Health evaluates daemon liveness in one place: the core commit pipeline
// must not be wedged (one mutex hold exceeding coreWedgeAfter), and
// federation peer health is surfaced alongside. Every health surface —
// /v1/healthz, the venndaemon -log-metrics line — derives from this.
func (m *Manager) Health() HealthStatus {
	h := HealthStatus{OK: true, UptimeSeconds: float64(m.now()) / 1000}
	if since := m.coreHeldSince.Load(); since != 0 {
		held := time.Since(time.Unix(0, since))
		if held > 0 {
			h.CoreHeldSeconds = held.Seconds()
		}
		if held > coreWedgeAfter {
			h.OK = false
			h.Detail = "core commit pipeline wedged"
		}
	}
	m.mu.Lock()
	src := m.clusterSource
	m.mu.Unlock()
	if src != nil {
		ct := src.ClusterTelemetry()
		for _, st := range ct.PeerStates {
			if st == "up" {
				h.PeersUp++
			} else {
				h.PeersDown++
			}
		}
		if h.PeersDown > 0 && h.Detail == "" {
			h.Detail = fmt.Sprintf("%d federation peer(s) down", h.PeersDown)
		}
	}
	return h
}

// now maps wall-clock to manager-relative simulated time.
func (m *Manager) now() simtime.Time {
	return simtime.Time(m.cfg.Clock().Sub(m.start) / time.Millisecond)
}

// nowSec is the wall-clock second used to bucket throughput rates.
func (m *Manager) nowSec() int64 { return m.cfg.Clock().Unix() }

// shardOf maps a device ID to its lock stripe.
func (m *Manager) shardOf(deviceID string) *deviceShard {
	return &m.shards[m.shardIndex(deviceID)]
}

// shardIndex is the FNV-1a stripe index of a device ID.
func (m *Manager) shardIndex(deviceID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(deviceID))
	return int(h.Sum32()) % len(m.shards)
}

// RegisterJob admits a new CL job and opens its first-round request. The
// admission itself commits through the core pipeline (combiner.go) as an
// opRegister, so job arrivals combine with in-flight assignment rounds.
func (m *Manager) RegisterJob(spec JobSpec) (JobStatus, error) {
	if _, ok := m.categories[spec.Category]; !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownCategory, spec.Category)
	}
	if spec.DemandPerRound < 1 || spec.Rounds < 1 {
		return JobStatus{}, errors.New("server: demand and rounds must be positive")
	}
	return m.submitRegister(spec), nil
}

// registerJobLocked admits a pre-validated job spec. The caller holds the
// core mutex and has run the section preamble.
func (m *Manager) registerJobLocked(spec JobSpec, now simtime.Time) JobStatus {
	req := m.categories[spec.Category]
	m.drainSupplyLocked(now) // the arrival estimate reads supply history
	id := m.nextJob
	m.nextJob++
	j := job.New(id, req, spec.DemandPerRound, spec.Rounds, now)
	if spec.TaskScale > 0 {
		j.TaskScale = spec.TaskScale
	}
	if spec.Name != "" {
		j.Name = spec.Name
	}
	mj := &managedJob{spec: spec, j: j, inFlight: map[string]uint64{}}
	m.jobs[id] = mj
	m.env.Jobs[id] = j
	m.attempt[id] = 1

	j.Start(now)
	m.pol.OnJobArrival(j, now)
	m.pol.OnRequest(j, now)
	if m.shadowsOn {
		m.emitShadow(shadowEvent{
			kind: shadowArrival, now: now, jobID: id,
			name: j.Name, category: spec.Category,
			demand: spec.DemandPerRound, rounds: spec.Rounds, taskScale: spec.TaskScale,
		})
	}
	return m.statusLocked(mj)
}

// admitShardLocked runs the shard-local admission checks for one check-in
// and reserves the device (busy=true) on success, so a concurrent check-in
// for the same device cannot double-book it while the core section runs.
// The caller holds the device's shard mutex and clears the reservation if
// the scheduler hands out no assignment.
//
// Returns (md, nil) when the check-in should proceed to assignment,
// (nil, nil) when it is refused without error (daily task budget), and
// (nil, err) for busy/validation rejections.
func (m *Manager) admitShardLocked(sh *deviceShard, ci CheckIn, now simtime.Time, nowSec int64) (*managedDevice, error) {
	md, ok := sh.devices[ci.DeviceID]
	if !ok {
		md = &managedDevice{dev: device.New(device.ID(m.nextDev.Add(1)-1), ci.CPU, ci.Mem)}
		md.cell = int32(m.env.Grid.CellOfDevice(md.dev))
		// Clone: a v2 batch decode hands out strings backed by the whole
		// request payload (bdec.shared); a map key lives forever.
		sh.devices[strings.Clone(ci.DeviceID)] = md
		m.numDevices.Add(1)
	} else {
		if md.busy {
			md.lastSeenSec = nowSec
			return nil, ErrDeviceBusy
		}
		// Refresh scores (hardware doesn't change, but normalization or
		// reporting might); the cached cell follows them. Clamp exactly
		// like device.New — raw wire values can be negative or NaN, and an
		// unclamped score would put the device in an out-of-range cell
		// (panicking the pendingSupply index).
		if cpu, mem := device.Clamp01(ci.CPU), device.Clamp01(ci.Mem); md.dev.CPU != cpu || md.dev.Mem != mem {
			md.dev.CPU, md.dev.Mem = cpu, mem
			md.cell = int32(m.env.Grid.CellOfDevice(md.dev))
		}
	}
	md.lastSeenSec = nowSec
	// One task per day per device (the paper's realism constraint);
	// benchmarks lift it via Config.DisableDailyBudget.
	if !m.cfg.DisableDailyBudget && int(md.dev.LastTaskDay) == now.DayIndex() {
		return nil, nil
	}
	md.busy = true
	m.busyDevices.Add(1)
	return md, nil
}

// countCheckIn records an admitted check-in without the core mutex: the
// cumulative counter and the pending supply history for the device's cell.
func (m *Manager) countCheckIn(md *managedDevice) {
	m.checkIns.Add(1)
	m.pendingSupply[md.cell].Add(1)
	// Flag after the add: a drain that swaps the flag observes every count
	// whose flag-set it raced, and a count it misses re-flags for the next
	// drain.
	m.supplyDirty.Store(true)
}

// drainSupplyLocked flushes the pending per-cell check-in counts into the
// TSDB. Called at the start of every core critical section (and from Tick),
// so supply estimates lag true check-in times by at most a tick — noise at
// the 24-hour averaging window the scheduler reads. The dirty flag makes
// the no-pending case one atomic swap instead of an O(cells) scan.
func (m *Manager) drainSupplyLocked(now simtime.Time) {
	if !m.supplyDirty.Swap(false) {
		return
	}
	for c := range m.pendingSupply {
		if n := m.pendingSupply[c].Swap(0); n > 0 {
			m.env.DB.RecordCheckIns(device.CellID(c), int(n), now)
		}
	}
}

// snapshotSaysIdle reports whether the published plan snapshot proves the
// device would leave the scheduler empty-handed, in which case the check-in
// can be answered without the core mutex. A true answer requires the
// snapshot to be fresh: every lifecycle event marks the plan stale before
// its effects land, and the core republishes before clearing the flag, so
// the freshness check (first) and snapshot load (second) bracket a provably
// current view. Devices with a candidate — and any check-in racing a plan
// refresh — fall back to the locked path.
func (m *Manager) snapshotSaysIdle(md *managedDevice, now simtime.Time) bool {
	if !m.lockFreeOK || !m.venn.PlanFresh() {
		return false
	}
	snap := m.venn.PlanSnapshot()
	return snap != nil && !snap.HasCandidate(md.dev, device.CellID(md.cell), now)
}

// assignCoreLocked runs the short scheduler critical section for one
// admitted check-in. The caller holds both the device's shard mutex and the
// core mutex; the device stays reserved on assignment and the caller frees
// it otherwise.
func (m *Manager) assignCoreLocked(md *managedDevice, deviceID string, now simtime.Time) Assignment {
	j := m.pol.Assign(md.dev, now)
	if m.shadowsOn {
		pick := job.ID(-1)
		if j != nil {
			pick = j.ID
		}
		m.emitShadow(shadowEvent{
			kind: shadowAssign, now: now, devID: deviceID,
			cpu: md.dev.CPU, mem: md.dev.Mem, cell: device.CellID(md.cell),
			primaryJob: pick,
		})
	}
	if j == nil {
		return Assignment{Assigned: false}
	}
	mj := m.jobs[j.ID]
	md.dev.LastTaskDay = int32(now.DayIndex())
	// Clone: deviceID may share a v2 request payload's backing (bdec.shared)
	// and this key outlives the request, until the device reports back.
	mj.inFlight[strings.Clone(deviceID)] = m.attempt[j.ID]
	m.assignments++

	if full := j.AddAssignment(now); full {
		m.pol.OnRequestFulfilled(j, now)
		if m.shadowsOn {
			m.emitShadow(shadowEvent{kind: shadowFulfilled, now: now, jobID: j.ID})
		}
		m.setDeadlineLocked(j.ID, now.Add(j.Deadline()))
		m.maybeCompleteLocked(mj, now)
	}
	return Assignment{Assigned: true, JobID: int(j.ID), JobName: j.Name, Round: j.Round(), Policy: m.policyName}
}

// release frees a reserved device that received no assignment. The caller
// holds the device's shard mutex.
func (m *Manager) release(md *managedDevice) {
	md.busy = false
	m.busyDevices.Add(-1)
}

// DeviceCheckIn registers availability and returns an assignment (or none).
func (m *Manager) DeviceCheckIn(ci CheckIn) (Assignment, error) {
	return m.DeviceCheckInSpan(ci, nil)
}

// DeviceCheckInSpan is DeviceCheckIn carrying the request's observability
// span (nil when unsampled): ops that enter the core commit pipeline
// attribute their queue wait and apply time to it.
func (m *Manager) DeviceCheckInSpan(ci CheckIn, sp *obs.Span) (Assignment, error) {
	if ci.DeviceID == "" {
		return Assignment{}, errDeviceIDMissing
	}
	sh := m.shardOf(ci.DeviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := m.now()
	sec := m.nowSec()
	md, err := m.admitShardLocked(sh, ci, now, sec)
	if err != nil {
		return Assignment{}, err
	}
	if md == nil {
		return Assignment{Assigned: false}, nil
	}
	m.countCheckIn(md)
	var asg Assignment
	if m.snapshotSaysIdle(md, now) {
		m.lockFreeCheckIns.Add(1)
		// Shadow planning stays off the lock-free surplus path: sampled
		// scoring events leave via one non-blocking send; the shadow
		// scores them on its own goroutine.
		if m.shadowsOn && m.shadowSkip.Add(1)%shadowSampleStride == 0 {
			m.emitShadow(shadowEvent{
				kind: shadowAssign, now: now, devID: ci.DeviceID,
				cpu: md.dev.CPU, mem: md.dev.Mem, cell: device.CellID(md.cell),
				primaryJob: -1, weight: shadowSampleStride,
			})
		}
	} else {
		asg = m.submitAssign(md, ci.DeviceID, sp)
	}
	m.metrics.checkins.Add(sec, 1)
	if asg.Assigned {
		m.metrics.assignRate.Add(sec, 1)
	} else {
		m.release(md)
	}
	return asg, nil
}

// CheckInBatch processes a batch of check-ins; Results[i] answers
// CheckIns[i]. Shard-local admission runs per device stripe; each admitted
// device is then probed against the lock-free plan snapshot, and only the
// devices with a potential assignment enter the single core critical
// section. In a surplus fleet (no open requests the device could serve) a
// whole batch completes without ever touching the scheduler lock.
func (m *Manager) CheckInBatch(cis []CheckIn) []CheckInResult {
	return m.CheckInBatchSpan(cis, nil)
}

// CheckInBatchSpan is CheckInBatch carrying the batch request's span (see
// DeviceCheckInSpan).
func (m *Manager) CheckInBatchSpan(cis []CheckIn, sp *obs.Span) []CheckInResult {
	out := make([]CheckInResult, len(cis))
	if len(cis) == 0 {
		return out
	}
	held := m.lockShardsFor(func(yield func(string)) {
		for _, ci := range cis {
			if ci.DeviceID != "" {
				yield(ci.DeviceID)
			}
		}
	})
	defer m.unlockShards(held)

	now := m.now()
	nowSec := m.nowSec()
	// If churn left the plan stale, pay one refresh up front so the whole
	// batch probes a fresh snapshot instead of queueing for the locked
	// path item by item. The refresh commits through the core pipeline, so
	// concurrent batches share one republish.
	if m.lockFreeOK && !m.venn.PlanFresh() {
		m.submitRefresh()
	}
	pending := make([]*managedDevice, len(cis))
	var needCore []int
	var shadowBuf []shadowEvent // lock-free scoring events, one send per batch
	admitted := 0
	for i, ci := range cis {
		if ci.DeviceID == "" {
			out[i].Error = errDeviceIDMissing.Error()
			continue
		}
		md, err := m.admitShardLocked(m.shardOf(ci.DeviceID), ci, now, nowSec)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		if md == nil {
			continue // daily budget: Assigned=false, no error
		}
		pending[i] = md
		admitted++
		m.countCheckIn(md)
		// The probe re-checks freshness per item: a concurrent batch may
		// fulfil a request (or a job may register) mid-loop.
		if m.snapshotSaysIdle(md, now) {
			m.lockFreeCheckIns.Add(1)
			if m.shadowsOn && m.shadowSkip.Add(1)%shadowSampleStride == 0 {
				shadowBuf = append(shadowBuf, shadowEvent{
					kind: shadowAssign, now: now, devID: ci.DeviceID,
					cpu: md.dev.CPU, mem: md.dev.Mem, cell: device.CellID(md.cell),
					primaryJob: -1, weight: shadowSampleStride,
				})
			}
			continue
		}
		needCore = append(needCore, i)
	}
	// Shadow planning stays off the lock-free surplus path: the whole
	// batch's scoring events leave in one non-blocking send per shadow.
	m.emitShadowBatch(shadowBuf)

	assigned := 0
	if len(needCore) > 0 {
		items := make([]assignItem, len(needCore))
		for k, i := range needCore {
			items[k] = assignItem{md: pending[i], id: cis[i].DeviceID, out: &out[i].Assignment}
		}
		m.submitAssignBatch(items, sp)
		for _, i := range needCore {
			if out[i].Assigned {
				assigned++
			}
		}
	}
	for i, md := range pending {
		if md != nil && !out[i].Assigned {
			m.release(md)
		}
	}
	m.metrics.checkins.Add(nowSec, int64(admitted))
	m.metrics.assignRate.Add(nowSec, int64(assigned))
	return out
}

// reportCoreLocked applies one report to the scheduler core. The caller
// holds the core mutex (and the device's shard mutex).
func (m *Manager) reportCoreLocked(r Report, md *managedDevice, now simtime.Time) {
	mj, ok := m.jobs[job.ID(r.JobID)]
	if !ok {
		// Job finished meanwhile; the report is stale but harmless.
		return
	}
	att, working := mj.inFlight[r.DeviceID]
	delete(mj.inFlight, r.DeviceID)
	if !working || att != m.attempt[mj.j.ID] || mj.j.Done() {
		return // stale attempt
	}
	if r.OK {
		m.reports++
		m.pol.ObserveResponse(mj.j, md.dev, simtime.FromSeconds(r.DurationSeconds), now)
		if m.shadowsOn {
			m.emitShadow(shadowEvent{
				kind: shadowResponse, now: now, jobID: mj.j.ID,
				devID: r.DeviceID, durSec: r.DurationSeconds,
			})
		}
		mj.j.AddResponse(now)
		m.maybeCompleteLocked(mj, now)
		return
	}
	m.failures++
	mj.j.AddFailure()
	if mj.j.State() == job.StateCollecting &&
		mj.j.Demand-mj.j.AttemptFailures() < mj.j.TargetResponses() {
		m.abortLocked(mj, now)
	}
}

// DeviceReport records a task result.
func (m *Manager) DeviceReport(r Report) error {
	return m.DeviceReportSpan(r, nil)
}

// DeviceReportSpan is DeviceReport carrying the request's span (see
// DeviceCheckInSpan).
func (m *Manager) DeviceReportSpan(r Report, sp *obs.Span) error {
	if r.DeviceID == "" {
		return errDeviceIDMissing
	}
	sh := m.shardOf(r.DeviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	md, ok := sh.devices[r.DeviceID]
	if !ok {
		return ErrUnknownDevice
	}
	if md.busy {
		m.release(md)
	}
	m.submitReport(r, md, sp)
	m.metrics.reportRate.Add(m.nowSec(), 1)
	return nil
}

// ReportBatch processes a batch of reports with a single scheduler-lock
// acquisition; Results[i] answers Reports[i].
func (m *Manager) ReportBatch(rs []Report) []ReportResult {
	return m.ReportBatchSpan(rs, nil)
}

// ReportBatchSpan is ReportBatch carrying the batch request's span (see
// DeviceCheckInSpan).
func (m *Manager) ReportBatchSpan(rs []Report, sp *obs.Span) []ReportResult {
	out := make([]ReportResult, len(rs))
	if len(rs) == 0 {
		return out
	}
	held := m.lockShardsFor(func(yield func(string)) {
		for _, r := range rs {
			if r.DeviceID != "" {
				yield(r.DeviceID)
			}
		}
	})
	defer m.unlockShards(held)

	devs := make([]*managedDevice, len(rs))
	accepted := 0
	for i, r := range rs {
		if r.DeviceID == "" {
			out[i].Error = errDeviceIDMissing.Error()
			continue
		}
		md, ok := m.shardOf(r.DeviceID).devices[r.DeviceID]
		if !ok {
			out[i].Error = ErrUnknownDevice.Error()
			continue
		}
		if md.busy {
			m.release(md)
		}
		devs[i] = md
		accepted++
	}
	if accepted > 0 {
		items := make([]reportItem, 0, accepted)
		for i, md := range devs {
			if md != nil {
				items = append(items, reportItem{r: rs[i], md: md})
			}
		}
		m.submitReportBatch(items, sp)
	}
	m.metrics.reportRate.Add(m.nowSec(), int64(accepted))
	return out
}

// lockShardsFor locks, in ascending index order, every shard that any
// device ID produced by iter hashes to, and returns the locked indices.
// Ascending acquisition keeps the global lock order consistent across
// concurrent batches (shards ascending, then the core mutex).
func (m *Manager) lockShardsFor(iter func(yield func(string))) []int {
	need := make([]bool, len(m.shards))
	iter(func(id string) { need[m.shardIndex(id)] = true })
	held := make([]int, 0, 8)
	for i := range m.shards {
		if need[i] {
			m.shards[i].mu.Lock()
			held = append(held, i)
		}
	}
	return held
}

func (m *Manager) unlockShards(held []int) {
	for i := len(held) - 1; i >= 0; i-- {
		m.shards[held[i]].mu.Unlock()
	}
}

// maybeCompleteLocked finishes the round (and possibly the job) when enough
// responses are in.
func (m *Manager) maybeCompleteLocked(mj *managedJob, now simtime.Time) {
	if !mj.j.CanComplete() {
		return
	}
	delete(m.deadlines, mj.j.ID)
	m.attempt[mj.j.ID]++
	mj.inFlight = map[string]uint64{}
	done := mj.j.CompleteRound(now)
	if m.shadowsOn {
		m.emitShadow(shadowEvent{kind: shadowRoundDone, now: now, jobID: mj.j.ID, done: done})
	}
	if done {
		m.pol.OnJobDone(mj.j, now)
		m.completed = append(m.completed, mj)
		delete(m.jobs, mj.j.ID)
		delete(m.attempt, mj.j.ID)
		return
	}
	m.pol.OnRequest(mj.j, now)
}

// abortLocked resubmits the current attempt.
func (m *Manager) abortLocked(mj *managedJob, now simtime.Time) {
	m.aborts++
	mj.j.AbortAttempt(now)
	m.attempt[mj.j.ID]++
	mj.inFlight = map[string]uint64{}
	delete(m.deadlines, mj.j.ID)
	m.pol.OnRequest(mj.j, now)
	if m.shadowsOn {
		m.emitShadow(shadowEvent{kind: shadowAbort, now: now, jobID: mj.j.ID})
	}
}

// setDeadlineLocked records a collecting job's response deadline and keeps
// deadlineDue a lower bound on the earliest entry.
func (m *Manager) setDeadlineLocked(id job.ID, at simtime.Time) {
	m.deadlines[id] = at
	if due := m.deadlineDue.Load(); due == 0 || int64(at)+1 < due {
		m.deadlineDue.Store(int64(at) + 1)
	}
}

// expireDueLocked is the O(1) fast path around deadline expiry: the full
// scan only runs when the earliest recorded deadline can actually be due,
// and the bound is one atomic load. Removals leave deadlineDue stale-low,
// which at worst triggers one extra scan, never a missed expiry.
func (m *Manager) expireDueLocked(now simtime.Time) {
	due := m.deadlineDue.Load()
	if due == 0 || int64(now) < due-1 {
		return
	}
	if len(m.deadlines) == 0 {
		m.deadlineDue.Store(0) // removals left the bound stale; disarm
		return
	}
	m.expireDeadlinesLocked(now)
}

// expireDeadlinesLocked aborts attempts whose response deadline passed and
// recomputes the earliest remaining deadline.
func (m *Manager) expireDeadlinesLocked(now simtime.Time) {
	for id, at := range m.deadlines {
		if now < at {
			continue
		}
		mj, ok := m.jobs[id]
		if !ok {
			delete(m.deadlines, id)
			continue
		}
		if mj.j.CanComplete() {
			m.maybeCompleteLocked(mj, now)
			continue
		}
		if mj.j.State() == job.StateCollecting {
			m.abortLocked(mj, now)
		} else {
			delete(m.deadlines, id)
		}
	}
	earliest := simtime.Time(0)
	first := true
	for _, at := range m.deadlines {
		if first || at < earliest {
			earliest, first = at, false
		}
	}
	if first {
		m.deadlineDue.Store(0)
	} else {
		m.deadlineDue.Store(int64(earliest) + 1)
	}
}

// Tick runs the periodic maintenance: TTL eviction of idle devices,
// draining the pending supply counters, and deadline expiry. Call it
// periodically (the HTTP server does, once a second).
func (m *Manager) Tick() {
	m.sweepExpiredDevices() // shard locks only — before the core mutex
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.drainSupplyLocked(now)
	m.expireDueLocked(now)
}

// sweepExpiredDevices walks a rotating slice of the shard registries and
// evicts devices not seen within Config.DeviceTTL. The sweep covers a
// fraction of the shards per tick so a huge registry never stalls one tick;
// with the default 64 shards and a 1s tick the whole fleet is revisited
// roughly every 16 seconds — instantaneous against any sensible TTL.
//
// Busy devices are evicted too once their last check-in is a full TTL in
// the past: a reservation that old belongs to a device that crashed
// mid-task (task deadlines are minutes, the TTL is hours), and exempting it
// would leak exactly the registry growth the TTL exists to cap. A
// straggler's late report gets ErrUnknownDevice, which the agent protocol
// already tolerates. After evictions, the core's device→cell cache is
// reset: evicted IDs are never reused, so their entries would otherwise
// leak with fleet churn.
func (m *Manager) sweepExpiredDevices() {
	ttl := m.cfg.DeviceTTL
	if ttl <= 0 {
		return
	}
	cutoff := m.cfg.Clock().Add(-ttl).Unix()
	sweep := len(m.shards)/16 + 1
	evicted, busyEvicted := 0, 0
	for i := 0; i < sweep; i++ {
		sh := &m.shards[int(m.sweepCursor.Add(1)-1)%len(m.shards)]
		sh.mu.Lock()
		for id, md := range sh.devices {
			if md.lastSeenSec >= cutoff {
				continue
			}
			if md.busy {
				busyEvicted++
			}
			delete(sh.devices, id)
			evicted++
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		m.numDevices.Add(int64(-evicted))
		m.busyDevices.Add(int64(-busyEvicted))
		m.evictions.Add(int64(evicted))
		if m.venn != nil {
			m.mu.Lock()
			m.venn.ResetCellCache()
			m.mu.Unlock()
		}
	}
}

// JobStatusByID returns the status of an active or completed job.
func (m *Manager) JobStatusByID(id int) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mj, ok := m.jobs[job.ID(id)]; ok {
		return m.statusLocked(mj), nil
	}
	for _, mj := range m.completed {
		if int(mj.j.ID) == id {
			return m.statusLocked(mj), nil
		}
	}
	return JobStatus{}, ErrUnknownJob
}

// Jobs returns the statuses of all jobs (active first, then completed).
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs)+len(m.completed))
	for _, mj := range m.jobs {
		out = append(out, m.statusLocked(mj))
	}
	for _, mj := range m.completed {
		out = append(out, m.statusLocked(mj))
	}
	return out
}

func (m *Manager) statusLocked(mj *managedJob) JobStatus {
	j := mj.j
	st := JobStatus{
		ID:              int(j.ID),
		Name:            j.Name,
		Category:        j.Requirement.Name,
		State:           j.State().String(),
		Round:           j.Round(),
		Rounds:          j.Rounds,
		DemandPerRound:  j.Demand,
		Assigned:        j.AttemptAssigned(),
		Responses:       j.AttemptResponses(),
		CompletedRounds: j.CompletedRounds(),
	}
	if j.Done() {
		st.JCTSeconds = j.JCT().Seconds()
	}
	return st
}

// StatsSnapshot returns a monitoring snapshot.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Policy:        m.policyName,
		ActiveJobs:    len(m.jobs),
		CompletedJobs: len(m.completed),
		CheckIns:      int(m.checkIns.Load()),
		Assignments:   m.assignments,
		Reports:       m.reports,
		Failures:      m.failures,
		Aborts:        m.aborts,
	}
	now := m.now()
	m.drainSupplyLocked(now)
	s.UptimeSeconds = float64(now) / 1000
	s.SupplyPerHour = m.env.DB.TotalRatePerHour(now)
	if m.venn != nil {
		s.PlanRebuilds = m.venn.PlanRebuilds
		s.PlanPatches = m.venn.PlanPatches
	}
	for _, mj := range m.jobs {
		if mj.j.State() == job.StateScheduling {
			s.QueuedRequests++
		}
	}
	var jct float64
	for _, mj := range m.completed {
		jct += mj.j.JCT().Seconds()
	}
	if len(m.completed) > 0 {
		s.AvgJCTSeconds = jct / float64(len(m.completed))
	}
	return s
}
