package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"venn/internal/obs"
)

// This file is the HTTP adapter over the transport-neutral Service
// (service.go): every handler is decode → service call → encode, plus the
// HTTP-specific concerns (method dispatch, status mapping, body bounds,
// observability middleware). No scheduling or manager logic lives here; the
// same Service is served by the framed stream transport in internal/transport.

// HandlerConfig bounds the HTTP adapter. The zero value takes the defaults.
type HandlerConfig struct {
	// MaxBodyBytes caps single-item request bodies (default 1 MiB). A
	// malformed giant payload is rejected with 413 before it can balloon
	// memory.
	MaxBodyBytes int64
	// MaxBatchBodyBytes caps batch request bodies (default MaxBatch KiB,
	// ~1KB of headroom per allowed item).
	MaxBatchBodyBytes int64
}

const (
	defaultMaxBodyBytes      = 1 << 20
	defaultMaxBatchBodyBytes = MaxBatch * 1024
)

func (c *HandlerConfig) fillDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.MaxBatchBodyBytes <= 0 {
		c.MaxBatchBodyBytes = defaultMaxBatchBodyBytes
	}
}

// Handler wraps a Manager with the HTTP/JSON API under default bounds:
//
//	POST /v1/jobs            {JobSpec}              -> JobStatus
//	GET  /v1/jobs            -> []JobStatus
//	GET  /v1/jobs/{id}       -> JobStatus
//	POST /v1/checkin         {CheckIn}              -> Assignment
//	POST /v1/checkin/batch   {CheckInBatchRequest}  -> CheckInBatchResponse
//	POST /v1/report          {Report}               -> {}
//	POST /v1/report/batch    {ReportBatchRequest}   -> ReportBatchResponse
//	GET  /v1/stats           -> Stats
//	GET  /v1/metrics         -> Metrics (JSON)
//	GET  /v1/healthz         -> HealthStatus (503 when unhealthy)
//	GET  /v1/debug/flight    -> flight-recorder dump, slowest first
//	GET  /metrics            -> Prometheus text-format exposition
//
// Every route runs under the observability middleware: end-to-end latency
// feeds the always-on per-op histograms (handler_latency_ms of /v1/metrics),
// and 1-in-ObsSampleEvery requests carry a per-stage span that lands in
// request_stage_ns and the flight recorder.
func Handler(m *Manager) http.Handler { return NewHandler(m, HandlerConfig{}) }

// NewHandler is Handler with explicit body bounds.
func NewHandler(m *Manager, cfg HandlerConfig) http.Handler {
	cfg.fillDefaults()
	svc := NewService(m, TransportHTTP)
	mux := http.NewServeMux()
	handle := func(pattern string, op obs.Op, h func(http.ResponseWriter, *http.Request, *obs.Span)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			sp := m.obs.Sample(op)
			h(w, r, sp)
			m.obs.ObserveTotal(op, time.Since(t0))
			sp.Finish()
		})
	}
	handle("/v1/jobs", obs.OpJobs, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		switch r.Method {
		case http.MethodPost:
			var spec JobSpec
			if !decodeTimed(w, r, cfg.MaxBodyBytes, &spec, sp) {
				return
			}
			st, err := svc.RegisterJob(spec)
			if err != nil {
				sp.SetError()
				writeErr(w, err)
				return
			}
			writeJSONSpan(w, st, http.StatusCreated, sp)
		case http.MethodGet:
			writeJSONSpan(w, svc.Jobs(), http.StatusOK, sp)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	handle("/v1/jobs/", obs.OpJobs, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			sp.SetError()
			writeErr(w, svcErr(CodeInvalid, errors.New("bad job id")))
			return
		}
		st, err := svc.JobStatusByID(id)
		if err != nil {
			sp.SetError()
			writeErr(w, err)
			return
		}
		writeJSONSpan(w, st, http.StatusOK, sp)
	})
	handle("/v1/checkin", obs.OpCheckIn, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var ci CheckIn
		if !decodeTimed(w, r, cfg.MaxBodyBytes, &ci, sp) {
			return
		}
		asg, err := svc.CheckIn(ci, sp)
		if err != nil {
			sp.SetError()
			writeErr(w, err)
			return
		}
		writeJSONSpan(w, asg, http.StatusOK, sp)
	})
	handle("/v1/checkin/batch", obs.OpCheckInBatch, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req CheckInBatchRequest
		if !decodeTimed(w, r, cfg.MaxBatchBodyBytes, &req, sp) {
			return
		}
		resp, _, err := svc.CheckInBatchRouted(req, RawItems{}, sp)
		if err != nil {
			sp.SetError()
			writeErr(w, err)
			return
		}
		writeJSONSpan(w, resp, http.StatusOK, sp)
	})
	handle("/v1/report", obs.OpReport, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var rep Report
		if !decodeTimed(w, r, cfg.MaxBodyBytes, &rep, sp) {
			return
		}
		if err := svc.Report(rep, sp); err != nil {
			sp.SetError()
			writeErr(w, err)
			return
		}
		writeJSONSpan(w, struct{}{}, http.StatusOK, sp)
	})
	handle("/v1/report/batch", obs.OpReportBatch, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req ReportBatchRequest
		if !decodeTimed(w, r, cfg.MaxBatchBodyBytes, &req, sp) {
			return
		}
		resp, _, err := svc.ReportBatchRouted(req, RawItems{}, sp)
		if err != nil {
			sp.SetError()
			writeErr(w, err)
			return
		}
		writeJSONSpan(w, resp, http.StatusOK, sp)
	})
	handle("/v1/stats", obs.OpOther, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSONSpan(w, svc.Stats(), http.StatusOK, sp)
	})
	handle("/v1/metrics", obs.OpOther, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSONSpan(w, svc.Metrics(), http.StatusOK, sp)
	})
	handle("/v1/healthz", obs.OpOther, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h := m.Health()
		code := http.StatusOK
		if !h.OK {
			code = http.StatusServiceUnavailable
		}
		writeJSONSpan(w, h, code, sp)
	})
	handle("/v1/debug/flight", obs.OpOther, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		dump := struct {
			SampleEvery int          `json:"sample_every"`
			Recorded    int64        `json:"recorded_total"`
			Records     []obs.Record `json:"records"`
		}{m.obs.SampleEvery(), m.obs.Flight().Recorded(), m.obs.Flight().Snapshot()}
		writeJSONSpan(w, dump, http.StatusOK, sp)
	})
	handle("/metrics", obs.OpOther, func(w http.ResponseWriter, r *http.Request, sp *obs.Span) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var b strings.Builder
		WritePrometheus(&b, m)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(b.Len()))
		_, _ = io.WriteString(w, b.String())
	})
	return mux
}

// Serve runs the HTTP API plus the deadline ticker until the listener fails
// or ctx is canceled; cancellation drains in-flight requests (up to
// shutdownGrace) before returning, so a SIGTERM never drops accepted work.
// A clean drain returns nil. cfg's zero value takes the default body
// bounds.
func Serve(ctx context.Context, addr string, m *Manager, cfg HandlerConfig) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick()
			case <-stop:
				return
			}
		}
	}()
	srv := &http.Server{Addr: addr, Handler: NewHandler(m, cfg), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// shutdownGrace bounds how long a canceled Serve (or stream Shutdown) waits
// for in-flight requests to complete.
const shutdownGrace = 10 * time.Second

// bodyPool recycles request-body read buffers across the hot endpoints.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decode parses the request body into v, first bounding it to limit bytes
// (an over-limit body answers 413 without being buffered past the limit).
// Types with a hand-rolled UnmarshalJSON (the hot wire types, see codec.go)
// are fed the raw bytes directly — a json.Decoder would tokenize the value
// once just to find its extent and then have the custom unmarshaler parse
// it again. Everything else takes the reflective decoder with the original
// unknown-field strictness, which the custom codecs replicate.
func decode(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if u, ok := v.(json.Unmarshaler); ok {
		buf := bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyPool.Put(buf)
		if _, err := buf.ReadFrom(r.Body); err != nil {
			writeErr(w, bodyErr(err))
			return false
		}
		if err := u.UnmarshalJSON(buf.Bytes()); err != nil {
			writeErr(w, svcErr(CodeInvalid, err))
			return false
		}
		return true
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, bodyErr(err))
		return false
	}
	return true
}

// decodeTimed is decode with the span's decode-stage mark. HTTP has no
// separate frame-read stage: the body read and the parse both land in
// decode. The clock reads are span-gated — the unsampled path pays nothing.
func decodeTimed(w http.ResponseWriter, r *http.Request, limit int64, v any, sp *obs.Span) bool {
	if sp == nil {
		return decode(w, r, limit, v)
	}
	t0 := time.Now()
	ok := decode(w, r, limit, v)
	sp.Mark(obs.StageDecode, time.Since(t0))
	if !ok {
		sp.SetError()
	}
	return ok
}

// bodyErr classifies a body-read failure: the MaxBytesReader limit maps to
// CodeTooLarge, everything else is a plain bad request.
func bodyErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return svcErr(CodeTooLarge, err)
	}
	return svcErr(CodeInvalid, err)
}

// httpStatus maps service error codes to HTTP statuses.
func httpStatus(code Code) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeBusy:
		return http.StatusConflict
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any, code int) { writeJSONSpan(w, v, code, nil) }

// writeJSONSpan renders v, attributing the marshal to the span's encode
// stage and the response write to its write stage (clock reads span-gated).
func writeJSONSpan(w http.ResponseWriter, v any, code int, sp *obs.Span) {
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	var buf []byte
	var err error
	// The hot wire types marshal themselves; calling them directly skips
	// encoding/json's re-validation pass over their output.
	if jm, ok := v.(json.Marshaler); ok {
		buf, err = jm.MarshalJSON()
	} else {
		buf, err = json.Marshal(v)
	}
	if err != nil {
		sp.SetError()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if sp != nil {
		sp.Mark(obs.StageEncode, time.Since(t0))
		t0 = time.Now()
	}
	w.Header().Set("Content-Type", "application/json")
	// Explicit Content-Length keeps large batch replies out of chunked
	// framing.
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(code)
	_, _ = w.Write(buf)
	if sp != nil {
		sp.Mark(obs.StageWrite, time.Since(t0))
	}
}

// writeErr renders a service failure. The numeric `code` field carries the
// stable server.Code value so SDK clients classify failures without
// matching on the message or the HTTP status.
func writeErr(w http.ResponseWriter, err error) {
	body := struct {
		Error string `json:"error"`
		Code  int    `json:"code"`
	}{Error: err.Error(), Code: int(ErrCode(err))}
	writeJSON(w, body, httpStatus(ErrCode(err)))
}
