// Package trace synthesizes the input traces the paper's evaluation replays:
// a diurnal device-availability trace (in place of the proprietary FedScale
// trace, Figure 2a), a device hardware-capacity distribution (in place of AI
// Benchmark data, Figures 2b/8a), and a CL job demand trace (Figure 8b).
// All generators are deterministic given a seed and emit plain Go values
// that the simulator replays; traces can also be saved/loaded as JSON.
package trace

import (
	"venn/internal/device"
	"venn/internal/stats"
)

// CapacityModel samples normalized device hardware scores. It is a mixture
// of beta distributions: a low-end mass (older phones, IoT devices) and a
// high-end mass (flagship phones, laptops), which reproduces the bimodal
// spread visible in the AI-Benchmark data the paper plots, and — crucially
// for the scheduler — controls what fraction of the fleet falls into each of
// the four eligibility strata.
type CapacityModel struct {
	// HighEndFraction is the probability a device is drawn from the
	// high-end component.
	HighEndFraction float64
	// Component Beta parameters for CPU and memory scores.
	LowCPUAlpha, LowCPUBeta   float64
	LowMemAlpha, LowMemBeta   float64
	HighCPUAlpha, HighCPUBeta float64
	HighMemAlpha, HighMemBeta float64
	// Correlation in [0,1]: fraction of the memory score inherited from
	// the CPU score's component draw (CPU-rich devices tend to be
	// memory-rich too, but not perfectly).
	Correlation float64
}

// DefaultCapacityModel returns the model used across experiments. Its
// stratum masses approximate Figure 8a: roughly 55% General-only, ~15%
// Compute-Rich-only, ~12% Memory-Rich-only, ~18% High-Perf.
func DefaultCapacityModel() *CapacityModel {
	return &CapacityModel{
		HighEndFraction: 0.30,
		LowCPUAlpha:     2.0, LowCPUBeta: 3.5,
		LowMemAlpha: 2.0, LowMemBeta: 3.0,
		HighCPUAlpha: 5.0, HighCPUBeta: 1.8,
		HighMemAlpha: 4.5, HighMemBeta: 1.8,
		Correlation: 0.55,
	}
}

// Sample draws one (cpu, mem) score pair.
func (m *CapacityModel) Sample(rng *stats.RNG) (cpu, mem float64) {
	high := rng.Bool(m.HighEndFraction)
	if high {
		cpu = rng.Beta(m.HighCPUAlpha, m.HighCPUBeta)
	} else {
		cpu = rng.Beta(m.LowCPUAlpha, m.LowCPUBeta)
	}
	// Memory follows the same component with probability Correlation,
	// otherwise re-flips the component coin, decorrelating the scores.
	memHigh := high
	if !rng.Bool(m.Correlation) {
		memHigh = rng.Bool(m.HighEndFraction)
	}
	if memHigh {
		mem = rng.Beta(m.HighMemAlpha, m.HighMemBeta)
	} else {
		mem = rng.Beta(m.LowMemAlpha, m.LowMemBeta)
	}
	return cpu, mem
}

// CellProbabilities estimates, by Monte-Carlo over the model, the probability
// that a device falls into each atomic cell of the grid. The scheduler uses
// these as priors for per-cell supply before the time-series database has
// observed enough check-ins.
func (m *CapacityModel) CellProbabilities(grid *device.Grid, rng *stats.RNG, samples int) []float64 {
	if samples <= 0 {
		samples = 20000
	}
	counts := make([]int, grid.NumCells())
	for i := 0; i < samples; i++ {
		cpu, mem := m.Sample(rng)
		counts[grid.CellOf(cpu, mem)]++
	}
	probs := make([]float64, len(counts))
	for i, c := range counts {
		probs[i] = float64(c) / float64(samples)
	}
	return probs
}

// GenerateDevices samples a fleet of n devices from the capacity model.
func (m *CapacityModel) GenerateDevices(n int, rng *stats.RNG) []*device.Device {
	devs := make([]*device.Device, n)
	for i := 0; i < n; i++ {
		cpu, mem := m.Sample(rng)
		devs[i] = device.New(device.ID(i), cpu, mem)
	}
	return devs
}
