// Unified client construction. Historically the SDK grew two parallel
// constructors — New for HTTP and NewStream for the framed TCP transport —
// with disjoint option types. client.New is now the single entry point:
//
//	c := client.New("http://host:8080")                  // HTTP (scheme ⇒ transport)
//	c := client.New("host:8081")                         // stream (bare host:port)
//	c := client.New("host:8081", client.WithTransport(client.TransportStream),
//	        client.WithTimeout(2*time.Second))
//
// Both transports implement API. NewHTTP and NewStream remain as thin
// deprecated shims returning the concrete types.
package client

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"venn/internal/server"
	"venn/internal/transport"
)

// Transport names accepted by WithTransport.
const (
	TransportHTTP   = "http"
	TransportStream = "stream"
)

// API is the transport-neutral client surface: everything a job owner or a
// device agent calls, implemented by both the HTTP *Client and the
// *StreamClient.
type API interface {
	RegisterJob(spec server.JobSpec) (server.JobStatus, error)
	JobStatus(id int) (server.JobStatus, error)
	Jobs() ([]server.JobStatus, error)
	WaitForJob(id int, poll, timeout time.Duration) (server.JobStatus, error)
	CheckIn(ci server.CheckIn) (server.Assignment, error)
	CheckInBatch(cis []server.CheckIn) ([]server.CheckInResult, error)
	Report(r server.Report) error
	ReportBatch(rs []server.Report) ([]server.ReportResult, error)
	Stats() (server.Stats, error)
	Metrics() (server.Metrics, error)
	Ping() error
	Close() error
}

// config collects every knob of both transports; each constructor reads the
// subset that applies to it.
type config struct {
	transport      string
	timeout        time.Duration
	timeoutSet     bool
	retries        int
	retryDelay     time.Duration
	httpClient     *http.Client
	streamConns    int
	maxWireVersion int
	topology       bool
}

func defaultClientConfig() config {
	return config{
		timeout:        DefaultTimeout,
		retryDelay:     DefaultRetryDelay,
		streamConns:    DefaultStreamConns,
		maxWireVersion: int(transport.MaxVersion),
	}
}

// Option customizes a client of either transport; options that do not
// apply to the chosen transport are ignored.
type Option func(*config)

// StreamOption customizes a StreamClient.
//
// Deprecated: StreamOption is now an alias of Option; use Option.
type StreamOption = Option

// WithTransport forces the transport instead of inferring it from the
// address (a URL scheme means HTTP, a bare host:port means stream).
func WithTransport(t string) Option {
	return func(c *config) { c.transport = t }
}

// WithTimeout bounds one request round trip (dial included on the stream
// transport); default 10s.
func WithTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.timeout = d
			c.timeoutSet = true
		}
	}
}

// WithRetries enables up to n bounded retries with exponential backoff and
// jitter for idempotent GET requests (status polls, stats, metrics) on the
// HTTP transport. Mutating POSTs are never retried: a timed-out check-in
// may still have been applied server-side.
func WithRetries(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.retries = n
		}
	}
}

// WithRetryDelay sets the HTTP retry backoff base delay (default 100ms);
// attempt k waits delay*2^k plus up to 50% jitter.
func WithRetryDelay(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.retryDelay = d
		}
	}
}

// WithHTTPClient replaces the underlying *http.Client entirely — use it to
// tune the transport (connection pool size, keep-alives) for load
// generation. WithTimeout still applies on top if given.
func WithHTTPClient(h *http.Client) Option {
	return func(c *config) { c.httpClient = h }
}

// WithStreamConns sets the stream connection-pool size (default 2). More
// connections raise pipelining depth under heavy concurrent load; one is
// enough for a single agent.
func WithStreamConns(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.streamConns = n
		}
	}
}

// WithStreamTimeout bounds one request round trip, dial included.
//
// Deprecated: identical to WithTimeout; use WithTimeout.
func WithStreamTimeout(d time.Duration) Option { return WithTimeout(d) }

// WithTopology makes a stream client ring-aware: it fetches the federation
// topology from its seed daemon, builds the daemons' consistent-hash ring
// locally, and partitions every check-in/report by device owner onto pooled
// per-member connections — eliminating server-side federation hops in a
// healthy cluster. Against a daemon with no federation layer (or a v1-only
// daemon) the mode disables itself and the client behaves exactly as
// without it. Ignored by the HTTP transport. See StreamClient for the
// staleness and failover contract.
func WithTopology(on bool) Option {
	return func(c *config) { c.topology = on }
}

// WithMaxWireVersion caps the stream protocol version this client will
// negotiate (default 2). Set 1 to force JSON payloads — useful for talking
// to old daemons without paying the failed-negotiation round trip, and for
// pinning mixed-version behavior in tests.
func WithMaxWireVersion(v int) Option {
	return func(c *config) {
		if v >= 1 {
			c.maxWireVersion = v
		}
	}
}

// New creates a client for the daemon at addr. The transport is inferred
// from the address — a URL scheme ("http://host:8080") selects HTTP, a bare
// host:port selects the framed stream protocol — unless WithTransport
// overrides it. The concrete type is *Client or *StreamClient; callers that
// need transport-specific extras can type-assert.
func New(addr string, opts ...Option) API {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	t := cfg.transport
	if t == "" {
		if strings.Contains(addr, "://") {
			t = TransportHTTP
		} else {
			t = TransportStream
		}
	}
	if t == TransportHTTP {
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		return newHTTPClient(addr, cfg)
	}
	return newStreamClient(addr, cfg)
}

// APIError is a typed server-side rejection carried over the HTTP
// transport. Code is the service layer's stable numeric wire code (see
// server.Code), taken from the response body's `code` field — classify
// failures by it, never by matching on the message.
type APIError struct {
	Code   server.Code
	Status int // HTTP status
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s (status %d)", e.Msg, e.Status)
}

// ErrCode extracts the service layer's stable error code from a client
// error of either transport (*APIError or *StreamError), unwrapping as
// needed; errors without a code — transport failures, timeouts — return 0.
func ErrCode(err error) server.Code {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	var se *StreamError
	if errors.As(err, &se) {
		return se.Code
	}
	return 0
}
